(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (DESIGN.md experiment index E1-E4) plus the ablations A1-A4,
   runs the campaign-throughput / hot-path / analysis-throughput /
   distributed / shuffle-leak / store-I/O benchmarks (sections P1-P6; results
   optionally emitted as machine-readable JSON for the perf trajectory),
   then runs Bechamel micro-benchmarks of the pipeline's own cost.

   Usage:  dune exec bench/main.exe [-- --runs N] [-- --skip-micro]
                                    [-- --smoke] [-- --json PATH]
                                    [-- --trace PATH] [-- --profile]
   Default N is 3000 (the paper's run count).  [--smoke] runs only the
   P1-P6 perf sections at a reduced run count (the CI mode); [--json PATH]
   writes the P1-P6 results to PATH (e.g. BENCH_pr10.json); [--trace PATH]
   keeps the JSONL trace written by the P1 trace-overhead probe;
   [--profile] enables the stage-resolved micro-profiler and emits its
   table (and a JSON section) at the end. *)

module P = Repro_platform
module T = Repro_tvca
module M = Repro_mbpta
module E = Repro_evt
module S = Repro_stats
module Isa = Repro_isa
module D = S.Descriptive

(* Hidden child mode for the P6 merge-RSS probe: re-invoked as
   [main.exe --p6-merge SRC... DST], performs just the store merge and
   prints its own peak RSS — a fresh process, so VmHWM measures the merge
   (plus runtime baseline) rather than whatever the parent benchmark
   allocated earlier. *)
let vmhwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec go () =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            0
        | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:" ->
            close_in ic;
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
        | _ -> go ()
      in
      (try go () with Scanf.Scan_failure _ | Failure _ -> 0)

let () =
  match Array.to_list Sys.argv with
  | _ :: "--p6-merge" :: (_ :: _ :: _ as dirs) ->
      let rec split_last acc = function
        | [ dst ] -> (List.rev acc, dst)
        | d :: rest -> split_last (d :: acc) rest
        | [] -> assert false
      in
      let src_dirs, dst_dir = split_last [] dirs in
      let src = List.map (fun dir -> M.Store.open_root ~dir) src_dirs in
      let dst = M.Store.open_root ~dir:dst_dir in
      (match M.Store.merge ~src dst with
      | Ok _ -> ()
      | Error e ->
          prerr_endline ("p6-merge: " ^ e);
          exit 1);
      Printf.printf "vmhwm_kb %d\n" (vmhwm_kb ());
      exit 0
  | _ -> ()

let runs = ref 3000
let skip_micro = ref false
let smoke = ref false
let p6_only = ref false
let json_out = ref None
let trace_out = ref None
let profile = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--runs" :: n :: rest ->
        runs := int_of_string n;
        parse rest
    | "--skip-micro" :: rest ->
        skip_micro := true;
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--p6-only" :: rest ->
        (* the CI store-io smoke mode: just the store-I/O section, which
           carries its own pass/fail gates *)
        p6_only := true;
        parse rest
    | "--json" :: path :: rest ->
        json_out := Some path;
        parse rest
    | "--trace" :: path :: rest ->
        trace_out := Some path;
        parse rest
    | "--profile" :: rest ->
        profile := true;
        parse rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv))

let () = if !profile then M.Profile.set_enabled true

let () = if !smoke then runs := Stdlib.min !runs 240

let section title =
  Format.printf "@.=====================================================================@.";
  Format.printf "%s@." title;
  Format.printf "=====================================================================@."

let base_seed = 2017L

(* ------------------------------------------------------------------ *)
(* Shared campaign: E1-E4 all read from this single measurement pass.  *)

let det_experiment = T.Experiment.create ~config:P.Config.deterministic ~base_seed ()
let rand_experiment = T.Experiment.create ~config:P.Config.mbpta_compliant ~base_seed ()

(* The default gates occasionally reject a healthy sample at reduced run
   counts (a 5%-level test false-alarms by design); in that case the
   harness reruns with the gates off so every table still prints, and says
   so.  The i.i.d. verdicts themselves are always reported in E1. *)
let campaign =
  lazy
    (let input =
       {
         (M.Campaign.default_input
            ~measure_det:(fun i -> T.Experiment.measure det_experiment ~run_index:i)
            ~measure_rand:(fun i -> T.Experiment.measure rand_experiment ~run_index:i))
         with
         M.Campaign.runs = !runs;
       }
     in
     let run_exn input =
       match M.Campaign.run input with
       | Ok c -> c
       | Error f ->
           Format.kasprintf failwith "campaign failed: %a" M.Protocol.pp_failure f
     in
     let first = run_exn input in
     match first.M.Campaign.analysis with
     | Ok _ -> first
     | Error f ->
         Format.printf
           "@.NOTE: the gated protocol rejected this sample (%a);@.      rerunning with \
            gates off so all sections print.@."
           M.Protocol.pp_failure f;
         run_exn
           {
             input with
             M.Campaign.options =
               {
                 input.M.Campaign.options with
                 M.Protocol.gate_on_iid = false;
                 M.Protocol.check_convergence = false;
               };
           })

let analysis_exn () =
  match (Lazy.force campaign).M.Campaign.analysis with
  | Ok a -> a
  | Error f -> Format.kasprintf failwith "campaign failed: %a" M.Protocol.pp_failure f

let comparison_exn () =
  match (Lazy.force campaign).M.Campaign.comparison with
  | Some c -> c
  | None -> failwith "campaign produced no comparison"

(* ------------------------------------------------------------------ *)

let e1_iid () =
  section
    "E1  i.i.d. verification on the RAND platform (paper: Ljung-Box 0.83, KS 0.45, \
     alpha 0.05)";
  let a = analysis_exn () in
  let iid = a.M.Protocol.iid in
  Format.printf "runs collected: %d (flush + reseed + fresh inputs per run)@."
    (Array.length a.M.Protocol.sample);
  Format.printf "independence    Ljung-Box     %a@." S.Ljung_box.pp_result
    iid.M.Iid.ljung_box;
  Format.printf "identical dist  two-sample KS %a@." S.Ks.pp_result
    iid.M.Iid.kolmogorov_smirnov;
  Format.printf "diagnostic      runs test     %a@." S.Runs_test.pp_result
    iid.M.Iid.runs_diagnostic;
  Format.printf "verdict: %s@."
    (if iid.M.Iid.accepted then "i.i.d. ACCEPTED - MBPTA enabled (matches the paper)"
     else "i.i.d. REJECTED")

let e2_pwcet_curve () =
  section "E2  Figure 2: pWCET estimates for TVCA (observed tail vs EVT projection)";
  let a = analysis_exn () in
  Format.printf "%a@." E.Pwcet.pp a.M.Protocol.curve;
  Format.printf "model fit on block maxima: %a@." S.Ks.pp_result a.M.Protocol.goodness_of_fit;
  Format.printf "prediction upper-bounds observed tail: %b@.@."
    (E.Pwcet.upper_bounds_observations a.M.Protocol.curve);
  print_string (M.Ascii_plot.exceedance_plot a.M.Protocol.curve);
  Format.printf "@.projection series (per-run exceedance probability, execution time):@.";
  List.iter
    (fun (v, p) -> Format.printf "  %.1e  %10.0f@." p v)
    (E.Pwcet.ccdf_series a.M.Protocol.curve ~decades_below:15);
  (* sampling uncertainty of the headline estimate *)
  let prng = Repro_rng.Prng.create 4321L in
  let ci =
    E.Bootstrap.pwcet_interval ~prng ~sample:a.M.Protocol.sample
      ~cutoff_probability:1e-9 ()
  in
  Format.printf "@.pWCET(1e-9) with bootstrap interval: %a@." E.Bootstrap.pp_interval ci

let e3_comparison () =
  section "E3  Figure 3: MBPTA vs industrial MBTA practice";
  let c = comparison_exn () in
  let cam = Lazy.force campaign in
  Format.printf "%-34s %12s@." "quantity" "cycles";
  Format.printf "%-34s %12.0f@." "average observed, DET" c.M.Report.det_summary.D.mean;
  Format.printf "%-34s %12.0f@." "average observed, RAND" c.M.Report.rand_summary.D.mean;
  Format.printf "%-34s %12.0f@." "max observed, DET (high watermark)"
    c.M.Report.mbta.M.Mbta.high_watermark;
  Format.printf "%-34s %12.0f@." "max observed, RAND" c.M.Report.rand_summary.D.maximum;
  List.iter
    (fun (f, b) ->
      Format.printf "%-34s %12.0f@." (Printf.sprintf "MBTA bound (HWM x %.2f)" f) b)
    (M.Mbta.sensitivity cam.M.Campaign.det_sample ~factors:[ 1.2; 1.35; 1.5 ]);
  Format.printf "@.pWCET ladder (vs the HWM x 1.50 MBTA bound):@.";
  List.iter
    (fun (p, v) ->
      Format.printf "%-34s %12.0f   %.2fx MBTA@."
        (Printf.sprintf "  pWCET at %.0e" p)
        v
        (v /. c.M.Report.mbta.M.Mbta.bound))
    c.M.Report.pwcet_at;
  Format.printf
    "@.shape check: pWCET estimates are within the same order of magnitude as the@.";
  Format.printf
    "observations and competitive with the engineering-factor bound, while@.";
  Format.printf "resting on explicit probabilistic evidence.@."

let e4_average_performance () =
  section "E4  Average performance: DET vs RAND (paper: no noticeable difference)";
  let c = comparison_exn () in
  Format.printf "DET : %a@." D.pp_summary c.M.Report.det_summary;
  Format.printf "RAND: %a@." D.pp_summary c.M.Report.rand_summary;
  Format.printf "randomization overhead on the average: %+.2f%%@."
    (100. *. c.M.Report.average_overhead)

(* ------------------------------------------------------------------ *)
(* Ablations *)

let a1_placement () =
  section "A1  Ablation: placement policy vs memory-layout sensitivity";
  let layouts = 6 and runs_per_layout = Stdlib.max 40 (!runs / 40) in
  Format.printf "%d scrambled link layouts, %d runs each@.@." layouts runs_per_layout;
  Format.printf "%-16s %-14s %12s %14s %10s@." "placement" "replacement" "mean"
    "layout-spread" "x noise";
  List.iter
    (fun (placement, replacement) ->
      let config =
        P.Config.with_replacement
          (P.Config.with_placement P.Config.deterministic placement)
          replacement
      in
      let e = T.Experiment.create ~config ~base_seed () in
      let program = T.Experiment.program e in
      let means = Array.make layouts 0. in
      let noise = Array.make layouts 0. in
      for l = 0 to layouts - 1 do
        let layout = Isa.Layout.scrambled ~seed:(Int64.of_int (3000 + l)) program in
        let e' = T.Experiment.with_layout e layout in
        let xs =
          Array.init runs_per_layout (fun i -> T.Experiment.measure e' ~run_index:i)
        in
        means.(l) <- D.mean xs;
        noise.(l) <- D.sample_std xs /. sqrt (float_of_int runs_per_layout)
      done;
      let spread = D.max means -. D.min means in
      Format.printf "%-16s %-14s %12.0f %14.0f %10.1f@."
        (P.Config.placement_name placement)
        (P.Config.replacement_name replacement)
        (D.mean means) spread
        (spread /. D.mean noise))
    [
      (P.Config.Modulo, P.Config.Lru);
      (P.Config.Modulo, P.Config.Random_replacement);
      (P.Config.Random_modulo, P.Config.Lru);
      (P.Config.Random_modulo, P.Config.Random_replacement);
      (P.Config.Hash_random, P.Config.Random_replacement);
    ]

let a2_fpu () =
  section "A2  Ablation: FPU latency mode on the randomized platform";
  let n = Stdlib.max 200 (!runs / 5) in
  let measure config =
    let e = T.Experiment.create ~config ~base_seed:4242L () in
    T.Experiment.collect e ~runs:n
  in
  let value_dep =
    measure (P.Config.with_fpu P.Config.mbpta_compliant P.Config.Value_dependent)
  in
  let fixed =
    measure (P.Config.with_fpu P.Config.mbpta_compliant P.Config.Worst_case_fixed)
  in
  Format.printf "value-dependent FDIV/FSQRT: %a@." D.pp_summary (D.summarize value_dep);
  Format.printf "worst-case fixed (paper):   %a@." D.pp_summary (D.summarize fixed);
  Format.printf "average cost of forcing the worst case: %+.2f%%@."
    (100. *. ((D.mean fixed /. D.mean value_dep) -. 1.));
  let dominated = ref true in
  Array.iteri (fun i f -> if f < value_dep.(i) then dominated := false) fixed;
  Format.printf "every fixed-mode run upper-bounds its value-dependent twin: %b@." !dominated

let a3_convergence () =
  section "A3  Ablation: convergence of the pWCET estimate with the number of runs";
  let a = analysis_exn () in
  match a.M.Protocol.convergence with
  | None -> Format.printf "(convergence check disabled)@."
  | Some c ->
      Format.printf "%a@.@." E.Convergence.pp_result c;
      print_string (M.Ascii_plot.convergence_plot c.E.Convergence.history)

let a4_multicore () =
  section "A4  Ablation: co-runner bus pressure on the 4-core SoC";
  let n = Stdlib.max 200 (!runs / 8) in
  Format.printf "%-10s %12s %12s %12s@." "pressure" "mean" "max" "pWCET(1e-9)";
  List.iter
    (fun pressure ->
      let contenders = [ pressure; pressure; pressure ] in
      let e =
        T.Experiment.create ~contenders ~config:P.Config.mbpta_compliant ~base_seed:99L ()
      in
      let xs = T.Experiment.collect e ~runs:n in
      let options =
        { M.Protocol.default_options with M.Protocol.check_convergence = false }
      in
      match M.Protocol.analyze ~options xs with
      | Ok a ->
          Format.printf "%-10.2f %12.0f %12.0f %12.0f@." pressure (D.mean xs) (D.max xs)
            (E.Pwcet.estimate a.M.Protocol.curve ~cutoff_probability:1e-9)
      | Error f ->
          Format.printf "%-10.2f analysis failed: %a@." pressure M.Protocol.pp_failure f)
    [ 0.; 0.5; 1. ]

let a5_det_unsound () =
  section
    "A5  Ablation: why measurements on the DET platform cannot cover other layouts";
  (* Apply the MBPTA machinery to DET measurements taken at one link
     layout (inputs still vary, so the i.i.d. gates may well pass), then
     confront the resulting curve with the same program re-linked at other
     layouts: the curve has no way to know about them. *)
  let n = Stdlib.max 200 (!runs / 5) in
  let det = T.Experiment.create ~config:P.Config.deterministic ~base_seed:55L () in
  let xs = T.Experiment.collect det ~runs:n in
  let options =
    {
      M.Protocol.default_options with
      M.Protocol.gate_on_iid = false;
      M.Protocol.check_convergence = false;
    }
  in
  (match M.Protocol.analyze ~options xs with
  | Error f -> Format.printf "DET analysis failed: %a@." M.Protocol.pp_failure f
  | Ok a ->
      let budget = E.Pwcet.estimate a.M.Protocol.curve ~cutoff_probability:1e-9 in
      Format.printf
        "curve fitted on DET, layout as shipped: pWCET(1e-9) = %.0f cycles@.@." budget;
      Format.printf "%-10s %14s %18s@." "layout" "mean" "runs over budget";
      let program = T.Experiment.program det in
      List.iter
        (fun l ->
          let layout = Isa.Layout.scrambled ~seed:(Int64.of_int (7000 + l)) program in
          let e' = T.Experiment.with_layout det layout in
          let ys = Array.init 100 (fun i -> T.Experiment.measure e' ~run_index:i) in
          let over = Array.fold_left (fun c y -> if y > budget then c + 1 else c) 0 ys in
          Format.printf "%-10d %14.0f %12d /100@." l (D.mean ys) over)
        [ 1; 2; 3; 4; 5; 6 ];
      (* The randomized platform's curve, in contrast, covers them. *)
      let rand = T.Experiment.create ~config:P.Config.mbpta_compliant ~base_seed:55L () in
      let zs = T.Experiment.collect rand ~runs:n in
      match M.Protocol.analyze ~options zs with
      | Error f -> Format.printf "RAND analysis failed: %a@." M.Protocol.pp_failure f
      | Ok ar ->
          let rbudget = E.Pwcet.estimate ar.M.Protocol.curve ~cutoff_probability:1e-9 in
          Format.printf
            "@.curve fitted on RAND: pWCET(1e-9) = %.0f cycles; re-linked layouts:@."
            rbudget;
          let rprogram = T.Experiment.program rand in
          List.iter
            (fun l ->
              let layout =
                Isa.Layout.scrambled ~seed:(Int64.of_int (7000 + l)) rprogram
              in
              let e' = T.Experiment.with_layout rand layout in
              let ys = Array.init 100 (fun i -> T.Experiment.measure e' ~run_index:i) in
              let over =
                Array.fold_left (fun c y -> if y > rbudget then c + 1 else c) 0 ys
              in
              Format.printf "%-10d %14.0f %12d /100@." l (D.mean ys) over)
            [ 1; 2; 3; 4; 5; 6 ];
          Format.printf
            "@.a high watermark taken at one layout says nothing about the others -@.";
          Format.printf
            "that is the uncertainty the engineering factor must paper over, and@.";
          Format.printf "what the time-randomized platform removes by construction.@.")

let a6_gate_calibration () =
  section
    "A6  Ablation: empirical size of the i.i.d. gates (nominal 5% per test)";
  let trials = Stdlib.max 10 (!runs / 150) in
  let n = Stdlib.max 200 (!runs / 10) in
  let lb_rejections = ref 0 and ks_rejections = ref 0 in
  for t = 1 to trials do
    let e =
      T.Experiment.create ~config:P.Config.mbpta_compliant
        ~base_seed:(Int64.of_int (80_000 + t)) ()
    in
    let xs = T.Experiment.collect e ~runs:n in
    let iid = M.Iid.check xs in
    if not iid.M.Iid.ljung_box.S.Ljung_box.independent then incr lb_rejections;
    if not iid.M.Iid.kolmogorov_smirnov.S.Ks.same_distribution then incr ks_rejections
  done;
  Format.printf "%d campaigns of %d runs each, fresh base seed per campaign@.@." trials n;
  Format.printf "Ljung-Box rejections:      %d/%d@." !lb_rejections trials;
  Format.printf "two-sample KS rejections:  %d/%d@." !ks_rejections trials;
  Format.printf
    "@.on a genuinely randomized platform the gates fire at roughly their nominal@.";
  Format.printf
    "rate - rejections are retried with more runs, not treated as platform bugs.@."

let a7_block_size () =
  section "A7  Ablation: pWCET sensitivity to the block-maxima block size";
  let xs = (Lazy.force campaign).M.Campaign.rand_sample in
  Format.printf "%-12s %10s %14s %14s@." "block size" "maxima" "pWCET(1e-9)" "pWCET(1e-15)";
  List.iter
    (fun block_size ->
      if Array.length xs / block_size >= 20 then begin
        let options =
          {
            M.Protocol.default_options with
            M.Protocol.block_size = Some block_size;
            M.Protocol.check_convergence = false;
            M.Protocol.gate_on_iid = false;
          }
        in
        match M.Protocol.analyze ~options xs with
        | Ok a ->
            Format.printf "%-12d %10d %14.0f %14.0f@." block_size
              (Array.length xs / block_size)
              (E.Pwcet.estimate a.M.Protocol.curve ~cutoff_probability:1e-9)
              (E.Pwcet.estimate a.M.Protocol.curve ~cutoff_probability:1e-15)
        | Error f ->
            Format.printf "%-12d analysis failed: %a@." block_size M.Protocol.pp_failure f
      end)
    [ 8; 16; 32; 64; 128 ];
  Format.printf
    "@.the estimate is stable across reasonable block sizes - the hallmark of a@.";
  Format.printf "max-stable (EVT-amenable) measurement distribution.@."

(* ------------------------------------------------------------------ *)
(* P1: campaign throughput on the domain pool + simulator hot-path
   latency.  These are the numbers BENCH_pr2.json records so the perf
   trajectory of the project starts here. *)

type throughput_row = {
  jobs : int;
  seconds : float;
  runs_per_sec : float;
  speedup : float;  (* vs jobs = 1 *)
}

type perf_results = {
  campaign_runs : int;
  domain_count : int;
  throughput : throughput_row list;
  per_run_us_det : float;
  per_run_us_rand : float;
  per_run_us_det_retired : float;  (* same-run baseline: pre-batching path *)
  per_run_us_rand_retired : float;
  batched_identical_to_retired : bool;
  decode_cache_hits : int;
  decode_cache_misses : int;
  batch_scratches_created : int;
  batch_reuses : int;
  cache_access_ns_det : float;
  cache_access_ns_rand : float;
  tlb_access_ns : float;
  samples_identical_across_jobs : bool;
  trace_overhead_pct : float;  (* median over the measured pairs *)
  trace_overhead_spread_pct : float;  (* max - min over the pairs *)
  trace_overhead_pairs : int;
  trace_events : int;
  traced_samples_identical : bool;
}

let time_it f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Best-of-[reps] timing: the minimum is the standard robust estimator for
   a deterministic workload on a shared box — every source of interference
   (scheduler preemption, page-cache misses, GC from a previous section)
   only ever adds time. *)
let time_best ~reps f =
  let v, t0 = time_it f in
  let best = ref t0 in
  for _ = 2 to reps do
    let _, t = time_it f in
    if t < !best then best := t
  done;
  (v, !best)

(* Direct hot-path probe: hammer one structure with a strided read/write
   mix large enough to live beyond the cold-start transient. *)
let cache_access_ns ~placement ~replacement =
  let config = { P.Config.geometry = P.Config.leon3_geometry; placement; replacement } in
  let c = P.Cache.create ~config ~prng:(Repro_rng.Prng.create 7L) in
  let n = 2_000_000 in
  let (), dt =
    time_it (fun () ->
        for i = 0 to n - 1 do
          ignore (P.Cache.access c ~addr:(i * 37 land 0xFFFFF) ~write:(i land 7 = 0))
        done)
  in
  dt *. 1e9 /. float_of_int n

let tlb_access_ns () =
  let t =
    P.Tlb.create ~entries:64 ~page_bytes:4096 ~replacement:P.Config.Random_replacement
      ~prng:(Repro_rng.Prng.create 11L)
  in
  let n = 2_000_000 in
  let (), dt =
    time_it (fun () ->
        for i = 0 to n - 1 do
          ignore (P.Tlb.access t ~addr:(i * 4099 land 0xFFFFFF))
        done)
  in
  dt *. 1e9 /. float_of_int n

(* Cost of observability: full campaigns (gates off, sequential) with and
   without a Runs-level trace attached, measured as interleaved pairs so
   machine drift hits both sides equally, reported as the median overhead
   with the min-max spread.  A single pair's ratio is dominated by noise —
   BENCH_pr6 recorded a nonsensical -1.96% from one pair.  Also re-checks
   the tracing determinism contract: the traced campaign's samples must be
   bit-identical to the untraced ones. *)
let p1_trace_overhead ~n =
  let input =
    {
      (M.Campaign.default_input
         ~measure_det:(fun i -> T.Experiment.measure det_experiment ~run_index:i)
         ~measure_rand:(fun i -> T.Experiment.measure rand_experiment ~run_index:i))
      with
      M.Campaign.runs = n;
      M.Campaign.options =
        {
          M.Protocol.default_options with
          M.Protocol.gate_on_iid = false;
          M.Protocol.check_convergence = false;
        };
    }
  in
  let samples = function
    | Ok c -> Some (c.M.Campaign.det_sample, c.M.Campaign.rand_sample)
    | Error _ -> None
  in
  let pairs = if !smoke then 3 else 5 in
  let path =
    match !trace_out with
    | Some p -> p
    | None -> Filename.temp_file "bench_trace" ".jsonl"
  in
  let trace_events = ref 0 in
  let traced_samples_identical = ref true in
  let overheads =
    Array.init pairs (fun _ ->
        let plain, plain_dt = time_it (fun () -> M.Campaign.run ~jobs:1 input) in
        (try Sys.remove path with Sys_error _ -> ());
        let trace = M.Trace.create ~path () in
        let traced, traced_dt =
          time_it (fun () -> M.Campaign.run ~jobs:1 ~trace input)
        in
        M.Trace.close trace;
        (match M.Trace.read_file path with
        | Ok es -> trace_events := List.length es
        | Error _ -> ());
        if samples plain <> samples traced then traced_samples_identical := false;
        100. *. ((traced_dt /. plain_dt) -. 1.))
  in
  if !trace_out = None then (try Sys.remove path with Sys_error _ -> ());
  let sorted = Array.copy overheads in
  Array.sort Float.compare sorted;
  let median = sorted.(pairs / 2) in
  let spread = sorted.(pairs - 1) -. sorted.(0) in
  Format.printf
    "@.trace overhead (campaign of 2x%d runs, jobs=1, %d interleaved pairs): median \
     %+.2f%%, spread [%+.2f%%, %+.2f%%], %d events@."
    n pairs median sorted.(0)
    sorted.(pairs - 1)
    !trace_events;
  Format.printf "traced samples bit-identical to untraced: %b@." !traced_samples_identical;
  (median, spread, pairs, !trace_events, !traced_samples_identical)

let p1_parallel_perf () =
  section "P1  Campaign throughput (domain pool) and simulator hot-path latency";
  let n = Stdlib.max 60 (Stdlib.min !runs 600) in
  let measure_rand i = T.Experiment.measure rand_experiment ~run_index:i in
  let measure_det i = T.Experiment.measure det_experiment ~run_index:i in
  let domain_count = M.Parallel.default_jobs () in
  Format.printf "campaign of %d RAND runs per job count; %d core(s) recommended@.@." n
    domain_count;
  Format.printf "%8s %12s %14s %10s@." "jobs" "seconds" "runs/sec" "speedup";
  let reference = ref None in
  let throughput =
    List.map
      (fun jobs ->
        let sample, seconds = time_it (fun () -> M.Parallel.init ~jobs n measure_rand) in
        (match !reference with
        | None -> reference := Some sample
        | Some r ->
            if not (r = sample) then
              failwith "P1: samples differ across job counts — determinism broken");
        let runs_per_sec = float_of_int n /. seconds in
        { jobs; seconds; runs_per_sec; speedup = 0. })
      [ 1; 2; 4; 8 ]
  in
  let base = (List.hd throughput).runs_per_sec in
  let throughput =
    List.map (fun r -> { r with speedup = r.runs_per_sec /. base }) throughput
  in
  List.iter
    (fun r ->
      Format.printf "%8d %12.3f %14.1f %9.2fx@." r.jobs r.seconds r.runs_per_sec r.speedup)
    throughput;
  (* Per-run sequential cost, both platforms: the batched pre-decoded hot
     path against its same-run retired baseline (fresh simulator, per-step
     variant match), timed back to back on the same machine — and checked
     bit-identical run by run while we are at it. *)
  let k = Stdlib.max 20 (n / 4) in
  let batched_identical_to_retired = ref true in
  (* Median of several repetitions: on a shared box a single k-run average
     jitters by ±20%, which would swamp the batched-vs-retired comparison
     (same remedy as the trace-overhead probe). *)
  let per_run_us measure =
    let reps = if !smoke then 3 else 5 in
    let samples =
      Array.init reps (fun _ ->
          let _, dt =
            time_it (fun () ->
                for i = 0 to k - 1 do
                  ignore (measure i)
                done)
          in
          dt *. 1e6 /. float_of_int k)
    in
    Array.sort compare samples;
    samples.(reps / 2)
  in
  let per_run_us_det = per_run_us measure_det in
  let per_run_us_rand = per_run_us measure_rand in
  let per_run_us_det_retired =
    per_run_us (fun i -> T.Experiment.measure_retired det_experiment ~run_index:i)
  in
  let per_run_us_rand_retired =
    per_run_us (fun i -> T.Experiment.measure_retired rand_experiment ~run_index:i)
  in
  for i = 0 to Stdlib.min k 50 - 1 do
    if
      T.Experiment.measure det_experiment ~run_index:i
      <> T.Experiment.measure_retired det_experiment ~run_index:i
      || T.Experiment.measure rand_experiment ~run_index:i
         <> T.Experiment.measure_retired rand_experiment ~run_index:i
    then batched_identical_to_retired := false
  done;
  if not !batched_identical_to_retired then
    failwith "P1: batched hot path diverged from the retired baseline";
  Format.printf
    "@.per measured run (sequential):         DET %.1f us, RAND %.1f us@."
    per_run_us_det per_run_us_rand;
  Format.printf
    "per measured run (retired baseline):   DET %.1f us (%.2fx), RAND %.1f us (%.2fx)@."
    per_run_us_det_retired
    (per_run_us_det_retired /. per_run_us_det)
    per_run_us_rand_retired
    (per_run_us_rand_retired /. per_run_us_rand);
  Format.printf "batched runs bit-identical to retired: %b@."
    !batched_identical_to_retired;
  let decode_cache_hits, decode_cache_misses = T.Experiment.decode_cache_stats () in
  let batch_scratches_created, batch_reuses = T.Experiment.batch_stats () in
  Format.printf
    "decode cache: %d hits / %d misses; batch scratches: %d created, %d runs reused one@."
    decode_cache_hits decode_cache_misses batch_scratches_created batch_reuses;
  (* Hot-path latency: one cache/TLB access. *)
  let cache_access_ns_det =
    cache_access_ns ~placement:P.Config.Modulo ~replacement:P.Config.Lru
  in
  let cache_access_ns_rand =
    cache_access_ns ~placement:P.Config.Random_modulo
      ~replacement:P.Config.Random_replacement
  in
  let tlb_ns = tlb_access_ns () in
  Format.printf
    "per access: cache DET(modulo+LRU) %.1f ns, cache RAND(rm+random) %.1f ns, TLB %.1f ns@."
    cache_access_ns_det cache_access_ns_rand tlb_ns;
  let ( trace_overhead_pct,
        trace_overhead_spread_pct,
        trace_overhead_pairs,
        trace_events,
        traced_samples_identical ) =
    p1_trace_overhead ~n:(Stdlib.max 50 (n / 4))
  in
  {
    campaign_runs = n;
    domain_count;
    throughput;
    per_run_us_det;
    per_run_us_rand;
    per_run_us_det_retired;
    per_run_us_rand_retired;
    batched_identical_to_retired = !batched_identical_to_retired;
    decode_cache_hits;
    decode_cache_misses;
    batch_scratches_created;
    batch_reuses;
    cache_access_ns_det;
    cache_access_ns_rand;
    tlb_access_ns = tlb_ns;
    samples_identical_across_jobs = true;
    trace_overhead_pct;
    trace_overhead_spread_pct;
    trace_overhead_pairs;
    trace_events;
    traced_samples_identical;
  }

(* ------------------------------------------------------------------ *)
(* P2: the content-addressed sample store — cold campaign vs warm
   re-analysis (every measurement a cache hit) vs interrupted + resumed.
   Records the cold/warm speedup and re-checks the determinism contract:
   warm and resumed samples must be bit-identical to the cold run, and a
   warm re-analysis must invoke the simulator zero times. *)

type store_results = {
  store_runs : int;
  store_chunk_size : int;
  cold_seconds : float;
  warm_seconds : float;
  resumed_seconds : float;
  warm_speedup : float;
  resumed_cached_runs : int;
  warm_zero_recompute : bool;
  warm_identical : bool;
  resumed_identical : bool;
}

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let p2_store_perf () =
  section "P2  Sample store: cold campaign vs warm re-analysis vs interrupted+resume";
  let n = Stdlib.max 60 (Stdlib.min !runs 600) in
  let chunk_size = 64 in
  let det_calls = ref 0 and rand_calls = ref 0 in
  let input =
    {
      (M.Campaign.default_input
         ~measure_det:(fun i ->
           incr det_calls;
           T.Experiment.measure det_experiment ~run_index:i)
         ~measure_rand:(fun i ->
           incr rand_calls;
           T.Experiment.measure rand_experiment ~run_index:i))
      with
      M.Campaign.runs = n;
      M.Campaign.options =
        {
          M.Protocol.default_options with
          M.Protocol.gate_on_iid = false;
          M.Protocol.check_convergence = false;
        };
    }
  in
  let samples = function
    | Ok c -> (c.M.Campaign.det_sample, c.M.Campaign.rand_sample)
    | Error f -> Format.kasprintf failwith "P2 campaign failed: %a" M.Protocol.pp_failure f
  in
  let dir = Filename.temp_file "bench_store" "" in
  Sys.remove dir;
  let root = M.Store.open_root ~dir in
  let config =
    [
      ("bench", "p2");
      ("seed", Int64.to_string base_seed);
      ("runs", string_of_int n);
    ]
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let open_session ?resume config =
    let key = M.Store.key ~chunk_size config in
    match
      M.Store.open_session ~chunk_size ?resume root ~key ~config ~runs:n
        ~resilient:false
    with
    | Ok s -> s
    | Error e -> failwith ("P2: open_session: " ^ e)
  in
  (* cold: every chunk simulated and checkpointed *)
  let cold_session = open_session config in
  let cold, cold_seconds =
    time_it (fun () -> M.Campaign.run ~jobs:1 ~store:cold_session input)
  in
  M.Store.close cold_session;
  let cold_samples = samples cold in
  (* warm: same key, zero simulator runs *)
  det_calls := 0;
  rand_calls := 0;
  let warm_session = open_session config in
  let warm, warm_seconds =
    time_it (fun () -> M.Campaign.run ~jobs:1 ~store:warm_session input)
  in
  M.Store.close warm_session;
  let warm_zero_recompute = !det_calls = 0 && !rand_calls = 0 in
  let warm_identical = samples warm = cold_samples in
  (* interrupted + resumed, against a fresh record *)
  let config_r = ("variant", "resume") :: config in
  let crash_session = open_session config_r in
  M.Store.set_fail_after crash_session (Stdlib.max 1 (n / chunk_size));
  (match M.Campaign.run ~jobs:1 ~store:crash_session input with
  | _ -> failwith "P2: expected the injected crash"
  | exception M.Store.Injected_crash _ -> M.Store.close crash_session);
  let resume_session = open_session ~resume:true config_r in
  let resumed_cached_runs =
    M.Store.cached_runs resume_session ~phase:"collect_det"
    + M.Store.cached_runs resume_session ~phase:"collect_rand"
  in
  let resumed, resumed_seconds =
    time_it (fun () -> M.Campaign.run ~jobs:1 ~store:resume_session input)
  in
  M.Store.close resume_session;
  let resumed_identical = samples resumed = cold_samples in
  let warm_speedup = cold_seconds /. warm_seconds in
  Format.printf "campaign of 2x%d runs, chunk size %d, jobs=1@.@." n chunk_size;
  Format.printf "%-44s %10.3fs@." "cold (simulate + checkpoint)" cold_seconds;
  Format.printf "%-44s %10.3fs  (%.1fx cold)@." "warm re-analysis (pure cache hit)"
    warm_seconds warm_speedup;
  Format.printf "%-44s %10.3fs  (%d/%d runs from the record)@."
    "interrupted, then resumed" resumed_seconds resumed_cached_runs (2 * n);
  Format.printf "warm re-analysis ran the simulator zero times: %b@." warm_zero_recompute;
  Format.printf "warm samples bit-identical to cold:            %b@." warm_identical;
  Format.printf "resumed samples bit-identical to cold:         %b@." resumed_identical;
  {
    store_runs = n;
    store_chunk_size = chunk_size;
    cold_seconds;
    warm_seconds;
    resumed_seconds;
    warm_speedup;
    resumed_cached_runs;
    warm_zero_recompute;
    warm_identical;
    resumed_identical;
  }

(* ------------------------------------------------------------------ *)
(* P3: analysis throughput — the incremental/parallel analysis engine of
   this PR against the retired implementations, timed in the same run so
   the baseline shares the machine, the compiler and the sample.  The
   retired code paths (from-scratch convergence study, shared-PRNG
   sequential bootstrap, per-lag ACF) are inlined verbatim below; the
   convergence baseline doubles as a bit-identity oracle. *)

type bootstrap_row = { boot_jobs : int; boot_seconds : float; boot_speedup : float }

type analysis_results = {
  analysis_runs : int;
  conv_steps : int;
  conv_retired_seconds : float;
  conv_incremental_seconds : float;
  conv_speedup : float;
  conv_comparisons : int;
  conv_identical : bool;
  boot_replicates : int;
  boot_retired_seconds : float;
  boot_rows : bootstrap_row list;
  boot_identical_across_jobs : bool;
  acf_lags : int;
  acf_per_lag_seconds : float;
  acf_single_pass_seconds : float;
  acf_speedup : float;
  acf_identical : bool;
}

(* Retired [Convergence.study]: re-sorts the prefix and re-extracts every
   block maximum at each step — O(k * n log n) over k steps. *)
let retired_convergence ?(probability = 1e-9) ?(step = 100) ?(tolerance = 0.01)
    ?(stable_steps = 3) ?(min_runs = 100) xs =
  let estimate_at xs probability =
    let block_size = E.Block_maxima.suggest_block_size (Array.length xs) in
    let maxima = E.Block_maxima.extract ~block_size xs in
    let gumbel = E.Gumbel_fit.fit ~method_:E.Gumbel_fit.Pwm maxima in
    let curve =
      E.Pwcet.create ~model:(E.Pwcet.Gumbel_tail gumbel) ~block_size ~sample:xs
    in
    E.Pwcet.estimate curve ~cutoff_probability:probability
  in
  let n = Array.length xs in
  let rec go used previous streak acc =
    if used > n then (false, n, List.rev acc)
    else begin
      let sub = Array.sub xs 0 used in
      let est = estimate_at sub probability in
      let acc = (used, est) :: acc in
      let streak =
        match previous with
        | Some prev when Float.abs (est -. prev) /. Float.abs prev <= tolerance ->
            streak + 1
        | Some _ | None -> 0
      in
      if streak >= stable_steps then (true, used, List.rev acc)
      else go (used + step) (Some est) streak acc
    end
  in
  go min_runs None 0 []

(* Retired [Bootstrap.pwcet_interval]: every replicate drawn sequentially
   from the one shared PRNG — inherently unparallelizable.  Wall-time
   baseline only; the derived-seed engine pins its own (new) stream. *)
let retired_bootstrap ~prng ~sample ~cutoff_probability ~replicates ~confidence =
  let estimate_on xs =
    let block_size = E.Block_maxima.suggest_block_size (Array.length xs) in
    let maxima = E.Block_maxima.extract ~block_size xs in
    let model = E.Gumbel_fit.fit maxima in
    let curve =
      E.Pwcet.create ~model:(E.Pwcet.Gumbel_tail model) ~block_size ~sample:xs
    in
    E.Pwcet.estimate curve ~cutoff_probability
  in
  let n = Array.length sample in
  let point = estimate_on sample in
  let resample = Array.make n 0. in
  let estimates =
    Array.init replicates (fun _ ->
        for i = 0 to n - 1 do
          resample.(i) <- sample.(Repro_rng.Prng.int_below prng n)
        done;
        estimate_on resample)
  in
  Array.sort Float.compare estimates;
  let tail = (1. -. confidence) /. 2. in
  (E.Bootstrap.percentile estimates tail, point, E.Bootstrap.percentile estimates (1. -. tail))

let p3_analysis_perf () =
  section
    "P3  Analysis throughput: incremental convergence, fanned-out bootstrap, one-pass ACF";
  let n = Stdlib.max 2000 !runs in
  let e = T.Experiment.create ~config:P.Config.mbpta_compliant ~base_seed:777L () in
  let xs = T.Experiment.collect e ~runs:n in
  (* Convergence: retired from-scratch study vs the incremental engine,
     same sample, and the histories must be bit-identical. *)
  let (r_conv, r_used, r_hist), conv_retired_seconds =
    time_it (fun () -> retired_convergence xs)
  in
  let c, conv_incremental_seconds = time_it (fun () -> E.Convergence.study xs) in
  let conv_identical =
    r_conv = c.E.Convergence.converged
    && r_used = c.E.Convergence.runs_used
    && r_hist
       = List.map
           (fun p -> (p.E.Convergence.runs, p.E.Convergence.estimate))
           c.E.Convergence.history
  in
  if not conv_identical then
    failwith "P3: incremental convergence diverged from the retired reference";
  let conv_speedup = conv_retired_seconds /. conv_incremental_seconds in
  Format.printf "convergence study over %d runs (%d estimates):@." n
    (List.length c.E.Convergence.history);
  Format.printf "  retired (from scratch per step)  %10.4fs@." conv_retired_seconds;
  Format.printf "  incremental (this PR)            %10.4fs  (%.1fx, %d comparisons)@."
    conv_incremental_seconds conv_speedup c.E.Convergence.comparisons;
  Format.printf "  histories bit-identical: %b@." conv_identical;
  (* Bootstrap: retired sequential baseline, then the derived-seed engine
     at increasing job counts — intervals bit-identical at every count. *)
  let replicates = if !smoke then 100 else 200 in
  let confidence = 0.95 in
  let cutoff_probability = 1e-9 in
  let _, boot_retired_seconds =
    time_it (fun () ->
        retired_bootstrap
          ~prng:(Repro_rng.Prng.create 4321L)
          ~sample:xs ~cutoff_probability ~replicates ~confidence)
  in
  Format.printf "@.bootstrap (%d replicates over %d observations):@." replicates n;
  Format.printf "  retired (shared PRNG, sequential) %9.4fs@." boot_retired_seconds;
  let reference = ref None in
  let boot_rows =
    List.map
      (fun jobs ->
        let iv, boot_seconds =
          time_it (fun () ->
              E.Bootstrap.pwcet_interval ~replicates ~confidence ~jobs
                ~prng:(Repro_rng.Prng.create 4321L)
                ~sample:xs ~cutoff_probability ())
        in
        (match !reference with
        | None -> reference := Some iv
        | Some r ->
            if r <> iv then
              failwith "P3: bootstrap interval differs across job counts");
        { boot_jobs = jobs; boot_seconds; boot_speedup = 0. })
      [ 1; 2; 4; 8 ]
  in
  let base = (List.hd boot_rows).boot_seconds in
  let boot_rows =
    List.map (fun r -> { r with boot_speedup = base /. r.boot_seconds }) boot_rows
  in
  List.iter
    (fun r ->
      Format.printf "  jobs=%d %26s %9.4fs  (%.2fx vs jobs=1)@." r.boot_jobs ""
        r.boot_seconds r.boot_speedup)
    boot_rows;
  Format.printf "  intervals bit-identical across job counts: %b@." true;
  (* ACF: per-lag sweep vs the single-pass sweep, bit-identical output. *)
  let acf_lags = 50 in
  let reps = if !smoke then 50 else 200 in
  let per_lag () =
    Array.init acf_lags (fun i -> S.Autocorrelation.acf xs ~lag:(i + 1))
  in
  let acf_ref = per_lag () in
  let _, acf_per_lag_seconds =
    time_it (fun () ->
        for _ = 1 to reps do
          ignore (per_lag ())
        done)
  in
  let acf_new = S.Autocorrelation.acf_up_to xs ~max_lag:acf_lags in
  let _, acf_single_pass_seconds =
    time_it (fun () ->
        for _ = 1 to reps do
          ignore (S.Autocorrelation.acf_up_to xs ~max_lag:acf_lags)
        done)
  in
  let acf_identical = acf_ref = acf_new in
  if not acf_identical then
    failwith "P3: single-pass ACF diverged from the per-lag reference";
  let acf_speedup = acf_per_lag_seconds /. acf_single_pass_seconds in
  Format.printf "@.ACF sweep to lag %d (x%d repetitions):@." acf_lags reps;
  Format.printf "  per-lag passes                   %10.4fs@." acf_per_lag_seconds;
  Format.printf "  single pass (this PR)            %10.4fs  (%.1fx)@."
    acf_single_pass_seconds acf_speedup;
  Format.printf "  lag values bit-identical: %b@." acf_identical;
  {
    analysis_runs = n;
    conv_steps = List.length c.E.Convergence.history;
    conv_retired_seconds;
    conv_incremental_seconds;
    conv_speedup;
    conv_comparisons = c.E.Convergence.comparisons;
    conv_identical;
    boot_replicates = replicates;
    boot_retired_seconds;
    boot_rows;
    boot_identical_across_jobs = true;
    acf_lags;
    acf_per_lag_seconds;
    acf_single_pass_seconds;
    acf_speedup;
    acf_identical;
  }

(* ------------------------------------------------------------------ *)
(* P4: distributed campaigns — sharded collection (in-process workers
   under the coordinator's supervision loop) plus the integrity-verified
   merge, against the single-process store path.  Re-checks the merge
   contract as it runs: the merged record must be byte-identical to the
   single-process record, the final samples bit-identical, and a
   bit-flipped shard record must be quarantined, never merged. *)

type distributed_results = {
  dist_runs : int;
  dist_shards : int;
  dist_chunk_size : int;
  single_seconds : float;
  sharded_seconds : float;  (* supervised shard collection, one domain each *)
  merge_seconds : float;
  merged_record_identical : bool;
  merged_samples_identical : bool;
  quarantine_detected : bool;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let p4_distributed_perf () =
  section "P4  Distributed campaigns: sharded collection + integrity-verified merge";
  let n = Stdlib.max 60 (Stdlib.min !runs 600) in
  let chunk_size = 64 in
  let shards = 3 in
  let input =
    {
      (M.Campaign.default_input
         ~measure_det:(fun i -> T.Experiment.measure det_experiment ~run_index:i)
         ~measure_rand:(fun i -> T.Experiment.measure rand_experiment ~run_index:i))
      with
      M.Campaign.runs = n;
      M.Campaign.options =
        {
          M.Protocol.default_options with
          M.Protocol.gate_on_iid = false;
          M.Protocol.check_convergence = false;
        };
    }
  in
  let config =
    [ ("bench", "p4"); ("seed", Int64.to_string base_seed); ("runs", string_of_int n) ]
  in
  let key = M.Store.key ~chunk_size config in
  let record_path dir = Filename.concat dir (key ^ ".jsonl") in
  let temp_dir () =
    let d = Filename.temp_file "bench_dist" "" in
    Sys.remove d;
    d
  in
  let dirs = List.init (shards + 2) (fun _ -> temp_dir ()) in
  Fun.protect ~finally:(fun () -> List.iter rm_rf dirs) @@ fun () ->
  let single_dir, merge_dir, shard_dirs =
    match dirs with a :: b :: rest -> (a, b, rest) | _ -> assert false
  in
  let open_session ?shard dir =
    match
      M.Store.open_session ~chunk_size ~resume:true ?shard
        (M.Store.open_root ~dir) ~key ~config ~runs:n ~resilient:false
    with
    | Ok s -> s
    | Error e -> failwith ("P4: open_session: " ^ e)
  in
  let samples = function
    | Ok c -> (c.M.Campaign.det_sample, c.M.Campaign.rand_sample)
    | Error f -> Format.kasprintf failwith "P4 campaign failed: %a" M.Protocol.pp_failure f
  in
  (* single-process reference *)
  let single_session = open_session single_dir in
  let single, single_seconds =
    time_it (fun () -> M.Campaign.run ~jobs:1 ~store:single_session input)
  in
  M.Store.close single_session;
  let single_samples = samples single in
  (* sharded collection under the supervision loop (workers in-process) *)
  let policy = M.Coordinator.default_policy ~shards in
  let run_shard ~shard ~span ~attempt:_ =
    let s = open_session ~shard:span (List.nth shard_dirs (shard - 1)) in
    match M.Campaign.collect_shard ~jobs:1 ~store:s input with
    | Ok () ->
        M.Store.close s;
        Ok ()
    | Error f ->
        M.Store.close s;
        Error (M.Coordinator.Crashed (Format.asprintf "%a" M.Protocol.pp_failure f))
  in
  let report, sharded_seconds =
    time_it (fun () ->
        M.Coordinator.supervise ~policy ~chunk_size ~runs:n ~run_shard ())
  in
  if report.M.Coordinator.unrecoverable > 0 then failwith "P4: shard collection failed";
  let src = List.map (fun dir -> M.Store.open_root ~dir) shard_dirs in
  let dst = M.Store.open_root ~dir:merge_dir in
  let merge_result, merge_seconds = time_it (fun () -> M.Store.merge ~src dst) in
  (match merge_result with
  | Ok _ -> ()
  | Error e -> failwith ("P4: merge: " ^ e));
  let merged_record_identical =
    read_file (record_path merge_dir) = read_file (record_path single_dir)
  in
  let merged_session = open_session merge_dir in
  let merged = M.Campaign.run ~jobs:1 ~store:merged_session input in
  M.Store.close merged_session;
  let merged_samples_identical = samples merged = single_samples in
  if not (merged_record_identical && merged_samples_identical) then
    failwith "P4: sharded campaign diverged from the single-process reference";
  (* a bit-flipped shard record must be quarantined, never merged *)
  let victim = record_path (List.nth shard_dirs 1) in
  let bytes = Bytes.of_string (read_file victim) in
  Bytes.set bytes
    (Bytes.length bytes / 2)
    (Char.chr (Char.code (Bytes.get bytes (Bytes.length bytes / 2)) lxor 1));
  let oc = open_out_bin victim in
  output_bytes oc bytes;
  close_out oc;
  let quarantine_dst = M.Store.open_root ~dir:(List.nth dirs 0 ^ ".q") in
  let quarantine_detected =
    match M.Store.merge ~src quarantine_dst with
    | Ok m -> m.M.Store.quarantined <> []
    | Error e -> failwith ("P4: quarantine merge: " ^ e)
  in
  rm_rf (List.nth dirs 0 ^ ".q");
  if not quarantine_detected then
    failwith "P4: a bit-flipped shard record was merged without quarantine";
  Format.printf "campaign of 2x%d runs, chunk size %d, %d shards@.@." n chunk_size shards;
  Format.printf "%-44s %10.3fs@." "single-process (simulate + checkpoint)" single_seconds;
  Format.printf "%-44s %10.3fs@."
    (Printf.sprintf "sharded collection (%d supervised workers)" shards)
    sharded_seconds;
  Format.printf "%-44s %10.3fs@." "integrity-verified merge" merge_seconds;
  Format.printf "merged record byte-identical to single-process: %b@."
    merged_record_identical;
  Format.printf "merged samples bit-identical to single-process: %b@."
    merged_samples_identical;
  Format.printf "bit-flipped shard record quarantined by merge:  %b@." quarantine_detected;
  {
    dist_runs = n;
    dist_shards = shards;
    dist_chunk_size = chunk_size;
    single_seconds;
    sharded_seconds;
    merge_seconds;
    merged_record_identical;
    merged_samples_identical;
    quarantine_detected;
  }

(* ------------------------------------------------------------------ *)
(* P5: schedule randomization + the timing-leak comparator.  Per-policy
   RTOS-simulation throughput (the [mbpta shuffle] kernel), bit-identity
   of a shuffle campaign across job counts, comparator throughput, and
   the two acceptance verdicts of the leak protocol: a DET platform
   exposes a secret-dependent input, same-distribution RAND campaigns
   stay clean. *)

type shuffle_policy_perf = {
  sp_policy : string;
  sp_seconds : float;
  sp_runs_per_sec : float;
  sp_distinct : int;
  sp_entropy_bits : float;
}

type shuffle_leak_results = {
  sl_runs : int;
  sl_policies : shuffle_policy_perf list;
  shuffle_identical_across_jobs : bool;
  welch_tests_per_sec : float;
  leak_det_detected : bool;  (* DET input-0 vs input-1 must leak *)
  leak_rand_clean : bool;  (* RAND same-distribution pair must not *)
}

let p5_shuffle_leak_perf () =
  section "P5  Schedule randomization + timing-leak comparator";
  let n = Stdlib.max 60 (Stdlib.min !runs 600) in
  let schedule i policy =
    T.Experiment.run_schedule rand_experiment ~policy ~period:60_000 ~max_jitter:2_000
      ~horizon:240_000 ~run_index:i ()
  in
  let sl_policies =
    List.map
      (fun policy ->
        let rs, seconds =
          time_it (fun () ->
              M.Parallel.init ~jobs:1 n (fun i -> schedule i policy))
        in
        let rand_metrics =
          T.Rtos.randomization_of_signatures
            (Array.to_list (Array.map (fun r -> r.T.Experiment.signature) rs))
        in
        let row =
          {
            sp_policy = T.Rtos.policy_name policy;
            sp_seconds = seconds;
            sp_runs_per_sec = float_of_int n /. seconds;
            sp_distinct = rand_metrics.T.Rtos.distinct;
            sp_entropy_bits = rand_metrics.T.Rtos.entropy_bits;
          }
        in
        Format.printf
          "%-8s %d RTOS runs in %8.3fs (%8.1f runs/s), %d distinct schedules, %.3f bits@."
          row.sp_policy n seconds row.sp_runs_per_sec row.sp_distinct row.sp_entropy_bits;
        row)
      T.Rtos.all_policies
  in
  let shuffle_identical_across_jobs =
    let collect jobs =
      M.Parallel.init ~jobs n (fun i -> schedule i T.Rtos.Priority_shuffle)
    in
    collect 1 = collect 4
  in
  Format.printf "shuffle campaign bit-identical jobs=1 vs 4:       %b@."
    shuffle_identical_across_jobs;
  (* leak protocol: DET with the input pinned per class leaks; two RAND
     campaigns over the same input distribution do not *)
  let det_fixed idx =
    Array.init n (fun i ->
        T.Experiment.measure_fixed_scenario det_experiment ~scenario_index:idx ~run_index:i)
  in
  let det_a = det_fixed 0 and det_b = det_fixed 1 in
  let rand_a = Array.init n (fun i -> T.Experiment.measure rand_experiment ~run_index:i) in
  let rand_b =
    Array.init n (fun i -> T.Experiment.measure rand_experiment ~run_index:(n + i))
  in
  let det_verdict = S.Welch.t_test det_a det_b in
  let rand_verdict = S.Welch.t_test rand_a rand_b in
  let leak_det_detected = not det_verdict.S.Welch.equal_means in
  let leak_rand_clean = rand_verdict.S.Welch.equal_means in
  if not leak_det_detected then failwith "P5: DET secret-dependent pair not detected";
  if not leak_rand_clean then failwith "P5: RAND same-distribution pair flagged as leak";
  let comparator_batch = 2_000 in
  let (), welch_seconds =
    time_it (fun () ->
        for _ = 1 to comparator_batch do
          ignore (S.Welch.t_test rand_a rand_b)
        done)
  in
  let welch_tests_per_sec = float_of_int comparator_batch /. welch_seconds in
  Format.printf "DET input-0 vs input-1 leak detected:             %b (p = %.3g)@."
    leak_det_detected det_verdict.S.Welch.p_value;
  Format.printf "RAND same-distribution pair clean:                %b (p = %.3g)@."
    leak_rand_clean rand_verdict.S.Welch.p_value;
  Format.printf "Welch comparator: %.0f tests/s on 2x%d samples@." welch_tests_per_sec n;
  {
    sl_runs = n;
    sl_policies;
    shuffle_identical_across_jobs;
    welch_tests_per_sec;
    leak_det_detected;
    leak_rand_clean;
  }

(* ------------------------------------------------------------------ *)
(* P6: store I/O at campaign scale.  The three claims of the million-run
   rebuild, each checked as it is measured: (1) a warm query over a
   10^5-run v3 record (binary payloads + index sidecar) is >= 10x faster
   than the PR9-style full text parse of the same sample in v2 framing;
   (2) merge peak RSS is flat between 10^4- and 10^5-run campaigns
   (streaming chunk union, measured as VmHWM of a child process that does
   nothing but the merge); (3) binary payloads shrink bytes-per-run vs
   text.  Uses a synthetic measurement (pure in the run index) so the
   store, not the simulator, is what's timed. *)

type store_io_results = {
  io_runs : int;
  io_chunk_size : int;
  v3_bytes_per_run : float;
  v2_bytes_per_run : float;
  warm_query_seconds : float;
  full_parse_seconds : float;
  warm_speedup_vs_full_parse : float;
  io_warm_identical : bool;
  merge_rss_small_kb : int;
  merge_rss_large_kb : int;
  merge_rss_ratio : float;
}

let p6_store_io_perf () =
  section "P6  Store I/O at campaign scale: binary payloads, indexed reads, streaming merge";
  let n = 100_000 in
  (* the scaled-protocol chunk size for 10^5+-run campaigns (EXPERIMENTS
     §scaled): ~25 checkpoint barriers at this n — still fine-grained
     enough to resume from, and 16x fewer per-chunk seeks/frames than the
     3,000-run default of 256.  Both the v3 record and the v2 baseline use
     the same layout. *)
  let chunk_size = 4096 in
  let phase = "collect_det" in
  (* synthetic latency: pure in the run index, cheap, full-width mantissas
     (division by 3 leaves a repeating binary fraction, so the v2 text
     framing prints the full 17 significant digits — matching what real
     campaign latencies, products of float arithmetic, look like) *)
  let value i = 1e6 +. (float_of_int ((i * 2654435761) land 0xfffff) /. 3.) in
  let config runs extra =
    [ ("bench", "p6"); ("runs", string_of_int runs) ] @ extra
  in
  let tmp_dir () =
    let d = Filename.temp_file "bench_p6" "" in
    Sys.remove d;
    M.Trace.ensure_dir d;
    d
  in
  let with_dir f =
    let d = tmp_dir () in
    Fun.protect ~finally:(fun () -> rm_rf d) @@ fun () -> f d
  in
  let open_session ?resume ?shard root ~runs cfg =
    let key = M.Store.key ~chunk_size cfg in
    match
      M.Store.open_session ~chunk_size ?resume ?shard root ~key ~config:cfg ~runs
        ~resilient:false
    with
    | Ok s -> s
    | Error e -> failwith ("P6: open_session: " ^ e)
  in
  with_dir @@ fun v3_dir ->
  with_dir @@ fun v2_dir ->
  (* --- warm query vs full parse ----------------------------------- *)
  let cfg = config n [] in
  let root_v3 = M.Store.open_root ~dir:v3_dir in
  let s = open_session root_v3 ~runs:n cfg in
  let expected = M.Store.collect s ~jobs:1 ~phase n value in
  M.Store.close s;
  let v3_file = Filename.concat v3_dir (M.Store.key ~chunk_size cfg ^ ".jsonl") in
  (* the same sample in v2 framing (text float payloads), fabricated the
     way the PR9 writer framed it — the full-parse baseline reads this *)
  let key2 = M.Store.key_v2 ~chunk_size cfg in
  let fabricate_v2 () =
    let module J = M.Trace.Json in
    let oc = open_out_bin (Filename.concat v2_dir (key2 ^ ".jsonl")) in
    let put line = output_string oc (M.Store.seal line ^ "\n") in
    put
      (J.to_string
         (J.Obj
            [
              ("kind", J.String "meta");
              ("schema", J.String "store/v2");
              ("key", J.String key2);
              ("runs", J.Int n);
              ("resilient", J.Bool false);
              ("chunk_size", J.Int chunk_size);
              ( "config",
                J.Obj (List.map (fun (k, v) -> (k, J.String v)) (List.sort compare cfg))
              );
            ]));
    let lo = ref 0 in
    while !lo < n do
      let len = Stdlib.min chunk_size (n - !lo) in
      put
        (J.to_string
           (J.Obj
              [
                ("kind", J.String "chunk");
                ("phase", J.String phase);
                ("lo", J.Int !lo);
                ("values", J.List (List.init len (fun i -> J.Float expected.(!lo + i))));
              ]));
      lo := !lo + len
    done;
    close_out oc
  in
  fabricate_v2 ();
  let root_v2 = M.Store.open_root ~dir:v2_dir in
  let file_size f = (Unix.stat f).Unix.st_size in
  let v3_bytes_per_run = float_of_int (file_size v3_file) /. float_of_int n in
  let v2_bytes_per_run =
    float_of_int (file_size (Filename.concat v2_dir (key2 ^ ".jsonl"))) /. float_of_int n
  in
  (* PR9 full-parse read path, reproduced faithfully: a warm query used to
     re-scan the whole record — per line, verify the md5 trailer, hand the
     body to the JSON parser, and rebuild each chunk's float array from
     text ([parse_chunk_line] in the PR9 store).  The current [ls ~deep]
     scan is already cheaper than that, so timing it would flatter the
     baseline. *)
  let pr9_full_parse file =
    let module J = M.Trace.Json in
    let unseal line =
      let tlen = String.length ",\"sum\":\"\"}" + 32 in
      let len = String.length line in
      if len <= tlen then failwith "P6: v2 line without a checksum trailer";
      let start = len - tlen in
      let sum = String.sub line (start + 8) 32 in
      let body = String.sub line 0 start ^ "}" in
      if Digest.to_hex (Digest.string body) <> sum then
        failwith "P6: v2 checksum mismatch";
      body
    in
    let ic = open_in_bin file in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let total = ref 0 in
    (try
       while true do
         let body = unseal (input_line ic) in
         match J.of_string body with
         | Error e -> failwith ("P6: v2 line unreadable: " ^ e)
         | Ok j -> (
             match Option.bind (J.member "kind" j) J.to_str with
             | Some "meta" -> ()
             | Some "chunk" -> (
                 match J.member "values" j with
                 | Some (J.List vs) ->
                     List.iter
                       (fun v ->
                         match J.to_float v with
                         | Some _ -> incr total
                         | None -> failwith "P6: non-numeric sample")
                       vs
                 | _ -> failwith "P6: chunk without values")
             | _ -> failwith "P6: unexpected v2 line kind")
       done
     with End_of_file -> ());
    !total
  in
  (match M.Store.ls ~deep:true root_v2 with
  | [ e ] when e.M.Store.status = M.Store.Complete -> ()
  | _ -> failwith "P6: fabricated v2 record did not verify");
  let parsed_runs, full_parse_seconds =
    time_best ~reps:5 (fun () -> pr9_full_parse (Filename.concat v2_dir (key2 ^ ".jsonl")))
  in
  if parsed_runs <> n then failwith "P6: full parse dropped runs";
  (* warm v3 query: open, materialize the sample from the record (the
     measurement function must never run), close *)
  let warm, warm_query_seconds =
    time_best ~reps:5 (fun () ->
        let s = open_session ~resume:true root_v3 ~runs:n cfg in
        let sample =
          M.Store.collect s ~jobs:1 ~phase n (fun _ ->
              failwith "P6: warm query recomputed a run")
        in
        M.Store.close s;
        sample)
  in
  let io_warm_identical = warm = expected in
  let warm_speedup = full_parse_seconds /. warm_query_seconds in
  (* --- merge RSS flatness ------------------------------------------ *)
  let merge_rss runs =
    let cfg = config runs [ ("variant", "merge") ] in
    let shard_dirs = [ tmp_dir (); tmp_dir () ] in
    let dst_dir = tmp_dir () in
    Fun.protect ~finally:(fun () -> List.iter rm_rf (dst_dir :: shard_dirs))
    @@ fun () ->
    let mid = runs / 2 / chunk_size * chunk_size in
    List.iteri
      (fun i dir ->
        let span = if i = 0 then (0, mid) else (mid, runs) in
        let root = M.Store.open_root ~dir in
        let s = open_session ~shard:span root ~runs cfg in
        ignore (M.Store.collect s ~jobs:1 ~phase runs value);
        M.Store.close s)
      shard_dirs;
    M.Trace.ensure_dir dst_dir;
    let argv =
      Array.of_list
        ((Sys.executable_name :: "--p6-merge" :: shard_dirs) @ [ dst_dir ])
    in
    let r_out, w_out = Unix.pipe () in
    let pid = Unix.create_process Sys.executable_name argv Unix.stdin w_out Unix.stderr in
    Unix.close w_out;
    let ic = Unix.in_channel_of_descr r_out in
    let line = try input_line ic with End_of_file -> "" in
    let _, status = Unix.waitpid [] pid in
    close_in ic;
    (match status with
    | Unix.WEXITED 0 -> ()
    | _ -> failwith "P6: merge child failed");
    match String.split_on_char ' ' line with
    | [ "vmhwm_kb"; v ] -> int_of_string v
    | _ -> failwith ("P6: unexpected merge-child output: " ^ line)
  in
  let merge_rss_small_kb = merge_rss (n / 10) in
  let merge_rss_large_kb = merge_rss n in
  let merge_rss_ratio =
    if merge_rss_small_kb > 0 then
      float_of_int merge_rss_large_kb /. float_of_int merge_rss_small_kb
    else 0.
  in
  Format.printf "campaign of %d runs, chunk size %d@.@." n chunk_size;
  Format.printf "%-52s %10.1f B@." "bytes per run, v2 text payloads" v2_bytes_per_run;
  Format.printf "%-52s %10.1f B@." "bytes per run, v3 binary payloads" v3_bytes_per_run;
  Format.printf "%-52s %10.3fs@." "full parse of the v2 record (PR9 read path)"
    full_parse_seconds;
  Format.printf "%-52s %10.3fs  (%.1fx full parse)@." "warm v3 query (index + binary decode)"
    warm_query_seconds warm_speedup;
  Format.printf "warm sample bit-identical to cold:  %b@." io_warm_identical;
  Format.printf "merge peak RSS: %d runs -> %d KB, %d runs -> %d KB (ratio %.2f)@."
    (n / 10) merge_rss_small_kb n merge_rss_large_kb merge_rss_ratio;
  if not io_warm_identical then failwith "P6: warm sample diverged from cold";
  if warm_speedup < 10. then
    Format.kasprintf failwith
      "P6: warm query only %.1fx faster than the full-parse path (need >= 10x)"
      warm_speedup;
  if merge_rss_small_kb > 0 && merge_rss_ratio > 1.5 then
    Format.kasprintf failwith
      "P6: merge peak RSS grew %.2fx from %d to %d runs — not constant-memory"
      merge_rss_ratio (n / 10) n;
  {
    io_runs = n;
    io_chunk_size = chunk_size;
    v3_bytes_per_run;
    v2_bytes_per_run;
    warm_query_seconds;
    full_parse_seconds;
    warm_speedup_vs_full_parse = warm_speedup;
    io_warm_identical;
    merge_rss_small_kb;
    merge_rss_large_kb;
    merge_rss_ratio;
  }

let json_of_perf r s a d sl io =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"bench_pr10/v1\",\n";
  add "  \"smoke\": %b,\n" !smoke;
  add "  \"campaign_runs\": %d,\n" r.campaign_runs;
  add "  \"recommended_domain_count\": %d,\n" r.domain_count;
  add "  \"samples_identical_across_jobs\": %b,\n" r.samples_identical_across_jobs;
  add "  \"campaign_throughput\": [\n";
  List.iteri
    (fun i t ->
      add "    {\"jobs\": %d, \"seconds\": %.6f, \"runs_per_sec\": %.2f, \"speedup_vs_jobs1\": %.3f}%s\n"
        t.jobs t.seconds t.runs_per_sec t.speedup
        (if i = List.length r.throughput - 1 then "" else ","))
    r.throughput;
  add "  ],\n";
  add "  \"per_run_us\": {\"det\": %.2f, \"rand\": %.2f},\n" r.per_run_us_det
    r.per_run_us_rand;
  add "  \"per_run_us_retired\": {\"det\": %.2f, \"rand\": %.2f},\n"
    r.per_run_us_det_retired r.per_run_us_rand_retired;
  add "  \"batched_identical_to_retired\": %b,\n" r.batched_identical_to_retired;
  add
    "  \"hotpath\": {\"decode_cache_hits\": %d, \"decode_cache_misses\": %d, \
     \"batch_scratches_created\": %d, \"batch_reuses\": %d},\n"
    r.decode_cache_hits r.decode_cache_misses r.batch_scratches_created r.batch_reuses;
  add "  \"per_access_ns\": {\"cache_det\": %.2f, \"cache_rand\": %.2f, \"tlb\": %.2f},\n"
    r.cache_access_ns_det r.cache_access_ns_rand r.tlb_access_ns;
  add
    "  \"trace\": {\"overhead_pct\": %.2f, \"overhead_spread_pct\": %.2f, \
     \"overhead_pairs\": %d, \"events\": %d, \"traced_samples_identical\": %b},\n"
    r.trace_overhead_pct r.trace_overhead_spread_pct r.trace_overhead_pairs
    r.trace_events r.traced_samples_identical;
  add "  \"store\": {\n";
  add "    \"campaign_runs\": %d,\n" s.store_runs;
  add "    \"chunk_size\": %d,\n" s.store_chunk_size;
  add "    \"cold_seconds\": %.6f,\n" s.cold_seconds;
  add "    \"warm_seconds\": %.6f,\n" s.warm_seconds;
  add "    \"resumed_seconds\": %.6f,\n" s.resumed_seconds;
  add "    \"warm_speedup_vs_cold\": %.2f,\n" s.warm_speedup;
  add "    \"resumed_cached_runs\": %d,\n" s.resumed_cached_runs;
  add "    \"warm_zero_recompute\": %b,\n" s.warm_zero_recompute;
  add "    \"warm_samples_identical\": %b,\n" s.warm_identical;
  add "    \"resumed_samples_identical\": %b\n" s.resumed_identical;
  add "  },\n";
  add "  \"distributed\": {\n";
  add "    \"campaign_runs\": %d,\n" d.dist_runs;
  add "    \"shards\": %d,\n" d.dist_shards;
  add "    \"chunk_size\": %d,\n" d.dist_chunk_size;
  add "    \"single_process_seconds\": %.6f,\n" d.single_seconds;
  add "    \"sharded_collection_seconds\": %.6f,\n" d.sharded_seconds;
  add "    \"merge_seconds\": %.6f,\n" d.merge_seconds;
  add "    \"merged_record_byte_identical\": %b,\n" d.merged_record_identical;
  add "    \"merged_samples_identical\": %b,\n" d.merged_samples_identical;
  add "    \"bit_flip_quarantined\": %b\n" d.quarantine_detected;
  add "  },\n";
  add "  \"analysis\": {\n";
  add "    \"runs\": %d,\n" a.analysis_runs;
  add "    \"convergence\": {\n";
  add "      \"steps\": %d,\n" a.conv_steps;
  add "      \"retired_seconds\": %.6f,\n" a.conv_retired_seconds;
  add "      \"incremental_seconds\": %.6f,\n" a.conv_incremental_seconds;
  add "      \"speedup\": %.2f,\n" a.conv_speedup;
  add "      \"comparisons\": %d,\n" a.conv_comparisons;
  add "      \"bit_identical_to_retired\": %b\n" a.conv_identical;
  add "    },\n";
  add "    \"bootstrap\": {\n";
  add "      \"replicates\": %d,\n" a.boot_replicates;
  add "      \"retired_seconds\": %.6f,\n" a.boot_retired_seconds;
  add "      \"jobs\": [\n";
  List.iteri
    (fun i r ->
      add "        {\"jobs\": %d, \"seconds\": %.6f, \"speedup_vs_jobs1\": %.3f}%s\n"
        r.boot_jobs r.boot_seconds r.boot_speedup
        (if i = List.length a.boot_rows - 1 then "" else ","))
    a.boot_rows;
  add "      ],\n";
  add "      \"intervals_identical_across_jobs\": %b\n" a.boot_identical_across_jobs;
  add "    },\n";
  add "    \"acf\": {\n";
  add "      \"lags\": %d,\n" a.acf_lags;
  add "      \"per_lag_seconds\": %.6f,\n" a.acf_per_lag_seconds;
  add "      \"single_pass_seconds\": %.6f,\n" a.acf_single_pass_seconds;
  add "      \"speedup\": %.2f,\n" a.acf_speedup;
  add "      \"bit_identical_to_per_lag\": %b\n" a.acf_identical;
  add "    }\n";
  add "  },\n";
  add "  \"shuffle_leak\": {\n";
  add "    \"campaign_runs\": %d,\n" sl.sl_runs;
  add "    \"policies\": [\n";
  List.iteri
    (fun i p ->
      add
        "      {\"policy\": \"%s\", \"seconds\": %.6f, \"runs_per_sec\": %.2f, \
         \"distinct_schedules\": %d, \"entropy_bits\": %.4f}%s\n"
        p.sp_policy p.sp_seconds p.sp_runs_per_sec p.sp_distinct p.sp_entropy_bits
        (if i = List.length sl.sl_policies - 1 then "" else ","))
    sl.sl_policies;
  add "    ],\n";
  add "    \"shuffle_identical_across_jobs\": %b,\n" sl.shuffle_identical_across_jobs;
  add "    \"welch_tests_per_sec\": %.2f,\n" sl.welch_tests_per_sec;
  add "    \"leak_det_detected\": %b,\n" sl.leak_det_detected;
  add "    \"leak_rand_clean\": %b\n" sl.leak_rand_clean;
  add "  },\n";
  add "  \"store_io\": {\n";
  add "    \"campaign_runs\": %d,\n" io.io_runs;
  add "    \"chunk_size\": %d,\n" io.io_chunk_size;
  add "    \"v2_bytes_per_run\": %.1f,\n" io.v2_bytes_per_run;
  add "    \"v3_bytes_per_run\": %.1f,\n" io.v3_bytes_per_run;
  add "    \"full_parse_seconds\": %.6f,\n" io.full_parse_seconds;
  add "    \"warm_query_seconds\": %.6f,\n" io.warm_query_seconds;
  add "    \"warm_speedup_vs_full_parse\": %.2f,\n" io.warm_speedup_vs_full_parse;
  add "    \"warm_samples_identical\": %b,\n" io.io_warm_identical;
  add "    \"merge_rss_small_kb\": %d,\n" io.merge_rss_small_kb;
  add "    \"merge_rss_large_kb\": %d,\n" io.merge_rss_large_kb;
  add "    \"merge_rss_ratio\": %.3f\n" io.merge_rss_ratio;
  add "  },\n";
  add "  \"profile\": {\n";
  add "    \"enabled\": %b,\n" (M.Profile.enabled ());
  add "    \"stages\": [\n";
  let entries = M.Profile.snapshot () in
  List.iteri
    (fun i { M.Profile.stage; ns; calls } ->
      add "      {\"stage\": \"%s\", \"ms\": %.3f, \"calls\": %d}%s\n"
        (M.Profile.stage_name stage)
        (Int64.to_float ns /. 1e6)
        calls
        (if i = List.length entries - 1 then "" else ","))
    entries;
  add "    ]\n";
  add "  }\n";
  add "}\n";
  Buffer.contents b

let write_json path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Format.printf "@.perf results written to %s@." path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the cost of the tooling itself. *)

let micro () =
  section "Micro-benchmarks (Bechamel): cost of one step of each pipeline stage";
  let open Bechamel in
  let rand_sample = (Lazy.force campaign).M.Campaign.rand_sample in
  let maxima = E.Block_maxima.extract ~block_size:64 rand_sample in
  let counter = ref 0 in
  let next () =
    incr counter;
    !counter
  in
  let tests =
    [
      Test.make ~name:"E1 iid-battery (full sample)"
        (Staged.stage (fun () -> ignore (M.Iid.check rand_sample)));
      Test.make ~name:"E2 gumbel-fit+curve (block maxima)"
        (Staged.stage (fun () ->
             let model = E.Gumbel_fit.fit maxima in
             ignore
               (E.Pwcet.create ~model:(E.Pwcet.Gumbel_tail model) ~block_size:64
                  ~sample:rand_sample)));
      Test.make ~name:"E3 mbta-bound (full sample)"
        (Staged.stage (fun () -> ignore (M.Mbta.bound rand_sample)));
      Test.make ~name:"E4 descriptive-summary (full sample)"
        (Staged.stage (fun () -> ignore (D.summarize rand_sample)));
      Test.make ~name:"tvca-run DET (one measured run)"
        (Staged.stage (fun () ->
             ignore (T.Experiment.measure det_experiment ~run_index:(next ()))));
      Test.make ~name:"tvca-run RAND (one measured run)"
        (Staged.stage (fun () ->
             ignore (T.Experiment.measure rand_experiment ~run_index:(next ()))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"pipeline" tests) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.sort (fun (a, _) (b, _) -> compare a b) rows
  |> List.iter (fun (name, r) ->
         match Analyze.OLS.estimates r with
         | Some (ns :: _) -> Format.printf "%-48s %12.1f us/call@." name (ns /. 1000.)
         | Some [] | None -> Format.printf "%-48s (no estimate)@." name)

let () =
  if !p6_only then begin
    ignore (p6_store_io_perf ());
    Format.printf "@.done.@.";
    exit 0
  end;
  Format.printf
    "MBPTA-on-time-randomized-platform reproduction benchmark (runs per config: %d)@."
    !runs;
  if not !smoke then begin
    e1_iid ();
    e2_pwcet_curve ();
    e3_comparison ();
    e4_average_performance ();
    a1_placement ();
    a2_fpu ();
    a3_convergence ();
    a4_multicore ();
    a5_det_unsound ();
    a6_gate_calibration ();
    a7_block_size ()
  end;
  let perf = p1_parallel_perf () in
  let store = p2_store_perf () in
  let analysis = p3_analysis_perf () in
  let distributed = p4_distributed_perf () in
  let shuffle_leak = p5_shuffle_leak_perf () in
  let store_io = p6_store_io_perf () in
  (match !json_out with
  | Some path ->
      write_json path
        (json_of_perf perf store analysis distributed shuffle_leak store_io)
  | None -> ());
  if !profile then begin
    section "Stage-resolved profile (whole benchmark process)";
    match M.Profile.report () with
    | "" -> Format.printf "(profiler enabled, nothing recorded)@."
    | table -> print_string table
  end;
  if (not !skip_micro) && not !smoke then micro ();
  Format.printf "@.done.@."
