(* Bench regression gate: diff two bench JSON files (the committed previous
   BENCH_prN.json against the one the current build just produced) and fail
   when a key perf number regressed beyond the noise threshold.

   Usage:  dune exec bench/compare.exe -- PREV NEW [--threshold PCT]

   Gated quantities (higher-is-worse unless noted):
     - per_run_us.det / per_run_us.rand      sequential per-run cost
     - campaign_throughput[jobs=1].runs_per_sec   (higher is better)

   The threshold (default 25%) is deliberately loose: CI boxes are shared
   and noisy, and the gate exists to catch structural regressions (an
   accidentally quadratic loop, a dropped cache), not 3% jitter.  Schema
   differences between PR generations are tolerated — only the fields both
   files carry are compared, and a field missing from either side is
   reported as skipped, never as a failure. *)

module Json = Repro_mbpta.Trace.Json

let die fmt = Format.kasprintf (fun m -> prerr_endline ("compare: " ^ m); exit 2) fmt

let read_json path =
  let contents =
    match open_in_bin path with
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
    | exception Sys_error e -> die "%s" e
  in
  match Json.of_string contents with
  | Ok j -> j
  | Error e -> die "%s: %s" path e

(* Dotted-path lookup: "per_run_us.det". *)
let rec lookup path j =
  match path with
  | [] -> Some j
  | k :: rest -> ( match Json.member k j with Some v -> lookup rest v | None -> None)

let number path j =
  match lookup path j with
  | Some v -> Json.to_float v
  | None -> None

(* campaign_throughput is a list of {jobs, runs_per_sec, ...}. *)
let jobs1_runs_per_sec j =
  match lookup [ "campaign_throughput" ] j with
  | Some (Json.List rows) ->
      List.find_map
        (fun row ->
          match (Json.member "jobs" row, Json.member "runs_per_sec" row) with
          | Some jobs, Some rps when Json.to_int jobs = Some 1 -> Json.to_float rps
          | _ -> None)
        rows
  | _ -> None

let () =
  let threshold = ref 25. in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: pct :: rest ->
        (match float_of_string_opt pct with
        | Some t when t > 0. -> threshold := t
        | _ -> die "--threshold expects a positive percentage (got %s)" pct);
        parse rest
    | arg :: rest ->
        files := arg :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let prev_path, new_path =
    match List.rev !files with
    | [ a; b ] -> (a, b)
    | _ -> die "usage: compare PREV.json NEW.json [--threshold PCT]"
  in
  let prev = read_json prev_path and next = read_json new_path in
  let schema j =
    match lookup [ "schema" ] j with Some (Json.String s) -> s | _ -> "(none)"
  in
  Printf.printf "comparing %s (%s) -> %s (%s), threshold %.0f%%\n" prev_path
    (schema prev) new_path (schema next) !threshold;
  let failures = ref 0 in
  (* [gate name before after ~better_lower]: fail when the change in the
     bad direction exceeds the threshold. *)
  let gate name before after ~better_lower =
    let change = 100. *. ((after -. before) /. before) in
    let regressed =
      if better_lower then change > !threshold else change < -. !threshold
    in
    Printf.printf "  %-42s %12.2f -> %12.2f  (%+.1f%%)%s\n" name before after change
      (if regressed then "  REGRESSION" else "");
    if regressed then incr failures
  in
  let gate_opt name before after ~better_lower =
    match (before, after) with
    | Some b, Some a when b > 0. -> gate name b a ~better_lower
    | _ -> Printf.printf "  %-42s (not present in both files; skipped)\n" name
  in
  gate_opt "per_run_us.det (lower is better)"
    (number [ "per_run_us"; "det" ] prev)
    (number [ "per_run_us"; "det" ] next)
    ~better_lower:true;
  gate_opt "per_run_us.rand (lower is better)"
    (number [ "per_run_us"; "rand" ] prev)
    (number [ "per_run_us"; "rand" ] next)
    ~better_lower:true;
  gate_opt "jobs=1 runs_per_sec (higher is better)" (jobs1_runs_per_sec prev)
    (jobs1_runs_per_sec next) ~better_lower:false;
  gate_opt "store_io.warm_query_seconds (lower is better)"
    (number [ "store_io"; "warm_query_seconds" ] prev)
    (number [ "store_io"; "warm_query_seconds" ] next)
    ~better_lower:true;
  gate_opt "store_io.merge_rss_large_kb (lower is better)"
    (number [ "store_io"; "merge_rss_large_kb" ] prev)
    (number [ "store_io"; "merge_rss_large_kb" ] next)
    ~better_lower:true;
  if !failures > 0 then begin
    Printf.printf "%d perf regression%s beyond %.0f%%\n" !failures
      (if !failures = 1 then "" else "s")
      !threshold;
    exit 1
  end
  else print_endline "no perf regressions beyond the threshold"
