(* The campaign daemon behind `mbpta serve`.

   Thread layout (systhreads; the domain pool underneath is untouched):

   - one accept thread: selects on the listening socket so it can notice
     a shutdown request, admits at most [max_clients] concurrent
     connections (one thread each), rejects the rest with a typed
     response instead of letting them queue invisibly;
   - one dispatcher thread: pulls cold campaigns off a bounded queue and
     runs them — one at a time, so the domain pool is never
     oversubscribed — delivering the result to every waiter of the job;
   - one monitor thread: watches the process-wide [Shutdown] flag and
     drives the drain (stop accepting, reject the queue, join, unlink).

   Deduplication: requests are keyed by their store key (a pure function
   of the measured configuration).  A request whose key matches an
   in-flight job joins that job's waiter list instead of queueing a
   second computation; every waiter gets the same report bytes — bit-
   identical whether served cold, warm or coalesced, because the report
   is a pure function of the spec and the store replays recorded chunks
   exactly. *)

module M = Repro_mbpta
module T = Repro_tvca
module P = Repro_platform
module Sp = Serve_protocol
module Json = M.Trace.Json

type config = {
  socket_path : string;
  store_dir : string;
  jobs : int;  (* domain pool width for cold campaigns *)
  max_queue : int;  (* cold campaigns admitted beyond the one in flight *)
  max_clients : int;  (* concurrent connections *)
  trace : M.Trace.t option;  (* daemon-lifetime trace; process-total counters *)
}

type waiter = {
  w_mutex : Mutex.t;
  w_cond : Condition.t;
  w_queue : Sp.response Queue.t;
  w_events : bool;  (* subscribed to streamed phase events *)
}

type job = {
  j_key : string;
  j_spec : Sp.spec;
  j_origin : waiter;  (* first requester: served cold/warm, not coalesced *)
  mutable j_waiters : waiter list;
}

type t = {
  cfg : config;
  store : M.Store.t;
  totals : M.Trace.Counters.t;
  on_job_start : (string -> unit) option;  (* test hook, fired before compute *)
  mutex : Mutex.t;
  cond : Condition.t;  (* wakes the dispatcher *)
  stopped_cond : Condition.t;
  jobs_tbl : (string, job) Hashtbl.t;  (* key -> in-flight or queued job *)
  queue : job Queue.t;
  listen_fd : Unix.file_descr;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable client_count : int;
  conn_threads : (int, Thread.t) Hashtbl.t;  (* Thread.id -> handler *)
  mutable accept_thread : Thread.t option;
  mutable dispatch_thread : Thread.t option;
  mutable monitor_thread : Thread.t option;
}

(* ------------------------------------------------------------------ *)
(* Waiters *)

let new_waiter ~events =
  { w_mutex = Mutex.create (); w_cond = Condition.create (); w_queue = Queue.create (); w_events = events }

let waiter_push w r =
  Mutex.lock w.w_mutex;
  Queue.push r w.w_queue;
  Condition.signal w.w_cond;
  Mutex.unlock w.w_mutex

(* Stream responses to the connection until the final (non-event) one.
   A vanished client must not wedge the job side, so write failures are
   swallowed and draining continues to the final response. *)
let rec drain_waiter w fd =
  Mutex.lock w.w_mutex;
  while Queue.is_empty w.w_queue do
    Condition.wait w.w_cond w.w_mutex
  done;
  let r = Queue.pop w.w_queue in
  Mutex.unlock w.w_mutex;
  (try Serve_io.write_line fd (Sp.response_to_line r) with
  | Unix.Unix_error _ | Sys_error _ -> ());
  match r with Sp.Event _ -> drain_waiter w fd | _ -> ()

(* ------------------------------------------------------------------ *)
(* Campaign glue (mirrors the CLI's analyze subcommand so the report is
   byte-identical to `mbpta analyze` with the same spec) *)

let record_metrics counters ~prefix (m : P.Metrics.t) =
  let add name v = M.Trace.Counters.add counters (prefix ^ name) v in
  add "runs" 1;
  add "cycles" m.P.Metrics.cycles;
  add "instructions" m.P.Metrics.instructions;
  add "il1_misses" m.P.Metrics.il1_misses;
  add "dl1_misses" m.P.Metrics.dl1_misses;
  add "itlb_misses" m.P.Metrics.itlb_misses;
  add "dtlb_misses" m.P.Metrics.dtlb_misses;
  add "bus_transactions" m.P.Metrics.bus_transactions;
  add "dram_row_misses" m.P.Metrics.dram_row_misses;
  add "faults_injected" m.P.Metrics.faults_injected

let resilience_outcome_of = function
  | T.Experiment.Completed { metrics; _ } ->
      M.Resilience.Completed (float_of_int (P.Metrics.cycles metrics))
  | T.Experiment.Watchdog { cycles; budget; _ } ->
      M.Resilience.Timeout
        { detail = Printf.sprintf "watchdog fired at %d cycles (budget %d)" cycles budget }
  | T.Experiment.Runaway { program; _ } ->
      M.Resilience.Timeout { detail = "runaway execution of " ^ program }
  | T.Experiment.Crashed { detail; _ } -> M.Resilience.Crashed { detail }
  | T.Experiment.Corrupted { worst_error; _ } ->
      M.Resilience.Corrupted
        { detail = Printf.sprintf "worst output error %g" worst_error }

let campaign_input (spec : Sp.spec) counters =
  let experiment config =
    T.Experiment.create ~frames:spec.frames ~config ~base_seed:spec.seed ()
  in
  let det = experiment P.Config.deterministic in
  let rand = experiment P.Config.mbpta_compliant in
  let measure exp ~prefix i =
    let m = T.Experiment.run exp ~run_index:i in
    record_metrics counters ~prefix m;
    float_of_int (P.Metrics.cycles m)
  in
  let base =
    {
      M.Campaign.runs = spec.runs;
      measure_det = measure det ~prefix:"det.";
      measure_rand = measure rand ~prefix:"rand.";
      options = Sp.options spec;
      engineering_factor = spec.engineering_factor;
    }
  in
  if not (Sp.resilient spec) then `Plain base
  else begin
    let fault =
      T.Experiment.fault_config ~seu_rate:spec.seu_rate ?watchdog_budget:spec.watchdog_budget ()
    in
    let measure_outcome exp prefix ~run_index ~attempt =
      let outcome = T.Experiment.run_faulty exp ~fault ~attempt ~run_index () in
      (match outcome with
      | T.Experiment.Completed { metrics; _ } -> record_metrics counters ~prefix metrics
      | _ -> ());
      resilience_outcome_of outcome
    in
    let policy =
      {
        M.Resilience.default_policy with
        max_retries = spec.max_retries;
        min_survival = spec.min_survival;
      }
    in
    `Resilient
      (M.Campaign.resilient_input ~policy ~base
         ~measure_det_outcome:(measure_outcome det "det.")
         ~measure_rand_outcome:(measure_outcome rand "rand.") ())
  end

type job_outcome =
  | Done of { report : string; counters : (string * int) list; warm : bool }
  | Stopped
  | Failed_job of string

let run_campaign t job =
  let spec = job.j_spec in
  let counters = M.Trace.Counters.create ~parent:t.totals () in
  let on_event e =
    Mutex.lock t.mutex;
    let subscribed = List.filter (fun w -> w.w_events) job.j_waiters in
    Mutex.unlock t.mutex;
    List.iter (fun w -> waiter_push w (Sp.Event e)) subscribed
  in
  let mtrace = M.Trace.create_mem ~level:M.Trace.Summary ~counters ~on_event () in
  let config = Sp.store_config spec in
  let resilient = Sp.resilient spec in
  match
    M.Store.open_session ~resume:true t.store ~key:job.j_key ~config ~runs:spec.runs
      ~resilient
  with
  | Error e -> Failed_job e
  | Ok session -> (
      match
        Fun.protect
          ~finally:(fun () -> M.Store.close session)
          (fun () ->
            match campaign_input spec counters with
            | `Plain input ->
                M.Campaign.run ~jobs:t.cfg.jobs ~trace:mtrace ~store:session input
            | `Resilient input ->
                M.Campaign.run_resilient ~jobs:t.cfg.jobs ~trace:mtrace ~store:session
                  input)
      with
      | Ok c ->
          let snapshot = M.Trace.Counters.snapshot counters in
          let warm = List.assoc_opt "cache.runs_simulated" snapshot = Some 0 in
          Done { report = M.Campaign.render c; counters = snapshot; warm }
      | Error f -> Failed_job (Format.asprintf "campaign failed: %a" M.Protocol.pp_failure f)
      | exception M.Shutdown.Interrupted _ -> Stopped
      | exception e -> Failed_job (Printexc.to_string e))

let shutting_down_response =
  Sp.Rejected
    {
      reason = Sp.reason_shutting_down;
      detail =
        "daemon is draining; in-flight work was checkpointed at its last chunk \
         barrier and resumes warm on restart";
    }

let deliver_outcome t job outcome =
  Mutex.lock t.mutex;
  Hashtbl.remove t.jobs_tbl job.j_key;
  let waiters = job.j_waiters in
  Mutex.unlock t.mutex;
  (match outcome with
  | Done { warm; _ } ->
      M.Trace.Counters.incr t.totals
        (if warm then "serve.campaigns_warm" else "serve.campaigns_cold");
      (match t.cfg.trace with
      | Some tr ->
          M.Trace.emit tr
            (M.Trace.Note
               (Printf.sprintf "serve: %s campaign %s (%d waiter%s)"
                  (if warm then "warm" else "cold")
                  job.j_key (List.length waiters)
                  (if List.length waiters = 1 then "" else "s")))
      | None -> ())
  | Stopped -> ()
  | Failed_job _ -> M.Trace.Counters.incr t.totals "serve.campaigns_failed");
  List.iter
    (fun w ->
      let final =
        match outcome with
        | Done { report; counters; warm } ->
            let served =
              if w != job.j_origin then Sp.Coalesced else if warm then Sp.Warm else Sp.Cold
            in
            Sp.Report { key = job.j_key; served; report; counters }
        | Stopped -> shutting_down_response
        | Failed_job msg -> Sp.Failed msg
      in
      waiter_push w final)
    waiters

(* ------------------------------------------------------------------ *)
(* Dispatcher *)

let rec dispatch_loop t =
  Mutex.lock t.mutex;
  while (not t.stopping) && Queue.is_empty t.queue do
    Condition.wait t.cond t.mutex
  done;
  if t.stopping then begin
    (* Drain: every queued-but-unstarted job gets the typed rejection. *)
    let queued = Queue.fold (fun acc j -> j :: acc) [] t.queue in
    Queue.clear t.queue;
    List.iter (fun j -> Hashtbl.remove t.jobs_tbl j.j_key) queued;
    Mutex.unlock t.mutex;
    List.iter
      (fun j -> List.iter (fun w -> waiter_push w shutting_down_response) j.j_waiters)
      queued
  end
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    (match t.on_job_start with Some f -> f job.j_key | None -> ());
    let outcome = run_campaign t job in
    deliver_outcome t job outcome;
    dispatch_loop t
  end

(* ------------------------------------------------------------------ *)
(* Warm-only queries *)

let phase_rand = "collect_rand"

let answer_query t (spec : Sp.spec) query =
  let key = Sp.store_key spec in
  if Sp.resilient spec then
    Sp.Miss
      {
        key;
        reason =
          "warm queries answer fault-free records only; send a campaign request for \
           resilient specs";
      }
  else begin
    let counters = M.Trace.Counters.create ~parent:t.totals () in
    let mtrace = M.Trace.create_mem ~level:M.Trace.Summary ~counters () in
    let config = Sp.store_config spec in
    match
      M.Store.open_session ~resume:true t.store ~key ~config ~runs:spec.runs
        ~resilient:false
    with
    | Error e -> Sp.Miss { key; reason = e }
    | Ok session ->
        Fun.protect
          ~finally:(fun () -> M.Store.close session)
          (fun () ->
            if not (M.Store.complete session ~phase:phase_rand) then
              Sp.Miss
                {
                  key;
                  reason =
                    Printf.sprintf "record holds %d of %d runs; send a campaign request"
                      (M.Store.cached_runs session ~phase:phase_rand)
                      spec.runs;
                }
            else begin
              (* Every chunk is cached, so the collector only replays the
                 record — the [cache.runs_simulated = 0] counter in the
                 response is the proof that nothing was recomputed. *)
              let sample =
                M.Store.collect ~trace:mtrace ~jobs:1 session ~phase:phase_rand spec.runs
                  (fun _ -> invalid_arg "serve: warm query must not simulate")
              in
              match
                M.Protocol.analyze ~options:(Sp.options spec) ~jobs:t.cfg.jobs
                  ~trace:mtrace sample
              with
              | Error f ->
                  Sp.Failed (Format.asprintf "analysis failed: %a" M.Protocol.pp_failure f)
              | Ok analysis ->
                  let value =
                    match query with
                    | Sp.Pwcet p ->
                        Json.Float
                          (Repro_evt.Pwcet.estimate analysis.M.Protocol.curve
                             ~cutoff_probability:p)
                    | Sp.Iid_verdict ->
                        let iid = analysis.M.Protocol.iid in
                        Json.Obj
                          [
                            ("accepted", Json.Bool iid.M.Iid.accepted);
                            ( "lb_p",
                              Json.Float
                                iid.M.Iid.ljung_box.Repro_stats.Ljung_box.p_value );
                            ( "ks_p",
                              Json.Float
                                iid.M.Iid.kolmogorov_smirnov.Repro_stats.Ks.p_value );
                          ]
                  in
                  M.Trace.Counters.incr t.totals "serve.queries_answered";
                  Sp.Answer
                    { key; query; value; counters = M.Trace.Counters.snapshot counters }
            end)
  end

(* ------------------------------------------------------------------ *)
(* Connection handling *)

let status_response t =
  Mutex.lock t.mutex;
  let queue_depth = Queue.length t.queue in
  let in_flight = Hashtbl.length t.jobs_tbl - queue_depth in
  let clients = t.client_count in
  Mutex.unlock t.mutex;
  Sp.Status_report
    {
      queue_depth;
      in_flight;
      clients;
      max_queue = t.cfg.max_queue;
      max_clients = t.cfg.max_clients;
      counters = M.Trace.Counters.snapshot t.totals;
    }

let handle_campaign t fd (spec : Sp.spec) ~events =
  let key = Sp.store_key spec in
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    Serve_io.write_line fd (Sp.response_to_line shutting_down_response)
  end
  else
    match Hashtbl.find_opt t.jobs_tbl key with
    | Some job ->
        (* Coalesce: same key, one computation, same bytes for everyone. *)
        let w = new_waiter ~events in
        job.j_waiters <- w :: job.j_waiters;
        Mutex.unlock t.mutex;
        M.Trace.Counters.incr t.totals "serve.dedup_coalesced";
        drain_waiter w fd
    | None ->
        (* [jobs_tbl] holds queued + in-flight jobs, so the bound reads:
           one may compute while [max_queue] wait — anything beyond that
           is overload, answered now rather than queued invisibly. *)
        if Hashtbl.length t.jobs_tbl > t.cfg.max_queue then begin
          Mutex.unlock t.mutex;
          M.Trace.Counters.incr t.totals "serve.rejected_overload";
          Serve_io.write_line fd
            (Sp.response_to_line
               (Sp.Rejected
                  {
                    reason = Sp.reason_overloaded;
                    detail =
                      Printf.sprintf
                        "campaign queue is full (%d queued, max %d); retry later"
                        t.cfg.max_queue t.cfg.max_queue;
                  }))
        end
        else begin
          let w = new_waiter ~events in
          let job = { j_key = key; j_spec = spec; j_origin = w; j_waiters = [ w ] } in
          Hashtbl.replace t.jobs_tbl key job;
          Queue.push job t.queue;
          Condition.signal t.cond;
          Mutex.unlock t.mutex;
          drain_waiter w fd
        end

let handle_conn t fd =
  let reader = Serve_io.reader fd in
  match Serve_io.read_line reader with
  | Error e -> (
      try Serve_io.write_line fd (Sp.response_to_line (Sp.Failed ("bad request: " ^ e)))
      with Unix.Unix_error _ -> ())
  | Ok line -> (
      M.Trace.Counters.incr t.totals "serve.requests";
      match Sp.request_of_line line with
      | Error e ->
          Serve_io.write_line fd (Sp.response_to_line (Sp.Failed ("bad request: " ^ e)))
      | Ok (Sp.Campaign { spec; events }) -> handle_campaign t fd spec ~events
      | Ok (Sp.Query { spec; query }) ->
          Serve_io.write_line fd (Sp.response_to_line (answer_query t spec query))
      | Ok Sp.Status -> Serve_io.write_line fd (Sp.response_to_line (status_response t))
      | Ok Sp.Shutdown ->
          Serve_io.write_line fd (Sp.response_to_line Sp.Shutdown_ack);
          M.Shutdown.request ~reason:"client shutdown request" ())

let conn_thread t fd =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.lock t.mutex;
      t.client_count <- t.client_count - 1;
      Hashtbl.remove t.conn_threads (Thread.id (Thread.self ()));
      Mutex.unlock t.mutex)
    (fun () ->
      try handle_conn t fd with
      | Unix.Unix_error _ | Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Accept loop *)

let handle_accept t fd =
  (* A client that connects and then stalls must not pin a handler thread
     forever: bound both directions. *)
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.
   with Unix.Unix_error _ -> ());
  Mutex.lock t.mutex;
  if t.client_count >= t.cfg.max_clients then begin
    Mutex.unlock t.mutex;
    M.Trace.Counters.incr t.totals "serve.rejected_clients";
    (try
       Serve_io.write_line fd
         (Sp.response_to_line
            (Sp.Rejected
               {
                 reason = Sp.reason_too_many_clients;
                 detail =
                   Printf.sprintf "all %d client slots are busy; retry later"
                     t.cfg.max_clients;
               }))
     with Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    t.client_count <- t.client_count + 1;
    let th = Thread.create (fun () -> conn_thread t fd) () in
    Hashtbl.replace t.conn_threads (Thread.id th) th;
    Mutex.unlock t.mutex
  end

let accept_loop t =
  let rec loop () =
    let stop =
      Mutex.lock t.mutex;
      let s = t.stopping in
      Mutex.unlock t.mutex;
      s
    in
    if not stop then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ -> handle_accept t fd
          | exception
              Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK | ECONNABORTED), _, _) ->
              ())
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  try Sys.remove t.cfg.socket_path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Monitor: drive the drain once shutdown is requested *)

let monitor_loop t =
  while not (M.Shutdown.requested ()) do
    Thread.delay 0.05
  done;
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (match t.dispatch_thread with Some th -> Thread.join th | None -> ());
  (* Connection handlers all terminate: queued and in-flight waiters got
     their final response when the dispatcher drained, fresh connections
     are rejected, and socket timeouts bound stalled clients. *)
  let rec join_conns () =
    Mutex.lock t.mutex;
    let remaining = Hashtbl.fold (fun _ th acc -> th :: acc) t.conn_threads [] in
    Mutex.unlock t.mutex;
    match remaining with
    | [] -> ()
    | ths ->
        List.iter Thread.join ths;
        join_conns ()
  in
  join_conns ();
  (match t.cfg.trace with Some tr -> M.Trace.flush tr | None -> ());
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.stopped_cond;
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let bind_socket path =
  let probe_stale () =
    (* A socket file can be a live daemon or the residue of a crash; a
       probe connection tells them apart. *)
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
        (try Unix.close probe with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "serve: %s: a daemon is already listening there" path)
    | exception Unix.Unix_error (ECONNREFUSED, _, _) ->
        (try Unix.close probe with Unix.Unix_error _ -> ());
        (try Sys.remove path with Sys_error _ -> ());
        Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close probe with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "serve: cannot probe %s: %s" path (Unix.error_message e))
  in
  let cleared =
    match Unix.stat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> probe_stale ()
    | _ -> Error (Printf.sprintf "serve: %s exists and is not a socket" path)
    | exception Unix.Unix_error (ENOENT, _, _) -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "serve: cannot stat %s: %s" path (Unix.error_message e))
  in
  match cleared with
  | Error _ as e -> e
  | Ok () -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        Ok fd
      with Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "serve: cannot bind %s: %s" path (Unix.error_message e)))

let start ?on_job_start cfg =
  if cfg.jobs < 1 then invalid_arg "Server.start: jobs must be >= 1";
  if cfg.max_queue < 0 then invalid_arg "Server.start: max_queue must be >= 0";
  if cfg.max_clients < 1 then invalid_arg "Server.start: max_clients must be >= 1";
  (* A client that disappears mid-write must not kill the daemon. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  match M.Store.open_root ~dir:cfg.store_dir with
  | exception Sys_error e -> Error e
  | store -> (
      match bind_socket cfg.socket_path with
      | Error _ as e -> e
      | Ok listen_fd ->
          let totals =
            match cfg.trace with
            | Some tr -> M.Trace.counters tr
            | None -> M.Trace.Counters.create ()
          in
          let t =
            {
              cfg;
              store;
              totals;
              on_job_start;
              mutex = Mutex.create ();
              cond = Condition.create ();
              stopped_cond = Condition.create ();
              jobs_tbl = Hashtbl.create 16;
              queue = Queue.create ();
              listen_fd;
              stopping = false;
              stopped = false;
              client_count = 0;
              conn_threads = Hashtbl.create 16;
              accept_thread = None;
              dispatch_thread = None;
              monitor_thread = None;
            }
          in
          t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
          t.dispatch_thread <- Some (Thread.create (fun () -> dispatch_loop t) ());
          t.monitor_thread <- Some (Thread.create (fun () -> monitor_loop t) ());
          Ok t)

let wait t =
  Mutex.lock t.mutex;
  while not t.stopped do
    Condition.wait t.stopped_cond t.mutex
  done;
  Mutex.unlock t.mutex;
  match t.monitor_thread with Some th -> Thread.join th | None -> ()

let stop t =
  M.Shutdown.request ~reason:"server stop" ();
  wait t;
  (* Leave the process reusable (tests start several servers in turn). *)
  M.Shutdown.reset ()

let counters t = t.totals
