(** Client side of the [mbpta serve] protocol. *)

module M := Repro_mbpta

(** [request ~socket_path req] — connect to a running daemon, send the
    request, and return its final response.  Streamed {!Serve_protocol.Event}
    lines (campaign requests sent with [events = true]) are delivered to
    [on_event] as they arrive and are never the returned value.  All
    failures — daemon not running, connection dropped, malformed line —
    come back as [Error]. *)
val request :
  ?on_event:(M.Trace.event -> unit) ->
  socket_path:string ->
  Serve_protocol.request ->
  (Serve_protocol.response, string) result
