(* Client side of the serve protocol: connect, send one request line,
   stream events to a callback, return the final response. *)

module Sp = Serve_protocol

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "client: cannot connect to %s: %s (is the daemon running?)"
           path (Unix.error_message e))

let request ?on_event ~socket_path req =
  match connect socket_path with
  | Error _ as e -> e
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Serve_io.write_line fd (Sp.request_to_line req) with
          | exception Unix.Unix_error (e, _, _) ->
              Error ("client: send failed: " ^ Unix.error_message e)
          | () ->
              let reader = Serve_io.reader fd in
              let rec next () =
                match Serve_io.read_line reader with
                | Error e -> Error ("client: " ^ e)
                | Ok line -> (
                    match Sp.response_of_line line with
                    | Error e -> Error ("client: bad response: " ^ e)
                    | Ok (Sp.Event ev) ->
                        (match on_event with Some f -> f ev | None -> ());
                        next ()
                    | Ok r -> Ok r)
              in
              next ())
