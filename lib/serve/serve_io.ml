(* Line-oriented socket I/O shared by the daemon and the client: one
   UTF-8/JSON line per message, LF-terminated.  Reads are buffered per
   connection; writes loop until the whole line is on the wire. *)

let write_line fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

(* A request or response line is at most a few MB (a report plus
   counters); anything larger is a protocol violation, not a message. *)
let max_line_bytes = 1 lsl 22

type reader = {
  r_fd : Unix.file_descr;
  r_buf : Buffer.t;
  r_chunk : Bytes.t;
  mutable r_pending : string;  (* bytes read past the last returned line *)
}

let reader fd =
  { r_fd = fd; r_buf = Buffer.create 256; r_chunk = Bytes.create 4096; r_pending = "" }

(* [read_line r] — the next LF-terminated line (without the LF), [Ok ""]
   possible for empty lines.  [Error] on EOF before any byte of a line,
   on an over-long line, and on socket errors (including a receive
   timeout when SO_RCVTIMEO is set on the descriptor). *)
let read_line r =
  Buffer.clear r.r_buf;
  let take_from s =
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.add_substring r.r_buf s 0 i;
        r.r_pending <- String.sub s (i + 1) (String.length s - i - 1);
        true
    | None ->
        Buffer.add_string r.r_buf s;
        r.r_pending <- "";
        false
  in
  let rec go () =
    if Buffer.length r.r_buf > max_line_bytes then Error "line too long"
    else
      match Unix.read r.r_fd r.r_chunk 0 (Bytes.length r.r_chunk) with
      | 0 ->
          if Buffer.length r.r_buf = 0 then Error "connection closed"
          else Ok (Buffer.contents r.r_buf)  (* tolerate a missing final LF *)
      | n -> if take_from (Bytes.sub_string r.r_chunk 0 n) then Ok (Buffer.contents r.r_buf) else go ()
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  if r.r_pending <> "" && take_from r.r_pending then Ok (Buffer.contents r.r_buf) else go ()
