(** The long-running campaign daemon behind [mbpta serve].

    One server owns a Unix-domain listening socket, a content-addressed
    measurement store root and the process's domain pool.  Each accepted
    connection carries one {!Serve_protocol.request} line; the daemon
    answers with optional streamed {!Serve_protocol.Event} lines followed
    by exactly one final response line, then closes the connection.

    {b Deduplication and coalescing.}  Campaign requests are keyed by
    their store key (a pure function of the measured configuration).  A
    request whose key matches an in-flight or queued job joins that job's
    waiter list — one computation, every waiter handed the same report
    bytes.  Because the report is a pure function of the spec and the
    store replays recorded chunks exactly, responses are bit-identical
    whether served cold, warm (record already complete:
    [cache.runs_simulated = 0] in the response counters) or coalesced.

    {b Admission control.}  At most one campaign computes at a time (the
    domain pool is never oversubscribed); at most [max_queue] further
    jobs may wait; beyond that the daemon answers a typed
    [Rejected {reason = reason_overloaded}] immediately instead of
    queueing invisibly.  Connections beyond [max_clients] are likewise
    rejected with [reason_too_many_clients].

    {b Shutdown.}  The daemon drains on the process-wide {!Repro_mbpta.Shutdown}
    flag (SIGINT/SIGTERM once [Shutdown.install]ed, a client [Shutdown]
    request, or {!stop}): the in-flight campaign checkpoints at its next
    chunk barrier, queued jobs are rejected with [reason_shutting_down],
    connection handlers are joined and the socket file removed. *)

module M := Repro_mbpta

type config = {
  socket_path : string;
  store_dir : string;  (** store root; created if missing *)
  jobs : int;  (** domain-pool width for cold campaigns *)
  max_queue : int;  (** queued cold campaigns beyond the one in flight *)
  max_clients : int;  (** concurrent connections *)
  trace : M.Trace.t option;
      (** daemon-lifetime trace; its counter registry is the process-total
          parent of every per-request registry *)
}

type t

(** [start cfg] — bind, spawn the accept/dispatch/monitor threads and
    return immediately.  Detects and removes a stale socket file left by
    a crashed daemon (a probe connection distinguishes it from a live
    one).  [on_job_start] is a test hook invoked with the job's store key
    just before its campaign computes.  Raises [Invalid_argument] on a
    non-positive [jobs]/[max_clients] or negative [max_queue]. *)
val start : ?on_job_start:(string -> unit) -> config -> (t, string) result

(** Block until the daemon has fully drained (see shutdown above). *)
val wait : t -> unit

(** Request shutdown via the {!M.Shutdown} flag, {!wait}, then reset the
    flag so the process can start another server (tests do). *)
val stop : t -> unit

(** The process-total counter registry ([serve.*] plus every request's
    rolled-up measurement counters). *)
val counters : t -> M.Trace.Counters.t
