(** Wire protocol of the [mbpta serve] daemon (see DESIGN.md section 14).

    Newline-delimited JSON over a Unix socket.  A connection carries one
    request line; the daemon answers with zero or more {!Event} lines
    (campaign requests with [events = true] only) followed by exactly one
    final response line, then closes.  Serialization reuses
    {!Repro_mbpta.Trace.Json} — floats cross the wire via [%.17g], so the
    store key derived from a parsed spec is bit-identical to the
    sender's. *)

module M := Repro_mbpta

(** What to measure and how to analyze it — the daemon-side mirror of the
    CLI's analyze flags.  Every field has the CLI's default. *)
type spec = {
  runs : int;
  seed : int64;
  frames : int;
  tail : M.Protocol.tail;
  no_gates : bool;
  bootstrap : int;
  engineering_factor : float;
  seu_rate : float;
  watchdog_budget : int option;
  max_retries : int;
  min_survival : float;
}

val default_spec : spec

(** A spec measures with fault injection iff [seu_rate > 0] or a watchdog
    budget is set — the same rule as the CLI. *)
val resilient : spec -> bool

(** The content-addressed store configuration of this spec — the same
    pairs, in the same spelling, as [mbpta analyze], so records warmed by
    either side serve the other. *)
val store_config : spec -> (string * string) list

val store_key : spec -> string

(** Analysis options of this spec (tail, gates, bootstrap). *)
val options : spec -> M.Protocol.options

val tail_name : M.Protocol.tail -> string
val tail_of_name : string -> (M.Protocol.tail, string) result

type query =
  | Pwcet of float  (** pWCET estimate at this cutoff probability *)
  | Iid_verdict

type request =
  | Campaign of { spec : spec; events : bool }
      (** run (or serve warm) the full campaign; [events] subscribes the
          connection to per-phase trace events while it computes *)
  | Query of { spec : spec; query : query }
      (** warm-only: answered straight from the store, never computes *)
  | Status
  | Shutdown

type served = Cold | Warm | Coalesced

val served_name : served -> string

type response =
  | Report of {
      key : string;
      served : served;
      report : string;  (** byte-identical to the CLI's analyze output *)
      counters : (string * int) list;  (** this request's scoped counters *)
    }
  | Answer of {
      key : string;
      query : query;
      value : M.Trace.Json.t;
      counters : (string * int) list;
    }
  | Miss of { key : string; reason : string }
      (** warm-only query against a cold/partial/in-flight record *)
  | Rejected of { reason : string; detail : string }
      (** typed admission-control rejection; [reason] is one of the
          [reason_*] constants below *)
  | Status_report of {
      queue_depth : int;
      in_flight : int;
      clients : int;
      max_queue : int;
      max_clients : int;
      counters : (string * int) list;  (** process totals *)
    }
  | Event of M.Trace.event  (** streamed while a subscribed campaign runs *)
  | Failed of string
  | Shutdown_ack

val reason_overloaded : string
val reason_shutting_down : string
val reason_too_many_clients : string

val request_to_line : request -> string
val request_of_line : string -> (request, string) result
val response_to_line : response -> string
val response_of_line : string -> (response, string) result
