(* Wire protocol of the campaign daemon: newline-delimited JSON over a
   Unix socket, one request line per connection, zero or more event lines
   followed by exactly one final response line back.  The writer and
   parser are Trace's bit-exact JSON codec — floats round-trip via %.17g,
   so a probability or SEU rate crosses the socket without losing a bit,
   and the store key derived on either side is identical. *)

module M = Repro_mbpta
module T = Repro_tvca
module Json = M.Trace.Json

(* ------------------------------------------------------------------ *)
(* Campaign specification *)

type spec = {
  runs : int;
  seed : int64;
  frames : int;
  tail : M.Protocol.tail;
  no_gates : bool;
  bootstrap : int;
  engineering_factor : float;
  seu_rate : float;
  watchdog_budget : int option;
  max_retries : int;
  min_survival : float;
}

let default_spec =
  {
    runs = 3000;
    seed = 2017L;
    frames = T.Mission.default_frames;
    tail = M.Protocol.Gumbel;
    no_gates = false;
    bootstrap = 0;
    engineering_factor = 1.5;
    seu_rate = 0.;
    watchdog_budget = None;
    max_retries = 2;
    min_survival = 0.9;
  }

let resilient spec = spec.seu_rate > 0. || spec.watchdog_budget <> None

let tail_name = function
  | M.Protocol.Gumbel -> "gumbel"
  | M.Protocol.Gev -> "gev"
  | M.Protocol.Pot -> "pot"
  | M.Protocol.Exponential_pot -> "exp"

let tail_of_name = function
  | "gumbel" -> Ok M.Protocol.Gumbel
  | "gev" -> Ok M.Protocol.Gev
  | "pot" -> Ok M.Protocol.Pot
  | "exp" -> Ok M.Protocol.Exponential_pot
  | s -> Error (Printf.sprintf "unknown tail model %S (expected gumbel|gev|pot|exp)" s)

(* The store key digests only what determines a measured value — the same
   pairs, in the same spelling, as the CLI's analyze subcommand, so a
   record warmed by `mbpta analyze --cache-dir` serves daemon requests and
   vice versa.  Analysis-side knobs (tail, gates, bootstrap, engineering
   factor, min_survival) deliberately stay out. *)
let store_config spec =
  let resilient = resilient spec in
  [
    ("campaign", "analyze");
    ("det_config", "deterministic");
    ("rand_config", "mbpta_compliant");
    ("seed", Int64.to_string spec.seed);
    ("frames", string_of_int spec.frames);
    ("runs", string_of_int spec.runs);
    ("resilient", string_of_bool resilient);
  ]
  @
  if resilient then
    [
      ("seu_rate", string_of_float spec.seu_rate);
      ( "watchdog_budget",
        match spec.watchdog_budget with None -> "none" | Some b -> string_of_int b );
      ("max_retries", string_of_int spec.max_retries);
    ]
  else []

let store_key spec = M.Store.key (store_config spec)

let options spec =
  let bootstrap =
    if spec.bootstrap = 0 then None
    else
      Some
        {
          M.Protocol.default_bootstrap_options with
          M.Protocol.replicates = spec.bootstrap;
          M.Protocol.bootstrap_seed = spec.seed;
        }
  in
  {
    M.Protocol.default_options with
    M.Protocol.tail = spec.tail;
    M.Protocol.gate_on_iid = not spec.no_gates;
    M.Protocol.check_convergence = not spec.no_gates;
    M.Protocol.bootstrap = bootstrap;
  }

(* ------------------------------------------------------------------ *)
(* Requests / responses *)

type query = Pwcet of float  (** pWCET estimate at this cutoff probability *) | Iid_verdict

type request =
  | Campaign of { spec : spec; events : bool }
  | Query of { spec : spec; query : query }
  | Status
  | Shutdown

type served = Cold | Warm | Coalesced

let served_name = function Cold -> "cold" | Warm -> "warm" | Coalesced -> "coalesced"

let served_of_name = function
  | "cold" -> Ok Cold
  | "warm" -> Ok Warm
  | "coalesced" -> Ok Coalesced
  | s -> Error (Printf.sprintf "unknown served kind %S" s)

type response =
  | Report of {
      key : string;
      served : served;
      report : string;
      counters : (string * int) list;
    }
  | Answer of {
      key : string;
      query : query;
      value : Json.t;
      counters : (string * int) list;
    }
  | Miss of { key : string; reason : string }
  | Rejected of { reason : string; detail : string }
  | Status_report of {
      queue_depth : int;
      in_flight : int;
      clients : int;
      max_queue : int;
      max_clients : int;
      counters : (string * int) list;
    }
  | Event of M.Trace.event
  | Failed of string
  | Shutdown_ack

(* Typed rejection reasons — stable strings the tests and CI grep for. *)
let reason_overloaded = "overloaded"
let reason_shutting_down = "shutting_down"
let reason_too_many_clients = "too_many_clients"

(* ------------------------------------------------------------------ *)
(* JSON encoding *)

let json_of_counters kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs)

let counters_of_json = function
  | Some (Json.Obj kvs) ->
      List.filter_map (fun (k, v) -> Option.map (fun i -> (k, i)) (Json.to_int v)) kvs
  | _ -> []

let spec_fields spec =
  [
    ("runs", Json.Int spec.runs);
    ("seed", Json.String (Int64.to_string spec.seed));
    ("frames", Json.Int spec.frames);
    ("tail", Json.String (tail_name spec.tail));
    ("no_gates", Json.Bool spec.no_gates);
    ("bootstrap", Json.Int spec.bootstrap);
    ("engineering_factor", Json.Float spec.engineering_factor);
    ("seu_rate", Json.Float spec.seu_rate);
    ( "watchdog_budget",
      match spec.watchdog_budget with None -> Json.Null | Some b -> Json.Int b );
    ("max_retries", Json.Int spec.max_retries);
    ("min_survival", Json.Float spec.min_survival);
  ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let spec_of_json j =
  let int k d = match Option.bind (Json.member k j) Json.to_int with Some v -> v | None -> d in
  let flt k d =
    match Option.bind (Json.member k j) Json.to_float with Some v -> v | None -> d
  in
  let bool k d =
    match Option.bind (Json.member k j) Json.to_bool with Some v -> v | None -> d
  in
  let* seed =
    match Option.bind (Json.member "seed" j) Json.to_str with
    | None -> Ok default_spec.seed
    | Some s -> (
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "malformed seed %S" s))
  in
  let* tail =
    match Option.bind (Json.member "tail" j) Json.to_str with
    | None -> Ok default_spec.tail
    | Some s -> tail_of_name s
  in
  let watchdog_budget =
    match Json.member "watchdog_budget" j with
    | Some (Json.Int b) -> Some b
    | _ -> default_spec.watchdog_budget
  in
  Ok
    {
      runs = int "runs" default_spec.runs;
      seed;
      frames = int "frames" default_spec.frames;
      tail;
      no_gates = bool "no_gates" default_spec.no_gates;
      bootstrap = int "bootstrap" default_spec.bootstrap;
      engineering_factor = flt "engineering_factor" default_spec.engineering_factor;
      seu_rate = flt "seu_rate" default_spec.seu_rate;
      watchdog_budget;
      max_retries = int "max_retries" default_spec.max_retries;
      min_survival = flt "min_survival" default_spec.min_survival;
    }

let validate_spec spec =
  if spec.runs < 1 then Error "runs must be >= 1"
  else if spec.frames < 1 then Error "frames must be >= 1"
  else if spec.seu_rate < 0. then Error "seu_rate must be >= 0"
  else if not (spec.engineering_factor >= 1.) then
    Error "engineering_factor must be >= 1"
  else if not (spec.min_survival >= 0. && spec.min_survival <= 1.) then
    Error "min_survival must lie in [0, 1]"
  else if spec.bootstrap <> 0 && spec.bootstrap < 20 then
    Error "bootstrap must be 0 (off) or >= 20 replicates"
  else if spec.max_retries < 0 then Error "max_retries must be >= 0"
  else Ok spec

let query_fields = function
  | Pwcet p -> [ ("query", Json.String "pwcet"); ("probability", Json.Float p) ]
  | Iid_verdict -> [ ("query", Json.String "iid") ]

let query_of_json j =
  match Option.bind (Json.member "query" j) Json.to_str with
  | Some "pwcet" -> (
      match Option.bind (Json.member "probability" j) Json.to_float with
      | Some p when p > 0. && p < 1. -> Ok (Pwcet p)
      | Some _ -> Error "probability must lie in (0, 1)"
      | None -> Error "pwcet query needs a probability")
  | Some "iid" -> Ok Iid_verdict
  | Some q -> Error (Printf.sprintf "unknown query %S (expected pwcet|iid)" q)
  | None -> Error "query request has no \"query\""

let json_of_request = function
  | Campaign { spec; events } ->
      Json.Obj
        ([ ("req", Json.String "campaign"); ("events", Json.Bool events) ]
        @ spec_fields spec)
  | Query { spec; query } ->
      Json.Obj ((("req", Json.String "query") :: query_fields query) @ spec_fields spec)
  | Status -> Json.Obj [ ("req", Json.String "status") ]
  | Shutdown -> Json.Obj [ ("req", Json.String "shutdown") ]

let request_of_json j =
  match Option.bind (Json.member "req" j) Json.to_str with
  | None -> Error "request has no \"req\""
  | Some "campaign" ->
      let events =
        match Option.bind (Json.member "events" j) Json.to_bool with
        | Some b -> b
        | None -> false
      in
      let* spec = spec_of_json j in
      let* spec = validate_spec spec in
      Ok (Campaign { spec; events })
  | Some "query" ->
      let* query = query_of_json j in
      let* spec = spec_of_json j in
      let* spec = validate_spec spec in
      Ok (Query { spec; query })
  | Some "status" -> Ok Status
  | Some "shutdown" -> Ok Shutdown
  | Some r -> Error (Printf.sprintf "unknown request %S" r)

let json_of_response = function
  | Report { key; served; report; counters } ->
      Json.Obj
        [
          ("resp", Json.String "report");
          ("key", Json.String key);
          ("served", Json.String (served_name served));
          ("report", Json.String report);
          ("counters", json_of_counters counters);
        ]
  | Answer { key; query; value; counters } ->
      Json.Obj
        ([ ("resp", Json.String "answer"); ("key", Json.String key) ]
        @ query_fields query
        @ [ ("value", value); ("counters", json_of_counters counters) ])
  | Miss { key; reason } ->
      Json.Obj
        [
          ("resp", Json.String "miss");
          ("key", Json.String key);
          ("reason", Json.String reason);
        ]
  | Rejected { reason; detail } ->
      Json.Obj
        [
          ("resp", Json.String "rejected");
          ("reason", Json.String reason);
          ("detail", Json.String detail);
        ]
  | Status_report { queue_depth; in_flight; clients; max_queue; max_clients; counters }
    ->
      Json.Obj
        [
          ("resp", Json.String "status");
          ("queue_depth", Json.Int queue_depth);
          ("in_flight", Json.Int in_flight);
          ("clients", Json.Int clients);
          ("max_queue", Json.Int max_queue);
          ("max_clients", Json.Int max_clients);
          ("counters", json_of_counters counters);
        ]
  | Event e -> Json.Obj [ ("resp", Json.String "event"); ("event", M.Trace.json_of_event e) ]
  | Failed message ->
      Json.Obj [ ("resp", Json.String "error"); ("message", Json.String message) ]
  | Shutdown_ack -> Json.Obj [ ("resp", Json.String "shutdown_ack") ]

let response_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int k d = match Option.bind (Json.member k j) Json.to_int with Some v -> v | None -> d in
  let req k = match str k with Some v -> Ok v | None -> Error ("response has no " ^ k) in
  match str "resp" with
  | None -> Error "response has no \"resp\""
  | Some "report" ->
      let* key = req "key" in
      let* served =
        match str "served" with
        | Some s -> served_of_name s
        | None -> Error "report has no served kind"
      in
      let* report = req "report" in
      Ok (Report { key; served; report; counters = counters_of_json (Json.member "counters" j) })
  | Some "answer" ->
      let* key = req "key" in
      let* query = query_of_json j in
      let value = match Json.member "value" j with Some v -> v | None -> Json.Null in
      Ok (Answer { key; query; value; counters = counters_of_json (Json.member "counters" j) })
  | Some "miss" ->
      let* key = req "key" in
      let* reason = req "reason" in
      Ok (Miss { key; reason })
  | Some "rejected" ->
      let* reason = req "reason" in
      let* detail = req "detail" in
      Ok (Rejected { reason; detail })
  | Some "status" ->
      Ok
        (Status_report
           {
             queue_depth = int "queue_depth" 0;
             in_flight = int "in_flight" 0;
             clients = int "clients" 0;
             max_queue = int "max_queue" 0;
             max_clients = int "max_clients" 0;
             counters = counters_of_json (Json.member "counters" j);
           })
  | Some "event" -> (
      match Json.member "event" j with
      | Some ev ->
          let* e = M.Trace.event_of_json ev in
          Ok (Event e)
      | None -> Error "event response has no event")
  | Some "error" ->
      let* message = req "message" in
      Ok (Failed message)
  | Some "shutdown_ack" -> Ok Shutdown_ack
  | Some r -> Error (Printf.sprintf "unknown response %S" r)

let request_to_line r = Json.to_string (json_of_request r)
let response_to_line r = Json.to_string (json_of_response r)

let of_line parse s =
  match Json.of_string s with
  | Error e -> Error (Printf.sprintf "malformed JSON: %s" e)
  | Ok j -> parse j

let request_of_line s = of_line request_of_json s
let response_of_line s = of_line response_of_json s
