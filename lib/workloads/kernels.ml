module I = Repro_isa.Instr
module B = Repro_isa.Builder
module Program = Repro_isa.Program
module Memory = Repro_isa.Memory
module Prng = Repro_rng.Prng

type t = {
  name : string;
  program : Program.t;
  load_input : Memory.t -> Prng.t -> unit;
  check : Memory.t -> (unit, string) Stdlib.result;
}

let compare_arrays ~what expected got =
  let n = Array.length expected in
  if Array.length got <> n then Error (what ^ ": length mismatch")
  else begin
    let rec go i =
      if i >= n then Ok ()
      else if Int64.equal (Int64.bits_of_float expected.(i)) (Int64.bits_of_float got.(i))
      then go (i + 1)
      else
        Error
          (Printf.sprintf "%s: index %d expected %.17g got %.17g" what i expected.(i)
             got.(i))
    in
    go 0
  end

(* ------------------------------------------------------------------ *)
(* bubble_sort: n passes of adjacent compare-and-swap (the unoptimized
   textbook form, so the pass structure is input-independent while every
   comparison is a data-dependent branch). *)

let bubble_sort ?(n = 32) () =
  if n < 2 then invalid_arg "Kernels.bubble_sort: n must be >= 2";
  let b = B.create ~name:"bubble_sort" in
  B.declare_data b ~symbol:"arr" ~elements:n;
  B.label b "main";
  B.counted_loop b ~counter:4 ~from_:0 ~below:n (fun () ->
      B.counted_loop b ~counter:6 ~from_:0 ~below:(n - 1) (fun () ->
          let skip = B.fresh_label b "no_swap" in
          B.emit b (I.Addi (8, 6, 1));
          B.emit b (I.Fld (0, B.at ~index_reg:6 "arr"));
          B.emit b (I.Fld (1, B.at ~index_reg:8 "arr"));
          B.emit b (I.Fbge (1, 0, skip));
          B.emit b (I.Fst (0, B.at ~index_reg:8 "arr"));
          B.emit b (I.Fst (1, B.at ~index_reg:6 "arr"));
          B.label b skip));
  B.emit b I.Halt;
  let program = B.build b ~entry:"main" in
  let current = ref [||] in
  {
    name = "bubble_sort";
    program;
    load_input =
      (fun memory prng ->
        let input = Array.init n (fun _ -> Prng.gaussian prng) in
        current := input;
        Memory.load_array memory "arr" input);
    check =
      (fun memory ->
        let expected = Array.copy !current in
        Array.sort Float.compare expected;
        compare_arrays ~what:"bubble_sort" expected (Memory.read_array memory "arr"));
  }

(* ------------------------------------------------------------------ *)
(* binary_search: lower-bound search of [lookups] keys in a sorted array;
   found[k] receives the insertion index.  Midpoint division by two goes
   through the FP unit (Icvt / *0.5 / Fcvt), mirrored by the golden. *)

let midpoint lo hi = int_of_float (0.5 *. float_of_int (lo + hi))

let binary_search ?(n = 256) ?(lookups = 32) () =
  if n < 2 then invalid_arg "Kernels.binary_search: n must be >= 2";
  if lookups < 1 then invalid_arg "Kernels.binary_search: lookups must be >= 1";
  let b = B.create ~name:"binary_search" in
  B.declare_data b ~symbol:"sorted" ~elements:n;
  B.declare_data b ~symbol:"keys" ~elements:lookups;
  B.declare_data b ~symbol:"found" ~elements:lookups;
  B.label b "main";
  B.counted_loop b ~counter:4 ~from_:0 ~below:lookups (fun () ->
      let head = B.fresh_label b "bs_head" in
      let right = B.fresh_label b "bs_right" in
      let done_ = B.fresh_label b "bs_done" in
      B.emit b (I.Fld (0, B.at ~index_reg:4 "keys"));
      B.emit b (I.Li (6, 0));
      B.emit b (I.Li (7, n));
      B.label b head;
      B.emit b (I.Bge (6, 7, done_));
      B.emit b (I.Add (8, 6, 7));
      B.emit b (I.Icvt (2, 8));
      B.emit b (I.Fli (3, 0.5));
      B.emit b (I.Fmul (2, 2, 3));
      B.emit b (I.Fcvt (8, 2));
      B.emit b (I.Fld (1, B.at ~index_reg:8 "sorted"));
      B.emit b (I.Fblt (1, 0, right));
      B.emit b (I.Addi (7, 8, 0));
      B.emit b (I.Jmp head);
      B.label b right;
      B.emit b (I.Addi (6, 8, 1));
      B.emit b (I.Jmp head);
      B.label b done_;
      B.emit b (I.Icvt (4, 6));
      B.emit b (I.Fst (4, B.at ~index_reg:4 "found")));
  B.emit b I.Halt;
  let program = B.build b ~entry:"main" in
  let current = ref ([||], [||]) in
  let golden sorted keys =
    Array.map
      (fun key ->
        let lo = ref 0 and hi = ref (Array.length sorted) in
        while !lo < !hi do
          let mid = midpoint !lo !hi in
          if sorted.(mid) < key then lo := mid + 1 else hi := mid
        done;
        float_of_int !lo)
      keys
  in
  {
    name = "binary_search";
    program;
    load_input =
      (fun memory prng ->
        let sorted = Array.init n (fun _ -> 100. *. Prng.float prng) in
        Array.sort Float.compare sorted;
        let keys = Array.init lookups (fun _ -> 100. *. Prng.float prng) in
        current := (sorted, keys);
        Memory.load_array memory "sorted" sorted;
        Memory.load_array memory "keys" keys);
    check =
      (fun memory ->
        let sorted, keys = !current in
        compare_arrays ~what:"binary_search" (golden sorted keys)
          (Memory.read_array memory "found"));
  }

(* ------------------------------------------------------------------ *)
(* matrix_multiply: C = A * B over n x n row-major matrices. *)

let matrix_multiply ?(n = 16) () =
  if n < 2 then invalid_arg "Kernels.matrix_multiply: n must be >= 2";
  let b = B.create ~name:"matrix_multiply" in
  List.iter (fun s -> B.declare_data b ~symbol:s ~elements:(n * n)) [ "a"; "bm"; "c" ];
  B.label b "main";
  B.counted_loop b ~counter:4 ~from_:0 ~below:n (fun () ->
      B.counted_loop b ~counter:6 ~from_:0 ~below:n (fun () ->
          B.emit b (I.Fli (0, 0.));
          B.counted_loop b ~counter:8 ~from_:0 ~below:n (fun () ->
              B.emit b (I.Li (3, n));
              B.emit b (I.Mul (10, 4, 3));
              B.emit b (I.Add (10, 10, 8));
              B.emit b (I.Fld (1, B.at ~index_reg:10 "a"));
              B.emit b (I.Mul (11, 8, 3));
              B.emit b (I.Add (11, 11, 6));
              B.emit b (I.Fld (2, B.at ~index_reg:11 "bm"));
              B.emit b (I.Fmul (1, 1, 2));
              B.emit b (I.Fadd (0, 0, 1)));
          B.emit b (I.Li (3, n));
          B.emit b (I.Mul (10, 4, 3));
          B.emit b (I.Add (10, 10, 6));
          B.emit b (I.Fst (0, B.at ~index_reg:10 "c"))));
  B.emit b I.Halt;
  let program = B.build b ~entry:"main" in
  let current = ref ([||], [||]) in
  let golden a bm =
    let c = Array.make (n * n) 0. in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0. in
        for k = 0 to n - 1 do
          acc := !acc +. (a.((i * n) + k) *. bm.((k * n) + j))
        done;
        c.((i * n) + j) <- !acc
      done
    done;
    c
  in
  {
    name = "matrix_multiply";
    program;
    load_input =
      (fun memory prng ->
        let a = Array.init (n * n) (fun _ -> Prng.gaussian prng) in
        let bm = Array.init (n * n) (fun _ -> Prng.gaussian prng) in
        current := (a, bm);
        Memory.load_array memory "a" a;
        Memory.load_array memory "bm" bm);
    check =
      (fun memory ->
        let a, bm = !current in
        compare_arrays ~what:"matrix_multiply" (golden a bm) (Memory.read_array memory "c"));
  }

(* ------------------------------------------------------------------ *)
(* fir_filter: out[i] = sum_t coeffs[t] * input[i + t]. *)

let fir_filter ?(taps = 16) ?(n = 256) () =
  if taps < 1 then invalid_arg "Kernels.fir_filter: taps must be >= 1";
  if n <= taps then
    invalid_arg (Printf.sprintf "Kernels.fir_filter: n (%d) must exceed taps (%d)" n taps);
  let outputs = n - taps + 1 in
  let b = B.create ~name:"fir_filter" in
  B.declare_data b ~symbol:"input" ~elements:n;
  B.declare_data b ~symbol:"coeffs" ~elements:taps;
  B.declare_data b ~symbol:"output" ~elements:outputs;
  B.label b "main";
  B.counted_loop b ~counter:4 ~from_:0 ~below:outputs (fun () ->
      B.emit b (I.Fli (0, 0.));
      B.counted_loop b ~counter:6 ~from_:0 ~below:taps (fun () ->
          B.emit b (I.Add (8, 4, 6));
          B.emit b (I.Fld (1, B.at ~index_reg:8 "input"));
          B.emit b (I.Fld (2, B.at ~index_reg:6 "coeffs"));
          B.emit b (I.Fmul (1, 1, 2));
          B.emit b (I.Fadd (0, 0, 1)));
      B.emit b (I.Fst (0, B.at ~index_reg:4 "output")));
  B.emit b I.Halt;
  let program = B.build b ~entry:"main" in
  let current = ref ([||], [||]) in
  let golden input coeffs =
    Array.init outputs (fun i ->
        let acc = ref 0. in
        for t = 0 to taps - 1 do
          acc := !acc +. (input.(i + t) *. coeffs.(t))
        done;
        !acc)
  in
  {
    name = "fir_filter";
    program;
    load_input =
      (fun memory prng ->
        let input = Array.init n (fun _ -> Prng.gaussian prng) in
        let coeffs = Array.init taps (fun _ -> Prng.gaussian prng) in
        current := (input, coeffs);
        Memory.load_array memory "input" input;
        Memory.load_array memory "coeffs" coeffs);
    check =
      (fun memory ->
        let input, coeffs = !current in
        compare_arrays ~what:"fir_filter" (golden input coeffs)
          (Memory.read_array memory "output"));
  }

(* ------------------------------------------------------------------ *)
(* newton_roots: [iterations] Newton steps for sqrt(v), one FDIV each —
   the value-dependent-latency workload. *)

let newton_roots ?(n = 64) ?(iterations = 8) () =
  if n < 1 then invalid_arg "Kernels.newton_roots: n must be >= 1";
  if iterations < 1 then invalid_arg "Kernels.newton_roots: iterations must be >= 1";
  let b = B.create ~name:"newton_roots" in
  B.declare_data b ~symbol:"values" ~elements:n;
  B.declare_data b ~symbol:"roots" ~elements:n;
  B.label b "main";
  B.counted_loop b ~counter:4 ~from_:0 ~below:n (fun () ->
      B.emit b (I.Fld (0, B.at ~index_reg:4 "values"));
      B.emit b (I.Fmov (1, 0));
      B.counted_loop b ~counter:6 ~from_:0 ~below:iterations (fun () ->
          B.emit b (I.Fdiv (2, 0, 1));
          B.emit b (I.Fadd (2, 1, 2));
          B.emit b (I.Fli (3, 0.5));
          B.emit b (I.Fmul (1, 3, 2)));
      B.emit b (I.Fst (1, B.at ~index_reg:4 "roots")));
  B.emit b I.Halt;
  let program = B.build b ~entry:"main" in
  let current = ref [||] in
  let golden values =
    Array.map
      (fun v ->
        let x = ref v in
        for _ = 1 to iterations do
          x := 0.5 *. (!x +. (v /. !x))
        done;
        !x)
      values
  in
  {
    name = "newton_roots";
    program;
    load_input =
      (fun memory prng ->
        let values = Array.init n (fun _ -> 0.1 +. Float.abs (Prng.gaussian prng)) in
        current := values;
        Memory.load_array memory "values" values);
    check =
      (fun memory ->
        compare_arrays ~what:"newton_roots" (golden !current)
          (Memory.read_array memory "roots"));
  }

(* ------------------------------------------------------------------ *)
(* histogram: counts[truncate (v * bins)] += 1, with clamp — every store
   address is data-dependent. *)

(* Default bins span 32KB — twice the DL1 — so which lines are hot (and
   which DRAM rows are touched) genuinely depends on the sample values. *)
let histogram ?(bins = 4096) ?(n = 2048) () =
  if bins < 2 then invalid_arg "Kernels.histogram: bins must be >= 2";
  if n < 1 then invalid_arg "Kernels.histogram: n must be >= 1";
  let b = B.create ~name:"histogram" in
  B.declare_data b ~symbol:"samples" ~elements:n;
  B.declare_data b ~symbol:"counts" ~elements:bins;
  B.label b "main";
  B.counted_loop b ~counter:4 ~from_:0 ~below:n (fun () ->
      let ok = B.fresh_label b "bin_ok" in
      B.emit b (I.Fld (0, B.at ~index_reg:4 "samples"));
      B.emit b (I.Fli (1, float_of_int bins));
      B.emit b (I.Fmul (0, 0, 1));
      B.emit b (I.Fcvt (6, 0));
      B.emit b (I.Li (7, bins));
      B.emit b (I.Blt (6, 7, ok));
      B.emit b (I.Li (6, bins - 1));
      B.label b ok;
      B.emit b (I.Fld (2, B.at ~index_reg:6 "counts"));
      B.emit b (I.Fli (3, 1.));
      B.emit b (I.Fadd (2, 2, 3));
      B.emit b (I.Fst (2, B.at ~index_reg:6 "counts")));
  B.emit b I.Halt;
  let program = B.build b ~entry:"main" in
  let current = ref [||] in
  let golden samples =
    let counts = Array.make bins 0. in
    Array.iter
      (fun v ->
        let idx = int_of_float (v *. float_of_int bins) in
        let idx = if idx >= bins then bins - 1 else idx in
        counts.(idx) <- counts.(idx) +. 1.)
      samples;
    counts
  in
  {
    name = "histogram";
    program;
    load_input =
      (fun memory prng ->
        let samples = Array.init n (fun _ -> Prng.float prng) in
        current := samples;
        Memory.load_array memory "samples" samples;
        (* counts start from zero every run *)
        Memory.load_array memory "counts" (Array.make bins 0.));
    check =
      (fun memory ->
        compare_arrays ~what:"histogram" (golden !current)
          (Memory.read_array memory "counts"));
  }

let all () =
  [
    bubble_sort ();
    binary_search ();
    matrix_multiply ();
    fir_filter ();
    newton_roots ();
    histogram ();
  ]
