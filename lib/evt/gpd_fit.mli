(** Generalized-Pareto fitting for peaks-over-threshold, the alternative EVT
    route to block maxima.  [Pwm] follows Hosking & Wallis (1987); [Mle]
    refines with Nelder-Mead; [Exponential] forces the light-tail limit
    xi = 0 and fits only the scale (the exponential-tail model of the
    original MBPTA formulation, sound once the {!Tail_test} exponentiality
    check passes — and conservative relative to any lighter tail). *)

type method_ = Pwm | Mle | Exponential

(** [fit ?method_ ~threshold excesses] — [excesses] are the amounts by which
    observations exceed [threshold] (all [>= 0]). *)
val fit :
  ?method_:method_ -> threshold:float -> float array -> Repro_stats.Distribution.Gpd.t

(** Peaks-over-threshold front end. *)
module Pot : sig
  type t = {
    model : Repro_stats.Distribution.Gpd.t;
    threshold : float;
    exceedance_rate : float;  (** fraction of observations above threshold *)
    n_exceedances : int;
  }

  (** [analyze ?method_ ?quantile ?sorted xs] selects the threshold as the
      empirical [quantile] (default 0.9) of [xs] and fits the excesses.
      [sorted:true] declares [xs] already ascending, skipping the threshold
      quantile's internal sort. *)
  val analyze : ?method_:method_ -> ?quantile:float -> ?sorted:bool -> float array -> t

  (** [survival t x] is the per-observation exceedance probability
      P(X > x) for x above the threshold, combining the exceedance rate and
      the GPD tail. *)
  val survival : t -> float -> float

  (** [quantile_of_exceedance t p] inverts {!survival} for
      [p < exceedance_rate]. *)
  val quantile_of_exceedance : t -> float -> float
end
