module Stats = Repro_stats
module Gumbel = Stats.Distribution.Gumbel
module Gev = Stats.Distribution.Gev

type tail_model =
  | Gumbel_tail of Gumbel.t
  | Gev_tail of Gev.t
  | Pot_tail of Gpd_fit.Pot.t

type t = { model : tail_model; block_size : int; ecdf : Stats.Ecdf.t }

let make ~sorted ~model ~block_size ~sample =
  if block_size < 1 then invalid_arg "Pwcet.create: block_size must be >= 1";
  if Array.length sample = 0 then invalid_arg "Pwcet.create: empty sample";
  (match model with
  | Pot_tail _ ->
      if block_size <> 1 then
        invalid_arg "Pwcet.create: POT models describe per-run values (block_size 1)"
  | Gumbel_tail _ | Gev_tail _ -> ());
  let ecdf =
    if sorted then Stats.Ecdf.of_sorted sample else Stats.Ecdf.of_sample sample
  in
  { model; block_size; ecdf }

let create ~model ~block_size ~sample = make ~sorted:false ~model ~block_size ~sample
let create_sorted ~model ~block_size ~sample = make ~sorted:true ~model ~block_size ~sample

let model t = t.model
let block_size t = t.block_size
let sample_ecdf t = t.ecdf

let model_survival t v =
  match t.model with
  | Gumbel_tail g -> Gumbel.survival g v
  | Gev_tail g -> Gev.survival g v
  | Pot_tail pot -> Gpd_fit.Pot.survival pot v

let model_quantile_of_exceedance' model p =
  match model with
  | Gumbel_tail g -> Gumbel.quantile_of_exceedance g p
  | Gev_tail g -> Gev.quantile_of_exceedance g p
  | Pot_tail pot -> Gpd_fit.Pot.quantile_of_exceedance pot p

(* The model describes the max of [b] runs: F_block = F_run^b, so
   per-run exceedance p = 1 - F_block^(1/b), computed in log space. *)
let exceedance_probability t v =
  let s_block = model_survival t v in
  if t.block_size = 1 then s_block
  else if s_block >= 1. then 1.
  else if s_block <= 0. then 0.
  else begin
    let log_f_block = Float.log1p (-.s_block) in
    -.Float.expm1 (log_f_block /. float_of_int t.block_size)
  end

let estimate_of_model ~model ~block_size ~cutoff_probability =
  if not (cutoff_probability > 0. && cutoff_probability < 1.) then
    invalid_arg "Pwcet.estimate: cutoff_probability must lie in (0, 1)";
  let p_block =
    if block_size = 1 then cutoff_probability
    else
      (* exceedance at block level: 1 - (1 - p)^b *)
      -.Float.expm1 (float_of_int block_size *. Float.log1p (-.cutoff_probability))
  in
  (* For moderate per-run probabilities and large blocks the block-level
     exceedance rounds to 1.0; clamp just inside the open interval (the
     corresponding quantile is deep in the left tail, only plots use it). *)
  let p_block = Float.min p_block (1. -. 1e-12) in
  model_quantile_of_exceedance' model p_block

let estimate t ~cutoff_probability =
  estimate_of_model ~model:t.model ~block_size:t.block_size ~cutoff_probability

let ccdf_series t ~decades_below =
  if decades_below < 1 then invalid_arg "Pwcet.ccdf_series: decades_below must be >= 1";
  let rec go k acc =
    (* two points per decade: 10^-k and 3.16 * 10^-(k+1) *)
    if k > float_of_int decades_below then List.rev acc
    else begin
      let p = 10. ** -.k in
      go (k +. 0.5) ((estimate t ~cutoff_probability:p, p) :: acc)
    end
  in
  go 1. []

let upper_bounds_observations ?(from_probability = 0.1) ?(value_tolerance = 0.005) t =
  Stats.Ecdf.ccdf_points t.ecdf
  |> List.for_all (fun (x, p_emp) ->
         if p_emp > from_probability then true
         else estimate t ~cutoff_probability:p_emp >= x *. (1. -. value_tolerance))

let margin_over_observed t ~cutoff_probability =
  let v = estimate t ~cutoff_probability in
  let observed_max = Stats.Ecdf.order_statistic t.ecdf (Stats.Ecdf.size t.ecdf - 1) in
  v /. observed_max

let pp ppf t =
  let kind =
    match t.model with
    | Gumbel_tail g ->
        Format.asprintf "Gumbel(mu=%.2f, beta=%.2f)" g.Gumbel.mu g.Gumbel.beta
    | Gev_tail g ->
        Format.asprintf "GEV(mu=%.2f, sigma=%.2f, xi=%.4f)" g.Gev.mu g.Gev.sigma g.Gev.xi
    | Pot_tail pot ->
        Format.asprintf "POT(u=%.2f, sigma=%.2f, xi=%.4f, rate=%.3f)"
          pot.Gpd_fit.Pot.threshold pot.Gpd_fit.Pot.model.Stats.Distribution.Gpd.sigma
          pot.Gpd_fit.Pot.model.Stats.Distribution.Gpd.xi pot.Gpd_fit.Pot.exceedance_rate
  in
  Format.fprintf ppf "pWCET curve: %s, block_size=%d, n=%d" kind t.block_size
    (Stats.Ecdf.size t.ecdf)
