(** Tail-shape diagnostics used to justify the light-tail (Gumbel /
    exponential-tail) model choice before projecting to 1e-15.

    [exponentiality] checks that the excesses over a high threshold look
    exponential: their coefficient of variation must be close to 1 (an
    exponential's CV is exactly 1), with the acceptance band derived from the
    asymptotic normality of the sample CV.  [qq_correlation] is a second
    diagnostic: the Pearson correlation between empirical and exponential
    theoretical quantiles of the excesses (close to 1 for a good fit).

    Both diagnostics accept [sorted:true] when the caller has already sorted
    the sample ascending — the threshold quantile then skips its internal
    sort, letting {!Repro_mbpta.Protocol} sort the measurement vector
    exactly once. *)

type verdict = { cv : float; z : float; p_value : float; exponential : bool }

(** [exponentiality ?alpha ?quantile ?sorted xs] tests excesses over the
    empirical [quantile] (default 0.75) of [xs]. *)
val exponentiality :
  ?alpha:float -> ?quantile:float -> ?sorted:bool -> float array -> verdict

(** [qq_correlation ?quantile ?sorted xs] in [[0, 1]]. *)
val qq_correlation : ?quantile:float -> ?sorted:bool -> float array -> float

val pp_verdict : Format.formatter -> verdict -> unit
