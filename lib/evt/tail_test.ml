module Stats = Repro_stats

type verdict = { cv : float; z : float; p_value : float; exponential : bool }

let excesses_over ~sorted xs quantile =
  let threshold =
    if sorted then Stats.Descriptive.quantile_sorted xs quantile
    else Stats.Descriptive.quantile xs quantile
  in
  let es =
    Array.to_list xs
    |> List.filter_map (fun x -> if x > threshold then Some (x -. threshold) else None)
    |> Array.of_list
  in
  if Array.length es < 10 then
    invalid_arg "Tail_test: fewer than 10 excesses; lower the quantile";
  es

let exponentiality ?(alpha = 0.05) ?(quantile = 0.75) ?(sorted = false) xs =
  let es = excesses_over ~sorted xs quantile in
  let n = float_of_int (Array.length es) in
  let cv = Stats.Descriptive.sample_std es /. Stats.Descriptive.mean es in
  (* For exponential data, sqrt(n) (CV - 1) -> N(0, 1) asymptotically. *)
  let z = sqrt n *. (cv -. 1.) in
  let p_value = Stats.Special.erfc (Float.abs z /. sqrt 2.) in
  { cv; z; p_value; exponential = p_value >= alpha }

let qq_correlation ?(quantile = 0.75) ?(sorted = false) xs =
  let es = excesses_over ~sorted xs quantile in
  Array.sort Float.compare es;
  let n = Array.length es in
  let nf = float_of_int n in
  (* Exponential theoretical quantiles at plotting positions i/(n+1). *)
  let theo = Array.init n (fun i -> -.log (1. -. (float_of_int (i + 1) /. (nf +. 1.)))) in
  let mean_e = Stats.Descriptive.mean es and mean_t = Stats.Descriptive.mean theo in
  let num = ref 0. and de = ref 0. and dt = ref 0. in
  for i = 0 to n - 1 do
    let a = es.(i) -. mean_e and b = theo.(i) -. mean_t in
    num := !num +. (a *. b);
    de := !de +. (a *. a);
    dt := !dt +. (b *. b)
  done;
  !num /. sqrt (!de *. !dt)

let pp_verdict ppf v =
  Format.fprintf ppf "CV=%.3f z=%.3f p=%.4f -> %s" v.cv v.z v.p_value
    (if v.exponential then "exponential tail not rejected" else "exponential tail REJECTED")
