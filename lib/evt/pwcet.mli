(** Probabilistic WCET curves.

    A pWCET curve gives, for every execution-time budget [v], the probability
    that {e one} run of the program exceeds [v].  The paper reads its
    Figure 2 off such a curve and its Figure 3 compares the curve's quantiles
    at cutoff probabilities 1e-6 .. 1e-15 against industrial practice.

    The curve is backed by an EVT tail model fitted on block maxima (Gumbel
    or GEV) or on threshold excesses (POT/GPD).  When the model was fitted on
    maxima of blocks of [block_size] runs, all conversions between the
    block-level and per-run exceedance scales are handled here (with
    [expm1]/[log1p] so that 1e-15 probabilities survive). *)

type tail_model =
  | Gumbel_tail of Repro_stats.Distribution.Gumbel.t
  | Gev_tail of Repro_stats.Distribution.Gev.t
  | Pot_tail of Gpd_fit.Pot.t

type t

(** [create ~model ~block_size ~sample] — [block_size] is the number of runs
    per block the model was fitted on (1 for POT or raw fits); [sample] is
    the full per-run observation set, kept for plots and tightness checks. *)
val create : model:tail_model -> block_size:int -> sample:float array -> t

(** [create_sorted ~model ~block_size ~sample] — {!create} for a sample the
    caller has already sorted ascending: the internal ECDF skips its
    O(n log n) sort ({!Repro_stats.Ecdf.of_sorted}).  Bit-identical to
    {!create} on the same multiset; the entry point for pipelines
    ({!Repro_mbpta.Protocol}, {!Convergence}) that sort the measurement
    vector exactly once. *)
val create_sorted : model:tail_model -> block_size:int -> sample:float array -> t

val model : t -> tail_model
val block_size : t -> int
val sample_ecdf : t -> Repro_stats.Ecdf.t

(** [exceedance_probability t v] — per-run probability of exceeding [v]. *)
val exceedance_probability : t -> float -> float

(** [estimate t ~cutoff_probability] — the pWCET at the given per-run
    exceedance probability (e.g. [1e-15]). *)
val estimate : t -> cutoff_probability:float -> float

(** [estimate_of_model ~model ~block_size ~cutoff_probability] — the same
    quantile without building a curve (no ECDF, hence no O(n log n) sort
    of the sample): the estimate is a pure function of the fitted model
    and the block size.  Bit-identical to {!estimate} on a curve carrying
    the same model; the hot path of {!Bootstrap} replicates, which only
    need the number. *)
val estimate_of_model :
  model:tail_model -> block_size:int -> cutoff_probability:float -> float

(** [ccdf_series t ~decades_below] returns [(value, per-run exceedance)]
    points of the analytical curve, one per half-decade of probability from
    1e-1 down to 1e-[decades_below]; for overlaying on the empirical
    exceedance plot. *)
val ccdf_series : t -> decades_below:int -> (float * float) list

(** True when the curve upper-bounds every empirical tail point at or below
    the [from_probability] exceedance level (default 0.1), allowing a
    relative shortfall of [value_tolerance] (default 0.005) on the time
    axis: the "prediction tightly upper-bounds the observations" check of
    Figure 2, made operational.  A fitted tail legitimately crosses the
    empirical bulk by a fraction of a percent; what must not happen is the
    curve running materially below observed execution times. *)
val upper_bounds_observations :
  ?from_probability:float -> ?value_tolerance:float -> t -> bool

(** Ratio of the pWCET estimate at [cutoff_probability] to the maximum
    observed execution time; the paper reports roughly 1.5 at 1e-6. *)
val margin_over_observed : t -> cutoff_probability:float -> float

val pp : Format.formatter -> t -> unit
