module Prng = Repro_rng.Prng

type interval = {
  lower : float;
  point : float;
  upper : float;
  confidence : float;
  replicates : int;
}

let estimate_on xs ~cutoff_probability =
  let block_size = Block_maxima.suggest_block_size (Array.length xs) in
  let maxima = Block_maxima.extract ~block_size xs in
  let model = Gumbel_fit.fit maxima in
  let curve = Pwcet.create ~model:(Pwcet.Gumbel_tail model) ~block_size ~sample:xs in
  Pwcet.estimate curve ~cutoff_probability

let percentile sorted p =
  let n = Array.length sorted in
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let pwcet_interval ?(replicates = 200) ?(confidence = 0.95) ~prng ~sample
    ~cutoff_probability () =
  if replicates < 20 then
    invalid_arg "Bootstrap.pwcet_interval: replicates must be >= 20";
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Bootstrap.pwcet_interval: confidence must lie in (0, 1)";
  let n = Array.length sample in
  if n < 60 then
    invalid_arg
      (Printf.sprintf "Bootstrap.pwcet_interval: %d observations, need at least 60" n);
  let point = estimate_on sample ~cutoff_probability in
  let resample = Array.make n 0. in
  let estimates =
    Array.init replicates (fun _ ->
        for i = 0 to n - 1 do
          resample.(i) <- sample.(Prng.int_below prng n)
        done;
        estimate_on resample ~cutoff_probability)
  in
  Array.sort compare estimates;
  let tail = (1. -. confidence) /. 2. in
  {
    lower = percentile estimates tail;
    point;
    upper = percentile estimates (1. -. tail);
    confidence;
    replicates;
  }

let pp_interval ppf i =
  Format.fprintf ppf "%.0f  [%.0f, %.0f] at %.0f%% (%d bootstrap replicates)" i.point
    i.lower i.upper (100. *. i.confidence) i.replicates
