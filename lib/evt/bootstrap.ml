module Prng = Repro_rng.Prng
module Splitmix = Repro_rng.Splitmix
module Parallel = Repro_parallel

type interval = {
  lower : float;
  point : float;
  upper : float;
  confidence : float;
  replicates : int;
}

(* Replicates only need the number, so the curve (and the O(n log n)
   ECDF sort inside it) is never built: fit on block maxima, convert via
   the model-only estimator.  Bit-identical to the retired
   create-then-estimate path. *)
let estimate_on xs ~cutoff_probability =
  let block_size = Block_maxima.suggest_block_size (Array.length xs) in
  let maxima = Block_maxima.extract ~block_size xs in
  let model = Gumbel_fit.fit maxima in
  Pwcet.estimate_of_model ~model:(Pwcet.Gumbel_tail model) ~block_size ~cutoff_probability

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Bootstrap.percentile: empty replicate set";
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

(* Counter-mode Splitmix64 over (base_seed, replicate_index) — the same
   splitting discipline as [Experiment.scenario_seed]: replicate [k]'s seed
   is a pure function of the pair, so replicates can be evaluated in any
   order, on any domain, and still draw the exact stream the sequential
   reference draws. *)
let derive_replicate_seed base k =
  let sm = Splitmix.create base in
  let rec skip j =
    if j > 0 then begin
      ignore (Splitmix.next sm);
      skip (j - 1)
    end
  in
  skip k;
  Splitmix.next sm

let pwcet_interval ?(replicates = 200) ?(confidence = 0.95) ?(jobs = 1) ~prng ~sample
    ~cutoff_probability () =
  if replicates < 20 then
    invalid_arg "Bootstrap.pwcet_interval: replicates must be >= 20";
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Bootstrap.pwcet_interval: confidence must lie in (0, 1)";
  if jobs < 1 then invalid_arg "Bootstrap.pwcet_interval: jobs must be >= 1";
  let n = Array.length sample in
  if n < 60 then
    invalid_arg
      (Printf.sprintf "Bootstrap.pwcet_interval: %d observations, need at least 60" n);
  let point = estimate_on sample ~cutoff_probability in
  (* One base seed drawn from the caller's generator (the derivation
     [Prng.split] uses), then every replicate re-creates a same-algorithm
     generator from [(base_seed, k)].  The caller's stream advances by
     exactly two draws regardless of [replicates] or [jobs]. *)
  let base_seed =
    Int64.logor
      (Int64.shift_left (Int64.of_int (Prng.bits32 prng)) 32)
      (Int64.of_int (Prng.bits32 prng))
  in
  let algorithm = Prng.algorithm prng in
  let replicate k =
    let rng =
      let seed = derive_replicate_seed base_seed k in
      match algorithm with
      | Some a -> Prng.create ~algorithm:a seed
      | None -> Prng.create seed
    in
    let resample = Array.make n 0. in
    for i = 0 to n - 1 do
      resample.(i) <- sample.(Prng.int_below rng n)
    done;
    estimate_on resample ~cutoff_probability
  in
  let estimates = Parallel.init ~jobs replicates replicate in
  Array.sort Float.compare estimates;
  let tail = (1. -. confidence) /. 2. in
  if Array.exists Float.is_nan estimates then
    (* A failed replicate fit must poison the interval, not silently shift
       it: [Float.compare] sorts NaNs to the front, so taking percentiles
       of the mixed array would report finite — and wrong — bounds. *)
    { lower = Float.nan; point; upper = Float.nan; confidence; replicates }
  else
    {
      lower = percentile estimates tail;
      point;
      upper = percentile estimates (1. -. tail);
      confidence;
      replicates;
    }

let pp_interval ppf i =
  Format.fprintf ppf "%.0f  [%.0f, %.0f] at %.0f%% (%d bootstrap replicates)" i.point
    i.lower i.upper (100. *. i.confidence) i.replicates
