type point = { runs : int; estimate : float }
type result = { converged : bool; runs_used : int; history : point list }

let estimate_at xs probability =
  let block_size = Block_maxima.suggest_block_size (Array.length xs) in
  let maxima = Block_maxima.extract ~block_size xs in
  let gumbel = Gumbel_fit.fit ~method_:Gumbel_fit.Pwm maxima in
  let curve =
    Pwcet.create ~model:(Pwcet.Gumbel_tail gumbel) ~block_size ~sample:xs
  in
  Pwcet.estimate curve ~cutoff_probability:probability

let study ?(probability = 1e-9) ?(step = 100) ?(tolerance = 0.01) ?(stable_steps = 3)
    ?(min_runs = 100) xs =
  let n = Array.length xs in
  if step < 1 then invalid_arg "Convergence.study: step must be >= 1";
  if stable_steps < 1 then invalid_arg "Convergence.study: stable_steps must be >= 1";
  if n < min_runs then
    invalid_arg
      (Printf.sprintf "Convergence.study: %d runs, need at least min_runs = %d" n
         min_runs);
  let rec go used previous streak acc =
    if used > n then
      { converged = false; runs_used = n; history = List.rev acc }
    else begin
      let sub = Array.sub xs 0 used in
      let est = estimate_at sub probability in
      let acc = { runs = used; estimate = est } :: acc in
      let streak =
        match previous with
        | Some prev when Float.abs (est -. prev) /. Float.abs prev <= tolerance ->
            streak + 1
        | Some _ | None -> 0
      in
      if streak >= stable_steps then
        { converged = true; runs_used = used; history = List.rev acc }
      else go (used + step) (Some est) streak acc
    end
  in
  go min_runs None 0 []

let pp_result ppf r =
  Format.fprintf ppf "%s after %d runs (%d estimates)"
    (if r.converged then "converged" else "NOT converged")
    r.runs_used (List.length r.history)
