type point = { runs : int; estimate : float }

type result = {
  converged : bool;
  runs_used : int;
  history : point list;
  comparisons : int;
}

(* Incremental implementation.

   The retired reference re-did the whole pipeline per step: sort the
   prefix (inside the ECDF), re-extract every block maximum, refit —
   O(k · n log n) over k steps.  The estimate at each step is a pure
   function of (a) the block maxima of the prefix in block order and
   (b) the fitted model; the ECDF inside the curve never feeds the
   estimate.  So the study can instead maintain:

   - one sorted prefix, extended by merging each step's freshly-sorted
     slice (O(step log step + used) per step), handed to the curve via
     the sorted-sample path — the same multiset, hence the same ECDF;
   - the block-maxima array in block order.  While the suggested block
     size is unchanged, only the new complete blocks are folded (each
     element of the sample is visited once per block-size level).  When
     the suggested size doubles, maxima combine pairwise:
     [Float.max] is associative (exact for finite floats, +0 beats -0,
     NaN absorbs), so the pairwise max of two half-block maxima is
     bit-identical to the reference's left-fold over the full block.

   Every comparison the study performs (merge, sort of the fresh slice,
   block-max folds) is counted in [comparisons], so CI can pin the
   O(n log n) work budget without timing anything. *)

let study ?(probability = 1e-9) ?(step = 100) ?(tolerance = 0.01) ?(stable_steps = 3)
    ?(min_runs = 100) xs =
  let n = Array.length xs in
  if step < 1 then invalid_arg "Convergence.study: step must be >= 1";
  if stable_steps < 1 then invalid_arg "Convergence.study: stable_steps must be >= 1";
  if n < min_runs then
    invalid_arg
      (Printf.sprintf "Convergence.study: %d runs, need at least min_runs = %d" n
         min_runs);
  let comparisons = ref 0 in
  let cmp a b =
    incr comparisons;
    Float.compare a b
  in
  let fmax a b =
    incr comparisons;
    Float.max a b
  in
  (* sorted.(0 .. used-1) holds the prefix in ascending order. *)
  let sorted = Array.make (Stdlib.max n 1) 0. in
  let merge_in ~used_prev ~used =
    let m = used - used_prev in
    let fresh = Array.sub xs used_prev m in
    Array.sort cmp fresh;
    (* Backward in-place merge: the write index never catches up with the
       unread tail of the existing run. *)
    let i = ref (used_prev - 1) and j = ref (m - 1) in
    for k = used - 1 downto 0 do
      if !j < 0 then begin
        sorted.(k) <- sorted.(!i);
        decr i
      end
      else if !i < 0 then begin
        sorted.(k) <- fresh.(!j);
        decr j
      end
      else if cmp sorted.(!i) fresh.(!j) > 0 then begin
        sorted.(k) <- sorted.(!i);
        decr i
      end
      else begin
        sorted.(k) <- fresh.(!j);
        decr j
      end
    done
  in
  (* maxima.(0 .. count-1): maxima of the complete blocks at the current
     block size, in block order — exactly [Block_maxima.extract]'s output
     on the prefix. *)
  let maxima = Array.make (Stdlib.max n 1) 0. in
  let block_size = ref 1 in
  let count = ref 0 in
  let advance used =
    let target = Block_maxima.suggest_block_size used in
    while !block_size < target do
      (* Doubling: pairwise-combine; a trailing odd block is re-folded from
         the sample below once its enclosing double block completes. *)
      let c = !count / 2 in
      for b = 0 to c - 1 do
        maxima.(b) <- fmax maxima.(2 * b) maxima.((2 * b) + 1)
      done;
      count := c;
      block_size := !block_size * 2
    done;
    let blocks = used / !block_size in
    while !count < blocks do
      let start = !count * !block_size in
      let m = ref xs.(start) in
      for i = 1 to !block_size - 1 do
        m := fmax !m xs.(start + i)
      done;
      maxima.(!count) <- !m;
      incr count
    done;
    blocks
  in
  let estimate_at used =
    let blocks = advance used in
    let gumbel = Gumbel_fit.fit ~method_:Gumbel_fit.Pwm (Array.sub maxima 0 blocks) in
    let curve =
      Pwcet.create_sorted ~model:(Pwcet.Gumbel_tail gumbel) ~block_size:!block_size
        ~sample:(Array.sub sorted 0 used)
    in
    Pwcet.estimate curve ~cutoff_probability:probability
  in
  let rec go used used_prev previous streak acc =
    if used > n then
      {
        converged = false;
        runs_used = n;
        history = List.rev acc;
        comparisons = !comparisons;
      }
    else begin
      merge_in ~used_prev ~used;
      let est = estimate_at used in
      let acc = { runs = used; estimate = est } :: acc in
      let streak =
        match previous with
        | Some prev when Float.abs (est -. prev) /. Float.abs prev <= tolerance ->
            streak + 1
        | Some _ | None -> 0
      in
      if streak >= stable_steps then
        {
          converged = true;
          runs_used = used;
          history = List.rev acc;
          comparisons = !comparisons;
        }
      else go (used + step) used (Some est) streak acc
    end
  in
  go min_runs 0 None 0 []

let pp_result ppf r =
  Format.fprintf ppf "%s after %d runs (%d estimates)"
    (if r.converged then "converged" else "NOT converged")
    r.runs_used (List.length r.history)
