(** MBPTA convergence criterion.

    The paper collects runs until "the convergence criteria defined in the
    MBPTA process" are satisfied (3,000 runs for TVCA).  Following
    Cucu-Grosjean et al. (ECRTS 2012), we re-estimate the pWCET at a
    reference exceedance probability each time [step] more runs are
    available; the process has converged when the estimate changes by less
    than [tolerance] (relative) for [stable_steps] consecutive increments.

    {b Incremental evaluation.}  The study maintains one incrementally
    merged sorted prefix and reuses block maxima across steps (pairwise
    [Float.max] combination when the suggested block size doubles), so a
    step costs one merge plus one tail refit instead of a full re-sort and
    re-extraction — O(n log n + k·n) total comparisons over k steps rather
    than O(k · n log n).  The estimate trajectory is bit-identical to the
    retired from-scratch implementation (kept as the oracle in
    [test/test_analysis_perf.ml]). *)

type point = { runs : int; estimate : float }

type result = {
  converged : bool;
  runs_used : int;  (** runs consumed when convergence was declared (or all) *)
  history : point list;  (** estimate trajectory, oldest first *)
  comparisons : int;
      (** element comparisons performed by the incremental machinery (merge,
          fresh-slice sort, block-max folds) — the counter CI pins against
          the O(n log n) budget, immune to wall-clock noise *)
}

val study :
  ?probability:float ->
  (* reference exceedance probability, default 1e-9 *)
  ?step:int ->
  (* runs added per iteration, default 100 *)
  ?tolerance:float ->
  (* relative stability threshold, default 0.01 *)
  ?stable_steps:int ->
  (* consecutive stable increments required, default 3 *)
  ?min_runs:int ->
  (* smallest sample for the first estimate, default 100 *)
  float array ->
  result

val pp_result : Format.formatter -> result -> unit
