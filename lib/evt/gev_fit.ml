module Stats = Repro_stats
module Gev = Stats.Distribution.Gev

type method_ = Pwm | Mle

(* b0, b1, b2 probability-weighted moments. *)
let pwm xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let nf = float_of_int n in
  let b0 = ref 0. and b1 = ref 0. and b2 = ref 0. in
  for i = 0 to n - 1 do
    let x = sorted.(i) in
    let fi = float_of_int i in
    b0 := !b0 +. x;
    b1 := !b1 +. (fi /. (nf -. 1.) *. x);
    b2 := !b2 +. (fi *. (fi -. 1.) /. ((nf -. 1.) *. (nf -. 2.)) *. x)
  done;
  (!b0 /. nf, !b1 /. nf, !b2 /. nf)

let log2 = log 2.

let gamma_fn x = exp (Stats.Special.log_gamma x)

let fit_pwm xs =
  if Array.length xs < 4 then
    invalid_arg
      (Printf.sprintf "Gev_fit.fit_pwm: %d block maxima, need at least 4"
         (Array.length xs));
  let b0, b1, b2 = pwm xs in
  let c = (((2. *. b1) -. b0) /. ((3. *. b2) -. b0)) -. (log2 /. log 3.) in
  (* Hosking's approximation of the shape (his k = -xi). *)
  let k = (7.8590 *. c) +. (2.9554 *. c *. c) in
  if Float.abs k < 1e-6 then begin
    (* Degenerate to Gumbel. *)
    let g = Gumbel_fit.fit ~method_:Gumbel_fit.Pwm xs in
    Gev.create ~mu:g.Stats.Distribution.Gumbel.mu ~sigma:g.Stats.Distribution.Gumbel.beta
      ~xi:0.
  end
  else begin
    let gamma1k = gamma_fn (1. +. k) in
    let sigma = ((2. *. b1) -. b0) *. k /. (gamma1k *. (1. -. (2. ** -.k))) in
    let sigma = if sigma > 0. then sigma else 1e-9 in
    let mu = b0 +. (sigma *. (gamma1k -. 1.) /. k) in
    Gev.create ~mu ~sigma ~xi:(-.k)
  end

let fit_mle xs =
  let start = fit_pwm xs in
  let objective params =
    match params with
    | [| mu; log_sigma; xi |] ->
        if Float.abs log_sigma > 50. then infinity
        else begin
          let sigma = exp log_sigma in
          let g = Gev.create ~mu ~sigma ~xi in
          let ll = Gev.log_likelihood g xs in
          if Float.is_nan ll then infinity else -.ll
        end
    | _ -> assert false
  in
  let start_vec = [| start.Gev.mu; log start.Gev.sigma; start.Gev.xi |] in
  let best, _ = Stats.Optimize.nelder_mead ~f:objective ~start:start_vec ~step:0.05 () in
  match best with
  | [| mu; log_sigma; xi |] -> Gev.create ~mu ~sigma:(exp log_sigma) ~xi
  | _ -> assert false

let fit ?(method_ = Pwm) xs =
  match method_ with Pwm -> fit_pwm xs | Mle -> fit_mle xs

let goodness_of_fit g xs = Stats.Ks.one_sample xs ~cdf:(Gev.cdf g)

let gumbel_lr_test xs =
  let gumbel = Gumbel_fit.fit ~method_:Gumbel_fit.Mle xs in
  let gev = fit_mle xs in
  let ll0 = Stats.Distribution.Gumbel.log_likelihood gumbel xs in
  let ll1 = Gev.log_likelihood gev xs in
  let lr = Float.max 0. (2. *. (ll1 -. ll0)) in
  let p = Stats.Special.chi_square_survival ~df:1 lr in
  (lr, p)
