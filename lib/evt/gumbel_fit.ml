module Stats = Repro_stats
module Gumbel = Stats.Distribution.Gumbel

type method_ = Moments | Pwm | Mle

let euler_mascheroni = 0.5772156649015329

let fit_moments xs =
  let s = Stats.Descriptive.sample_std xs in
  let beta = s *. sqrt 6. /. Float.pi in
  let beta = if beta > 0. then beta else 1e-9 in
  let mu = Stats.Descriptive.mean xs -. (euler_mascheroni *. beta) in
  Gumbel.create ~mu ~beta

(* b0, b1 probability-weighted moments with the Landwehr plotting position. *)
let pwm_b0_b1 xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let nf = float_of_int n in
  let b0 = ref 0. and b1 = ref 0. in
  for i = 0 to n - 1 do
    let x = sorted.(i) in
    b0 := !b0 +. x;
    b1 := !b1 +. (float_of_int i /. (nf -. 1.) *. x)
  done;
  (!b0 /. nf, !b1 /. nf)

let fit_pwm xs =
  let b0, b1 = pwm_b0_b1 xs in
  let beta = ((2. *. b1) -. b0) /. log 2. in
  let beta = if beta > 0. then beta else 1e-9 in
  let mu = b0 -. (euler_mascheroni *. beta) in
  Gumbel.create ~mu ~beta

(* Profile MLE: for fixed beta the optimal mu is
   mu(beta) = -beta log( mean(exp(-x/beta)) );
   substitute and maximize over beta only.  Shift by max(xs) inside the
   exponentials for numerical stability. *)
let fit_mle xs =
  let n = Array.length xs in
  if n < 2 then
    invalid_arg (Printf.sprintf "Gumbel_fit.fit_mle: %d block maxima, need at least 2" n);
  let xmax = Stats.Descriptive.max xs in
  let neg_profile_log_likelihood beta =
    if beta <= 0. then infinity
    else begin
      let sum_exp = Array.fold_left (fun a x -> a +. exp ((x -. xmax) /. -.beta)) 0. xs in
      let mean_exp = sum_exp /. float_of_int n in
      let mu = xmax -. (beta *. log mean_exp) in
      let g = Gumbel.create ~mu ~beta in
      -.Gumbel.log_likelihood g xs
    end
  in
  let start = fit_pwm xs in
  let beta0 = start.Gumbel.beta in
  let beta =
    Stats.Optimize.golden_section ~f:neg_profile_log_likelihood ~lo:(beta0 /. 20.)
      ~hi:(beta0 *. 20.) ~tol:(beta0 *. 1e-9) ()
  in
  let sum_exp = Array.fold_left (fun a x -> a +. exp ((x -. xmax) /. -.beta)) 0. xs in
  let mu = xmax -. (beta *. log (sum_exp /. float_of_int n)) in
  Gumbel.create ~mu ~beta

let fit ?(method_ = Pwm) xs =
  if Array.length xs < 2 then
    invalid_arg
      (Printf.sprintf "Gumbel_fit.fit: %d block maxima, need at least 2"
         (Array.length xs));
  match method_ with
  | Moments -> fit_moments xs
  | Pwm -> fit_pwm xs
  | Mle -> fit_mle xs

let goodness_of_fit g xs = Stats.Ks.one_sample xs ~cdf:(Gumbel.cdf g)
