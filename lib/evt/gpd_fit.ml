module Stats = Repro_stats
module Gpd = Stats.Distribution.Gpd

type method_ = Pwm | Mle | Exponential

(* Hosking & Wallis (1987) PWM estimators from a0 = E[X] and
   a1 = E[X (1 - F(X))] of the excesses:
     xi = 2 - a0 / (a0 - 2 a1),  sigma = 2 a0 a1 / (a0 - 2 a1). *)
let fit_pwm ~threshold excesses =
  if Array.length excesses < 4 then
    invalid_arg
      (Printf.sprintf "Gpd_fit.fit_pwm: %d excesses, need at least 4"
         (Array.length excesses));
  let sorted = Array.copy excesses in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let nf = float_of_int n in
  let a0 = ref 0. and a1 = ref 0. in
  for i = 0 to n - 1 do
    let x = sorted.(i) in
    a0 := !a0 +. x;
    a1 := !a1 +. (float_of_int (n - 1 - i) /. (nf -. 1.) *. x)
  done;
  let a0 = !a0 /. nf and a1 = !a1 /. nf in
  let denom = a0 -. (2. *. a1) in
  if denom <= 0. then
    (* Degenerate (extremely heavy tail); fall back to exponential. *)
    Gpd.create ~u:threshold ~sigma:(Float.max a0 1e-9) ~xi:0.
  else begin
    let xi = 2. -. (a0 /. denom) in
    let sigma = 2. *. a0 *. a1 /. denom in
    let sigma = if sigma > 0. then sigma else 1e-9 in
    Gpd.create ~u:threshold ~sigma ~xi
  end

let fit_mle ~threshold excesses =
  let start = fit_pwm ~threshold excesses in
  let shifted = Array.map (fun e -> e +. threshold) excesses in
  let objective params =
    match params with
    | [| log_sigma; xi |] ->
        if Float.abs log_sigma > 50. then infinity
        else begin
          let g = Gpd.create ~u:threshold ~sigma:(exp log_sigma) ~xi in
          let ll = Gpd.log_likelihood g shifted in
          if Float.is_nan ll then infinity else -.ll
        end
    | _ -> assert false
  in
  let best, _ =
    Stats.Optimize.nelder_mead ~f:objective
      ~start:[| log start.Gpd.sigma; start.Gpd.xi |]
      ~step:0.05 ()
  in
  match best with
  | [| log_sigma; xi |] -> Gpd.create ~u:threshold ~sigma:(exp log_sigma) ~xi
  | _ -> assert false

(* xi = 0 forced: the exponential's MLE rate is 1/mean, i.e. sigma = mean
   of the excesses. *)
let fit_exponential ~threshold excesses =
  let n = Array.length excesses in
  if n < 1 then invalid_arg "Gpd_fit.fit_exponential: empty excess sample";
  let mean = Array.fold_left ( +. ) 0. excesses /. float_of_int n in
  Gpd.create ~u:threshold ~sigma:(Float.max mean 1e-9) ~xi:0.

let fit ?(method_ = Pwm) ~threshold excesses =
  if not (Array.for_all (fun e -> e >= 0.) excesses) then
    invalid_arg "Gpd_fit.fit: excesses must be non-negative (x - threshold)";
  match method_ with
  | Pwm -> fit_pwm ~threshold excesses
  | Mle -> fit_mle ~threshold excesses
  | Exponential -> fit_exponential ~threshold excesses

module Pot = struct
  type t = {
    model : Gpd.t;
    threshold : float;
    exceedance_rate : float;
    n_exceedances : int;
  }

  let analyze ?(method_ = Pwm) ?(quantile = 0.9) ?(sorted = false) xs =
    if not (quantile > 0. && quantile < 1.) then
      invalid_arg "Pot.analyze: quantile must lie in (0, 1)";
    let threshold =
      if sorted then Stats.Descriptive.quantile_sorted xs quantile
      else Stats.Descriptive.quantile xs quantile
    in
    let excesses =
      Array.to_list xs
      |> List.filter_map (fun x -> if x > threshold then Some (x -. threshold) else None)
      |> Array.of_list
    in
    let n_exceedances = Array.length excesses in
    if n_exceedances < 4 then
      invalid_arg "Pot.analyze: fewer than 4 exceedances; lower the quantile";
    let model = fit ~method_ ~threshold excesses in
    let exceedance_rate = float_of_int n_exceedances /. float_of_int (Array.length xs) in
    { model; threshold; exceedance_rate; n_exceedances }

  let survival t x =
    if x <= t.threshold then 1.
    else t.exceedance_rate *. Gpd.survival t.model x

  let quantile_of_exceedance t p =
    if not (p > 0. && p < t.exceedance_rate) then
      invalid_arg
        (Printf.sprintf
           "Pot.quantile_of_exceedance: probability %g outside (0, %g) (the \
            exceedance rate)"
           p t.exceedance_rate);
    Gpd.quantile t.model (1. -. (p /. t.exceedance_rate))
end
