(** Bootstrap confidence intervals on pWCET estimates.

    A point pWCET at 1e-15 extrapolates ten orders of magnitude past the
    data; reporting it without a sampling-uncertainty band invites
    over-trust.  This module resamples the measurement set with
    replacement, refits the tail each time, and returns percentile
    intervals of the pWCET quantile — the standard nonparametric bootstrap
    applied at the level of whole runs, so block re-formation is part of
    the resampling.

    {b Determinism contract.}  The caller's [prng] is consumed for exactly
    two 32-bit draws, which form a 64-bit base seed; replicate [k]'s
    resampling generator is then re-created from a Splitmix64 counter-mode
    derivation of [(base_seed, k)] — a pure function of the pair, using the
    same splitting discipline as [Experiment.scenario_seed].  Replicates
    therefore fan out over the domain pool with results bit-identical to
    the [jobs:1] sequential reference at any job count. *)

type interval = {
  lower : float;
  point : float;  (** estimate on the original sample *)
  upper : float;
  confidence : float;
  replicates : int;
}

(** [pwcet_interval ?replicates ?confidence ?jobs ~prng ~sample
    ~cutoff_probability ()] — Gumbel tail on block maxima (block size from
    {!Block_maxima.suggest_block_size} of the sample size), [replicates]
    defaults to 200, [confidence] to 0.95 and [jobs] to 1 (the sequential
    reference; any other job count returns bit-identical intervals).

    If any replicate's refit degenerates to NaN, [lower] and [upper] are
    NaN — a corrupted replicate set must be visible, never a silently
    shifted percentile.

    Raises [Invalid_argument] when [replicates < 20], [confidence] is
    outside (0, 1), [jobs < 1], or the sample has fewer than 60
    observations. *)
val pwcet_interval :
  ?replicates:int ->
  ?confidence:float ->
  ?jobs:int ->
  prng:Repro_rng.Prng.t ->
  sample:float array ->
  cutoff_probability:float ->
  unit ->
  interval

(** [percentile sorted p] — type-7 interpolated percentile of an
    already-sorted replicate set (exposed for tests of the degenerate
    single-replicate and empty paths).  Raises [Invalid_argument] on an
    empty array. *)
val percentile : float array -> float -> float

val pp_interval : Format.formatter -> interval -> unit
