type t = {
  cycles : int;
  instructions : int;
  il1_hits : int;
  il1_misses : int;
  dl1_hits : int;
  dl1_misses : int;
  itlb_misses : int;
  dtlb_misses : int;
  bus_transactions : int;
  dram_row_hits : int;
  dram_row_misses : int;
  fp_long_ops : int;
  taken_branches : int;
  faults_injected : int;
}

let cycles t = t.cycles

let cpi t =
  if t.instructions = 0 then 0. else float_of_int t.cycles /. float_of_int t.instructions

let rate misses hits =
  let total = misses + hits in
  if total = 0 then 0. else float_of_int misses /. float_of_int total

let il1_miss_rate t = rate t.il1_misses t.il1_hits
let dl1_miss_rate t = rate t.dl1_misses t.dl1_hits

let pp ppf t =
  Format.fprintf ppf
    "cycles=%d instr=%d cpi=%.3f il1=%.4f dl1=%.4f itlb_m=%d dtlb_m=%d bus=%d dram=%d/%d \
     fp_long=%d taken=%d"
    t.cycles t.instructions (cpi t) (il1_miss_rate t) (dl1_miss_rate t) t.itlb_misses
    t.dtlb_misses t.bus_transactions t.dram_row_hits t.dram_row_misses t.fp_long_ops
    t.taken_branches;
  if t.faults_injected > 0 then Format.fprintf ppf " seu=%d" t.faults_injected
