type t = {
  mode : Config.dram_mode;
  banks : int;
  row_bytes : int;
  open_rows : int array;  (* per bank; -1 = closed *)
  row_hit : int;
  row_miss : int;
  fixed : int;
  mutable row_hits : int;
  mutable row_misses : int;
}

let create ~mode ~banks ~row_bytes ~latencies =
  if banks < 1 then invalid_arg "Dram.create: banks must be >= 1";
  if row_bytes < 1 then invalid_arg "Dram.create: row_bytes must be >= 1";
  {
    mode;
    banks;
    row_bytes;
    open_rows = Array.make banks (-1);
    row_hit = latencies.Config.dram_row_hit;
    row_miss = latencies.Config.dram_row_miss;
    fixed = latencies.Config.dram_fixed;
    row_hits = 0;
    row_misses = 0;
  }

let access t ~addr =
  match t.mode with
  | Config.Fixed_worst -> t.fixed
  | Config.Open_page ->
      let row = addr / t.row_bytes in
      let bank = row mod t.banks in
      if t.open_rows.(bank) = row then begin
        t.row_hits <- t.row_hits + 1;
        t.row_hit
      end
      else begin
        t.row_misses <- t.row_misses + 1;
        t.open_rows.(bank) <- row;
        t.row_miss
      end

let flush t = Array.fill t.open_rows 0 t.banks (-1)

type stats = { row_hits : int; row_misses : int }

let stats (t : t) = { row_hits = t.row_hits; row_misses = t.row_misses }

let reset_stats (t : t) =
  t.row_hits <- 0;
  t.row_misses <- 0

(* Run boundary in one pass: close every row buffer and zero the stats. *)
let reset_run t =
  flush t;
  reset_stats t
