module Prng = Repro_rng.Prng

type t = {
  transfer : int;
  contenders : float array;
  mutable transactions : int;
}

let create ~latencies ~contenders =
  List.iter
    (fun p ->
      if not (p >= 0. && p <= 1.) then
        invalid_arg
          (Printf.sprintf "Bus.create: contention probability %g outside [0, 1]" p))
    contenders;
  {
    transfer = latencies.Config.bus_transfer;
    contenders = Array.of_list contenders;
    transactions = 0;
  }

let transaction t ~prng =
  t.transactions <- t.transactions + 1;
  let interference = ref 0 in
  Array.iter
    (fun pressure -> if Prng.float prng < pressure then interference := !interference + t.transfer)
    t.contenders;
  t.transfer + !interference

let count t = t.transactions

let reset t = t.transactions <- 0
