module Prng = Repro_rng.Prng

type outcome = Hit | Miss

(* Hot-path layout: [tags] and [recency] are single flat [int array]s
   indexed by [set * ways + way] (one bounds check and no nested-array
   indirection per probe), the power-of-two geometry is kept as shifts and
   masks so the per-access path divides nothing, and the placement /
   replacement modes are hoisted out of [config] into immediate fields so
   each access dispatches on one word.  [find_slot] returns a sentinel int
   instead of an [option]: the lookup path allocates nothing. *)
type t = {
  config : Config.cache_config;
  sets : int;
  ways : int;
  line_bytes : int;
  line_shift : int;  (* line_bytes = 1 lsl line_shift *)
  set_mask : int;  (* sets - 1 *)
  set_shift : int;  (* sets = 1 lsl set_shift *)
  placement : Config.placement;
  replacement : Config.replacement;
  tags : int array;  (* sets*ways, flat; full line number, -1 = invalid *)
  recency : int array;  (* sets*ways, flat; last-use stamp for LRU *)
  rr : int array;  (* per-set round-robin pointer *)
  mutable mru : int;  (* last slot hit/filled, -1 = none; a pure search shortcut *)
  mutable clock : int;
  mutable prng : Prng.t;  (* mutable so a reused simulator can be reseeded *)
  mutable seed_material : int;  (* per-flush salt for randomized placement *)
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable write_throughs : int;
}

(* splitmix-like 2-in-1 mixer used as the placement hash. *)
let mix a b =
  let z = Int64.of_int ((a * 0x9E3779B9) lxor (b * 0x85EBCA6B)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0x3FFFFFFFFFFFFFFFL)

let log2_exact n =
  let rec go s = if 1 lsl s = n then s else go (s + 1) in
  go 0

let create ~config ~prng =
  let sets = Config.sets config.Config.geometry in
  let ways = config.Config.geometry.Config.ways in
  let line_bytes = config.Config.geometry.Config.line_bytes in
  {
    config;
    sets;
    ways;
    line_bytes;
    line_shift = log2_exact line_bytes;
    set_mask = sets - 1;
    set_shift = log2_exact sets;
    placement = config.Config.placement;
    replacement = config.Config.replacement;
    tags = Array.make (sets * ways) (-1);
    recency = Array.make (sets * ways) 0;
    rr = Array.make sets 0;
    mru = -1;
    clock = 0;
    prng;
    seed_material = Prng.bits32 prng;
    accesses = 0;
    hits = 0;
    misses = 0;
    write_throughs = 0;
  }

let sets t = t.sets
let ways t = t.ways

let line_of_addr t addr = addr lsr t.line_shift

let set_of_line t line =
  match t.placement with
  | Config.Modulo -> line land t.set_mask
  | Config.Random_modulo ->
      (* Rotate the conventional index by a hash of the tag: lines within the
         same window (equal tag) keep distinct sets. *)
      let index = line land t.set_mask in
      let tag = line lsr t.set_shift in
      (index + mix tag t.seed_material) land t.set_mask
  | Config.Hash_random -> mix line t.seed_material land t.set_mask

let set_of_addr t addr = set_of_line t (line_of_addr t addr)

(* Flat index of [line] within the set starting at [base = set * ways], or
   -1 when absent.  No allocation; bounds are established by construction. *)
let find_slot t ~base line =
  let tags = t.tags in
  let stop = base + t.ways in
  let rec go i =
    if i >= stop then -1 else if Array.unsafe_get tags i = line then i else go (i + 1)
  in
  go base

let touch t slot =
  t.clock <- t.clock + 1;
  Array.unsafe_set t.recency slot t.clock

(* Victim slot in the set starting at [base]: prefer an invalid way. *)
let victim_slot t ~set ~base =
  let tags = t.tags in
  let stop = base + t.ways in
  let rec find_invalid i =
    if i >= stop then -1 else if Array.unsafe_get tags i = -1 then i else find_invalid (i + 1)
  in
  let invalid = find_invalid base in
  if invalid >= 0 then invalid
  else begin
    match t.replacement with
    | Config.Lru ->
        let recency = t.recency in
        let best = ref base in
        for i = base + 1 to stop - 1 do
          if Array.unsafe_get recency i < Array.unsafe_get recency !best then best := i
        done;
        !best
    | Config.Random_replacement -> base + Prng.int_below t.prng t.ways
    | Config.Round_robin ->
        let w = t.rr.(set) in
        t.rr.(set) <- (w + 1) mod t.ways;
        base + w
  end

let access t ~addr ~write =
  let line = addr lsr t.line_shift in
  (* MRU shortcut: consecutive accesses overwhelmingly land on the line of
     the previous one (straight-line fetch, array streams), and a stored
     tag is the full line number, unique cache-wide within a run — so a tag
     match at the hinted slot is exactly the hit [find_slot] would have
     found, without even computing the set (the randomized placements hash
     on every probe).  Same outcome, same recency write, no PRNG
     interaction.  The SEU hooks below drop the hint: a corrupted tag can
     alias a live line, and then only the placement-then-scan answer is
     canonical. *)
  let mru = t.mru in
  if mru >= 0 && Array.unsafe_get t.tags mru = line then begin
    t.accesses <- t.accesses + 1;
    if write then t.write_throughs <- t.write_throughs + 1;
    t.hits <- t.hits + 1;
    touch t mru;
    Hit
  end
  else begin
    let set = set_of_line t line in
    let base = set * t.ways in
    t.accesses <- t.accesses + 1;
    if write then t.write_throughs <- t.write_throughs + 1;
    let slot = find_slot t ~base line in
    if slot >= 0 then begin
      t.hits <- t.hits + 1;
      t.mru <- slot;
      touch t slot;
      Hit
    end
    else begin
      t.misses <- t.misses + 1;
      (* no-write-allocate: a write miss goes straight through, only a read
         miss allocates (and refreshes recency). *)
      if not write then begin
        let slot = victim_slot t ~set ~base in
        Array.unsafe_set t.tags slot line;
        t.mru <- slot;
        touch t slot
      end;
      Miss
    end
  end

let probe t ~addr =
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  if find_slot t ~base:(set * t.ways) line >= 0 then Hit else Miss

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.recency 0 (Array.length t.recency) 0;
  Array.fill t.rr 0 t.sets 0;
  t.mru <- -1;
  t.clock <- 0;
  (* A flush models a run boundary: draw a fresh placement salt. *)
  t.seed_material <- Prng.bits32 t.prng

(* ---- SEU injection hooks (driven by Fault) ---- *)

let inject_tag_flip t ~set ~way ~bit =
  if set < 0 || set >= t.sets || way < 0 || way >= t.ways then
    invalid_arg "Cache.inject_tag_flip: site out of range";
  let slot = (set * t.ways) + way in
  let tag = t.tags.(slot) in
  if tag >= 0 then begin
    (* Flipping a tag bit re-labels the stored line: the original line will
       now miss, and the aliased line would falsely hit.  Keep the result
       non-negative so it never collides with the invalid sentinel. *)
    t.tags.(slot) <- tag lxor (1 lsl (bit land 29)) land max_int;
    t.mru <- -1
  end

let inject_valid_flip t ~set ~way ~garbage_line =
  if set < 0 || set >= t.sets || way < 0 || way >= t.ways then
    invalid_arg "Cache.inject_valid_flip: site out of range";
  let slot = (set * t.ways) + way in
  if t.tags.(slot) >= 0 then t.tags.(slot) <- -1 else t.tags.(slot) <- abs garbage_line;
  t.mru <- -1

type stats = { accesses : int; hits : int; misses : int; write_throughs : int }

(* Counter invariants: every access is exactly one hit or one miss, and
   write-throughs count write accesses only (a subset of all accesses).
   Violations would mean the no-write-allocate path double-counted — guard
   for it here instead of letting a skewed miss ratio poison downstream
   timing statistics silently. *)
let stats (t : t) =
  if t.hits + t.misses <> t.accesses then
    invalid_arg
      (Printf.sprintf "Cache.stats: counter invariant violated (%d hits + %d misses <> %d accesses)"
         t.hits t.misses t.accesses);
  if t.write_throughs > t.accesses then
    invalid_arg
      (Printf.sprintf "Cache.stats: counter invariant violated (%d write-throughs > %d accesses)"
         t.write_throughs t.accesses);
  { accesses = t.accesses; hits = t.hits; misses = t.misses; write_throughs = t.write_throughs }

let reset_stats (t : t) =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.write_throughs <- 0

(* Run boundary in one pass: invalidate, fresh placement salt, zero stats.
   Draw order is exactly flush-then-reset_stats (reset_stats draws
   nothing), so batched campaigns replaying this per run stay bit-identical
   to the retired two-call sequence. *)
let reset_run t =
  flush t;
  reset_stats t

(* Rebind to a fresh PRNG stream, reproducing [create]'s draws (one bits32
   for the initial placement salt).  After [reseed] + [reset_run] the cache
   is bit-identical — state, stats and future draw sequence — to a cache
   freshly built by [create ~config ~prng] + [reset_run]. *)
let reseed t ~prng =
  t.prng <- prng;
  t.seed_material <- Prng.bits32 prng
