module Prng = Repro_rng.Prng

type outcome = Hit | Miss

type t = {
  config : Config.cache_config;
  sets : int;
  ways : int;
  line_bytes : int;
  tags : int array array;  (* sets x ways; full line number, -1 = invalid *)
  recency : int array array;  (* sets x ways; last-use stamp for LRU *)
  rr : int array;  (* per-set round-robin pointer *)
  mutable clock : int;
  prng : Prng.t;
  mutable seed_material : int;  (* per-flush salt for randomized placement *)
  mutable hits : int;
  mutable misses : int;
  mutable write_throughs : int;
}

(* splitmix-like 2-in-1 mixer used as the placement hash. *)
let mix a b =
  let z = Int64.of_int ((a * 0x9E3779B9) lxor (b * 0x85EBCA6B)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0x3FFFFFFFFFFFFFFFL)

let create ~config ~prng =
  let sets = Config.sets config.Config.geometry in
  let ways = config.Config.geometry.Config.ways in
  {
    config;
    sets;
    ways;
    line_bytes = config.Config.geometry.Config.line_bytes;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    recency = Array.init sets (fun _ -> Array.make ways 0);
    rr = Array.make sets 0;
    clock = 0;
    prng;
    seed_material = Prng.bits32 prng;
    hits = 0;
    misses = 0;
    write_throughs = 0;
  }

let sets t = t.sets
let ways t = t.ways

let line_of_addr t addr = addr / t.line_bytes

let set_of_line t line =
  match t.config.Config.placement with
  | Config.Modulo -> line land (t.sets - 1)
  | Config.Random_modulo ->
      (* Rotate the conventional index by a hash of the tag: lines within the
         same window (equal tag) keep distinct sets. *)
      let index = line land (t.sets - 1) in
      let tag = line / t.sets in
      (index + mix tag t.seed_material) land (t.sets - 1)
  | Config.Hash_random -> mix line t.seed_material land (t.sets - 1)

let set_of_addr t addr = set_of_line t (line_of_addr t addr)

let find_way t set line =
  let tags = t.tags.(set) in
  let rec go w = if w >= t.ways then None else if tags.(w) = line then Some w else go (w + 1) in
  go 0

let touch t set way =
  t.clock <- t.clock + 1;
  t.recency.(set).(way) <- t.clock

let victim_way t set =
  let tags = t.tags.(set) in
  (* Prefer an invalid way. *)
  let rec find_invalid w =
    if w >= t.ways then None else if tags.(w) = -1 then Some w else find_invalid (w + 1)
  in
  match find_invalid 0 with
  | Some w -> w
  | None -> begin
      match t.config.Config.replacement with
      | Config.Lru ->
          let best = ref 0 in
          for w = 1 to t.ways - 1 do
            if t.recency.(set).(w) < t.recency.(set).(!best) then best := w
          done;
          !best
      | Config.Random_replacement -> Prng.int_below t.prng t.ways
      | Config.Round_robin ->
          let w = t.rr.(set) in
          t.rr.(set) <- (w + 1) mod t.ways;
          w
    end

let access t ~addr ~write =
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  match find_way t set line with
  | Some way ->
      t.hits <- t.hits + 1;
      if write then t.write_throughs <- t.write_throughs + 1;
      touch t set way;
      Hit
  | None ->
      t.misses <- t.misses + 1;
      if write then begin
        (* no-write-allocate: the write goes straight through. *)
        t.write_throughs <- t.write_throughs + 1;
        Miss
      end
      else begin
        let way = victim_way t set in
        t.tags.(set).(way) <- line;
        touch t set way;
        Miss
      end

let probe t ~addr =
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  match find_way t set line with Some _ -> Hit | None -> Miss

let flush t =
  Array.iter (fun ws -> Array.fill ws 0 (Array.length ws) (-1)) t.tags;
  Array.iter (fun ws -> Array.fill ws 0 (Array.length ws) 0) t.recency;
  Array.fill t.rr 0 t.sets 0;
  t.clock <- 0;
  (* A flush models a run boundary: draw a fresh placement salt. *)
  t.seed_material <- Prng.bits32 t.prng

(* ---- SEU injection hooks (driven by Fault) ---- *)

let inject_tag_flip t ~set ~way ~bit =
  if set < 0 || set >= t.sets || way < 0 || way >= t.ways then
    invalid_arg "Cache.inject_tag_flip: site out of range";
  let tag = t.tags.(set).(way) in
  if tag >= 0 then
    (* Flipping a tag bit re-labels the stored line: the original line will
       now miss, and the aliased line would falsely hit.  Keep the result
       non-negative so it never collides with the invalid sentinel. *)
    t.tags.(set).(way) <- tag lxor (1 lsl (bit land 29)) land max_int

let inject_valid_flip t ~set ~way ~garbage_line =
  if set < 0 || set >= t.sets || way < 0 || way >= t.ways then
    invalid_arg "Cache.inject_valid_flip: site out of range";
  if t.tags.(set).(way) >= 0 then t.tags.(set).(way) <- -1
  else t.tags.(set).(way) <- abs garbage_line

type stats = { hits : int; misses : int; write_throughs : int }

let stats (t : t) = { hits = t.hits; misses = t.misses; write_throughs = t.write_throughs }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.write_throughs <- 0
