(** Measurement record of one run on the simulated platform: the cycle count
    (the paper's "execution time") plus the micro-architectural event
    counters behind it. *)

type t = {
  cycles : int;
  instructions : int;
  il1_hits : int;
  il1_misses : int;
  dl1_hits : int;
  dl1_misses : int;
  itlb_misses : int;
  dtlb_misses : int;
  bus_transactions : int;
  dram_row_hits : int;
  dram_row_misses : int;
  fp_long_ops : int;
  taken_branches : int;
  faults_injected : int;
      (** SEUs injected into this run by {!Fault} (0 on a fault-free run) *)
}

val cycles : t -> int

(** Cycles per instruction. *)
val cpi : t -> float

val il1_miss_rate : t -> float
val dl1_miss_rate : t -> float

val pp : Format.formatter -> t -> unit
