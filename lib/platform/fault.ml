module Prng = Repro_rng.Prng

type site =
  | Cache_tag of { cache : [ `Il1 | `Dl1 ]; set : int; way : int; bit : int }
  | Cache_valid of { cache : [ `Il1 | `Dl1 ]; set : int; way : int }
  | Tlb_entry of { tlb : [ `Itlb | `Dtlb ]; entry : int; bit : int }
  | Int_register of { reg : int; bit : int }
  | Float_register of { reg : int; bit : int }

type record = { at_instruction : int; site : site }

type targets = {
  il1 : Cache.t;
  dl1 : Cache.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  corrupt_int_register : reg:int -> bit:int -> unit;
  corrupt_float_register : reg:int -> bit:int -> unit;
}

type t = {
  prng : Prng.t;
  rate : float;
  mutable next_at : int;  (* retired-instruction index of the next upset *)
  mutable count : int;
  mutable records : record list;  (* newest first *)
}

let mean_gap rate = 1_000_000. /. rate

(* Exponential inter-arrival, at least one instruction apart. *)
let draw_gap t = max 1 (int_of_float (Prng.exponential t.prng *. mean_gap t.rate))

let create ~rate ~seed =
  let prng = Prng.create seed in
  let t = { prng; rate; next_at = max_int; count = 0; records = [] } in
  if rate > 0. then t.next_at <- draw_gap t;
  t

let rate t = t.rate
let count t = t.count
let records t = List.rev t.records

let register_count = Repro_isa.Instr.register_count

let inject_one t ~retired targets =
  let site =
    match Prng.int_below t.prng 6 with
    | 0 | 1 ->
        (* cache tag or valid bit; both L1s are equally exposed *)
        let cache, c =
          if Prng.bool t.prng then (`Il1, targets.il1) else (`Dl1, targets.dl1)
        in
        let set = Prng.int_below t.prng (Cache.sets c) in
        let way = Prng.int_below t.prng (Cache.ways c) in
        if Prng.bool t.prng then begin
          let bit = Prng.int_below t.prng 30 in
          Cache.inject_tag_flip c ~set ~way ~bit;
          Cache_tag { cache; set; way; bit }
        end
        else begin
          Cache.inject_valid_flip c ~set ~way ~garbage_line:(Prng.bits32 t.prng);
          Cache_valid { cache; set; way }
        end
    | 2 ->
        let tlb, m =
          if Prng.bool t.prng then (`Itlb, targets.itlb) else (`Dtlb, targets.dtlb)
        in
        let entry = Prng.int_below t.prng (Tlb.entries m) in
        let bit = Prng.int_below t.prng 30 in
        Tlb.inject_entry_flip m ~entry ~bit;
        Tlb_entry { tlb; entry; bit }
    | 3 | 4 ->
        let reg = Prng.int_below t.prng register_count in
        let bit = Prng.int_below t.prng 32 in
        targets.corrupt_int_register ~reg ~bit;
        Int_register { reg; bit }
    | _ ->
        let reg = Prng.int_below t.prng register_count in
        let bit = Prng.int_below t.prng 64 in
        targets.corrupt_float_register ~reg ~bit;
        Float_register { reg; bit }
  in
  t.count <- t.count + 1;
  t.records <- { at_instruction = retired; site } :: t.records

let step t ~retired targets =
  while retired >= t.next_at do
    inject_one t ~retired targets;
    t.next_at <- t.next_at + draw_gap t
  done

let cache_name = function `Il1 -> "IL1" | `Dl1 -> "DL1"
let tlb_name = function `Itlb -> "ITLB" | `Dtlb -> "DTLB"

let pp_site ppf = function
  | Cache_tag { cache; set; way; bit } ->
      Format.fprintf ppf "%s tag bit %d (set %d, way %d)" (cache_name cache) bit set way
  | Cache_valid { cache; set; way } ->
      Format.fprintf ppf "%s valid bit (set %d, way %d)" (cache_name cache) set way
  | Tlb_entry { tlb; entry; bit } ->
      Format.fprintf ppf "%s entry %d bit %d" (tlb_name tlb) entry bit
  | Int_register { reg; bit } -> Format.fprintf ppf "r%d bit %d" reg bit
  | Float_register { reg; bit } -> Format.fprintf ppf "f%d bit %d" reg bit

let pp_record ppf r =
  Format.fprintf ppf "@[instr %d: %a@]" r.at_instruction pp_site r.site
