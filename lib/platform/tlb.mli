(** Fully associative translation lookaside buffer (64 entries in the
    reference platform), with LRU or random replacement.  The paper
    randomizes ITLB and DTLB replacement on the MBPTA-compliant platform. *)

type t

type outcome = Hit | Miss

val create :
  entries:int ->
  page_bytes:int ->
  replacement:Config.replacement ->
  prng:Repro_rng.Prng.t ->
  t

(** [access t ~addr] translates the page containing [addr], allocating on
    miss. *)
val access : t -> addr:int -> outcome

val flush : t -> unit

val entries : t -> int

(** SEU hook (driven by {!Fault}): flip one bit of the page number stored in
    [entry].  The stale translation makes the original page miss again; an
    upset in an invalid entry is absorbed. *)
val inject_entry_flip : t -> entry:int -> bit:int -> unit

type stats = { hits : int; misses : int }

val stats : t -> stats
val reset_stats : t -> unit

(** One-pass run boundary: {!flush} then {!reset_stats}. *)
val reset_run : t -> unit

(** Rebind to a fresh PRNG stream ([create] draws nothing, so this is the
    whole reuse contract for a TLB). *)
val reseed : t -> prng:Repro_rng.Prng.t -> unit
