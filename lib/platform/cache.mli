(** Set-associative cache timing model with the placement and replacement
    policies of the paper.

    Placement decides which set a line maps to:
    - [Modulo]: the conventional [line mod sets] — layout-sensitive;
    - [Random_modulo] (Hernandez et al., DAC 2016): the modulo index is
      rotated by a pseudo-random function of the line's tag and the per-run
      seed, so consecutive lines still occupy distinct sets (no intra-window
      conflicts) but the mapping changes every run;
    - [Hash_random] (Kosmidis et al., DATE 2013): the set is a pseudo-random
      hash of the full line address and the seed.

    Replacement decides the victim way: LRU, random, or round-robin
    (FIFO-per-set).

    The model tracks presence only (no data), which is all timing needs. *)

type t

type outcome = Hit | Miss

(** [create ~config ~prng] — [prng] drives random placement/replacement; a
    fresh per-run seed gives a fresh mapping (the paper sets "a new seed for
    each experiment"). *)
val create : config:Config.cache_config -> prng:Repro_rng.Prng.t -> t

(** [access t ~addr ~write] looks up the line containing byte [addr];
    allocation on read misses; write misses do not allocate (no-write-
    allocate) and write hits refresh recency only (write-through has no
    dirty state). *)
val access : t -> addr:int -> write:bool -> outcome

(** [probe t ~addr] — lookup without side effects. *)
val probe : t -> addr:int -> outcome

(** Invalidate everything (per-run cache flush). *)
val flush : t -> unit

(** The set index [addr] currently maps to (depends on the seed for the
    randomized policies). *)
val set_of_addr : t -> int -> int

val sets : t -> int
val ways : t -> int

(** {2 SEU injection hooks}

    Driven by {!Fault}; both model a single-event upset in the tag array of
    one way.  A tag-bit flip on a valid line re-labels the stored line (the
    original line misses from now on, an aliased line would falsely hit); a
    flip on an invalid way is absorbed (no architectural state held).  A
    valid-bit flip invalidates a valid line, or revives an invalid way with
    [garbage_line] — a stale/garbage tag, as after an upset in the valid
    bit. *)

val inject_tag_flip : t -> set:int -> way:int -> bit:int -> unit
val inject_valid_flip : t -> set:int -> way:int -> garbage_line:int -> unit

type stats = { accesses : int; hits : int; misses : int; write_throughs : int }

(** [stats t] — counters since creation or the last {!reset_stats}.
    Guaranteed invariants, checked by a real guard (raises
    [Invalid_argument] if the accounting ever skews, e.g. a double-counted
    no-write-allocate miss): [hits + misses = accesses] and
    [write_throughs <= accesses] ([write_throughs] counts write accesses
    only — every write is a write-through regardless of hit/miss, since the
    model is write-through no-write-allocate). *)
val stats : t -> stats

val reset_stats : t -> unit

(** [reset_run t] — one-pass run boundary: {!flush} (which draws the fresh
    placement salt) then {!reset_stats}.  Bit-identical to calling the two
    separately. *)
val reset_run : t -> unit

(** [reseed t ~prng] rebinds the cache to a fresh PRNG stream, reproducing
    [create]'s draw (the initial placement salt) — the reuse half of the
    batched-run contract: [reseed] + [reset_run] ≡ fresh [create] +
    [reset_run], bit for bit. *)
val reseed : t -> prng:Repro_rng.Prng.t -> unit
