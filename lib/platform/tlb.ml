module Prng = Repro_rng.Prng

type outcome = Hit | Miss

type t = {
  entries : int;
  page_bytes : int;
  replacement : Config.replacement;
  pages : int array;  (* page number, -1 = invalid *)
  recency : int array;
  mutable rr : int;
  mutable clock : int;
  prng : Prng.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~entries ~page_bytes ~replacement ~prng =
  if entries < 1 || page_bytes < 1 then
    invalid_arg "Tlb.create: entries and page_bytes must be >= 1";
  {
    entries;
    page_bytes;
    replacement;
    pages = Array.make entries (-1);
    recency = Array.make entries 0;
    rr = 0;
    clock = 0;
    prng;
    hits = 0;
    misses = 0;
  }

let find t page =
  let rec go i =
    if i >= t.entries then None else if t.pages.(i) = page then Some i else go (i + 1)
  in
  go 0

let victim t =
  let rec find_invalid i =
    if i >= t.entries then None
    else if t.pages.(i) = -1 then Some i
    else find_invalid (i + 1)
  in
  match find_invalid 0 with
  | Some i -> i
  | None -> begin
      match t.replacement with
      | Config.Lru ->
          let best = ref 0 in
          for i = 1 to t.entries - 1 do
            if t.recency.(i) < t.recency.(!best) then best := i
          done;
          !best
      | Config.Random_replacement -> Prng.int_below t.prng t.entries
      | Config.Round_robin ->
          let i = t.rr in
          t.rr <- (i + 1) mod t.entries;
          i
    end

let access t ~addr =
  let page = addr / t.page_bytes in
  t.clock <- t.clock + 1;
  match find t page with
  | Some i ->
      t.hits <- t.hits + 1;
      t.recency.(i) <- t.clock;
      Hit
  | None ->
      t.misses <- t.misses + 1;
      let i = victim t in
      t.pages.(i) <- page;
      t.recency.(i) <- t.clock;
      Miss

let flush t =
  Array.fill t.pages 0 t.entries (-1);
  Array.fill t.recency 0 t.entries 0;
  t.rr <- 0;
  t.clock <- 0

let entries t = t.entries

(* SEU hook: flip one bit of a stored page number.  An upset in an invalid
   entry has no architectural state to corrupt and is absorbed. *)
let inject_entry_flip t ~entry ~bit =
  if entry < 0 || entry >= t.entries then invalid_arg "Tlb.inject_entry_flip: out of range";
  let page = t.pages.(entry) in
  if page >= 0 then t.pages.(entry) <- page lxor (1 lsl (bit land 29)) land max_int

type stats = { hits : int; misses : int }

let stats (t : t) = { hits = t.hits; misses = t.misses }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0
