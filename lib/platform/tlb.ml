module Prng = Repro_rng.Prng

type outcome = Hit | Miss

type t = {
  entries : int;
  page_bytes : int;
  page_shift : int;  (* >= 0 when page_bytes is a power of two, else -1 *)
  replacement : Config.replacement;
  pages : int array;  (* page number, -1 = invalid *)
  recency : int array;
  mutable mru : int;  (* last slot hit, -1 = none; a pure search shortcut *)
  mutable rr : int;
  mutable clock : int;
  mutable prng : Prng.t;  (* mutable so a reused simulator can be reseeded *)
  mutable hits : int;
  mutable misses : int;
}

let shift_of_page_bytes page_bytes =
  if page_bytes land (page_bytes - 1) <> 0 then -1
  else begin
    let rec go s = if 1 lsl s = page_bytes then s else go (s + 1) in
    go 0
  end

let create ~entries ~page_bytes ~replacement ~prng =
  if entries < 1 || page_bytes < 1 then
    invalid_arg "Tlb.create: entries and page_bytes must be >= 1";
  {
    entries;
    page_bytes;
    page_shift = shift_of_page_bytes page_bytes;
    replacement;
    pages = Array.make entries (-1);
    recency = Array.make entries 0;
    mru = -1;
    rr = 0;
    clock = 0;
    prng;
    hits = 0;
    misses = 0;
  }

(* Power-of-two page sizes (every real platform, and the reference LEON3's
   4 KiB pages) translate with a shift; the division only survives as a
   fallback for exotic geometries. *)
let page_of_addr t addr =
  if t.page_shift >= 0 then addr lsr t.page_shift else addr / t.page_bytes

(* Index of [page], or -1 when absent — sentinel instead of an [option], so
   the per-access lookup allocates nothing. *)
let find_slot t page =
  let pages = t.pages in
  let stop = t.entries in
  let rec go i =
    if i >= stop then -1 else if Array.unsafe_get pages i = page then i else go (i + 1)
  in
  go 0

let victim t =
  let pages = t.pages in
  let stop = t.entries in
  let rec find_invalid i =
    if i >= stop then -1 else if Array.unsafe_get pages i = -1 then i else find_invalid (i + 1)
  in
  let invalid = find_invalid 0 in
  if invalid >= 0 then invalid
  else begin
    match t.replacement with
    | Config.Lru ->
        let recency = t.recency in
        let best = ref 0 in
        for i = 1 to stop - 1 do
          if Array.unsafe_get recency i < Array.unsafe_get recency !best then best := i
        done;
        !best
    | Config.Random_replacement -> Prng.int_below t.prng t.entries
    | Config.Round_robin ->
        let i = t.rr in
        t.rr <- (i + 1) mod t.entries;
        i
  end

let access t ~addr =
  let page = page_of_addr t addr in
  t.clock <- t.clock + 1;
  (* MRU shortcut: consecutive accesses overwhelmingly hit the page of the
     previous one (every instruction fetch, most data streams).  Stored
     pages are unique, so the hinted slot is exactly what [find_slot] would
     return — same outcome, same recency write, no PRNG interaction.  The
     SEU hook below drops the hint: a corrupted entry can duplicate a live
     page, and then only the scan's first-match answer is canonical. *)
  let mru = t.mru in
  if mru >= 0 && Array.unsafe_get t.pages mru = page then begin
    t.hits <- t.hits + 1;
    Array.unsafe_set t.recency mru t.clock;
    Hit
  end
  else begin
    let slot = find_slot t page in
    if slot >= 0 then begin
      t.hits <- t.hits + 1;
      t.mru <- slot;
      Array.unsafe_set t.recency slot t.clock;
      Hit
    end
    else begin
      t.misses <- t.misses + 1;
      let slot = victim t in
      Array.unsafe_set t.pages slot page;
      Array.unsafe_set t.recency slot t.clock;
      t.mru <- slot;
      Miss
    end
  end

let flush t =
  Array.fill t.pages 0 t.entries (-1);
  Array.fill t.recency 0 t.entries 0;
  t.mru <- -1;
  t.rr <- 0;
  t.clock <- 0

let entries t = t.entries

(* SEU hook: flip one bit of a stored page number.  An upset in an invalid
   entry has no architectural state to corrupt and is absorbed. *)
let inject_entry_flip t ~entry ~bit =
  if entry < 0 || entry >= t.entries then invalid_arg "Tlb.inject_entry_flip: out of range";
  let page = t.pages.(entry) in
  if page >= 0 then begin
    t.pages.(entry) <- page lxor (1 lsl (bit land 29)) land max_int;
    (* The flip can duplicate a live page; from here on only the scan's
       first-match answer is canonical, so drop the MRU hint. *)
    t.mru <- -1
  end

type stats = { hits : int; misses : int }

let stats (t : t) = { hits = t.hits; misses = t.misses }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0

(* Run boundary in one pass; [create] draws nothing, so [reseed] only
   rebinds the stream the random-replacement victim picker draws from. *)
let reset_run t =
  flush t;
  reset_stats t

let reseed t ~prng = t.prng <- prng
