(** One LEON3-class core: the 7-stage in-order pipeline timing model wired
    to its IL1/DL1, ITLB/DTLB, FPU, and the shared bus + DRAM controller.

    The model is cycle-approximate: the pipelined base cost is one cycle per
    retired instruction, and every stall source the paper names adds its
    latency on top — IL1/DL1 misses (bus + DRAM), TLB walks, FDIV/FSQRT
    iterations, taken-branch flushes, write-through store cost.  What makes
    a platform DET or RAND is entirely the configuration, not this code. *)

type t

exception Budget_exceeded of { cycles : int; budget : int }
(** raised by {!run_program_faulty} when the watchdog cycle budget is
    exceeded — the bounded-interference analogue of a flight computer's
    watchdog timer firing on a diverged task *)

(** [create ?contenders ~config ~seed ()] — [seed] drives all platform
    randomization for this instance (placement, replacement, bus
    interference sampling); [contenders] are co-runner bus pressures for
    multicore experiments. *)
val create : ?contenders:float list -> config:Config.t -> seed:int64 -> unit -> t

val config : t -> Config.t

(** Flush caches, TLBs and DRAM row buffers and draw fresh placement salts:
    the paper's per-run "flush caches, reset, reload, new seed" protocol. *)
val reset_run : t -> unit

(** [reseed t ~seed] rebinds every PRNG stream of a reused simulator
    instance exactly as [create ~seed] would have derived them (same split
    order, same per-component draws): [reseed] + {!reset_run} on a reused
    instance is bit-identical to a fresh [create] + [reset_run].  This is
    what lets a batch of runs amortize simulator construction. *)
val reseed : t -> seed:int64 -> unit

(** [consume t retired] — advance time for one retired instruction.
    Exposed so schedulers can interleave instruction streams. *)
val consume : t -> Repro_isa.Instr.retired -> unit

(** Add idle cycles (e.g. a scheduler's timer tick overhead). *)
val advance : t -> int -> unit

val cycles : t -> int

(** [run_program t ~program ~layout ~memory] — [reset_run], execute to
    completion, and return this run's metrics. *)
val run_program :
  t ->
  program:Repro_isa.Program.t ->
  layout:Repro_isa.Layout.t ->
  memory:Repro_isa.Memory.t ->
  Metrics.t

(** [run_program_faulty t ?injector ?watchdog_budget ~program ~layout
    ~memory ()] — like {!run_program} but steps the executor one instruction
    at a time so that (a) the SEU [injector], when given, can strike cache
    tags, TLB entries and executor registers between instructions, and
    (b) the [watchdog_budget] (in cycles) is enforced, raising
    {!Budget_exceeded} the moment it is crossed.  With no injector and no
    budget the cycle count is identical to {!run_program} (same consume
    sequence).  May also propagate {!Repro_isa.Executor.Runaway} or
    [Invalid_argument] (out-of-bounds access) when an injected register
    upset derails the program — the resilience supervisor upstream
    classifies these. *)
val run_program_faulty :
  t ->
  ?injector:Fault.t ->
  ?watchdog_budget:int ->
  program:Repro_isa.Program.t ->
  layout:Repro_isa.Layout.t ->
  memory:Repro_isa.Memory.t ->
  unit ->
  Metrics.t

(** {2 Pre-decoded execution}

    The batched hot path: the caller decodes the program once
    ({!Repro_isa.Executor.Decoded}), links a runner against a reusable
    memory image, and per run calls {!reseed} (fresh platform seed) then
    one of these.  Bit-identical to {!run_program} / {!run_program_faulty}
    on a fresh simulator — [test_hotpath] pins it. *)

(** [run_decoded t ~runner] — [reset_run], reset the runner, execute to
    completion through the per-work-class timing sink, return the run's
    metrics.  The caller must have reset and reloaded the runner's memory
    image (e.g. {!Repro_isa.Memory.clear} + scenario load). *)
val run_decoded : t -> runner:Repro_isa.Executor.Decoded.Runner.t -> Metrics.t

(** Pre-decoded twin of {!run_program_faulty}: same supervision semantics
    (injector strikes between instructions, watchdog raises
    {!Budget_exceeded}), on the batched runner. *)
val run_decoded_faulty :
  t ->
  ?injector:Fault.t ->
  ?watchdog_budget:int ->
  runner:Repro_isa.Executor.Decoded.Runner.t ->
  unit ->
  Metrics.t

(** Metrics accumulated since the last [reset_run] (for callers driving
    [consume] directly). *)
val snapshot : t -> instructions:int -> fp_long_ops:int -> taken_branches:int -> Metrics.t
