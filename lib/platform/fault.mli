(** Seed-deterministic single-event-upset (SEU) injector.

    Space platforms operate under radiation: the dominant hazard is the SEU,
    a bit flip in a storage element (Fuchs et al., arXiv:1706.02086; Hoque
    et al., arXiv:1701.03836).  This module models SEUs as a Poisson process
    over the retired-instruction stream: inter-arrival gaps are exponential
    with mean [1e6 / rate] instructions, so [rate] reads as expected upsets
    per million retired instructions.

    Each upset strikes one uniformly chosen storage site among the
    architectural state the timing model carries: a cache tag bit, a cache
    valid bit, a TLB entry bit, or an executor register bit (integer or
    float).  Cache/TLB upsets perturb timing only (the model holds no data);
    register upsets can change the execution path, trap, diverge, or
    silently corrupt the program's output — which is exactly what the
    {e resilient} measurement protocol upstream must detect and classify.

    Everything is driven by a private {!Repro_rng.Prng} stream, so a given
    [(seed, rate)] pair yields the identical fault schedule and identical
    fault sites on every replay. *)

type t

(** Where an upset landed; recorded in injection order. *)
type site =
  | Cache_tag of { cache : [ `Il1 | `Dl1 ]; set : int; way : int; bit : int }
  | Cache_valid of { cache : [ `Il1 | `Dl1 ]; set : int; way : int }
  | Tlb_entry of { tlb : [ `Itlb | `Dtlb ]; entry : int; bit : int }
  | Int_register of { reg : int; bit : int }
  | Float_register of { reg : int; bit : int }

type record = { at_instruction : int; site : site }

(** The mutable state an injector strikes.  The register thunks let the
    platform hand over executor state without this module depending on a
    concrete stepper. *)
type targets = {
  il1 : Cache.t;
  dl1 : Cache.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  corrupt_int_register : reg:int -> bit:int -> unit;
  corrupt_float_register : reg:int -> bit:int -> unit;
}

(** [create ~rate ~seed] — [rate] is expected upsets per million retired
    instructions; [rate <= 0.] disables injection entirely (the injector
    never fires and costs one comparison per step). *)
val create : rate:float -> seed:int64 -> t

val rate : t -> float

(** [step t ~retired targets] — called once per retired instruction with the
    cumulative retired count; injects every upset whose scheduled arrival
    has been reached (possibly several). *)
val step : t -> retired:int -> targets -> unit

(** Upsets injected so far. *)
val count : t -> int

(** Injection log, oldest first. *)
val records : t -> record list

val pp_site : Format.formatter -> site -> unit
val pp_record : Format.formatter -> record -> unit
