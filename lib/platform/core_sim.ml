module Prng = Repro_rng.Prng
module Instr = Repro_isa.Instr

exception Budget_exceeded of { cycles : int; budget : int }

type t = {
  config : Config.t;
  il1 : Cache.t;
  dl1 : Cache.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  fpu : Fpu.t;
  bus : Bus.t;
  dram : Dram.t;
  mutable prng : Prng.t;  (* mutable so a reused simulator can be reseeded *)
  (* Per-access latencies hoisted out of [config.latencies] into immediate
     fields: the consume/data_access hot path reads them once per event
     instead of chasing two records per memory reference. *)
  lat_l1_hit : int;
  lat_tlb_miss_walk : int;
  lat_store_buffer : int;
  lat_branch_taken : int;
  lat_int_mul : int;
  mutable cycles : int;
  mutable faults_injected : int;
}

let create ?(contenders = []) ~config ~seed () =
  let prng = Prng.create seed in
  let lat = config.Config.latencies in
  (* Explicit bindings pin the [Prng.split] draw order (record-field
     evaluation order is unspecified in OCaml); [reseed] must replay the
     same order, and the historical order — pinned by every golden value in
     the test suite — is dtlb, itlb, dl1, il1. *)
  let dtlb =
    Tlb.create ~entries:config.Config.dtlb_entries ~page_bytes:config.Config.page_bytes
      ~replacement:config.Config.tlb_replacement ~prng:(Prng.split prng)
  in
  let itlb =
    Tlb.create ~entries:config.Config.itlb_entries ~page_bytes:config.Config.page_bytes
      ~replacement:config.Config.tlb_replacement ~prng:(Prng.split prng)
  in
  let dl1 = Cache.create ~config:config.Config.dl1 ~prng:(Prng.split prng) in
  let il1 = Cache.create ~config:config.Config.il1 ~prng:(Prng.split prng) in
  {
    config;
    il1;
    dl1;
    itlb;
    dtlb;
    fpu = Fpu.create ~mode:config.Config.fpu ~latencies:lat;
    bus = Bus.create ~latencies:lat ~contenders;
    dram =
      Dram.create ~mode:config.Config.dram ~banks:config.Config.dram_banks
        ~row_bytes:config.Config.dram_row_bytes ~latencies:lat;
    prng;
    lat_l1_hit = lat.Config.l1_hit;
    lat_tlb_miss_walk = lat.Config.tlb_miss_walk;
    lat_store_buffer = lat.Config.store_buffer;
    lat_branch_taken = lat.Config.branch_taken;
    lat_int_mul = lat.Config.int_mul;
    cycles = 0;
    faults_injected = 0;
  }

let config t = t.config

(* One pass per structure: flush + stats reset folded into each component's
   [reset_run].  Draw order (the IL1/DL1 placement-salt draws inside their
   flushes) is unchanged from the retired flush-all-then-reset-stats-all
   sequence because stats resets draw nothing. *)
let reset_run t =
  Cache.reset_run t.il1;
  Cache.reset_run t.dl1;
  Tlb.reset_run t.itlb;
  Tlb.reset_run t.dtlb;
  Dram.reset_run t.dram;
  Bus.reset t.bus;
  t.cycles <- 0;
  t.faults_injected <- 0

(* Rebind every PRNG stream exactly as [create ~seed] would have: same
   split order (dtlb, itlb, dl1, il1 — see [create]), same per-component
   draws.  [reseed] + [reset_run] on a reused simulator is bit-identical to
   a fresh [create] + [reset_run] — the contract that lets a batch of runs
   share one simulator instance. *)
let reseed t ~seed =
  let prng = Prng.create seed in
  Tlb.reseed t.dtlb ~prng:(Prng.split prng);
  Tlb.reseed t.itlb ~prng:(Prng.split prng);
  Cache.reseed t.dl1 ~prng:(Prng.split prng);
  Cache.reseed t.il1 ~prng:(Prng.split prng);
  t.prng <- prng

(* A memory transaction that reached the bus: arbitration + DRAM. *)
let memory_transaction t ~addr =
  t.cycles <- t.cycles + Bus.transaction t.bus ~prng:t.prng + Dram.access t.dram ~addr

let data_access t ~addr ~write =
  (match Tlb.access t.dtlb ~addr with
  | Tlb.Hit -> ()
  | Tlb.Miss -> t.cycles <- t.cycles + t.lat_tlb_miss_walk);
  match Cache.access t.dl1 ~addr ~write with
  | Cache.Hit ->
      t.cycles <- t.cycles + t.lat_l1_hit;
      if write then
        (* write-through: the store drains via the store buffer *)
        t.cycles <- t.cycles + t.lat_store_buffer
  | Cache.Miss ->
      if write then t.cycles <- t.cycles + t.lat_store_buffer
      else memory_transaction t ~addr

let consume t (r : Instr.retired) =
  (* Pipelined base cost. *)
  t.cycles <- t.cycles + 1;
  (* Fetch: ITLB then IL1. *)
  (match Tlb.access t.itlb ~addr:r.Instr.fetch_addr with
  | Tlb.Hit -> ()
  | Tlb.Miss -> t.cycles <- t.cycles + t.lat_tlb_miss_walk);
  (match Cache.access t.il1 ~addr:r.Instr.fetch_addr ~write:false with
  | Cache.Hit -> t.cycles <- t.cycles + t.lat_l1_hit
  | Cache.Miss -> memory_transaction t ~addr:r.Instr.fetch_addr);
  match r.Instr.work with
  | Instr.Int_alu -> ()
  | Instr.Int_mul -> t.cycles <- t.cycles + t.lat_int_mul
  | Instr.Mem_read addr -> data_access t ~addr ~write:false
  | Instr.Mem_write addr -> data_access t ~addr ~write:true
  | Instr.Fp_short op -> t.cycles <- t.cycles + Fpu.latency t.fpu op ~x:0. ~y:0.
  | Instr.Fp_long (op, x, y) -> t.cycles <- t.cycles + Fpu.latency t.fpu op ~x ~y
  | Instr.Ctrl taken -> if taken then t.cycles <- t.cycles + t.lat_branch_taken
  | Instr.No_op -> ()

let advance t n =
  if n < 0 then invalid_arg (Printf.sprintf "Core_sim.advance: negative cycles (%d)" n);
  t.cycles <- t.cycles + n

let cycles t = t.cycles

let snapshot t ~instructions ~fp_long_ops ~taken_branches =
  let il1 = Cache.stats t.il1 and dl1 = Cache.stats t.dl1 in
  let itlb = Tlb.stats t.itlb and dtlb = Tlb.stats t.dtlb in
  let dram = Dram.stats t.dram in
  {
    Metrics.cycles = t.cycles;
    instructions;
    il1_hits = il1.Cache.hits;
    il1_misses = il1.Cache.misses;
    dl1_hits = dl1.Cache.hits;
    dl1_misses = dl1.Cache.misses;
    itlb_misses = itlb.Tlb.misses;
    dtlb_misses = dtlb.Tlb.misses;
    bus_transactions = Bus.count t.bus;
    dram_row_hits = dram.Dram.row_hits;
    dram_row_misses = dram.Dram.row_misses;
    fp_long_ops;
    taken_branches;
    faults_injected = t.faults_injected;
  }

let snapshot_of_stats t (stats : Repro_isa.Executor.stats) =
  snapshot t ~instructions:stats.Repro_isa.Executor.retired
    ~fp_long_ops:stats.Repro_isa.Executor.fp_long_ops
    ~taken_branches:stats.Repro_isa.Executor.taken_branches

let run_program t ~program ~layout ~memory =
  reset_run t;
  let stats =
    Repro_isa.Executor.run ~program ~layout ~memory ~on_retire:(consume t) ()
  in
  snapshot_of_stats t stats

(* The [consume] pipeline split into the pre-decoded runner's per-work-class
   hooks.  Call order per instruction (fetch first, then at most one work
   event) mirrors [consume]'s statement order, so every stateful cache/TLB/
   bus access — and hence every PRNG draw — happens in the same sequence. *)
let sink_of t =
  {
    Repro_isa.Executor.on_fetch =
      (fun addr ->
        t.cycles <- t.cycles + 1;
        (match Tlb.access t.itlb ~addr with
        | Tlb.Hit -> ()
        | Tlb.Miss -> t.cycles <- t.cycles + t.lat_tlb_miss_walk);
        match Cache.access t.il1 ~addr ~write:false with
        | Cache.Hit -> t.cycles <- t.cycles + t.lat_l1_hit
        | Cache.Miss -> memory_transaction t ~addr);
    on_int_mul = (fun () -> t.cycles <- t.cycles + t.lat_int_mul);
    on_read = (fun addr -> data_access t ~addr ~write:false);
    on_write = (fun addr -> data_access t ~addr ~write:true);
    on_fp_short = (fun op -> t.cycles <- t.cycles + Fpu.latency t.fpu op ~x:0. ~y:0.);
    on_fp_long = (fun op x y -> t.cycles <- t.cycles + Fpu.latency t.fpu op ~x ~y);
    on_taken = (fun () -> t.cycles <- t.cycles + t.lat_branch_taken);
  }

let run_decoded t ~runner =
  let module Runner = Repro_isa.Executor.Decoded.Runner in
  Repro_profile.time Repro_profile.Flush (fun () ->
      reset_run t;
      Runner.reset runner);
  let stats =
    Repro_profile.time Repro_profile.Execute (fun () -> Runner.run runner ~sink:(sink_of t))
  in
  snapshot_of_stats t stats

let run_decoded_faulty t ?injector ?watchdog_budget ~runner () =
  let module Runner = Repro_isa.Executor.Decoded.Runner in
  Repro_profile.time Repro_profile.Flush (fun () ->
      reset_run t;
      Runner.reset runner);
  let targets =
    match injector with
    | None -> None
    | Some _ ->
        Some
          {
            Fault.il1 = t.il1;
            dl1 = t.dl1;
            itlb = t.itlb;
            dtlb = t.dtlb;
            corrupt_int_register =
              (fun ~reg ~bit -> Runner.corrupt_int_register runner ~reg ~bit);
            corrupt_float_register =
              (fun ~reg ~bit -> Runner.corrupt_float_register runner ~reg ~bit);
          }
  in
  (* Post-step supervision in the retired path's order: timing already
     consumed by the sink, so count the instruction, check the watchdog,
     then let the injector act before the next instruction. *)
  let retired = ref 0 in
  let post () =
    incr retired;
    (match watchdog_budget with
    | Some budget when t.cycles > budget ->
        raise (Budget_exceeded { cycles = t.cycles; budget })
    | Some _ | None -> ());
    match (injector, targets) with
    | Some inj, Some tg ->
        Fault.step inj ~retired:!retired tg;
        t.faults_injected <- Fault.count inj
    | _ -> ()
  in
  let stats = Runner.run_supervised runner ~sink:(sink_of t) ~post in
  snapshot_of_stats t stats

let run_program_faulty t ?injector ?watchdog_budget ~program ~layout ~memory () =
  reset_run t;
  let module Stepper = Repro_isa.Executor.Stepper in
  let stepper = Stepper.create ~program ~layout ~memory () in
  let targets =
    match injector with
    | None -> None
    | Some _ ->
        Some
          {
            Fault.il1 = t.il1;
            dl1 = t.dl1;
            itlb = t.itlb;
            dtlb = t.dtlb;
            corrupt_int_register =
              (fun ~reg ~bit -> Stepper.corrupt_int_register stepper ~reg ~bit);
            corrupt_float_register =
              (fun ~reg ~bit -> Stepper.corrupt_float_register stepper ~reg ~bit);
          }
  in
  let retired = ref 0 in
  let rec go () =
    match Stepper.step stepper with
    | None -> ()
    | Some r ->
        consume t r;
        incr retired;
        (match watchdog_budget with
        | Some budget when t.cycles > budget ->
            raise (Budget_exceeded { cycles = t.cycles; budget })
        | Some _ | None -> ());
        (match (injector, targets) with
        | Some inj, Some tg ->
            Fault.step inj ~retired:!retired tg;
            t.faults_injected <- Fault.count inj
        | _ -> ());
        go ()
  in
  go ();
  snapshot_of_stats t (Stepper.stats stepper)
