(** DRAM controller timing: per-bank open row (row-buffer) model.

    In [Open_page] mode an access to the currently open row of its bank is
    cheap (row hit) while switching rows pays precharge + activate (row
    miss) — a layout- and history-dependent jitter source.  In [Fixed_worst]
    mode every access pays the closed-page worst-case latency, making the
    controller jitterless for MBPTA (the "force the worst case" compliance
    technique). *)

type t

val create :
  mode:Config.dram_mode -> banks:int -> row_bytes:int -> latencies:Config.latencies -> t

(** [access t ~addr] — latency in cycles of this memory transaction. *)
val access : t -> addr:int -> int

(** Close all row buffers (run boundary). *)
val flush : t -> unit

type stats = { row_hits : int; row_misses : int }

val stats : t -> stats
val reset_stats : t -> unit

(** One-pass run boundary: {!flush} then {!reset_stats}. *)
val reset_run : t -> unit
