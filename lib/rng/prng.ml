type algorithm = Xorshift128p | Pcg32 | Lfsr64 | Mwc32

type t = {
  algorithm : algorithm option;
  name : string;
  next32 : unit -> int;
  reseed : int64 -> t;
  duplicate : unit -> t;
}

let all_algorithms = [ Xorshift128p; Pcg32; Lfsr64; Mwc32 ]

let algorithm_name = function
  | Xorshift128p -> Xorshift.name
  | Pcg32 -> Pcg.name
  | Lfsr64 -> Lfsr.name
  | Mwc32 -> Mwc.name

let box (module G : Generator.S) ~algorithm seed =
  let rec make state =
    {
      algorithm;
      name = G.name;
      next32 = (fun () -> G.next32 state);
      reseed = (fun seed' -> make (G.create seed'));
      duplicate = (fun () -> make (G.copy state));
    }
  in
  make (G.create seed)

let of_module g seed = box g ~algorithm:None seed

let module_of_algorithm = function
  | Xorshift128p -> (module Xorshift : Generator.S)
  | Pcg32 -> (module Pcg)
  | Lfsr64 -> (module Lfsr)
  | Mwc32 -> (module Mwc)

let create ?(algorithm = Xorshift128p) seed =
  box (module_of_algorithm algorithm) ~algorithm:(Some algorithm) seed

let name t = t.name
let algorithm t = t.algorithm
let bits32 t = t.next32 ()

let float t = Stdlib.float_of_int (bits32 t) *. 0x1p-32

let rec float_pos t =
  let u = float t in
  if u > 0. then u else float_pos t

let int_below t n =
  if not (n >= 1 && n <= 0x100000000) then
    invalid_arg (Printf.sprintf "Prng.int_below: n %d outside [1, 2^32]" n);
  if n land (n - 1) = 0 then bits32 t land (n - 1)
  else begin
    (* Rejection sampling over the largest multiple of [n] below 2^32. *)
    let limit = 0x100000000 - (0x100000000 mod n) in
    let rec draw () =
      let v = bits32 t in
      if v < limit then v mod n else draw ()
    in
    draw ()
  end

let int_in_range t ~lo ~hi =
  if lo > hi then
    invalid_arg (Printf.sprintf "Prng.int_in_range: empty range [%d, %d]" lo hi);
  lo + int_below t (hi - lo + 1)

let bool t = bits32 t land 1 = 1

let gaussian t =
  let u1 = float_pos t and u2 = float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let exponential t = -.log (float_pos t)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t =
  let seed =
    Int64.logor
      (Int64.shift_left (Int64.of_int (bits32 t)) 32)
      (Int64.of_int (bits32 t))
  in
  t.reseed seed

let copy t = t.duplicate ()
