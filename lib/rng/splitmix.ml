type t = { mutable state : int64 }

let create seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Finalizer from MurmurHash3 / splitmix64 reference implementation. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* The state walks an additive lattice, so discarding [k] draws is a single
   multiply-add — bit-identical to calling [next] [k] times and ignoring the
   results, at O(1) instead of O(k). *)
let skip t k =
  if k < 0 then invalid_arg "Splitmix.skip: negative count";
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int k) golden_gamma)

let rec next_nonzero t =
  let v = next t in
  if Int64.equal v 0L then next_nonzero t else v
