(** Splitmix64: a fast, well-distributed 64-bit generator used here only to
    expand a single user seed into the wider internal states required by the
    MBPTA-class generators ({!Xorshift}, {!Pcg}, {!Lfsr}, {!Mwc}).

    Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
    generators", OOPSLA 2014. *)

type t

(** [create seed] makes a fresh stream; distinct seeds give independent
    streams for any practical purpose. *)
val create : int64 -> t

(** [next t] returns the next 64-bit value and advances the state. *)
val next : t -> int64

(** [next_nonzero t] is [next t] skipping zero, for generators whose state
    must never be all-zero (LFSR, xorshift). *)
val next_nonzero : t -> int64

(** [skip t k] advances the stream past [k] draws in O(1), bit-identical to
    calling [next] [k] times and discarding the results.  Rejects negative
    [k] with [Invalid_argument]. *)
val skip : t -> int -> unit
