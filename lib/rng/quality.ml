type verdict = { statistic : float; p_value : float; passed : bool }

let pp_verdict ppf v =
  Format.fprintf ppf "stat=%.4f p=%.4f %s" v.statistic v.p_value
    (if v.passed then "PASS" else "FAIL")

(* Complementary error function (Abramowitz & Stegun 7.1.26 applied to a
   rational approximation with < 1.2e-7 absolute error). *)
let erfc x =
  let z = Float.abs x in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t *. (-0.82215223 +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0. then ans else 2. -. ans

(* Two-sided normal p-value for a standard-normal statistic. *)
let normal_two_sided z = erfc (Float.abs z /. sqrt 2.)

(* Upper tail of the chi-square distribution via the Wilson-Hilferty normal
   approximation — good enough for screening with df >= 10. *)
let chi_square_upper_tail ~df x =
  if x <= 0. then 1.
  else begin
    let k = float_of_int df in
    let t = ((x /. k) ** (1. /. 3.)) -. (1. -. (2. /. (9. *. k))) in
    let z = t /. sqrt (2. /. (9. *. k)) in
    0.5 *. erfc (z /. sqrt 2.)
  end

let chi_square_uniformity ?(alpha = 0.01) ?(buckets = 64) prng ~draws =
  if buckets < 2 then invalid_arg "Quality.chi_square_uniformity: buckets must be >= 2";
  if draws < buckets * 5 then
    invalid_arg
      (Printf.sprintf
         "Quality.chi_square_uniformity: %d draws, need at least 5 per bucket (%d)"
         draws (buckets * 5));
  let counts = Array.make buckets 0 in
  for _ = 1 to draws do
    let b = int_of_float (Prng.float prng *. float_of_int buckets) in
    let b = if b >= buckets then buckets - 1 else b in
    counts.(b) <- counts.(b) + 1
  done;
  let expected = float_of_int draws /. float_of_int buckets in
  let stat =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  let p = chi_square_upper_tail ~df:(buckets - 1) stat in
  { statistic = stat; p_value = p; passed = p >= alpha }

let monobit ?(alpha = 0.01) prng ~draws =
  let ones = ref 0 in
  for _ = 1 to draws do
    let v = Prng.bits32 prng in
    let rec popcount acc x = if x = 0 then acc else popcount (acc + (x land 1)) (x lsr 1) in
    ones := !ones + popcount 0 v
  done;
  let n = float_of_int (draws * 32) in
  let z = ((2. *. float_of_int !ones) -. n) /. sqrt n in
  let p = normal_two_sided z in
  { statistic = z; p_value = p; passed = p >= alpha }

let runs ?(alpha = 0.01) prng ~draws =
  if draws < 20 then invalid_arg "Quality.runs: draws must be >= 20";
  let xs = Array.init draws (fun _ -> Prng.float prng) in
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let median = sorted.(draws / 2) in
  let signs = Array.map (fun x -> x >= median) xs in
  let n_plus = Array.fold_left (fun a s -> if s then a + 1 else a) 0 signs in
  let n_minus = draws - n_plus in
  let runs_count = ref 1 in
  for i = 1 to draws - 1 do
    if signs.(i) <> signs.(i - 1) then incr runs_count
  done;
  let np = float_of_int n_plus and nm = float_of_int n_minus in
  let n = np +. nm in
  let mu = (2. *. np *. nm /. n) +. 1. in
  let sigma2 = 2. *. np *. nm *. ((2. *. np *. nm) -. n) /. (n *. n *. (n -. 1.)) in
  let z = (float_of_int !runs_count -. mu) /. sqrt sigma2 in
  let p = normal_two_sided z in
  { statistic = z; p_value = p; passed = p >= alpha }

let serial_correlation ?(alpha = 0.01) ?(lag = 1) prng ~draws =
  if lag < 1 then invalid_arg "Quality.serial_correlation: lag must be >= 1";
  if draws <= lag + 2 then
    invalid_arg
      (Printf.sprintf "Quality.serial_correlation: %d draws, need more than lag + 2 (%d)"
         draws (lag + 2));
  let xs = Array.init draws (fun _ -> Prng.float prng) in
  let n = float_of_int draws in
  let mean = Array.fold_left ( +. ) 0. xs /. n in
  let var = Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. n in
  let cov = ref 0. in
  for i = 0 to draws - 1 - lag do
    cov := !cov +. ((xs.(i) -. mean) *. (xs.(i + lag) -. mean))
  done;
  let r = !cov /. n /. var in
  (* Under H0, r ~ N(0, 1/n) asymptotically. *)
  let z = r *. sqrt n in
  let p = normal_two_sided z in
  { statistic = r; p_value = p; passed = p >= alpha }

let block_frequency ?(alpha = 0.01) ?(block_bits = 128) prng ~draws =
  if not (block_bits mod 32 = 0 && block_bits >= 32) then
    invalid_arg "Quality.block_frequency: block_bits must be a positive multiple of 32";
  let words_per_block = block_bits / 32 in
  let blocks = draws / words_per_block in
  if blocks < 10 then
    invalid_arg
      (Printf.sprintf "Quality.block_frequency: %d draws yield %d blocks, need >= 10"
         draws blocks);
  let rec popcount acc x = if x = 0 then acc else popcount (acc + (x land 1)) (x lsr 1) in
  let stat = ref 0. in
  for _ = 1 to blocks do
    let ones = ref 0 in
    for _ = 1 to words_per_block do
      ones := !ones + popcount 0 (Prng.bits32 prng)
    done;
    let pi = float_of_int !ones /. float_of_int block_bits in
    stat := !stat +. ((pi -. 0.5) ** 2.)
  done;
  let statistic = 4. *. float_of_int block_bits *. !stat in
  let p = chi_square_upper_tail ~df:blocks statistic in
  { statistic; p_value = p; passed = p >= alpha }

let gap ?(alpha = 0.01) prng ~draws =
  if draws < 2000 then invalid_arg "Quality.gap: draws must be >= 2000";
  (* Target interval [0, 0.5): hit probability 1/2, so a gap of length g
     (draws between successive hits) occurs with probability 2^-(g+1);
     lengths >= 8 are pooled. *)
  let bins = 9 in
  let counts = Array.make bins 0 in
  let gap_length = ref 0 in
  let gaps = ref 0 in
  for _ = 1 to draws do
    if Prng.float prng < 0.5 then begin
      let b = Stdlib.min (bins - 1) !gap_length in
      counts.(b) <- counts.(b) + 1;
      incr gaps;
      gap_length := 0
    end
    else incr gap_length
  done;
  let total = float_of_int !gaps in
  let stat = ref 0. in
  for b = 0 to bins - 1 do
    let p = if b < bins - 1 then 0.5 ** float_of_int (b + 1) else 0.5 ** float_of_int (bins - 1) in
    let expected = total *. p in
    let d = float_of_int counts.(b) -. expected in
    stat := !stat +. (d *. d /. expected)
  done;
  let p = chi_square_upper_tail ~df:(bins - 1) !stat in
  { statistic = !stat; p_value = p; passed = p >= alpha }

let qualify ?(alpha = 0.01) ?(draws = 20_000) prng =
  [
    ("chi-square-uniformity", chi_square_uniformity ~alpha prng ~draws);
    ("monobit", monobit ~alpha prng ~draws);
    ("runs", runs ~alpha prng ~draws);
    ("serial-correlation", serial_correlation ~alpha prng ~draws);
    ("block-frequency", block_frequency ~alpha prng ~draws);
    ("gap", gap ~alpha prng ~draws);
  ]

let all_passed verdicts = List.for_all (fun (_, v) -> v.passed) verdicts
