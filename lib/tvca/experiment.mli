(** Measurement harness: executes TVCA runs on a configured platform,
    following the paper's protocol — for every run the caches are flushed,
    the platform gets a fresh randomization seed, and a fresh input scenario
    is generated (runs are then independent by construction, which is what
    the i.i.d. tests verify downstream).

    A fixed [base_seed] makes a whole measurement campaign reproducible:
    run [i]'s scenario and platform seeds are pure functions of
    [(base_seed, i)]. *)

type t

(** [create ?frames ?variant ?contenders ~config ~base_seed ()] prepares the
    program (built once — the binary does not change across runs) and its
    layout. *)
val create :
  ?frames:int ->
  ?gains:Controller.gains ->
  ?variant:Codegen.variant ->
  ?contenders:float list ->
  config:Repro_platform.Config.t ->
  base_seed:int64 ->
  unit ->
  t

val config : t -> Repro_platform.Config.t
val program : t -> Repro_isa.Program.t

(** {2 Per-run seed derivation}

    Every measurement's randomness derives from exactly three seed
    families, each a {e pure function} of [(base_seed, run_index, attempt)]
    — no shared mutable generator is ever threaded across runs.  That
    purity is the determinism contract the parallel campaign layer
    ({!Repro_mbpta.Parallel}, [Campaign.run ?jobs]) rests on: runs may
    execute in any order on any domain and the produced samples are
    bit-identical to the sequential campaign's.

    - {!scenario_seed} drives the run's input generation; it does {e not}
      depend on [attempt] — a retry repeats the same measurement scenario;
    - {!platform_seed} drives cache/TLB randomization; re-derived per
      attempt so a retry runs under fresh (but deterministic)
      randomization;
    - {!fault_seed} drives SEU injection; a salted family, so seeds (and
      hence all timing) are bit-identical to the fault-free pipeline when
      injection is off. *)

val scenario_seed : t -> run_index:int -> int64
val platform_seed : t -> run_index:int -> attempt:int -> int64
val fault_seed : t -> run_index:int -> attempt:int -> int64

(** Schedule-randomization stream ({!run_schedule}); a fourth salted
    family, so shuffle campaigns leave all other seeds untouched. *)
val schedule_seed : t -> run_index:int -> int64

(** [run t ~run_index] — one measured run; returns the full metrics.

    Runs execute on the batched hot path: a per-(domain, experiment)
    scratch (one simulator instance, one memory image, one pre-decoded
    runner) is reused across consecutive runs, with the full per-run
    protocol — fresh derived seeds, platform reseed, flush, zeroed and
    reloaded memory — replayed for every run, so results are bit-identical
    to the retired fresh-everything path ({!run_retired}). *)
val run : t -> run_index:int -> Repro_platform.Metrics.t

(** [measure t ~run_index] — execution time (cycles) only. *)
val measure : t -> run_index:int -> float

(** {2 Retired reference path}

    The pre-batching implementation — fresh memory, fresh simulator,
    per-step variant-match executor — kept as the bit-identity oracle for
    tests and bench baselines. *)

val run_retired : t -> run_index:int -> Repro_platform.Metrics.t
val measure_retired : t -> run_index:int -> float

(** {2 Randomized-schedule runs}

    One RTOS simulation of the TVCA task set under a {!Rtos.policy},
    randomized from {!schedule_seed} — a pure function of
    [(base_seed, run_index)], so shuffle campaigns are bit-identical at
    any [--jobs]. *)

type schedule_run = {
  worst_response : float;
      (** worst completed-activation response time (cycles) across all
          tasks — the campaign's measurement unit *)
  signature : string;  (** {!Rtos.schedule_signature} of the realized schedule *)
  preemptions : int;
  skipped_releases : int;  (** overruns summed over tasks *)
}

val run_schedule :
  t ->
  ?context_switch:int ->
  policy:Rtos.policy ->
  period:int ->
  max_jitter:int ->
  horizon:int ->
  run_index:int ->
  unit ->
  schedule_run

(** {2 Fixed-input runs (timing-leak detection)}

    [measure_fixed_scenario t ~scenario_index ~run_index] measures run
    [run_index] with its input scenario pinned to [scenario_index]
    (platform randomization still follows [run_index]).  Comparing a
    fixed-input campaign against a varying-input one (dudect-style) is the
    [mbpta leak] protocol: on a deterministic platform the input shows
    through as a timing difference; a time-randomized platform masks it. *)
val measure_fixed_scenario : t -> scenario_index:int -> run_index:int -> float

(** {2 Hot-path instrumentation} *)

(** [(hits, misses)] of the process-wide decode cache: codegen is a pure
    function of (variant, gains, frames), so experiments sharing a scenario
    config share one generated + pre-decoded program. *)
val decode_cache_stats : unit -> int * int

(** The decode cache is bounded: at most [decode_cache_capacity ()]
    entries (default 32), evicting the least-recently-used entry on
    overflow — a long-lived process serving an unbounded stream of
    distinct configs must not pin every decoded program forever.
    Eviction only drops the cache's reference; live experiments hold
    their own and are unaffected.  [set_decode_cache_capacity] shrinks
    the cache immediately when lowering the cap; raises
    [Invalid_argument] on a cap < 1. *)
val decode_cache_capacity : unit -> int

val set_decode_cache_capacity : int -> unit

(** Current entry count (always [<= decode_cache_capacity ()]). *)
val decode_cache_size : unit -> int

(** [(scratches_created, batched_reuses)] — how many per-(domain,
    experiment) simulator scratches were built vs how many runs reused one;
    a healthy batched campaign shows reuses ≫ creations. *)
val batch_stats : unit -> int * int

(** {2 Fault-injected runs}

    The paper's platform flies in space, where single-event upsets are the
    dominant hazard.  [run_faulty] repeats a run under a seed-deterministic
    SEU injector ({!Repro_platform.Fault}) and a cycle-budget watchdog, and
    classifies the result.  All per-run fault randomness derives from
    [(base_seed, run_index, attempt)]: same inputs, same fault sites, same
    outcome.  With [seu_rate = 0.] and no watchdog the measured cycles are
    bit-identical to {!run}. *)

type fault_config = {
  seu_rate : float;  (** expected upsets per million retired instructions *)
  watchdog_budget : int option;  (** cycle budget; [None] = no watchdog *)
  output_tolerance : float;
      (** max absolute command error before a run counts as corrupted *)
}

(** Validating constructor (rejects negative rates and non-positive
    budgets); defaults: no upsets, no watchdog, tolerance [1e-9]. *)
val fault_config :
  ?seu_rate:float -> ?watchdog_budget:int -> ?output_tolerance:float -> unit -> fault_config

type fault_outcome =
  | Completed of { metrics : Repro_platform.Metrics.t; faults : Repro_platform.Fault.record list }
  | Watchdog of { cycles : int; budget : int; faults : Repro_platform.Fault.record list }
  | Runaway of { program : string; faults : Repro_platform.Fault.record list }
  | Crashed of { detail : string; faults : Repro_platform.Fault.record list }
  | Corrupted of { worst_error : float; faults : Repro_platform.Fault.record list }

(** [run_faulty t ~fault ?attempt ~run_index ()] — attempt [attempt]
    (default 0) of run [run_index].  The run's input scenario is fixed
    across attempts; platform and fault seeds are re-derived per attempt, so
    a retry is the same measurement under fresh randomization.  Never
    raises on fault-induced misbehavior — divergence, traps and corrupted
    output all come back classified. *)
val run_faulty :
  t -> fault:fault_config -> ?attempt:int -> run_index:int -> unit -> fault_outcome

(** Retired oracle twin of {!run_faulty} (fresh state, per-step loop). *)
val run_faulty_retired :
  t -> fault:fault_config -> ?attempt:int -> run_index:int -> unit -> fault_outcome

val fault_records : fault_outcome -> Repro_platform.Fault.record list
val pp_fault_outcome : Format.formatter -> fault_outcome -> unit

(** [collect t ~runs] — the measurement series for a campaign. *)
val collect : t -> runs:int -> float array

(** [path_signature t ~run_index] — hash of the execution path this run's
    inputs induce (layout/platform independent). *)
val path_signature : t -> run_index:int -> int

(** [check_functional t ~run_index] — executes the generated code and
    compares its commands against the golden controller's; returns the
    maximum absolute difference (0. means bit-identical). *)
val check_functional : t -> run_index:int -> float

(** [with_layout t layout] — same experiment, different link layout (for the
    layout-sensitivity ablation). *)
val with_layout : t -> Repro_isa.Layout.t -> t

val layout : t -> Repro_isa.Layout.t
