module Platform = Repro_platform
module Isa = Repro_isa
module Profile = Repro_profile

type t = {
  frames : int;
  gains : Controller.gains;
  contenders : float list;
  config : Platform.Config.t;
  base_seed : int64;
  program : Isa.Program.t;
  layout : Isa.Layout.t;
  decoded : Isa.Executor.Decoded.t;
}

(* ---- per-run seed derivation -----------------------------------------

   Every seed below is a {e pure function} of [(base_seed, run_index,
   attempt)]: derivation creates a fresh Splitmix stream per call and never
   threads a shared mutable [Prng.t] across runs.  This is the property the
   parallel campaign layer ({!Repro_mbpta.Parallel}) relies on — runs can
   execute in any order, on any domain, and still see exactly the seeds the
   sequential campaign would have handed them.  When auditing a new
   measurement site, route it through {!scenario_seed}, {!platform_seed} or
   {!fault_seed} instead of drawing from a long-lived generator. *)

(* Derive independent per-run seeds for scenario (stream 0) and platform
   (stream 1): one splitmix stream per run, indexed in counter mode. *)
let derive_seed base run stream =
  let sm = Repro_rng.Splitmix.create base in
  (* O(1) counter-mode jump: [Splitmix.skip] lands on exactly the state
     that [(run * 2) + stream] discarded draws would have reached, so seeds
     are bit-identical to the retired draw-and-ignore loop at any index. *)
  Repro_rng.Splitmix.skip sm ((run * 2) + stream);
  Repro_rng.Splitmix.next sm

(* Fault-injection stream: a salted family so the scenario/platform streams
   above are untouched (bit-identical seeds when injection is off). *)
let fault_salt = 0x5851F42D4C957F2DL

let derive_fault_seed base run = derive_seed (Int64.logxor base fault_salt) run 0

(* Retry reseed policy: attempt 0 is the canonical run; attempt [a > 0]
   re-derives the platform and fault streams from a salted base while the
   scenario (the run's input) stays fixed — a retry repeats the same
   measurement under fresh randomization, deterministically. *)
let retry_salt = 0x14057B7EF767814FL

let attempt_base base ~attempt =
  if attempt = 0 then base
  else
    Repro_rng.Splitmix.next
      (Repro_rng.Splitmix.create
         (Int64.logxor base (Int64.mul (Int64.of_int attempt) retry_salt)))

(* Schedule-randomization stream: its own salted family, so adding shuffle
   campaigns leaves every existing seed (and measurement) untouched. *)
let schedule_salt = 0x9E3779B97F4A7C15L

let derive_schedule_seed base run = derive_seed (Int64.logxor base schedule_salt) run 0

(* ---- decode cache ----------------------------------------------------

   TVCA codegen is a pure function of (variant, gains, frames) — the
   platform config and seeds never touch the program text — so the
   generated program, its sequential layout and the pre-decoded executable
   form are shared process-wide across experiments (the DET and RAND
   experiments of one campaign always share one entry).  Guarded by a
   mutex: create-time only, never on the per-run path. *)

type codegen_key = {
  key_frames : int;
  key_gains : Controller.gains;
  key_variant : Codegen.variant;
}

type decode_entry = {
  de_value : Isa.Program.t * Isa.Layout.t * Isa.Executor.Decoded.t;
  mutable de_stamp : int;  (* recency: the logical clock at last use *)
}

let decode_cache : (codegen_key, decode_entry) Hashtbl.t = Hashtbl.create 8
let decode_cache_mutex = Mutex.create ()
let decode_cache_clock = ref 0

(* A long-lived process (the [mbpta serve] daemon) sees an unbounded
   stream of distinct (frames, gains, variant) configs; without a cap
   every one of them would pin a decoded program forever.  The default
   cap comfortably covers a campaign's working set (one entry per config;
   the DET and RAND experiments share it) while bounding the daemon. *)
let default_decode_cache_capacity = 32
let decode_cache_capacity_v = ref default_decode_cache_capacity
let decode_cache_hits = Atomic.make 0
let decode_cache_misses = Atomic.make 0

let decode_cache_stats () =
  (Atomic.get decode_cache_hits, Atomic.get decode_cache_misses)

(* Callers hold [decode_cache_mutex]. *)
let decode_cache_evict_to cap =
  while Hashtbl.length decode_cache > cap do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.de_stamp -> acc
          | _ -> Some (k, e.de_stamp))
        decode_cache None
    in
    match victim with
    | Some (k, _) -> Hashtbl.remove decode_cache k
    | None -> ()
  done

let decode_cache_size () =
  Mutex.lock decode_cache_mutex;
  let n = Hashtbl.length decode_cache in
  Mutex.unlock decode_cache_mutex;
  n

let decode_cache_capacity () = !decode_cache_capacity_v

let set_decode_cache_capacity cap =
  if cap < 1 then invalid_arg "Experiment.set_decode_cache_capacity: cap must be >= 1";
  Mutex.lock decode_cache_mutex;
  decode_cache_capacity_v := cap;
  decode_cache_evict_to cap;
  Mutex.unlock decode_cache_mutex

let decoded_program ~variant ~gains ~frames =
  let key = { key_frames = frames; key_gains = gains; key_variant = variant } in
  Mutex.lock decode_cache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock decode_cache_mutex)
    (fun () ->
      incr decode_cache_clock;
      match Hashtbl.find_opt decode_cache key with
      | Some entry ->
          Atomic.incr decode_cache_hits;
          entry.de_stamp <- !decode_cache_clock;
          entry.de_value
      | None ->
          Atomic.incr decode_cache_misses;
          let program =
            Profile.time Profile.Codegen (fun () ->
                Codegen.program ~variant ~gains ~frames ())
          in
          let layout = Isa.Layout.sequential program in
          let decoded =
            Profile.time Profile.Decode (fun () ->
                Isa.Executor.Decoded.decode ~program ~layout)
          in
          let entry = { de_value = (program, layout, decoded); de_stamp = !decode_cache_clock } in
          Hashtbl.replace decode_cache key entry;
          (* Evicting the least-recently-used entry only ever drops cache
             references; live experiments keep their own reference to the
             decoded triple, so eviction is invisible to them. *)
          decode_cache_evict_to !decode_cache_capacity_v;
          entry.de_value)

let create ?(frames = Mission.default_frames) ?(gains = Controller.default_gains)
    ?(variant = Codegen.Full) ?(contenders = []) ~config ~base_seed () =
  let program, layout, decoded = decoded_program ~variant ~gains ~frames in
  { frames; gains; contenders; config; base_seed; program; layout; decoded }

let config t = t.config
let program t = t.program
let layout t = t.layout

let with_layout t layout =
  (* A custom layout (shifted/scrambled path studies) gets its own decode;
     only the canonical sequential layout is served from the cache. *)
  let decoded =
    Profile.time Profile.Decode (fun () ->
        Isa.Executor.Decoded.decode ~program:t.program ~layout)
  in
  { t with layout; decoded }

(* The three published seed families (see the audit note above). *)
let scenario_seed t ~run_index = derive_seed t.base_seed run_index 0

let platform_seed t ~run_index ~attempt =
  derive_seed (attempt_base t.base_seed ~attempt) run_index 1

let fault_seed t ~run_index ~attempt =
  derive_fault_seed (attempt_base t.base_seed ~attempt) run_index

let schedule_seed t ~run_index = derive_schedule_seed t.base_seed run_index

let scenario t ~run_index =
  Mission.generate ~frames:t.frames ~gains:t.gains ~seed:(scenario_seed t ~run_index) ()

let prepared_memory t ~run_index =
  let sc = scenario t ~run_index in
  let memory = Isa.Memory.create t.program in
  Mission.load_memory sc memory;
  (sc, memory)

(* ---- batched scratch -------------------------------------------------

   The unit of scheduling upstream stays the per-run closure (chunk layout,
   store checkpoints and shard spans are untouched), but consecutive runs
   on one domain reuse a per-(domain, experiment) scratch — one simulator
   instance, one memory image, one linked runner — amortizing simulator and
   memory construction and program decode across the whole batch.  Each run
   still gets the full per-run protocol (fresh seeds via {!Core_sim.reseed},
   flush via [reset_run], zeroed and reloaded memory), which [test_hotpath]
   pins bit-identical to the retired fresh-everything path.

   Domain-local storage means no shared mutable hot state between domains;
   the slot list is a tiny move-to-front LRU keyed by experiment identity,
   capped so long-lived domains running many experiments (test suites)
   don't accumulate dead simulators. *)

type scratch = {
  s_core : Platform.Core_sim.t;
  s_memory : Isa.Memory.t;
  s_runner : Isa.Executor.Decoded.Runner.t;
}

let max_scratch_slots = 8

let scratch_slots : (t * scratch) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let scratches_created = Atomic.make 0
let batched_reuses = Atomic.make 0
let batch_stats () = (Atomic.get scratches_created, Atomic.get batched_reuses)

let scratch_for t =
  let slots = Domain.DLS.get scratch_slots in
  match !slots with
  | (t', s) :: _ when t' == t ->
      (* fast path: the batch's experiment is already at the front *)
      Atomic.incr batched_reuses;
      s
  | existing -> (
      match List.assq_opt t existing with
      | Some s ->
          Atomic.incr batched_reuses;
          slots := (t, s) :: List.filter (fun (t', _) -> t' != t) existing;
          s
      | None ->
          Atomic.incr scratches_created;
          let memory = Isa.Memory.create t.program in
          let runner =
            Isa.Executor.Decoded.Runner.create ~decoded:t.decoded ~memory ()
          in
          (* The seed is a placeholder: every run reseeds before executing. *)
          let core =
            Platform.Core_sim.create ~contenders:t.contenders ~config:t.config
              ~seed:0L ()
          in
          let s = { s_core = core; s_memory = memory; s_runner = runner } in
          let kept =
            if List.length existing >= max_scratch_slots then
              List.filteri (fun i _ -> i < max_scratch_slots - 1) existing
            else existing
          in
          slots := (t, s) :: kept;
          s)

(* Per-run reset protocol on a scratch: derive this run's seeds, zero and
   reload the memory image, reseed the platform streams.  The subsequent
   [run_decoded] performs the flush cascade ([reset_run]) itself. *)
let prepare_run t s ~run_index ~attempt =
  let sc, seed =
    Profile.time Profile.Seed_derivation (fun () ->
        (scenario t ~run_index, platform_seed t ~run_index ~attempt))
  in
  Profile.time Profile.Flush (fun () ->
      Isa.Memory.clear s.s_memory;
      Mission.load_memory sc s.s_memory;
      Platform.Core_sim.reseed s.s_core ~seed);
  sc

let run t ~run_index =
  let s = scratch_for t in
  let _sc = prepare_run t s ~run_index ~attempt:0 in
  Platform.Core_sim.run_decoded s.s_core ~runner:s.s_runner

let measure t ~run_index = float_of_int (Platform.Metrics.cycles (run t ~run_index))

(* ---- retired reference path ------------------------------------------

   The pre-batching implementation, kept verbatim as the oracle: fresh
   memory, fresh simulator, per-step variant-match executor.  [test_hotpath]
   and the bench's same-run baselines pin the batched path bit-identical to
   these. *)

let run_retired t ~run_index =
  let _, memory = prepared_memory t ~run_index in
  let core =
    Platform.Core_sim.create ~contenders:t.contenders ~config:t.config
      ~seed:(platform_seed t ~run_index ~attempt:0) ()
  in
  Platform.Core_sim.run_program core ~program:t.program ~layout:t.layout ~memory

let measure_retired t ~run_index =
  float_of_int (Platform.Metrics.cycles (run_retired t ~run_index))

(* ---- randomized-schedule runs ---------------------------------------- *)

type schedule_run = {
  worst_response : float;
  signature : string;
  preemptions : int;
  skipped_releases : int;
}

let run_schedule t ?(context_switch = 40) ~policy ~period ~max_jitter ~horizon
    ~run_index () =
  let tasks =
    Rtos.apply_policy policy ~seed:(schedule_seed t ~run_index) ~max_jitter
      (Rtos.tvca_tasks ~period ())
  in
  (* Fresh state per run, as in {!run_retired}: the RTOS sim owns the core
     for the whole horizon, so there is no batched scratch to share. *)
  let _, memory = prepared_memory t ~run_index in
  let core =
    Platform.Core_sim.create ~contenders:t.contenders ~config:t.config
      ~seed:(platform_seed t ~run_index ~attempt:0) ()
  in
  Platform.Core_sim.reset_run core;
  let r =
    Rtos.run ~context_switch ~frames:t.frames ~core ~program:t.program ~layout:t.layout
      ~memory ~tasks ~horizon ()
  in
  let worst_response =
    List.fold_left
      (fun acc (tr : Rtos.task_result) -> Array.fold_left Float.max acc tr.response_times)
      0. r.Rtos.per_task
  in
  let skipped_releases =
    List.fold_left
      (fun acc (tr : Rtos.task_result) -> acc + tr.Rtos.skipped_releases)
      0 r.Rtos.per_task
  in
  {
    worst_response;
    signature = Rtos.schedule_signature tasks;
    preemptions = r.Rtos.preemptions;
    skipped_releases;
  }

(* ---- fixed-input runs (timing-leak detection) ------------------------ *)

let measure_fixed_scenario t ~scenario_index ~run_index =
  (* The scenario (the "secret" input) is pinned to [scenario_index] while
     the platform randomization still varies with [run_index] — on a
     time-randomized platform the resulting sample should be statistically
     indistinguishable from any other input's; on a deterministic platform
     the input shows through as a timing leak. *)
  let sc = scenario t ~run_index:scenario_index in
  let memory = Isa.Memory.create t.program in
  Mission.load_memory sc memory;
  let core =
    Platform.Core_sim.create ~contenders:t.contenders ~config:t.config
      ~seed:(platform_seed t ~run_index ~attempt:0) ()
  in
  float_of_int
    (Platform.Metrics.cycles
       (Platform.Core_sim.run_program core ~program:t.program ~layout:t.layout ~memory))

(* ---- fault-injected, supervised runs ---- *)

type fault_config = {
  seu_rate : float;
  watchdog_budget : int option;
  output_tolerance : float;
}

let fault_config ?(seu_rate = 0.) ?watchdog_budget ?(output_tolerance = 1e-9) () =
  if seu_rate < 0. then invalid_arg "Experiment.fault_config: seu_rate must be >= 0";
  (match watchdog_budget with
  | Some b when b < 1 -> invalid_arg "Experiment.fault_config: watchdog_budget must be >= 1"
  | Some _ | None -> ());
  { seu_rate; watchdog_budget; output_tolerance }

type fault_outcome =
  | Completed of { metrics : Platform.Metrics.t; faults : Platform.Fault.record list }
  | Watchdog of { cycles : int; budget : int; faults : Platform.Fault.record list }
  | Runaway of { program : string; faults : Platform.Fault.record list }
  | Crashed of { detail : string; faults : Platform.Fault.record list }
  | Corrupted of { worst_error : float; faults : Platform.Fault.record list }

let output_error t sc memory =
  let got_x = Isa.Memory.read_array memory Codegen.sym_cmd_x in
  let got_y = Isa.Memory.read_array memory Codegen.sym_cmd_y in
  let worst = ref 0. in
  for k = 0 to t.frames - 1 do
    let err_x = Float.abs (got_x.(k) -. sc.Mission.expected_cmd_x.(k)) in
    let err_y = Float.abs (got_y.(k) -. sc.Mission.expected_cmd_y.(k)) in
    let err = Float.max err_x err_y in
    (* a NaN output is corrupt however it compares *)
    if Float.is_nan err then worst := Float.infinity
    else worst := Float.max !worst err
  done;
  !worst

let classify t ~fault ~faults ~sc ~memory outcome =
  match outcome with
  | Error (Platform.Core_sim.Budget_exceeded { cycles; budget }) ->
      Watchdog { cycles; budget; faults = faults () }
  | Error (Isa.Executor.Runaway program) -> Runaway { program; faults = faults () }
  | Error (Invalid_argument detail) -> Crashed { detail; faults = faults () }
  | Error (Isa.Executor.Stack_overflow_ program) ->
      Crashed { detail = "stack overflow in " ^ program; faults = faults () }
  | Error e -> raise e
  | Ok metrics ->
      let worst_error = output_error t sc memory in
      if worst_error > fault.output_tolerance then
        Corrupted { worst_error; faults = faults () }
      else Completed { metrics; faults = faults () }

let run_faulty t ~fault ?(attempt = 0) ~run_index () =
  if attempt < 0 then invalid_arg "Experiment.run_faulty: attempt must be >= 0";
  let s = scratch_for t in
  let sc = prepare_run t s ~run_index ~attempt in
  let injector =
    Platform.Fault.create ~rate:fault.seu_rate ~seed:(fault_seed t ~run_index ~attempt)
  in
  let faults () = Platform.Fault.records injector in
  let outcome =
    match
      Platform.Core_sim.run_decoded_faulty s.s_core ~injector
        ?watchdog_budget:fault.watchdog_budget ~runner:s.s_runner ()
    with
    | metrics -> Ok metrics
    | exception e -> Error e
  in
  classify t ~fault ~faults ~sc ~memory:s.s_memory outcome

(* Retired oracle twin of {!run_faulty} (fresh state, per-step loop). *)
let run_faulty_retired t ~fault ?(attempt = 0) ~run_index () =
  if attempt < 0 then invalid_arg "Experiment.run_faulty: attempt must be >= 0";
  let sc, memory = prepared_memory t ~run_index in
  let core =
    Platform.Core_sim.create ~contenders:t.contenders ~config:t.config
      ~seed:(platform_seed t ~run_index ~attempt) ()
  in
  let injector =
    Platform.Fault.create ~rate:fault.seu_rate ~seed:(fault_seed t ~run_index ~attempt)
  in
  let faults () = Platform.Fault.records injector in
  let outcome =
    match
      Platform.Core_sim.run_program_faulty core ~injector
        ?watchdog_budget:fault.watchdog_budget ~program:t.program ~layout:t.layout
        ~memory ()
    with
    | metrics -> Ok metrics
    | exception e -> Error e
  in
  classify t ~fault ~faults ~sc ~memory outcome

let fault_records = function
  | Completed { faults; _ }
  | Watchdog { faults; _ }
  | Runaway { faults; _ }
  | Crashed { faults; _ }
  | Corrupted { faults; _ } ->
      faults

let pp_fault_outcome ppf = function
  | Completed { metrics; faults } ->
      Format.fprintf ppf "completed in %d cycles (%d SEUs)"
        (Platform.Metrics.cycles metrics) (List.length faults)
  | Watchdog { cycles; budget; faults } ->
      Format.fprintf ppf "watchdog fired at %d cycles (budget %d, %d SEUs)" cycles budget
        (List.length faults)
  | Runaway { program; faults } ->
      Format.fprintf ppf "runaway execution of %s (%d SEUs)" program (List.length faults)
  | Crashed { detail; faults } ->
      Format.fprintf ppf "crashed: %s (%d SEUs)" detail (List.length faults)
  | Corrupted { worst_error; faults } ->
      Format.fprintf ppf "output corrupted (worst error %g, %d SEUs)" worst_error
        (List.length faults)

let collect t ~runs = Array.init runs (fun i -> measure t ~run_index:i)

let path_signature t ~run_index =
  let _, memory = prepared_memory t ~run_index in
  Isa.Executor.path_signature ~program:t.program ~layout:t.layout ~memory ()

let check_functional t ~run_index =
  let sc, memory = prepared_memory t ~run_index in
  let no_timing (_ : Isa.Instr.retired) = () in
  let (_ : Isa.Executor.stats) =
    Isa.Executor.run ~program:t.program ~layout:t.layout ~memory ~on_retire:no_timing ()
  in
  let got_x = Isa.Memory.read_array memory Codegen.sym_cmd_x in
  let got_y = Isa.Memory.read_array memory Codegen.sym_cmd_y in
  let worst = ref 0. in
  for k = 0 to t.frames - 1 do
    worst := Float.max !worst (Float.abs (got_x.(k) -. sc.Mission.expected_cmd_x.(k)));
    worst := Float.max !worst (Float.abs (got_y.(k) -. sc.Mission.expected_cmd_y.(k)))
  done;
  !worst
