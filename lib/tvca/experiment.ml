module Platform = Repro_platform
module Isa = Repro_isa

type t = {
  frames : int;
  gains : Controller.gains;
  contenders : float list;
  config : Platform.Config.t;
  base_seed : int64;
  program : Isa.Program.t;
  layout : Isa.Layout.t;
}

(* ---- per-run seed derivation -----------------------------------------

   Every seed below is a {e pure function} of [(base_seed, run_index,
   attempt)]: derivation creates a fresh Splitmix stream per call and never
   threads a shared mutable [Prng.t] across runs.  This is the property the
   parallel campaign layer ({!Repro_mbpta.Parallel}) relies on — runs can
   execute in any order, on any domain, and still see exactly the seeds the
   sequential campaign would have handed them.  When auditing a new
   measurement site, route it through {!scenario_seed}, {!platform_seed} or
   {!fault_seed} instead of drawing from a long-lived generator. *)

(* Derive independent per-run seeds for scenario (stream 0) and platform
   (stream 1): one splitmix stream per run, indexed in counter mode. *)
let derive_seed base run stream =
  let sm = Repro_rng.Splitmix.create base in
  let rec skip k = if k > 0 then (ignore (Repro_rng.Splitmix.next sm); skip (k - 1)) in
  skip ((run * 2) + stream);
  Repro_rng.Splitmix.next sm

(* Fault-injection stream: a salted family so the scenario/platform streams
   above are untouched (bit-identical seeds when injection is off). *)
let fault_salt = 0x5851F42D4C957F2DL

let derive_fault_seed base run = derive_seed (Int64.logxor base fault_salt) run 0

(* Retry reseed policy: attempt 0 is the canonical run; attempt [a > 0]
   re-derives the platform and fault streams from a salted base while the
   scenario (the run's input) stays fixed — a retry repeats the same
   measurement under fresh randomization, deterministically. *)
let retry_salt = 0x14057B7EF767814FL

let attempt_base base ~attempt =
  if attempt = 0 then base
  else
    Repro_rng.Splitmix.next
      (Repro_rng.Splitmix.create
         (Int64.logxor base (Int64.mul (Int64.of_int attempt) retry_salt)))

let create ?(frames = Mission.default_frames) ?(gains = Controller.default_gains)
    ?(variant = Codegen.Full) ?(contenders = []) ~config ~base_seed () =
  let program = Codegen.program ~variant ~gains ~frames () in
  let layout = Isa.Layout.sequential program in
  { frames; gains; contenders; config; base_seed; program; layout }

let config t = t.config
let program t = t.program
let layout t = t.layout
let with_layout t layout = { t with layout }

(* The three published seed families (see the audit note above). *)
let scenario_seed t ~run_index = derive_seed t.base_seed run_index 0

let platform_seed t ~run_index ~attempt =
  derive_seed (attempt_base t.base_seed ~attempt) run_index 1

let fault_seed t ~run_index ~attempt =
  derive_fault_seed (attempt_base t.base_seed ~attempt) run_index

let scenario t ~run_index =
  Mission.generate ~frames:t.frames ~gains:t.gains ~seed:(scenario_seed t ~run_index) ()

let prepared_memory t ~run_index =
  let sc = scenario t ~run_index in
  let memory = Isa.Memory.create t.program in
  Mission.load_memory sc memory;
  (sc, memory)

let run t ~run_index =
  let _, memory = prepared_memory t ~run_index in
  let core =
    Platform.Core_sim.create ~contenders:t.contenders ~config:t.config
      ~seed:(platform_seed t ~run_index ~attempt:0) ()
  in
  Platform.Core_sim.run_program core ~program:t.program ~layout:t.layout ~memory

let measure t ~run_index = float_of_int (Platform.Metrics.cycles (run t ~run_index))

(* ---- fault-injected, supervised runs ---- *)

type fault_config = {
  seu_rate : float;
  watchdog_budget : int option;
  output_tolerance : float;
}

let fault_config ?(seu_rate = 0.) ?watchdog_budget ?(output_tolerance = 1e-9) () =
  if seu_rate < 0. then invalid_arg "Experiment.fault_config: seu_rate must be >= 0";
  (match watchdog_budget with
  | Some b when b < 1 -> invalid_arg "Experiment.fault_config: watchdog_budget must be >= 1"
  | Some _ | None -> ());
  { seu_rate; watchdog_budget; output_tolerance }

type fault_outcome =
  | Completed of { metrics : Platform.Metrics.t; faults : Platform.Fault.record list }
  | Watchdog of { cycles : int; budget : int; faults : Platform.Fault.record list }
  | Runaway of { program : string; faults : Platform.Fault.record list }
  | Crashed of { detail : string; faults : Platform.Fault.record list }
  | Corrupted of { worst_error : float; faults : Platform.Fault.record list }

let output_error t sc memory =
  let got_x = Isa.Memory.read_array memory Codegen.sym_cmd_x in
  let got_y = Isa.Memory.read_array memory Codegen.sym_cmd_y in
  let worst = ref 0. in
  for k = 0 to t.frames - 1 do
    let err_x = Float.abs (got_x.(k) -. sc.Mission.expected_cmd_x.(k)) in
    let err_y = Float.abs (got_y.(k) -. sc.Mission.expected_cmd_y.(k)) in
    let err = Float.max err_x err_y in
    (* a NaN output is corrupt however it compares *)
    if Float.is_nan err then worst := Float.infinity
    else worst := Float.max !worst err
  done;
  !worst

let run_faulty t ~fault ?(attempt = 0) ~run_index () =
  if attempt < 0 then invalid_arg "Experiment.run_faulty: attempt must be >= 0";
  let sc, memory = prepared_memory t ~run_index in
  let core =
    Platform.Core_sim.create ~contenders:t.contenders ~config:t.config
      ~seed:(platform_seed t ~run_index ~attempt) ()
  in
  let injector =
    Platform.Fault.create ~rate:fault.seu_rate ~seed:(fault_seed t ~run_index ~attempt)
  in
  let faults () = Platform.Fault.records injector in
  match
    Platform.Core_sim.run_program_faulty core ~injector
      ?watchdog_budget:fault.watchdog_budget ~program:t.program ~layout:t.layout ~memory
      ()
  with
  | exception Platform.Core_sim.Budget_exceeded { cycles; budget } ->
      Watchdog { cycles; budget; faults = faults () }
  | exception Isa.Executor.Runaway program -> Runaway { program; faults = faults () }
  | exception Invalid_argument detail -> Crashed { detail; faults = faults () }
  | exception Isa.Executor.Stack_overflow_ program ->
      Crashed { detail = "stack overflow in " ^ program; faults = faults () }
  | metrics ->
      let worst_error = output_error t sc memory in
      if worst_error > fault.output_tolerance then
        Corrupted { worst_error; faults = faults () }
      else Completed { metrics; faults = faults () }

let fault_records = function
  | Completed { faults; _ }
  | Watchdog { faults; _ }
  | Runaway { faults; _ }
  | Crashed { faults; _ }
  | Corrupted { faults; _ } ->
      faults

let pp_fault_outcome ppf = function
  | Completed { metrics; faults } ->
      Format.fprintf ppf "completed in %d cycles (%d SEUs)"
        (Platform.Metrics.cycles metrics) (List.length faults)
  | Watchdog { cycles; budget; faults } ->
      Format.fprintf ppf "watchdog fired at %d cycles (budget %d, %d SEUs)" cycles budget
        (List.length faults)
  | Runaway { program; faults } ->
      Format.fprintf ppf "runaway execution of %s (%d SEUs)" program (List.length faults)
  | Crashed { detail; faults } ->
      Format.fprintf ppf "crashed: %s (%d SEUs)" detail (List.length faults)
  | Corrupted { worst_error; faults } ->
      Format.fprintf ppf "output corrupted (worst error %g, %d SEUs)" worst_error
        (List.length faults)

let collect t ~runs = Array.init runs (fun i -> measure t ~run_index:i)

let path_signature t ~run_index =
  let _, memory = prepared_memory t ~run_index in
  Isa.Executor.path_signature ~program:t.program ~layout:t.layout ~memory ()

let check_functional t ~run_index =
  let sc, memory = prepared_memory t ~run_index in
  let no_timing (_ : Isa.Instr.retired) = () in
  let (_ : Isa.Executor.stats) =
    Isa.Executor.run ~program:t.program ~layout:t.layout ~memory ~on_retire:no_timing ()
  in
  let got_x = Isa.Memory.read_array memory Codegen.sym_cmd_x in
  let got_y = Isa.Memory.read_array memory Codegen.sym_cmd_y in
  let worst = ref 0. in
  for k = 0 to t.frames - 1 do
    worst := Float.max !worst (Float.abs (got_x.(k) -. sc.Mission.expected_cmd_x.(k)));
    worst := Float.max !worst (Float.abs (got_y.(k) -. sc.Mission.expected_cmd_y.(k)))
  done;
  !worst
