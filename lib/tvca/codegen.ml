module I = Repro_isa.Instr
module B = Repro_isa.Builder

type variant = Full | Sensor_only | Control_x_only | Control_y_only

let samples_per_frame = Array.length Controller.fir_taps

type axis = [ `X | `Y ]
type channel = [ `Position | `Rate | `Acceleration ]

let axes : axis list = [ `X; `Y ]
let channels : channel list = [ `Position; `Rate; `Acceleration ]

let axis_name = function `X -> "x" | `Y -> "y"

let channel_name = function
  | `Position -> "position"
  | `Rate -> "rate"
  | `Acceleration -> "acceleration"

let sym_sensor ~axis ~channel =
  Printf.sprintf "sensor_%s_%s" (axis_name axis) (channel_name channel)

let sym_ref_x = "ref_x"
let sym_ref_y = "ref_y"
let sym_cmd_x = "cmd_x"
let sym_cmd_y = "cmd_y"
let sym_state = "state"
let sym_scratch = "scratch"
let sym_history_x = "history_x"
let sym_history_y = "history_y"
let sym_gain_table = "gain_table"
let sym_covariance = "covariance"

module State = struct
  let filt_x = 0
  let filt_y = 1
  let integ_x = 2
  let integ_y = 3
  let prev_e_x = 4
  let prev_e_y = 5
  let cov_proxy = 6
  let count = 7
end

(* Register conventions:
     r10 frame index (owned by the main schedule loop, limit in r11)
     r2  sample base = frame * samples_per_frame
     r3..r9 task-local scratch
   Float registers are task-local; f13 accumulates the fused estimate.

   All numeric constants are inlined as immediates (Fli), the signature
   style of model-generated code; consequently the program must be generated
   for the gains it will run with. *)

let r_frame = 10
let r_base = 2

let state i = B.at ~offset:i sym_state

(* Clamp float register [v] to +-limit; scratch fa/fb.
   Mirrors Controller.clamp exactly. *)
let emit_clamp b ~v ~limit ~fa ~fb =
  let hi = B.fresh_label b "clamp_hi" in
  let lo = B.fresh_label b "clamp_lo" in
  let done_ = B.fresh_label b "clamp_done" in
  B.emit b (I.Fli (fa, limit));
  B.emit b (I.Fli (fb, -.limit));
  B.emit b (I.Fbge (v, fa, hi));
  B.emit b (I.Fbge (fb, v, lo));
  B.emit b (I.Jmp done_);
  B.label b hi;
  B.emit b (I.Fmov (v, fa));
  B.emit b (I.Jmp done_);
  B.label b lo;
  B.emit b (I.Fmov (v, fb));
  B.label b done_

(* One sensor channel, fully unrolled: copy the frame's window to scratch,
   outlier-reject, FIR with inline tap constants.  Leaves the filtered value
   in f4.  Mirrors Controller.sensor_channel. *)
let emit_sensor_channel b (g : Controller.gains) ~sensor_sym =
  (* copy window into scratch (static offsets, base in r2) *)
  for i = 0 to samples_per_frame - 1 do
    B.emit b (I.Fld (0, B.at ~index_reg:r_base ~offset:i sensor_sym));
    B.emit b (I.Fst (0, B.at ~offset:i sym_scratch))
  done;
  (* outlier rejection, unrolled *)
  for i = 1 to samples_per_frame - 1 do
    let skip = B.fresh_label b "reject_skip" in
    B.emit b (I.Fld (0, B.at ~offset:i sym_scratch));
    B.emit b (I.Fld (1, B.at ~offset:(i - 1) sym_scratch));
    B.emit b (I.Fsub (2, 0, 1));
    B.emit b (I.Fabs (2, 2));
    B.emit b (I.Fli (3, g.Controller.jump_threshold));
    B.emit b (I.Fblt (2, 3, skip));
    B.emit b (I.Fst (1, B.at ~offset:i sym_scratch));
    B.label b skip
  done;
  (* FIR, unrolled with immediate taps *)
  B.emit b (I.Fli (4, 0.));
  for i = 0 to samples_per_frame - 1 do
    B.emit b (I.Fld (0, B.at ~offset:i sym_scratch));
    B.emit b (I.Fli (1, Controller.fir_taps.(i)));
    B.emit b (I.Fmul (2, 0, 1));
    B.emit b (I.Fadd (4, 4, 2))
  done

(* Staggered covariance-propagation sweep (phase = frame mod cov_phases),
   then the confidence proxy into state.  Mirrors
   Controller.covariance_sweep.  Integer registers: r6 phase, r7 scratch,
   r8 element index, r9 limit, r3/r4 neighbour indices. *)
let emit_covariance_sweep b =
  let n = Controller.cov_n in
  let mod_head = B.fresh_label b "cov_mod_head" in
  let mod_done = B.fresh_label b "cov_mod_done" in
  B.emit b (I.Addi (6, r_frame, 0));
  B.emit b (I.Li (7, Controller.cov_phases));
  B.label b mod_head;
  B.emit b (I.Blt (6, 7, mod_done));
  B.emit b (I.Sub (6, 6, 7));
  B.emit b (I.Jmp mod_head);
  B.label b mod_done;
  B.emit b (I.Addi (8, 6, n + 1));
  B.emit b (I.Li (9, n * n));
  let sweep_head = B.fresh_label b "cov_sweep_head" in
  let sweep_done = B.fresh_label b "cov_sweep_done" in
  B.label b sweep_head;
  B.emit b (I.Bge (8, 9, sweep_done));
  B.emit b (I.Addi (3, 8, -1));
  B.emit b (I.Addi (4, 8, -n));
  B.emit b (I.Fld (0, B.at ~index_reg:8 sym_covariance));
  B.emit b (I.Fld (1, B.at ~index_reg:3 sym_covariance));
  B.emit b (I.Fld (2, B.at ~index_reg:4 sym_covariance));
  B.emit b (I.Fli (3, Controller.cov_decay));
  B.emit b (I.Fmul (0, 3, 0));
  B.emit b (I.Fadd (1, 1, 2));
  B.emit b (I.Fli (3, Controller.cov_coupling));
  B.emit b (I.Fmul (1, 3, 1));
  B.emit b (I.Fadd (0, 0, 1));
  B.emit b (I.Fli (3, Controller.cov_q));
  B.emit b (I.Fadd (0, 0, 3));
  B.emit b (I.Fst (0, B.at ~index_reg:8 sym_covariance));
  B.emit b (I.Addi (8, 8, Controller.cov_phases));
  B.emit b (I.Jmp sweep_head);
  B.label b sweep_done;
  B.emit b (I.Fld (0, B.at ~offset:(n + 1) sym_covariance));
  B.emit b (I.Fst (0, state State.cov_proxy))

(* Sensor acquisition for one axis: the three channels filtered and fused,
   the acceleration weight attenuated by the confidence proxy.  Mirrors
   Controller.sensor_axis. *)
let emit_sensor_axis b (g : Controller.gains) ~axis ~filt_index =
  B.emit b (I.Li (3, samples_per_frame));
  B.emit b (I.Mul (r_base, r_frame, 3));
  B.emit b (I.Fli (13, 0.));
  List.iter
    (fun channel ->
      emit_sensor_channel b g ~sensor_sym:(sym_sensor ~axis ~channel);
      (match channel with
      | `Position -> B.emit b (I.Fli (5, g.Controller.w_position))
      | `Rate -> B.emit b (I.Fli (5, g.Controller.w_rate))
      | `Acceleration ->
          (* w_acc / (1 + cov_proxy) *)
          B.emit b (I.Fld (5, state State.cov_proxy));
          B.emit b (I.Fli (6, 1.));
          B.emit b (I.Fadd (5, 6, 5));
          B.emit b (I.Fli (6, g.Controller.w_acceleration));
          B.emit b (I.Fdiv (5, 6, 5)));
      B.emit b (I.Fmul (5, 5, 4));
      B.emit b (I.Fadd (13, 13, 5)))
    channels;
  B.emit b (I.Fst (13, state filt_index))

(* PID with anti-windup, gain scheduling, windowed history trend, table
   lookup and output clamp for one axis.  Mirrors Controller.control_axis
   operation-for-operation.

   Integer registers: r6 window length, r7 loop index, r8 table index,
   r9 constants.  Float registers:
     f0 filtered  f2 e      f3 integ  f4 dt      f5 deriv
     f6 gain      f8 u_raw  f10 hist mean/trend  f11 table gain *)
let emit_control_axis b (g : Controller.gains) ~ref_sym ~cmd_sym ~history_sym ~filt_index
    ~integ_index ~prev_e_index =
  B.emit b (I.Fld (0, state filt_index));
  B.emit b (I.Fld (1, B.at ~index_reg:r_frame ref_sym));
  B.emit b (I.Fsub (2, 1, 0));
  (* e *)
  B.emit b (I.Fld (3, state integ_index));
  B.emit b (I.Fli (4, g.Controller.dt));
  B.emit b (I.Fmul (5, 2, 4));
  B.emit b (I.Fadd (3, 3, 5));
  emit_clamp b ~v:3 ~limit:g.Controller.integ_max ~fa:6 ~fb:7;
  B.emit b (I.Fst (3, state integ_index));
  (* deriv = (e - prev_e) / dt *)
  B.emit b (I.Fld (5, state prev_e_index));
  B.emit b (I.Fsub (5, 2, 5));
  B.emit b (I.Fdiv (5, 5, 4));
  B.emit b (I.Fst (2, state prev_e_index));
  (* gain = 1 / (1 + c |filtered|) *)
  B.emit b (I.Fabs (6, 0));
  B.emit b (I.Fli (7, g.Controller.gain_sched_coeff));
  B.emit b (I.Fmul (6, 7, 6));
  B.emit b (I.Fli (7, 1.));
  B.emit b (I.Fadd (6, 7, 6));
  B.emit b (I.Fdiv (6, 7, 6));
  (* history.(frame) <- filtered; wlen = min (frame+1) window *)
  B.emit b (I.Fst (0, B.at ~index_reg:r_frame history_sym));
  let wlen_ok = B.fresh_label b "wlen_ok" in
  B.emit b (I.Addi (6, r_frame, 1));
  B.emit b (I.Li (7, Controller.window));
  B.emit b (I.Blt (6, 7, wlen_ok));
  B.emit b (I.Li (6, Controller.window));
  B.label b wlen_ok;
  (* windowed sum of history.(frame-wlen+1 .. frame) into f10 *)
  B.emit b (I.Sub (7, r_frame, 6));
  B.emit b (I.Addi (7, 7, 1));
  B.emit b (I.Fli (10, 0.));
  let hist_head = B.fresh_label b "hist_head" in
  let hist_done = B.fresh_label b "hist_done" in
  B.label b hist_head;
  B.emit b (I.Blt (r_frame, 7, hist_done));
  B.emit b (I.Fld (9, B.at ~index_reg:7 history_sym));
  B.emit b (I.Fadd (10, 10, 9));
  B.emit b (I.Addi (7, 7, 1));
  B.emit b (I.Jmp hist_head);
  B.label b hist_done;
  (* hist_mean = sum / wlen *)
  B.emit b (I.Icvt (9, 6));
  B.emit b (I.Fdiv (10, 10, 9));
  (* table index = truncate (|filtered| * table_scale), clamped *)
  B.emit b (I.Fabs (11, 0));
  B.emit b (I.Fli (9, Controller.table_scale));
  B.emit b (I.Fmul (11, 11, 9));
  B.emit b (I.Fcvt (8, 11));
  let idx_ok = B.fresh_label b "idx_ok" in
  B.emit b (I.Li (9, Controller.table_size));
  B.emit b (I.Blt (8, 9, idx_ok));
  B.emit b (I.Li (8, Controller.table_size - 1));
  B.label b idx_ok;
  B.emit b (I.Fld (11, B.at ~index_reg:8 sym_gain_table));
  (* u_raw = gain*(kp e + ki integ + kd deriv) + kt*(filtered - hist_mean) *)
  B.emit b (I.Fli (8, g.Controller.kp));
  B.emit b (I.Fmul (8, 8, 2));
  B.emit b (I.Fli (9, g.Controller.ki));
  B.emit b (I.Fmul (9, 9, 3));
  B.emit b (I.Fadd (8, 8, 9));
  B.emit b (I.Fli (9, g.Controller.kd));
  B.emit b (I.Fmul (9, 9, 5));
  B.emit b (I.Fadd (8, 8, 9));
  B.emit b (I.Fmul (8, 6, 8));
  B.emit b (I.Fsub (10, 0, 10));
  B.emit b (I.Fli (9, g.Controller.kt));
  B.emit b (I.Fmul (10, 9, 10));
  B.emit b (I.Fadd (8, 8, 10));
  (* u = clamp (table_gain * u_raw) *)
  B.emit b (I.Fmul (8, 11, 8));
  emit_clamp b ~v:8 ~limit:g.Controller.u_max ~fa:6 ~fb:7;
  B.emit b (I.Fst (8, B.at ~index_reg:r_frame cmd_sym))

(* Cross-axis magnitude normalization.  Mirrors Controller.normalize. *)
let emit_normalize b (g : Controller.gains) =
  let done_ = B.fresh_label b "norm_done" in
  B.emit b (I.Fld (0, B.at ~index_reg:r_frame sym_cmd_x));
  B.emit b (I.Fld (1, B.at ~index_reg:r_frame sym_cmd_y));
  B.emit b (I.Fmul (2, 0, 0));
  B.emit b (I.Fmul (3, 1, 1));
  B.emit b (I.Fadd (2, 2, 3));
  B.emit b (I.Fsqrt (2, 2));
  B.emit b (I.Fli (3, g.Controller.u_total_max));
  B.emit b (I.Fblt (2, 3, done_));
  B.emit b (I.Fdiv (3, 3, 2));
  B.emit b (I.Fmul (0, 0, 3));
  B.emit b (I.Fmul (1, 1, 3));
  B.emit b (I.Fst (0, B.at ~index_reg:r_frame sym_cmd_x));
  B.emit b (I.Fst (1, B.at ~index_reg:r_frame sym_cmd_y));
  B.label b done_

let program ?(variant = Full) ?(gains = Controller.default_gains) ~frames () =
  if not (frames >= 1 && frames <= Controller.history_length) then
    invalid_arg
      (Printf.sprintf "Codegen.program: frames %d outside [1, %d]" frames
         Controller.history_length);
  let b = B.create ~name:"tvca" in
  List.iter
    (fun axis ->
      List.iter
        (fun channel ->
          B.declare_data b
            ~symbol:(sym_sensor ~axis ~channel)
            ~elements:(frames * samples_per_frame))
        channels)
    axes;
  B.declare_data b ~symbol:sym_ref_x ~elements:frames;
  B.declare_data b ~symbol:sym_ref_y ~elements:frames;
  B.declare_data b ~symbol:sym_cmd_x ~elements:frames;
  B.declare_data b ~symbol:sym_cmd_y ~elements:frames;
  B.declare_data b ~symbol:sym_state ~elements:State.count;
  B.declare_data b ~symbol:sym_scratch ~elements:samples_per_frame;
  B.declare_data b ~symbol:sym_history_x ~elements:Controller.history_length;
  B.declare_data b ~symbol:sym_history_y ~elements:Controller.history_length;
  B.declare_data b ~symbol:sym_gain_table ~elements:Controller.table_size;
  B.declare_data b ~symbol:sym_covariance
    ~elements:(Controller.cov_n * Controller.cov_n);
  (* main: the frame schedule in fixed-priority order. *)
  B.label b "main";
  let calls =
    match variant with
    | Full -> [ "task_sensor"; "task_control_x"; "task_control_y" ]
    | Sensor_only -> [ "task_sensor" ]
    | Control_x_only -> [ "task_control_x" ]
    | Control_y_only -> [ "task_control_y" ]
  in
  B.counted_loop b ~counter:r_frame ~from_:0 ~below:frames (fun () ->
      List.iter (fun l -> B.emit b (I.Call l)) calls);
  B.emit b I.Halt;
  (* task bodies *)
  B.label b "task_sensor";
  emit_covariance_sweep b;
  emit_sensor_axis b gains ~axis:`X ~filt_index:State.filt_x;
  emit_sensor_axis b gains ~axis:`Y ~filt_index:State.filt_y;
  B.emit b I.Ret;
  B.label b "task_control_x";
  emit_control_axis b gains ~ref_sym:sym_ref_x ~cmd_sym:sym_cmd_x
    ~history_sym:sym_history_x ~filt_index:State.filt_x ~integ_index:State.integ_x
    ~prev_e_index:State.prev_e_x;
  B.emit b I.Ret;
  B.label b "task_control_y";
  emit_control_axis b gains ~ref_sym:sym_ref_y ~cmd_sym:sym_cmd_y
    ~history_sym:sym_history_y ~filt_index:State.filt_y ~integ_index:State.integ_y
    ~prev_e_index:State.prev_e_y;
  emit_normalize b gains;
  B.emit b I.Ret;
  B.build b ~entry:"main"
