(** Preemptive fixed-priority scheduling of the TVCA task set on one core.

    The paper's application "implements a fixed priority scheduler with 3
    periodic tasks".  This module simulates that scheduler at instruction
    granularity: each task is an entry point into the (shared-memory)
    generated program; releases are periodic; at every instruction boundary
    the highest-priority released, unfinished job runs, so a release
    preempts lower-priority work mid-job.  The platform clock is the
    {!Repro_platform.Core_sim} cycle count, so preemption interacts
    honestly with caches — a preempting task evicts the preempted one's
    lines, and the victim pays the reload (cache-related preemption delay).

    The per-activation response times this produces are exactly the
    measurement protocol for task-level probabilistic timing analysis and
    can be cross-checked against {!Repro_mbpta.Schedulability}'s analytical
    response-time bounds. *)

type task_spec = {
  name : string;
  entry : string;  (** label in the shared program, e.g. ["task_sensor"] *)
  priority : int;  (** smaller = more urgent *)
  period : int;  (** release period, cycles *)
  offset : int;  (** first release, cycles *)
}

type task_result = {
  spec : task_spec;
  response_times : float array;  (** per completed activation, cycles *)
  activations : int;  (** completed activations *)
  skipped_releases : int;
      (** releases that arrived while the previous job of the same task was
          still pending (counted as overruns and dropped) *)
}

type t = {
  per_task : task_result list;
  total_cycles : int;
  preemptions : int;  (** times a running job was displaced by a release *)
  idle_cycles : int;
}

(** [run ?context_switch ~core ~program ~layout ~memory ~tasks ~horizon ()]
    — simulates until the platform clock passes [horizon] cycles (jobs in
    flight at the horizon are abandoned).  Each activation [k] of a task
    starts at its [entry] with register [r10] preset to
    [k mod Mission.default_frames] (the frame index the generated code
    expects).  [context_switch] cycles (default 40) are charged whenever
    the running job changes.  Raises [Invalid_argument] on duplicate
    priorities (the fixed-priority order must be total). *)
val run :
  ?context_switch:int ->
  ?frames:int ->
  core:Repro_platform.Core_sim.t ->
  program:Repro_isa.Program.t ->
  layout:Repro_isa.Layout.t ->
  memory:Repro_isa.Memory.t ->
  tasks:task_spec list ->
  horizon:int ->
  unit ->
  t

(** The paper's task set over the generated TVCA program: sensor
    acquisition (highest priority), actuator control X, actuator control Y,
    all at [period] with staggered offsets [0; jitter; 2 jitter]. *)
val tvca_tasks : period:int -> ?release_jitter:int -> unit -> task_spec list

(** {2 Schedule randomization}

    TaskShuffler++-style randomization of the fixed-priority schedule: a
    predictable schedule lets an attacker phase-align with a victim task,
    so each policy perturbs the schedule from a derived seed while keeping
    it deterministic per [(seed)] — campaigns stay bit-identical at any
    [--jobs]. *)

type policy =
  | Fixed_priority  (** baseline: the task set unchanged *)
  | Priority_shuffle
      (** uniform priority permutation within each equal-period class
          (the deadline-safe freedom under rate-monotonic order) *)
  | Offset_jitter  (** uniform release delay in [[0, max_jitter]] per task *)

val all_policies : policy list

(** Stable CLI/report names: ["fixed"], ["shuffle"], ["jitter"]. *)
val policy_name : policy -> string

val policy_of_string : string -> (policy, string) result

(** [apply_policy policy ~seed ~max_jitter tasks] — a {e pure} function of
    its arguments: same seed, same schedule, whatever core it runs on.
    Priorities are only permuted within equal-period classes (implicit
    deadlines stay met); jittered offsets only grow, so they remain
    non-negative.  Raises [Invalid_argument] if [max_jitter < 0]. *)
val apply_policy : policy -> seed:int64 -> max_jitter:int -> task_spec list -> task_spec list

(** Canonical one-line encoding of a concrete schedule
    (["name:prio:offset;..."]), the unit of the entropy/vulnerability
    metrics below. *)
val schedule_signature : task_spec list -> string

(** Schedule-diversity metrics over one campaign's realized schedules. *)
type randomization = {
  schedules : int;  (** campaign runs observed *)
  distinct : int;  (** distinct schedule signatures *)
  entropy_bits : float;  (** Shannon entropy of the schedule distribution *)
  vulnerability : float;
      (** probability of the modal schedule — an attacker's best-guess
          success rate; 1.0 = fully predictable, lower is better *)
}

(** Raises [Invalid_argument] on an empty list.  Deterministic: the
    frequency fold is over signature-sorted bins. *)
val randomization_of_signatures : string list -> randomization

val pp_randomization : Format.formatter -> randomization -> unit
val pp : Format.formatter -> t -> unit
