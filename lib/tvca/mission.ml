module Prng = Repro_rng.Prng

type channel_data = { position : float array; rate : float array; acceleration : float array }

type t = {
  frames : int;
  gains : Controller.gains;
  x : channel_data;
  y : channel_data;
  ref_x : float array;
  ref_y : float array;
  covariance_init : float array;
  expected_cmd_x : float array;
  expected_cmd_y : float array;
  final_theta_x : float;
  final_theta_y : float;
}

let default_frames = 8

let position_noise_sigma = 0.004
let rate_noise_sigma = 0.01
let acceleration_noise_sigma = 0.05
let glitch_probability = 0.06
let glitch_magnitude = 0.25

let make_channel_data n =
  { position = Array.make n 0.; rate = Array.make n 0.; acceleration = Array.make n 0. }

let generate ?(frames = default_frames) ?(gains = Controller.default_gains) ~seed () =
  if not (frames >= 1 && frames <= Controller.history_length) then
    invalid_arg
      (Printf.sprintf "Mission.generate: frames %d outside [1, %d]" frames
         Controller.history_length);
  let prng = Prng.create seed in
  let samples = Codegen.samples_per_frame in
  let plant = Dynamics.default_params in
  (* Random initial attitude error and rates. *)
  let sx = ref (Dynamics.initial ~theta:(0.15 *. Prng.gaussian prng) ~omega:(0.05 *. Prng.gaussian prng)) in
  let sy = ref (Dynamics.initial ~theta:(0.15 *. Prng.gaussian prng) ~omega:(0.05 *. Prng.gaussian prng)) in
  (* Reference: ramp to a random target over a random ramp length. *)
  let target_x = 0.3 *. Prng.gaussian prng and target_y = 0.3 *. Prng.gaussian prng in
  let ramp = float_of_int (Prng.int_in_range prng ~lo:2 ~hi:6) in
  (* Disturbance: sinusoid with random amplitude/frequency/phase + noise. *)
  let dist_amp = 0.4 *. Prng.float prng in
  let dist_freq = 0.5 +. (2.0 *. Prng.float prng) in
  let dist_phase = 2. *. Float.pi *. Prng.float prng in
  let n = frames * samples in
  let x = make_channel_data n and y = make_channel_data n in
  let ref_x = Array.make frames 0. in
  let ref_y = Array.make frames 0. in
  let expected_cmd_x = Array.make frames 0. in
  let expected_cmd_y = Array.make frames 0. in
  (* Estimator covariance starts at a run-specific uncertainty: unit-ish
     diagonal, small random off-diagonal correlations. *)
  let cov_n = Controller.cov_n in
  let covariance_init =
    Array.init (cov_n * cov_n) (fun k ->
        if k / cov_n = k mod cov_n then 1. +. (0.05 *. Prng.gaussian prng)
        else 0.01 *. Prng.gaussian prng)
  in
  let ctrl_state = Controller.fresh_state () in
  Array.blit covariance_init 0 ctrl_state.Controller.covariance 0
    (Array.length covariance_init);
  let sub_dt = gains.Controller.dt /. float_of_int samples in
  let ux = ref 0. and uy = ref 0. in
  let time = ref 0. in
  let read sigma truth =
    let noisy = truth +. (sigma *. Prng.gaussian prng) in
    if Prng.float prng < glitch_probability then
      noisy +. (glitch_magnitude *. (Prng.float prng -. 0.5) *. 2.)
    else noisy
  in
  for k = 0 to frames - 1 do
    (* Fly the frame under the previous commands, oversampling the state. *)
    for i = 0 to samples - 1 do
      let d = (dist_amp *. sin ((dist_freq *. !time) +. dist_phase))
              +. (0.02 *. Prng.gaussian prng) in
      sx := Dynamics.step plant ~dt:sub_dt ~u:!ux ~disturbance:d !sx;
      sy := Dynamics.step plant ~dt:sub_dt ~u:!uy ~disturbance:(-.d) !sy;
      time := !time +. sub_dt;
      let j = (k * samples) + i in
      let record ch state u d' =
        ch.position.(j) <- read position_noise_sigma state.Dynamics.theta;
        ch.rate.(j) <- read rate_noise_sigma state.Dynamics.omega;
        ch.acceleration.(j) <-
          read acceleration_noise_sigma
            (Dynamics.angular_acceleration plant ~u ~disturbance:d' state)
      in
      record x !sx !ux d;
      record y !sy !uy (-.d)
    done;
    let progress = Float.min 1. (float_of_int (k + 1) /. ramp) in
    ref_x.(k) <- target_x *. progress;
    ref_y.(k) <- target_y *. progress;
    (* Golden controller closes the loop on the sampled windows. *)
    let window ch =
      {
        Controller.position = Array.sub ch.position (k * samples) samples;
        rate = Array.sub ch.rate (k * samples) samples;
        acceleration = Array.sub ch.acceleration (k * samples) samples;
      }
    in
    let cx, cy =
      Controller.frame gains ctrl_state ~frame:k ~samples_x:(window x) ~samples_y:(window y)
        ~ref_x:ref_x.(k) ~ref_y:ref_y.(k)
    in
    expected_cmd_x.(k) <- cx;
    expected_cmd_y.(k) <- cy;
    ux := cx;
    uy := cy
  done;
  {
    frames;
    gains;
    x;
    y;
    ref_x;
    ref_y;
    covariance_init;
    expected_cmd_x;
    expected_cmd_y;
    final_theta_x = !sx.Dynamics.theta;
    final_theta_y = !sy.Dynamics.theta;
  }

let load_memory t memory =
  let load axis ch =
    let put channel data =
      Repro_isa.Memory.load_array memory (Codegen.sym_sensor ~axis ~channel) data
    in
    put `Position ch.position;
    put `Rate ch.rate;
    put `Acceleration ch.acceleration
  in
  load `X t.x;
  load `Y t.y;
  Repro_isa.Memory.load_array memory Codegen.sym_ref_x t.ref_x;
  Repro_isa.Memory.load_array memory Codegen.sym_ref_y t.ref_y;
  Repro_isa.Memory.load_array memory Codegen.sym_gain_table Controller.gain_table;
  Repro_isa.Memory.load_array memory Codegen.sym_covariance t.covariance_init
