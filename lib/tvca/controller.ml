type gains = {
  dt : float;
  kp : float;
  ki : float;
  kd : float;
  kt : float;
  w_position : float;
  w_rate : float;
  w_acceleration : float;
  integ_max : float;
  u_max : float;
  u_total_max : float;
  jump_threshold : float;
  gain_sched_coeff : float;
}

let default_gains =
  {
    dt = 0.01;
    kp = 2.4;
    ki = 1.1;
    kd = 0.18;
    kt = 0.35;
    w_position = 0.72;
    w_rate = 0.05;
    w_acceleration = 0.004;
    integ_max = 0.6;
    u_max = 1.0;
    u_total_max = 1.2;
    jump_threshold = 0.08;
    gain_sched_coeff = 0.5;
  }

let fir_taps =
  [|
    0.010; 0.020; 0.035; 0.050; 0.065; 0.080; 0.095; 0.110;
    0.110; 0.100; 0.090; 0.080; 0.060; 0.045; 0.030; 0.020;
  |]

let window = 16
let history_length = 64
let table_size = 256
let table_scale = 128.

(* State-estimator covariance propagation: a [cov_n x cov_n] matrix swept
   in place once per frame (spread over [cov_phases] minor frames, as flight
   software commonly staggers heavy estimator work). *)
let cov_n = 40
let cov_phases = 3
let cov_decay = 0.985
let cov_coupling = 0.004
let cov_q = 0.0005

(* Scheduled attenuation versus deflection magnitude; a typical interpolated
   lookup table in generated control code. *)
let gain_table =
  Array.init table_size (fun i ->
      let x = float_of_int i /. table_scale in
      1. /. (1. +. (0.8 *. x *. x)))

type state = {
  mutable filt_x : float;
  mutable filt_y : float;
  mutable integ_x : float;
  mutable integ_y : float;
  mutable prev_e_x : float;
  mutable prev_e_y : float;
  mutable cov_proxy : float;
  history_x : float array;
  history_y : float array;
  covariance : float array;  (** cov_n * cov_n, row-major *)
}

let fresh_state () =
  {
    filt_x = 0.;
    filt_y = 0.;
    integ_x = 0.;
    integ_y = 0.;
    prev_e_x = 0.;
    prev_e_y = 0.;
    cov_proxy = 0.;
    history_x = Array.make history_length 0.;
    history_y = Array.make history_length 0.;
    covariance = Array.make (cov_n * cov_n) 0.;
  }

let clamp ~limit v = if v >= limit then limit else if v <= -.limit then -.limit else v

let sensor_channel g samples =
  if Array.length samples <> Array.length fir_taps then
    invalid_arg
      (Printf.sprintf "Controller.sensor_channel: %d samples, FIR expects %d"
         (Array.length samples) (Array.length fir_taps));
  let s = Array.copy samples in
  (* Outlier rejection: a jump larger than the threshold is replaced by the
     previous sample (exact branch shape of the generated code). *)
  for i = 1 to Array.length s - 1 do
    if Float.abs (s.(i) -. s.(i - 1)) >= g.jump_threshold then s.(i) <- s.(i - 1)
  done;
  let acc = ref 0. in
  for i = 0 to Array.length s - 1 do
    acc := !acc +. (fir_taps.(i) *. s.(i))
  done;
  !acc

(* One staggered covariance-propagation sweep: elements [cov_n+1+phase],
   stepping by [cov_phases], each updated from its left and upper
   neighbours.  Returns the confidence proxy (element cov_n+1). *)
let covariance_sweep st ~frame =
  let p = st.covariance in
  let n = cov_n in
  let phase = frame mod cov_phases in
  let k = ref (n + 1 + phase) in
  while !k < n * n do
    p.(!k) <-
      (cov_decay *. p.(!k)) +. (cov_coupling *. (p.(!k - 1) +. p.(!k - n))) +. cov_q;
    k := !k + cov_phases
  done;
  st.cov_proxy <- p.(n + 1)

(* Complementary fusion of the three sensor channels of one axis into the
   attitude estimate the control law consumes; the acceleration channel's
   weight is attenuated by the estimator confidence proxy. *)
let sensor_axis g ~cov_proxy ~position ~rate ~acceleration =
  let fp = sensor_channel g position in
  let fr = sensor_channel g rate in
  let fa = sensor_channel g acceleration in
  let w_acc = g.w_acceleration /. (1. +. cov_proxy) in
  (g.w_position *. fp) +. (g.w_rate *. fr) +. (w_acc *. fa)

(* One axis of the control law, mirrored instruction-for-instruction by
   Codegen.emit_control_axis; [frame] indexes the history ring (one entry per
   frame; a run never exceeds [history_length] frames). *)
let control_axis g st ~axis ~frame ~reference =
  if not (frame >= 0 && frame < history_length) then
    invalid_arg
      (Printf.sprintf "Controller.control_axis: frame %d outside [0, %d)" frame
         history_length);
  let filtered, integ, prev_e, history =
    match axis with
    | `X -> (st.filt_x, st.integ_x, st.prev_e_x, st.history_x)
    | `Y -> (st.filt_y, st.integ_y, st.prev_e_y, st.history_y)
  in
  let e = reference -. filtered in
  let integ = clamp ~limit:g.integ_max (integ +. (e *. g.dt)) in
  let deriv = (e -. prev_e) /. g.dt in
  let gain = 1. /. (1. +. (g.gain_sched_coeff *. Float.abs filtered)) in
  (* Trend over the recent filtered history (windowed mean). *)
  history.(frame) <- filtered;
  let wlen = if frame + 1 >= window then window else frame + 1 in
  let sum = ref 0. in
  for i = frame - wlen + 1 to frame do
    sum := !sum +. history.(i)
  done;
  let hist_mean = !sum /. float_of_int wlen in
  (* Scheduled attenuation via table lookup (truncating conversion). *)
  let idx = int_of_float (Float.abs filtered *. table_scale) in
  let idx = if idx >= table_size then table_size - 1 else idx in
  let table_gain = gain_table.(idx) in
  let u_raw =
    (gain *. ((g.kp *. e) +. (g.ki *. integ) +. (g.kd *. deriv)))
    +. (g.kt *. (filtered -. hist_mean))
  in
  let u = clamp ~limit:g.u_max (table_gain *. u_raw) in
  (match axis with
  | `X ->
      st.integ_x <- integ;
      st.prev_e_x <- e
  | `Y ->
      st.integ_y <- integ;
      st.prev_e_y <- e);
  u

let normalize g ~ux ~uy =
  let mag = sqrt ((ux *. ux) +. (uy *. uy)) in
  if mag >= g.u_total_max then begin
    let scale = g.u_total_max /. mag in
    (ux *. scale, uy *. scale)
  end
  else (ux, uy)

type axis_samples = { position : float array; rate : float array; acceleration : float array }

let frame g st ~frame ~samples_x ~samples_y ~ref_x ~ref_y =
  covariance_sweep st ~frame;
  st.filt_x <-
    sensor_axis g ~cov_proxy:st.cov_proxy ~position:samples_x.position
      ~rate:samples_x.rate ~acceleration:samples_x.acceleration;
  st.filt_y <-
    sensor_axis g ~cov_proxy:st.cov_proxy ~position:samples_y.position
      ~rate:samples_y.rate ~acceleration:samples_y.acceleration;
  let ux = control_axis g st ~axis:`X ~frame ~reference:ref_x in
  let uy = control_axis g st ~axis:`Y ~frame ~reference:ref_y in
  normalize g ~ux ~uy
