module Isa = Repro_isa
module Platform = Repro_platform
module Prng = Repro_rng.Prng

type task_spec = {
  name : string;
  entry : string;
  priority : int;
  period : int;
  offset : int;
}

type task_result = {
  spec : task_spec;
  response_times : float array;
  activations : int;
  skipped_releases : int;
}

type t = {
  per_task : task_result list;
  total_cycles : int;
  preemptions : int;
  idle_cycles : int;
}

(* Mutable per-task scheduling state. *)
type task_state = {
  spec_ : task_spec;
  mutable job : Isa.Executor.Stepper.t option;  (* in-flight activation *)
  mutable released_at : int;  (* release time of the in-flight job *)
  mutable next_release : int;
  mutable activation : int;  (* index of the next activation to release *)
  mutable responses : float list;  (* reversed *)
  mutable skipped : int;
}

let run ?(context_switch = 40) ?(frames = Mission.default_frames) ~core ~program ~layout
    ~memory ~tasks ~horizon () =
  (* [sort_uniq] silently merges duplicates — the length check turns that
     into a typed rejection: duplicate priorities make the fixed-priority
     order ambiguous, and shuffle policies must not inherit ambiguity. *)
  (match
     List.sort_uniq Int.compare (List.map (fun (s : task_spec) -> s.priority) tasks)
   with
  | unique when List.length unique <> List.length tasks ->
      invalid_arg "Rtos.run: duplicate priorities make the schedule ambiguous"
  | _ -> ());
  List.iter
    (fun (s : task_spec) ->
      if s.period <= 0 || s.offset < 0 then invalid_arg "Rtos.run: bad period/offset";
      (* validate the entry label up front *)
      ignore (Isa.Program.label_index program s.entry))
    tasks;
  let states =
    tasks
    |> List.sort (fun (a : task_spec) b -> Int.compare a.priority b.priority)
    |> List.map (fun spec_ ->
           {
             spec_;
             job = None;
             released_at = 0;
             next_release = spec_.offset;
             activation = 0;
             responses = [];
             skipped = 0;
           })
  in
  let now () = Platform.Core_sim.cycles core in
  let preemptions = ref 0 in
  let idle_cycles = ref 0 in
  let last_running : task_state option ref = ref None in
  (* Release every job whose time has come; a release finding the previous
     job still in flight is an overrun: counted and dropped. *)
  let release_pending () =
    List.iter
      (fun st ->
        while st.next_release <= now () do
          (match st.job with
          | Some _ -> st.skipped <- st.skipped + 1
          | None ->
              st.job <-
                Some
                  (Isa.Executor.Stepper.create ~entry:st.spec_.entry
                     ~init_regs:[ (10, st.activation mod frames) ]
                     ~program ~layout ~memory ());
              st.released_at <- st.next_release;
              st.activation <- st.activation + 1);
          st.next_release <- st.next_release + st.spec_.period
        done)
      states
  in
  let rec earliest_release = function
    | [] -> max_int
    | st :: rest -> Stdlib.min st.next_release (earliest_release rest)
  in
  let rec highest_ready = function
    | [] -> None
    | st :: rest -> ( match st.job with Some _ -> Some st | None -> highest_ready rest)
  in
  let continue = ref true in
  while !continue && now () < horizon do
    release_pending ();
    match highest_ready states with
    | None ->
        (* idle until the next release (or the horizon) *)
        let wake = Stdlib.min horizon (earliest_release states) in
        let gap = Stdlib.max 1 (wake - now ()) in
        idle_cycles := !idle_cycles + gap;
        Platform.Core_sim.advance core gap;
        if wake >= horizon then continue := false
    | Some st ->
        (match !last_running with
        | Some prev when prev != st ->
            (* the running job changed: charge the context switch, and if the
               displaced job is still in flight this was a preemption *)
            if prev.job <> None then incr preemptions;
            Platform.Core_sim.advance core context_switch
        | Some _ -> ()
        | None -> Platform.Core_sim.advance core context_switch);
        last_running := Some st;
        (match st.job with
        | None -> assert false
        | Some stepper -> (
            match Isa.Executor.Stepper.step stepper with
            | Some retired -> Platform.Core_sim.consume core retired
            | None -> assert false);
            if Isa.Executor.Stepper.finished stepper then begin
              st.responses <- float_of_int (now () - st.released_at) :: st.responses;
              st.job <- None
            end)
  done;
  {
    per_task =
      List.map
        (fun st ->
          {
            spec = st.spec_;
            response_times = Array.of_list (List.rev st.responses);
            activations = List.length st.responses;
            skipped_releases = st.skipped;
          })
        states;
    total_cycles = now ();
    preemptions = !preemptions;
    idle_cycles = !idle_cycles;
  }

let tvca_tasks ~period ?(release_jitter = 0) () =
  [
    { name = "sensor"; entry = "task_sensor"; priority = 0; period; offset = 0 };
    {
      name = "control_x";
      entry = "task_control_x";
      priority = 1;
      period;
      offset = release_jitter;
    };
    {
      name = "control_y";
      entry = "task_control_y";
      priority = 2;
      period;
      offset = 2 * release_jitter;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Schedule-randomization policies (TaskShuffler++-style) *)

type policy = Fixed_priority | Priority_shuffle | Offset_jitter

let all_policies = [ Fixed_priority; Priority_shuffle; Offset_jitter ]

let policy_name = function
  | Fixed_priority -> "fixed"
  | Priority_shuffle -> "shuffle"
  | Offset_jitter -> "jitter"

let policy_of_string = function
  | "fixed" -> Ok Fixed_priority
  | "shuffle" -> Ok Priority_shuffle
  | "jitter" -> Ok Offset_jitter
  | s -> Error (Printf.sprintf "unknown policy %S (expected fixed|shuffle|jitter)" s)

(* Tasks may legally swap priorities only within an equal-period class:
   under implicit deadlines (deadline = period), rate-monotonic priority
   order is optimal, so permuting across period classes could turn a
   feasible task set infeasible.  Within a class, any order meets the same
   deadlines — that is the shuffle's legal freedom. *)
let period_classes tasks =
  let periods =
    List.sort_uniq Int.compare (List.map (fun (s : task_spec) -> s.period) tasks)
  in
  List.map
    (fun p -> List.filter (fun (s : task_spec) -> s.period = p) tasks)
    periods

let apply_policy policy ~seed ~max_jitter tasks =
  if max_jitter < 0 then invalid_arg "Rtos.apply_policy: max_jitter must be >= 0";
  match policy with
  | Fixed_priority -> tasks
  | Priority_shuffle ->
      let prng = Prng.create seed in
      (* Permute priorities within each equal-period class.  Classes are
         visited in ascending period order and members in task-list order,
         so the draw sequence — and hence the schedule — is a pure
         function of [seed]. *)
      let assignment = Hashtbl.create 8 in
      List.iter
        (fun cls ->
          let prios = Array.of_list (List.map (fun (s : task_spec) -> s.priority) cls) in
          Prng.shuffle_in_place prng prios;
          List.iteri (fun i (s : task_spec) -> Hashtbl.replace assignment s.name prios.(i)) cls)
        (period_classes tasks);
      List.map (fun (s : task_spec) -> { s with priority = Hashtbl.find assignment s.name }) tasks
  | Offset_jitter ->
      let prng = Prng.create seed in
      (* Delay each release uniformly in [0, max_jitter]; offsets only grow,
         so they stay non-negative.  Draws follow task-list order. *)
      List.map
        (fun (s : task_spec) -> { s with offset = s.offset + Prng.int_below prng (max_jitter + 1) })
        tasks

let schedule_signature tasks =
  tasks
  |> List.map (fun (s : task_spec) -> Printf.sprintf "%s:%d:%d" s.name s.priority s.offset)
  |> String.concat ";"

type randomization = {
  schedules : int;
  distinct : int;
  entropy_bits : float;
  vulnerability : float;
}

let randomization_of_signatures sigs =
  if sigs = [] then invalid_arg "Rtos.randomization_of_signatures: empty signature list";
  let freq = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace freq s (1 + (try Hashtbl.find freq s with Not_found -> 0)))
    sigs;
  let n = List.length sigs in
  let counts =
    Hashtbl.fold (fun s c acc -> (s, c) :: acc) freq []
    (* sorted before the float fold so entropy is bit-deterministic
       whatever order the hashtable yields *)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let fn = float_of_int n in
  let entropy_bits =
    List.fold_left
      (fun acc (_, c) ->
        let p = float_of_int c /. fn in
        acc -. (p *. (log p /. log 2.)))
      0. counts
  in
  let max_count = List.fold_left (fun acc (_, c) -> Stdlib.max acc c) 0 counts in
  {
    schedules = n;
    distinct = List.length counts;
    entropy_bits;
    vulnerability = float_of_int max_count /. fn;
  }

let pp_randomization ppf r =
  Format.fprintf ppf
    "%d schedules, %d distinct, entropy %.3f bits, attacker best-guess %.4f" r.schedules
    r.distinct r.entropy_bits r.vulnerability

let pp ppf t =
  Format.fprintf ppf "@[<v>%d cycles simulated, %d preemptions, %d idle cycles@,"
    t.total_cycles t.preemptions t.idle_cycles;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s prio %d: %d activations, %d skipped" r.spec.name
        r.spec.priority r.activations r.skipped_releases;
      if r.activations > 0 then begin
        let worst = Array.fold_left Float.max r.response_times.(0) r.response_times in
        let mean =
          Array.fold_left ( +. ) 0. r.response_times /. float_of_int r.activations
        in
        Format.fprintf ppf ", response mean %.0f / max %.0f" mean worst
      end;
      Format.fprintf ppf "@,")
    t.per_task;
  Format.fprintf ppf "@]"
