(** Standardized effect sizes for two-sample comparisons.

    A small p-value alone does not make a timing leak exploitable: with
    enough runs, Welch's test flags differences of a fraction of a cycle.
    Cohen's d reports how large the difference is relative to the pooled
    spread, so leak verdicts can pair statistical significance with
    practical magnitude. *)

(** [cohens_d xs ys] = (mean xs - mean ys) / pooled sample std.

    Raises [Invalid_argument] if either sample has fewer than two
    observations.  When both samples are constant the pooled std is zero:
    equal constants give [0.], distinct constants give [+/-infinity]. *)
val cohens_d : float array -> float array -> float

(** Conventional label for |d|: ["negligible"] (< 0.2), ["small"]
    (< 0.5), ["medium"] (< 0.8) or ["large"]. *)
val magnitude : float -> string
