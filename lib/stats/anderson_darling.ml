type result = { statistic : float; p_value : float; accepted : bool }

(* Asymptotic case-0 critical values (Stephens 1974). *)
let table = [ (0.10, 1.933); (0.05, 2.492); (0.025, 3.070); (0.01, 3.857) ]

let critical_value alpha =
  match List.assoc_opt alpha table with
  | Some c -> c
  | None ->
      invalid_arg "Anderson_darling.test: alpha must be 0.10, 0.05, 0.025 or 0.01"

(* Log-linear interpolation of the (alpha, critical) table, clamped. *)
let approximate_p_value a2 =
  if a2 <= 0. then 0.5
  else begin
    let pts = List.map (fun (alpha, c) -> (c, log alpha)) table in
    let rec interpolate = function
      | (c1, l1) :: ((c2, l2) :: _ as rest) ->
          if a2 <= c1 then
            (* extrapolate above 10%: clamp at 0.5 *)
            Float.min 0.5 (exp (l1 +. ((a2 -. c1) *. (l2 -. l1) /. (c2 -. c1))))
          else if a2 <= c2 then exp (l1 +. ((a2 -. c1) *. (l2 -. l1) /. (c2 -. c1)))
          else interpolate rest
      | [ (c_last, l_last) ] ->
          (* beyond the 1% point: keep the last slope, floor at 0.001 *)
          Float.max 0.001 (exp (l_last +. ((a2 -. c_last) *. -1.)))
      | [] -> 0.5
    in
    Float.max 0.001 (Float.min 0.5 (interpolate pts))
  end

let test ?(alpha = 0.05) xs ~cdf =
  let n = Array.length xs in
  if n < 5 then invalid_arg "Anderson_darling.test: need at least 5 observations";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let nf = float_of_int n in
  (* Clamp F values away from {0,1}: an observation outside the model's
     support would otherwise produce infinities; the clamp turns it into a
     very large (correctly damning) statistic instead. *)
  let eps = 1e-12 in
  let f i = Float.max eps (Float.min (1. -. eps) (cdf sorted.(i))) in
  let sum = ref 0. in
  for i = 0 to n - 1 do
    let weight = float_of_int ((2 * (i + 1)) - 1) in
    sum := !sum +. (weight *. (log (f i) +. Float.log1p (-.f (n - 1 - i))))
  done;
  let statistic = -.nf -. (!sum /. nf) in
  {
    statistic;
    p_value = approximate_p_value statistic;
    accepted = statistic < critical_value alpha;
  }

let pp_result ppf r =
  Format.fprintf ppf "A2=%.4f p~%.3f -> %s" r.statistic r.p_value
    (if r.accepted then "fit not rejected" else "fit REJECTED")
