let acf xs ~lag =
  let n = Array.length xs in
  if not (lag >= 1 && lag < n) then
    invalid_arg "Autocorrelation.acf: lag must satisfy 1 <= lag < n";
  let mean = Descriptive.mean xs in
  let c0 = ref 0. and ck = ref 0. in
  for i = 0 to n - 1 do
    let d = xs.(i) -. mean in
    c0 := !c0 +. (d *. d);
    if i + lag < n then ck := !ck +. (d *. (xs.(i + lag) -. mean))
  done;
  if !c0 = 0. then 0. else !ck /. !c0

(* Single sweep: the mean and the lag-0 autocovariance are hoisted out of
   the per-lag loop (the per-lag [acf] recomputes both every call), and all
   lag products accumulate during one pass over the data.  Each lag's sum
   collects its terms in ascending index order — the same order as the
   per-lag reference — so every returned value is bit-identical to
   [acf ~lag]. *)
let acf_up_to xs ~max_lag =
  if max_lag <= 0 then Array.init max_lag (fun _ -> 0.)
  else begin
    let n = Array.length xs in
    if max_lag >= n then
      invalid_arg "Autocorrelation.acf: lag must satisfy 1 <= lag < n";
    let mean = Descriptive.mean xs in
    let d = Array.make n 0. in
    let c0 = ref 0. in
    for i = 0 to n - 1 do
      let di = xs.(i) -. mean in
      d.(i) <- di;
      c0 := !c0 +. (di *. di)
    done;
    let ck = Array.make max_lag 0. in
    for i = 0 to n - 1 do
      let di = d.(i) in
      let kmax = Stdlib.min max_lag (n - 1 - i) in
      for k = 1 to kmax do
        ck.(k - 1) <- ck.(k - 1) +. (di *. d.(i + k))
      done
    done;
    if !c0 = 0. then Array.make max_lag 0.
    else Array.map (fun c -> c /. !c0) ck
  end
