let acf xs ~lag =
  let n = Array.length xs in
  if not (lag >= 1 && lag < n) then
    invalid_arg "Autocorrelation.acf: lag must satisfy 1 <= lag < n";
  let mean = Descriptive.mean xs in
  let c0 = ref 0. and ck = ref 0. in
  for i = 0 to n - 1 do
    let d = xs.(i) -. mean in
    c0 := !c0 +. (d *. d);
    if i + lag < n then ck := !ck +. (d *. (xs.(i + lag) -. mean))
  done;
  if !c0 = 0. then 0. else !ck /. !c0

let acf_up_to xs ~max_lag = Array.init max_lag (fun i -> acf xs ~lag:(i + 1))
