(** Kolmogorov-Smirnov tests.

    The paper checks identical distribution with the {e two-sample} KS test
    at the 5% level (p-value 0.45 reported): the sample of execution times is
    split into two halves which must be drawn from the same distribution.
    The one-sample variant is used by the EVT machinery as a goodness-of-fit
    diagnostic. *)

type result = {
  statistic : float;  (** the sup-distance D *)
  p_value : float;
  same_distribution : bool;
}

(** [two_sample ?alpha xs ys] with the asymptotic Kolmogorov p-value using
    the effective size n_e = n m / (n + m).

    @raise Invalid_argument if either sample is empty. *)
val two_sample : ?alpha:float -> float array -> float array -> result

(** [one_sample ?alpha xs ~cdf] tests [xs] against a continuous model CDF.

    @raise Invalid_argument if [xs] is empty. *)
val one_sample : ?alpha:float -> float array -> cdf:(float -> float) -> result

(** [split_halves xs] returns the even- and odd-indexed subsamples, the
    standard MBPTA way of forming the two samples for [two_sample]. *)
val split_halves : float array -> float array * float array

val pp_result : Format.formatter -> result -> unit
