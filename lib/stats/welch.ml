type result = {
  t_statistic : float;
  df : float;
  p_value : float;
  mean_a : float;
  mean_b : float;
  n_a : int;
  n_b : int;
  alpha : float;
  equal_means : bool;
}

(* Welch–Satterthwaite degrees of freedom, computed in log space so that
   wildly mismatched variances (e.g. cycle counts vs nanoseconds) cannot
   overflow the intermediate squares.  Exact zero-variance terms drop out
   of the formula analytically instead of producing 0/0. *)
let satterthwaite_df ~va ~na ~vb ~nb =
  let fa = float_of_int na and fb = float_of_int nb in
  if va <= 0. && vb <= 0. then invalid_arg "Welch.satterthwaite_df: both variances zero"
  else if va <= 0. then fb -. 1.
  else if vb <= 0. then fa -. 1.
  else if not (Float.is_finite va) || not (Float.is_finite vb) then
    (* An overflowed sample variance dominates the formula analytically:
       df -> that sample's n - 1 (the conservative minimum when both
       overflow), never nan. *)
    if not (Float.is_finite va) && not (Float.is_finite vb) then Float.min fa fb -. 1.
    else if Float.is_finite vb then fa -. 1.
    else fb -. 1.
  else begin
    (* log-sum-exp over la = log(va/na), lb = log(vb/nb). *)
    let la = log va -. log fa and lb = log vb -. log fb in
    let lse x y =
      let m = Float.max x y in
      m +. log (exp (x -. m) +. exp (y -. m))
    in
    let log_num = 2. *. lse la lb in
    let log_den = lse ((2. *. la) -. log (fa -. 1.)) ((2. *. lb) -. log (fb -. 1.)) in
    exp (log_num -. log_den)
  end

let t_test ?(alpha = 0.05) xs ys =
  if not (alpha > 0. && alpha < 1.) then invalid_arg "Welch.t_test: alpha outside (0, 1)";
  let n_a = Array.length xs and n_b = Array.length ys in
  if n_a < 2 || n_b < 2 then
    invalid_arg "Welch.t_test: each sample needs at least two observations";
  let mean_a = Descriptive.mean xs and mean_b = Descriptive.mean ys in
  let va = Descriptive.sample_variance xs and vb = Descriptive.sample_variance ys in
  let diff = mean_a -. mean_b in
  let se2 = (va /. float_of_int n_a) +. (vb /. float_of_int n_b) in
  let t_statistic, df, p_value =
    if se2 <= 0. then
      (* Both samples are constant: the test degenerates to an exact
         comparison of the two (noise-free) means. *)
      if diff = 0. then (0., Float.infinity, 1.)
      else ((if diff > 0. then Float.infinity else Float.neg_infinity), Float.infinity, 0.)
    else begin
      let t = diff /. sqrt se2 in
      let df = satterthwaite_df ~va ~na:n_a ~vb ~nb:n_b in
      let p = Float.min 1. (2. *. Special.student_t_survival ~df (Float.abs t)) in
      (t, df, p)
    end
  in
  { t_statistic; df; p_value; mean_a; mean_b; n_a; n_b; alpha; equal_means = p_value >= alpha }

let pp_result ppf r =
  Format.fprintf ppf
    "Welch t-test: t = %.4f, df = %.2f, p = %.4g (alpha = %g) -> %s@ means %.6g (n=%d) vs %.6g (n=%d)"
    r.t_statistic r.df r.p_value r.alpha
    (if r.equal_means then "means indistinguishable" else "means differ")
    r.mean_a r.n_a r.mean_b r.n_b
