type t = { xs : float array }

let of_sample xs =
  if Array.length xs = 0 then invalid_arg "Ecdf.of_sample: empty sample";
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  { xs = copy }

let of_sorted xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Ecdf.of_sorted: empty sample";
  for i = 1 to n - 1 do
    if Float.compare xs.(i - 1) xs.(i) > 0 then
      invalid_arg "Ecdf.of_sorted: sample not sorted ascending"
  done;
  { xs = Array.copy xs }

let size t = Array.length t.xs
let order_statistic t i = t.xs.(i)
let sorted t = t.xs

(* Count of observations <= x, by binary search for the rightmost index. *)
let count_le t x =
  let n = Array.length t.xs in
  let rec go lo hi =
    (* invariant: xs.(lo-1) <= x < xs.(hi) with virtual sentinels *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.xs.(mid) <= x then go (mid + 1) hi else go lo mid
    end
  in
  go 0 n

let cdf t x = float_of_int (count_le t x) /. float_of_int (size t)
let ccdf t x = 1. -. cdf t x

let quantile t p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Ecdf.quantile: p outside [0, 1]";
  let n = size t in
  if n = 1 then t.xs.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    t.xs.(lo) +. (frac *. (t.xs.(hi) -. t.xs.(lo)))
  end

let points t =
  let n = size t in
  let nf = float_of_int n in
  let rec go i acc =
    if i < 0 then acc
    else if i + 1 < n && t.xs.(i) = t.xs.(i + 1) then go (i - 1) acc
    else go (i - 1) ((t.xs.(i), float_of_int (i + 1) /. nf) :: acc)
  in
  go (n - 1) []

let ccdf_points t =
  points t
  |> List.filter_map (fun (x, p) -> if p < 1. then Some (x, 1. -. p) else None)
