(* Input guards are real [Invalid_argument] raises, never [assert]: these
   kernels gate the paper's whole evidential chain, and an assert silently
   vanishes under [-noassert] — exactly the release configuration a flight
   build would use. *)
let require_nonempty fn xs =
  if Array.length xs = 0 then invalid_arg (fn ^ ": empty sample")

let mean xs =
  require_nonempty "Descriptive.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

(* k-th central moment about a precomputed mean — shared by the public
   [centered_moment] and by [summarize], which computes the mean once. *)
let centered_moment_about m xs k =
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** float_of_int k)) 0. xs
  /. float_of_int (Array.length xs)

let centered_moment xs k =
  require_nonempty "Descriptive.centered_moment" xs;
  centered_moment_about (mean xs) xs k

let variance xs = centered_moment xs 2

let sample_variance_about m xs =
  let n = Array.length xs in
  centered_moment_about m xs 2 *. float_of_int n /. float_of_int (n - 1)

let sample_variance xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Descriptive.sample_variance: need at least 2 observations";
  sample_variance_about (mean xs) xs

let std xs = sqrt (variance xs)
let sample_std xs = sqrt (sample_variance xs)

let min xs =
  require_nonempty "Descriptive.min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  require_nonempty "Descriptive.max" xs;
  Array.fold_left Float.max xs.(0) xs

let coefficient_of_variation xs = sample_std xs /. mean xs

let skewness xs =
  let m2 = centered_moment xs 2 and m3 = centered_moment xs 3 in
  m3 /. (m2 ** 1.5)

let kurtosis_excess xs =
  let m2 = centered_moment xs 2 and m4 = centered_moment xs 4 in
  (m4 /. (m2 *. m2)) -. 3.

(* Type-7 quantile over an already-sorted array; the public [quantile]
   sorts a private copy, [summarize] reuses one shared sorted copy. *)
let quantile_of_sorted sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let quantile xs p =
  require_nonempty "Descriptive.quantile" xs;
  if not (p >= 0. && p <= 1.) then invalid_arg "Descriptive.quantile: p outside [0, 1]";
  let sorted = Array.copy xs in
  (* Float.compare, not polymorphic compare: a total order on floats that
     never boxes and sorts any stray NaN deterministically. *)
  Array.sort Float.compare sorted;
  quantile_of_sorted sorted p

let quantile_sorted sorted p =
  require_nonempty "Descriptive.quantile_sorted" sorted;
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Descriptive.quantile_sorted: p outside [0, 1]";
  quantile_of_sorted sorted p

let median xs = quantile xs 0.5

type summary = {
  n : int;
  mean : float;
  std : float;
  minimum : float;
  maximum : float;
  median : float;
  q1 : float;
  q3 : float;
  cv : float;
}

(* One sort and one mean for the whole record (the old implementation
   sorted three times for median/q1/q3 and recomputed the mean twice via
   [sample_std]/[coefficient_of_variation]); every field is bit-identical
   to the multi-pass version, which test_stats.ml pins. *)
let summarize xs =
  let n = Array.length xs in
  require_nonempty "Descriptive.summarize" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let mean = mean xs in
  let std = if n >= 2 then sqrt (sample_variance_about mean xs) else 0. in
  {
    n;
    mean;
    std;
    minimum = sorted.(0);
    maximum = sorted.(n - 1);
    median = quantile_of_sorted sorted 0.5;
    q1 = quantile_of_sorted sorted 0.25;
    q3 = quantile_of_sorted sorted 0.75;
    cv = (if n >= 2 && mean <> 0. then std /. mean else 0.);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f std=%.2f min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f cv=%.4f" s.n s.mean
    s.std s.minimum s.q1 s.median s.q3 s.maximum s.cv
