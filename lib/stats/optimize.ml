let golden_ratio = (sqrt 5. -. 1.) /. 2.

let golden_section ~f ~lo ~hi ?(tol = 1e-9) () =
  if not (hi > lo) then invalid_arg "Optimize.golden_section: need hi > lo";
  let rec go a b c fc d fd =
    (* invariant: c < d, both inside [a, b] at golden sections *)
    if b -. a < tol then (a +. b) /. 2.
    else if fc < fd then begin
      let b = d in
      let d = c and fd = fc in
      let c = b -. (golden_ratio *. (b -. a)) in
      go a b c (f c) d fd
    end
    else begin
      let a = c in
      let c = d and fc = fd in
      let d = a +. (golden_ratio *. (b -. a)) in
      go a b c fc d (f d)
    end
  in
  let c = hi -. (golden_ratio *. (hi -. lo)) in
  let d = lo +. (golden_ratio *. (hi -. lo)) in
  go lo hi c (f c) d (f d)

let nelder_mead ~f ~start ?(step = 0.1) ?(tol = 1e-10) ?(max_iter = 5000) () =
  let n = Array.length start in
  if n < 1 then invalid_arg "Optimize.nelder_mead: empty start vector";
  (* Initial simplex: start plus one perturbed vertex per dimension. *)
  let simplex =
    Array.init (n + 1) (fun i ->
        let v = Array.copy start in
        if i > 0 then begin
          let j = i - 1 in
          let delta = if v.(j) = 0. then step else step *. Float.abs v.(j) in
          v.(j) <- v.(j) +. delta
        end;
        v)
  in
  let values = Array.map f simplex in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun i j -> compare values.(i) values.(j)) idx;
    idx
  in
  let centroid except =
    let c = Array.make n 0. in
    Array.iteri
      (fun i v ->
        if i <> except then Array.iteri (fun j x -> c.(j) <- c.(j) +. x) v)
      simplex;
    Array.map (fun x -> x /. float_of_int n) c
  in
  let combine a alpha b beta = Array.init n (fun j -> (alpha *. a.(j)) +. (beta *. b.(j))) in
  let rec iterate k =
    let idx = order () in
    let best = idx.(0) and worst = idx.(n) and second_worst = idx.(n - 1) in
    let spread = Float.abs (values.(worst) -. values.(best)) in
    let scale = 1. +. Float.abs values.(best) in
    if k >= max_iter || spread /. scale < tol then (Array.copy simplex.(best), values.(best))
    else begin
      let c = centroid worst in
      let reflected = combine c 2. simplex.(worst) (-1.) in
      let fr = f reflected in
      if fr < values.(best) then begin
        (* Try expanding further along the same direction. *)
        let expanded = combine c 3. simplex.(worst) (-2.) in
        let fe = f expanded in
        if fe < fr then begin
          simplex.(worst) <- expanded;
          values.(worst) <- fe
        end
        else begin
          simplex.(worst) <- reflected;
          values.(worst) <- fr
        end;
        iterate (k + 1)
      end
      else if fr < values.(second_worst) then begin
        simplex.(worst) <- reflected;
        values.(worst) <- fr;
        iterate (k + 1)
      end
      else begin
        let contracted = combine c 0.5 simplex.(worst) 0.5 in
        let fc = f contracted in
        if fc < values.(worst) then begin
          simplex.(worst) <- contracted;
          values.(worst) <- fc;
          iterate (k + 1)
        end
        else begin
          (* Shrink everything toward the best vertex. *)
          Array.iteri
            (fun i v ->
              if i <> best then begin
                simplex.(i) <- combine simplex.(best) 0.5 v 0.5;
                values.(i) <- f simplex.(i)
              end)
            simplex;
          iterate (k + 1)
        end
      end
    end
  in
  iterate 0

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys || n < 2 then
    invalid_arg "Optimize.linear_fit: need two equal-length samples of size >= 2";
  let nf = float_of_int n in
  let sx = Array.fold_left ( +. ) 0. xs and sy = Array.fold_left ( +. ) 0. ys in
  let mx = sx /. nf and my = sy /. nf in
  let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if not (!sxx > 0.) then invalid_arg "Optimize.linear_fit: degenerate xs (zero variance)";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy) in
  (intercept, slope, r2)
