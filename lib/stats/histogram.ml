type t = { lo : float; hi : float; counts : int array; total : int }

let create ~bins xs =
  if bins < 1 then invalid_arg "Histogram.create: bins must be >= 1";
  if Array.length xs = 0 then invalid_arg "Histogram.create: empty sample";
  let lo = Descriptive.min xs and hi = Descriptive.max xs in
  let counts = Array.make bins 0 in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = Stdlib.max 0 (Stdlib.min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    xs;
  { lo; hi; counts; total = Array.length xs }

let bins t = Array.length t.counts
let total t = t.total
let count t i = t.counts.(i)

let bounds t i =
  let n = bins t in
  let width = if t.hi > t.lo then (t.hi -. t.lo) /. float_of_int n else 1. in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let pp ?(width = 50) ppf t =
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bounds t i in
      let bar = String.make (c * width / peak) '#' in
      Format.fprintf ppf "[%10.1f, %10.1f) %6d %s@." lo hi c bar)
    t.counts
