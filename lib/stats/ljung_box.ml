type result = { statistic : float; lags : int; p_value : float; independent : bool }

let test ?(alpha = 0.05) ?lags xs =
  let n = Array.length xs in
  (* A real guard, not an assert: under [-noassert] an assert vanishes and
     an n < 10 sample would come back with a garbage p-value — the exact
     silent-degradation mode a release (flight) build must not have. *)
  if n < 10 then invalid_arg "Ljung_box.test: need at least 10 observations";
  let lags =
    match lags with
    | Some h ->
        if not (h >= 1 && h < n) then
          invalid_arg "Ljung_box.test: lags must satisfy 1 <= lags < n";
        h
    | None -> Stdlib.min 20 (Stdlib.max 1 (n / 5))
  in
  let nf = float_of_int n in
  (* One ACF sweep for every lag at once (mean and c0 hoisted) instead of a
     full pass per lag; the values — and hence Q — are bit-identical. *)
  let rs = Autocorrelation.acf_up_to xs ~max_lag:lags in
  let q = ref 0. in
  for k = 1 to lags do
    let r = rs.(k - 1) in
    q := !q +. (r *. r /. (nf -. float_of_int k))
  done;
  let statistic = nf *. (nf +. 2.) *. !q in
  let p_value = Special.chi_square_survival ~df:lags statistic in
  { statistic; lags; p_value; independent = p_value >= alpha }

let pp_result ppf r =
  Format.fprintf ppf "Q=%.3f (h=%d) p=%.4f -> %s" r.statistic r.lags r.p_value
    (if r.independent then "independence not rejected" else "independence REJECTED")
