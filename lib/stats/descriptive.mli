(** Descriptive statistics over float arrays.

    All functions raise [Invalid_argument] on empty input — a real guard
    that survives [-noassert] builds; [sample_variance] additionally
    needs at least two observations. *)

val mean : float array -> float

(** Population variance (divides by n). *)
val variance : float array -> float

(** Unbiased sample variance (divides by n-1). *)
val sample_variance : float array -> float

val std : float array -> float
val sample_std : float array -> float

val min : float array -> float
val max : float array -> float

(** Coefficient of variation: sample std / mean. *)
val coefficient_of_variation : float array -> float

(** Sample skewness (g1, biased moment estimator). *)
val skewness : float array -> float

(** Excess kurtosis (g2 = m4/m2^2 - 3). *)
val kurtosis_excess : float array -> float

(** [quantile xs p] with [p] in [[0, 1]]: linear interpolation between order
    statistics (R type-7, the common default).  [xs] need not be sorted. *)
val quantile : float array -> float -> float

(** [quantile_sorted sorted p] — {!quantile} over an array the caller has
    already sorted ascending (no copy, no re-sort); bit-identical to
    [quantile] on the same multiset.  For pipelines that sort the sample
    once and thread it through every consumer. *)
val quantile_sorted : float array -> float -> float

val median : float array -> float

(** Everything at once, from a single sorted copy and a single mean. *)
type summary = {
  n : int;
  mean : float;
  std : float;
  minimum : float;
  maximum : float;
  median : float;
  q1 : float;
  q3 : float;
  cv : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
