let cohens_d xs ys =
  let n_a = Array.length xs and n_b = Array.length ys in
  if n_a < 2 || n_b < 2 then
    invalid_arg "Effect_size.cohens_d: each sample needs at least two observations";
  let mean_a = Descriptive.mean xs and mean_b = Descriptive.mean ys in
  let va = Descriptive.sample_variance xs and vb = Descriptive.sample_variance ys in
  let fa = float_of_int n_a and fb = float_of_int n_b in
  let pooled = (((fa -. 1.) *. va) +. ((fb -. 1.) *. vb)) /. (fa +. fb -. 2.) in
  let diff = mean_a -. mean_b in
  if pooled <= 0. then
    (* Both samples constant: zero spread, so any mean difference is an
       infinitely large standardized effect. *)
    if diff = 0. then 0.
    else if diff > 0. then Float.infinity
    else Float.neg_infinity
  else diff /. sqrt pooled

let magnitude d =
  let a = Float.abs d in
  if a < 0.2 then "negligible"
  else if a < 0.5 then "small"
  else if a < 0.8 then "medium"
  else "large"
