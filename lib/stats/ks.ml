type result = { statistic : float; p_value : float; same_distribution : bool }

let p_value_of_d ~n_effective d =
  let sqrt_ne = sqrt n_effective in
  (* Stephens' small-sample correction of the asymptotic distribution. *)
  let lambda = (sqrt_ne +. 0.12 +. (0.11 /. sqrt_ne)) *. d in
  Special.kolmogorov_survival lambda

let two_sample ?(alpha = 0.05) xs ys =
  let n = Array.length xs and m = Array.length ys in
  (* Real guards, not asserts: these feed the i.i.d. gate of the whole
     analysis and must survive a [-noassert] release build. *)
  if n = 0 || m = 0 then invalid_arg "Ks.two_sample: empty sample";
  let sx = Array.copy xs and sy = Array.copy ys in
  (* Float.compare: total order, no polymorphic-compare boxing, and any
     stray NaN sorts deterministically instead of corrupting the walk. *)
  Array.sort Float.compare sx;
  Array.sort Float.compare sy;
  (* Merge-walk both sorted samples tracking the CDF gap. *)
  let rec walk i j d =
    if i >= n && j >= m then d
    else if i >= n then
      (* The rest of [ys] opens the gap |1 - j/m| at most at the current j. *)
      Float.max d (1. -. (float_of_int j /. float_of_int m))
    else if j >= m then Float.max d (1. -. (float_of_int i /. float_of_int n))
    else begin
      let x = sx.(i) and y = sy.(j) in
      let v = Float.min x y in
      let rec adv_i i = if i < n && sx.(i) <= v then adv_i (i + 1) else i in
      let rec adv_j j = if j < m && sy.(j) <= v then adv_j (j + 1) else j in
      let i = adv_i i and j = adv_j j in
      let fx = float_of_int i /. float_of_int n
      and fy = float_of_int j /. float_of_int m in
      walk i j (Float.max d (Float.abs (fx -. fy)))
    end
  in
  let d = walk 0 0 0. in
  let n_effective = float_of_int n *. float_of_int m /. float_of_int (n + m) in
  let p = p_value_of_d ~n_effective d in
  { statistic = d; p_value = p; same_distribution = p >= alpha }

let one_sample ?(alpha = 0.05) xs ~cdf =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Ks.one_sample: empty sample";
  let sx = Array.copy xs in
  Array.sort Float.compare sx;
  let nf = float_of_int n in
  let d = ref 0. in
  for i = 0 to n - 1 do
    let f = cdf sx.(i) in
    let above = (float_of_int (i + 1) /. nf) -. f in
    let below = f -. (float_of_int i /. nf) in
    d := Float.max !d (Float.max above below)
  done;
  let p = p_value_of_d ~n_effective:nf !d in
  { statistic = !d; p_value = p; same_distribution = p >= alpha }

let split_halves xs =
  let n = Array.length xs in
  let evens = Array.init ((n + 1) / 2) (fun i -> xs.(2 * i)) in
  let odds = Array.init (n / 2) (fun i -> xs.((2 * i) + 1)) in
  (evens, odds)

let pp_result ppf r =
  Format.fprintf ppf "D=%.4f p=%.4f -> %s" r.statistic r.p_value
    (if r.same_distribution then "identical distribution not rejected"
     else "identical distribution REJECTED")
