(** Sample autocorrelation function, the ingredient of the Ljung-Box
    independence test applied by the paper to the execution-time series. *)

(** [acf xs ~lag] is the sample autocorrelation at a single [lag >= 1]
    (biased estimator, normalized by the lag-0 autocovariance). *)
val acf : float array -> lag:int -> float

(** [acf_up_to xs ~max_lag] returns [| r_1; ...; r_max_lag |], bit-identical
    to calling {!acf} per lag but computed in a single sweep: the mean and
    the lag-0 autocovariance are evaluated once instead of [max_lag] times,
    and all lag sums accumulate during one pass over the data. *)
val acf_up_to : float array -> max_lag:int -> float array
