(** Welch's unequal-variance two-sample t-test.

    The workhorse of the timing-leak detector: given two campaigns of
    execution-time measurements, decide whether their means are
    statistically distinguishable at a configurable [alpha].  Degrees of
    freedom come from the Welch–Satterthwaite equation evaluated in log
    space (robust to wildly mismatched variance magnitudes), and
    degenerate inputs — zero-variance and identical samples — are handled
    by explicit guards rather than NaN propagation, so verdicts survive
    [-noassert] builds. *)

type result = {
  t_statistic : float;  (** Welch t statistic; [+/-infinity] when both samples
                            are constant but unequal. *)
  df : float;  (** Welch–Satterthwaite degrees of freedom (fractional);
                   [infinity] in the fully degenerate constant-sample case. *)
  p_value : float;  (** Two-sided p-value under the Student-t null. *)
  mean_a : float;
  mean_b : float;
  n_a : int;
  n_b : int;
  alpha : float;  (** Significance level the verdict was taken at. *)
  equal_means : bool;  (** [p_value >= alpha]: no detectable difference. *)
}

(** [t_test ?alpha xs ys] runs the two-sided Welch test.

    Raises [Invalid_argument] if [alpha] is outside (0, 1) or either
    sample has fewer than two observations.  Zero-variance samples are
    legal: if both are constant the test degenerates to exact comparison
    of the means (identical constants give [p = 1.], distinct constants
    give [p = 0.]); if only one is constant the other sample's
    [n - 1] is used as degrees of freedom. *)
val t_test : ?alpha:float -> float array -> float array -> result

val pp_result : Format.formatter -> result -> unit
