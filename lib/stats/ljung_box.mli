(** Ljung-Box portmanteau test of independence.

    The paper tests independence of the 3,000 execution-time observations
    with Ljung-Box at a 5% significance level and reports a p-value of 0.83.
    The statistic is
      Q = n (n + 2) sum_{k=1..h} r_k^2 / (n - k),
    chi-square with h degrees of freedom under H0 (i.i.d. data). *)

type result = { statistic : float; lags : int; p_value : float; independent : bool }

(** [test ?alpha ?lags xs] — [alpha] defaults to 0.05 (the paper's level) and
    [lags] to [min 20 (n/5)], a common rule of thumb.

    @raise Invalid_argument if [xs] has fewer than 10 observations or
    [lags] is outside [[1, n)]; the guard survives [-noassert] builds. *)
val test : ?alpha:float -> ?lags:int -> float array -> result

val pp_result : Format.formatter -> result -> unit
