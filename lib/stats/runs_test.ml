type result = { runs : int; expected : float; z : float; p_value : float; random : bool }

let test ?(alpha = 0.05) xs =
  let n = Array.length xs in
  if n < 20 then invalid_arg "Runs_test.test: need at least 20 observations";
  let med = Descriptive.median xs in
  (* Observations equal to the median are dropped, the usual convention. *)
  let signs =
    Array.to_list xs |> List.filter_map (fun x -> if x = med then None else Some (x > med))
  in
  let signs = Array.of_list signs in
  let m = Array.length signs in
  let n_plus = Array.fold_left (fun a s -> if s then a + 1 else a) 0 signs in
  let n_minus = m - n_plus in
  if n_plus = 0 || n_minus = 0 then
    (* Degenerate series (constant, or one-sided around the median): no
       evidence either way, so randomness cannot be rejected. *)
    { runs = Stdlib.max 1 m; expected = float_of_int (Stdlib.max 1 m); z = 0.; p_value = 1.; random = true }
  else begin
  let runs = ref 1 in
  for i = 1 to m - 1 do
    if signs.(i) <> signs.(i - 1) then incr runs
  done;
  let np = float_of_int n_plus and nm = float_of_int n_minus in
  let total = np +. nm in
  let expected = (2. *. np *. nm /. total) +. 1. in
  let variance =
    2. *. np *. nm *. ((2. *. np *. nm) -. total) /. (total *. total *. (total -. 1.))
  in
    let z = (float_of_int !runs -. expected) /. sqrt variance in
    let p_value = Special.erfc (Float.abs z /. sqrt 2.) in
    { runs = !runs; expected; z; p_value; random = p_value >= alpha }
  end

let pp_result ppf r =
  Format.fprintf ppf "runs=%d expected=%.1f z=%.3f p=%.4f -> %s" r.runs r.expected r.z
    r.p_value
    (if r.random then "randomness not rejected" else "randomness REJECTED")
