(** Wald-Wolfowitz runs test on the above/below-median dichotomization of a
    series: a second, cheaper independence check used alongside Ljung-Box as
    cross-validation of the i.i.d. hypothesis. *)

type result = { runs : int; expected : float; z : float; p_value : float; random : bool }

(** @raise Invalid_argument if the series has fewer than 20 observations
    (the normal approximation is unusable below that). *)
val test : ?alpha:float -> float array -> result
val pp_result : Format.formatter -> result -> unit
