(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

(* Guards below raise [Invalid_argument] instead of asserting: every
   p-value in the i.i.d. battery funnels through these kernels, and the
   guards must hold in a [-noassert] release build too. *)
let rec log_gamma x =
  if not (x > 0.) then invalid_arg "Special.log_gamma: x must be > 0";
  if x < 0.5 then
    (* Reflection formula keeps accuracy near 0. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

(* Series representation of P(a,x), converges quickly for x < a + 1. *)
let gamma_p_series ~a ~x =
  let eps = 1e-15 in
  let rec go ap sum del n =
    if n > 1000 then sum
    else begin
      let ap = ap +. 1. in
      let del = del *. x /. ap in
      let sum = sum +. del in
      if Float.abs del < Float.abs sum *. eps then sum else go ap sum del (n + 1)
    end
  in
  let sum = go a (1. /. a) (1. /. a) 0 in
  sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)

(* Continued fraction for Q(a,x) (modified Lentz), for x >= a + 1. *)
let gamma_q_cf ~a ~x =
  let eps = 1e-15 and fpmin = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. fpmin) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue = ref true in
  while !continue && !i <= 1000 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.;
    d := (an *. !d) +. !b;
    if Float.abs !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.) < eps then continue := false;
    incr i
  done;
  !h *. exp ((-.x) +. (a *. log x) -. log_gamma a)

let gamma_p ~a ~x =
  if not (a > 0. && x >= 0.) then invalid_arg "Special.gamma_p: need a > 0 and x >= 0";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_p_series ~a ~x
  else 1. -. gamma_q_cf ~a ~x

let gamma_q ~a ~x =
  if not (a > 0. && x >= 0.) then invalid_arg "Special.gamma_q: need a > 0 and x >= 0";
  if x = 0. then 1.
  else if x < a +. 1. then 1. -. gamma_p_series ~a ~x
  else gamma_q_cf ~a ~x

let erfc x =
  (* erfc(x) = Q(1/2, x^2) for x >= 0; reflection for x < 0. *)
  if x >= 0. then gamma_q ~a:0.5 ~x:(x *. x) else 2. -. gamma_q ~a:0.5 ~x:(x *. x)

let erf x = 1. -. erfc x

let normal_cdf z = 0.5 *. erfc (-.z /. sqrt 2.)

(* Acklam's inverse normal CDF approximation + one Halley refinement. *)
let normal_quantile p =
  if not (p > 0. && p < 1.) then invalid_arg "Special.normal_quantile: p outside (0, 1)";
  let a =
    [| -39.6968302866538; 220.946098424521; -275.928510446969; 138.357751867269;
       -30.6647980661472; 2.50662827745924 |]
  and b =
    [| -54.4760987982241; 161.585836858041; -155.698979859887; 66.8013118877197;
       -13.2806815528857 |]
  and c =
    [| -0.00778489400243029; -0.322396458041136; -2.40075827716184; -2.54973253934373;
       4.37466414146497; 2.93816398269878 |]
  and d =
    [| 0.00778469570904146; 0.32246712907004; 2.445134137143; 3.75440866190742 |]
  in
  let p_low = 0.02425 in
  let tail_num q =
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5)
  and tail_den q = (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q) +. 1. in
  let x =
    if p < p_low then begin
      let q = sqrt (-2. *. log p) in
      tail_num q /. tail_den q
    end
    else if p <= 1. -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      let num =
        ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
        *. q
      and den =
        ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r) +. 1.
      in
      num /. den
    end
    else begin
      let q = sqrt (-2. *. log (1. -. p)) in
      -.(tail_num q /. tail_den q)
    end
  in
  (* One Halley step against the exact CDF. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt (2. *. Float.pi) *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))

let log_beta a b = log_gamma a +. log_gamma b -. log_gamma (a +. b)

(* Continued fraction for the incomplete beta (modified Lentz), evaluated
   at [x < (a + 1) / (a + b + 2)] where it converges fastest; callers use
   the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) for the other half. *)
let betacf ~a ~b ~x =
  let eps = 1e-15 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1. /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue = ref true in
  while !continue && !m <= 1000 do
    let mf = float_of_int !m in
    let m2 = 2. *. mf in
    (* Even step. *)
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1. +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1. +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1. /. !d;
    h := !h *. !d *. !c;
    (* Odd step. *)
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1. +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1. +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.) < eps then continue := false;
    incr m
  done;
  !h

let betainc ~a ~b ~x =
  if not (a > 0. && b > 0.) then invalid_arg "Special.betainc: need a > 0 and b > 0";
  if not (x >= 0. && x <= 1.) then invalid_arg "Special.betainc: x outside [0, 1]";
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let front = exp ((a *. log x) +. (b *. log (1. -. x)) -. log_beta a b) in
    if x < (a +. 1.) /. (a +. b +. 2.) then front *. betacf ~a ~b ~x /. a
    else 1. -. (front *. betacf ~a:b ~b:a ~x:(1. -. x) /. b)
  end

let student_t_survival ~df t =
  if not (df > 0.) then invalid_arg "Special.student_t_survival: df must be > 0";
  if Float.is_nan t then Float.nan
  else if t = Float.infinity then 0.
  else if t = Float.neg_infinity then 1.
  else begin
    let tail = 0.5 *. betainc ~a:(df /. 2.) ~b:0.5 ~x:(df /. (df +. (t *. t))) in
    if t >= 0. then tail else 1. -. tail
  end

let chi_square_survival ~df x =
  if df < 1 then invalid_arg "Special.chi_square_survival: df must be >= 1";
  if x <= 0. then 1. else gamma_q ~a:(float_of_int df /. 2.) ~x:(x /. 2.)

let chi_square_cdf ~df x = 1. -. chi_square_survival ~df x

let kolmogorov_survival lambda =
  if lambda <= 0. then 1.
  else begin
    let rec sum k acc =
      if k > 100 then acc
      else begin
        let kf = float_of_int k in
        let term =
          (if k mod 2 = 1 then 2. else -2.) *. exp (-2. *. kf *. kf *. lambda *. lambda)
        in
        let acc' = acc +. term in
        if Float.abs term < 1e-12 then acc' else sum (k + 1) acc'
      end
    in
    Float.max 0. (Float.min 1. (sum 1 0.))
  end
