(** Special functions underlying every distribution and test in this library.

    Implementations follow the classic series / continued-fraction forms
    (Lanczos for log-gamma, NR-style [gser]/[gcf] for the regularized
    incomplete gamma) with relative accuracy around 1e-10 over the domains
    exercised here. *)

(** Natural log of the gamma function, for [x > 0]. *)
val log_gamma : float -> float

(** Regularized lower incomplete gamma P(a, x), for [a > 0], [x >= 0]. *)
val gamma_p : a:float -> x:float -> float

(** Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x). *)
val gamma_q : a:float -> x:float -> float

(** Error function. *)
val erf : float -> float

(** Complementary error function, accurate in the far tail. *)
val erfc : float -> float

(** Standard normal CDF. *)
val normal_cdf : float -> float

(** Standard normal quantile (Acklam's rational approximation, refined with
    one Halley step; |error| < 1e-9). *)
val normal_quantile : float -> float

(** Natural log of the beta function B(a, b), for [a > 0], [b > 0]. *)
val log_beta : float -> float -> float

(** Regularized incomplete beta I_x(a, b), for [a > 0], [b > 0] and
    [x] in [[0, 1]] (NR-style continued fraction, symmetry-split at
    [(a + 1) / (a + b + 2)]). *)
val betainc : a:float -> b:float -> x:float -> float

(** Upper-tail probability of a Student-t variable with [df] (possibly
    fractional, as produced by Welch–Satterthwaite) degrees of freedom:
    P(T >= t).  [t = +/-infinity] maps to 0 / 1 exactly. *)
val student_t_survival : df:float -> float -> float

(** Upper-tail probability of a chi-square variable with [df] degrees of
    freedom: P(X >= x). *)
val chi_square_survival : df:int -> float -> float

(** Chi-square CDF with [df] degrees of freedom. *)
val chi_square_cdf : df:int -> float -> float

(** Kolmogorov distribution survival function
    Q(lambda) = 2 sum_{k>=1} (-1)^(k-1) exp(-2 k^2 lambda^2), clamped to
    [[0, 1]].  This is the asymptotic null distribution of the scaled KS
    statistic. *)
val kolmogorov_survival : float -> float
