(** Empirical cumulative distribution functions.

    The pWCET plots of the paper (Figure 2) are exceedance plots: the
    empirical 1-CDF of the observed execution times on a log-scale Y axis,
    overlaid with the EVT projection.  This module provides the empirical
    side. *)

type t

(** [of_sample xs] sorts a private copy of [xs]. *)
val of_sample : float array -> t

(** [of_sorted xs] builds the ECDF from an already-sorted sample (still a
    private copy, but skipping the O(n log n) sort) — the entry point for
    analysis pipelines that sort the measurement vector once and thread it
    through every consumer.  Raises [Invalid_argument] when [xs] is empty
    or not ascending under [Float.compare]. *)
val of_sorted : float array -> t

val size : t -> int

(** The i-th order statistic, [i] in [[0, size-1]]. *)
val order_statistic : t -> int -> float

(** [cdf t x] is the fraction of observations [<= x]. *)
val cdf : t -> float -> float

(** [ccdf t x] is the fraction of observations [> x] (the exceedance
    probability). *)
val ccdf : t -> float -> float

(** [quantile t p] is the type-7 empirical quantile. *)
val quantile : t -> float -> float

(** [points t] returns the step points [(x_i, i/n)] of the CDF, one per
    distinct observation (the last value of ties wins). *)
val points : t -> (float * float) list

(** [ccdf_points t] returns [(x_(i), 1 - i/n)] exceedance points suitable for
    a log-scale plot; the point with exceedance 0 is dropped. *)
val ccdf_points : t -> (float * float) list

(** Underlying sorted data (do not mutate). *)
val sorted : t -> float array
