module Prng = Repro_rng.Prng

module Uniform = struct
  type t = { lo : float; hi : float }

  let create ~lo ~hi =
    if not (hi > lo) then invalid_arg "Distribution.Uniform.create: need hi > lo";
    { lo; hi }

  let pdf t x = if x < t.lo || x > t.hi then 0. else 1. /. (t.hi -. t.lo)

  let cdf t x =
    if x <= t.lo then 0. else if x >= t.hi then 1. else (x -. t.lo) /. (t.hi -. t.lo)

  let quantile t p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg "Distribution.Uniform.quantile: p outside [0, 1]";
    t.lo +. (p *. (t.hi -. t.lo))

  let sample t prng = quantile t (Prng.float prng)
end

module Normal = struct
  type t = { mu : float; sigma : float }

  let create ~mu ~sigma =
    if not (sigma > 0.) then invalid_arg "Distribution.Normal.create: need sigma > 0";
    { mu; sigma }

  let standard = { mu = 0.; sigma = 1. }

  let pdf t x =
    let z = (x -. t.mu) /. t.sigma in
    exp (-0.5 *. z *. z) /. (t.sigma *. sqrt (2. *. Float.pi))

  let cdf t x = Special.normal_cdf ((x -. t.mu) /. t.sigma)
  let quantile t p = t.mu +. (t.sigma *. Special.normal_quantile p)
  let sample t prng = t.mu +. (t.sigma *. Prng.gaussian prng)
end

module Exponential = struct
  type t = { rate : float }

  let create ~rate =
    if not (rate > 0.) then invalid_arg "Distribution.Exponential.create: need rate > 0";
    { rate }

  let pdf t x = if x < 0. then 0. else t.rate *. exp (-.t.rate *. x)
  let cdf t x = if x < 0. then 0. else -.Float.expm1 (-.t.rate *. x)

  let quantile t p =
    if not (p >= 0. && p < 1.) then
      invalid_arg "Distribution.Exponential.quantile: p outside [0, 1)";
    -.Float.log1p (-.p) /. t.rate

  let sample t prng = Prng.exponential prng /. t.rate
  let mean t = 1. /. t.rate
end

module Chi_square = struct
  type t = { df : int }

  let create ~df =
    if df < 1 then invalid_arg "Distribution.Chi_square.create: need df >= 1";
    { df }

  let cdf t x = Special.chi_square_cdf ~df:t.df x
  let survival t x = Special.chi_square_survival ~df:t.df x
end

module Gumbel = struct
  type t = { mu : float; beta : float }

  let create ~mu ~beta =
    if not (beta > 0.) then invalid_arg "Distribution.Gumbel.create: need beta > 0";
    { mu; beta }

  let z t x = (x -. t.mu) /. t.beta

  let pdf t x =
    let z = z t x in
    exp (-.z -. exp (-.z)) /. t.beta

  let cdf t x = exp (-.exp (-.z t x))

  let survival t x = -.Float.expm1 (-.exp (-.z t x))

  let quantile t p =
    if not (p > 0. && p < 1.) then
      invalid_arg "Distribution.Gumbel.quantile: p outside (0, 1)";
    t.mu -. (t.beta *. log (-.log p))

  (* For p_exc small, -log(1-p_exc) ~ p_exc; use log1p for accuracy. *)
  let quantile_of_exceedance t p_exc =
    if not (p_exc > 0. && p_exc < 1.) then
      invalid_arg "Distribution.Gumbel.quantile_of_exceedance: p outside (0, 1)";
    t.mu -. (t.beta *. log (-.Float.log1p (-.p_exc)))

  let sample t prng = quantile t (Prng.float_pos prng)

  let euler_mascheroni = 0.5772156649015329

  let mean t = t.mu +. (t.beta *. euler_mascheroni)
  let std t = t.beta *. Float.pi /. sqrt 6.

  let log_likelihood t xs =
    Array.fold_left
      (fun acc x ->
        let z = z t x in
        acc -. log t.beta -. z -. exp (-.z))
      0. xs
end

module Gev = struct
  type t = { mu : float; sigma : float; xi : float }

  (* |xi| below this is treated as the Gumbel limit to avoid cancellation. *)
  let xi_epsilon = 1e-9

  let create ~mu ~sigma ~xi =
    if not (sigma > 0.) then invalid_arg "Distribution.Gev.create: need sigma > 0";
    { mu; sigma; xi }

  let as_gumbel t = { Gumbel.mu = t.mu; beta = t.sigma }

  (* s(x) = (1 + xi * (x - mu) / sigma); support requires s > 0. *)
  let s t x = 1. +. (t.xi *. (x -. t.mu) /. t.sigma)

  let pdf t x =
    if Float.abs t.xi < xi_epsilon then Gumbel.pdf (as_gumbel t) x
    else begin
      let s = s t x in
      if s <= 0. then 0.
      else begin
        let tx = s ** (-1. /. t.xi) in
        tx ** (t.xi +. 1.) *. exp (-.tx) /. t.sigma
      end
    end

  let cdf t x =
    if Float.abs t.xi < xi_epsilon then Gumbel.cdf (as_gumbel t) x
    else begin
      let s = s t x in
      if s <= 0. then (if t.xi > 0. then 0. else 1.)
      else exp (-.(s ** (-1. /. t.xi)))
    end

  let survival t x =
    if Float.abs t.xi < xi_epsilon then Gumbel.survival (as_gumbel t) x
    else begin
      let s = s t x in
      if s <= 0. then (if t.xi > 0. then 1. else 0.)
      else -.Float.expm1 (-.(s ** (-1. /. t.xi)))
    end

  let quantile t p =
    if not (p > 0. && p < 1.) then
      invalid_arg "Distribution.Gev.quantile: p outside (0, 1)";
    if Float.abs t.xi < xi_epsilon then Gumbel.quantile (as_gumbel t) p
    else t.mu +. (t.sigma *. (((-.log p) ** -.t.xi) -. 1.) /. t.xi)

  let quantile_of_exceedance t p_exc =
    if not (p_exc > 0. && p_exc < 1.) then
      invalid_arg "Distribution.Gev.quantile_of_exceedance: p outside (0, 1)";
    if Float.abs t.xi < xi_epsilon then Gumbel.quantile_of_exceedance (as_gumbel t) p_exc
    else begin
      let neg_log_p = -.Float.log1p (-.p_exc) in
      t.mu +. (t.sigma *. ((neg_log_p ** -.t.xi) -. 1.) /. t.xi)
    end

  let sample t prng = quantile t (Prng.float_pos prng)

  let log_likelihood t xs =
    if Float.abs t.xi < xi_epsilon then Gumbel.log_likelihood (as_gumbel t) xs
    else
      Array.fold_left
        (fun acc x ->
          let s = s t x in
          if s <= 0. then neg_infinity
          else begin
            let log_s = log s in
            acc -. log t.sigma
            -. ((1. +. (1. /. t.xi)) *. log_s)
            -. exp (-.log_s /. t.xi)
          end)
        0. xs

  let upper_bound t =
    if t.xi < -.xi_epsilon then Some (t.mu -. (t.sigma /. t.xi)) else None
end

module Gpd = struct
  type t = { u : float; sigma : float; xi : float }

  let xi_epsilon = 1e-9

  let create ~u ~sigma ~xi =
    if not (sigma > 0.) then invalid_arg "Distribution.Gpd.create: need sigma > 0";
    { u; sigma; xi }

  let pdf t x =
    let y = x -. t.u in
    if y < 0. then 0.
    else if Float.abs t.xi < xi_epsilon then exp (-.y /. t.sigma) /. t.sigma
    else begin
      let s = 1. +. (t.xi *. y /. t.sigma) in
      if s <= 0. then 0. else (s ** (-1. /. t.xi -. 1.)) /. t.sigma
    end

  let cdf t x =
    let y = x -. t.u in
    if y < 0. then 0.
    else if Float.abs t.xi < xi_epsilon then -.Float.expm1 (-.y /. t.sigma)
    else begin
      let s = 1. +. (t.xi *. y /. t.sigma) in
      if s <= 0. then (if t.xi < 0. then 1. else 0.)
      else 1. -. (s ** (-1. /. t.xi))
    end

  let survival t x = 1. -. cdf t x

  let quantile t p =
    if not (p >= 0. && p < 1.) then
      invalid_arg "Distribution.Gpd.quantile: p outside [0, 1)";
    if Float.abs t.xi < xi_epsilon then t.u -. (t.sigma *. Float.log1p (-.p))
    else t.u +. (t.sigma *. (((1. -. p) ** -.t.xi) -. 1.) /. t.xi)

  let sample t prng = quantile t (Prng.float prng)

  let log_likelihood t xs =
    Array.fold_left
      (fun acc x ->
        let p = pdf t x in
        if p <= 0. then neg_infinity else acc +. log p)
      0. xs
end

module Weibull = struct
  type t = { scale : float; shape : float }

  let create ~scale ~shape =
    if not (scale > 0. && shape > 0.) then
      invalid_arg "Distribution.Weibull.create: need scale > 0 and shape > 0";
    { scale; shape }

  let pdf t x =
    if x < 0. then 0.
    else begin
      let y = x /. t.scale in
      t.shape /. t.scale *. (y ** (t.shape -. 1.)) *. exp (-.(y ** t.shape))
    end

  let cdf t x = if x < 0. then 0. else -.Float.expm1 (-.((x /. t.scale) ** t.shape))

  let quantile t p =
    if not (p >= 0. && p < 1.) then
      invalid_arg "Distribution.Weibull.quantile: p outside [0, 1)";
    t.scale *. ((-.Float.log1p (-.p)) ** (1. /. t.shape))

  let sample t prng = quantile t (Prng.float prng)
end
