(* Deterministic domain-parallel execution.

   The design is work-stealing-free on purpose: indices are split into
   [jobs] contiguous chunks fixed before any domain starts, every chunk is
   evaluated in ascending index order, and chunk results are blitted back
   into a single output array at their original offsets.  Because each
   index's result depends only on the index (the determinism contract the
   campaign seed-derivation scheme guarantees), the output is bit-identical
   regardless of job count or OS scheduling order — [jobs = 1] is the
   sequential reference and every other job count must agree with it.

   This module carries no tracing dependency; [on_chunk] is a plain
   callback so the core layer can forward the layout into its trace
   stream while the EVT layer uses the pool directly. *)

let default_jobs () = Domain.recommended_domain_count ()

let chunks ~jobs n =
  if n < 0 then invalid_arg "Parallel.chunks: negative length";
  if jobs < 1 then invalid_arg "Parallel.chunks: jobs must be >= 1";
  if n = 0 then []
  else begin
    (* Never more chunks than indices: every chunk is non-empty. *)
    let jobs = Stdlib.min jobs n in
    let base = n / jobs and extra = n mod jobs in
    List.init jobs (fun d ->
        let lo = (d * base) + Stdlib.min d extra in
        let len = base + if d < extra then 1 else 0 in
        (lo, len))
  end

(* [Array.init]'s evaluation order is unspecified; campaigns need the
   ascending order so that a stateful [f] still sees indices in run order
   under [jobs = 1] (the sequential reference mode). *)
let init_ascending n f =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do
      a.(i) <- f i
    done;
    a
  end

let notify_layout on_chunk layout =
  match on_chunk with
  | None -> ()
  | Some k -> List.iteri (fun i (lo, len) -> k ~chunk_index:i ~lo ~len) layout

let init ?on_chunk ?jobs n f =
  if n < 0 then invalid_arg "Parallel.init: negative length";
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Parallel.init: jobs must be >= 1";
  if n = 0 then [||]
  else if jobs = 1 || n = 1 then begin
    notify_layout on_chunk [ (0, n) ];
    init_ascending n f
  end
  else begin
    let layout = chunks ~jobs n in
    notify_layout on_chunk layout;
    let eval (lo, len) =
      match init_ascending len (fun i -> f (lo + i)) with
      | a -> Ok a
      | exception e -> Error e
    in
    match layout with
    | [] -> assert false (* n >= 1 *)
    | first_chunk :: rest ->
        let spawned = List.map (fun c -> Domain.spawn (fun () -> eval c)) rest in
        (* The first chunk runs on the calling domain — with [jobs] domains
           requested we only ever spawn [jobs - 1]. *)
        let first = eval first_chunk in
        let results = first :: List.map Domain.join spawned in
        (* Re-raise the failure of the lowest-indexed chunk, so an exception
           escapes deterministically no matter which domains also failed. *)
        let arrays =
          List.map (function Ok a -> a | Error e -> raise e) results
        in
        let out = Array.make n (List.hd arrays).(0) in
        List.iter2
          (fun (lo, _) a -> Array.blit a 0 out lo (Array.length a))
          layout arrays;
        out
  end

let map ?on_chunk ?jobs f a = init ?on_chunk ?jobs (Array.length a) (fun i -> f a.(i))
