(* Deterministic domain-parallel execution.

   The design is work-stealing-free on purpose: indices are split into
   [jobs] contiguous chunks fixed before any domain starts, every chunk is
   evaluated in ascending index order, and chunk results are blitted back
   into a single output array at their original offsets.  Because each
   index's result depends only on the index (the determinism contract the
   campaign seed-derivation scheme guarantees), the output is bit-identical
   regardless of job count or OS scheduling order — [jobs = 1] is the
   sequential reference and every other job count must agree with it.

   This module carries no tracing dependency; [on_chunk] is a plain
   callback so the core layer can forward the layout into its trace
   stream while the EVT layer uses the pool directly. *)

let default_jobs () = Domain.recommended_domain_count ()

let chunks ~jobs n =
  if n < 0 then invalid_arg "Parallel.chunks: negative length";
  if jobs < 1 then invalid_arg "Parallel.chunks: jobs must be >= 1";
  if n = 0 then []
  else begin
    (* Never more chunks than indices: every chunk is non-empty. *)
    let jobs = Stdlib.min jobs n in
    let base = n / jobs and extra = n mod jobs in
    List.init jobs (fun d ->
        let lo = (d * base) + Stdlib.min d extra in
        let len = base + if d < extra then 1 else 0 in
        (lo, len))
  end

(* [Array.init]'s evaluation order is unspecified; campaigns need the
   ascending order so that a stateful [f] still sees indices in run order
   under [jobs = 1] (the sequential reference mode). *)
let init_ascending n f =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do
      a.(i) <- f i
    done;
    a
  end

let notify_layout on_chunk layout =
  match on_chunk with
  | None -> ()
  | Some k -> List.iteri (fun i (lo, len) -> k ~chunk_index:i ~lo ~len) layout

let init ?on_chunk ?jobs n f =
  if n < 0 then invalid_arg "Parallel.init: negative length";
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Parallel.init: jobs must be >= 1";
  if n = 0 then [||]
  else if jobs = 1 || n = 1 then begin
    notify_layout on_chunk [ (0, n) ];
    init_ascending n f
  end
  else begin
    let layout = chunks ~jobs n in
    notify_layout on_chunk layout;
    let chunk_arr = Array.of_list layout in
    let nchunks = Array.length chunk_arr in
    let results = Array.make nchunks None in
    let eval idx =
      let lo, len = chunk_arr.(idx) in
      results.(idx) <-
        Some
          (match init_ascending len (fun i -> f (lo + i)) with
          | a -> Ok a
          | exception e -> Error e)
    in
    (* The chunk layout above is fixed by the requested [jobs] — it is part
       of the determinism contract (store chunk records and shard spans key
       on it).  How many domains evaluate those chunks is a separate, purely
       operational choice: spawning one domain per chunk oversubscribes a
       small machine (jobs=8 ran at an eighth of jobs=1 throughput on one
       core), so live workers are capped at the hardware's recommended
       domain count and pull chunk indices from a shared counter.  Any
       chunk-to-domain assignment produces the same output — chunks write
       disjoint result slots, and every index's result depends only on the
       index. *)
    let workers = Stdlib.min nchunks (Stdlib.max 1 (default_jobs ())) in
    let next = Atomic.make 0 in
    let rec drain () =
      let idx = Atomic.fetch_and_add next 1 in
      if idx < nchunks then begin
        eval idx;
        drain ()
      end
    in
    (* The calling domain is worker 0 — with [workers] workers we only ever
       spawn [workers - 1] domains. *)
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn drain) in
    drain ();
    List.iter Domain.join spawned;
    (* Re-raise the failure of the lowest-indexed chunk, so an exception
       escapes deterministically no matter which chunks also failed. *)
    let arrays =
      Array.to_list results
      |> List.map (function
           | Some (Ok a) -> a
           | Some (Error e) -> raise e
           | None -> assert false (* the counter covered every index *))
    in
    let out = Array.make n (List.hd arrays).(0) in
    List.iter2
      (fun (lo, _) a -> Array.blit a 0 out lo (Array.length a))
      layout arrays;
    out
  end

let map ?on_chunk ?jobs f a = init ?on_chunk ?jobs (Array.length a) (fun i -> f a.(i))

(* Cost-calibrated dispatch granularity.

   Checkpoint chunks are a pure function of the run count (store layout),
   but how many of them a scheduler hands out per fan-out is purely
   operational — like the worker cap above, it may depend on measured
   machine speed without perturbing results.  The batch size is still
   pinned to a coarse power-of-two grid so that a noisy calibration
   measurement almost always lands on the same value, keeping schedules
   (not results — those are invariant) reproducible across runs. *)

let dispatch_grid = [ 1; 2; 4; 8; 16; 32; 64 ]

let batch_of_cost ~chunk_ns ~target_ns =
  if Int64.compare target_ns 1L < 0 then
    invalid_arg "Parallel.batch_of_cost: target must be positive";
  let chunk_ns =
    if Int64.compare chunk_ns 1L < 0 then 1L else chunk_ns
  in
  let covers g =
    (* g * chunk_ns >= target_ns, overflow-safe: chunk_ns >= 1 and the
       grid is tiny, so the product fits unless chunk_ns is astronomical —
       in which case the smallest batch already covers the target. *)
    Int64.compare (Int64.mul (Int64.of_int g) chunk_ns) target_ns >= 0
  in
  let rec pick = function
    | [] -> assert false (* the grid is a non-empty constant *)
    | [ g ] -> g
    | g :: rest -> if covers g then g else pick rest
  in
  pick dispatch_grid
