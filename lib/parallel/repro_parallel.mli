(** Deterministic domain-parallel execution — the dependency-free core of
    the campaign layer's domain pool.

    Built on OCaml 5 [Domain] only and deliberately work-stealing-free: the
    index range is split into [jobs] contiguous chunks {e before} any domain
    starts, each chunk is evaluated in ascending index order on its own
    domain, and results are written back at their original offsets.

    This module lives below the statistics and EVT layers so that analysis
    loops (bootstrap replicates, convergence studies) can fan out over the
    same pool the measurement campaigns use; the observability-aware wrapper
    in [lib/core] ([Repro_mbpta.Parallel]) adds trace emission on top.

    {b Determinism contract.}  If [f i] is a pure function of [i], then
    [init ~jobs n f] returns a bit-identical array for every [jobs] and
    every OS scheduling order.  [jobs = 1] is the sequential reference: it
    spawns no domains and calls [f] with strictly ascending indices, so even
    a stateful [f] behaves exactly as sequential code would. *)

(** [Domain.recommended_domain_count ()] — the default job count. *)
val default_jobs : unit -> int

(** [chunks ~jobs n] — the static sharding: at most [jobs] contiguous
    [(offset, length)] chunks covering [0 .. n-1] exactly once, all
    non-empty, lengths differing by at most one. *)
val chunks : jobs:int -> int -> (int * int) list

(** [Array.init] with a {e specified} ascending evaluation order — the
    sequential reference every parallel layout must agree with. *)
val init_ascending : int -> (int -> 'a) -> 'a array

(** [init ?on_chunk ?jobs n f] — [Array.init n f] evaluated on a chunked
    domain pool ([jobs] defaults to {!default_jobs}).  If any [f i] raises,
    the exception of the lowest-indexed failing chunk is re-raised after all
    domains have been joined (deterministic error propagation).  Raises
    [Invalid_argument] on [n < 0] or [jobs < 1].

    [on_chunk] is called once per chunk, on the calling domain, before any
    evaluation starts — the hook the core layer uses to record the sharding
    decision as trace events. *)
val init :
  ?on_chunk:(chunk_index:int -> lo:int -> len:int -> unit) ->
  ?jobs:int ->
  int ->
  (int -> 'a) ->
  'a array

(** [map ?on_chunk ?jobs f a] — [Array.map] on the same pool. *)
val map :
  ?on_chunk:(chunk_index:int -> lo:int -> len:int -> unit) ->
  ?jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b array

(** The pinned batch-size grid for cost-calibrated dispatch: how many
    checkpoint chunks a scheduler may hand out per fan-out.  Coarse powers
    of two so a noisy calibration measurement almost always rounds to the
    same value.  The store chunk layout itself never depends on this. *)
val dispatch_grid : int list

(** [batch_of_cost ~chunk_ns ~target_ns] — the smallest grid batch size
    whose estimated duration [batch * chunk_ns] reaches [target_ns], or
    the grid maximum if none does.  Pure (Int64 arithmetic only), so a
    given measurement always picks the same batch.  Raises
    [Invalid_argument] if [target_ns < 1]; [chunk_ns] is clamped to at
    least 1ns. *)
val batch_of_cost : chunk_ns:int64 -> target_ns:int64 -> int
