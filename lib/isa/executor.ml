exception Stack_overflow_ of string
exception Runaway of string

type stats = {
  retired : int;
  loads : int;
  stores : int;
  fp_long_ops : int;
  branches : int;
  taken_branches : int;
}

let max_call_depth = 256

(* Pre-resolved addressing: the live backing array plus the symbol's byte
   base, so the hot loop does no hash lookups.  index_reg = -1 encodes "no
   index register". *)
type raddr = { values : float array; byte_base : int; index_reg : int; offset : int }

type rop =
  | RLi of int * int
  | RAdd of int * int * int
  | RAddi of int * int * int
  | RSub of int * int * int
  | RMul of int * int * int
  | RFli of int * float
  | RFld of int * raddr
  | RFst of int * raddr
  | RFadd of int * int * int
  | RFsub of int * int * int
  | RFmul of int * int * int
  | RFdiv of int * int * int
  | RFsqrt of int * int
  | RFabs of int * int
  | RFmov of int * int
  | RFcvt of int * int
  | RIcvt of int * int
  | RBlt of int * int * int
  | RBge of int * int * int
  | RBeq of int * int * int
  | RBne of int * int * int
  | RFblt of int * int * int
  | RFbge of int * int * int
  | RJmp of int
  | RCall of int
  | RRet
  | RNop
  | RHalt

let resolve ~program ~layout ~memory =
  let target l = Program.label_index program l in
  let addr (a : Instr.addressing) =
    {
      values = Memory.raw memory a.Instr.base;
      byte_base = Layout.data_address layout ~symbol:a.Instr.base ~element:0;
      index_reg = (match a.Instr.index_reg with Some r -> r | None -> -1);
      offset = a.Instr.offset;
    }
  in
  Array.map
    (fun instr ->
      match instr with
      | Instr.Li (rd, v) -> RLi (rd, v)
      | Instr.Add (a, b, c) -> RAdd (a, b, c)
      | Instr.Addi (a, b, v) -> RAddi (a, b, v)
      | Instr.Sub (a, b, c) -> RSub (a, b, c)
      | Instr.Mul (a, b, c) -> RMul (a, b, c)
      | Instr.Fli (fd, v) -> RFli (fd, v)
      | Instr.Fld (fd, a) -> RFld (fd, addr a)
      | Instr.Fst (fs, a) -> RFst (fs, addr a)
      | Instr.Fadd (a, b, c) -> RFadd (a, b, c)
      | Instr.Fsub (a, b, c) -> RFsub (a, b, c)
      | Instr.Fmul (a, b, c) -> RFmul (a, b, c)
      | Instr.Fdiv (a, b, c) -> RFdiv (a, b, c)
      | Instr.Fsqrt (a, b) -> RFsqrt (a, b)
      | Instr.Fabs (a, b) -> RFabs (a, b)
      | Instr.Fmov (a, b) -> RFmov (a, b)
      | Instr.Fcvt (a, b) -> RFcvt (a, b)
      | Instr.Icvt (a, b) -> RIcvt (a, b)
      | Instr.Blt (a, b, l) -> RBlt (a, b, target l)
      | Instr.Bge (a, b, l) -> RBge (a, b, target l)
      | Instr.Beq (a, b, l) -> RBeq (a, b, target l)
      | Instr.Bne (a, b, l) -> RBne (a, b, target l)
      | Instr.Fblt (a, b, l) -> RFblt (a, b, target l)
      | Instr.Fbge (a, b, l) -> RFbge (a, b, target l)
      | Instr.Jmp l -> RJmp (target l)
      | Instr.Call l -> RCall (target l)
      | Instr.Ret -> RRet
      | Instr.Nop -> RNop
      | Instr.Halt -> RHalt)
    (Program.code program)

let element_index (a : raddr) regs =
  let idx = if a.index_reg >= 0 then regs.(a.index_reg) + a.offset else a.offset in
  if idx < 0 || idx >= Array.length a.values then
    invalid_arg
      (Printf.sprintf "Executor: data access out of bounds (index %d, size %d)" idx
         (Array.length a.values));
  idx

module Stepper = struct
  type t = {
    code : rop array;
    layout : Layout.t;
    name : string;
    max_instructions : int;
    (* Countdown twin of [retired]: one zero test per step instead of
       loading and comparing two fields.  Invariant: fuel =
       max_instructions - retired. *)
    mutable fuel : int;
    regs : int array;
    fregs : float array;
    call_stack : int array;
    mutable sp : int;
    mutable pc : int;
    mutable running : bool;
    mutable retired : int;
    mutable loads : int;
    mutable stores : int;
    mutable fp_long : int;
    mutable branches : int;
    mutable taken : int;
  }

  let create ?(max_instructions = 10_000_000) ?entry ?(init_regs = []) ~program ~layout
      ~memory () =
    let entry_label = match entry with Some l -> l | None -> Program.entry program in
    let t =
      {
        code = resolve ~program ~layout ~memory;
        layout;
        name = Program.name program;
        max_instructions;
        fuel = max_instructions;
        regs = Array.make Instr.register_count 0;
        fregs = Array.make Instr.register_count 0.;
        call_stack = Array.make max_call_depth 0;
        sp = 0;
        pc = Program.label_index program entry_label;
        running = true;
        retired = 0;
        loads = 0;
        stores = 0;
        fp_long = 0;
        branches = 0;
        taken = 0;
      }
    in
    List.iter
      (fun (r, v) ->
        if r < 0 || r >= Instr.register_count then
          invalid_arg "Stepper.create: init register out of range";
        t.regs.(r) <- v)
      init_regs;
    t

  let finished t = not t.running

  let corrupt_int_register t ~reg ~bit =
    if reg < 0 || reg >= Instr.register_count then
      invalid_arg "Stepper.corrupt_int_register: register out of range";
    (* Model 32-bit architectural registers: flip one of the low 32 bits. *)
    t.regs.(reg) <- t.regs.(reg) lxor (1 lsl (bit land 31))

  let corrupt_float_register t ~reg ~bit =
    if reg < 0 || reg >= Instr.register_count then
      invalid_arg "Stepper.corrupt_float_register: register out of range";
    (* Flip one bit of the IEEE-754 image; upsets in the exponent or sign
       can turn a value into inf/NaN, exactly as on real hardware. *)
    let bits = Int64.bits_of_float t.fregs.(reg) in
    t.fregs.(reg) <-
      Int64.float_of_bits (Int64.logxor bits (Int64.shift_left 1L (bit land 63)))

  let stats t =
    {
      retired = t.retired;
      loads = t.loads;
      stores = t.stores;
      fp_long_ops = t.fp_long;
      branches = t.branches;
      taken_branches = t.taken;
    }

  let step t =
    if not t.running then None
    else begin
      if t.fuel <= 0 then raise (Runaway t.name);
      t.fuel <- t.fuel - 1;
      let regs = t.regs and fregs = t.fregs in
      let fetch_addr = Layout.code_address t.layout t.pc in
      let op = t.code.(t.pc) in
      t.retired <- t.retired + 1;
      let next = t.pc + 1 in
      let simple work =
        t.pc <- next;
        work
      in
      let branch cond target =
        t.branches <- t.branches + 1;
        if cond then t.taken <- t.taken + 1;
        t.pc <- (if cond then target else next);
        Instr.Ctrl cond
      in
      let work =
        match op with
        | RLi (rd, v) ->
            regs.(rd) <- v;
            simple Instr.Int_alu
        | RAdd (rd, r1, r2) ->
            regs.(rd) <- regs.(r1) + regs.(r2);
            simple Instr.Int_alu
        | RAddi (rd, r1, v) ->
            regs.(rd) <- regs.(r1) + v;
            simple Instr.Int_alu
        | RSub (rd, r1, r2) ->
            regs.(rd) <- regs.(r1) - regs.(r2);
            simple Instr.Int_alu
        | RMul (rd, r1, r2) ->
            regs.(rd) <- regs.(r1) * regs.(r2);
            simple Instr.Int_mul
        | RFli (fd, v) ->
            fregs.(fd) <- v;
            simple Instr.Int_alu
        | RFld (fd, a) ->
            let idx = element_index a regs in
            fregs.(fd) <- a.values.(idx);
            t.loads <- t.loads + 1;
            simple (Instr.Mem_read (a.byte_base + (idx * Layout.element_bytes)))
        | RFst (fs, a) ->
            let idx = element_index a regs in
            a.values.(idx) <- fregs.(fs);
            t.stores <- t.stores + 1;
            simple (Instr.Mem_write (a.byte_base + (idx * Layout.element_bytes)))
        | RFadd (fd, f1, f2) ->
            fregs.(fd) <- fregs.(f1) +. fregs.(f2);
            simple (Instr.Fp_short Instr.Fadd_op)
        | RFsub (fd, f1, f2) ->
            fregs.(fd) <- fregs.(f1) -. fregs.(f2);
            simple (Instr.Fp_short Instr.Fadd_op)
        | RFmul (fd, f1, f2) ->
            fregs.(fd) <- fregs.(f1) *. fregs.(f2);
            simple (Instr.Fp_short Instr.Fmul_op)
        | RFdiv (fd, f1, f2) ->
            let x = fregs.(f1) and y = fregs.(f2) in
            fregs.(fd) <- x /. y;
            t.fp_long <- t.fp_long + 1;
            simple (Instr.Fp_long (Instr.Fdiv_op, x, y))
        | RFsqrt (fd, f1) ->
            let x = fregs.(f1) in
            fregs.(fd) <- sqrt x;
            t.fp_long <- t.fp_long + 1;
            simple (Instr.Fp_long (Instr.Fsqrt_op, x, 0.))
        | RFabs (fd, f1) ->
            fregs.(fd) <- Float.abs fregs.(f1);
            simple (Instr.Fp_short Instr.Fadd_op)
        | RFmov (fd, f1) ->
            fregs.(fd) <- fregs.(f1);
            simple (Instr.Fp_short Instr.Fadd_op)
        | RFcvt (rd, f1) ->
            regs.(rd) <- int_of_float fregs.(f1);
            simple Instr.Int_alu
        | RIcvt (fd, r1) ->
            fregs.(fd) <- float_of_int regs.(r1);
            simple Instr.Int_alu
        | RBlt (r1, r2, l) -> branch (regs.(r1) < regs.(r2)) l
        | RBge (r1, r2, l) -> branch (regs.(r1) >= regs.(r2)) l
        | RBeq (r1, r2, l) -> branch (regs.(r1) = regs.(r2)) l
        | RBne (r1, r2, l) -> branch (regs.(r1) <> regs.(r2)) l
        | RFblt (f1, f2, l) -> branch (fregs.(f1) < fregs.(f2)) l
        | RFbge (f1, f2, l) -> branch (fregs.(f1) >= fregs.(f2)) l
        | RJmp l ->
            t.branches <- t.branches + 1;
            t.taken <- t.taken + 1;
            t.pc <- l;
            Instr.Ctrl true
        | RCall l ->
            if t.sp >= max_call_depth then raise (Stack_overflow_ t.name);
            t.call_stack.(t.sp) <- next;
            t.sp <- t.sp + 1;
            t.branches <- t.branches + 1;
            t.taken <- t.taken + 1;
            t.pc <- l;
            Instr.Ctrl true
        | RRet ->
            t.branches <- t.branches + 1;
            t.taken <- t.taken + 1;
            if t.sp = 0 then t.running <- false
            else begin
              t.sp <- t.sp - 1;
              t.pc <- t.call_stack.(t.sp)
            end;
            Instr.Ctrl true
        | RNop -> simple Instr.No_op
        | RHalt ->
            t.running <- false;
            Instr.No_op
      in
      Some { Instr.fetch_addr; work }
    end
end

(* Timing consumer for the pre-decoded runner.  Instead of allocating one
   {!Instr.retired} record (plus its [work] payload) per executed
   instruction and dispatching on it, the runner calls the per-work-class
   hook directly: [on_fetch] first for every instruction (base cycle +
   instruction fetch), then at most one work hook.  Work classes that add
   no latency in the platform model ([Int_alu], [No_op], not-taken
   branches) get no hook call at all. *)
type sink = {
  on_fetch : int -> unit;
  on_int_mul : unit -> unit;
  on_read : int -> unit;
  on_write : int -> unit;
  on_fp_short : Instr.fpu_op -> unit;
  on_fp_long : Instr.fpu_op -> float -> float -> unit;
  on_taken : unit -> unit;
}

module Decoded = struct
  (* The memory-independent half of the decode: everything [resolve] can
     compute from (program, layout) alone — label targets, data byte bases,
     per-pc fetch addresses — so one decode is shareable across every
     memory image, domain and run of a scenario.  Binding the live backing
     arrays (the only memory-dependent part) happens once per {!Runner}. *)
  type t = {
    program : Program.t;
    layout : Layout.t;
    fetch_addrs : int array;
    entry_pc : int;
    name : string;
  }

  let decode ~program ~layout =
    let n = Array.length (Program.code program) in
    {
      program;
      layout;
      fetch_addrs = Array.init n (fun pc -> Layout.code_address layout pc);
      entry_pc = Program.label_index program (Program.entry program);
      name = Program.name program;
    }

  let name t = t.name

  module Runner = struct
    type t = {
      code : rop array;
      fetch_addrs : int array;
      entry_pc : int;
      name : string;
      max_instructions : int;
      regs : int array;
      fregs : float array;
      call_stack : int array;
      mutable sp : int;
      mutable pc : int;
      mutable running : bool;
      mutable retired : int;
      mutable loads : int;
      mutable stores : int;
      mutable fp_long : int;
      mutable branches : int;
      mutable taken : int;
    }

    let create ?(max_instructions = 10_000_000) ~decoded ~memory () =
      {
        code = resolve ~program:decoded.program ~layout:decoded.layout ~memory;
        fetch_addrs = decoded.fetch_addrs;
        entry_pc = decoded.entry_pc;
        name = decoded.name;
        max_instructions;
        regs = Array.make Instr.register_count 0;
        fregs = Array.make Instr.register_count 0.;
        call_stack = Array.make max_call_depth 0;
        sp = 0;
        pc = decoded.entry_pc;
        running = true;
        retired = 0;
        loads = 0;
        stores = 0;
        fp_long = 0;
        branches = 0;
        taken = 0;
      }

    (* Restore the architectural state [create] built, so one linked runner
       serves every run of a batch.  The [code] array needs no relink: it
       binds the memory's backing arrays, which are reused (and zeroed by
       the caller) across runs. *)
    let reset t =
      Array.fill t.regs 0 (Array.length t.regs) 0;
      Array.fill t.fregs 0 (Array.length t.fregs) 0.;
      t.sp <- 0;
      t.pc <- t.entry_pc;
      t.running <- true;
      t.retired <- 0;
      t.loads <- 0;
      t.stores <- 0;
      t.fp_long <- 0;
      t.branches <- 0;
      t.taken <- 0

    let corrupt_int_register t ~reg ~bit =
      if reg < 0 || reg >= Instr.register_count then
        invalid_arg "Runner.corrupt_int_register: register out of range";
      t.regs.(reg) <- t.regs.(reg) lxor (1 lsl (bit land 31))

    let corrupt_float_register t ~reg ~bit =
      if reg < 0 || reg >= Instr.register_count then
        invalid_arg "Runner.corrupt_float_register: register out of range";
      let bits = Int64.bits_of_float t.fregs.(reg) in
      t.fregs.(reg) <-
        Int64.float_of_bits (Int64.logxor bits (Int64.shift_left 1L (bit land 63)))

    let stats t =
      {
        retired = t.retired;
        loads = t.loads;
        stores = t.stores;
        fp_long_ops = t.fp_long;
        branches = t.branches;
        taken_branches = t.taken;
      }

    (* One instruction: architectural effects first (including any
       out-of-bounds raise), then the timing hooks — exactly the
       [Stepper.step]-then-[consume] order of the retired path, so the
       sequence of stateful platform accesses (and hence every PRNG draw)
       is bit-identical, even for runs that crash mid-instruction. *)
    let[@inline] exec_one t (sink : sink) =
      let pc = t.pc in
      let op = t.code.(pc) in
      let fetch = t.fetch_addrs.(pc) in
      t.retired <- t.retired + 1;
      let next = pc + 1 in
      let regs = t.regs and fregs = t.fregs in
      match op with
      | RLi (rd, v) ->
          regs.(rd) <- v;
          t.pc <- next;
          sink.on_fetch fetch
      | RAdd (rd, r1, r2) ->
          regs.(rd) <- regs.(r1) + regs.(r2);
          t.pc <- next;
          sink.on_fetch fetch
      | RAddi (rd, r1, v) ->
          regs.(rd) <- regs.(r1) + v;
          t.pc <- next;
          sink.on_fetch fetch
      | RSub (rd, r1, r2) ->
          regs.(rd) <- regs.(r1) - regs.(r2);
          t.pc <- next;
          sink.on_fetch fetch
      | RMul (rd, r1, r2) ->
          regs.(rd) <- regs.(r1) * regs.(r2);
          t.pc <- next;
          sink.on_fetch fetch;
          sink.on_int_mul ()
      | RFli (fd, v) ->
          fregs.(fd) <- v;
          t.pc <- next;
          sink.on_fetch fetch
      | RFld (fd, a) ->
          let idx = element_index a regs in
          fregs.(fd) <- a.values.(idx);
          t.loads <- t.loads + 1;
          t.pc <- next;
          sink.on_fetch fetch;
          sink.on_read (a.byte_base + (idx * Layout.element_bytes))
      | RFst (fs, a) ->
          let idx = element_index a regs in
          a.values.(idx) <- fregs.(fs);
          t.stores <- t.stores + 1;
          t.pc <- next;
          sink.on_fetch fetch;
          sink.on_write (a.byte_base + (idx * Layout.element_bytes))
      | RFadd (fd, f1, f2) ->
          fregs.(fd) <- fregs.(f1) +. fregs.(f2);
          t.pc <- next;
          sink.on_fetch fetch;
          sink.on_fp_short Instr.Fadd_op
      | RFsub (fd, f1, f2) ->
          fregs.(fd) <- fregs.(f1) -. fregs.(f2);
          t.pc <- next;
          sink.on_fetch fetch;
          sink.on_fp_short Instr.Fadd_op
      | RFmul (fd, f1, f2) ->
          fregs.(fd) <- fregs.(f1) *. fregs.(f2);
          t.pc <- next;
          sink.on_fetch fetch;
          sink.on_fp_short Instr.Fmul_op
      | RFdiv (fd, f1, f2) ->
          let x = fregs.(f1) and y = fregs.(f2) in
          fregs.(fd) <- x /. y;
          t.fp_long <- t.fp_long + 1;
          t.pc <- next;
          sink.on_fetch fetch;
          sink.on_fp_long Instr.Fdiv_op x y
      | RFsqrt (fd, f1) ->
          let x = fregs.(f1) in
          fregs.(fd) <- sqrt x;
          t.fp_long <- t.fp_long + 1;
          t.pc <- next;
          sink.on_fetch fetch;
          sink.on_fp_long Instr.Fsqrt_op x 0.
      | RFabs (fd, f1) ->
          fregs.(fd) <- Float.abs fregs.(f1);
          t.pc <- next;
          sink.on_fetch fetch;
          sink.on_fp_short Instr.Fadd_op
      | RFmov (fd, f1) ->
          fregs.(fd) <- fregs.(f1);
          t.pc <- next;
          sink.on_fetch fetch;
          sink.on_fp_short Instr.Fadd_op
      | RFcvt (rd, f1) ->
          regs.(rd) <- int_of_float fregs.(f1);
          t.pc <- next;
          sink.on_fetch fetch
      | RIcvt (fd, r1) ->
          fregs.(fd) <- float_of_int regs.(r1);
          t.pc <- next;
          sink.on_fetch fetch
      | RBlt (r1, r2, l) ->
          t.branches <- t.branches + 1;
          let cond = regs.(r1) < regs.(r2) in
          if cond then begin
            t.taken <- t.taken + 1;
            t.pc <- l;
            sink.on_fetch fetch;
            sink.on_taken ()
          end
          else begin
            t.pc <- next;
            sink.on_fetch fetch
          end
      | RBge (r1, r2, l) ->
          t.branches <- t.branches + 1;
          let cond = regs.(r1) >= regs.(r2) in
          if cond then begin
            t.taken <- t.taken + 1;
            t.pc <- l;
            sink.on_fetch fetch;
            sink.on_taken ()
          end
          else begin
            t.pc <- next;
            sink.on_fetch fetch
          end
      | RBeq (r1, r2, l) ->
          t.branches <- t.branches + 1;
          let cond = regs.(r1) = regs.(r2) in
          if cond then begin
            t.taken <- t.taken + 1;
            t.pc <- l;
            sink.on_fetch fetch;
            sink.on_taken ()
          end
          else begin
            t.pc <- next;
            sink.on_fetch fetch
          end
      | RBne (r1, r2, l) ->
          t.branches <- t.branches + 1;
          let cond = regs.(r1) <> regs.(r2) in
          if cond then begin
            t.taken <- t.taken + 1;
            t.pc <- l;
            sink.on_fetch fetch;
            sink.on_taken ()
          end
          else begin
            t.pc <- next;
            sink.on_fetch fetch
          end
      | RFblt (f1, f2, l) ->
          t.branches <- t.branches + 1;
          let cond = fregs.(f1) < fregs.(f2) in
          if cond then begin
            t.taken <- t.taken + 1;
            t.pc <- l;
            sink.on_fetch fetch;
            sink.on_taken ()
          end
          else begin
            t.pc <- next;
            sink.on_fetch fetch
          end
      | RFbge (f1, f2, l) ->
          t.branches <- t.branches + 1;
          let cond = fregs.(f1) >= fregs.(f2) in
          if cond then begin
            t.taken <- t.taken + 1;
            t.pc <- l;
            sink.on_fetch fetch;
            sink.on_taken ()
          end
          else begin
            t.pc <- next;
            sink.on_fetch fetch
          end
      | RJmp l ->
          t.branches <- t.branches + 1;
          t.taken <- t.taken + 1;
          t.pc <- l;
          sink.on_fetch fetch;
          sink.on_taken ()
      | RCall l ->
          if t.sp >= max_call_depth then raise (Stack_overflow_ t.name);
          t.call_stack.(t.sp) <- next;
          t.sp <- t.sp + 1;
          t.branches <- t.branches + 1;
          t.taken <- t.taken + 1;
          t.pc <- l;
          sink.on_fetch fetch;
          sink.on_taken ()
      | RRet ->
          t.branches <- t.branches + 1;
          t.taken <- t.taken + 1;
          (if t.sp = 0 then t.running <- false
           else begin
             t.sp <- t.sp - 1;
             t.pc <- t.call_stack.(t.sp)
           end);
          sink.on_fetch fetch;
          sink.on_taken ()
      | RNop ->
          t.pc <- next;
          sink.on_fetch fetch
      | RHalt ->
          t.running <- false;
          sink.on_fetch fetch

    (* The Runaway bound moves out of the inner loop: execute in blocks of
       at most [block] instructions, re-checking the remaining budget only
       at block boundaries.  The raise fires at exactly the step the
       per-instruction check would have fired on (budget exhausted while
       still running), so oracle equality holds for runaway programs too. *)
    let block = 4096

    let run t ~sink =
      while t.running do
        let budget = t.max_instructions - t.retired in
        if budget <= 0 then raise (Runaway t.name);
        let n = ref (if budget < block then budget else block) in
        while t.running && !n > 0 do
          exec_one t sink;
          decr n
        done
      done;
      stats t

    (* Supervised variant for fault-injected runs: [post] fires after every
       retired instruction (watchdog, SEU injection), matching the retired
       per-step loop's cadence. *)
    let run_supervised t ~sink ~post =
      while t.running do
        let budget = t.max_instructions - t.retired in
        if budget <= 0 then raise (Runaway t.name);
        let n = ref (if budget < block then budget else block) in
        while t.running && !n > 0 do
          exec_one t sink;
          post ();
          decr n
        done
      done;
      stats t
  end
end

let run ?max_instructions ~program ~layout ~memory ~on_retire () =
  let stepper = Stepper.create ?max_instructions ~program ~layout ~memory () in
  let rec go () =
    match Stepper.step stepper with
    | Some retired ->
        on_retire retired;
        go ()
    | None -> ()
  in
  go ();
  Stepper.stats stepper

let path_signature ?max_instructions ~program ~layout ~memory () =
  let h = ref 0 in
  let on_retire (r : Instr.retired) =
    match r.Instr.work with
    | Instr.Ctrl taken ->
        (* FNV-style fold of the taken/not-taken sequence. *)
        h := (!h * 16777619) lxor (if taken then 1 else 2);
        h := !h land max_int
    | Instr.Int_alu | Instr.Int_mul | Instr.Mem_read _ | Instr.Mem_write _
    | Instr.Fp_short _ | Instr.Fp_long _ | Instr.No_op ->
        ()
  in
  let (_ : stats) = run ?max_instructions ~program ~layout ~memory ~on_retire () in
  !h
