(** Data-memory contents of a run: one float array per data symbol.

    Values and addresses are deliberately separate concerns — {!Layout}
    decides where a symbol lives (timing), this module holds what it
    contains (semantics).  A fresh [Memory.t] is created per run and filled
    with that run's inputs. *)

type t

(** Zero-initialized memory for all data symbols of the program. *)
val create : Program.t -> t

val get : t -> string -> int -> float
val set : t -> string -> int -> float -> unit

(** [load_array t symbol values] copies [values] into the symbol
    (length-checked: [values] must not exceed the symbol size). *)
val load_array : t -> string -> float array -> unit

(** [read_array t symbol] snapshots the whole symbol. *)
val read_array : t -> string -> float array

(** [raw t symbol] — the live backing array, shared with [t].  Used by the
    executor's hot loop; treat as owned by the memory. *)
val raw : t -> string -> float array

(** [clear t] zero-fills every data array in place, restoring the state a
    fresh {!create} would produce — the reset step when one memory image is
    reused across batched runs. *)
val clear : t -> unit
