(** Functional execution of a program: interprets the instruction semantics,
    updating registers and {!Memory}, and streams one {!Instr.retired} record
    per executed instruction to the caller (normally the platform timing
    model).

    Execution is fully deterministic given (program, layout, memory
    contents); all timing is the consumer's business.

    Two interfaces: {!run} executes to completion; {!Stepper} executes one
    instruction at a time, which is what a preemptive scheduler needs to
    interleave several tasks on one core. *)

exception Stack_overflow_ of string

exception Runaway of string
(** raised when [max_instructions] is exceeded — almost always an
    unintended infinite loop in a generated program *)

type stats = {
  retired : int;
  loads : int;
  stores : int;
  fp_long_ops : int;  (** FDIV + FSQRT count *)
  branches : int;
  taken_branches : int;
}

(** Resumable execution: one instruction per {!Stepper.step} call. *)
module Stepper : sig
  type t

  (** [create ?max_instructions ?entry ?init_regs ~program ~layout ~memory ()]
      — [entry] defaults to the program's entry label; [init_regs] presets
      integer registers (e.g. a task's activation index) before the first
      instruction. *)
  val create :
    ?max_instructions:int ->
    ?entry:string ->
    ?init_regs:(int * int) list ->
    program:Program.t ->
    layout:Layout.t ->
    memory:Memory.t ->
    unit ->
    t

  (** [step t] executes one instruction and returns its retirement record,
      or [None] if the program already finished ([Halt], or [Ret] with an
      empty call stack). *)
  val step : t -> Instr.retired option

  val finished : t -> bool
  val stats : t -> stats

  (** {2 SEU injection hooks}

      [corrupt_int_register t ~reg ~bit] flips one of the low 32 bits of an
      integer register (the model's registers are architecturally 32-bit);
      [corrupt_float_register] flips one bit of the IEEE-754 image of a
      float register (which can produce inf/NaN, as on real hardware).
      Driven by the platform fault injector between steps; a corrupted
      register may change the execution path, trap (out-of-bounds access),
      diverge ({!Runaway}), or silently corrupt the program's output. *)

  val corrupt_int_register : t -> reg:int -> bit:int -> unit
  val corrupt_float_register : t -> reg:int -> bit:int -> unit
end

(** {2 Pre-decoded execution}

    The hot path of a measurement campaign.  {!Stepper} allocates one
    {!Instr.retired} record per executed instruction and recomputes the
    fetch address per step; the pre-decoded path decodes a program once
    ({!Decoded.decode} — label targets, data bases and fetch addresses all
    resolved to flat arrays), links it against a live memory image once per
    {!Decoded.Runner}, and streams timing through a {!sink} of
    per-work-class hooks with no per-instruction allocation.

    The call sequence seen by the platform model — architectural effects,
    then fetch, then at most one work event per instruction — is exactly
    the [Stepper.step]-then-consume sequence of the retired path, so cycle
    counts, stats and PRNG draw order are bit-identical ([test_hotpath]
    pins this against the retired stepper, which stays as the oracle). *)

(** Per-work-class timing hooks; see {!Decoded}.  [on_fetch] is called once
    per executed instruction with its fetch address; work classes with zero
    platform latency ([Int_alu], [No_op], not-taken branches) get no
    further call. *)
type sink = {
  on_fetch : int -> unit;
  on_int_mul : unit -> unit;
  on_read : int -> unit;  (** data read, byte address *)
  on_write : int -> unit;  (** data write, byte address *)
  on_fp_short : Instr.fpu_op -> unit;
  on_fp_long : Instr.fpu_op -> float -> float -> unit;  (** op, operands *)
  on_taken : unit -> unit;  (** taken-branch redirect *)
}

module Decoded : sig
  type t
  (** A program compiled for execution: pure function of (program, layout),
      memory-independent — shareable across domains, memory images and
      runs, and cacheable per scenario config. *)

  val decode : program:Program.t -> layout:Layout.t -> t
  val name : t -> string

  (** A decoded program linked against one live memory image.  Reusable
      across runs via {!Runner.reset} (the caller zeroes and reloads the
      memory between runs). *)
  module Runner : sig
    type decoded := t
    type t

    val create : ?max_instructions:int -> decoded:decoded -> memory:Memory.t -> unit -> t

    (** Restore registers, call stack, pc and counters to the initial
        state; the memory image is the caller's to reset. *)
    val reset : t -> unit

    (** [run t ~sink] executes from entry to completion.  Raises {!Runaway}
        / {!Stack_overflow_} / [Invalid_argument] exactly as the retired
        stepper does. *)
    val run : t -> sink:sink -> stats

    (** [run_supervised t ~sink ~post] additionally calls [post ()] after
        every retired instruction — the hook point for watchdog budgets and
        SEU injection. *)
    val run_supervised : t -> sink:sink -> post:(unit -> unit) -> stats

    val stats : t -> stats
    val corrupt_int_register : t -> reg:int -> bit:int -> unit
    val corrupt_float_register : t -> reg:int -> bit:int -> unit
  end
end

(** [run ?max_instructions ~program ~layout ~memory ~on_retire ()] executes
    from the program's entry to [Halt] (or to [Ret] with an empty call
    stack).  Default [max_instructions] is [10_000_000]. *)
val run :
  ?max_instructions:int ->
  program:Program.t ->
  layout:Layout.t ->
  memory:Memory.t ->
  on_retire:(Instr.retired -> unit) ->
  unit ->
  stats

(** [path_signature ~program ~layout ~memory ()] executes without a consumer
    and returns a hash of the taken/not-taken branch sequence: two runs with
    the same signature followed the same execution path.  Used by the
    per-path analysis of the MBPTA protocol. *)
val path_signature :
  ?max_instructions:int ->
  program:Program.t ->
  layout:Layout.t ->
  memory:Memory.t ->
  unit ->
  int
