type t = (string, float array) Hashtbl.t

let create program =
  let t = Hashtbl.create 16 in
  List.iter
    (fun d -> Hashtbl.add t d.Program.symbol (Array.make d.Program.elements 0.))
    (Program.data program);
  t

let find t symbol =
  match Hashtbl.find_opt t symbol with
  | Some a -> a
  | None -> invalid_arg ("Memory: unknown symbol " ^ symbol)

let get t symbol i = (find t symbol).(i)
let set t symbol i v = (find t symbol).(i) <- v

let load_array t symbol values =
  let a = find t symbol in
  if Array.length values > Array.length a then
    invalid_arg ("Memory.load_array: too many values for " ^ symbol);
  Array.blit values 0 a 0 (Array.length values)

let read_array t symbol = Array.copy (find t symbol)
let raw t symbol = find t symbol

(* Restore the all-zero state of [create] in place, so a batched campaign
   can reuse one memory image across runs.  Bit-identity depends on this
   being exact: the FPU's value-dependent latencies read operand bit
   patterns, so stale data from a previous run would change timing. *)
let clear t = Hashtbl.iter (fun _ a -> Array.fill a 0 (Array.length a) 0.) t
