(** Stage-resolved micro-profiler for the campaign pipeline.

    Attributes wall time to the stages a run passes through — codegen,
    decode, execute, flush, seed derivation, trace, store, analysis — so a
    perf regression names the stage that caused it instead of hiding in a
    campaign-level total.

    Design constraints, in order:

    - {b near-zero cost when off}: the common path is one atomic load and a
      direct call, no clock read, no allocation;
    - {b domain-safe}: accumulators are per-stage [Atomic.t] counters, so
      worker domains race only on commutative fetch-and-add — the same
      discipline as [Trace.Counters], without a mutex on the hot path;
    - {b monotonic}: timestamps come from the platform monotonic clock
      (bechamel's [clock_gettime(CLOCK_MONOTONIC)] stub), immune to wall
      clock steps;
    - {b dependency-free within the repo}: sits below every repro library
      so both the ISA/TVCA layer and the campaign layer can attribute time
      to it.

    The profiler is process-global: enabling it in a campaign driver
    profiles every stage annotation in the process.  [snapshot] totals are
    sums over all domains. *)

type stage =
  | Codegen  (** TVCA program generation from scenario config *)
  | Decode  (** compiling a program into the pre-decoded executable form *)
  | Execute  (** the simulator inner loop (decoded or stepper) *)
  | Flush  (** [Core_sim.reset_run]: cache/TLB/DRAM flush + stats reset *)
  | Seed_derivation  (** per-run scenario/platform/fault seed expansion *)
  | Trace  (** trace event construction and flushing *)
  | Store  (** sample-store lookup, append and checkpoint barriers *)
  | Analysis  (** the MBPTA statistical pipeline *)

(** All stages, in the fixed presentation order used by reports. *)
val stages : stage list

(** Stable lowercase name, used as the counter key ["profile.<name>_ns"]. *)
val stage_name : stage -> string

(** [of_stage_name s] inverts {!stage_name}; [None] for unknown names. *)
val of_stage_name : string -> stage option

(** Enable or disable globally.  Disabled is the default and costs one
    atomic load per annotation. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Monotonic timestamp in nanoseconds. *)
val now_ns : unit -> int64

(** [time stage f] runs [f ()], attributing its wall time to [stage] when
    the profiler is enabled.  Exceptions are re-raised after attribution.
    Nested annotations double-count by design (a parent stage includes its
    children); the pipeline annotates disjoint stages, so report totals
    stay additive. *)
val time : stage -> (unit -> 'a) -> 'a

(** [add stage ~ns] attributes [ns] nanoseconds (and one call) directly —
    for callers that already hold their own timestamps.  No-op when
    disabled. *)
val add : stage -> ns:int64 -> unit

type entry = { stage : stage; ns : int64; calls : int }

(** Totals since the last [reset], in {!stages} order, including zero
    entries — so a report can show which stages never ran. *)
val snapshot : unit -> entry list

(** Zero every accumulator (does not change the enabled flag). *)
val reset : unit -> unit

(** Render a snapshot as an aligned text table: one line per stage with
    total ms, call count and per-call cost, sorted by descending total;
    stages with zero calls are summarized on a trailing line.  Returns
    [""] for an all-zero snapshot. *)
val render : entry list -> string
