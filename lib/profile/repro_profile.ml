type stage =
  | Codegen
  | Decode
  | Execute
  | Flush
  | Seed_derivation
  | Trace
  | Store
  | Analysis

let stages =
  [ Codegen; Decode; Execute; Flush; Seed_derivation; Trace; Store; Analysis ]

let index = function
  | Codegen -> 0
  | Decode -> 1
  | Execute -> 2
  | Flush -> 3
  | Seed_derivation -> 4
  | Trace -> 5
  | Store -> 6
  | Analysis -> 7

let n_stages = List.length stages

let stage_name = function
  | Codegen -> "codegen"
  | Decode -> "decode"
  | Execute -> "execute"
  | Flush -> "flush"
  | Seed_derivation -> "seed_derivation"
  | Trace -> "trace"
  | Store -> "store"
  | Analysis -> "analysis"

let of_stage_name s = List.find_opt (fun st -> String.equal (stage_name st) s) stages

(* One atomic cell per stage per quantity.  Fetch-and-add is commutative, so
   concurrent domains lose nothing; totals are exact regardless of
   interleaving.  [Atomic.t] boxes each cell separately, which also keeps
   the cells on distinct words (no torn reads). *)
let ns_acc = Array.init n_stages (fun _ -> Atomic.make 0)
let calls_acc = Array.init n_stages (fun _ -> Atomic.make 0)
let on = Atomic.make false

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on
let now_ns () = Monotonic_clock.now ()

(* Accumulate in native ints: a single fetch_and_add, no allocation.  A
   63-bit ns counter wraps after ~146 years of profiled time. *)
let record stage t0 =
  let dt = Int64.sub (Monotonic_clock.now ()) t0 in
  let i = index stage in
  ignore (Atomic.fetch_and_add ns_acc.(i) (Int64.to_int dt));
  ignore (Atomic.fetch_and_add calls_acc.(i) 1)

let time stage f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Monotonic_clock.now () in
    match f () with
    | v ->
        record stage t0;
        v
    | exception e ->
        record stage t0;
        raise e
  end

let add stage ~ns =
  if Atomic.get on then begin
    let i = index stage in
    ignore (Atomic.fetch_and_add ns_acc.(i) (Int64.to_int ns));
    ignore (Atomic.fetch_and_add calls_acc.(i) 1)
  end

type entry = { stage : stage; ns : int64; calls : int }

let snapshot () =
  List.map
    (fun stage ->
      let i = index stage in
      {
        stage;
        ns = Int64.of_int (Atomic.get ns_acc.(i));
        calls = Atomic.get calls_acc.(i);
      })
    stages

let reset () =
  Array.iter (fun c -> Atomic.set c 0) ns_acc;
  Array.iter (fun c -> Atomic.set c 0) calls_acc

let render entries =
  let active = List.filter (fun e -> e.calls > 0) entries in
  if active = [] then ""
  else begin
    let sorted =
      List.sort (fun a b -> Int64.compare b.ns a.ns) active
    in
    let total_ns = List.fold_left (fun acc e -> Int64.add acc e.ns) 0L sorted in
    let buf = Buffer.create 256 in
    let ms ns = Int64.to_float ns /. 1e6 in
    List.iter
      (fun e ->
        let share =
          if Int64.equal total_ns 0L then 0.
          else 100. *. Int64.to_float e.ns /. Int64.to_float total_ns
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-16s %10.3f ms  %5.1f%%  %9d calls  %8.1f ns/call\n"
             (stage_name e.stage) (ms e.ns) share e.calls
             (Int64.to_float e.ns /. float_of_int (Stdlib.max 1 e.calls))))
      sorted;
    let idle = List.filter (fun e -> e.calls = 0) entries in
    if idle <> [] then
      Buffer.add_string buf
        (Printf.sprintf "  (no calls: %s)\n"
           (String.concat ", " (List.map (fun e -> stage_name e.stage) idle)));
    Buffer.contents buf
  end
