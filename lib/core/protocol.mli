(** The end-to-end MBPTA protocol (Cucu-Grosjean et al., ECRTS 2012; applied
    industrially in the paper): given a series of execution-time
    measurements taken under randomized conditions,

    + verify the i.i.d. hypothesis ({!Iid});
    + verify that the number of runs satisfies the convergence criterion
      ({!Repro_evt.Convergence});
    + select a tail model and fit it on block maxima (Gumbel by default;
      optionally full GEV, or POT/GPD);
    + return the {!Repro_evt.Pwcet} curve plus every intermediate verdict.

    The protocol is deliberately workload-agnostic: it consumes a plain
    measurement vector (or a [measure] function), exactly like a timing
    analysis tool attached to a target platform. *)

type tail =
  | Gumbel  (** Gumbel fit on block maxima (default) *)
  | Gev  (** full GEV fit on block maxima *)
  | Pot  (** peaks-over-threshold, GPD excesses *)
  | Exponential_pot
      (** peaks-over-threshold with the exponential (xi = 0) tail of the
          original MBPTA formulation; pair with the {!Repro_evt.Tail_test}
          exponentiality diagnostic *)

(** Bootstrap sub-options: when attached to {!options}, the analysis also
    computes a {!Repro_evt.Bootstrap} confidence interval on the pWCET at
    [bootstrap_probability].  The replicate PRNG is created from
    [bootstrap_seed], so the interval is a pure function of (sample,
    options) — bit-identical at every job count. *)
type bootstrap_options = {
  replicates : int;  (** bootstrap resamples, >= 20 (default 200) *)
  bootstrap_confidence : float;  (** interval confidence, default 0.95 *)
  bootstrap_seed : int64;  (** base seed of the replicate-PRNG derivation *)
  bootstrap_probability : float;
      (** cutoff probability of the bounded estimate, default 1e-9 *)
}

val default_bootstrap_options : bootstrap_options

type options = {
  alpha : float;  (** significance level of the i.i.d. tests, 0.05 *)
  gate_on_iid : bool;
      (** reject the analysis when the i.i.d. tests fail (default); when
          false the verdicts are still computed and reported but the
          analysis proceeds — for diagnostic tooling and for samples a
          borderline test falsely rejects *)
  tail : tail;
  block_size : int option;  (** [None]: {!Repro_evt.Block_maxima.suggest_block_size} *)
  fit_method : [ `Pwm | `Mle ];
  check_convergence : bool;
  convergence_probability : float;  (** reference exceedance, 1e-9 *)
  convergence_tolerance : float;  (** relative stability threshold, 0.01 *)
  bootstrap : bootstrap_options option;
      (** [None] (default): no bootstrap pass, analysis output unchanged *)
}

val default_options : options

type analysis = {
  sample : float array;
  iid : Iid.result;
  convergence : Repro_evt.Convergence.result option;
  block_size : int;
  curve : Repro_evt.Pwcet.t;
  goodness_of_fit : Repro_stats.Ks.result;  (** model vs block maxima / excesses *)
  goodness_of_fit_ad : Repro_stats.Anderson_darling.result;
      (** Anderson-Darling on the same fit: weights the tail, where it
          matters for extrapolation *)
  tail_diagnostic : Repro_evt.Tail_test.verdict option;
      (** [None] when the sample is too concentrated to form excesses
          (e.g. a jitterless platform producing near-constant times) *)
  bootstrap : Repro_evt.Bootstrap.interval option;
      (** sampling-uncertainty band on the pWCET estimate, present when
          {!options.bootstrap} was set *)
}

(** Everything that can stop the protocol (or a whole campaign) from
    producing a pWCET curve.  One closed taxonomy so every layer — fitting,
    i.i.d. gating, fault-tolerant measurement — reports through the same
    typed channel instead of raising. *)
type failure =
  | Not_enough_runs of { have : int; need : int }
  | Iid_rejected of Iid.result
  | Not_converged of Repro_evt.Convergence.result
  | Invalid_sample of { index : int; value : float; reason : string }
      (** an observation is NaN, infinite or negative — a corrupted
          measurement must be rejected, not fitted *)
  | Faulted_runs of { survivors : int; required : int; total : int }
      (** resilient campaign: too many runs were quarantined for the
          surviving sample to meet the {!Resilience.policy} threshold *)
  | Budget_exhausted of { spent : int; limit : int; runs_completed : int }
      (** resilient campaign: the campaign-wide retry budget ran out *)

val pp_failure : Format.formatter -> failure -> unit

(** [analyze ?options ?jobs ?trace xs] runs the protocol on a collected
    sample.  [jobs] (default 1) fans the bootstrap replicates (when
    {!options.bootstrap} is set) out over the domain pool — results are
    bit-identical at every job count, the analysis-side extension of the
    campaign determinism contract.  The measurement vector is sorted exactly
    once and threaded through the EVT fit, ECDF, and tail diagnostics.

    With [trace] attached, every intermediate verdict is also recorded as a
    trace event ({!Trace.Iid_result}, {!Trace.Convergence}, {!Trace.Evt_fit})
    and the counters [analysis.convergence_steps] /
    [analysis.bootstrap_replicates] are bumped — observation only, the
    returned analysis is unchanged.  Raises [Invalid_argument] on
    [jobs < 1]. *)
val analyze :
  ?options:options ->
  ?jobs:int ->
  ?trace:Trace.t ->
  float array ->
  (analysis, failure) Stdlib.result

(** [collect_and_analyze ?options ~runs ~measure ()] drives the measurement
    protocol itself: performs [runs] measurements by calling [measure i]
    (the harness is responsible for reseeding/flushing per run) and
    analyzes them.  Collection is {e strictly sequential} in ascending run
    order — this is the entry point for stateful measurement sources (e.g.
    a shared synthetic generator); a pure [measure] can use
    {!Campaign.run}'s domain-parallel collection instead.

    With [store] — an open {!Store.session} plus the phase name to file
    chunks under — the sequential collection checkpoints at every chunk
    barrier and replays recorded chunks without calling [measure].  Note
    that with a {e stateful} [measure] a partially cached record changes
    which calls [measure] receives (cached runs are skipped); the
    bit-identical resume contract requires the pure-function-of-index
    contract, exactly as parallel collection does. *)
val collect_and_analyze :
  ?options:options ->
  ?jobs:int ->
  ?store:Store.session * string ->
  runs:int ->
  measure:(int -> float) ->
  unit ->
  (analysis, failure) Stdlib.result

(** Standard cutoff-probability ladder of the paper's Figure 3:
    1e-6 .. 1e-15, one per decade (alternating decades: 1e-6, 1e-7, ...). *)
val standard_cutoffs : float list

(** [pwcet_table analysis] — pWCET estimate at each standard cutoff. *)
val pwcet_table : analysis -> (float * float) list

val pp_analysis : Format.formatter -> analysis -> unit
