(** The MBPTA-vs-industrial-practice comparison of the paper's Figure 3 and
    the "Average performance" paragraph, as a reusable report object. *)

type comparison = {
  det_summary : Repro_stats.Descriptive.summary;  (** DET platform times *)
  rand_summary : Repro_stats.Descriptive.summary;  (** RAND platform times *)
  average_overhead : float;
      (** RAND mean / DET mean - 1; the paper finds "no noticeable
          difference" *)
  mbta : Mbta.result;  (** industrial bound on the DET observations *)
  pwcet_at : (float * float) list;  (** MBPTA estimates at standard cutoffs *)
  margin_at_1e6 : float;
      (** pWCET(1e-6) over the highest RAND observation; the paper reports
          "an increase of 50%" at this cutoff *)
}

val compare :
  ?engineering_factor:float ->
  analysis:Protocol.analysis ->
  det_sample:float array ->
  unit ->
  comparison

val pp_comparison : Format.formatter -> comparison -> unit

(** {2 Schedule-randomization report}

    One row per shuffle policy.  [lib/core] deliberately does not see the
    TVCA layer, so rows carry pre-computed metrics (the CLI converts from
    [Rtos.randomization]). *)

type shuffle_row = {
  policy : string;  (** stable policy name: ["fixed"], ["shuffle"], ["jitter"] *)
  summary : Repro_stats.Descriptive.summary;
      (** per-run worst-case task response times *)
  pwcet_at_1e6 : float option;  (** [None] when the EVT fit was not produced *)
  analysis_note : string option;  (** gate failures etc., verbatim *)
  schedules : int;
  distinct_schedules : int;
  entropy_bits : float;  (** Shannon entropy of the realized schedules *)
  vulnerability : float;  (** attacker best-guess probability (modal schedule) *)
}

(** Renders the policy table; pWCET impact is reported relative to the
    ["fixed"] row when present. *)
val render_shuffle : shuffle_row list -> string

(** {2 Timing-leak verdict} *)

type leak_verdict = {
  label_a : string;
  label_b : string;
  welch : Repro_stats.Welch.result;
  cohens_d : float;
  leak : bool;  (** the Welch test rejected equal means at its alpha *)
}

(** [leak_verdict ?alpha ~label_a ~label_b xs ys] — Welch t-test plus
    Cohen's d over two campaigns.  Raises [Invalid_argument] (from the
    stats layer) if either sample has fewer than two observations or
    [alpha] is outside (0, 1). *)
val leak_verdict :
  ?alpha:float -> label_a:string -> label_b:string -> float array -> float array ->
  leak_verdict

(** One grep-able block; the verdict line contains ["LEAK DETECTED"] or
    ["no leak detected"]. *)
val render_leak : leak_verdict -> string

(** Full text report: i.i.d. verdicts, the pWCET table, the comparison and
    the Figure 2 plot; when the campaign ran under {!Resilience}
    supervision, a fault/retry summary table per platform is appended. *)
val render :
  analysis:Protocol.analysis ->
  comparison:comparison ->
  ?det_resilience:Resilience.report ->
  ?rand_resilience:Resilience.report ->
  unit ->
  string
