(** The MBPTA-vs-industrial-practice comparison of the paper's Figure 3 and
    the "Average performance" paragraph, as a reusable report object. *)

type comparison = {
  det_summary : Repro_stats.Descriptive.summary;  (** DET platform times *)
  rand_summary : Repro_stats.Descriptive.summary;  (** RAND platform times *)
  average_overhead : float;
      (** RAND mean / DET mean - 1; the paper finds "no noticeable
          difference" *)
  mbta : Mbta.result;  (** industrial bound on the DET observations *)
  pwcet_at : (float * float) list;  (** MBPTA estimates at standard cutoffs *)
  margin_at_1e6 : float;
      (** pWCET(1e-6) over the highest RAND observation; the paper reports
          "an increase of 50%" at this cutoff *)
}

val compare :
  ?engineering_factor:float ->
  analysis:Protocol.analysis ->
  det_sample:float array ->
  unit ->
  comparison

val pp_comparison : Format.formatter -> comparison -> unit

(** Full text report: i.i.d. verdicts, the pWCET table, the comparison and
    the Figure 2 plot; when the campaign ran under {!Resilience}
    supervision, a fault/retry summary table per platform is appended. *)
val render :
  analysis:Protocol.analysis ->
  comparison:comparison ->
  ?det_resilience:Resilience.report ->
  ?rand_resilience:Resilience.report ->
  unit ->
  string
