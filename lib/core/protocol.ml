module Stats = Repro_stats
module Evt = Repro_evt

type tail = Gumbel | Gev | Pot | Exponential_pot

type bootstrap_options = {
  replicates : int;
  bootstrap_confidence : float;
  bootstrap_seed : int64;
  bootstrap_probability : float;
}

let default_bootstrap_options =
  {
    replicates = 200;
    bootstrap_confidence = 0.95;
    bootstrap_seed = 0x9E3779B97F4A7C15L;
    bootstrap_probability = 1e-9;
  }

type options = {
  alpha : float;
  gate_on_iid : bool;
  tail : tail;
  block_size : int option;
  fit_method : [ `Pwm | `Mle ];
  check_convergence : bool;
  convergence_probability : float;
  convergence_tolerance : float;
  bootstrap : bootstrap_options option;
}

let default_options =
  {
    alpha = 0.05;
    gate_on_iid = true;
    tail = Gumbel;
    block_size = None;
    fit_method = `Pwm;
    check_convergence = true;
    convergence_probability = 1e-9;
    convergence_tolerance = 0.01;
    bootstrap = None;
  }

type analysis = {
  sample : float array;
  iid : Iid.result;
  convergence : Evt.Convergence.result option;
  block_size : int;
  curve : Evt.Pwcet.t;
  goodness_of_fit : Stats.Ks.result;
  goodness_of_fit_ad : Stats.Anderson_darling.result;
  tail_diagnostic : Evt.Tail_test.verdict option;
  bootstrap : Evt.Bootstrap.interval option;
}

type failure =
  | Not_enough_runs of { have : int; need : int }
  | Iid_rejected of Iid.result
  | Not_converged of Evt.Convergence.result
  | Invalid_sample of { index : int; value : float; reason : string }
  | Faulted_runs of { survivors : int; required : int; total : int }
  | Budget_exhausted of { spent : int; limit : int; runs_completed : int }

let pp_failure ppf = function
  | Not_enough_runs { have; need } ->
      Format.fprintf ppf "not enough runs: have %d, need at least %d" have need
  | Iid_rejected iid -> Format.fprintf ppf "i.i.d. hypothesis rejected:@ %a" Iid.pp iid
  | Not_converged c ->
      Format.fprintf ppf "convergence criterion not met:@ %a" Evt.Convergence.pp_result c
  | Invalid_sample { index; value; reason } ->
      (* index < 0 marks a configuration problem rather than a bad
         observation (e.g. an invalid resilience policy) *)
      if index < 0 then Format.fprintf ppf "invalid campaign input: %s" reason
      else Format.fprintf ppf "invalid sample: observation %d is %s (%h)" index reason value
  | Faulted_runs { survivors; required; total } ->
      Format.fprintf ppf
        "too many faulted runs: only %d of %d survived, need at least %d" survivors total
        required
  | Budget_exhausted { spent; limit; runs_completed } ->
      Format.fprintf ppf "retry budget exhausted: %d of %d retries spent after %d runs"
        spent limit runs_completed

let min_runs = 100

(* Execution times are finite non-negative cycle counts; anything else in
   the vector means the harness fed us a corrupted or uninitialized
   measurement.  Catch it here with a typed failure instead of letting a
   NaN poison the order statistics and the fits downstream. *)
let validate_sample xs =
  let n = Array.length xs in
  let rec go i =
    if i >= n then None
    else
      let v = xs.(i) in
      if Float.is_nan v then Some (Invalid_sample { index = i; value = v; reason = "NaN" })
      else if Float.abs v = Float.infinity then
        Some (Invalid_sample { index = i; value = v; reason = "infinite" })
      else if v < 0. then
        Some (Invalid_sample { index = i; value = v; reason = "negative" })
      else go (i + 1)
  in
  go 0

(* [xs] is the sample in measurement (time) order — block maxima must be
   formed over it, a block is a window of consecutive runs.  [sorted_xs] is
   the same multiset sorted ascending once by [analyze]; every consumer
   that only needs order statistics (the curve's ECDF, the POT threshold
   quantile) takes the pre-sorted array instead of re-sorting. *)
let fit_curve (options : options) ~sorted_xs xs =
  let block_size =
    match options.block_size with
    | Some b -> b
    | None -> Evt.Block_maxima.suggest_block_size (Array.length xs)
  in
  match options.tail with
  | Gumbel ->
      let maxima = Evt.Block_maxima.extract ~block_size xs in
      let method_ =
        match options.fit_method with `Pwm -> Evt.Gumbel_fit.Pwm | `Mle -> Evt.Gumbel_fit.Mle
      in
      let model = Evt.Gumbel_fit.fit ~method_ maxima in
      let curve =
        Evt.Pwcet.create_sorted ~model:(Evt.Pwcet.Gumbel_tail model) ~block_size
          ~sample:sorted_xs
      in
      let ad =
        Stats.Anderson_darling.test maxima ~cdf:(Stats.Distribution.Gumbel.cdf model)
      in
      (block_size, curve, Evt.Gumbel_fit.goodness_of_fit model maxima, ad)
  | Gev ->
      let maxima = Evt.Block_maxima.extract ~block_size xs in
      let method_ =
        match options.fit_method with `Pwm -> Evt.Gev_fit.Pwm | `Mle -> Evt.Gev_fit.Mle
      in
      let model = Evt.Gev_fit.fit ~method_ maxima in
      let curve =
        Evt.Pwcet.create_sorted ~model:(Evt.Pwcet.Gev_tail model) ~block_size
          ~sample:sorted_xs
      in
      let ad =
        Stats.Anderson_darling.test maxima ~cdf:(Stats.Distribution.Gev.cdf model)
      in
      (block_size, curve, Evt.Gev_fit.goodness_of_fit model maxima, ad)
  | Pot | Exponential_pot ->
      let method_ =
        if options.tail = Exponential_pot then Evt.Gpd_fit.Exponential
        else match options.fit_method with
          | `Pwm -> Evt.Gpd_fit.Pwm
          | `Mle -> Evt.Gpd_fit.Mle
      in
      let pot = Evt.Gpd_fit.Pot.analyze ~method_ ~sorted:true sorted_xs in
      let curve =
        Evt.Pwcet.create_sorted ~model:(Evt.Pwcet.Pot_tail pot) ~block_size:1
          ~sample:sorted_xs
      in
      let above_threshold =
        Array.to_list sorted_xs
        |> List.filter_map (fun x ->
               if x > pot.Evt.Gpd_fit.Pot.threshold then Some x else None)
        |> Array.of_list
      in
      let gof =
        Stats.Ks.one_sample above_threshold
          ~cdf:(Stats.Distribution.Gpd.cdf pot.Evt.Gpd_fit.Pot.model)
      in
      let ad =
        Stats.Anderson_darling.test above_threshold
          ~cdf:(Stats.Distribution.Gpd.cdf pot.Evt.Gpd_fit.Pot.model)
      in
      (1, curve, gof, ad)

(* Observability glue: translate the pipeline's verdicts into trace
   events.  All no-ops when no trace is attached. *)
let trace_emit trace event =
  match trace with None -> () | Some t -> Trace.emit t event

let trace_fit trace ~block_size ~curve ~gof ~ad =
  match trace with
  | None -> ()
  | Some t ->
      let tail, params =
        match Evt.Pwcet.model curve with
        | Evt.Pwcet.Gumbel_tail g ->
            ( "gumbel",
              [
                ("mu", g.Stats.Distribution.Gumbel.mu);
                ("beta", g.Stats.Distribution.Gumbel.beta);
              ] )
        | Evt.Pwcet.Gev_tail g ->
            ( "gev",
              [
                ("mu", g.Stats.Distribution.Gev.mu);
                ("sigma", g.Stats.Distribution.Gev.sigma);
                ("xi", g.Stats.Distribution.Gev.xi);
              ] )
        | Evt.Pwcet.Pot_tail p ->
            ( "pot",
              [
                ("threshold", p.Evt.Gpd_fit.Pot.threshold);
                ("sigma", p.Evt.Gpd_fit.Pot.model.Stats.Distribution.Gpd.sigma);
                ("xi", p.Evt.Gpd_fit.Pot.model.Stats.Distribution.Gpd.xi);
                ("exceedance_rate", p.Evt.Gpd_fit.Pot.exceedance_rate);
              ] )
      in
      Trace.emit t
        (Trace.Evt_fit
           {
             tail;
             block_size;
             params;
             gof_ks_p = gof.Stats.Ks.p_value;
             gof_ad_stat = ad.Stats.Anderson_darling.statistic;
           })

let counter_add trace name v =
  match trace with
  | None -> ()
  | Some t -> Trace.Counters.add (Trace.counters t) name v

let analyze ?(options = default_options) ?(jobs = 1) ?trace xs =
  if jobs < 1 then invalid_arg "Protocol.analyze: jobs must be >= 1";
  let n = Array.length xs in
  if n < min_runs then Error (Not_enough_runs { have = n; need = min_runs })
  else
    match validate_sample xs with
    | Some failure -> Error failure
    | None ->
  begin
    let iid = Iid.check ~alpha:options.alpha xs in
    (match trace with None -> () | Some t -> Trace.emit t (Trace.iid_event iid));
    if options.gate_on_iid && not iid.Iid.accepted then Error (Iid_rejected iid)
    else begin
      (* The one sort of the measurement vector: every downstream consumer
         that needs order statistics (curve ECDF, POT threshold, tail-test
         threshold) takes this array; the i.i.d. checks, convergence study
         and block-maxima extraction keep the time-ordered [xs], where run
         order is the point. *)
      let sorted_xs = Array.copy xs in
      Array.sort Float.compare sorted_xs;
      let convergence =
        if options.check_convergence then
          Some
            (Evt.Convergence.study ~probability:options.convergence_probability
               ~tolerance:options.convergence_tolerance xs)
        else None
      in
      (match convergence with
      | Some c ->
          counter_add trace "analysis.convergence_steps"
            (List.length c.Evt.Convergence.history);
          trace_emit trace
            (Trace.Convergence
               {
                 converged = c.Evt.Convergence.converged;
                 runs_used = c.Evt.Convergence.runs_used;
               })
      | None -> ());
      match convergence with
      | Some c when not c.Evt.Convergence.converged -> Error (Not_converged c)
      | Some _ | None ->
          let block_size, curve, goodness_of_fit, goodness_of_fit_ad =
            fit_curve options ~sorted_xs xs
          in
          trace_fit trace ~block_size ~curve ~gof:goodness_of_fit
            ~ad:goodness_of_fit_ad;
          let tail_diagnostic =
            (* near-constant samples (a jitterless platform) have no
               excesses to diagnose; that is fine, not an error *)
            try Some (Evt.Tail_test.exponentiality ~sorted:true sorted_xs)
            with Invalid_argument _ -> None
          in
          let bootstrap =
            match options.bootstrap with
            | None -> None
            | Some b ->
                let prng = Repro_rng.Prng.create b.bootstrap_seed in
                let itv =
                  Evt.Bootstrap.pwcet_interval ~replicates:b.replicates
                    ~confidence:b.bootstrap_confidence ~jobs ~prng ~sample:xs
                    ~cutoff_probability:b.bootstrap_probability ()
                in
                counter_add trace "analysis.bootstrap_replicates" b.replicates;
                Some itv
          in
          Ok
            {
              sample = xs;
              iid;
              convergence;
              block_size;
              curve;
              goodness_of_fit;
              goodness_of_fit_ad;
              tail_diagnostic;
              bootstrap;
            }
    end
  end

let collect_and_analyze ?options ?jobs ?store ~runs ~measure () =
  (* Explicit ascending loop: [Array.init]'s evaluation order is
     unspecified, and stateful measurement sources rely on run order.  The
     store path is sequential too ([jobs:1]), so checkpointing keeps the
     exact call order a stateful [measure] depends on. *)
  let xs =
    match store with
    | None -> Parallel.init ~jobs:1 runs measure
    | Some (session, phase) -> Store.collect ~jobs:1 session ~phase runs measure
  in
  analyze ?options ?jobs xs

let standard_cutoffs = [ 1e-6; 1e-7; 1e-8; 1e-9; 1e-10; 1e-11; 1e-12; 1e-13; 1e-14; 1e-15 ]

let pwcet_table analysis =
  List.map
    (fun p -> (p, Evt.Pwcet.estimate analysis.curve ~cutoff_probability:p))
    standard_cutoffs

let pp_analysis ppf a =
  Format.fprintf ppf
    "@[<v>%a@,%a@,block size: %d@,model fit (KS on maxima): %a@,model fit (AD, \
     tail-weighted): %a@,tail: %a@,"
    Iid.pp a.iid Evt.Pwcet.pp a.curve a.block_size Stats.Ks.pp_result a.goodness_of_fit
    Stats.Anderson_darling.pp_result a.goodness_of_fit_ad
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "(no excesses to diagnose)")
       Evt.Tail_test.pp_verdict)
    a.tail_diagnostic;
  (match a.convergence with
  | Some c -> Format.fprintf ppf "convergence: %a@," Evt.Convergence.pp_result c
  | None -> ());
  (match a.bootstrap with
  | Some b -> Format.fprintf ppf "bootstrap interval: %a@," Evt.Bootstrap.pp_interval b
  | None -> ());
  Format.fprintf ppf "pWCET estimates:@,";
  List.iter
    (fun (p, v) -> Format.fprintf ppf "  P(exceed) <= %.0e : %.0f cycles@," p v)
    (pwcet_table a);
  Format.fprintf ppf "@]"
