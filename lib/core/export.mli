(** Data export: CSV renderings of samples, empirical tails and pWCET
    curves, for plotting or archiving outside this tool (the numbers behind
    Figures 2 and 3).

    Functions produce strings; [to_file] writes one atomically enough for
    tooling purposes (write then rename is overkill here; a plain write is
    used). *)

(** [samples_csv ?label xs] — ["index,cycles"] rows (label becomes a third
    column when given, for stacking DET/RAND in one file). *)
val samples_csv : ?label:string -> float array -> string

(** [ecdf_csv xs] — ["cycles,exceedance_probability"] rows of the empirical
    tail. *)
val ecdf_csv : float array -> string

(** [curve_csv ?decades curve] — ["exceedance_probability,cycles"] rows of
    the analytical pWCET projection (default 15 decades). *)
val curve_csv : ?decades:int -> Repro_evt.Pwcet.t -> string

(** [comparison_csv c] — one row per Figure 3 quantity:
    ["quantity,cycles"]. *)
val comparison_csv : Report.comparison -> string

(** [to_file ~path contents] — writes, creating/truncating [path].  The
    parent directory (and any missing ancestors) is created first, so
    [--csv-dir out/run3] works without a manual mkdir; an uncreatable
    destination raises [Sys_error] naming the failing component. *)
val to_file : path:string -> string -> unit
