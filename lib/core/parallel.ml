(* Observability-aware face of the domain pool.

   The pool itself — static contiguous sharding, ascending in-chunk
   evaluation, lowest-chunk error propagation — lives in the dependency-free
   [Repro_parallel] library so that analysis code below this layer
   (bootstrap replicates, convergence studies) can fan out over the same
   scheduler.  This wrapper only translates the chunk-layout callback into
   {!Trace.Chunk} events and keeps the checkpointed variant, which needs the
   store-facing barrier discipline and belongs with the campaign layer. *)

let default_jobs = Repro_parallel.default_jobs
let chunks = Repro_parallel.chunks

(* Chunk-scheduling events are Debug-level observability: the layout is a
   pure function of (jobs, n), so it legitimately differs across job
   counts — which is exactly why the default trace level excludes it. *)
let on_chunk_of_trace = function
  | None -> None
  | Some t ->
      Some
        (fun ~chunk_index ~lo ~len ->
          Trace.emit t (Trace.Chunk { phase = Trace.current_phase t; chunk_index; lo; len }))

let init ?trace ?jobs n f =
  Repro_parallel.init ?on_chunk:(on_chunk_of_trace trace) ?jobs n f

let map ?trace ?jobs f a =
  Repro_parallel.map ?on_chunk:(on_chunk_of_trace trace) ?jobs f a

(* Chunk-granular checkpoint barriers.  Checkpoint chunks are a fixed
   [chunk_size] cut of the index space — deliberately independent of
   [jobs], so the sequence of (lo, len) pairs handed to [persist] is a pure
   function of [n] alone.  Each uncached chunk fans out over the domain
   pool internally; [persist] runs on the calling domain after the chunk's
   barrier, in ascending chunk order, which is what lets a store replay the
   record as a prefix after an interruption at any job count.

   [lo] restricts the walk to the index suffix starting there: a shard
   worker computes only its chunk span [lo, n) while the chunk boundaries
   stay the global multiples of [chunk_size], so shard-produced chunks are
   byte-for-byte the chunks a full walk would have produced. *)
(* Scheduling granularity: how many checkpoint chunks one fan-out covers.
   The chunk layout itself (and therefore every persisted byte) is a pure
   function of [n] and [chunk_size] — dispatch only groups consecutive
   uncached chunks into one [init] call, then slices and persists them in
   ascending chunk order, so the persist sequence is indistinguishable
   from the chunk-at-a-time walk.  [`Auto] times the first uncached chunk
   alone and rounds the measured cost onto {!Repro_parallel.dispatch_grid}
   via {!Repro_parallel.batch_of_cost}; because [f] is pure in the run
   index, the choice affects wall-clock only, never a sample bit. *)
type dispatch = [ `Chunk | `Batch of int | `Auto ]

(* One fan-out should amortize scheduling overhead over roughly this much
   work; chunks already past it dispatch one at a time. *)
let auto_target_ns = 50_000_000L

let emit_dispatch_note trace msg =
  match trace with
  | Some t when Trace.enabled t Trace.Debug -> Trace.emit t (Trace.Note msg)
  | _ -> ()

let init_checkpointed ?trace ?jobs ?(lo = 0) ?(dispatch = `Chunk) ~chunk_size ~lookup
    ~persist n f =
  if n < 0 then invalid_arg "Parallel.init_checkpointed: negative length";
  if chunk_size < 1 then invalid_arg "Parallel.init_checkpointed: chunk_size must be >= 1";
  if lo < 0 || lo > n then invalid_arg "Parallel.init_checkpointed: lo out of range";
  (match dispatch with
  | `Batch b when b < 1 ->
      invalid_arg "Parallel.init_checkpointed: dispatch batch must be >= 1"
  | _ -> ());
  let batch = ref (match dispatch with `Batch b -> b | `Chunk | `Auto -> 1) in
  let calibrating = ref (dispatch = `Auto) in
  let cached ~lo ~len =
    match lookup ~lo ~len with
    | None -> None
    | Some a ->
        if Array.length a <> len then
          invalid_arg
            (Printf.sprintf
               "Parallel.init_checkpointed: cached chunk at %d has %d values, expected \
                %d"
               lo (Array.length a) len);
        Some a
  in
  let compute_one lo len =
    let a = init ?trace ?jobs len (fun i -> f (lo + i)) in
    persist ~lo a;
    a
  in
  let rec go lo acc =
    if lo >= n then Array.concat (List.rev acc)
    else begin
      let len = Stdlib.min chunk_size (n - lo) in
      match cached ~lo ~len with
      | Some a -> go (lo + len) (a :: acc)
      | None ->
          if !calibrating then begin
            (* First uncached chunk: compute it alone, timed, then pin the
               batch size from its cost scaled to a full chunk. *)
            let t0 = Repro_profile.now_ns () in
            let a = compute_one lo len in
            let dt = Int64.sub (Repro_profile.now_ns ()) t0 in
            let chunk_ns =
              Int64.div (Int64.mul dt (Int64.of_int chunk_size)) (Int64.of_int len)
            in
            batch := Repro_parallel.batch_of_cost ~chunk_ns ~target_ns:auto_target_ns;
            calibrating := false;
            emit_dispatch_note trace
              (Printf.sprintf
                 "dispatch: calibrated batch of %d chunks (%Ldns per chunk)" !batch
                 chunk_ns);
            go (lo + len) (a :: acc)
          end
          else if !batch <= 1 then go (lo + len) (compute_one lo len :: acc)
          else begin
            (* Group up to [batch] consecutive uncached chunks into one
               fan-out.  The probe at each boundary reads one cached chunk
               that the main loop will read again — an accepted duplicate —
               but never computes anything out of order. *)
            let span = ref len in
            let more = ref true in
            while
              !more && !span < !batch * chunk_size && lo + !span < n
            do
              let clo = lo + !span in
              let clen = Stdlib.min chunk_size (n - clo) in
              match cached ~lo:clo ~len:clen with
              | Some _ -> more := false
              | None -> span := !span + clen
            done;
            let big = init ?trace ?jobs !span (fun i -> f (lo + i)) in
            let slices = ref [] in
            let off = ref 0 in
            while !off < !span do
              let clo = lo + !off in
              let clen = Stdlib.min chunk_size (n - clo) in
              let a = Array.sub big !off clen in
              persist ~lo:clo a;
              slices := a :: !slices;
              off := !off + clen
            done;
            go (lo + !span) (!slices @ acc)
          end
    end
  in
  if lo >= n then [||] else go lo []
