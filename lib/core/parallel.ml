(* Observability-aware face of the domain pool.

   The pool itself — static contiguous sharding, ascending in-chunk
   evaluation, lowest-chunk error propagation — lives in the dependency-free
   [Repro_parallel] library so that analysis code below this layer
   (bootstrap replicates, convergence studies) can fan out over the same
   scheduler.  This wrapper only translates the chunk-layout callback into
   {!Trace.Chunk} events and keeps the checkpointed variant, which needs the
   store-facing barrier discipline and belongs with the campaign layer. *)

let default_jobs = Repro_parallel.default_jobs
let chunks = Repro_parallel.chunks

(* Chunk-scheduling events are Debug-level observability: the layout is a
   pure function of (jobs, n), so it legitimately differs across job
   counts — which is exactly why the default trace level excludes it. *)
let on_chunk_of_trace = function
  | None -> None
  | Some t ->
      Some
        (fun ~chunk_index ~lo ~len ->
          Trace.emit t (Trace.Chunk { phase = Trace.current_phase t; chunk_index; lo; len }))

let init ?trace ?jobs n f =
  Repro_parallel.init ?on_chunk:(on_chunk_of_trace trace) ?jobs n f

let map ?trace ?jobs f a =
  Repro_parallel.map ?on_chunk:(on_chunk_of_trace trace) ?jobs f a

(* Chunk-granular checkpoint barriers.  Checkpoint chunks are a fixed
   [chunk_size] cut of the index space — deliberately independent of
   [jobs], so the sequence of (lo, len) pairs handed to [persist] is a pure
   function of [n] alone.  Each uncached chunk fans out over the domain
   pool internally; [persist] runs on the calling domain after the chunk's
   barrier, in ascending chunk order, which is what lets a store replay the
   record as a prefix after an interruption at any job count.

   [lo] restricts the walk to the index suffix starting there: a shard
   worker computes only its chunk span [lo, n) while the chunk boundaries
   stay the global multiples of [chunk_size], so shard-produced chunks are
   byte-for-byte the chunks a full walk would have produced. *)
let init_checkpointed ?trace ?jobs ?(lo = 0) ~chunk_size ~lookup ~persist n f =
  if n < 0 then invalid_arg "Parallel.init_checkpointed: negative length";
  if chunk_size < 1 then invalid_arg "Parallel.init_checkpointed: chunk_size must be >= 1";
  if lo < 0 || lo > n then invalid_arg "Parallel.init_checkpointed: lo out of range";
  let rec go lo acc =
    if lo >= n then Array.concat (List.rev acc)
    else begin
      let len = Stdlib.min chunk_size (n - lo) in
      let chunk =
        match lookup ~lo ~len with
        | Some a ->
            if Array.length a <> len then
              invalid_arg
                (Printf.sprintf
                   "Parallel.init_checkpointed: cached chunk at %d has %d values, expected \
                    %d"
                   lo (Array.length a) len);
            a
        | None ->
            let a = init ?trace ?jobs len (fun i -> f (lo + i)) in
            persist ~lo a;
            a
      in
      go (lo + len) (chunk :: acc)
    end
  in
  if lo >= n then [||] else go lo []
