(* Deterministic domain-parallel execution for measurement campaigns.

   The design is work-stealing-free on purpose: indices are split into
   [jobs] contiguous chunks fixed before any domain starts, every chunk is
   evaluated in ascending index order, and chunk results are blitted back
   into a single output array at their original offsets.  Because each
   index's result depends only on the index (the determinism contract the
   campaign seed-derivation scheme guarantees), the output is bit-identical
   regardless of job count or OS scheduling order — [jobs = 1] is the
   sequential reference and every other job count must agree with it. *)

let default_jobs () = Domain.recommended_domain_count ()

let chunks ~jobs n =
  if n < 0 then invalid_arg "Parallel.chunks: negative length";
  if jobs < 1 then invalid_arg "Parallel.chunks: jobs must be >= 1";
  if n = 0 then []
  else begin
    (* Never more chunks than indices: every chunk is non-empty. *)
    let jobs = Stdlib.min jobs n in
    let base = n / jobs and extra = n mod jobs in
    List.init jobs (fun d ->
        let lo = (d * base) + Stdlib.min d extra in
        let len = base + if d < extra then 1 else 0 in
        (lo, len))
  end

(* [Array.init]'s evaluation order is unspecified; campaigns need the
   ascending order so that a stateful [f] still sees indices in run order
   under [jobs = 1] (the sequential reference mode). *)
let init_ascending n f =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do
      a.(i) <- f i
    done;
    a
  end

(* Chunk-scheduling events are Debug-level observability: the layout is a
   pure function of (jobs, n), so it legitimately differs across job
   counts — which is exactly why the default trace level excludes it. *)
let trace_layout trace layout =
  match trace with
  | None -> ()
  | Some t ->
      let phase = Trace.current_phase t in
      List.iteri
        (fun i (lo, len) -> Trace.emit t (Trace.Chunk { phase; chunk_index = i; lo; len }))
        layout

let init ?trace ?jobs n f =
  if n < 0 then invalid_arg "Parallel.init: negative length";
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Parallel.init: jobs must be >= 1";
  if n = 0 then [||]
  else if jobs = 1 || n = 1 then begin
    trace_layout trace [ (0, n) ];
    init_ascending n f
  end
  else begin
    let layout = chunks ~jobs n in
    trace_layout trace layout;
    let eval (lo, len) =
      match init_ascending len (fun i -> f (lo + i)) with
      | a -> Ok a
      | exception e -> Error e
    in
    match layout with
    | [] -> assert false (* n >= 1 *)
    | first_chunk :: rest ->
        let spawned = List.map (fun c -> Domain.spawn (fun () -> eval c)) rest in
        (* The first chunk runs on the calling domain — with [jobs] domains
           requested we only ever spawn [jobs - 1]. *)
        let first = eval first_chunk in
        let results = first :: List.map Domain.join spawned in
        (* Re-raise the failure of the lowest-indexed chunk, so an exception
           escapes deterministically no matter which domains also failed. *)
        let arrays =
          List.map (function Ok a -> a | Error e -> raise e) results
        in
        let out = Array.make n (List.hd arrays).(0) in
        List.iter2
          (fun (lo, _) a -> Array.blit a 0 out lo (Array.length a))
          layout arrays;
        out
  end

let map ?trace ?jobs f a = init ?trace ?jobs (Array.length a) (fun i -> f a.(i))

(* Chunk-granular checkpoint barriers.  Checkpoint chunks are a fixed
   [chunk_size] cut of the index space — deliberately independent of
   [jobs], so the sequence of (lo, len) pairs handed to [persist] is a pure
   function of [n] alone.  Each uncached chunk fans out over the domain
   pool internally; [persist] runs on the calling domain after the chunk's
   barrier, in ascending chunk order, which is what lets a store replay the
   record as a prefix after an interruption at any job count. *)
let init_checkpointed ?trace ?jobs ~chunk_size ~lookup ~persist n f =
  if n < 0 then invalid_arg "Parallel.init_checkpointed: negative length";
  if chunk_size < 1 then invalid_arg "Parallel.init_checkpointed: chunk_size must be >= 1";
  let rec go lo acc =
    if lo >= n then Array.concat (List.rev acc)
    else begin
      let len = Stdlib.min chunk_size (n - lo) in
      let chunk =
        match lookup ~lo ~len with
        | Some a ->
            if Array.length a <> len then
              invalid_arg
                (Printf.sprintf
                   "Parallel.init_checkpointed: cached chunk at %d has %d values, expected \
                    %d"
                   lo (Array.length a) len);
            a
        | None ->
            let a = init ?trace ?jobs len (fun i -> f (lo + i)) in
            persist ~lo a;
            a
      in
      go (lo + len) (chunk :: acc)
    end
  in
  if n = 0 then [||] else go 0 []
