(* Structured observability: append-only JSONL event traces + an
   aggregated counters registry.  See trace.mli for the determinism
   contract; the short version is that every event is emitted from the
   coordinating domain in canonical run order, so a flushed trace is a
   pure function of the campaign configuration (at the default level). *)

type level = Summary | Runs | Debug

let level_to_string = function Summary -> "summary" | Runs -> "runs" | Debug -> "debug"

let level_of_string = function
  | "summary" -> Ok Summary
  | "runs" -> Ok Runs
  | "debug" -> Ok Debug
  | s -> Error (Printf.sprintf "unknown trace level %S (expected summary|runs|debug)" s)

let level_rank = function Summary -> 0 | Runs -> 1 | Debug -> 2

type event =
  | Meta of { schema : string; level : string }
  | Config of (string * string) list
  | Campaign_start of { runs : int; resilient : bool }
  | Campaign_end of { ok : bool; failure : string option }
  | Phase_start of { phase : string }
  | Phase_end of { phase : string; wall_ns : int option }
  | Run of {
      phase : string;
      run_index : int;
      attempts : int;
      outcome : string;
      latency : float option;
    }
  | Fault of { phase : string; run_index : int; attempt : int; kind : string; detail : string }
  | Chunk of { phase : string; chunk_index : int; lo : int; len : int }
  | Iid_result of {
      lb_stat : float;
      lb_p : float;
      ks_stat : float;
      ks_p : float;
      accepted : bool;
    }
  | Convergence of { converged : bool; runs_used : int }
  | Evt_fit of {
      tail : string;
      block_size : int;
      params : (string * float) list;
      gof_ks_p : float;
      gof_ad_stat : float;
    }
  | Cache_hit of { phase : string; key : string; runs : int }
  | Cache_miss of { phase : string; key : string }
  | Resume of { phase : string; key : string; cached_runs : int; total_runs : int }
  | Counter of { name : string; value : int }
  | Note of string

let schema_version = "trace/v1"

(* ------------------------------------------------------------------ *)
(* Minimal JSON: exactly the subset the schema emits.  No external
   dependency — the container pins the toolchain, so the writer and the
   reader live here, and the round-trip is tested in test_trace.ml. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let add_escaped b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  (* Floats keep a decimal point (or exponent) so the parser can tell
     them apart from ints; %.17g makes the text round-trip to the same
     bits.  Non-finite values never appear in a valid trace (the
     protocol rejects them first); serialize them as null defensively. *)
  let add_float b f =
    if not (Float.is_finite f) then Buffer.add_string b "null"
    else begin
      let s = Printf.sprintf "%.17g" f in
      Buffer.add_string b s;
      if String.for_all (fun c -> c <> '.' && c <> 'e' && c <> 'E') s then
        Buffer.add_string b ".0"
    end

  let rec add b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> add_float b f
    | String s ->
        Buffer.add_char b '"';
        add_escaped b s;
        Buffer.add_char b '"'
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            add b v)
          l;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            add_escaped b k;
            Buffer.add_string b "\":";
            add b v)
          kvs;
        Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 128 in
    add b v;
    Buffer.contents b

  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else fail (Printf.sprintf "expected %C" c)
    in
    let parse_literal lit v =
      if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then begin
        pos := !pos + String.length lit;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              (if !pos >= n then fail "unterminated escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char b '"'; advance ()
                 | '\\' -> Buffer.add_char b '\\'; advance ()
                 | '/' -> Buffer.add_char b '/'; advance ()
                 | 'n' -> Buffer.add_char b '\n'; advance ()
                 | 'r' -> Buffer.add_char b '\r'; advance ()
                 | 't' -> Buffer.add_char b '\t'; advance ()
                 | 'b' -> Buffer.add_char b '\b'; advance ()
                 | 'u' ->
                     if !pos + 4 >= n then fail "truncated \\u escape";
                     let hex = String.sub s (!pos + 1) 4 in
                     let code =
                       try int_of_string ("0x" ^ hex)
                       with _ -> fail "bad \\u escape"
                     in
                     (* The writer only escapes control characters, so a
                        plain byte is always the right decoding here. *)
                     Buffer.add_char b (Char.chr (code land 0xFF));
                     pos := !pos + 5
                 | c -> fail (Printf.sprintf "bad escape %C" c));
              go ()
          | c ->
              Buffer.add_char b c;
              advance ();
              go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
      if is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "malformed number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt text with
            | Some f -> Float f
            | None -> fail "malformed number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (elements [])
          end
      | Some '"' -> String (parse_string ())
      | Some 't' -> parse_literal "true" (Bool true)
      | Some 'f' -> parse_literal "false" (Bool false)
      | Some 'n' -> parse_literal "null" Null
      | Some _ -> parse_number ()
    in
    match parse_value () with
    | v ->
        skip_ws ();
        if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
        else Ok v
    | exception Parse_error msg -> Error msg

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let to_int = function Int i -> Some i | _ -> None
  let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
  let to_str = function String s -> Some s | _ -> None
  let to_bool = function Bool b -> Some b | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Event <-> JSON *)

let json_of_event e =
  let open Json in
  let kv k v = (k, v) in
  match e with
  | Meta { schema; level } ->
      Obj [ kv "kind" (String "meta"); kv "schema" (String schema); kv "level" (String level) ]
  | Config kvs ->
      Obj
        [
          kv "kind" (String "config");
          kv "values" (Obj (List.map (fun (k, v) -> (k, String v)) kvs));
        ]
  | Campaign_start { runs; resilient } ->
      Obj [ kv "kind" (String "campaign_start"); kv "runs" (Int runs); kv "resilient" (Bool resilient) ]
  | Campaign_end { ok; failure } ->
      Obj
        ([ kv "kind" (String "campaign_end"); kv "ok" (Bool ok) ]
        @ match failure with None -> [] | Some f -> [ kv "failure" (String f) ])
  | Phase_start { phase } -> Obj [ kv "kind" (String "phase_start"); kv "phase" (String phase) ]
  | Phase_end { phase; wall_ns } ->
      Obj
        ([ kv "kind" (String "phase_end"); kv "phase" (String phase) ]
        @ match wall_ns with None -> [] | Some w -> [ kv "wall_ns" (Int w) ])
  | Run { phase; run_index; attempts; outcome; latency } ->
      Obj
        ([
           kv "kind" (String "run");
           kv "phase" (String phase);
           kv "run_index" (Int run_index);
           kv "attempts" (Int attempts);
           kv "outcome" (String outcome);
         ]
        @ match latency with None -> [] | Some l -> [ kv "latency" (Float l) ])
  | Fault { phase; run_index; attempt; kind; detail } ->
      Obj
        [
          kv "kind" (String "fault");
          kv "phase" (String phase);
          kv "run_index" (Int run_index);
          kv "attempt" (Int attempt);
          kv "fault_kind" (String kind);
          kv "detail" (String detail);
        ]
  | Chunk { phase; chunk_index; lo; len } ->
      Obj
        [
          kv "kind" (String "chunk");
          kv "phase" (String phase);
          kv "chunk_index" (Int chunk_index);
          kv "lo" (Int lo);
          kv "len" (Int len);
        ]
  | Iid_result { lb_stat; lb_p; ks_stat; ks_p; accepted } ->
      Obj
        [
          kv "kind" (String "iid");
          kv "lb_stat" (Float lb_stat);
          kv "lb_p" (Float lb_p);
          kv "ks_stat" (Float ks_stat);
          kv "ks_p" (Float ks_p);
          kv "accepted" (Bool accepted);
        ]
  | Convergence { converged; runs_used } ->
      Obj
        [
          kv "kind" (String "convergence");
          kv "converged" (Bool converged);
          kv "runs_used" (Int runs_used);
        ]
  | Evt_fit { tail; block_size; params; gof_ks_p; gof_ad_stat } ->
      Obj
        [
          kv "kind" (String "evt_fit");
          kv "tail" (String tail);
          kv "block_size" (Int block_size);
          kv "params" (Obj (List.map (fun (k, v) -> (k, Float v)) params));
          kv "gof_ks_p" (Float gof_ks_p);
          kv "gof_ad_stat" (Float gof_ad_stat);
        ]
  | Cache_hit { phase; key; runs } ->
      Obj
        [
          kv "kind" (String "cache_hit");
          kv "phase" (String phase);
          kv "key" (String key);
          kv "runs" (Int runs);
        ]
  | Cache_miss { phase; key } ->
      Obj
        [ kv "kind" (String "cache_miss"); kv "phase" (String phase); kv "key" (String key) ]
  | Resume { phase; key; cached_runs; total_runs } ->
      Obj
        [
          kv "kind" (String "resume");
          kv "phase" (String phase);
          kv "key" (String key);
          kv "cached_runs" (Int cached_runs);
          kv "total_runs" (Int total_runs);
        ]
  | Counter { name; value } ->
      Obj [ kv "kind" (String "counter"); kv "name" (String name); kv "value" (Int value) ]
  | Note note -> Obj [ kv "kind" (String "note"); kv "note" (String note) ]

let to_line e = Json.to_string (json_of_event e)

let event_of_json j =
  let open Json in
  let ( let* ) o f = match o with Some v -> f v | None -> Error "missing or mistyped field" in
  let str k = Option.bind (member k j) to_str in
  let int k = Option.bind (member k j) to_int in
  let flt k = Option.bind (member k j) to_float in
  let bool k = Option.bind (member k j) to_bool in
  match str "kind" with
  | None -> Error "event has no \"kind\""
  | Some kind -> (
      match kind with
      | "meta" ->
          let* schema = str "schema" in
          let* level = str "level" in
          Ok (Meta { schema; level })
      | "config" -> (
          match member "values" j with
          | Some (Obj kvs) ->
              let rec conv acc = function
                | [] -> Ok (Config (List.rev acc))
                | (k, String v) :: rest -> conv ((k, v) :: acc) rest
                | _ -> Error "config values must be strings"
              in
              conv [] kvs
          | _ -> Error "config has no values object")
      | "campaign_start" ->
          let* runs = int "runs" in
          let* resilient = bool "resilient" in
          Ok (Campaign_start { runs; resilient })
      | "campaign_end" ->
          let* ok = bool "ok" in
          Ok (Campaign_end { ok; failure = str "failure" })
      | "phase_start" ->
          let* phase = str "phase" in
          Ok (Phase_start { phase })
      | "phase_end" ->
          let* phase = str "phase" in
          Ok (Phase_end { phase; wall_ns = int "wall_ns" })
      | "run" ->
          let* phase = str "phase" in
          let* run_index = int "run_index" in
          let* attempts = int "attempts" in
          let* outcome = str "outcome" in
          Ok (Run { phase; run_index; attempts; outcome; latency = flt "latency" })
      | "fault" ->
          let* phase = str "phase" in
          let* run_index = int "run_index" in
          let* attempt = int "attempt" in
          let* kind = str "fault_kind" in
          let* detail = str "detail" in
          Ok (Fault { phase; run_index; attempt; kind; detail })
      | "chunk" ->
          let* phase = str "phase" in
          let* chunk_index = int "chunk_index" in
          let* lo = int "lo" in
          let* len = int "len" in
          Ok (Chunk { phase; chunk_index; lo; len })
      | "iid" ->
          let* lb_stat = flt "lb_stat" in
          let* lb_p = flt "lb_p" in
          let* ks_stat = flt "ks_stat" in
          let* ks_p = flt "ks_p" in
          let* accepted = bool "accepted" in
          Ok (Iid_result { lb_stat; lb_p; ks_stat; ks_p; accepted })
      | "convergence" ->
          let* converged = bool "converged" in
          let* runs_used = int "runs_used" in
          Ok (Convergence { converged; runs_used })
      | "evt_fit" ->
          let* tail = str "tail" in
          let* block_size = int "block_size" in
          let* gof_ks_p = flt "gof_ks_p" in
          let* gof_ad_stat = flt "gof_ad_stat" in
          let params =
            match member "params" j with
            | Some (Obj kvs) ->
                List.filter_map
                  (fun (k, v) -> Option.map (fun f -> (k, f)) (to_float v))
                  kvs
            | _ -> []
          in
          Ok (Evt_fit { tail; block_size; params; gof_ks_p; gof_ad_stat })
      | "cache_hit" ->
          let* phase = str "phase" in
          let* key = str "key" in
          let* runs = int "runs" in
          Ok (Cache_hit { phase; key; runs })
      | "cache_miss" ->
          let* phase = str "phase" in
          let* key = str "key" in
          Ok (Cache_miss { phase; key })
      | "resume" ->
          let* phase = str "phase" in
          let* key = str "key" in
          let* cached_runs = int "cached_runs" in
          let* total_runs = int "total_runs" in
          Ok (Resume { phase; key; cached_runs; total_runs })
      | "counter" ->
          let* name = str "name" in
          let* value = int "value" in
          Ok (Counter { name; value })
      | "note" ->
          let* note = str "note" in
          Ok (Note note)
      | k -> Error (Printf.sprintf "unknown event kind %S" k))

let of_line s =
  match Json.of_string s with
  | Error e -> Error (Printf.sprintf "malformed JSON: %s" e)
  | Ok j -> event_of_json j

let read_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            Ok (List.rev acc)
        | "" -> go (lineno + 1) acc
        | line -> (
            match of_line line with
            | Ok e -> go (lineno + 1) (e :: acc)
            | Error msg ->
                close_in ic;
                Error (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      go 1 []

(* ------------------------------------------------------------------ *)
(* Counters registry *)

module Counters = struct
  type t = {
    table : (string, int ref) Hashtbl.t;
    mutex : Mutex.t;
    parent : t option;
  }

  let create ?parent () = { table = Hashtbl.create 32; mutex = Mutex.create (); parent }

  (* Additions propagate up the parent chain, so a per-request registry
     stays isolated while the process-total view keeps accumulating.  The
     chain is fixed at [create] time and acyclic by construction. *)
  let rec add t name by =
    Mutex.lock t.mutex;
    (match Hashtbl.find_opt t.table name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t.table name (ref by));
    Mutex.unlock t.mutex;
    match t.parent with Some p -> add p name by | None -> ()

  let incr t name = add t name 1

  let snapshot t =
    Mutex.lock t.mutex;
    let kvs = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.table [] in
    Mutex.unlock t.mutex;
    List.sort (fun (a, _) (b, _) -> String.compare a b) kvs
end

(* ------------------------------------------------------------------ *)
(* Trace state *)

type t = {
  lvl : level;
  path : string option;  (* [None]: in-memory trace, drained instead of flushed *)
  counters : Counters.t;
  on_event : (event -> unit) option;  (* live subscriber (daemon event streaming) *)
  mutable buffer : (int * event) list;  (* newest first *)
  mutable seq : int;
  clock : unit -> int64;  (* monotonic ns, injectable for clock-step tests *)
  mutable phases : (string * int64) list;  (* open phases: name, monotonic start ns *)
  mutex : Mutex.t;
}

let monotonic_ns () = Repro_profile.now_ns ()

(* mkdir -p for a trace/store destination; raises [Sys_error] with the
   offending path when a component cannot be created. *)
let rec ensure_dir dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let create ?(level = Runs) ~path () =
  (* Fail fast: opening the file lazily at flush time would report a bad
     path only after the whole campaign ran.  Touch it (append mode, so an
     existing trace is preserved) before any measurement starts. *)
  ensure_dir (Filename.dirname path);
  (match open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path with
  | oc -> close_out oc
  | exception Sys_error e -> raise (Sys_error (Printf.sprintf "trace: cannot open %s" e)));
  let t =
    {
      lvl = level;
      path = Some path;
      counters = Counters.create ();
      on_event = None;
      clock = monotonic_ns;
      buffer = [];
      seq = 0;
      phases = [];
      mutex = Mutex.create ();
    }
  in
  t.buffer <- [ (0, Meta { schema = schema_version; level = level_to_string level }) ];
  t.seq <- 1;
  t

let create_mem ?(level = Summary) ?counters ?on_event ?(clock = monotonic_ns) () =
  let counters = match counters with Some c -> c | None -> Counters.create () in
  let t =
    {
      lvl = level;
      path = None;
      counters;
      on_event;
      clock;
      buffer = [];
      seq = 0;
      phases = [];
      mutex = Mutex.create ();
    }
  in
  t.buffer <- [ (0, Meta { schema = schema_version; level = level_to_string level }) ];
  t.seq <- 1;
  t

let level t = t.lvl
let counters t = t.counters
let enabled t lvl = level_rank lvl <= level_rank t.lvl

let event_level = function
  | Chunk _ -> Debug
  | Run _ | Fault _ -> Runs
  | Meta _ | Config _ | Campaign_start _ | Campaign_end _ | Phase_start _ | Phase_end _
  | Iid_result _ | Convergence _ | Evt_fit _ | Counter _ | Note _ | Cache_hit _
  | Cache_miss _ | Resume _ ->
      Summary

let emit t e =
  if enabled t (event_level e) then begin
    Mutex.lock t.mutex;
    t.buffer <- (t.seq, e) :: t.buffer;
    t.seq <- t.seq + 1;
    Mutex.unlock t.mutex;
    (* Outside the trace mutex: the subscriber may take its own locks. *)
    match t.on_event with Some f -> f e | None -> ()
  end

let current_phase t = match t.phases with (name, _) :: _ -> name | [] -> ""

let phase_start t name =
  t.phases <- (name, t.clock ()) :: t.phases;
  emit t (Phase_start { phase = name })

let phase_end t name =
  let wall_ns =
    match t.phases with
    | (top, t0) :: rest when top = name ->
        t.phases <- rest;
        if t.lvl = Debug then
          (* Monotonic elapsed time, clamped defensively: durations in a
             trace must never be negative, whatever the clock does. *)
          Some (Stdlib.max 0 (Int64.to_int (Int64.sub (t.clock ()) t0)))
        else None
    | _ -> None
  in
  emit t (Phase_end { phase = name; wall_ns })

let emit_sample t ~phase xs =
  if enabled t Runs then
    Array.iteri
      (fun i x ->
        emit t
          (Run { phase; run_index = i; attempts = 1; outcome = "completed"; latency = Some x }))
      xs

let iid_event (r : Iid.result) =
  Iid_result
    {
      lb_stat = r.Iid.ljung_box.Repro_stats.Ljung_box.statistic;
      lb_p = r.Iid.ljung_box.Repro_stats.Ljung_box.p_value;
      ks_stat = r.Iid.kolmogorov_smirnov.Repro_stats.Ks.statistic;
      ks_p = r.Iid.kolmogorov_smirnov.Repro_stats.Ks.p_value;
      accepted = r.Iid.accepted;
    }

let sorted_events buffered =
  (* Emission already happens in canonical order on the coordinating
     domain; the sort is the safety net that makes the ordering a
     property of the file, not of the code path that produced it. *)
  List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) (List.rev buffered)
  |> List.map snd

let flush t =
  match t.path with
  | None -> ()  (* in-memory traces keep their buffer for [drain] *)
  | Some path ->
      Mutex.lock t.mutex;
      let buffered = t.buffer in
      t.buffer <- [];
      Mutex.unlock t.mutex;
      if buffered <> [] || Counters.snapshot t.counters <> [] then
        Repro_profile.time Repro_profile.Trace (fun () ->
            let events = sorted_events buffered in
            let counter_events =
              List.map
                (fun (name, value) -> Counter { name; value })
                (Counters.snapshot t.counters)
            in
            let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                List.iter
                  (fun e ->
                    output_string oc (to_line e);
                    output_char oc '\n')
                  (events @ counter_events)))

let drain t =
  Mutex.lock t.mutex;
  let buffered = t.buffer in
  t.buffer <- [];
  Mutex.unlock t.mutex;
  sorted_events buffered

let close t = flush t

(* ------------------------------------------------------------------ *)
(* Digest *)

type phase_digest = {
  name : string;
  mutable runs : int;
  mutable completed : int;
  mutable quarantined : int;
  mutable retried : int;
  mutable total_attempts : int;
  mutable sum_latency : float;
  mutable max_latency : float;
  mutable faults : (string * int) list;  (* kind -> count *)
  mutable attempts_hist : (int * int) list;  (* attempts -> runs *)
  mutable chunks : int;
  mutable wall_ns : int option;
}

let summarize events =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let phases = ref [] (* reverse encounter order *) in
  let find_phase name =
    match List.find_opt (fun p -> p.name = name) !phases with
    | Some p -> p
    | None ->
        let p =
          {
            name;
            runs = 0;
            completed = 0;
            quarantined = 0;
            retried = 0;
            total_attempts = 0;
            sum_latency = 0.;
            max_latency = neg_infinity;
            faults = [];
            attempts_hist = [];
            chunks = 0;
            wall_ns = None;
          }
        in
        phases := p :: !phases;
        p
  in
  let bump assoc key =
    match List.assoc_opt key assoc with
    | Some n -> (key, n + 1) :: List.remove_assoc key assoc
    | None -> (key, 1) :: assoc
  in
  let campaigns = ref 0 in
  let failures = ref [] in
  let configs = ref [] in
  let notes = ref [] in
  let iid = ref None in
  let convergence = ref None in
  let fits = ref [] in
  let counters = ref [] in
  let cache = ref [] (* store activity, reverse encounter order *) in
  let meta = ref None in
  List.iter
    (fun e ->
      match e with
      | Meta { schema; level } -> meta := Some (schema, level)
      | Config kvs -> configs := !configs @ kvs
      | Campaign_start _ -> incr campaigns
      | Campaign_end { ok = false; failure } ->
          failures := Option.value ~default:"(unspecified)" failure :: !failures
      | Campaign_end { ok = true; _ } -> ()
      | Phase_start { phase } -> ignore (find_phase phase)
      | Phase_end { phase; wall_ns } ->
          let p = find_phase phase in
          if wall_ns <> None then p.wall_ns <- wall_ns
      | Run { phase; attempts; latency; _ } ->
          let p = find_phase phase in
          p.runs <- p.runs + 1;
          p.total_attempts <- p.total_attempts + attempts;
          if attempts > 1 then p.retried <- p.retried + 1;
          p.attempts_hist <- bump p.attempts_hist attempts;
          (match latency with
          | Some l ->
              p.completed <- p.completed + 1;
              p.sum_latency <- p.sum_latency +. l;
              if l > p.max_latency then p.max_latency <- l
          | None -> p.quarantined <- p.quarantined + 1)
      | Fault { phase; kind; _ } ->
          let p = find_phase phase in
          p.faults <- bump p.faults kind
      | Chunk { phase; _ } ->
          let p = find_phase phase in
          p.chunks <- p.chunks + 1
      | Iid_result { lb_stat; lb_p; ks_stat; ks_p; accepted } ->
          iid := Some (lb_stat, lb_p, ks_stat, ks_p, accepted)
      | Convergence { converged; runs_used } -> convergence := Some (converged, runs_used)
      | Evt_fit { tail; block_size; params; gof_ks_p; gof_ad_stat } ->
          fits := (tail, block_size, params, gof_ks_p, gof_ad_stat) :: !fits
      | Cache_hit { phase; key; runs } ->
          cache :=
            Printf.sprintf "%s: full cache hit (%d runs, key %s)" phase runs key :: !cache
      | Cache_miss { phase; key } ->
          cache := Printf.sprintf "%s: cache miss (key %s)" phase key :: !cache
      | Resume { phase; key; cached_runs; total_runs } ->
          cache :=
            Printf.sprintf "%s: resumed (%d of %d runs cached, key %s)" phase cached_runs
              total_runs key
            :: !cache
      | Counter { name; value } -> counters := (name, value) :: !counters
      | Note n -> notes := n :: !notes)
    events;
  (match !meta with
  | Some (schema, level) -> add "trace %s (level %s), %d events\n" schema level (List.length events)
  | None -> add "trace (no meta event), %d events\n" (List.length events));
  if !configs <> [] then begin
    add "config: ";
    add "%s\n" (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) !configs))
  end;
  add "campaigns: %d" !campaigns;
  (match !failures with
  | [] -> add "\n"
  | fs -> add " (%d failed: %s)\n" (List.length fs) (String.concat "; " (List.rev fs)));
  let phases = List.rev !phases in
  if phases <> [] then begin
    add "\nper-phase digest:\n";
    add "  %-16s %8s %9s %8s %8s %12s %12s %10s\n" "phase" "runs" "completed" "retried"
      "dropped" "mean cycles" "max cycles" "wall";
    List.iter
      (fun p ->
        let mean =
          if p.completed > 0 then p.sum_latency /. float_of_int p.completed else 0.
        in
        let wall =
          match p.wall_ns with
          | Some ns -> Printf.sprintf "%.3fs" (float_of_int ns /. 1e9)
          | None -> "-"
        in
        add "  %-16s %8d %9d %8d %8d %12.0f %12.0f %10s\n" p.name p.runs p.completed
          p.retried p.quarantined mean
          (if p.completed > 0 then p.max_latency else 0.)
          wall;
        (match p.wall_ns with
        | Some ns when ns > 0 && p.runs > 0 ->
            add "  %-16s throughput: %.1f runs/s\n" ""
              (float_of_int p.runs /. (float_of_int ns /. 1e9))
        | _ -> ());
        if p.chunks > 0 then add "  %-16s domain-pool chunks: %d\n" "" p.chunks;
        if p.faults <> [] then begin
          add "  %-16s fault histogram:" "";
          List.iter
            (fun (k, n) -> add " %s=%d" k n)
            (List.sort (fun (a, _) (b, _) -> String.compare a b) p.faults);
          add "\n"
        end;
        if List.exists (fun (a, _) -> a > 1) p.attempts_hist then begin
          add "  %-16s attempts histogram:" "";
          List.iter
            (fun (a, n) -> add " %dx=%d" a n)
            (List.sort (fun (a, _) (b, _) -> Int.compare a b) p.attempts_hist);
          add "\n"
        end)
      phases
  end;
  (match !iid with
  | Some (lb_stat, lb_p, ks_stat, ks_p, accepted) ->
      add "\ni.i.d.: Ljung-Box Q=%.3f p=%.4f, KS D=%.4f p=%.4f -> %s\n" lb_stat lb_p
        ks_stat ks_p
        (if accepted then "ACCEPTED" else "REJECTED")
  | None -> ());
  (match !convergence with
  | Some (converged, runs_used) ->
      add "convergence: %s after %d runs\n" (if converged then "met" else "NOT met") runs_used
  | None -> ());
  List.iter
    (fun (tail, block_size, params, gof_ks_p, gof_ad_stat) ->
      add "EVT fit: %s tail, block size %d" tail block_size;
      List.iter (fun (k, v) -> add ", %s=%.4g" k v) params;
      add " (KS p=%.4f, AD=%.3f)\n" gof_ks_p gof_ad_stat)
    (List.rev !fits);
  (match List.rev !cache with
  | [] -> ()
  | cs -> List.iter (fun c -> add "store %s\n" c) cs);
  (match List.rev !notes with
  | [] -> ()
  | ns -> List.iter (fun n -> add "note: %s\n" n) ns);
  (* Profile counters carry the "profile." prefix; render them as the
     stage table instead of burying them in the raw counter dump.  With
     several Counter events per name (one per flush, cumulative totals),
     the head of [!counters] is the latest — [assoc_opt] finds it first. *)
  let profile_counters, plain_counters =
    List.partition
      (fun (name, _) ->
        String.length name > 8 && String.equal (String.sub name 0 8) "profile.")
      !counters
  in
  (match List.sort (fun (a, _) (b, _) -> String.compare a b) plain_counters with
  | [] -> ()
  | cs ->
      add "\naggregated counters:\n";
      List.iter (fun (name, value) -> add "  %-28s %14d\n" name value) cs);
  if profile_counters <> [] then begin
    let lookup stage suffix =
      match
        List.assoc_opt
          ("profile." ^ Repro_profile.stage_name stage ^ suffix)
          profile_counters
      with
      | Some v -> v
      | None -> 0
    in
    let entries =
      List.map
        (fun stage ->
          {
            Repro_profile.stage;
            ns = Int64.of_int (lookup stage "_ns");
            calls = lookup stage "_calls";
          })
        Repro_profile.stages
    in
    match Repro_profile.render entries with
    | "" -> ()
    | table -> add "\nstage profile:\n%s" table
  end;
  Buffer.contents b
