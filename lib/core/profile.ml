include Repro_profile

let counter_prefix = "profile."

let record_counters counters =
  List.iter
    (fun { stage; ns; calls } ->
      if calls > 0 then begin
        Trace.Counters.add counters
          (counter_prefix ^ stage_name stage ^ "_ns")
          (Int64.to_int ns);
        Trace.Counters.add counters (counter_prefix ^ stage_name stage ^ "_calls") calls
      end)
    (snapshot ())

let report () = render (snapshot ())
