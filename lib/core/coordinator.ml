(* Fault-tolerant coordination of sharded campaign workers.

   The coordinator's job is purely structural: cut the run space into
   chunk-aligned shard spans (a pure function — the same
   [Repro_parallel.chunks] layout the domain pool uses, lifted to the
   checkpoint-chunk index space), drive one worker per shard under a
   supervision policy (deadline, capped deterministic retry-with-backoff),
   and report exactly what happened.  It never touches measurement data:
   workers write shard store records, [Store.merge] recombines them, and
   the determinism contract does the rest — which is why worker crashes,
   retries and even unrecoverable shards can only cost coverage or
   wall-clock time, never change a merged byte.

   Retry accounting is counter-based (attempt numbers, not wall-clock
   observations) so a supervision transcript is reproducible: the backoff
   delay is a pure function of the attempt index, and per-shard reports
   are assembled in shard order after all workers have been joined. *)

type policy = {
  shards : int;
  deadline : float option;
  max_retries : int;
  backoff : float;
  backoff_cap : float;
  poll_interval : float;
}

let default_policy ~shards =
  {
    shards;
    deadline = None;
    max_retries = 2;
    backoff = 0.5;
    backoff_cap = 8.0;
    poll_interval = 0.05;
  }

let shard_spans ~shards ~chunk_size ~runs =
  if runs < 0 then invalid_arg "Coordinator.shard_spans: negative runs";
  if shards < 1 then invalid_arg "Coordinator.shard_spans: shards must be >= 1";
  if chunk_size < 1 then invalid_arg "Coordinator.shard_spans: chunk_size must be >= 1";
  (* Shard over whole checkpoint chunks: spans land on the global chunk
     boundaries, so every chunk a shard writes is byte-identical to the
     chunk the single-process walk writes at the same offset. *)
  let nchunks = (runs + chunk_size - 1) / chunk_size in
  Repro_parallel.chunks ~jobs:shards nchunks
  |> List.map (fun (clo, clen) ->
         (clo * chunk_size, Stdlib.min runs ((clo + clen) * chunk_size)))

type worker_failure = Crashed of string | Stalled of float

type failed_attempt = { attempt : int; failure : worker_failure }

type shard_report = {
  shard : int;  (** 1-based, as in [--shard k/N] *)
  span : int * int;
  attempts : int;
  failures : failed_attempt list;
  completed : bool;
}

type report = {
  total_runs : int;
  shard_reports : shard_report list;  (** in shard order *)
  retries : int;
  unrecoverable : int;
}

let pp_failure ppf = function
  | Crashed detail -> Format.fprintf ppf "crashed: %s" detail
  | Stalled deadline -> Format.fprintf ppf "stalled: %gs deadline exceeded" deadline

(* Deterministic exponential backoff: a pure function of the attempt
   counter, so reruns of the same failure pattern wait the same way. *)
let backoff_delay ~policy ~attempt =
  Stdlib.min policy.backoff_cap (policy.backoff *. (2.0 ** float_of_int attempt))

let supervise_shard ~policy ~run_shard ~shard ~span =
  let rec go attempt failures =
    match run_shard ~shard ~span ~attempt with
    | Ok () ->
        {
          shard;
          span;
          attempts = attempt + 1;
          failures = List.rev failures;
          completed = true;
        }
    | Error failure ->
        let failures = { attempt; failure } :: failures in
        if attempt >= policy.max_retries then
          {
            shard;
            span;
            attempts = attempt + 1;
            failures = List.rev failures;
            completed = false;
          }
        else begin
          let delay = backoff_delay ~policy ~attempt in
          if delay > 0.0 then Unix.sleepf delay;
          go (attempt + 1) failures
        end
  in
  go 0 []

let supervise ?trace ~policy ~chunk_size ~runs ~run_shard () =
  let spans = Array.of_list (shard_spans ~shards:policy.shards ~chunk_size ~runs) in
  let n = Array.length spans in
  let shard_reports =
    if n = 0 then []
    else
      (* One supervision loop per shard, fanned out over domains: workers
         are separate processes, so the loops spend their time in waitpid
         polls and sleeps.  Reports come back in shard order (the pool's
         positional contract), so the transcript is deterministic given
         the same failure pattern. *)
      Array.to_list
        (Parallel.init ~jobs:n n (fun i ->
             supervise_shard ~policy ~run_shard ~shard:(i + 1) ~span:spans.(i)))
  in
  let retries = List.fold_left (fun acc r -> acc + r.attempts - 1) 0 shard_reports in
  let unrecoverable =
    List.length (List.filter (fun r -> not r.completed) shard_reports)
  in
  (match trace with
  | None -> ()
  | Some t ->
      let c = Trace.counters t in
      Trace.Counters.add c "campaign.worker_retries" retries;
      Trace.Counters.add c "campaign.shards_failed" unrecoverable;
      List.iter
        (fun r ->
          List.iter
            (fun { attempt; failure } ->
              Trace.emit t
                (Trace.Note
                   (Format.asprintf "shard %d/%d attempt %d %a" r.shard n attempt
                      pp_failure failure)))
            r.failures)
        shard_reports);
  { total_runs = runs; shard_reports; retries; unrecoverable }

(* ------------------------------------------------------------------ *)
(* Process workers *)

(* Deadlines are measured against the monotonic clock: an NTP step on the
   wall clock must neither spare a stalled worker nor kill a healthy one. *)
let monotonic_s () = Int64.to_float (Repro_profile.now_ns ()) /. 1e9

let run_worker ?log ?(now = monotonic_s) ~deadline ~poll_interval ~argv () =
  let open_log () =
    match log with
    | Some path ->
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    | None -> Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0
  in
  match open_log () with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Crashed (Printf.sprintf "cannot open worker log: %s" (Unix.error_message e)))
  | fd -> (
      let spawned =
        match Unix.create_process argv.(0) argv Unix.stdin fd fd with
        | pid -> Ok pid
        | exception Unix.Unix_error (e, _, _) ->
            Error (Crashed (Printf.sprintf "spawn failed: %s" (Unix.error_message e)))
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match spawned with
      | Error _ as e -> e
      | Ok pid ->
          let started = now () in
          let rec wait () =
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> (
                match deadline with
                | Some d when now () -. started > d ->
                    (* The worker gets no grace period: its store flushed a
                       valid prefix at every chunk barrier, so SIGKILL costs
                       at most the in-flight chunk and the retry resumes
                       from the record. *)
                    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
                    Error (Stalled d)
                | _ ->
                    Unix.sleepf poll_interval;
                    wait ())
            | _, Unix.WEXITED 0 -> Ok ()
            | _, Unix.WEXITED code ->
                Error (Crashed (Printf.sprintf "worker exited with code %d" code))
            | _, Unix.WSIGNALED signal ->
                Error (Crashed (Printf.sprintf "worker killed by signal %d" signal))
            | _, Unix.WSTOPPED _ ->
                Unix.sleepf poll_interval;
                wait ()
            | exception Unix.Unix_error (e, _, _) ->
                Error (Crashed (Printf.sprintf "waitpid: %s" (Unix.error_message e)))
          in
          wait ())

let pp_shard_report ppf r =
  let lo, hi = r.span in
  Format.fprintf ppf "shard %d  runs [%d, %d)  %d attempt%s  %s" r.shard lo hi
    r.attempts
    (if r.attempts = 1 then "" else "s")
    (if r.completed then "completed"
     else
       Format.asprintf "UNRECOVERABLE (%a)" pp_failure
         (match List.rev r.failures with
         | { failure; _ } :: _ -> failure
         | [] -> Crashed "unknown"));
  List.iter
    (fun { attempt; failure } ->
      Format.fprintf ppf "@,  attempt %d %a" attempt pp_failure failure)
    r.failures

let pp_report ppf r =
  Format.fprintf ppf "@[<v>supervised %d shard%s over %d runs: %d retr%s, %d unrecoverable"
    (List.length r.shard_reports)
    (if List.length r.shard_reports = 1 then "" else "s")
    r.total_runs r.retries
    (if r.retries = 1 then "y" else "ies")
    r.unrecoverable;
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_shard_report s) r.shard_reports;
  Format.fprintf ppf "@]"
