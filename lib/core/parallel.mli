(** Deterministic domain-parallel execution layer for measurement campaigns.

    Built on OCaml 5 [Domain] only (no external dependencies) and
    deliberately work-stealing-free: the index range is split into [jobs]
    contiguous chunks {e before} any domain starts, each chunk is evaluated
    in ascending index order on its own domain, and results are written back
    at their original offsets.

    {b Determinism contract.}  If [f i] is a pure function of [i] — which
    the campaign layer guarantees by deriving every run's PRNG seed and
    platform instance from [(campaign_seed, run_index, attempt)] — then
    [init ~jobs n f] returns a bit-identical array for every [jobs] and
    every OS scheduling order.  [jobs = 1] is the sequential reference: it
    spawns no domains and calls [f] with strictly ascending indices, so even
    a stateful [f] behaves exactly as the pre-parallel code did. *)

(** [Domain.recommended_domain_count ()] — the default job count used
    throughout the campaign layer. *)
val default_jobs : unit -> int

(** [chunks ~jobs n] — the static sharding: at most [jobs] contiguous
    [(offset, length)] chunks covering [0 .. n-1] exactly once, all
    non-empty, lengths differing by at most one.  Exposed for tests and for
    harnesses that want to shard other per-run state the same way. *)
val chunks : jobs:int -> int -> (int * int) list

(** [init ?trace ?jobs n f] — [Array.init n f] evaluated on a chunked domain
    pool ([jobs] defaults to {!default_jobs}).  If any [f i] raises, the
    exception of the lowest-indexed failing chunk is re-raised after all
    domains have been joined (deterministic error propagation).  Raises
    [Invalid_argument] on [n < 0] or [jobs < 1].

    With [trace] attached, the static sharding decision is recorded as
    {!Trace.Chunk} events (Debug level only — the layout is a pure function
    of [(jobs, n)], so it varies with the job count by construction). *)
val init : ?trace:Trace.t -> ?jobs:int -> int -> (int -> 'a) -> 'a array

(** [map ?trace ?jobs f a] — [Array.map] on the same pool. *)
val map : ?trace:Trace.t -> ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** Scheduling granularity for {!init_checkpointed}: how many checkpoint
    chunks one domain-pool fan-out covers.

    - [`Chunk] — one chunk per fan-out; the historical behaviour and the
      reference schedule.
    - [`Batch b] — group up to [b] consecutive uncached chunks into one
      fan-out ([b >= 1]; [`Batch 1] is [`Chunk]).
    - [`Auto] — compute the first uncached chunk alone, time it with the
      monotonic clock, and pin the batch size by rounding the measured
      per-chunk cost onto {!Repro_parallel.dispatch_grid} so one fan-out
      covers roughly 50ms of work.

    Dispatch is purely operational: the checkpoint-chunk layout — and so
    every persisted byte and every sample — is a pure function of [n] and
    [chunk_size]; chunks are still persisted in ascending order at the
    same barriers.  The calibration decision is recorded as a Debug-level
    trace [Note] (absent from default-level traces, like [Chunk] events). *)
type dispatch = [ `Chunk | `Batch of int | `Auto ]

(** [init_checkpointed ?trace ?jobs ?lo ?dispatch ~chunk_size ~lookup ~persist n f] —
    {!init} with chunk-granular checkpoint barriers for the measurement
    store ({!Store}).

    The index space is cut into fixed [chunk_size] checkpoint chunks —
    independent of [jobs], so the chunk sequence is a pure function of [n].
    For each chunk in ascending order: [lookup ~lo ~len] may serve it from
    a cache (its [f] calls are skipped entirely); otherwise the chunk is
    computed on the domain pool and handed to [persist ~lo] at the chunk
    barrier, on the calling domain.  Under the purity contract of {!init}
    the result is bit-identical to [init n f] at every [jobs] count and for
    every cached/computed split.

    [lo] (default [0]) starts the walk at that index instead of 0, walking
    only the span [lo, n) — the shard-worker mode of the distributed
    campaign layer.  Chunk boundaries remain the global multiples of
    [chunk_size] regardless of [lo], so a shard aligned on a chunk boundary
    produces exactly the chunks of the corresponding full-walk positions,
    and the returned array holds just the [n - lo] span values.

    Raises [Invalid_argument] on [n < 0], [chunk_size < 1], [lo] outside
    [[0, n]], a [`Batch] size below 1, or a cached chunk whose length does
    not match the layout. *)
val init_checkpointed :
  ?trace:Trace.t ->
  ?jobs:int ->
  ?lo:int ->
  ?dispatch:dispatch ->
  chunk_size:int ->
  lookup:(lo:int -> len:int -> 'a array option) ->
  persist:(lo:int -> 'a array -> unit) ->
  int ->
  (int -> 'a) ->
  'a array
