type task = { name : string; period : float; deadline : float; budget : float }

let required_cutoff ~activations_per_hour ~target_failures_per_hour =
  if not (activations_per_hour > 0.) then
    invalid_arg "Schedulability.required_cutoff: activations_per_hour must be > 0";
  if not (target_failures_per_hour > 0.) then
    invalid_arg "Schedulability.required_cutoff: target_failures_per_hour must be > 0";
  Float.min 1. (target_failures_per_hour /. activations_per_hour)

let budget_of_curve curve ~cutoff_probability =
  Repro_evt.Pwcet.estimate curve ~cutoff_probability

let overrun_rate_bound tasks ~cutoff ~activations_per_hour =
  List.fold_left (fun acc task -> acc +. (cutoff *. activations_per_hour task)) 0. tasks

type response = { task : task; response_time : float; meets_deadline : bool }

(* Least fixed point of R = C + sum_hp ceil(R/T_j) C_j, starting from C. *)
let response_time ~higher task =
  let rec iterate r =
    let interference =
      List.fold_left
        (fun acc (hp : task) -> acc +. (Float.ceil (r /. hp.period) *. hp.budget))
        0. higher
    in
    let r' = task.budget +. interference in
    if r' = r then r
    else if r' > task.deadline *. 1000. then r' (* diverging: unschedulable *)
    else iterate r'
  in
  iterate task.budget

let response_times tasks =
  let rec go higher = function
    | [] -> []
    | task :: rest ->
        let r = response_time ~higher task in
        { task; response_time = r; meets_deadline = r <= task.deadline }
        :: go (higher @ [ task ]) rest
  in
  go [] tasks

let schedulable tasks = List.for_all (fun r -> r.meets_deadline) (response_times tasks)

let utilization tasks =
  List.fold_left (fun acc t -> acc +. (t.budget /. t.period)) 0. tasks

let pp_response ppf r =
  Format.fprintf ppf "%-12s C=%10.0f T=%10.0f D=%10.0f R=%10.0f %s" r.task.name
    r.task.budget r.task.period r.task.deadline r.response_time
    (if r.meets_deadline then "OK" else "DEADLINE MISS")
