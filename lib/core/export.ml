module Stats = Repro_stats
module Evt = Repro_evt

let samples_csv ?label xs =
  let buffer = Buffer.create (Array.length xs * 16) in
  (match label with
  | None -> Buffer.add_string buffer "index,cycles\n"
  | Some _ -> Buffer.add_string buffer "index,cycles,label\n");
  Array.iteri
    (fun i x ->
      match label with
      | None -> Buffer.add_string buffer (Printf.sprintf "%d,%.0f\n" i x)
      | Some l -> Buffer.add_string buffer (Printf.sprintf "%d,%.0f,%s\n" i x l))
    xs;
  Buffer.contents buffer

let ecdf_csv xs =
  let ecdf = Stats.Ecdf.of_sample xs in
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "cycles,exceedance_probability\n";
  List.iter
    (fun (x, p) -> Buffer.add_string buffer (Printf.sprintf "%.0f,%.10g\n" x p))
    (Stats.Ecdf.ccdf_points ecdf);
  Buffer.contents buffer

let curve_csv ?(decades = 15) curve =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "exceedance_probability,cycles\n";
  List.iter
    (fun (v, p) -> Buffer.add_string buffer (Printf.sprintf "%.3e,%.1f\n" p v))
    (Evt.Pwcet.ccdf_series curve ~decades_below:decades);
  Buffer.contents buffer

let comparison_csv (c : Report.comparison) =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "quantity,cycles\n";
  let row name v = Buffer.add_string buffer (Printf.sprintf "%s,%.1f\n" name v) in
  row "det_mean" c.Report.det_summary.Stats.Descriptive.mean;
  row "rand_mean" c.Report.rand_summary.Stats.Descriptive.mean;
  row "det_max" c.Report.det_summary.Stats.Descriptive.maximum;
  row "rand_max" c.Report.rand_summary.Stats.Descriptive.maximum;
  row "mbta_bound" c.Report.mbta.Mbta.bound;
  List.iter
    (fun (p, v) -> row (Printf.sprintf "pwcet_%.0e" p) v)
    c.Report.pwcet_at;
  Buffer.contents buffer

let to_file ~path contents =
  Trace.ensure_dir (Filename.dirname path);
  let oc = open_out path in
  (try output_string oc contents
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
