(* Persistent, content-addressed measurement store.

   One JSONL record per campaign configuration, addressed by a digest of
   everything that could change a stored byte (schema, chunk size, full
   measurement config).  The record is append-only at chunk granularity:
   [Parallel.init_checkpointed] hands us each checkpoint chunk in
   ascending order on the calling domain, so an interruption leaves a
   clean prefix (or, if the kill landed mid-write, a prefix plus one
   malformed tail line which validation drops).  Because chunk layout is
   a pure function of the run count, the same record serves any [--jobs]
   count bit-identically — the resume contract in store.mli.

   store/v2 hardens every line with an integrity trailer (see [seal]) so
   that verification can tell a torn tail (crash: resumable) from a
   bit-flipped, truncated-in-the-middle or foreign record (hostile input:
   quarantined, never merged).  Shard sessions restrict a record to a
   chunk-aligned span of the run space; [merge] recombines shard records
   into the byte-identical single-process record. *)

module Json = Trace.Json

let schema_version = "store/v2"
let schema_v1 = "store/v1"
let default_chunk_size = 256

exception Injected_crash of { appended_chunks : int }

(* ------------------------------------------------------------------ *)
(* Integrity trailer

   Every v2 line ends with [,"sum":"<md5-hex>"}] — the digest of the line
   with the trailer spliced back out.  Sealing and verification are string
   surgery on the serialized line (not a JSON round-trip), so the check is
   byte-exact by construction: any flipped bit in the body, a truncation,
   or a hand-edited value fails the digest comparison. *)

let seal body =
  (* [body] is a serialized JSON object, so it ends with '}'. *)
  Printf.sprintf "%s,\"sum\":\"%s\"}"
    (String.sub body 0 (String.length body - 1))
    (Digest.to_hex (Digest.string body))

let trailer_len = String.length ",\"sum\":\"\"}" + 32

let unseal line =
  let n = String.length line in
  if n <= trailer_len then Error `No_sum
  else begin
    let start = n - trailer_len in
    if
      String.sub line start 8 <> ",\"sum\":\""
      || line.[n - 2] <> '"'
      || line.[n - 1] <> '}'
    then Error `No_sum
    else begin
      let sum = String.sub line (start + 8) 32 in
      let body = String.sub line 0 start ^ "}" in
      if Digest.to_hex (Digest.string body) = sum then Ok body else Error `Bad_sum
    end
  end

(* ------------------------------------------------------------------ *)
(* Store root *)

type t = { root : string }

let open_root ~dir =
  Trace.ensure_dir dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "store: %s is not a directory" dir));
  { root = dir }

let dir t = t.root

let key_of_schema ~schema ?(chunk_size = default_chunk_size) config =
  let b = Buffer.create 256 in
  Buffer.add_string b schema;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "chunk_size=%d\n" chunk_size);
  (* Canonical order plus %S-quoting: the digest cannot depend on how the
     harness ordered the pairs, and a value containing '=' or '\n' cannot
     collide with a differently-split pair. *)
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%S=%S\n" k v))
    (List.sort compare config);
  Digest.to_hex (Digest.string (Buffer.contents b))

let key ?chunk_size config = key_of_schema ~schema:schema_version ?chunk_size config
let key_v1 ?chunk_size config = key_of_schema ~schema:schema_v1 ?chunk_size config

(* ------------------------------------------------------------------ *)
(* Record lines *)

type outcome =
  | Completed of float
  | Timeout of string
  | Crashed of string
  | Corrupted of string

type trail = outcome list
type payload = Floats of float array | Trails of trail array

let payload_len = function
  | Floats a -> Array.length a
  | Trails a -> Array.length a

let json_of_outcome = function
  | Completed v -> Json.Obj [ ("k", Json.String "c"); ("v", Json.Float v) ]
  | Timeout d -> Json.Obj [ ("k", Json.String "t"); ("d", Json.String d) ]
  | Crashed d -> Json.Obj [ ("k", Json.String "x"); ("d", Json.String d) ]
  | Corrupted d -> Json.Obj [ ("k", Json.String "o"); ("d", Json.String d) ]

let outcome_of_json j =
  let detail () =
    match Option.bind (Json.member "d" j) Json.to_str with Some d -> d | None -> ""
  in
  match Option.bind (Json.member "k" j) Json.to_str with
  | Some "c" -> (
      match Option.bind (Json.member "v" j) Json.to_float with
      | Some v -> Ok (Completed v)
      | None -> Error "completed outcome without a numeric value")
  | Some "t" -> Ok (Timeout (detail ()))
  | Some "x" -> Ok (Crashed (detail ()))
  | Some "o" -> Ok (Corrupted (detail ()))
  | Some k -> Error (Printf.sprintf "unknown outcome kind %S" k)
  | None -> Error "outcome without a kind"

let meta_line ~skey ~runs ~resilient ~chunk_size ~shard ~config =
  let shard_fields =
    match shard with
    | None -> []
    | Some (lo, hi) -> [ ("shard_lo", Json.Int lo); ("shard_hi", Json.Int hi) ]
  in
  seal
    (Json.to_string
       (Json.Obj
          ([
             ("kind", Json.String "meta");
             ("schema", Json.String schema_version);
             ("key", Json.String skey);
             ("runs", Json.Int runs);
             ("resilient", Json.Bool resilient);
             ("chunk_size", Json.Int chunk_size);
           ]
          @ shard_fields
          @ [
              ( "config",
                Json.Obj
                  (List.map
                     (fun (k, v) -> (k, Json.String v))
                     (List.sort compare config)) );
            ])))

(* Chunk lines carry no shard information on purpose: a chunk written by a
   shard worker is byte-for-byte the chunk the single-process walk writes
   at the same offset, which is what makes [merge] a pure concatenation. *)
let chunk_line ~phase ~lo payload =
  seal
    (match payload with
    | Floats values ->
        Json.to_string
          (Json.Obj
             [
               ("kind", Json.String "chunk");
               ("phase", Json.String phase);
               ("lo", Json.Int lo);
               ( "values",
                 Json.List (Array.to_list (Array.map (fun v -> Json.Float v) values))
               );
             ])
    | Trails runs ->
        Json.to_string
          (Json.Obj
             [
               ("kind", Json.String "rchunk");
               ("phase", Json.String phase);
               ("lo", Json.Int lo);
               ( "runs",
                 Json.List
                   (Array.to_list
                      (Array.map
                         (fun trail -> Json.List (List.map json_of_outcome trail))
                         runs)) );
             ]))

(* ------------------------------------------------------------------ *)
(* Record parsing *)

type meta = {
  m_key : string;
  m_runs : int;
  m_resilient : bool;
  m_csize : int;
  m_config : (string * string) list;
  m_schema : string;
  m_lo : int;  (* shard span; (0, m_runs) for a full record *)
  m_hi : int;
}

let parse_meta line =
  let parse ~sealed body =
    match Json.of_string body with
    | Error e -> Error (Printf.sprintf "meta line unreadable (%s)" e)
    | Ok j -> (
        let str f = Option.bind (Json.member f j) Json.to_str in
        let int f = Option.bind (Json.member f j) Json.to_int in
        let bool f = Option.bind (Json.member f j) Json.to_bool in
        match (str "kind", str "schema") with
        | Some "meta", Some s when s = schema_version || s = schema_v1 ->
            if s = schema_version && not sealed then
              Error "store/v2 meta line has no integrity checksum"
            else begin
              let config =
                match Json.member "config" j with
                | Some (Json.Obj fields) ->
                    let ok =
                      List.for_all
                        (function _, Json.String _ -> true | _ -> false)
                        fields
                    in
                    if ok then
                      Some
                        (List.map
                           (function
                             | k, Json.String v -> (k, v)
                             | _ -> assert false (* filtered above *))
                           fields)
                    else None
                | _ -> None
              in
              match
                (str "key", int "runs", bool "resilient", int "chunk_size", config)
              with
              | Some m_key, Some m_runs, Some m_resilient, Some m_csize, Some m_config
                ->
                  let m_lo = Option.value (int "shard_lo") ~default:0 in
                  let m_hi = Option.value (int "shard_hi") ~default:m_runs in
                  if m_lo < 0 || m_hi > m_runs || m_lo > m_hi then
                    Error "meta shard span out of range"
                  else
                    Ok { m_key; m_runs; m_resilient; m_csize; m_config; m_schema = s; m_lo; m_hi }
              | _ -> Error "meta line is missing fields"
            end
        | Some "meta", Some s ->
            Error
              (Printf.sprintf "schema %S, this build reads %S (and %S read-only)" s
                 schema_version schema_v1)
        | _ -> Error "first line is not a meta line")
  in
  match unseal line with
  | Ok body -> parse ~sealed:true body
  | Error `Bad_sum -> Error "meta line checksum mismatch (bit flip or edit)"
  | Error `No_sum -> parse ~sealed:false line

let floats_of_json = function
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | j :: rest -> (
            match Json.to_float j with
            | Some v -> go (v :: acc) rest
            | None -> Error "non-numeric value in chunk")
      in
      go [] items
  | _ -> Error "chunk values is not a list"

let trails_of_json = function
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | Json.List os :: rest -> (
            let rec outcomes acc' = function
              | [] -> Ok (List.rev acc')
              | o :: tl -> (
                  match outcome_of_json o with
                  | Ok o -> outcomes (o :: acc') tl
                  | Error e -> Error e)
            in
            match outcomes [] os with
            | Ok trail -> go (trail :: acc) rest
            | Error e -> Error e)
        | _ :: _ -> Error "trail is not a list"
      in
      go [] items
  | _ -> Error "rchunk runs is not a list"

(* One parsed, layout-validated chunk line. *)
type parsed_chunk = { c_phase : string; c_lo : int; c_payload : payload; c_line : string }

(* First invalid line of a record.  [d_tampered] separates the two failure
   worlds: [false] is a torn tail (kill mid-write — the valid prefix is
   trustworthy and resumable), [true] is an integrity failure (bit flip,
   mid-record truncation, foreign or edited content — the record is
   hostile input and must be quarantined, never merged or resumed). *)
type defect = { d_reason : string; d_tampered : bool }

(* Validate one chunk line against the fixed layout and the per-phase
   write frontier.  Anything off — checksum failure, wrong kind for the
   record, lo not at the frontier, wrong length, parse failure — is a
   defect: the record's valid prefix ends just before this line. *)
let parse_chunk_line ~meta ~frontier ~lineno ~is_last line =
  let fail ?(tampered = false) fmt =
    Printf.ksprintf (fun d_reason -> Error { d_reason; d_tampered = tampered }) fmt
  in
  let body =
    if meta.m_schema = schema_v1 then Ok line
    else
      match unseal line with
      | Ok body -> Ok body
      | Error `Bad_sum ->
          Error
            {
              d_reason = Printf.sprintf "line %d: checksum mismatch (bit flip or edit)" lineno;
              d_tampered = true;
            }
      | Error `No_sum ->
          (* A crash tears at most the last line of the file; a missing
             trailer anywhere else means the record was cut or edited. *)
          if is_last then
            Error
              {
                d_reason = Printf.sprintf "line %d: torn tail (no checksum trailer)" lineno;
                d_tampered = false;
              }
          else
            Error
              {
                d_reason =
                  Printf.sprintf "line %d: checksum trailer missing mid-record" lineno;
                d_tampered = true;
              }
  in
  match body with
  | Error _ as e -> e
  | Ok body -> (
      match Json.of_string body with
      | Error e -> fail "line %d unreadable (%s)" lineno e
      | Ok j -> (
          let str f = Option.bind (Json.member f j) Json.to_str in
          let int f = Option.bind (Json.member f j) Json.to_int in
          let payload =
            match str "kind" with
            | Some "chunk" when not meta.m_resilient -> (
                match Json.member "values" j with
                | Some v -> Result.map (fun a -> Floats a) (floats_of_json v)
                | None -> Error "chunk without values")
            | Some "rchunk" when meta.m_resilient -> (
                match Json.member "runs" j with
                | Some v -> Result.map (fun a -> Trails a) (trails_of_json v)
                | None -> Error "rchunk without runs")
            | Some k -> Error (Printf.sprintf "unexpected line kind %S" k)
            | None -> Error "line without a kind"
          in
          match (str "phase", int "lo", payload) with
          | Some c_phase, Some c_lo, Ok c_payload ->
              let front =
                match Hashtbl.find_opt frontier c_phase with
                | Some f -> f
                | None -> meta.m_lo
              in
              let expected = Stdlib.min meta.m_csize (meta.m_runs - c_lo) in
              if c_lo <> front then
                fail "line %d: %s chunk at %d, expected frontier %d" lineno c_phase c_lo
                  front
              else if c_lo >= meta.m_hi then
                fail "line %d: chunk beyond the record's span" lineno
              else if payload_len c_payload <> expected then
                fail "line %d: chunk at %d has %d runs, layout expects %d" lineno c_lo
                  (payload_len c_payload) expected
              else begin
                Hashtbl.replace frontier c_phase (c_lo + expected);
                Ok { c_phase; c_lo; c_payload; c_line = line }
              end
          | _, _, Error e -> fail "line %d: %s" lineno e
          | _ -> fail "line %d: chunk without phase/lo" lineno))

let read_lines file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type parsed_record = {
  r_meta : meta;
  r_chunks : parsed_chunk list;  (* file order; the valid prefix *)
  r_frontier : (string, int) Hashtbl.t;
  r_defect : defect option;  (* first invalid line, if any *)
}

let parse_record file =
  match read_lines file with
  | [] | (exception Sys_error _) -> Error "record unreadable or empty"
  | meta_ln :: rest -> (
      match parse_meta meta_ln with
      | Error e -> Error e
      | Ok r_meta ->
          let frontier = Hashtbl.create 4 in
          let rec go lineno acc = function
            | [] -> (List.rev acc, None)
            | "" :: tl -> go (lineno + 1) acc tl (* tolerate a trailing blank *)
            | line :: tl -> (
                let is_last = List.for_all (fun l -> l = "") tl in
                match parse_chunk_line ~meta:r_meta ~frontier ~lineno ~is_last line with
                | Ok c -> go (lineno + 1) (c :: acc) tl
                | Error d -> (List.rev acc, Some d))
          in
          let r_chunks, r_defect = go 2 [] rest in
          Ok { r_meta; r_chunks; r_frontier = frontier; r_defect })

(* ------------------------------------------------------------------ *)
(* Sessions *)

type session = {
  skey : string;
  file : string;
  csize : int;
  s_runs : int;
  s_resilient : bool;
  s_lo : int;  (* shard span; (0, s_runs) for a full session *)
  s_hi : int;
  s_sync : bool;
  cached : (string * int, payload) Hashtbl.t;  (* (phase, lo) -> chunk *)
  frontier : (string, int) Hashtbl.t;  (* phase -> next lo to append *)
  at_open : (string, int) Hashtbl.t;  (* frontier snapshot at open time *)
  mutable oc : out_channel option;
  mutable lock : Unix.file_descr option;  (* held advisory writer lock *)
  mutable fail_after : int option;
  mutable appended : int;
  mutable closed : bool;
}

let session_key s = s.skey
let chunk_size s = s.csize
let shard_span s = (s.s_lo, s.s_hi)

let cached_runs s ~phase =
  let front =
    match Hashtbl.find_opt s.at_open phase with Some f -> f | None -> s.s_lo
  in
  Stdlib.max 0 (front - s.s_lo)

let complete s ~phase = cached_runs s ~phase >= s.s_hi - s.s_lo
let set_fail_after s n = s.fail_after <- Some n

let fail_after_from_env () =
  Option.bind (Sys.getenv_opt "MBPTA_STORE_FAIL_AFTER_CHUNKS") int_of_string_opt

let fsync_channel ~file oc =
  match Unix.fsync (Unix.descr_of_out_channel oc) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "store: fsync %s: %s" file (Unix.error_message e)))

(* ------------------------------------------------------------------ *)
(* Advisory writer locks.

   Two writers appending to one record would interleave chunk lines into
   a torn file that only the per-line checksum catches after the fact, so
   a session takes a non-blocking exclusive [fcntl] lock on
   [<key>.jsonl.lock] before it parses or truncates anything.  The lock
   lives on a sidecar file (never on the record itself) because closing
   *any* descriptor of a locked file drops all of the process's fcntl
   locks on it — and the record file is opened and closed freely by
   [parse_record].  For the same reason all lock-file descriptors go
   through a process-local registry: at most one open descriptor per lock
   path, which doubles as in-process mutual exclusion (fcntl locks never
   conflict within one process).  Locks die with the process, so a killed
   campaign leaves no stale lock — only a harmless sidecar file that
   [ls]/[gc]/[merge] ignore (they filter on the [.jsonl] suffix). *)

let lock_path file = file ^ ".lock"
let locks_held : (string, unit) Hashtbl.t = Hashtbl.create 8
let locks_mutex = Mutex.create ()

let locked_diagnostic ~file fd =
  let holder =
    try
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      let buf = Bytes.create 32 in
      let n = Unix.read fd buf 0 32 in
      match String.trim (Bytes.sub_string buf 0 n) with
      | "" -> ""
      | pid -> Printf.sprintf " (pid %s)" pid
    with Unix.Unix_error _ -> ""
  in
  Printf.sprintf
    "store: %s is locked by another writer%s — concurrent sessions on one key would \
     interleave its chunks; wait for that campaign, or point this one at its own \
     --cache-dir"
    file holder

let acquire_lock ~file =
  let path = lock_path file in
  Mutex.lock locks_mutex;
  let result =
    if Hashtbl.mem locks_held path then
      Error
        (Printf.sprintf
           "store: %s is locked by another session of this process — concurrent \
            sessions on one key would interleave its chunks"
           file)
    else
      match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 with
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "store: cannot open lock file %s: %s" path
               (Unix.error_message e))
      | fd -> (
          match Unix.lockf fd Unix.F_TLOCK 0 with
          | () ->
              (* Stamp our pid so the next contender's diagnostic can name
                 the holder; best-effort only. *)
              (try
                 ignore (Unix.ftruncate fd 0);
                 ignore (Unix.lseek fd 0 Unix.SEEK_SET);
                 let pid = string_of_int (Unix.getpid ()) in
                 ignore (Unix.write_substring fd pid 0 (String.length pid))
               with Unix.Unix_error _ -> ());
              Hashtbl.replace locks_held path ();
              Ok fd
          | exception Unix.Unix_error ((EAGAIN | EACCES), _, _) ->
              let msg = locked_diagnostic ~file fd in
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error msg
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error
                (Printf.sprintf "store: cannot lock %s: %s" path (Unix.error_message e)))
  in
  Mutex.unlock locks_mutex;
  result

let release_lock ~file fd =
  Mutex.lock locks_mutex;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Hashtbl.remove locks_held (lock_path file);
  Mutex.unlock locks_mutex

let release_session_lock s =
  match s.lock with
  | None -> ()
  | Some fd ->
      s.lock <- None;
      release_lock ~file:s.file fd

let mk_session ~skey ~file ~csize ~runs ~resilient ~span:(s_lo, s_hi) ~sync ~cached
    ~frontier ~oc ~lock =
  let at_open = Hashtbl.copy frontier in
  {
    skey;
    file;
    csize;
    s_runs = runs;
    s_resilient = resilient;
    s_lo;
    s_hi;
    s_sync = sync;
    cached;
    frontier;
    at_open;
    oc;
    lock;
    fail_after = fail_after_from_env ();
    appended = 0;
    closed = false;
  }

let open_session ?(chunk_size = default_chunk_size) ?(resume = false) ?(sync = false)
    ?shard t ~key:skey ~config ~runs ~resilient =
  if runs < 0 then invalid_arg "Store.open_session: negative runs";
  if chunk_size < 1 then invalid_arg "Store.open_session: chunk_size must be >= 1";
  let s_lo, s_hi = match shard with None -> (0, runs) | Some (lo, hi) -> (lo, hi) in
  if s_lo < 0 || s_hi > runs || s_lo > s_hi then
    invalid_arg "Store.open_session: shard span out of range";
  if s_lo mod chunk_size <> 0 then
    invalid_arg "Store.open_session: shard lower bound must be chunk-aligned";
  if s_hi <> runs && s_hi mod chunk_size <> 0 then
    invalid_arg
      "Store.open_session: shard upper bound must be chunk-aligned or the run count";
  (* A span covering everything is a full session: its record carries no
     shard fields, so `--shard 1/1` writes the single-process record. *)
  let shard = if s_lo = 0 && s_hi = runs then None else Some (s_lo, s_hi) in
  let span = (s_lo, s_hi) in
  let derived = key ~chunk_size config in
  if derived <> skey then
    Error
      (Printf.sprintf "store: key %s does not match its configuration (digest %s)" skey
         derived)
  else begin
    let file = Filename.concat t.root (skey ^ ".jsonl") in
    (* The advisory writer lock is taken before the record is even parsed:
       admitting a second writer any later would let it truncate or append
       behind the first one's back.  Every path that does not hand the
       lock to a writer session (errors, and the read-only adoption of a
       complete record — warm readers must never serialize) releases it. *)
    match acquire_lock ~file with
    | Error e -> Error e
    | Ok lockfd ->
    let kept = ref false in
    let keep () = kept := true; Some lockfd in
    Fun.protect ~finally:(fun () -> if not !kept then release_lock ~file lockfd)
    @@ fun () ->
    let meta = meta_line ~skey ~runs ~resilient ~chunk_size ~shard ~config in
    let fresh () =
      (* Eager meta write: an unwritable store fails before any simulation
         time is spent, and a killed campaign always leaves a parseable
         record. *)
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 file in
      output_string oc meta;
      output_char oc '\n';
      flush oc;
      if sync then fsync_channel ~file oc;
      Ok
        (mk_session ~skey ~file ~csize:chunk_size ~runs ~resilient ~span ~sync
           ~cached:(Hashtbl.create 16) ~frontier:(Hashtbl.create 4) ~oc:(Some oc)
           ~lock:(keep ()))
    in
    if not (Sys.file_exists file) then fresh ()
    else
      match parse_record file with
      | Error e -> Error (Printf.sprintf "store: %s: %s" file e)
      | Ok r -> (
          let m = r.r_meta in
          if m.m_schema <> schema_version then
            Error
              (Printf.sprintf
                 "store: %s: record has schema %s; sessions write %s (export it or \
                  start a fresh store)"
                 file m.m_schema schema_version)
          else if
            m.m_key <> skey || m.m_runs <> runs || m.m_resilient <> resilient
            || m.m_csize <> chunk_size
            || (m.m_lo, m.m_hi) <> span
            || List.sort compare m.m_config <> List.sort compare config
          then
            Error
              (Printf.sprintf
                 "store: %s: record metadata disagrees with this campaign (inspect \
                  with `cache ls`, reclaim with `cache gc`)"
                 file)
          else
            match r.r_defect with
            | Some d when d.d_tampered && resume ->
                Error
                  (Printf.sprintf
                     "store: %s: %s — record fails its integrity check; quarantine it \
                      or reclaim with `cache gc`"
                     file d.d_reason)
            | Some d when d.d_tampered -> fresh ()
            | _ ->
                let covered =
                  Hashtbl.fold (fun _ f acc -> Stdlib.min f acc) r.r_frontier max_int
                in
                let is_complete =
                  r.r_defect = None
                  && (s_hi <= s_lo
                     || (Hashtbl.length r.r_frontier > 0 && covered >= s_hi))
                in
                let adopt ~lock =
                  let cached = Hashtbl.create 16 in
                  List.iter
                    (fun c -> Hashtbl.replace cached (c.c_phase, c.c_lo) c.c_payload)
                    r.r_chunks;
                  mk_session ~skey ~file ~csize:chunk_size ~runs ~resilient ~span ~sync
                    ~cached ~frontier:r.r_frontier ~oc:None ~lock
                in
                if is_complete then Ok (adopt ~lock:None)
                else if not resume then fresh ()
                else begin
                  (* Resume: keep the valid prefix.  If validation dropped a
                     defective tail, rewrite the record to exactly the prefix
                     (atomically, tmp + rename) so the on-disk bytes and the
                     in-memory cache agree before we append. *)
                  (match r.r_defect with
                  | None -> ()
                  | Some _ ->
                      let tmp = file ^ ".tmp" in
                      let oc =
                        open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp
                      in
                      output_string oc meta;
                      output_char oc '\n';
                      List.iter
                        (fun c ->
                          output_string oc c.c_line;
                          output_char oc '\n')
                        r.r_chunks;
                      (if sync then
                         try fsync_channel ~file:tmp oc
                         with e ->
                           close_out_noerr oc;
                           raise e);
                      close_out oc;
                      Sys.rename tmp file);
                  Ok (adopt ~lock:(keep ()))
                end)
  end

let close s =
  if not s.closed then begin
    s.closed <- true;
    (match s.oc with
    | Some oc ->
        s.oc <- None;
        (try flush oc with Sys_error _ -> ());
        close_out_noerr oc
    | None -> ());
    release_session_lock s
  end

let ensure_oc s =
  match s.oc with
  | Some oc -> oc
  | None ->
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 s.file in
      s.oc <- Some oc;
      oc

let expected_len s ~lo = Stdlib.min s.csize (s.s_runs - lo)

let lookup_payload s ~phase ~lo ~len =
  match Hashtbl.find_opt s.cached (phase, lo) with
  | Some p when payload_len p = len -> Some p
  | _ -> None

let persist_payload s ~phase ~lo payload =
  if s.closed then invalid_arg "Store.persist: session is closed";
  if lo < s.s_lo || lo >= s.s_hi then
    invalid_arg
      (Printf.sprintf "Store.persist: chunk offset %d outside the session span [%d, %d)"
         lo s.s_lo s.s_hi);
  let front =
    match Hashtbl.find_opt s.frontier phase with Some f -> f | None -> s.s_lo
  in
  if lo <> front then
    invalid_arg
      (Printf.sprintf "Store.persist: %s chunk at %d, write frontier is %d" phase lo
         front);
  let len = payload_len payload in
  if len <> expected_len s ~lo then
    invalid_arg
      (Printf.sprintf "Store.persist: %s chunk at %d has %d runs, layout expects %d"
         phase lo len (expected_len s ~lo));
  (match (payload, s.s_resilient) with
  | Floats _, true ->
      invalid_arg "Store.persist: resilient record expects attempt trails"
  | Trails _, false ->
      invalid_arg "Store.persist_trails: fault-free record expects plain samples"
  | _ -> ());
  (match s.fail_after with
  | Some n when n <= 0 -> raise (Injected_crash { appended_chunks = s.appended })
  | Some n -> s.fail_after <- Some (n - 1)
  | None -> ());
  let oc = ensure_oc s in
  Repro_profile.time Repro_profile.Store (fun () ->
      output_string oc (chunk_line ~phase ~lo payload);
      output_char oc '\n';
      (* The flush is the checkpoint barrier: after it returns, this chunk
         survives a kill.  With [sync] the barrier extends to power loss:
         the fsync pushes the chunk through the OS page cache before we
         acknowledge it. *)
      flush oc;
      if s.s_sync then fsync_channel ~file:s.file oc);
  s.appended <- s.appended + 1;
  Hashtbl.replace s.cached (phase, lo) payload;
  Hashtbl.replace s.frontier phase (lo + len);
  (* The chunk just became durable, so this barrier is the one place a
     shutdown request can stop the campaign without losing work or
     leaving a torn tail: the record ends on a complete chunk boundary
     and a later [--resume] continues bit-identically. *)
  Shutdown.check ()

let lookup s ~phase ~lo ~len =
  match lookup_payload s ~phase ~lo ~len with Some (Floats a) -> Some a | _ -> None

let lookup_trails s ~phase ~lo ~len =
  match lookup_payload s ~phase ~lo ~len with Some (Trails a) -> Some a | _ -> None

let persist s ~phase ~lo a = persist_payload s ~phase ~lo (Floats a)
let persist_trails s ~phase ~lo a = persist_payload s ~phase ~lo (Trails a)

(* ------------------------------------------------------------------ *)
(* Collect drivers *)

let emit_cache_events trace s ~phase =
  match trace with
  | None -> ()
  | Some t ->
      let span = s.s_hi - s.s_lo in
      let cached = Stdlib.min (cached_runs s ~phase) span in
      (if cached >= span then
         Trace.emit t (Trace.Cache_hit { phase; key = s.skey; runs = span })
       else if cached = 0 then Trace.emit t (Trace.Cache_miss { phase; key = s.skey })
       else
         Trace.emit t
           (Trace.Resume { phase; key = s.skey; cached_runs = cached; total_runs = span }));
      let counters = Trace.counters t in
      Trace.Counters.add counters "cache.runs_cached" cached;
      Trace.Counters.add counters "cache.runs_simulated" (span - cached)

let check_runs s fn n =
  if n <> s.s_runs then
    invalid_arg
      (Printf.sprintf "Store.%s: %d runs requested, session holds %d" fn n s.s_runs)

let collect ?trace ?jobs s ~phase n f =
  check_runs s "collect" n;
  emit_cache_events trace s ~phase;
  Parallel.init_checkpointed ?trace ?jobs ~lo:s.s_lo ~chunk_size:s.csize
    ~lookup:(fun ~lo ~len -> lookup s ~phase ~lo ~len)
    ~persist:(fun ~lo a -> persist s ~phase ~lo a)
    s.s_hi f

let collect_trails ?trace ?jobs s ~phase n f =
  check_runs s "collect_trails" n;
  emit_cache_events trace s ~phase;
  Parallel.init_checkpointed ?trace ?jobs ~lo:s.s_lo ~chunk_size:s.csize
    ~lookup:(fun ~lo ~len -> lookup_trails s ~phase ~lo ~len)
    ~persist:(fun ~lo a -> persist_trails s ~phase ~lo a)
    s.s_hi f

(* ------------------------------------------------------------------ *)
(* Inspection *)

type status = Complete | Partial of string | Corrupt of string

type entry = {
  file : string;
  entry_key : string;
  runs : int;
  resilient : bool;
  config : (string * string) list;
  phases : (string * int) list;
  shard : (int * int) option;
  bytes : int;
  status : status;
}

let file_bytes file =
  match open_in_bin file with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> in_channel_length ic)
  | exception Sys_error _ -> 0

let entry_of_file t name =
  let file = Filename.concat t.root name in
  let entry_key = Filename.chop_suffix name ".jsonl" in
  let bytes = file_bytes file in
  let corrupt reason =
    {
      file;
      entry_key;
      runs = 0;
      resilient = false;
      config = [];
      phases = [];
      shard = None;
      bytes;
      status = Corrupt reason;
    }
  in
  match parse_record file with
  | Error e -> corrupt e
  | Ok r ->
      let m = r.r_meta in
      let derived = key_of_schema ~schema:m.m_schema ~chunk_size:m.m_csize m.m_config in
      if m.m_key <> entry_key then
        corrupt (Printf.sprintf "meta key %s does not match filename" m.m_key)
      else if derived <> entry_key then
        corrupt
          (Printf.sprintf "content digest %s does not match filename (record edited?)"
             derived)
      else begin
        let phases =
          Hashtbl.fold (fun p f acc -> (p, f) :: acc) r.r_frontier []
          |> List.sort compare
        in
        let covered = List.fold_left (fun acc (_, f) -> Stdlib.min acc f) max_int phases in
        let status =
          match r.r_defect with
          | Some d when d.d_tampered -> Corrupt d.d_reason
          | Some d when phases = [] -> Corrupt d.d_reason
          | Some d ->
              Partial
                (Printf.sprintf "valid prefix kept, tail dropped: %s" d.d_reason)
          | None ->
              if m.m_runs = 0 || m.m_lo >= m.m_hi || (phases <> [] && covered >= m.m_hi)
              then Complete
              else if phases = [] then Partial "no samples collected yet"
              else
                Partial
                  (String.concat ", "
                     (List.map
                        (fun (p, f) -> Printf.sprintf "%s %d/%d" p f m.m_runs)
                        phases))
        in
        {
          file;
          entry_key;
          runs = m.m_runs;
          resilient = m.m_resilient;
          config = m.m_config;
          phases;
          shard = (if m.m_lo = 0 && m.m_hi = m.m_runs then None else Some (m.m_lo, m.m_hi));
          bytes;
          status;
        }
      end

let quarantine_suffix = ".jsonl.quarantined"

let quarantined_entry t name =
  let file = Filename.concat t.root name in
  {
    file;
    entry_key = Filename.chop_suffix name quarantine_suffix;
    runs = 0;
    resilient = false;
    config = [];
    phases = [];
    shard = None;
    bytes = file_bytes file;
    status = Corrupt "quarantined (failed an integrity check during merge)";
  }

let ls t =
  let names = Sys.readdir t.root |> Array.to_list in
  let records =
    names
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
    |> List.sort compare
    |> List.map (entry_of_file t)
  in
  let quarantined =
    names
    |> List.filter (fun f -> Filename.check_suffix f quarantine_suffix)
    |> List.sort compare
    |> List.map (quarantined_entry t)
  in
  records @ quarantined

let gc ?(partial = false) t =
  let victims =
    List.filter
      (fun e ->
        match e.status with
        | Corrupt _ -> true
        | Partial _ -> partial
        | Complete -> false)
      (ls t)
  in
  let freed =
    List.fold_left
      (fun acc e ->
        match Sys.remove e.file with
        | () -> acc + e.bytes
        | exception Sys_error _ -> acc)
      0 victims
  in
  (victims, freed)

let pp_entry ppf e =
  let status =
    match e.status with
    | Complete -> "complete"
    | Partial d -> "partial (" ^ d ^ ")"
    | Corrupt d -> "corrupt (" ^ d ^ ")"
  in
  Format.fprintf ppf "%s  runs=%d%s%s  %dB  %s" e.entry_key e.runs
    (if e.resilient then "  resilient" else "")
    (match e.shard with
    | None -> ""
    | Some (lo, hi) -> Printf.sprintf "  shard=[%d,%d)" lo hi)
    e.bytes status

(* ------------------------------------------------------------------ *)
(* Merge and export *)

type merge_report = {
  records_merged : int;
  chunks_merged : int;
  coverage : (string * int) list;
  contributed : string list;
  quarantined : (string * string) list;
  skipped : (string * string) list;
}

(* Merge walks every record key found in any source (and the destination),
   admits only candidates that pass the full integrity gauntlet — line
   checksums, digest-vs-filename, metadata agreement, byte-identical
   duplicate chunks — and composes the maximal contiguous prefix of the
   global chunk layout per phase.  Failing candidates are renamed aside
   ([.quarantined]) so reruns converge and the evidence survives.  The
   destination record is replaced via tmp+rename: a crash at any point
   leaves the previous record intact, and rerunning the merge is
   idempotent. *)
let merge ?trace ?fail_after ?(sync = false) ~src dst =
  let fuel = ref fail_after in
  let written = ref 0 in
  let burn () =
    match !fuel with
    | Some n when n <= 0 -> raise (Injected_crash { appended_chunks = !written })
    | Some n -> fuel := Some (n - 1)
    | None -> ()
  in
  let quarantined = ref [] in
  let skipped = ref [] in
  let contributed = ref [] in
  let coverage = ref [] in
  let records_merged = ref 0 in
  let note_quarantine file reason =
    (try Sys.rename file (file ^ ".quarantined") with Sys_error _ -> ());
    quarantined := (file, reason) :: !quarantined
  in
  let process name =
    let dst_file = Filename.concat dst.root name in
    let entry_key = Filename.chop_suffix name ".jsonl" in
    let candidate_files =
      (if Sys.file_exists dst_file then [ dst_file ] else [])
      @ List.filter_map
          (fun root ->
            let f = Filename.concat root.root name in
            if Sys.file_exists f then Some f else None)
          src
    in
    let candidates =
      List.filter_map
        (fun f ->
          match parse_record f with
          | Error e ->
              note_quarantine f ("unreadable: " ^ e);
              None
          | Ok r ->
              let m = r.r_meta in
              if m.m_schema = schema_v1 then begin
                skipped := (f, "store/v1 record (no checksums); left in place") :: !skipped;
                None
              end
              else if
                m.m_key <> entry_key
                || key_of_schema ~schema:m.m_schema ~chunk_size:m.m_csize m.m_config
                   <> entry_key
              then begin
                note_quarantine f
                  "content digest does not match filename (foreign or edited record)";
                None
              end
              else (
                match r.r_defect with
                | Some d when d.d_tampered ->
                    note_quarantine f d.d_reason;
                    None
                | _ -> Some (f, r)))
        candidate_files
    in
    match candidates with
    | [] -> ()
    | (_, first) :: _ ->
        let m0 = first.r_meta in
        let same_campaign m =
          m.m_runs = m0.m_runs && m.m_resilient = m0.m_resilient
          && m.m_csize = m0.m_csize
          && List.sort compare m.m_config = List.sort compare m0.m_config
        in
        let candidates =
          List.filter
            (fun (f, r) ->
              if same_campaign r.r_meta then true
              else begin
                note_quarantine f "record metadata disagrees with its siblings";
                false
              end)
            candidates
        in
        let runs = m0.m_runs and csize = m0.m_csize in
        (* Union the chunks; duplicates must be byte-identical (the
           determinism contract says recomputing a chunk reproduces its
           bytes), so disagreement marks a corrupted or divergent record. *)
        let table = Hashtbl.create 64 in
        let phase_order = ref [] in
        List.iter
          (fun (f, r) ->
            let conflict =
              List.exists
                (fun c ->
                  match Hashtbl.find_opt table (c.c_phase, c.c_lo) with
                  | Some (_, line) -> line <> c.c_line
                  | None -> false)
                r.r_chunks
            in
            if conflict then
              note_quarantine f
                "chunk bytes disagree with another record for the same key"
            else
              List.iter
                (fun c ->
                  if not (List.mem c.c_phase !phase_order) then
                    phase_order := !phase_order @ [ c.c_phase ];
                  if not (Hashtbl.mem table (c.c_phase, c.c_lo)) then
                    Hashtbl.replace table (c.c_phase, c.c_lo) (f, c.c_line))
                r.r_chunks)
          candidates;
        (* Compose the maximal contiguous prefix per phase over the global
           chunk layout; anything after a gap (e.g. an unrecoverable or
           quarantined shard) is dropped — partial coverage is reported,
           never silently wrong data. *)
        let compose phase =
          let rec go lo acc =
            if lo >= runs then (List.rev acc, runs)
            else
              match Hashtbl.find_opt table (phase, lo) with
              | Some entry -> go (lo + Stdlib.min csize (runs - lo)) (entry :: acc)
              | None -> (List.rev acc, lo)
          in
          go 0 []
        in
        let phases = List.map (fun p -> (p, compose p)) !phase_order in
        let lines = List.concat_map (fun (_, (ls, _)) -> ls) phases in
        let covered =
          if phases = [] then 0
          else List.fold_left (fun acc (_, (_, hi)) -> Stdlib.min acc hi) max_int phases
        in
        coverage := (entry_key, covered) :: !coverage;
        List.iter
          (fun (f, _) ->
            if not (List.mem f !contributed) then contributed := f :: !contributed)
          lines;
        let meta_ln =
          meta_line ~skey:entry_key ~runs ~resilient:m0.m_resilient ~chunk_size:csize
            ~shard:None ~config:m0.m_config
        in
        let text =
          String.concat ""
            ((meta_ln ^ "\n") :: List.map (fun (_, l) -> l ^ "\n") lines)
        in
        let unchanged =
          Sys.file_exists dst_file
          && (match read_file dst_file with
             | existing -> existing = text
             | exception Sys_error _ -> false)
        in
        if not unchanged then begin
          let tmp = dst_file ^ ".merge.tmp" in
          let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp in
          (try
             output_string oc meta_ln;
             output_char oc '\n';
             List.iter
               (fun (_, l) ->
                 burn ();
                 output_string oc l;
                 output_char oc '\n';
                 incr written)
               lines;
             flush oc;
             if sync then fsync_channel ~file:tmp oc
           with e ->
             close_out_noerr oc;
             raise e);
          close_out oc;
          Sys.rename tmp dst_file;
          incr records_merged
        end
  in
  let record_names root =
    Sys.readdir root.root |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
  in
  match
    let names = List.sort_uniq compare (List.concat_map record_names src) in
    List.iter process names
  with
  | exception Sys_error e -> Error e
  | () ->
      (match trace with
      | None -> ()
      | Some t ->
          let c = Trace.counters t in
          Trace.Counters.add c "cache.records_quarantined" (List.length !quarantined);
          Trace.Counters.add c "cache.records_merged" !records_merged;
          Trace.Counters.add c "cache.chunks_merged" !written;
          List.iter
            (fun (f, reason) ->
              Trace.emit t (Trace.Note (Printf.sprintf "quarantined %s: %s" f reason)))
            (List.rev !quarantined));
      Ok
        {
          records_merged = !records_merged;
          chunks_merged = !written;
          coverage = List.rev !coverage;
          contributed = List.rev !contributed;
          quarantined = List.rev !quarantined;
          skipped = List.rev !skipped;
        }

let export t ~key:skey =
  let file = Filename.concat t.root (skey ^ ".jsonl") in
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "store: no record %s in %s" skey t.root)
  else
    match parse_record file with
    | Error e -> Error (Printf.sprintf "store: %s: %s" file e)
    | Ok r -> (
        match r.r_defect with
        | Some d when d.d_tampered -> Error (Printf.sprintf "store: %s: %s" file d.d_reason)
        | _ -> (
            match read_lines file with
            | [] -> Error (Printf.sprintf "store: %s: record unreadable or empty" file)
            | meta_ln :: _ ->
                Ok
                  (String.concat ""
                     (List.map
                        (fun l -> l ^ "\n")
                        (meta_ln :: List.map (fun c -> c.c_line) r.r_chunks)))))
