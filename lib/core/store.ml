(* Persistent, content-addressed measurement store.

   One JSONL record per campaign configuration, addressed by a digest of
   everything that could change a stored byte (schema, chunk size, full
   measurement config).  The record is append-only at chunk granularity:
   [Parallel.init_checkpointed] hands us each checkpoint chunk in
   ascending order on the calling domain, so an interruption leaves a
   clean prefix (or, if the kill landed mid-write, a prefix plus one
   malformed tail line which validation drops).  Because chunk layout is
   a pure function of the run count, the same record serves any [--jobs]
   count bit-identically — the resume contract in store.mli. *)

module Json = Trace.Json

let schema_version = "store/v1"
let default_chunk_size = 256

exception Injected_crash of { appended_chunks : int }

(* ------------------------------------------------------------------ *)
(* Store root *)

type t = { root : string }

let open_root ~dir =
  Trace.ensure_dir dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "store: %s is not a directory" dir));
  { root = dir }

let dir t = t.root

let key ?(chunk_size = default_chunk_size) config =
  let b = Buffer.create 256 in
  Buffer.add_string b schema_version;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "chunk_size=%d\n" chunk_size);
  (* Canonical order plus %S-quoting: the digest cannot depend on how the
     harness ordered the pairs, and a value containing '=' or '\n' cannot
     collide with a differently-split pair. *)
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%S=%S\n" k v))
    (List.sort compare config);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Record lines *)

type outcome =
  | Completed of float
  | Timeout of string
  | Crashed of string
  | Corrupted of string

type trail = outcome list
type payload = Floats of float array | Trails of trail array

let payload_len = function
  | Floats a -> Array.length a
  | Trails a -> Array.length a

let json_of_outcome = function
  | Completed v -> Json.Obj [ ("k", Json.String "c"); ("v", Json.Float v) ]
  | Timeout d -> Json.Obj [ ("k", Json.String "t"); ("d", Json.String d) ]
  | Crashed d -> Json.Obj [ ("k", Json.String "x"); ("d", Json.String d) ]
  | Corrupted d -> Json.Obj [ ("k", Json.String "o"); ("d", Json.String d) ]

let outcome_of_json j =
  let detail () =
    match Option.bind (Json.member "d" j) Json.to_str with Some d -> d | None -> ""
  in
  match Option.bind (Json.member "k" j) Json.to_str with
  | Some "c" -> (
      match Option.bind (Json.member "v" j) Json.to_float with
      | Some v -> Ok (Completed v)
      | None -> Error "completed outcome without a numeric value")
  | Some "t" -> Ok (Timeout (detail ()))
  | Some "x" -> Ok (Crashed (detail ()))
  | Some "o" -> Ok (Corrupted (detail ()))
  | Some k -> Error (Printf.sprintf "unknown outcome kind %S" k)
  | None -> Error "outcome without a kind"

let meta_line ~skey ~runs ~resilient ~chunk_size ~config =
  Json.to_string
    (Json.Obj
       [
         ("kind", Json.String "meta");
         ("schema", Json.String schema_version);
         ("key", Json.String skey);
         ("runs", Json.Int runs);
         ("resilient", Json.Bool resilient);
         ("chunk_size", Json.Int chunk_size);
         ( "config",
           Json.Obj
             (List.map (fun (k, v) -> (k, Json.String v)) (List.sort compare config)) );
       ])

let chunk_line ~phase ~lo payload =
  match payload with
  | Floats values ->
      Json.to_string
        (Json.Obj
           [
             ("kind", Json.String "chunk");
             ("phase", Json.String phase);
             ("lo", Json.Int lo);
             ( "values",
               Json.List (Array.to_list (Array.map (fun v -> Json.Float v) values)) );
           ])
  | Trails runs ->
      Json.to_string
        (Json.Obj
           [
             ("kind", Json.String "rchunk");
             ("phase", Json.String phase);
             ("lo", Json.Int lo);
             ( "runs",
               Json.List
                 (Array.to_list
                    (Array.map
                       (fun trail -> Json.List (List.map json_of_outcome trail))
                       runs)) );
           ])

(* ------------------------------------------------------------------ *)
(* Record parsing *)

type meta = {
  m_key : string;
  m_runs : int;
  m_resilient : bool;
  m_csize : int;
  m_config : (string * string) list;
}

let parse_meta line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "meta line unreadable (%s)" e)
  | Ok j -> (
      let str f = Option.bind (Json.member f j) Json.to_str in
      let int f = Option.bind (Json.member f j) Json.to_int in
      let bool f = Option.bind (Json.member f j) Json.to_bool in
      match (str "kind", str "schema") with
      | Some "meta", Some s when s = schema_version -> (
          let config =
            match Json.member "config" j with
            | Some (Json.Obj fields) ->
                let ok =
                  List.for_all (function _, Json.String _ -> true | _ -> false) fields
                in
                if ok then
                  Some
                    (List.map
                       (function
                         | k, Json.String v -> (k, v)
                         | _ -> assert false (* filtered above *))
                       fields)
                else None
            | _ -> None
          in
          match (str "key", int "runs", bool "resilient", int "chunk_size", config) with
          | Some m_key, Some m_runs, Some m_resilient, Some m_csize, Some m_config ->
              Ok { m_key; m_runs; m_resilient; m_csize; m_config }
          | _ -> Error "meta line is missing fields")
      | Some "meta", Some s ->
          Error (Printf.sprintf "schema %S, this build reads %S" s schema_version)
      | _ -> Error "first line is not a meta line")

let floats_of_json = function
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | j :: rest -> (
            match Json.to_float j with
            | Some v -> go (v :: acc) rest
            | None -> Error "non-numeric value in chunk")
      in
      go [] items
  | _ -> Error "chunk values is not a list"

let trails_of_json = function
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | Json.List os :: rest -> (
            let rec outcomes acc' = function
              | [] -> Ok (List.rev acc')
              | o :: tl -> (
                  match outcome_of_json o with
                  | Ok o -> outcomes (o :: acc') tl
                  | Error e -> Error e)
            in
            match outcomes [] os with
            | Ok trail -> go (trail :: acc) rest
            | Error e -> Error e)
        | _ :: _ -> Error "trail is not a list"
      in
      go [] items
  | _ -> Error "rchunk runs is not a list"

(* One parsed, layout-validated chunk line. *)
type parsed_chunk = { c_phase : string; c_lo : int; c_payload : payload; c_line : string }

(* Validate one chunk line against the fixed layout and the per-phase
   write frontier.  Anything off — wrong kind for the record, lo not at
   the frontier, wrong length, parse failure — is a tail defect: the
   record's valid prefix ends just before this line. *)
let parse_chunk_line ~meta ~frontier ~lineno line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "line %d unreadable (%s)" lineno e)
  | Ok j -> (
      let str f = Option.bind (Json.member f j) Json.to_str in
      let int f = Option.bind (Json.member f j) Json.to_int in
      let payload =
        match str "kind" with
        | Some "chunk" when not meta.m_resilient -> (
            match Json.member "values" j with
            | Some v -> Result.map (fun a -> Floats a) (floats_of_json v)
            | None -> Error "chunk without values")
        | Some "rchunk" when meta.m_resilient -> (
            match Json.member "runs" j with
            | Some v -> Result.map (fun a -> Trails a) (trails_of_json v)
            | None -> Error "rchunk without runs")
        | Some k -> Error (Printf.sprintf "unexpected line kind %S" k)
        | None -> Error "line without a kind"
      in
      match (str "phase", int "lo", payload) with
      | Some c_phase, Some c_lo, Ok c_payload ->
          let front =
            match Hashtbl.find_opt frontier c_phase with Some f -> f | None -> 0
          in
          let expected = Stdlib.min meta.m_csize (meta.m_runs - c_lo) in
          if c_lo <> front then
            Error
              (Printf.sprintf "line %d: %s chunk at %d, expected frontier %d" lineno
                 c_phase c_lo front)
          else if c_lo >= meta.m_runs then
            Error (Printf.sprintf "line %d: chunk beyond run count" lineno)
          else if payload_len c_payload <> expected then
            Error
              (Printf.sprintf "line %d: chunk at %d has %d runs, layout expects %d"
                 lineno c_lo (payload_len c_payload) expected)
          else begin
            Hashtbl.replace frontier c_phase (c_lo + expected);
            Ok { c_phase; c_lo; c_payload; c_line = line }
          end
      | _, _, Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      | _ -> Error (Printf.sprintf "line %d: chunk without phase/lo" lineno))

let read_lines file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

type parsed_record = {
  r_meta : meta;
  r_chunks : parsed_chunk list;  (* file order; the valid prefix *)
  r_frontier : (string, int) Hashtbl.t;
  r_defect : string option;  (* first invalid line, if any *)
}

let parse_record file =
  match read_lines file with
  | [] | (exception Sys_error _) -> Error "record unreadable or empty"
  | meta_ln :: rest -> (
      match parse_meta meta_ln with
      | Error e -> Error e
      | Ok r_meta ->
          let frontier = Hashtbl.create 4 in
          let rec go lineno acc = function
            | [] -> (List.rev acc, None)
            | "" :: tl -> go (lineno + 1) acc tl (* tolerate a trailing blank *)
            | line :: tl -> (
                match parse_chunk_line ~meta:r_meta ~frontier ~lineno line with
                | Ok c -> go (lineno + 1) (c :: acc) tl
                | Error e -> (List.rev acc, Some e))
          in
          let r_chunks, r_defect = go 2 [] rest in
          Ok { r_meta; r_chunks; r_frontier = frontier; r_defect })

(* ------------------------------------------------------------------ *)
(* Sessions *)

type session = {
  skey : string;
  file : string;
  csize : int;
  s_runs : int;
  s_resilient : bool;
  cached : (string * int, payload) Hashtbl.t;  (* (phase, lo) -> chunk *)
  frontier : (string, int) Hashtbl.t;  (* phase -> next lo to append *)
  at_open : (string, int) Hashtbl.t;  (* frontier snapshot at open time *)
  mutable oc : out_channel option;
  mutable fail_after : int option;
  mutable appended : int;
  mutable closed : bool;
}

let session_key s = s.skey
let chunk_size s = s.csize

let cached_runs s ~phase =
  match Hashtbl.find_opt s.at_open phase with Some f -> f | None -> 0

let complete s ~phase = cached_runs s ~phase >= s.s_runs
let set_fail_after s n = s.fail_after <- Some n

let fail_after_from_env () =
  Option.bind (Sys.getenv_opt "MBPTA_STORE_FAIL_AFTER_CHUNKS") int_of_string_opt

let mk_session ~skey ~file ~csize ~runs ~resilient ~cached ~frontier ~oc =
  let at_open = Hashtbl.copy frontier in
  {
    skey;
    file;
    csize;
    s_runs = runs;
    s_resilient = resilient;
    cached;
    frontier;
    at_open;
    oc;
    fail_after = fail_after_from_env ();
    appended = 0;
    closed = false;
  }

let open_session ?(chunk_size = default_chunk_size) ?(resume = false) t ~key:skey
    ~config ~runs ~resilient =
  if runs < 0 then invalid_arg "Store.open_session: negative runs";
  if chunk_size < 1 then invalid_arg "Store.open_session: chunk_size must be >= 1";
  let derived = key ~chunk_size config in
  if derived <> skey then
    Error
      (Printf.sprintf "store: key %s does not match its configuration (digest %s)" skey
         derived)
  else begin
    let file = Filename.concat t.root (skey ^ ".jsonl") in
    let meta = meta_line ~skey ~runs ~resilient ~chunk_size ~config in
    let fresh () =
      (* Eager meta write: an unwritable store fails before any simulation
         time is spent, and a killed campaign always leaves a parseable
         record. *)
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 file in
      output_string oc meta;
      output_char oc '\n';
      flush oc;
      Ok
        (mk_session ~skey ~file ~csize:chunk_size ~runs ~resilient
           ~cached:(Hashtbl.create 16) ~frontier:(Hashtbl.create 4) ~oc:(Some oc))
    in
    if not (Sys.file_exists file) then fresh ()
    else
      match parse_record file with
      | Error e -> Error (Printf.sprintf "store: %s: %s" file e)
      | Ok r ->
          let m = r.r_meta in
          if m.m_key <> skey || m.m_runs <> runs || m.m_resilient <> resilient
             || m.m_csize <> chunk_size
             || List.sort compare m.m_config <> List.sort compare config
          then
            Error
              (Printf.sprintf
                 "store: %s: record metadata disagrees with this campaign (inspect \
                  with `cache ls`, reclaim with `cache gc`)"
                 file)
          else begin
            let covered = Hashtbl.fold (fun _ f acc -> Stdlib.min f acc) r.r_frontier max_int in
            let is_complete =
              r.r_defect = None
              && (runs = 0 || (Hashtbl.length r.r_frontier > 0 && covered >= runs))
            in
            let adopt () =
              let cached = Hashtbl.create 16 in
              List.iter
                (fun c -> Hashtbl.replace cached (c.c_phase, c.c_lo) c.c_payload)
                r.r_chunks;
              mk_session ~skey ~file ~csize:chunk_size ~runs ~resilient ~cached
                ~frontier:r.r_frontier ~oc:None
            in
            if is_complete then Ok (adopt ())
            else if not resume then fresh ()
            else begin
              (* Resume: keep the valid prefix.  If validation dropped a
                 defective tail, rewrite the record to exactly the prefix
                 (atomically, tmp + rename) so the on-disk bytes and the
                 in-memory cache agree before we append. *)
              (match r.r_defect with
              | None -> ()
              | Some _ ->
                  let tmp = file ^ ".tmp" in
                  let oc =
                    open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp
                  in
                  output_string oc meta;
                  output_char oc '\n';
                  List.iter
                    (fun c ->
                      output_string oc c.c_line;
                      output_char oc '\n')
                    r.r_chunks;
                  close_out oc;
                  Sys.rename tmp file);
              Ok (adopt ())
            end
          end
  end

let close s =
  if not s.closed then begin
    s.closed <- true;
    match s.oc with
    | Some oc ->
        s.oc <- None;
        (try flush oc with Sys_error _ -> ());
        close_out_noerr oc
    | None -> ()
  end

let ensure_oc s =
  match s.oc with
  | Some oc -> oc
  | None ->
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 s.file in
      s.oc <- Some oc;
      oc

let expected_len s ~lo = Stdlib.min s.csize (s.s_runs - lo)

let lookup_payload s ~phase ~lo ~len =
  match Hashtbl.find_opt s.cached (phase, lo) with
  | Some p when payload_len p = len -> Some p
  | _ -> None

let persist_payload s ~phase ~lo payload =
  if s.closed then invalid_arg "Store.persist: session is closed";
  if lo < 0 || lo >= s.s_runs then
    invalid_arg (Printf.sprintf "Store.persist: chunk offset %d out of range" lo);
  let front = match Hashtbl.find_opt s.frontier phase with Some f -> f | None -> 0 in
  if lo <> front then
    invalid_arg
      (Printf.sprintf "Store.persist: %s chunk at %d, write frontier is %d" phase lo
         front);
  let len = payload_len payload in
  if len <> expected_len s ~lo then
    invalid_arg
      (Printf.sprintf "Store.persist: %s chunk at %d has %d runs, layout expects %d"
         phase lo len (expected_len s ~lo));
  (match (payload, s.s_resilient) with
  | Floats _, true ->
      invalid_arg "Store.persist: resilient record expects attempt trails"
  | Trails _, false ->
      invalid_arg "Store.persist_trails: fault-free record expects plain samples"
  | _ -> ());
  (match s.fail_after with
  | Some n when n <= 0 -> raise (Injected_crash { appended_chunks = s.appended })
  | Some n -> s.fail_after <- Some (n - 1)
  | None -> ());
  let oc = ensure_oc s in
  output_string oc (chunk_line ~phase ~lo payload);
  output_char oc '\n';
  (* The flush is the checkpoint barrier: after it returns, this chunk
     survives a kill. *)
  flush oc;
  s.appended <- s.appended + 1;
  Hashtbl.replace s.cached (phase, lo) payload;
  Hashtbl.replace s.frontier phase (lo + len)

let lookup s ~phase ~lo ~len =
  match lookup_payload s ~phase ~lo ~len with Some (Floats a) -> Some a | _ -> None

let lookup_trails s ~phase ~lo ~len =
  match lookup_payload s ~phase ~lo ~len with Some (Trails a) -> Some a | _ -> None

let persist s ~phase ~lo a = persist_payload s ~phase ~lo (Floats a)
let persist_trails s ~phase ~lo a = persist_payload s ~phase ~lo (Trails a)

(* ------------------------------------------------------------------ *)
(* Collect drivers *)

let emit_cache_events trace s ~phase n =
  match trace with
  | None -> ()
  | Some t ->
      let cached = Stdlib.min (cached_runs s ~phase) n in
      (if cached >= n then
         Trace.emit t (Trace.Cache_hit { phase; key = s.skey; runs = n })
       else if cached = 0 then Trace.emit t (Trace.Cache_miss { phase; key = s.skey })
       else
         Trace.emit t
           (Trace.Resume { phase; key = s.skey; cached_runs = cached; total_runs = n }));
      let counters = Trace.counters t in
      Trace.Counters.add counters "cache.runs_cached" cached;
      Trace.Counters.add counters "cache.runs_simulated" (n - cached)

let check_runs s fn n =
  if n <> s.s_runs then
    invalid_arg
      (Printf.sprintf "Store.%s: %d runs requested, session holds %d" fn n s.s_runs)

let collect ?trace ?jobs s ~phase n f =
  check_runs s "collect" n;
  emit_cache_events trace s ~phase n;
  Parallel.init_checkpointed ?trace ?jobs ~chunk_size:s.csize
    ~lookup:(fun ~lo ~len -> lookup s ~phase ~lo ~len)
    ~persist:(fun ~lo a -> persist s ~phase ~lo a)
    n f

let collect_trails ?trace ?jobs s ~phase n f =
  check_runs s "collect_trails" n;
  emit_cache_events trace s ~phase n;
  Parallel.init_checkpointed ?trace ?jobs ~chunk_size:s.csize
    ~lookup:(fun ~lo ~len -> lookup_trails s ~phase ~lo ~len)
    ~persist:(fun ~lo a -> persist_trails s ~phase ~lo a)
    n f

(* ------------------------------------------------------------------ *)
(* Inspection *)

type status = Complete | Partial of string | Corrupt of string

type entry = {
  file : string;
  entry_key : string;
  runs : int;
  resilient : bool;
  config : (string * string) list;
  phases : (string * int) list;
  bytes : int;
  status : status;
}

let file_bytes file =
  match open_in_bin file with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> in_channel_length ic)
  | exception Sys_error _ -> 0

let entry_of_file t name =
  let file = Filename.concat t.root name in
  let entry_key = Filename.chop_suffix name ".jsonl" in
  let bytes = file_bytes file in
  let corrupt reason =
    {
      file;
      entry_key;
      runs = 0;
      resilient = false;
      config = [];
      phases = [];
      bytes;
      status = Corrupt reason;
    }
  in
  match parse_record file with
  | Error e -> corrupt e
  | Ok r ->
      let m = r.r_meta in
      let derived = key ~chunk_size:m.m_csize m.m_config in
      if m.m_key <> entry_key then
        corrupt (Printf.sprintf "meta key %s does not match filename" m.m_key)
      else if derived <> entry_key then
        corrupt
          (Printf.sprintf "content digest %s does not match filename (record edited?)"
             derived)
      else begin
        let phases =
          Hashtbl.fold (fun p f acc -> (p, f) :: acc) r.r_frontier []
          |> List.sort compare
        in
        let covered = List.fold_left (fun acc (_, f) -> Stdlib.min acc f) max_int phases in
        let status =
          match r.r_defect with
          | Some d when phases = [] -> Corrupt d
          | Some d ->
              Partial
                (Printf.sprintf "valid prefix kept, tail dropped: %s" d)
          | None ->
              if m.m_runs = 0 || (phases <> [] && covered >= m.m_runs) then Complete
              else if phases = [] then Partial "no samples collected yet"
              else
                Partial
                  (String.concat ", "
                     (List.map
                        (fun (p, f) -> Printf.sprintf "%s %d/%d" p f m.m_runs)
                        phases))
        in
        {
          file;
          entry_key;
          runs = m.m_runs;
          resilient = m.m_resilient;
          config = m.m_config;
          phases;
          bytes;
          status;
        }
      end

let ls t =
  Sys.readdir t.root |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
  |> List.sort compare
  |> List.map (entry_of_file t)

let gc ?(partial = false) t =
  let victims =
    List.filter
      (fun e ->
        match e.status with
        | Corrupt _ -> true
        | Partial _ -> partial
        | Complete -> false)
      (ls t)
  in
  let freed =
    List.fold_left
      (fun acc e ->
        match Sys.remove e.file with
        | () -> acc + e.bytes
        | exception Sys_error _ -> acc)
      0 victims
  in
  (victims, freed)

let pp_entry ppf e =
  let status =
    match e.status with
    | Complete -> "complete"
    | Partial d -> "partial (" ^ d ^ ")"
    | Corrupt d -> "corrupt (" ^ d ^ ")"
  in
  Format.fprintf ppf "%s  runs=%d%s  %dB  %s" e.entry_key e.runs
    (if e.resilient then "  resilient" else "")
    e.bytes status
