(* Persistent, content-addressed measurement store.

   One JSONL record per campaign configuration, addressed by a digest of
   everything that could change a stored byte (schema, chunk size, full
   measurement config).  The record is append-only at chunk granularity:
   [Parallel.init_checkpointed] hands us each checkpoint chunk in
   ascending order on the calling domain, so an interruption leaves a
   clean prefix (or, if the kill landed mid-write, a prefix plus one
   malformed tail line which validation drops).  Because chunk layout is
   a pure function of the run count, the same record serves any [--jobs]
   count bit-identically — the resume contract in store.mli.

   store/v2 hardened every line with an integrity trailer (see [seal]) so
   that verification can tell a torn tail (crash: resumable) from a
   bit-flipped, truncated-in-the-middle or foreign record (hostile input:
   quarantined, never merged).  store/v3 keeps the line framing and the
   trailer but encodes fault-free chunk payloads as base64 of the floats'
   little-endian IEEE-754 bit patterns — bit-exact by construction and
   half the bytes of the old [%.17g] text — and is read by streaming over
   the file with bounded buffers: records are never slurped whole, chunk
   payloads are decoded on demand through a per-record byte index, and an
   [.idx] sidecar lets header-only listings skip the scan entirely.
   Shard sessions restrict a record to a chunk-aligned span of the run
   space; [merge] recombines shard records into the byte-identical
   single-process record in O(chunk) memory. *)

module Json = Trace.Json

let schema_version = "store/v3"
let schema_v2 = "store/v2"
let schema_v1 = "store/v1"
let default_chunk_size = 256

exception Injected_crash of { appended_chunks : int }

(* ------------------------------------------------------------------ *)
(* Integrity trailer

   Every v2 line ends with [,"sum":"<md5-hex>"}] — the digest of the line
   with the trailer spliced back out.  Sealing and verification are string
   surgery on the serialized line (not a JSON round-trip), so the check is
   byte-exact by construction: any flipped bit in the body, a truncation,
   or a hand-edited value fails the digest comparison. *)

let seal body =
  (* [body] is a serialized JSON object, so it ends with '}'. *)
  Printf.sprintf "%s,\"sum\":\"%s\"}"
    (String.sub body 0 (String.length body - 1))
    (Digest.to_hex (Digest.string body))

let trailer_len = String.length ",\"sum\":\"\"}" + 32

(* Structural half of [unseal]: recover the body without paying for the
   digest.  Reads that follow a verified scan (or a stat-fresh index
   adoption) use this directly — see [read_chunk_at]. *)
let strip_seal line =
  let n = String.length line in
  if n <= trailer_len then Error `No_sum
  else begin
    let start = n - trailer_len in
    if
      String.sub line start 8 <> ",\"sum\":\""
      || line.[n - 2] <> '"'
      || line.[n - 1] <> '}'
    then Error `No_sum
    else Ok (String.sub line 0 start ^ "}")
  end

let unseal line =
  match strip_seal line with
  | Error _ as e -> e
  | Ok body ->
      let sum = String.sub line (String.length line - trailer_len + 8) 32 in
      if Digest.to_hex (Digest.string body) = sum then Ok body else Error `Bad_sum

(* ------------------------------------------------------------------ *)
(* Binary float payloads (store/v3)

   Fault-free chunks carry their samples as base64 over the concatenated
   little-endian [Int64.bits_of_float] patterns: 8 bytes per float before
   encoding, ~10.7 after, against ~20 for the old [%.17g] text — and the
   round-trip is bit-exact by construction for every pattern, including
   -0., subnormals, infinities and NaN payloads (text printing was only
   bit-exact for the values [%.17g] can represent faithfully).  The
   encoder is hand-rolled (no new dependencies) with the standard
   alphabet and '=' padding; base64 keeps the record greppable JSONL and
   needs no JSON string escaping. *)

let b64_chars = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let b64_value =
  lazy
    (let t = Array.make 256 (-1) in
     String.iteri (fun i c -> t.(Char.code c) <- i) b64_chars;
     t)

(* Encoded length of [n] raw bytes, padding included. *)
let b64_len n = (n + 2) / 3 * 4

let b64_encode src =
  let n = Bytes.length src in
  let out = Buffer.create (b64_len n) in
  let byte i = Char.code (Bytes.get src i) in
  let i = ref 0 in
  while !i + 2 < n do
    let b0 = byte !i and b1 = byte (!i + 1) and b2 = byte (!i + 2) in
    Buffer.add_char out b64_chars.[b0 lsr 2];
    Buffer.add_char out b64_chars.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char out b64_chars.[((b1 land 15) lsl 2) lor (b2 lsr 6)];
    Buffer.add_char out b64_chars.[b2 land 63];
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let b0 = byte !i in
      Buffer.add_char out b64_chars.[b0 lsr 2];
      Buffer.add_char out b64_chars.[(b0 land 3) lsl 4];
      Buffer.add_string out "=="
  | 2 ->
      let b0 = byte !i and b1 = byte (!i + 1) in
      Buffer.add_char out b64_chars.[b0 lsr 2];
      Buffer.add_char out b64_chars.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
      Buffer.add_char out b64_chars.[(b1 land 15) lsl 2];
      Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

(* Decode the window [pos, pos+len) of [s] into [dst] at [dst_pos];
   returns the decoded byte count.  The windowed input lets the chunk
   reader decode a payload in place (no copy out of the record line), and
   the caller-supplied output lets the warm materialization loop reuse one
   scratch buffer across every chunk instead of allocating ~10 MB of
   short-lived byte strings per million-run query.  All quads but the last
   run on an unsafe branch-light fast path (bounds are established once
   from [len] and [out_len]; '=' padding is only legal in the final quad,
   so a negative table entry anywhere else rejects). *)
let b64_decode_into s ~pos ~len dst ~dst_pos =
  if len mod 4 <> 0 then Error "base64 payload length is not a multiple of 4"
  else if len = 0 then Ok 0
  else if pos < 0 || pos + len > String.length s then Error "base64 window out of range"
  else begin
    let last = pos + len in
    let pad = if s.[last - 1] = '=' then if s.[last - 2] = '=' then 2 else 1 else 0 in
    let table = Lazy.force b64_value in
    let out_len = (len / 4 * 3) - pad in
    if dst_pos < 0 || dst_pos + out_len > Bytes.length dst then
      Error "base64 output window out of range"
    else begin
      let stop = dst_pos + out_len in
      let error = ref None in
      let reject c = error := Some (Printf.sprintf "invalid base64 character %C" c) in
      (* tail recursion over plain int arguments keeps the cursor pair in
         registers — a [ref] pair costs a load/store per field per quad.
         The 1 KB digit table stays resident in L1; a 64K pair table
         measured slower here because its live entries scatter across
         512 KB. *)
      let rec quads i o =
        if i + 4 >= last then (i, o)
        else begin
          let a = Array.unsafe_get table (Char.code (String.unsafe_get s i))
          and b = Array.unsafe_get table (Char.code (String.unsafe_get s (i + 1)))
          and c = Array.unsafe_get table (Char.code (String.unsafe_get s (i + 2)))
          and d = Array.unsafe_get table (Char.code (String.unsafe_get s (i + 3))) in
          if a lor b lor c lor d < 0 then begin
            (* first offending character of the quad, for the message *)
            let rec first j =
              if j >= i + 4 || table.(Char.code s.[j]) < 0 then j else first (j + 1)
            in
            reject s.[first i];
            raise Exit
          end;
          let v = (a lsl 18) lor (b lsl 12) lor (c lsl 6) lor d in
          Bytes.unsafe_set dst o (Char.unsafe_chr (v lsr 16));
          Bytes.unsafe_set dst (o + 1) (Char.unsafe_chr ((v lsr 8) land 255));
          Bytes.unsafe_set dst (o + 2) (Char.unsafe_chr (v land 255));
          quads (i + 4) (o + 3)
        end
      in
      (* two quads per iteration halves the loop/branch overhead; an
         invalid digit falls back to [quads], which re-scans the pair to
         name the offending character *)
      let rec quads2 i o =
        if i + 8 >= last then quads i o
        else begin
          let a = Array.unsafe_get table (Char.code (String.unsafe_get s i))
          and b = Array.unsafe_get table (Char.code (String.unsafe_get s (i + 1)))
          and c = Array.unsafe_get table (Char.code (String.unsafe_get s (i + 2)))
          and d = Array.unsafe_get table (Char.code (String.unsafe_get s (i + 3)))
          and e = Array.unsafe_get table (Char.code (String.unsafe_get s (i + 4)))
          and f = Array.unsafe_get table (Char.code (String.unsafe_get s (i + 5)))
          and g = Array.unsafe_get table (Char.code (String.unsafe_get s (i + 6)))
          and h = Array.unsafe_get table (Char.code (String.unsafe_get s (i + 7))) in
          if a lor b lor c lor d lor e lor f lor g lor h < 0 then quads i o
          else begin
            let v = (a lsl 18) lor (b lsl 12) lor (c lsl 6) lor d
            and w = (e lsl 18) lor (f lsl 12) lor (g lsl 6) lor h in
            Bytes.unsafe_set dst o (Char.unsafe_chr (v lsr 16));
            Bytes.unsafe_set dst (o + 1) (Char.unsafe_chr ((v lsr 8) land 255));
            Bytes.unsafe_set dst (o + 2) (Char.unsafe_chr (v land 255));
            Bytes.unsafe_set dst (o + 3) (Char.unsafe_chr (w lsr 16));
            Bytes.unsafe_set dst (o + 4) (Char.unsafe_chr ((w lsr 8) land 255));
            Bytes.unsafe_set dst (o + 5) (Char.unsafe_chr (w land 255));
            quads2 (i + 8) (o + 6)
          end
        end
      in
      (try
         let i, o = quads2 pos dst_pos in
         (* final quad: the only place '=' padding is legal *)
         let digit j =
           let c = s.[i + j] in
           let x = table.(Char.code c) in
           if x >= 0 then x
           else if c = '=' && ((j = 3 && pad >= 1) || (j = 2 && pad = 2)) then 0
           else begin
             reject c;
             raise Exit
           end
         in
         let v = (digit 0 lsl 18) lor (digit 1 lsl 12) lor (digit 2 lsl 6) lor digit 3 in
         if o < stop then Bytes.set dst o (Char.chr ((v lsr 16) land 255));
         if o + 1 < stop then Bytes.set dst (o + 1) (Char.chr ((v lsr 8) land 255));
         if o + 2 < stop then Bytes.set dst (o + 2) (Char.chr (v land 255))
       with Exit -> ());
      match !error with Some e -> Error e | None -> Ok out_len
    end
  end

let b64_decode_sub s ~pos ~len =
  if len mod 4 <> 0 then Error "base64 payload length is not a multiple of 4"
  else if len = 0 then Ok ""
  else if pos < 0 || pos + len > String.length s then Error "base64 window out of range"
  else begin
    let last = pos + len in
    let pad = if s.[last - 1] = '=' then if s.[last - 2] = '=' then 2 else 1 else 0 in
    let out = Bytes.create ((len / 4 * 3) - pad) in
    match b64_decode_into s ~pos ~len out ~dst_pos:0 with
    | Ok _ -> Ok (Bytes.unsafe_to_string out)
    | Error e -> Error e
  end

module F64 = struct
  let encode a =
    let n = Array.length a in
    let raw = Bytes.create (8 * n) in
    for i = 0 to n - 1 do
      Bytes.set_int64_le raw (8 * i) (Int64.bits_of_float a.(i))
    done;
    b64_encode raw

  let decode_sub s ~pos ~len ~n =
    if n < 0 then Error "chunk with a negative run count"
    else
      match b64_decode_sub s ~pos ~len with
      | Error e -> Error e
      | Ok raw ->
          if String.length raw <> 8 * n then
            Error
              (Printf.sprintf "binary payload holds %d bytes, %d runs need %d"
                 (String.length raw) n (8 * n))
          else begin
            let a = Array.make n 0. in
            for i = 0 to n - 1 do
              Array.unsafe_set a i (Int64.float_of_bits (String.get_int64_le raw (8 * i)))
            done;
            Ok a
          end

  (* Decode straight into [dst.(at) .. dst.(at + n - 1)] — the warm
     materialization path fills one preallocated sample array from
     disjoint chunk slices, skipping the per-chunk array and the final
     concatenation copy.  [scratch] receives the raw bytes (the caller
     reuses one buffer across chunks); bounds on both [scratch] and [dst]
     are checked before any write. *)
  let decode_into s ~pos ~len ~n ~scratch dst ~at =
    if n < 0 then Error "chunk with a negative run count"
    else if at < 0 || at + n > Array.length dst then Error "decode window out of range"
    else
      match b64_decode_into s ~pos ~len scratch ~dst_pos:0 with
      | Error e -> Error e
      | Ok out_len ->
          if out_len <> 8 * n then
            Error
              (Printf.sprintf "binary payload holds %d bytes, %d runs need %d" out_len n
                 (8 * n))
          else begin
            for i = 0 to n - 1 do
              Array.unsafe_set dst (at + i)
                (Int64.float_of_bits (Bytes.get_int64_le scratch (8 * i)))
            done;
            Ok ()
          end

  let decode s ~n = decode_sub s ~pos:0 ~len:(String.length s) ~n
end

(* ------------------------------------------------------------------ *)
(* Store root *)

type t = { root : string }

let open_root ~dir =
  Trace.ensure_dir dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "store: %s is not a directory" dir));
  { root = dir }

let dir t = t.root

let key_of_schema ~schema ?(chunk_size = default_chunk_size) config =
  let b = Buffer.create 256 in
  Buffer.add_string b schema;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "chunk_size=%d\n" chunk_size);
  (* Canonical order plus %S-quoting: the digest cannot depend on how the
     harness ordered the pairs, and a value containing '=' or '\n' cannot
     collide with a differently-split pair. *)
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%S=%S\n" k v))
    (List.sort compare config);
  Digest.to_hex (Digest.string (Buffer.contents b))

let key ?chunk_size config = key_of_schema ~schema:schema_version ?chunk_size config
let key_v2 ?chunk_size config = key_of_schema ~schema:schema_v2 ?chunk_size config
let key_v1 ?chunk_size config = key_of_schema ~schema:schema_v1 ?chunk_size config

(* ------------------------------------------------------------------ *)
(* Record lines *)

type outcome =
  | Completed of float
  | Timeout of string
  | Crashed of string
  | Corrupted of string

type trail = outcome list
type payload = Floats of float array | Trails of trail array

let payload_len = function
  | Floats a -> Array.length a
  | Trails a -> Array.length a

let json_of_outcome = function
  | Completed v -> Json.Obj [ ("k", Json.String "c"); ("v", Json.Float v) ]
  | Timeout d -> Json.Obj [ ("k", Json.String "t"); ("d", Json.String d) ]
  | Crashed d -> Json.Obj [ ("k", Json.String "x"); ("d", Json.String d) ]
  | Corrupted d -> Json.Obj [ ("k", Json.String "o"); ("d", Json.String d) ]

let outcome_of_json j =
  let detail () =
    match Option.bind (Json.member "d" j) Json.to_str with Some d -> d | None -> ""
  in
  match Option.bind (Json.member "k" j) Json.to_str with
  | Some "c" -> (
      match Option.bind (Json.member "v" j) Json.to_float with
      | Some v -> Ok (Completed v)
      | None -> Error "completed outcome without a numeric value")
  | Some "t" -> Ok (Timeout (detail ()))
  | Some "x" -> Ok (Crashed (detail ()))
  | Some "o" -> Ok (Corrupted (detail ()))
  | Some k -> Error (Printf.sprintf "unknown outcome kind %S" k)
  | None -> Error "outcome without a kind"

let meta_line ~skey ~runs ~resilient ~chunk_size ~shard ~config =
  let shard_fields =
    match shard with
    | None -> []
    | Some (lo, hi) -> [ ("shard_lo", Json.Int lo); ("shard_hi", Json.Int hi) ]
  in
  seal
    (Json.to_string
       (Json.Obj
          ([
             ("kind", Json.String "meta");
             ("schema", Json.String schema_version);
             ("key", Json.String skey);
             ("runs", Json.Int runs);
             ("resilient", Json.Bool resilient);
             ("chunk_size", Json.Int chunk_size);
           ]
          @ shard_fields
          @ [
              ( "config",
                Json.Obj
                  (List.map
                     (fun (k, v) -> (k, Json.String v))
                     (List.sort compare config)) );
            ])))

(* Chunk lines carry no shard information on purpose: a chunk written by a
   shard worker is byte-for-byte the chunk the single-process walk writes
   at the same offset, which is what makes [merge] a pure concatenation.

   Fault-free v3 chunks are framed by hand (not via [Json.to_string]) so
   the field order is pinned: the reader's fast path peeks the header
   without parsing JSON, and the base64 payload needs no escaping.  The
   frame is still a valid JSON object, so [Json.of_string] remains a
   correct (slow) fallback. *)
let chunk_line ~phase ~lo payload =
  seal
    (match payload with
    | Floats values ->
        Printf.sprintf
          "{\"kind\":\"chunk\",\"phase\":%s,\"lo\":%d,\"n\":%d,\"enc\":\"f64le\",\"bits\":\"%s\"}"
          (Json.to_string (Json.String phase))
          lo (Array.length values) (F64.encode values)
    | Trails runs ->
        Json.to_string
          (Json.Obj
             [
               ("kind", Json.String "rchunk");
               ("phase", Json.String phase);
               ("lo", Json.Int lo);
               ( "runs",
                 Json.List
                   (Array.to_list
                      (Array.map
                         (fun trail -> Json.List (List.map json_of_outcome trail))
                         runs)) );
             ]))

(* ------------------------------------------------------------------ *)
(* Record parsing *)

type meta = {
  m_key : string;
  m_runs : int;
  m_resilient : bool;
  m_csize : int;
  m_config : (string * string) list;
  m_schema : string;
  m_lo : int;  (* shard span; (0, m_runs) for a full record *)
  m_hi : int;
}

let parse_meta line =
  let parse ~sealed body =
    match Json.of_string body with
    | Error e -> Error (Printf.sprintf "meta line unreadable (%s)" e)
    | Ok j -> (
        let str f = Option.bind (Json.member f j) Json.to_str in
        let int f = Option.bind (Json.member f j) Json.to_int in
        let bool f = Option.bind (Json.member f j) Json.to_bool in
        match (str "kind", str "schema") with
        | Some "meta", Some s when s = schema_version || s = schema_v2 || s = schema_v1
          ->
            if s <> schema_v1 && not sealed then
              Error (Printf.sprintf "%s meta line has no integrity checksum" s)
            else begin
              let config =
                match Json.member "config" j with
                | Some (Json.Obj fields) ->
                    let ok =
                      List.for_all
                        (function _, Json.String _ -> true | _ -> false)
                        fields
                    in
                    if ok then
                      Some
                        (List.map
                           (function
                             | k, Json.String v -> (k, v)
                             | _ -> assert false (* filtered above *))
                           fields)
                    else None
                | _ -> None
              in
              match
                (str "key", int "runs", bool "resilient", int "chunk_size", config)
              with
              | Some m_key, Some m_runs, Some m_resilient, Some m_csize, Some m_config
                ->
                  let m_lo = Option.value (int "shard_lo") ~default:0 in
                  let m_hi = Option.value (int "shard_hi") ~default:m_runs in
                  if m_lo < 0 || m_hi > m_runs || m_lo > m_hi then
                    Error "meta shard span out of range"
                  else
                    Ok { m_key; m_runs; m_resilient; m_csize; m_config; m_schema = s; m_lo; m_hi }
              | _ -> Error "meta line is missing fields"
            end
        | Some "meta", Some s ->
            Error
              (Printf.sprintf "schema %S, this build reads %S (and %S, %S read-only)" s
                 schema_version schema_v2 schema_v1)
        | _ -> Error "first line is not a meta line")
  in
  match unseal line with
  | Ok body -> parse ~sealed:true body
  | Error `Bad_sum -> Error "meta line checksum mismatch (bit flip or edit)"
  | Error `No_sum -> parse ~sealed:false line

let floats_of_json = function
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | j :: rest -> (
            match Json.to_float j with
            | Some v -> go (v :: acc) rest
            | None -> Error "non-numeric value in chunk")
      in
      go [] items
  | _ -> Error "chunk values is not a list"

let trails_of_json = function
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | Json.List os :: rest -> (
            let rec outcomes acc' = function
              | [] -> Ok (List.rev acc')
              | o :: tl -> (
                  match outcome_of_json o with
                  | Ok o -> outcomes (o :: acc') tl
                  | Error e -> Error e)
            in
            match outcomes [] os with
            | Ok trail -> go (trail :: acc) rest
            | Error e -> Error e)
        | _ :: _ -> Error "trail is not a list"
      in
      go [] items
  | _ -> Error "rchunk runs is not a list"

(* One layout-validated chunk line, located by byte range.  Payloads are
   not retained: readers that need the values seek back to [c_off] and
   decode one chunk at a time, which is what keeps every whole-record
   operation (open, ls, merge, export) in O(chunk) memory. *)
type parsed_chunk = {
  c_phase : string;
  c_lo : int;
  c_len : int;  (* runs in the chunk *)
  c_off : int;  (* byte offset of the line start *)
  c_bytes : int;  (* line length, excluding the newline *)
  c_sum : string;  (* integrity trailer digest; [""] for v1 lines *)
}

(* First invalid line of a record.  [d_tampered] separates the two failure
   worlds: [false] is a torn tail (kill mid-write — the valid prefix is
   trustworthy and resumable), [true] is an integrity failure (bit flip,
   mid-record truncation, foreign or edited content — the record is
   hostile input and must be quarantined, never merged or resumed). *)
type defect = { d_reason : string; d_tampered : bool }

(* Fast header peek for the pinned v3 fault-free frame
   [{"kind":"chunk","phase":"…","lo":N,"n":N,"enc":"f64le","bits":"…"}]:
   returns [(phase, lo, n, bits_start, bits_len)] without building a JSON
   tree, or [None] to fall back to the full parser (escaped phase names,
   hand-written records). *)
(* Windowed core: [body.[0 .. stop)] must be the frame with its final '}'
   cut off — i.e. [stop - 1] is the closing quote of the bits string.
   The window form lets the chunk reader peek a sealed record line in
   place ([stop] set just before the [,"sum":…}] trailer) without copying
   the body out first. *)
let peek_v3_core body ~stop =
  let starts_with p i =
    i + String.length p <= stop && String.sub body i (String.length p) = p
  in
  let prefix = "{\"kind\":\"chunk\",\"phase\":\"" in
  if stop > String.length body || not (starts_with prefix 0) then None
  else begin
    let pstart = String.length prefix in
    let rec scan_str i =
      if i >= stop then None
      else match body.[i] with '"' -> Some i | '\\' -> None | _ -> scan_str (i + 1)
    in
    let scan_int i =
      let rec go i acc any =
        if i < stop && body.[i] >= '0' && body.[i] <= '9' then
          go (i + 1) ((acc * 10) + (Char.code body.[i] - 48)) true
        else if any then Some (acc, i)
        else None
      in
      go i 0 false
    in
    let ( let* ) o f = Option.bind o f in
    let expect lit i = if starts_with lit i then Some (i + String.length lit) else None in
    let* pend = scan_str pstart in
    let phase = String.sub body pstart (pend - pstart) in
    let* i = expect ",\"lo\":" (pend + 1) in
    let* lo, i = scan_int i in
    let* i = expect ",\"n\":" i in
    let* n, i = scan_int i in
    let* bstart = expect ",\"enc\":\"f64le\",\"bits\":\"" i in
    if stop < bstart + 1 || body.[stop - 1] <> '"' then None
    else Some (phase, lo, n, bstart, stop - 1 - bstart)
  end

let peek_v3_header body =
  let len = String.length body in
  if len < 1 || body.[len - 1] <> '}' then None else peek_v3_core body ~stop:(len - 1)

(* Fully decode one chunk body.  Accepts the v3 binary frame and the
   legacy v2/v1 text frame (["values"] / ["runs"]). *)
let payload_of_body ~resilient body =
  let full () =
    match Json.of_string body with
    | Error e -> Error (Printf.sprintf "unreadable (%s)" e)
    | Ok j -> (
        let str f = Option.bind (Json.member f j) Json.to_str in
        let int f = Option.bind (Json.member f j) Json.to_int in
        let payload =
          match str "kind" with
          | Some "chunk" when not resilient -> (
              match (str "bits", int "n") with
              | Some bits, Some n -> Result.map (fun a -> Floats a) (F64.decode bits ~n)
              | Some _, None -> Error "binary chunk without a run count"
              | None, _ -> (
                  match Json.member "values" j with
                  | Some v -> Result.map (fun a -> Floats a) (floats_of_json v)
                  | None -> Error "chunk without values"))
          | Some "rchunk" when resilient -> (
              match Json.member "runs" j with
              | Some v -> Result.map (fun a -> Trails a) (trails_of_json v)
              | None -> Error "rchunk without runs")
          | Some k -> Error (Printf.sprintf "unexpected line kind %S" k)
          | None -> Error "line without a kind"
        in
        match (str "phase", int "lo", payload) with
        | Some phase, Some lo, Ok p -> Ok (phase, lo, p)
        | _, _, (Error _ as e) -> e
        | _ -> Error "chunk without phase/lo")
  in
  if resilient then full ()
  else
    match peek_v3_header body with
    | None -> full ()
    | Some (phase, lo, n, bstart, blen) ->
        Result.map
          (fun a -> (phase, lo, Floats a))
          (F64.decode_sub body ~pos:bstart ~len:blen ~n)

(* Cheap header of one chunk body: [(phase, lo, len)].  v3 fault-free
   chunks are header-peeked — the payload is length-checked but not
   decoded — which is what makes shallow scans O(header) per chunk. *)
let header_of_body ~resilient body =
  let via_payload () =
    Result.map (fun (p, lo, pl) -> (p, lo, payload_len pl)) (payload_of_body ~resilient body)
  in
  if resilient then via_payload ()
  else
    match peek_v3_header body with
    | None -> via_payload ()
    | Some (phase, lo, n, _, blen) ->
        if n < 0 then Error "chunk with a negative run count"
        else if blen <> b64_len (8 * n) then
          Error
            (Printf.sprintf "binary payload is %d base64 bytes, %d runs need %d" blen n
               (b64_len (8 * n)))
        else Ok (phase, lo, n)

type parsed_record = {
  r_meta : meta;
  r_meta_line : string;  (* raw first line, verbatim *)
  r_chunks : parsed_chunk list;  (* file order; the valid prefix *)
  r_frontier : (string, int) Hashtbl.t;
  r_defect : defect option;  (* first invalid line, if any *)
  r_valid_end : int;  (* byte offset just past the last valid line *)
}

(* Copy [n] bytes between channels through a bounded buffer. *)
let copy_buf_len = 65536

let copy_bytes ic oc n =
  if n > 0 then begin
    let buf = Bytes.create (Stdlib.min n copy_buf_len) in
    let rec go remaining =
      if remaining > 0 then begin
        let k = Stdlib.min remaining (Bytes.length buf) in
        really_input ic buf 0 k;
        output oc buf 0 k;
        go (remaining - k)
      end
    in
    go n
  end

(* Stream over a record file, validating every line against the fixed
   layout and the per-phase write frontier, in O(line) memory.  Anything
   off — checksum failure, wrong kind for the record, lo not at the
   frontier, wrong length, parse failure — is a defect: the record's
   valid prefix ends just before that line.  [deep] additionally decodes
   every payload (and discards it), so a sealed-but-undecodable payload
   is caught; shallow scans still verify every line's checksum. *)
let scan_record ?(deep = false) file =
  match open_in_bin file with
  | exception Sys_error _ -> Error "record unreadable or empty"
  | ic -> (
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      match input_line ic with
      | exception End_of_file -> Error "record unreadable or empty"
      | meta_ln -> (
          match parse_meta meta_ln with
          | Error e -> Error e
          | Ok r_meta ->
              let sealed = r_meta.m_schema <> schema_v1 in
              let frontier = Hashtbl.create 4 in
              let chunks = ref [] in
              let valid_end = ref (pos_in ic) in
              let defect = ref None in
              let lineno = ref 1 in
              let fail ?(tampered = false) fmt =
                Printf.ksprintf
                  (fun d_reason -> defect := Some { d_reason; d_tampered = tampered })
                  fmt
              in
              (* A crash tears at most the last line of the file; a missing
                 trailer anywhere else means the record was cut or edited. *)
              let rest_blank () =
                let rec go () =
                  match input_line ic with
                  | "" -> go ()
                  | _ -> false
                  | exception End_of_file -> true
                in
                go ()
              in
              (try
                 while !defect = None do
                   let off = pos_in ic in
                   let line = input_line ic in
                   incr lineno;
                   let lineno = !lineno in
                   if line <> "" (* tolerate blank lines *) then begin
                     let body =
                       if not sealed then Ok (line, "")
                       else
                         match unseal line with
                         | Ok body ->
                             Ok (body, String.sub line (String.length line - 34) 32)
                         | Error `Bad_sum ->
                             fail ~tampered:true
                               "line %d: checksum mismatch (bit flip or edit)" lineno;
                             Error ()
                         | Error `No_sum ->
                             (if rest_blank () then
                                fail "line %d: torn tail (no checksum trailer)" lineno
                              else
                                fail ~tampered:true
                                  "line %d: checksum trailer missing mid-record" lineno);
                             Error ()
                     in
                     match body with
                     | Error () -> ()
                     | Ok (body, c_sum) -> (
                         let header =
                           if deep then
                             Result.map
                               (fun (p, lo, pl) -> (p, lo, payload_len pl))
                               (payload_of_body ~resilient:r_meta.m_resilient body)
                           else header_of_body ~resilient:r_meta.m_resilient body
                         in
                         match header with
                         | Error e -> fail "line %d: %s" lineno e
                         | Ok (c_phase, c_lo, c_len) ->
                             let front =
                               match Hashtbl.find_opt frontier c_phase with
                               | Some f -> f
                               | None -> r_meta.m_lo
                             in
                             let expected =
                               Stdlib.min r_meta.m_csize (r_meta.m_runs - c_lo)
                             in
                             if c_lo <> front then
                               fail "line %d: %s chunk at %d, expected frontier %d"
                                 lineno c_phase c_lo front
                             else if c_lo >= r_meta.m_hi then
                               fail "line %d: chunk beyond the record's span" lineno
                             else if c_len <> expected then
                               fail "line %d: chunk at %d has %d runs, layout expects %d"
                                 lineno c_lo c_len expected
                             else begin
                               Hashtbl.replace frontier c_phase (c_lo + expected);
                               chunks :=
                                 {
                                   c_phase;
                                   c_lo;
                                   c_len;
                                   c_off = off;
                                   c_bytes = String.length line;
                                   c_sum;
                                 }
                                 :: !chunks;
                               valid_end := pos_in ic
                             end)
                   end
                 done
               with End_of_file -> ());
              Ok
                {
                  r_meta;
                  r_meta_line = meta_ln;
                  r_chunks = List.rev !chunks;
                  r_frontier = frontier;
                  r_defect = !defect;
                  r_valid_end = !valid_end;
                }))

(* ------------------------------------------------------------------ *)
(* Index sidecar

   [<key>.jsonl.idx] caches the byte layout of a clean record — one row
   per chunk — so header-only reads ([ls ~deep:false]) and warm session
   opens skip the record scan entirely.  The sidecar is a derived
   cache, never a source of truth: it is only honored when its header
   stamps the record's exact byte size, mtime and meta-line digest, it
   is only ever written over chunks whose seals were verified (by the
   writer at append time, or by the full scan that rebuilt it — the
   git-index trust model), and any parse hiccup silently falls back to
   a scan that rebuilds it.  Written via tmp + rename (pid-stamped tmp
   name) so concurrent writers cannot tear it.  The [.idx] suffix keeps
   it invisible to the [.jsonl] filters in [ls]/[gc]/[merge]. *)

let file_bytes file =
  match open_in_bin file with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> in_channel_length ic)
  | exception Sys_error _ -> 0

let index_path file = file ^ ".idx"
let index_magic = "mbpta-idx/v1"

(* The sidecar stamps the record's mtime alongside its size (git-index
   style): any offline rewrite of the record — even one preserving the
   byte count, like a flipped bit — bumps the mtime and invalidates the
   sidecar, which is what lets a session adopt a fresh sidecar without
   rescanning.  Encoded as the IEEE-754 bit pattern so the stamp
   round-trips exactly. *)
let file_mtime_bits file =
  match Unix.stat file with
  | { Unix.st_mtime; _ } -> Int64.bits_of_float st_mtime
  | exception Unix.Unix_error _ -> 0L

let write_index ~file ~meta_sum ~bytes chunks =
  let idx = index_path file in
  let tmp = Printf.sprintf "%s.%d.tmp" idx (Unix.getpid ()) in
  match open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp with
  | exception Sys_error _ -> ()
  | oc -> (
      match
        Printf.fprintf oc "%s %d %Ld %s\n" index_magic bytes (file_mtime_bits file)
          meta_sum;
        List.iter
          (fun c ->
            Printf.fprintf oc "%S %d %d %d %d\n" c.c_phase c.c_lo c.c_len c.c_off
              c.c_bytes)
          chunks;
        close_out oc;
        Sys.rename tmp idx
      with
      | () -> ()
      | exception Sys_error _ ->
          close_out_noerr oc;
          (try Sys.remove tmp with Sys_error _ -> ()))

(* Hand-rolled row parse ([%S %d %d %d %d]): [Scanf] costs microseconds
   per row, which at million-run index sizes puts whole milliseconds back
   into a warm open.  Phase names containing escapes (never produced by
   the harness, but legal) take the [Scanf] slow path. *)
let parse_index_row line =
  let len = String.length line in
  if len < 2 || line.[0] <> '"' then None
  else begin
    let rec close i =
      if i >= len then None
      else match line.[i] with '"' -> Some i | '\\' -> None | _ -> close (i + 1)
    in
    match close 1 with
    | None -> (
        match
          Scanf.sscanf line "%S %d %d %d %d" (fun c_phase c_lo c_len c_off c_bytes ->
              { c_phase; c_lo; c_len; c_off; c_bytes; c_sum = "" })
        with
        | row -> Some row
        | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None)
    | Some q -> (
        let c_phase = String.sub line 1 (q - 1) in
        let ints = ref [] in
        let i = ref (q + 1) in
        (try
           while !i < len do
             while !i < len && line.[!i] = ' ' do
               incr i
             done;
             let st = !i in
             while !i < len && line.[!i] <> ' ' do
               incr i
             done;
             if !i > st then ints := int_of_string (String.sub line st (!i - st)) :: !ints
           done
         with Failure _ -> ints := [ -1 ]);
        match List.rev !ints with
        | [ c_lo; c_len; c_off; c_bytes ] ->
            Some { c_phase; c_lo; c_len; c_off; c_bytes; c_sum = "" }
        | _ -> None)
  end

(* [Some chunks] iff the sidecar exists and stamps exactly this record
   (size + mtime + meta digest); any mismatch or parse failure is [None]. *)
let read_index ~file ~meta_sum =
  match open_in_bin (index_path file) with
  | exception Sys_error _ -> None
  | ic -> (
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      try
        let header = input_line ic in
        let fresh =
          Scanf.sscanf header "%s %d %Ld %s" (fun magic bytes mtime sum ->
              magic = index_magic && bytes = file_bytes file
              && mtime = file_mtime_bits file && sum = meta_sum)
        in
        if not fresh then None
        else begin
          let rows = ref [] in
          let ok = ref true in
          (try
             while !ok do
               let line = input_line ic in
               if line <> "" then
                 match parse_index_row line with
                 | Some r -> rows := r :: !rows
                 | None -> ok := false
             done
           with End_of_file -> ());
          if !ok then Some (List.rev !rows) else None
        end
      with Scanf.Scan_failure _ | Failure _ | End_of_file | Sys_error _ -> None)

(* Replay the fixed layout over sidecar rows: every chunk at its phase
   frontier with the exact expected length.  Returns the per-phase
   frontier (what an [ls] needs) or [None] if the rows are inconsistent
   with the meta line. *)
let index_frontier m rows =
  let frontier = Hashtbl.create 4 in
  let ok =
    List.for_all
      (fun c ->
        let front =
          match Hashtbl.find_opt frontier c.c_phase with
          | Some f -> f
          | None -> m.m_lo
        in
        let expected = Stdlib.min m.m_csize (m.m_runs - c.c_lo) in
        c.c_lo = front && c.c_lo < m.m_hi && c.c_len = expected && c.c_off > 0
        && c.c_bytes > 0
        && begin
             Hashtbl.replace frontier c.c_phase (c.c_lo + expected);
             true
           end)
      rows
  in
  if ok then Some frontier else None

(* ------------------------------------------------------------------ *)
(* Sessions *)

type session = {
  skey : string;
  file : string;
  csize : int;
  s_runs : int;
  s_resilient : bool;
  s_lo : int;  (* shard span; (0, s_runs) for a full session *)
  s_hi : int;
  s_sync : bool;
  s_meta_sum : string;  (* md5 of the on-disk meta line; stamps the sidecar *)
  index : (string * int, int * int) Hashtbl.t;
      (* (phase, lo) -> (byte offset, line bytes): chunks are re-read on
         demand, never held in memory — session RSS is O(chunk) *)
  frontier : (string, int) Hashtbl.t;  (* phase -> next lo to append *)
  at_open : (string, int) Hashtbl.t;  (* frontier snapshot at open time *)
  mutable end_off : int;  (* byte offset just past the last valid line *)
  mutable oc : out_channel option;
  mutable ic : in_channel option;  (* lazy read handle for chunk lookups *)
  mutable lock : Unix.file_descr option;  (* held advisory writer lock *)
  mutable fail_after : int option;
  mutable appended : int;
  mutable closed : bool;
  s_idx_fresh : bool;
      (* session was adopted from a fresh sidecar: close can skip
         rewriting it as long as nothing was appended *)
}

let session_key s = s.skey
let chunk_size s = s.csize
let shard_span s = (s.s_lo, s.s_hi)

let cached_runs s ~phase =
  let front =
    match Hashtbl.find_opt s.at_open phase with Some f -> f | None -> s.s_lo
  in
  Stdlib.max 0 (front - s.s_lo)

let complete s ~phase = cached_runs s ~phase >= s.s_hi - s.s_lo
let set_fail_after s n = s.fail_after <- Some n

let fail_after_from_env () =
  Option.bind (Sys.getenv_opt "MBPTA_STORE_FAIL_AFTER_CHUNKS") int_of_string_opt

let fsync_channel ~file oc =
  match Unix.fsync (Unix.descr_of_out_channel oc) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "store: fsync %s: %s" file (Unix.error_message e)))

(* ------------------------------------------------------------------ *)
(* Advisory writer locks.

   Two writers appending to one record would interleave chunk lines into
   a torn file that only the per-line checksum catches after the fact, so
   a session takes a non-blocking exclusive [fcntl] lock on
   [<key>.jsonl.lock] before it parses or truncates anything.  The lock
   lives on a sidecar file (never on the record itself) because closing
   *any* descriptor of a locked file drops all of the process's fcntl
   locks on it — and the record file is opened and closed freely by
   [scan_record].  For the same reason all lock-file descriptors go
   through a process-local registry: at most one open descriptor per lock
   path, which doubles as in-process mutual exclusion (fcntl locks never
   conflict within one process).  Locks die with the process, so a killed
   campaign leaves no stale lock — only a harmless sidecar file that
   [ls]/[gc]/[merge] ignore (they filter on the [.jsonl] suffix). *)

let lock_path file = file ^ ".lock"
let locks_held : (string, unit) Hashtbl.t = Hashtbl.create 8
let locks_mutex = Mutex.create ()

let locked_diagnostic ~file fd =
  let holder =
    try
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      let buf = Bytes.create 32 in
      let n = Unix.read fd buf 0 32 in
      match String.trim (Bytes.sub_string buf 0 n) with
      | "" -> ""
      | pid -> Printf.sprintf " (pid %s)" pid
    with Unix.Unix_error _ -> ""
  in
  Printf.sprintf
    "store: %s is locked by another writer%s — concurrent sessions on one key would \
     interleave its chunks; wait for that campaign, or point this one at its own \
     --cache-dir"
    file holder

let acquire_lock ~file =
  let path = lock_path file in
  Mutex.lock locks_mutex;
  let result =
    if Hashtbl.mem locks_held path then
      Error
        (Printf.sprintf
           "store: %s is locked by another session of this process — concurrent \
            sessions on one key would interleave its chunks"
           file)
    else
      match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 with
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "store: cannot open lock file %s: %s" path
               (Unix.error_message e))
      | fd -> (
          match Unix.lockf fd Unix.F_TLOCK 0 with
          | () ->
              (* Stamp our pid so the next contender's diagnostic can name
                 the holder; best-effort only. *)
              (try
                 ignore (Unix.ftruncate fd 0);
                 ignore (Unix.lseek fd 0 Unix.SEEK_SET);
                 let pid = string_of_int (Unix.getpid ()) in
                 ignore (Unix.write_substring fd pid 0 (String.length pid))
               with Unix.Unix_error _ -> ());
              Hashtbl.replace locks_held path ();
              Ok fd
          | exception Unix.Unix_error ((EAGAIN | EACCES), _, _) ->
              let msg = locked_diagnostic ~file fd in
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error msg
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error
                (Printf.sprintf "store: cannot lock %s: %s" path (Unix.error_message e)))
  in
  Mutex.unlock locks_mutex;
  result

let release_lock ~file fd =
  Mutex.lock locks_mutex;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Hashtbl.remove locks_held (lock_path file);
  Mutex.unlock locks_mutex

let release_session_lock s =
  match s.lock with
  | None -> ()
  | Some fd ->
      s.lock <- None;
      release_lock ~file:s.file fd

let mk_session ?(idx_fresh = false) ~skey ~file ~csize ~runs ~resilient
    ~span:(s_lo, s_hi) ~sync ~meta_sum ~index ~end_off ~frontier ~oc ~lock () =
  let at_open = Hashtbl.copy frontier in
  {
    skey;
    file;
    csize;
    s_runs = runs;
    s_resilient = resilient;
    s_lo;
    s_hi;
    s_sync = sync;
    s_meta_sum = meta_sum;
    index;
    frontier;
    at_open;
    end_off;
    oc;
    ic = None;
    lock;
    fail_after = fail_after_from_env ();
    appended = 0;
    closed = false;
    s_idx_fresh = idx_fresh;
  }

let open_session ?(chunk_size = default_chunk_size) ?(resume = false) ?(sync = false)
    ?shard t ~key:skey ~config ~runs ~resilient =
  if runs < 0 then invalid_arg "Store.open_session: negative runs";
  if chunk_size < 1 then invalid_arg "Store.open_session: chunk_size must be >= 1";
  let s_lo, s_hi = match shard with None -> (0, runs) | Some (lo, hi) -> (lo, hi) in
  if s_lo < 0 || s_hi > runs || s_lo > s_hi then
    invalid_arg "Store.open_session: shard span out of range";
  if s_lo mod chunk_size <> 0 then
    invalid_arg "Store.open_session: shard lower bound must be chunk-aligned";
  if s_hi <> runs && s_hi mod chunk_size <> 0 then
    invalid_arg
      "Store.open_session: shard upper bound must be chunk-aligned or the run count";
  (* A span covering everything is a full session: its record carries no
     shard fields, so `--shard 1/1` writes the single-process record. *)
  let shard = if s_lo = 0 && s_hi = runs then None else Some (s_lo, s_hi) in
  let span = (s_lo, s_hi) in
  let derived = key ~chunk_size config in
  if derived <> skey then
    Error
      (Printf.sprintf "store: key %s does not match its configuration (digest %s)" skey
         derived)
  else begin
    let file = Filename.concat t.root (skey ^ ".jsonl") in
    (* The advisory writer lock is taken before the record is even parsed:
       admitting a second writer any later would let it truncate or append
       behind the first one's back.  Every path that does not hand the
       lock to a writer session (errors, and the read-only adoption of a
       complete record — warm readers must never serialize) releases it. *)
    match acquire_lock ~file with
    | Error e -> Error e
    | Ok lockfd ->
    let kept = ref false in
    let keep () = kept := true; Some lockfd in
    Fun.protect ~finally:(fun () -> if not !kept then release_lock ~file lockfd)
    @@ fun () ->
    let meta = meta_line ~skey ~runs ~resilient ~chunk_size ~shard ~config in
    (* [meta_line] sorts config pairs canonically, so whenever the
       metadata agreement check below passes, [meta] is byte-identical to
       the record's on-disk meta line. *)
    let meta_sum = Digest.to_hex (Digest.string meta) in
    let fresh () =
      (* Eager meta write: an unwritable store fails before any simulation
         time is spent, and a killed campaign always leaves a parseable
         record. *)
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 file in
      output_string oc meta;
      output_char oc '\n';
      flush oc;
      if sync then fsync_channel ~file oc;
      Ok
        (mk_session ~skey ~file ~csize:chunk_size ~runs ~resilient ~span ~sync
           ~meta_sum ~index:(Hashtbl.create 16)
           ~end_off:(String.length meta + 1)
           ~frontier:(Hashtbl.create 4) ~oc:(Some oc) ~lock:(keep ()) ())
    in
    let index_of_chunks chunks =
      let h = Hashtbl.create 16 in
      List.iter (fun c -> Hashtbl.replace h (c.c_phase, c.c_lo) (c.c_off, c.c_bytes)) chunks;
      h
    in
    if not (Sys.file_exists file) then fresh ()
    else begin
      (* Warm fast path: when a sidecar stamps the record's exact size,
         mtime and meta digest, its rows replay to a complete record, and
         they tile the record's bytes exactly, a read-only session adopts
         the index without rescanning — O(index) instead of O(record) per
         warm query.  The integrity model is the same as git's index: the
         sidecar is only ever written over chunks that were seal-verified
         (at append time by the writer, or by the full scan that rebuilt
         it), adoption demands the record's exact byte size and mtime
         stamp plus a byte-for-byte match of the meta line, and any
         rewrite of the record voids the stamp and forces the full
         verified scan below.  [cache verify] stays the offline deep
         check.  Only complete records qualify — every append path
         scans. *)
      let warm_adopt () =
        let first_line =
          match open_in_bin file with
          | exception Sys_error _ -> None
          | ic -> (
              Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
              match input_line ic with
              | line -> Some line
              | exception End_of_file -> None)
        in
        if first_line <> Some meta then None
        else
          match read_index ~file ~meta_sum with
          | None -> None
          | Some rows -> (
              let m =
                {
                  m_schema = schema_version;
                  m_key = skey;
                  m_runs = runs;
                  m_resilient = resilient;
                  m_csize = chunk_size;
                  m_config = config;
                  m_lo = s_lo;
                  m_hi = s_hi;
                }
              in
              match index_frontier m rows with
              | None -> None
              | Some frontier ->
                  let bytes = file_bytes file in
                  let pos = ref (String.length meta + 1) in
                  let tiled =
                    List.for_all
                      (fun c ->
                        let ok = c.c_off = !pos in
                        pos := c.c_off + c.c_bytes + 1;
                        ok)
                      rows
                    && !pos = bytes
                  in
                  let covered =
                    Hashtbl.fold (fun _ f acc -> Stdlib.min f acc) frontier max_int
                  in
                  let is_complete =
                    s_hi <= s_lo || (Hashtbl.length frontier > 0 && covered >= s_hi)
                  in
                  if tiled && is_complete then
                    Some
                      (mk_session ~idx_fresh:true ~skey ~file ~csize:chunk_size ~runs
                         ~resilient ~span ~sync ~meta_sum
                         ~index:(index_of_chunks rows) ~end_off:bytes ~frontier
                         ~oc:None ~lock:None ())
                  else None)
      in
      match warm_adopt () with
      | Some s -> Ok s
      | None ->
      match scan_record file with
      | Error e -> Error (Printf.sprintf "store: %s: %s" file e)
      | Ok r -> (
          let m = r.r_meta in
          if m.m_schema <> schema_version then
            Error
              (Printf.sprintf
                 "store: %s: record has schema %s; sessions write %s (export it or \
                  start a fresh store)"
                 file m.m_schema schema_version)
          else if
            m.m_key <> skey || m.m_runs <> runs || m.m_resilient <> resilient
            || m.m_csize <> chunk_size
            || (m.m_lo, m.m_hi) <> span
            || List.sort compare m.m_config <> List.sort compare config
          then
            Error
              (Printf.sprintf
                 "store: %s: record metadata disagrees with this campaign (inspect \
                  with `cache ls`, reclaim with `cache gc`)"
                 file)
          else
            match r.r_defect with
            | Some d when d.d_tampered && resume ->
                Error
                  (Printf.sprintf
                     "store: %s: %s — record fails its integrity check; quarantine it \
                      or reclaim with `cache gc`"
                     file d.d_reason)
            | Some d when d.d_tampered -> fresh ()
            | _ ->
                let covered =
                  Hashtbl.fold (fun _ f acc -> Stdlib.min f acc) r.r_frontier max_int
                in
                let is_complete =
                  r.r_defect = None
                  && (s_hi <= s_lo
                     || (Hashtbl.length r.r_frontier > 0 && covered >= s_hi))
                in
                let adopt ~index ~end_off ~lock =
                  mk_session ~skey ~file ~csize:chunk_size ~runs ~resilient ~span ~sync
                    ~meta_sum ~index ~end_off ~frontier:r.r_frontier ~oc:None ~lock ()
                in
                if is_complete then
                  Ok
                    (adopt ~index:(index_of_chunks r.r_chunks) ~end_off:r.r_valid_end
                       ~lock:None)
                else if not resume then fresh ()
                else if r.r_defect = None && r.r_valid_end = file_bytes file then
                  (* Clean partial record: append in place. *)
                  Ok
                    (adopt ~index:(index_of_chunks r.r_chunks) ~end_off:r.r_valid_end
                       ~lock:(keep ()))
                else begin
                  (* Resume after a torn tail (or stray blank lines): rewrite
                     the record to exactly the valid prefix — streamed in
                     O(chunk) pieces, atomically via tmp + rename — so the
                     on-disk bytes and the in-memory index agree before we
                     append. *)
                  let tmp = file ^ ".tmp" in
                  let src = open_in_bin file in
                  let index, end_off =
                    Fun.protect ~finally:(fun () -> close_in_noerr src) @@ fun () ->
                    let oc =
                      open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp
                    in
                    try
                      output_string oc meta;
                      output_char oc '\n';
                      let index = Hashtbl.create 16 in
                      let pos = ref (String.length meta + 1) in
                      List.iter
                        (fun c ->
                          seek_in src c.c_off;
                          copy_bytes src oc c.c_bytes;
                          output_char oc '\n';
                          Hashtbl.replace index (c.c_phase, c.c_lo) (!pos, c.c_bytes);
                          pos := !pos + c.c_bytes + 1)
                        r.r_chunks;
                      flush oc;
                      if sync then fsync_channel ~file:tmp oc;
                      close_out oc;
                      Sys.rename tmp file;
                      (index, !pos)
                    with e ->
                      close_out_noerr oc;
                      raise e
                  in
                  Ok (adopt ~index ~end_off ~lock:(keep ()))
                end)
    end
  end

(* Refresh the sidecar from the session's index — best-effort, and only
   when the file is exactly the bytes this session accounted for (a
   record modified behind our back must not get a fresh stamp). *)
let write_session_index s =
  if file_bytes s.file = s.end_off then begin
    let chunks =
      Hashtbl.fold
        (fun (c_phase, c_lo) (c_off, c_bytes) acc ->
          {
            c_phase;
            c_lo;
            c_len = Stdlib.min s.csize (s.s_runs - c_lo);
            c_off;
            c_bytes;
            c_sum = "";
          }
          :: acc)
        s.index []
      |> List.sort (fun a b -> compare a.c_off b.c_off)
    in
    write_index ~file:s.file ~meta_sum:s.s_meta_sum ~bytes:s.end_off chunks
  end

let close s =
  if not s.closed then begin
    s.closed <- true;
    (match s.oc with
    | Some oc ->
        s.oc <- None;
        (try flush oc with Sys_error _ -> ());
        close_out_noerr oc
    | None -> ());
    (match s.ic with
    | Some ic ->
        s.ic <- None;
        close_in_noerr ic
    | None -> ());
    (* A warm-adopted session that appended nothing leaves the sidecar it
       was built from untouched — rewriting it would only churn bytes. *)
    if not (s.s_idx_fresh && s.appended = 0) then
      (try write_session_index s with Sys_error _ -> ());
    release_session_lock s
  end

let ensure_oc s =
  match s.oc with
  | Some oc -> oc
  | None ->
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 s.file in
      s.oc <- Some oc;
      oc

let expected_len s ~lo = Stdlib.min s.csize (s.s_runs - lo)

let session_ic s =
  match s.ic with
  | Some ic -> ic
  | None ->
      let ic = open_in_bin s.file in
      s.ic <- Some ic;
      ic

(* Seek to an indexed chunk and decode it.  The seal digest is NOT
   recomputed here: every path that builds a session index has already
   vouched for these bytes — a full scan md5-verified each line, a warm
   adoption pinned the record's exact size+mtime+meta against a sidecar
   that was only ever written over verified chunks, and a writer session
   wrote the line itself.  Re-hashing per read would make warm queries
   O(record) in digest work again (the very cost the index removes);
   [cache verify] remains the offline deep check.  The structural checks
   below (trailer shape, phase/offset, run count) still catch a file
   swapped or resized behind the open session — that is an I/O-level
   fault, not a cache miss, and it raises.  The channel is explicit so
   parallel warm reads can decode chunks over per-worker channels; the
   session wrapper below feeds it the session's lazy handle. *)
let chunk_fail ~file ~phase ~lo fmt =
  Printf.ksprintf
    (fun m ->
      raise
        (Sys_error
           (Printf.sprintf
              "store: %s: chunk (%s, %d): %s (record modified behind the session?)"
              file phase lo m)))
    fmt

(* Read the sealed chunk line at [off, off+bytes) and locate its body end
   (the start of the [","sum":…"] trailer).  Raises through [chunk_fail]
   on truncation or a malformed trailer.  With [buf], the line is read
   through the caller's reusable buffer (grown on size change) — the
   returned string then aliases it and is only valid until the next read
   through the same buffer. *)
let input_sealed_line ?buf ~file ~phase ~lo ic (off, bytes) =
  let fail fmt = chunk_fail ~file ~phase ~lo fmt in
  seek_in ic off;
  let line =
    match buf with
    | None -> (
        match really_input_string ic bytes with
        | l -> l
        | exception End_of_file -> fail "record truncated")
    | Some r -> (
        let b = if Bytes.length !r = bytes then !r else Bytes.create bytes in
        r := b;
        match really_input ic b 0 bytes with
        | () -> Bytes.unsafe_to_string b
        | exception End_of_file -> fail "record truncated")
  in
  let n_line = String.length line in
  if n_line <= trailer_len then fail "checksum trailer missing";
  let start = n_line - trailer_len in
  if
    not
      (line.[start] = ','
      && line.[start + 1] = '"'
      && line.[start + 2] = 's'
      && line.[start + 3] = 'u'
      && line.[start + 4] = 'm'
      && line.[start + 5] = '"'
      && line.[start + 6] = ':'
      && line.[start + 7] = '"'
      && line.[n_line - 2] = '"'
      && line.[n_line - 1] = '}')
  then fail "checksum trailer missing";
  (line, start)

let read_chunk_line ~file ~resilient ic ~phase ~lo loc =
  let fail fmt = chunk_fail ~file ~phase ~lo fmt in
  let line, start = input_sealed_line ~file ~phase ~lo ic loc in
  (* Fault-free v3 frames are peeked and decoded in place — the bits span
     sits at the same offsets in the sealed line as in the body, so no
     body copy is needed.  Everything else takes the body-copy route
     through the full parser. *)
  let fast =
    if resilient then None
    else
      match peek_v3_core line ~stop:start with
      | None -> None
      | Some (p, l, nrun, bstart, blen) -> (
          match F64.decode_sub line ~pos:bstart ~len:blen ~n:nrun with
          | Ok a -> Some (p, l, Floats a)
          | Error e -> fail "%s" e)
  in
  let p, l, payload =
    match fast with
    | Some r -> r
    | None -> (
        let body = String.sub line 0 start ^ "}" in
        match payload_of_body ~resilient body with
        | Error e -> fail "%s" e
        | Ok r -> r)
  in
  if p <> phase || l <> lo then fail "phase/offset mismatch";
  payload

(* Warm-materialization reader: decode the fault-free chunk at [loc]
   straight into [dst.(at) .. dst.(at + len - 1)].  The v3 fast path never
   allocates a per-chunk array; legacy text chunks fall back to the full
   parser and a blit.  Only called on complete non-resilient records. *)
let read_chunk_floats_into ~file ic ~phase ~lo loc ~buf ~scratch dst ~at ~len =
  let fail fmt = chunk_fail ~file ~phase ~lo fmt in
  let line, start = input_sealed_line ~buf ~file ~phase ~lo ic loc in
  match peek_v3_core line ~stop:start with
  | Some (p, l, nrun, bstart, blen) ->
      if p <> phase || l <> lo then fail "phase/offset mismatch";
      if nrun <> len then fail "chunk holds %d runs, layout expects %d" nrun len;
      (match F64.decode_into line ~pos:bstart ~len:blen ~n:nrun ~scratch dst ~at with
      | Ok () -> ()
      | Error e -> fail "%s" e)
  | None -> (
      let body = String.sub line 0 start ^ "}" in
      match payload_of_body ~resilient:false body with
      | Error e -> fail "%s" e
      | Ok (p, l, Floats a) ->
          if p <> phase || l <> lo then fail "phase/offset mismatch";
          if Array.length a <> len then
            fail "chunk holds %d runs, layout expects %d" (Array.length a) len;
          Array.blit a 0 dst at len
      | Ok (_, _, p) -> fail "chunk holds %d runs, layout expects %d" (payload_len p) len)

let read_chunk_at s ~phase ~lo loc =
  read_chunk_line ~file:s.file ~resilient:s.s_resilient (session_ic s) ~phase ~lo loc

let lookup_payload s ~phase ~lo ~len =
  match Hashtbl.find_opt s.index (phase, lo) with
  | None -> None
  | Some loc ->
      let p = read_chunk_at s ~phase ~lo loc in
      if payload_len p = len then Some p else None

let persist_payload s ~phase ~lo payload =
  if s.closed then invalid_arg "Store.persist: session is closed";
  if lo < s.s_lo || lo >= s.s_hi then
    invalid_arg
      (Printf.sprintf "Store.persist: chunk offset %d outside the session span [%d, %d)"
         lo s.s_lo s.s_hi);
  let front =
    match Hashtbl.find_opt s.frontier phase with Some f -> f | None -> s.s_lo
  in
  if lo <> front then
    invalid_arg
      (Printf.sprintf "Store.persist: %s chunk at %d, write frontier is %d" phase lo
         front);
  let len = payload_len payload in
  if len <> expected_len s ~lo then
    invalid_arg
      (Printf.sprintf "Store.persist: %s chunk at %d has %d runs, layout expects %d"
         phase lo len (expected_len s ~lo));
  (match (payload, s.s_resilient) with
  | Floats _, true ->
      invalid_arg "Store.persist: resilient record expects attempt trails"
  | Trails _, false ->
      invalid_arg "Store.persist_trails: fault-free record expects plain samples"
  | _ -> ());
  (match s.fail_after with
  | Some n when n <= 0 -> raise (Injected_crash { appended_chunks = s.appended })
  | Some n -> s.fail_after <- Some (n - 1)
  | None -> ());
  let oc = ensure_oc s in
  let nbytes =
    Repro_profile.time Repro_profile.Store (fun () ->
        let line = chunk_line ~phase ~lo payload in
        output_string oc line;
        output_char oc '\n';
        (* The flush is the checkpoint barrier: after it returns, this chunk
           survives a kill.  With [sync] the barrier extends to power loss:
           the fsync pushes the chunk through the OS page cache before we
           acknowledge it. *)
        flush oc;
        if s.s_sync then fsync_channel ~file:s.file oc;
        String.length line)
  in
  s.appended <- s.appended + 1;
  Hashtbl.replace s.index (phase, lo) (s.end_off, nbytes);
  s.end_off <- s.end_off + nbytes + 1;
  Hashtbl.replace s.frontier phase (lo + len);
  (* The chunk just became durable, so this barrier is the one place a
     shutdown request can stop the campaign without losing work or
     leaving a torn tail: the record ends on a complete chunk boundary
     and a later [--resume] continues bit-identically. *)
  Shutdown.check ()

let lookup s ~phase ~lo ~len =
  match lookup_payload s ~phase ~lo ~len with Some (Floats a) -> Some a | _ -> None

let lookup_trails s ~phase ~lo ~len =
  match lookup_payload s ~phase ~lo ~len with Some (Trails a) -> Some a | _ -> None

let persist s ~phase ~lo a = persist_payload s ~phase ~lo (Floats a)
let persist_trails s ~phase ~lo a = persist_payload s ~phase ~lo (Trails a)

(* ------------------------------------------------------------------ *)
(* Collect drivers *)

let emit_cache_events trace s ~phase =
  match trace with
  | None -> ()
  | Some t ->
      let span = s.s_hi - s.s_lo in
      let cached = Stdlib.min (cached_runs s ~phase) span in
      (if cached >= span then
         Trace.emit t (Trace.Cache_hit { phase; key = s.skey; runs = span })
       else if cached = 0 then Trace.emit t (Trace.Cache_miss { phase; key = s.skey })
       else
         Trace.emit t
           (Trace.Resume { phase; key = s.skey; cached_runs = cached; total_runs = span }));
      let counters = Trace.counters t in
      Trace.Counters.add counters "cache.runs_cached" cached;
      Trace.Counters.add counters "cache.runs_simulated" (span - cached)

let check_runs s fn n =
  if n <> s.s_runs then
    invalid_arg
      (Printf.sprintf "Store.%s: %d runs requested, session holds %d" fn n s.s_runs)

(* Fully-cached fault-free span: indexed records make the warm read
   embarrassingly parallel — every chunk decodes independently from its
   byte range, so the materialization fans out over the same domain pool
   the cold computation uses (the PR9 scan-based warm path was inherently
   sequential).  Identity is untouched: the result is the same ascending
   concatenation of per-chunk arrays the sequential walk produces, reads
   mutate nothing, and the measurement function is never called.  Each
   worker decodes over its own read handle, recycled through a small
   pool. *)
let collect_cached_parallel ?trace ?jobs s ~phase =
  let pool_mutex = Mutex.create () in
  let free = ref [] in
  let all = ref [] in
  (* pool items bundle a read handle with a line buffer and a raw-bytes
     scratch sized for one full chunk — each worker reuses its bundle
     across every chunk it decodes, so a warm query's allocation stays
     O(workers × chunk), not O(record) *)
  let with_ic k =
    let item =
      Mutex.lock pool_mutex;
      let item =
        match !free with
        | item :: rest ->
            free := rest;
            item
        | [] ->
            let item =
              (open_in_bin s.file, Bytes.create (8 * s.csize), ref Bytes.empty)
            in
            all := item :: !all;
            item
      in
      Mutex.unlock pool_mutex;
      item
    in
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock pool_mutex;
        free := item :: !free;
        Mutex.unlock pool_mutex)
      (fun () -> k item)
  in
  let span = s.s_hi - s.s_lo in
  let nchunks = (span + s.csize - 1) / s.csize in
  let out = Array.make span 0. in
  Fun.protect ~finally:(fun () -> List.iter (fun (ic, _, _) -> close_in_noerr ic) !all)
  @@ fun () ->
  let (_ : unit array) =
    Parallel.init ?trace ?jobs nchunks (fun ci ->
        let lo = s.s_lo + (ci * s.csize) in
        let len = expected_len s ~lo in
        match Hashtbl.find_opt s.index (phase, lo) with
        | None ->
            raise
              (Sys_error
                 (Printf.sprintf "store: %s: chunk (%s, %d) missing from a cached span"
                    s.file phase lo))
        | Some loc ->
            with_ic @@ fun (ic, scratch, buf) ->
            (* workers write disjoint [out] slices: chunk ci owns
               [ci * csize, ci * csize + len) *)
            read_chunk_floats_into ~file:s.file ic ~phase ~lo loc ~buf ~scratch out
              ~at:(lo - s.s_lo) ~len)
  in
  out

let phase_frontier s ~phase =
  match Hashtbl.find_opt s.frontier phase with Some f -> f | None -> s.s_lo

let collect ?trace ?jobs ?dispatch s ~phase n f =
  check_runs s "collect" n;
  emit_cache_events trace s ~phase;
  if (not s.s_resilient) && phase_frontier s ~phase >= s.s_hi then
    collect_cached_parallel ?trace ?jobs s ~phase
  else
    Parallel.init_checkpointed ?trace ?jobs ?dispatch ~lo:s.s_lo ~chunk_size:s.csize
      ~lookup:(fun ~lo ~len -> lookup s ~phase ~lo ~len)
      ~persist:(fun ~lo a -> persist s ~phase ~lo a)
      s.s_hi f

let collect_trails ?trace ?jobs ?dispatch s ~phase n f =
  check_runs s "collect_trails" n;
  emit_cache_events trace s ~phase;
  Parallel.init_checkpointed ?trace ?jobs ?dispatch ~lo:s.s_lo ~chunk_size:s.csize
    ~lookup:(fun ~lo ~len -> lookup_trails s ~phase ~lo ~len)
    ~persist:(fun ~lo a -> persist_trails s ~phase ~lo a)
    s.s_hi f

(* ------------------------------------------------------------------ *)
(* Inspection *)

type status = Complete | Partial of string | Corrupt of string

type entry = {
  file : string;
  entry_key : string;
  runs : int;
  resilient : bool;
  config : (string * string) list;
  phases : (string * int) list;
  shard : (int * int) option;
  bytes : int;
  status : status;
}

let read_first_line file =
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | line -> Some line
          | exception End_of_file -> None)

(* Shared status classifier: the same verdict whether the phase frontiers
   came from a full scan or from a fresh sidecar. *)
let classify_entry ~file ~entry_key ~bytes m ~phases ~defect =
  let covered = List.fold_left (fun acc (_, f) -> Stdlib.min acc f) max_int phases in
  let status =
    match defect with
    | Some d when d.d_tampered -> Corrupt d.d_reason
    | Some d when phases = [] -> Corrupt d.d_reason
    | Some d -> Partial (Printf.sprintf "valid prefix kept, tail dropped: %s" d.d_reason)
    | None ->
        if m.m_runs = 0 || m.m_lo >= m.m_hi || (phases <> [] && covered >= m.m_hi) then
          Complete
        else if phases = [] then Partial "no samples collected yet"
        else
          Partial
            (String.concat ", "
               (List.map (fun (p, f) -> Printf.sprintf "%s %d/%d" p f m.m_runs) phases))
  in
  {
    file;
    entry_key;
    runs = m.m_runs;
    resilient = m.m_resilient;
    config = m.m_config;
    phases;
    shard = (if m.m_lo = 0 && m.m_hi = m.m_runs then None else Some (m.m_lo, m.m_hi));
    bytes;
    status;
  }

(* [deep] decode-validates every payload (what `cache verify` wants).
   [not deep] answers from the meta line plus a fresh [.idx] sidecar when
   one exists, falling back to a shallow checksum scan — and rebuilding
   the sidecar — when it does not.  The header-only path can therefore
   miss a payload-level bit flip that a stale-free sidecar predates;
   integrity-critical callers use [deep]. *)
let entry_of_file ?(deep = true) t name =
  let file = Filename.concat t.root name in
  let entry_key = Filename.chop_suffix name ".jsonl" in
  let bytes = file_bytes file in
  let corrupt reason =
    {
      file;
      entry_key;
      runs = 0;
      resilient = false;
      config = [];
      phases = [];
      shard = None;
      bytes;
      status = Corrupt reason;
    }
  in
  let check_key m k =
    let derived = key_of_schema ~schema:m.m_schema ~chunk_size:m.m_csize m.m_config in
    if m.m_key <> entry_key then
      Some (Printf.sprintf "meta key %s does not match filename" m.m_key)
    else if derived <> entry_key then
      Some
        (Printf.sprintf "content digest %s does not match filename (record edited?)"
           derived)
    else k
  in
  let scanned ~deep =
    match scan_record ~deep file with
    | Error e -> corrupt e
    | Ok r -> (
        let m = r.r_meta in
        match check_key m None with
        | Some reason -> corrupt reason
        | None ->
            let phases =
              Hashtbl.fold (fun p f acc -> (p, f) :: acc) r.r_frontier []
              |> List.sort compare
            in
            (* A clean, fully-accounted record earns a sidecar rebuild so
               the next header-only listing skips the scan. *)
            if r.r_defect = None && r.r_valid_end = bytes then
              (match read_first_line file with
              | Some meta_ln ->
                  write_index ~file
                    ~meta_sum:(Digest.to_hex (Digest.string meta_ln))
                    ~bytes r.r_chunks
              | None -> ());
            classify_entry ~file ~entry_key ~bytes m ~phases ~defect:r.r_defect)
  in
  if deep then scanned ~deep:true
  else
    match read_first_line file with
    | None -> corrupt "record unreadable or empty"
    | Some meta_ln -> (
        match parse_meta meta_ln with
        | Error e -> corrupt e
        | Ok m -> (
            match check_key m None with
            | Some reason -> corrupt reason
            | None -> (
                let meta_sum = Digest.to_hex (Digest.string meta_ln) in
                match Option.bind (read_index ~file ~meta_sum) (index_frontier m) with
                | Some frontier ->
                    let phases =
                      Hashtbl.fold (fun p f acc -> (p, f) :: acc) frontier []
                      |> List.sort compare
                    in
                    classify_entry ~file ~entry_key ~bytes m ~phases ~defect:None
                | None -> scanned ~deep:false)))

let quarantine_suffix = ".jsonl.quarantined"

let quarantined_entry t name =
  let file = Filename.concat t.root name in
  {
    file;
    entry_key = Filename.chop_suffix name quarantine_suffix;
    runs = 0;
    resilient = false;
    config = [];
    phases = [];
    shard = None;
    bytes = file_bytes file;
    status = Corrupt "quarantined (failed an integrity check during merge)";
  }

let ls ?(deep = true) t =
  let names = Sys.readdir t.root |> Array.to_list in
  let records =
    names
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
    |> List.sort compare
    |> List.map (entry_of_file ~deep t)
  in
  let quarantined =
    names
    |> List.filter (fun f -> Filename.check_suffix f quarantine_suffix)
    |> List.sort compare
    |> List.map (quarantined_entry t)
  in
  records @ quarantined

let gc ?(partial = false) t =
  let victims =
    List.filter
      (fun e ->
        match e.status with
        | Corrupt _ -> true
        | Partial _ -> partial
        | Complete -> false)
      (ls t)
  in
  let freed =
    List.fold_left
      (fun acc e ->
        match Sys.remove e.file with
        | () ->
            (* The sidecar is derived from the record; it goes with it. *)
            (try Sys.remove (index_path e.file) with Sys_error _ -> ());
            acc + e.bytes
        | exception Sys_error _ -> acc)
      0 victims
  in
  (victims, freed)

let pp_entry ppf e =
  let status =
    match e.status with
    | Complete -> "complete"
    | Partial d -> "partial (" ^ d ^ ")"
    | Corrupt d -> "corrupt (" ^ d ^ ")"
  in
  Format.fprintf ppf "%s  runs=%d%s%s  %dB  %s" e.entry_key e.runs
    (if e.resilient then "  resilient" else "")
    (match e.shard with
    | None -> ""
    | Some (lo, hi) -> Printf.sprintf "  shard=[%d,%d)" lo hi)
    e.bytes status

(* ------------------------------------------------------------------ *)
(* Merge and export *)

type merge_report = {
  records_merged : int;
  chunks_merged : int;
  coverage : (string * int) list;
  contributed : string list;
  quarantined : (string * string) list;
  skipped : (string * string) list;
}

(* Merge walks every record key found in any source (and the destination),
   admits only candidates that pass the full integrity gauntlet — line
   checksums, digest-vs-filename, metadata agreement, byte-identical
   duplicate chunks — and composes the maximal contiguous prefix of the
   global chunk layout per phase.  Failing candidates are renamed aside
   ([.quarantined]) so reruns converge and the evidence survives.  The
   destination record is replaced via tmp+rename: a crash at any point
   leaves the previous record intact, and rerunning the merge is
   idempotent. *)
let merge ?trace ?fail_after ?(sync = false) ~src dst =
  let fuel = ref fail_after in
  let written = ref 0 in
  let burn () =
    match !fuel with
    | Some n when n <= 0 -> raise (Injected_crash { appended_chunks = !written })
    | Some n -> fuel := Some (n - 1)
    | None -> ()
  in
  let quarantined = ref [] in
  let skipped = ref [] in
  let contributed = ref [] in
  let coverage = ref [] in
  let records_merged = ref 0 in
  let note_quarantine file reason =
    (try Sys.rename file (file ^ ".quarantined") with Sys_error _ -> ());
    (try Sys.remove (index_path file) with Sys_error _ -> ());
    quarantined := (file, reason) :: !quarantined
  in
  let process name =
    let dst_file = Filename.concat dst.root name in
    let entry_key = Filename.chop_suffix name ".jsonl" in
    let candidate_files =
      (if Sys.file_exists dst_file then [ dst_file ] else [])
      @ List.filter_map
          (fun root ->
            let f = Filename.concat root.root name in
            if Sys.file_exists f then Some f else None)
          src
    in
    let candidates =
      List.filter_map
        (fun f ->
          match scan_record f with
          | Error e ->
              note_quarantine f ("unreadable: " ^ e);
              None
          | Ok r ->
              let m = r.r_meta in
              if m.m_schema = schema_v1 then begin
                skipped := (f, "store/v1 record (no checksums); left in place") :: !skipped;
                None
              end
              else if m.m_schema = schema_v2 then begin
                skipped :=
                  ( f,
                    "store/v2 record (text payloads); left in place — export it or \
                     re-collect under store/v3" )
                  :: !skipped;
                None
              end
              else if
                m.m_key <> entry_key
                || key_of_schema ~schema:m.m_schema ~chunk_size:m.m_csize m.m_config
                   <> entry_key
              then begin
                note_quarantine f
                  "content digest does not match filename (foreign or edited record)";
                None
              end
              else (
                match r.r_defect with
                | Some d when d.d_tampered ->
                    note_quarantine f d.d_reason;
                    None
                | _ -> Some (f, r)))
        candidate_files
    in
    match candidates with
    | [] -> ()
    | (_, first) :: _ ->
        let m0 = first.r_meta in
        let same_campaign m =
          m.m_runs = m0.m_runs && m.m_resilient = m0.m_resilient
          && m.m_csize = m0.m_csize
          && List.sort compare m.m_config = List.sort compare m0.m_config
        in
        let candidates =
          List.filter
            (fun (f, r) ->
              if same_campaign r.r_meta then true
              else begin
                note_quarantine f "record metadata disagrees with its siblings";
                false
              end)
            candidates
        in
        let runs = m0.m_runs and csize = m0.m_csize in
        (* Union the chunks; duplicates must be byte-identical (the
           determinism contract says recomputing a chunk reproduces its
           bytes), so disagreement marks a corrupted or divergent record.
           Identity is (length, line digest) — the digest is the sealed
           line's md5 trailer, already verified by the scan — so no chunk
           bytes are held in memory. *)
        let table = Hashtbl.create 64 in
        let phase_order = ref [] in
        List.iter
          (fun (f, r) ->
            let conflict =
              List.exists
                (fun c ->
                  match Hashtbl.find_opt table (c.c_phase, c.c_lo) with
                  | Some (_, c') -> (c'.c_bytes, c'.c_sum) <> (c.c_bytes, c.c_sum)
                  | None -> false)
                r.r_chunks
            in
            if conflict then
              note_quarantine f
                "chunk bytes disagree with another record for the same key"
            else
              List.iter
                (fun c ->
                  if not (List.mem c.c_phase !phase_order) then
                    phase_order := !phase_order @ [ c.c_phase ];
                  if not (Hashtbl.mem table (c.c_phase, c.c_lo)) then
                    Hashtbl.replace table (c.c_phase, c.c_lo) (f, c))
                r.r_chunks)
          candidates;
        (* Compose the maximal contiguous prefix per phase over the global
           chunk layout; anything after a gap (e.g. an unrecoverable or
           quarantined shard) is dropped — partial coverage is reported,
           never silently wrong data. *)
        let compose phase =
          let rec go lo acc =
            if lo >= runs then (List.rev acc, runs)
            else
              match Hashtbl.find_opt table (phase, lo) with
              | Some entry -> go (lo + Stdlib.min csize (runs - lo)) (entry :: acc)
              | None -> (List.rev acc, lo)
          in
          go 0 []
        in
        let phases = List.map (fun p -> (p, compose p)) !phase_order in
        let lines = List.concat_map (fun (_, (ls, _)) -> ls) phases in
        let covered =
          if phases = [] then 0
          else List.fold_left (fun acc (_, (_, hi)) -> Stdlib.min acc hi) max_int phases
        in
        coverage := (entry_key, covered) :: !coverage;
        List.iter
          (fun (f, _) ->
            if not (List.mem f !contributed) then contributed := f :: !contributed)
          lines;
        let meta_ln =
          meta_line ~skey:entry_key ~runs ~resilient:m0.m_resilient ~chunk_size:csize
            ~shard:None ~config:m0.m_config
        in
        (* Idempotence check without re-reading any payload: the
           destination is already the merge result iff it is defect-free
           and its chunk sequence matches the composed one by (phase, lo,
           length, digest). *)
        let unchanged =
          Sys.file_exists dst_file
          && (match scan_record dst_file with
             | Error _ -> false
             | Ok d ->
                 d.r_defect = None
                 && d.r_meta_line = meta_ln
                 && d.r_valid_end = file_bytes dst_file
                 && List.length d.r_chunks = List.length lines
                 && List.for_all2
                      (fun dc (_, c) ->
                        dc.c_phase = c.c_phase && dc.c_lo = c.c_lo
                        && dc.c_bytes = c.c_bytes && dc.c_sum = c.c_sum)
                      d.r_chunks lines)
        in
        if not unchanged then begin
          (* Stream the composed record chunk by chunk out of the source
             files — peak memory is one copy buffer, independent of
             campaign size. *)
          let handles = Hashtbl.create 4 in
          let handle f =
            match Hashtbl.find_opt handles f with
            | Some ic -> ic
            | None ->
                let ic = open_in_bin f in
                Hashtbl.replace handles f ic;
                ic
          in
          let close_handles () =
            Hashtbl.iter (fun _ ic -> close_in_noerr ic) handles;
            Hashtbl.reset handles
          in
          let tmp = dst_file ^ ".merge.tmp" in
          let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp in
          let pos = ref (String.length meta_ln + 1) in
          let new_chunks = ref [] in
          (try
             output_string oc meta_ln;
             output_char oc '\n';
             List.iter
               (fun (f, c) ->
                 burn ();
                 let ic = handle f in
                 seek_in ic c.c_off;
                 copy_bytes ic oc c.c_bytes;
                 output_char oc '\n';
                 new_chunks := { c with c_off = !pos } :: !new_chunks;
                 pos := !pos + c.c_bytes + 1;
                 incr written)
               lines;
             flush oc;
             if sync then fsync_channel ~file:tmp oc
           with e ->
             close_out_noerr oc;
             close_handles ();
             raise e);
          close_out oc;
          close_handles ();
          (try Sys.remove (index_path dst_file) with Sys_error _ -> ());
          Sys.rename tmp dst_file;
          write_index ~file:dst_file
            ~meta_sum:(Digest.to_hex (Digest.string meta_ln))
            ~bytes:!pos (List.rev !new_chunks);
          incr records_merged
        end
  in
  let record_names root =
    Sys.readdir root.root |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
  in
  match
    let names = List.sort_uniq compare (List.concat_map record_names src) in
    List.iter process names
  with
  | exception Sys_error e -> Error e
  | () ->
      (match trace with
      | None -> ()
      | Some t ->
          let c = Trace.counters t in
          Trace.Counters.add c "cache.records_quarantined" (List.length !quarantined);
          Trace.Counters.add c "cache.records_merged" !records_merged;
          Trace.Counters.add c "cache.chunks_merged" !written;
          List.iter
            (fun (f, reason) ->
              Trace.emit t (Trace.Note (Printf.sprintf "quarantined %s: %s" f reason)))
            (List.rev !quarantined));
      Ok
        {
          records_merged = !records_merged;
          chunks_merged = !written;
          coverage = List.rev !coverage;
          contributed = List.rev !contributed;
          quarantined = List.rev !quarantined;
          skipped = List.rev !skipped;
        }

(* Export streams the record's valid prefix to [emit] in bounded pieces
   after a deep scan (payloads decode-validated, any schema).  Tampered
   records refuse to export, exactly as before. *)
let export_gen t ~key:skey emit =
  let file = Filename.concat t.root (skey ^ ".jsonl") in
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "store: no record %s in %s" skey t.root)
  else
    match scan_record ~deep:true file with
    | Error e -> Error (Printf.sprintf "store: %s: %s" file e)
    | Ok r -> (
        match r.r_defect with
        | Some d when d.d_tampered ->
            Error (Printf.sprintf "store: %s: %s" file d.d_reason)
        | _ ->
            let ic = open_in_bin file in
            Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
            emit r.r_meta_line;
            emit "\n";
            List.iter
              (fun c ->
                seek_in ic c.c_off;
                let remaining = ref c.c_bytes in
                while !remaining > 0 do
                  let k = Stdlib.min !remaining copy_buf_len in
                  emit (really_input_string ic k);
                  remaining := !remaining - k
                done;
                emit "\n")
              r.r_chunks;
            Ok ())

let export t ~key =
  let buf = Buffer.create 4096 in
  Result.map
    (fun () -> Buffer.contents buf)
    (export_gen t ~key (Buffer.add_string buf))

let export_to t ~key oc = export_gen t ~key (output_string oc)
