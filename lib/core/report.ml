module Stats = Repro_stats
module Evt = Repro_evt

type comparison = {
  det_summary : Stats.Descriptive.summary;
  rand_summary : Stats.Descriptive.summary;
  average_overhead : float;
  mbta : Mbta.result;
  pwcet_at : (float * float) list;
  margin_at_1e6 : float;
}

let compare ?(engineering_factor = 1.5) ~analysis ~det_sample () =
  let rand_sample = analysis.Protocol.sample in
  let det_summary = Stats.Descriptive.summarize det_sample in
  let rand_summary = Stats.Descriptive.summarize rand_sample in
  {
    det_summary;
    rand_summary;
    average_overhead =
      (rand_summary.Stats.Descriptive.mean /. det_summary.Stats.Descriptive.mean) -. 1.;
    mbta = Mbta.bound ~engineering_factor det_sample;
    pwcet_at = Protocol.pwcet_table analysis;
    margin_at_1e6 =
      Evt.Pwcet.margin_over_observed analysis.Protocol.curve ~cutoff_probability:1e-6;
  }

let pp_comparison ppf c =
  Format.fprintf ppf
    "@[<v>MBPTA vs industrial MBTA practice:@,\
    \  DET  observations: %a@,\
    \  RAND observations: %a@,\
    \  average overhead of randomization: %+.2f%%@,\
    \  MBTA (DET): %a@,\
    \  pWCET(1e-6) / max observed: %.2fx@,\
     pWCET ladder:@,"
    Stats.Descriptive.pp_summary c.det_summary Stats.Descriptive.pp_summary c.rand_summary
    (100. *. c.average_overhead) Mbta.pp c.mbta c.margin_at_1e6;
  List.iter
    (fun (p, v) ->
      Format.fprintf ppf "    %.0e : %10.0f  (%.2fx MBTA bound)@," p v (v /. c.mbta.Mbta.bound))
    c.pwcet_at;
  Format.fprintf ppf "@]"

let pp_resilience_section ppf (label, report) =
  match report with
  | None -> ()
  | Some r -> Format.fprintf ppf "@.@.%s %a" label Resilience.pp_report r

let render ~analysis ~comparison ?det_resilience ?rand_resilience () =
  Format.asprintf "%a@.@.%a@.@.%s%a%a" Protocol.pp_analysis analysis pp_comparison
    comparison
    (Ascii_plot.exceedance_plot analysis.Protocol.curve)
    pp_resilience_section ("DET", det_resilience)
    pp_resilience_section ("RAND", rand_resilience)
