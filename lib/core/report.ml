module Stats = Repro_stats
module Evt = Repro_evt

type comparison = {
  det_summary : Stats.Descriptive.summary;
  rand_summary : Stats.Descriptive.summary;
  average_overhead : float;
  mbta : Mbta.result;
  pwcet_at : (float * float) list;
  margin_at_1e6 : float;
}

let compare ?(engineering_factor = 1.5) ~analysis ~det_sample () =
  let rand_sample = analysis.Protocol.sample in
  let det_summary = Stats.Descriptive.summarize det_sample in
  let rand_summary = Stats.Descriptive.summarize rand_sample in
  {
    det_summary;
    rand_summary;
    average_overhead =
      (rand_summary.Stats.Descriptive.mean /. det_summary.Stats.Descriptive.mean) -. 1.;
    mbta = Mbta.bound ~engineering_factor det_sample;
    pwcet_at = Protocol.pwcet_table analysis;
    margin_at_1e6 =
      Evt.Pwcet.margin_over_observed analysis.Protocol.curve ~cutoff_probability:1e-6;
  }

let pp_comparison ppf c =
  Format.fprintf ppf
    "@[<v>MBPTA vs industrial MBTA practice:@,\
    \  DET  observations: %a@,\
    \  RAND observations: %a@,\
    \  average overhead of randomization: %+.2f%%@,\
    \  MBTA (DET): %a@,\
    \  pWCET(1e-6) / max observed: %.2fx@,\
     pWCET ladder:@,"
    Stats.Descriptive.pp_summary c.det_summary Stats.Descriptive.pp_summary c.rand_summary
    (100. *. c.average_overhead) Mbta.pp c.mbta c.margin_at_1e6;
  List.iter
    (fun (p, v) ->
      Format.fprintf ppf "    %.0e : %10.0f  (%.2fx MBTA bound)@," p v (v /. c.mbta.Mbta.bound))
    c.pwcet_at;
  Format.fprintf ppf "@]"

(* ---- schedule-randomization report ----------------------------------- *)

type shuffle_row = {
  policy : string;
  summary : Stats.Descriptive.summary;  (* worst-case response times *)
  pwcet_at_1e6 : float option;
  analysis_note : string option;
  schedules : int;
  distinct_schedules : int;
  entropy_bits : float;
  vulnerability : float;
}

let pp_shuffle_row ~baseline ppf r =
  Format.fprintf ppf
    "@[<v>policy %-8s worst-response %a@,\
    \  schedule diversity: %d runs, %d distinct, entropy %.3f bits, attacker \
     best-guess %.4f@,"
    r.policy Stats.Descriptive.pp_summary r.summary r.schedules r.distinct_schedules
    r.entropy_bits r.vulnerability;
  (match r.pwcet_at_1e6 with
  | Some v ->
      Format.fprintf ppf "  pWCET(1e-6): %.0f cycles" v;
      (match baseline with
      | Some b when b > 0. ->
          Format.fprintf ppf "  (%+.2f%% vs fixed)" (100. *. ((v /. b) -. 1.))
      | _ -> ());
      Format.fprintf ppf "@,"
  | None -> ());
  (match r.analysis_note with
  | Some note -> Format.fprintf ppf "  analysis: %s@," note
  | None -> ());
  Format.fprintf ppf "@]"

let render_shuffle rows =
  let baseline =
    List.find_opt (fun r -> r.policy = "fixed") rows
    |> Fun.flip Option.bind (fun r -> r.pwcet_at_1e6)
  in
  Format.asprintf "@[<v>Schedule randomization (worst-case task response times):@,%a@]"
    (Format.pp_print_list (pp_shuffle_row ~baseline))
    rows

(* ---- timing-leak verdict ---------------------------------------------- *)

type leak_verdict = {
  label_a : string;
  label_b : string;
  welch : Stats.Welch.result;
  cohens_d : float;
  leak : bool;
}

let leak_verdict ?alpha ~label_a ~label_b xs ys =
  let welch = Stats.Welch.t_test ?alpha xs ys in
  { label_a; label_b; welch; cohens_d = Stats.Effect_size.cohens_d xs ys;
    leak = not welch.Stats.Welch.equal_means }

let render_leak v =
  let w = v.welch in
  Format.asprintf
    "@[<v>Timing-leak comparison: %s vs %s@,\
    \  %a@,\
    \  effect size (Cohen's d): %.4f (%s)@,\
     verdict: %s@]"
    v.label_a v.label_b Stats.Welch.pp_result w v.cohens_d
    (Stats.Effect_size.magnitude v.cohens_d)
    (if v.leak then
       Printf.sprintf "LEAK DETECTED (p = %.4g < alpha = %g)" w.Stats.Welch.p_value
         w.Stats.Welch.alpha
     else
       Printf.sprintf "no leak detected (p = %.4g >= alpha = %g)" w.Stats.Welch.p_value
         w.Stats.Welch.alpha)

let pp_resilience_section ppf (label, report) =
  match report with
  | None -> ()
  | Some r -> Format.fprintf ppf "@.@.%s %a" label Resilience.pp_report r

let render ~analysis ~comparison ?det_resilience ?rand_resilience () =
  Format.asprintf "%a@.@.%a@.@.%s%a%a" Protocol.pp_analysis analysis pp_comparison
    comparison
    (Ascii_plot.exceedance_plot analysis.Protocol.curve)
    pp_resilience_section ("DET", det_resilience)
    pp_resilience_section ("RAND", rand_resilience)
