(* Cooperative graceful shutdown.  Signal handlers may run at any
   allocation point, so they do nothing but set an atomic flag; the
   campaign machinery polls the flag at its chunk barriers — the only
   places where stopping loses no work — via [check].  The store calls
   [check] *after* a chunk is flushed, so an interrupted record always
   ends on a complete chunk boundary (clean prefix, no torn tail) and a
   later [--resume] continues bit-identically from there. *)

exception Interrupted of string

(* "" = no shutdown requested; otherwise the reason ("SIGINT", "SIGTERM",
   or a caller-supplied label).  First request wins so the exit code
   reflects the signal that actually stopped the process. *)
let pending = Atomic.make ""
let installed = Atomic.make false

let signal_name s =
  if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigterm then "SIGTERM"
  else Printf.sprintf "signal %d" s

let request ?(reason = "shutdown") () =
  ignore (Atomic.compare_and_set pending "" reason)

let requested () = Atomic.get pending <> ""
let reason () = match Atomic.get pending with "" -> None | r -> Some r
let reset () = Atomic.set pending ""

let install () =
  if not (Atomic.exchange installed true) then begin
    let handle s = request ~reason:(signal_name s) () in
    ignore (Sys.signal Sys.sigint (Sys.Signal_handle handle));
    ignore (Sys.signal Sys.sigterm (Sys.Signal_handle handle))
  end

let check () =
  match Atomic.get pending with "" -> () | r -> raise (Interrupted r)

let exit_code = function
  | Interrupted "SIGTERM" -> 143
  | Interrupted _ -> 130
  | _ -> invalid_arg "Shutdown.exit_code: not an Interrupted exception"
