module Evt = Repro_evt

type path_report = {
  signature : int;
  occurrences : int;
  analysis : (Protocol.analysis, Protocol.failure) Stdlib.result;
}

type t = { paths : path_report list; analyzed_fraction : float }

let analyze ?options ?(min_runs_per_path = 100) ~measurements ~signatures () =
  let n = Array.length measurements in
  if n = 0 then invalid_arg "Path_analysis.analyze: empty measurement sample";
  if n <> Array.length signatures then
    invalid_arg
      (Printf.sprintf "Path_analysis.analyze: %d measurements but %d signatures" n
         (Array.length signatures));
  let groups = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let s = signatures.(i) in
    let existing = Option.value (Hashtbl.find_opt groups s) ~default:[] in
    Hashtbl.replace groups s (measurements.(i) :: existing)
  done;
  let paths =
    Hashtbl.fold
      (fun signature times acc ->
        let xs = Array.of_list (List.rev times) in
        let analysis =
          if Array.length xs >= min_runs_per_path then Protocol.analyze ?options xs
          else
            Error
              (Protocol.Not_enough_runs
                 { have = Array.length xs; need = min_runs_per_path })
        in
        { signature; occurrences = Array.length xs; analysis } :: acc)
      groups []
    |> List.sort (fun a b -> compare b.occurrences a.occurrences)
  in
  let analyzed_runs =
    List.fold_left
      (fun acc p -> match p.analysis with Ok _ -> acc + p.occurrences | Error _ -> acc)
      0 paths
  in
  { paths; analyzed_fraction = float_of_int analyzed_runs /. float_of_int n }

let pwcet_estimate t ~cutoff_probability =
  List.filter_map
    (fun p ->
      match p.analysis with
      | Ok a -> Some (Evt.Pwcet.estimate a.Protocol.curve ~cutoff_probability)
      | Error _ -> None)
    t.paths
  |> function
  | [] -> None
  | estimates -> Some (List.fold_left Float.max neg_infinity estimates)

let pp ppf t =
  Format.fprintf ppf "@[<v>per-path analysis: %d paths, %.1f%% of runs analyzed@,"
    (List.length t.paths) (100. *. t.analyzed_fraction);
  List.iter
    (fun p ->
      match p.analysis with
      | Ok a ->
          Format.fprintf ppf "  path %08x: %d runs, pWCET(1e-12)=%.0f@," p.signature
            p.occurrences
            (Evt.Pwcet.estimate a.Protocol.curve ~cutoff_probability:1e-12)
      | Error f ->
          Format.fprintf ppf "  path %08x: %d runs, not analyzed (%a)@," p.signature
            p.occurrences Protocol.pp_failure f)
    t.paths;
  Format.fprintf ppf "@]"
