type outcome =
  | Completed of float
  | Timeout of { detail : string }
  | Crashed of { detail : string }
  | Corrupted of { detail : string }

type policy = { max_retries : int; max_total_retries : int option; min_survival : float }

let default_policy = { max_retries = 2; max_total_retries = None; min_survival = 0.9 }

type attempt = { attempt : int; outcome : outcome }
type record = { run_index : int; attempts : attempt list; survived : bool }

type report = {
  sample : float array;
  records : record list;
  total_runs : int;
  survivors : int;
  retried_runs : int;
  dropped_runs : int;
  total_retries : int;
}

type error =
  | Too_few_survivors of { survivors : int; required : int; total : int }
  | Retry_budget_exhausted of { spent : int; limit : int; runs_completed : int }
  | Invalid_policy of string

exception Budget_gone of { spent : int; limit : int; runs_completed : int }

let required_survivors ~policy ~runs =
  int_of_float (ceil (policy.min_survival *. float_of_int runs))

(* One run, measured to completion or quarantine.  A pure function of
   [run_index] as long as [measure] honours the determinism contract
   (outcome a pure function of [(run_index, attempt)]) — which is what lets
   the supervisor fan runs out over domains and still produce bit-identical
   reports at any job count. *)
let measure_run ~policy ~measure run_index =
  let rec attempts_loop attempt acc =
    let outcome = measure ~run_index ~attempt in
    let acc = { attempt; outcome } :: acc in
    match outcome with
    | Completed time -> (List.rev acc, Some time)
    | Timeout _ | Crashed _ | Corrupted _ ->
        if attempt >= policy.max_retries then (List.rev acc, None)
        else attempts_loop (attempt + 1) acc
  in
  attempts_loop 0 []

(* Store boundary: the measurement store persists attempt trails in its
   own dependency-free outcome type; conversion is lossless (attempt
   numbers are positional — [measure_run] numbers them 0.. by
   construction), so a cached trail replays to exactly the attempts list
   a fresh measurement would have produced. *)
let store_outcome = function
  | Completed v -> Store.Completed v
  | Timeout { detail } -> Store.Timeout detail
  | Crashed { detail } -> Store.Crashed detail
  | Corrupted { detail } -> Store.Corrupted detail

let of_store_outcome = function
  | Store.Completed v -> Completed v
  | Store.Timeout detail -> Timeout { detail }
  | Store.Crashed detail -> Crashed { detail }
  | Store.Corrupted detail -> Corrupted { detail }

let trail_of_attempts attempts =
  List.map (fun { outcome; _ } -> store_outcome outcome) attempts

(* The store-facing measurement of one run: what [supervise]'s measurement
   phase checkpoints, exposed so shard workers can collect trails without
   running the accounting phase (the coordinator's final campaign replays
   them through [supervise] for the full report). *)
let trail ~policy ~measure run_index =
  trail_of_attempts (fst (measure_run ~policy ~measure run_index))

let attempts_of_trail trail =
  let attempts =
    List.mapi (fun i o -> { attempt = i; outcome = of_store_outcome o }) trail
  in
  let time =
    match List.rev trail with Store.Completed v :: _ -> Some v | _ -> None
  in
  (attempts, time)

let outcome_kind = function
  | Completed _ -> "completed"
  | Timeout _ -> "timeout"
  | Crashed _ -> "crashed"
  | Corrupted _ -> "corrupted"

let outcome_detail = function
  | Completed _ -> ""
  | Timeout { detail } | Crashed { detail } | Corrupted { detail } -> detail

(* Per-run observability, emitted from the sequential accounting phase so
   events appear in canonical run order at any job count. *)
let trace_run trace ~run_index ~attempts ~time =
  match trace with
  | None -> ()
  | Some t ->
      let phase = Trace.current_phase t in
      List.iter
        (fun { attempt; outcome } ->
          match outcome with
          | Completed _ -> ()
          | Timeout _ | Crashed _ | Corrupted _ ->
              Trace.emit t
                (Trace.Fault
                   {
                     phase;
                     run_index;
                     attempt;
                     kind = outcome_kind outcome;
                     detail = outcome_detail outcome;
                   }))
        attempts;
      let final =
        match attempts with
        | [] -> "completed"
        | _ -> outcome_kind (List.nth attempts (List.length attempts - 1)).outcome
      in
      Trace.emit t
        (Trace.Run
           {
             phase;
             run_index;
             attempts = List.length attempts;
             outcome = final;
             latency = time;
           })

let supervise ?jobs ?trace ?dispatch ?store ~policy ~runs ~measure () =
  if runs < 1 then Error (Invalid_policy "runs must be >= 1")
  else if policy.max_retries < 0 then Error (Invalid_policy "max_retries must be >= 0")
  else if not (policy.min_survival >= 0. && policy.min_survival <= 1.) then
    Error (Invalid_policy "min_survival must lie in [0, 1]")
  else begin
    (* Phase 1 — measurement, embarrassingly parallel: each run retries
       locally up to [max_retries] with no global coordination.  With a
       store attached, whole attempt trails are checkpointed per chunk and
       cached trails replace the measurement entirely; both the fresh and
       the cached path go through the trail round-trip, so the accounting
       phase sees identical values either way. *)
    let outcomes =
      match store with
      | None -> Parallel.init ?trace ?jobs runs (measure_run ~policy ~measure)
      | Some (session, phase) ->
          Store.collect_trails ?trace ?jobs ?dispatch session ~phase runs
            (trail ~policy ~measure)
          |> Array.map attempts_of_trail
    in
    (* Phase 2 — sequential replay of the campaign accounting, in run order.
       The campaign-wide retry budget is inherently sequential (whether run
       [i] may retry depends on retries spent by runs [< i]); replaying it
       over the already-measured attempt trails reproduces the sequential
       supervisor's result exactly.  When the budget dies mid-campaign,
       later runs were measured needlessly — wasted work in a case that
       aborts the campaign anyway, never a different answer. *)
    let sample = ref [] (* survivors, newest first *) in
    let records = ref [] in
    let survivors = ref 0 in
    let retried_runs = ref 0 in
    let dropped_runs = ref 0 in
    let total_retries = ref 0 in
    let spend_retry ~runs_completed =
      total_retries := !total_retries + 1;
      match policy.max_total_retries with
      | Some limit when !total_retries > limit ->
          raise (Budget_gone { spent = limit; limit; runs_completed })
      | Some _ | None -> ()
    in
    let account run_index (attempts, time) =
      trace_run trace ~run_index ~attempts ~time;
      (* every attempt beyond the first was preceded by one retry spend *)
      List.iter
        (fun { attempt; _ } ->
          if attempt > 0 then spend_retry ~runs_completed:run_index)
        attempts;
      (match time with
      | Some v ->
          incr survivors;
          sample := v :: !sample
      | None -> incr dropped_runs);
      if List.length attempts > 1 then incr retried_runs;
      (* log only runs that faulted at least once *)
      if time = None || List.length attempts > 1 then
        records := { run_index; attempts; survived = time <> None } :: !records
    in
    match Array.iteri account outcomes with
    | exception Budget_gone { spent; limit; runs_completed } ->
        Error (Retry_budget_exhausted { spent; limit; runs_completed })
    | () ->
        let required = required_survivors ~policy ~runs in
        if !survivors < required then
          Error (Too_few_survivors { survivors = !survivors; required; total = runs })
        else
          Ok
            {
              sample = Array.of_list (List.rev !sample);
              records = List.rev !records;
              total_runs = runs;
              survivors = !survivors;
              retried_runs = !retried_runs;
              dropped_runs = !dropped_runs;
              total_retries = !total_retries;
            }
  end

let pp_outcome ppf = function
  | Completed v -> Format.fprintf ppf "completed (%.0f cycles)" v
  | Timeout { detail } -> Format.fprintf ppf "timeout: %s" detail
  | Crashed { detail } -> Format.fprintf ppf "crashed: %s" detail
  | Corrupted { detail } -> Format.fprintf ppf "corrupted: %s" detail

let pp_error ppf = function
  | Too_few_survivors { survivors; required; total } ->
      Format.fprintf ppf "too few surviving runs: %d of %d (need %d)" survivors total
        required
  | Retry_budget_exhausted { spent; limit; runs_completed } ->
      Format.fprintf ppf "campaign retry budget exhausted: %d of %d spent after %d runs"
        spent limit runs_completed
  | Invalid_policy reason -> Format.fprintf ppf "invalid resilience policy: %s" reason

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fault/retry summary: %d runs, %d survived, %d retried, %d dropped, %d retries \
     spent"
    r.total_runs r.survivors r.retried_runs r.dropped_runs r.total_retries;
  if r.records <> [] then begin
    Format.fprintf ppf "@,faulted runs:";
    List.iter
      (fun rec_ ->
        Format.fprintf ppf "@,  run %5d  %-12s" rec_.run_index
          (if rec_.survived then "recovered" else "quarantined");
        List.iter
          (fun a -> Format.fprintf ppf "  [%d] %a" a.attempt pp_outcome a.outcome)
          rec_.attempts)
      r.records
  end;
  Format.fprintf ppf "@]"
