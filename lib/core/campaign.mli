(** A full measurement campaign: the four experiments of the paper's
    evaluation (E1 i.i.d., E2 pWCET curve, E3 MBPTA-vs-DET comparison, E4
    average performance) driven end-to-end from two measurement functions.

    Workload-agnostic: the harness supplies [measure_det] and [measure_rand]
    (run index to cycles; the harness owns reseeding/flushing), keeping this
    library independent of any particular platform or application — like a
    timing-analysis tool attached to a target.

    Two drivers share all analysis code.  {!run} is the fault-free fast
    path: it computes every run directly (identical to the original seed
    pipeline).  {!run_resilient} supervises each measurement through
    {!Resilience}: outcomes are classified, transient failures retried
    under a deterministic reseed policy, irrecoverable runs quarantined,
    and the campaign proceeds on the surviving sample when the policy's
    survival threshold is met.  Both return a typed [result] — campaign
    failure is a {!Protocol.failure}, never an exception. *)

type input = {
  runs : int;  (** the paper uses 3,000 *)
  measure_det : int -> float;
  measure_rand : int -> float;
  options : Protocol.options;
  engineering_factor : float;  (** MBTA margin, 1.5 in the paper *)
}

val default_input : measure_det:(int -> float) -> measure_rand:(int -> float) -> input

(** Resilient campaign: outcome-typed measurement functions plus a
    {!Resilience.policy}.  [measure_*_outcome ~run_index ~attempt] performs
    attempt [attempt] of run [run_index] ([attempt = 0] is the first try;
    the harness derives retry seeds from it deterministically). *)
type resilient_input = {
  base : input;  (** [base.measure_det]/[base.measure_rand] are unused here *)
  policy : Resilience.policy;
  measure_det_outcome : run_index:int -> attempt:int -> Resilience.outcome;
  measure_rand_outcome : run_index:int -> attempt:int -> Resilience.outcome;
}

val resilient_input :
  ?policy:Resilience.policy ->
  base:input ->
  measure_det_outcome:(run_index:int -> attempt:int -> Resilience.outcome) ->
  measure_rand_outcome:(run_index:int -> attempt:int -> Resilience.outcome) ->
  unit ->
  resilient_input

type t = {
  det_sample : float array;
  rand_sample : float array;
  analysis : (Protocol.analysis, Protocol.failure) Stdlib.result;
  comparison : comparison option;
  det_resilience : Resilience.report option;  (** [Some] under {!run_resilient} *)
  rand_resilience : Resilience.report option;
}

and comparison = Report.comparison

(** Fault-free campaign.  [Error (Not_enough_runs _)] when [input.runs < 1];
    the per-run analysis verdicts stay inside [t.analysis].

    Measurements execute on a chunked domain pool ({!Parallel}; [jobs]
    defaults to [Domain.recommended_domain_count ()]).  [measure_det] and
    [measure_rand] must return a pure function of the run index — the
    contract {!Repro_tvca.Experiment} satisfies by deriving each run's seeds
    and platform instance from [(base_seed, run_index)] — and then the
    samples and analysis are {e bit-identical} at every [jobs] value.  For a
    stateful measurement source (e.g. a shared synthetic generator), pass
    [~jobs:1] or use {!Protocol.collect_and_analyze}, which is strictly
    sequential.

    With [trace] attached ({!Trace.create}), the campaign additionally
    records its full event stream — lifecycle, per-run samples, i.i.d. and
    fit verdicts — without changing a bit of the result; at the default
    trace level the trace file itself is bit-identical at every [jobs]
    value.

    With [store] attached — an open {!Store.session} for this campaign's
    configuration (opened with [resilient:false] and [runs = input.runs]) —
    both measurement phases checkpoint to the session's record at every
    chunk barrier and replay any chunks already recorded: a warm record
    calls neither measurement function at all, and an interrupted campaign
    resumed from its record returns samples bit-identical to a cold
    sequential run (the determinism contract above extends to every
    cached/computed split).

    [dispatch] (store-backed campaigns only) sets the scheduling
    granularity of the checkpoint walk — how many store chunks one
    domain-pool fan-out covers; see {!Parallel.dispatch}.  Purely
    operational: every persisted byte and every sample is independent of
    the dispatch choice. *)
val run :
  ?jobs:int ->
  ?trace:Trace.t ->
  ?dispatch:Parallel.dispatch ->
  ?store:Store.session ->
  input ->
  (t, Protocol.failure) Stdlib.result

(** Supervised campaign on a fault-prone platform; fails with
    {!Protocol.Faulted_runs} (survival threshold missed) or
    {!Protocol.Budget_exhausted} (campaign retry budget gone).  [jobs] and
    [trace] as in {!run}; see {!Resilience.supervise} for the parallel
    budget semantics and the per-run fault/retry events.  [store] as in
    {!run}, except the session must be opened with [resilient:true]: whole
    attempt trails (not just surviving latencies) are checkpointed, so a
    resumed campaign reproduces retry accounting and fault records
    bit-identically too. *)
val run_resilient :
  ?jobs:int ->
  ?trace:Trace.t ->
  ?dispatch:Parallel.dispatch ->
  ?store:Store.session ->
  resilient_input ->
  (t, Protocol.failure) Stdlib.result

(** Shard-worker mode of the distributed campaign layer: run {e only} the
    two measurement phases, restricted to [store]'s shard span (the session
    must be opened with [Store.open_session ~shard] and [input.runs] runs),
    and skip analysis entirely.  The coordinator merges the shard records
    ({!Store.merge}) and runs the full campaign over the merged record —
    which, by the determinism contract, is byte-identical to a
    single-process record, so the final report cannot depend on the shard
    count.  [Error (Not_enough_runs _)] when [input.runs < 1]. *)
val collect_shard :
  ?jobs:int ->
  ?trace:Trace.t ->
  ?dispatch:Parallel.dispatch ->
  store:Store.session ->
  input ->
  (unit, Protocol.failure) Stdlib.result

(** {!collect_shard} for supervised campaigns: collects whole attempt
    trails ({!Resilience.trail}) under the input's retry policy.  The
    session must be opened with [resilient:true].  Retry accounting and
    survival thresholds are {e not} applied here — they replay, in run
    order, in the coordinator's final {!run_resilient} over the merged
    record, so budget arithmetic stays sequential and bit-identical. *)
val collect_shard_resilient :
  ?jobs:int ->
  ?trace:Trace.t ->
  ?dispatch:Parallel.dispatch ->
  store:Store.session ->
  resilient_input ->
  (unit, Protocol.failure) Stdlib.result

(** Render the whole campaign as a text report (all four experiments, plus
    the fault/retry summary when the campaign ran resiliently). *)
val render : t -> string
