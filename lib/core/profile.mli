(** Campaign-side surface of the stage-resolved micro-profiler.

    The accumulators themselves live below every repro library
    ({!Repro_profile}), so the ISA/platform/TVCA hot paths can annotate
    stages without depending on the campaign layer.  This module re-exports
    that interface and adds the two pieces only the campaign layer can
    provide: folding a profile snapshot into a trace's counter registry
    (where [trace summary] picks it up as the stage-profile section) and
    rendering the live snapshot as a report. *)

include module type of struct
  include Repro_profile
end

(** Prefix of the profile counter keys in a trace's counter registry
    (["profile."]); {!Trace.summarize} groups counters carrying it into the
    stage-profile section instead of the plain counter dump. *)
val counter_prefix : string

(** [record_counters counters] adds every non-empty stage total of the
    current snapshot to [counters] as ["profile.<stage>_ns"] and
    ["profile.<stage>_calls"].  Additions commute, so merging snapshots
    from several flushes (or processes sharing a trace file) stays
    well-defined. *)
val record_counters : Trace.Counters.t -> unit

(** The current snapshot rendered as the aligned stage table ([""] when
    nothing was profiled). *)
val report : unit -> string
