(** Fault-tolerant coordination of sharded campaign workers.

    At 10^6-run scale a campaign must be cut across processes (and
    eventually hosts), and the campaign infrastructure itself has to
    tolerate worker failure: crashes, stalls, torn shard stores and
    corrupt records are the steady state, not edge cases.  This module
    supplies the structural half of that layer:

    - {!shard_spans} — the pure shard layout: the run space cut into
      contiguous, checkpoint-chunk-aligned spans, one per shard, using the
      same {!Repro_parallel.chunks} split the domain pool uses.  Because
      spans land on global chunk boundaries, every chunk a shard worker
      writes is byte-identical to the chunk a single-process campaign
      writes at the same offset — {!Store.merge} is pure concatenation and
      the merged record is bit-identical at any shard count;
    - {!supervise} — one supervision loop per shard under a {!policy}:
      deadline timeout, capped deterministic exponential backoff between
      attempts, graceful degradation (an unrecoverable shard is reported,
      not fatal — its span becomes a coverage gap that the final campaign
      recomputes in-process);
    - {!run_worker} — the process runner: spawn, poll, SIGKILL past the
      deadline.

    Determinism: retry accounting is counter-based (attempt indices), the
    backoff delay is a pure function of the attempt index, and shard
    reports are assembled in shard order after all loops join — so a given
    failure pattern yields the same transcript, and {e no} failure pattern
    can change a merged measurement byte (only coverage and wall-clock). *)

type policy = {
  shards : int;  (** worker count N of [--shard k/N] *)
  deadline : float option;  (** per-attempt elapsed-time limit, seconds (monotonic) *)
  max_retries : int;  (** extra attempts per shard after the first *)
  backoff : float;  (** base delay before retry k is [backoff * 2^k] s *)
  backoff_cap : float;  (** ceiling on the delay *)
  poll_interval : float;  (** worker poll period, seconds *)
}

val default_policy : shards:int -> policy
(** [{ deadline = None; max_retries = 2; backoff = 0.5; backoff_cap = 8.;
      poll_interval = 0.05 }] *)

val shard_spans : shards:int -> chunk_size:int -> runs:int -> (int * int) list
(** The pure shard layout: at most [shards] contiguous [(lo, hi)] spans
    covering [0, runs) exactly once, each starting on a multiple of
    [chunk_size] and ending on one (or at [runs]).  Fewer than [shards]
    spans when the campaign has fewer checkpoint chunks than shards.
    A pure function of its arguments — workers and coordinator compute it
    independently and agree.  Raises [Invalid_argument] on a negative run
    count, [shards < 1] or [chunk_size < 1]. *)

type worker_failure =
  | Crashed of string  (** nonzero exit, signal, or spawn failure *)
  | Stalled of float  (** deadline (seconds) exceeded; worker was killed *)

type failed_attempt = { attempt : int; failure : worker_failure }

type shard_report = {
  shard : int;  (** 1-based, as in [--shard k/N] *)
  span : int * int;
  attempts : int;
  failures : failed_attempt list;
  completed : bool;
}

type report = {
  total_runs : int;
  shard_reports : shard_report list;  (** in shard order *)
  retries : int;
  unrecoverable : int;  (** shards that exhausted their attempts *)
}

val backoff_delay : policy:policy -> attempt:int -> float
(** [min backoff_cap (backoff * 2^attempt)] — exposed for tests. *)

val supervise :
  ?trace:Trace.t ->
  policy:policy ->
  chunk_size:int ->
  runs:int ->
  run_shard:
    (shard:int -> span:int * int -> attempt:int -> (unit, worker_failure) result) ->
  unit ->
  report
(** Drive every shard of [shard_spans ~shards:policy.shards] to completion
    or exhaustion.  [run_shard] performs one attempt — typically
    {!run_worker} over a rebuilt [mbpta_cli analyze --shard k/N] command
    line, but tests drive it in-process.  A failed attempt sleeps
    [backoff_delay] and retries, up to [policy.max_retries] extra attempts;
    a shard that exhausts them is reported unrecoverable, never raised.
    Supervision loops run concurrently (one domain per shard — they block
    in process polls, not compute).

    With [trace] attached, bumps [campaign.worker_retries] /
    [campaign.shards_failed] and emits one {!Trace.Note} per failed
    attempt, in shard order. *)

val run_worker :
  ?log:string ->
  ?now:(unit -> float) ->
  deadline:float option ->
  poll_interval:float ->
  argv:string array ->
  unit ->
  (unit, worker_failure) result
(** Spawn [argv] (stdout/stderr appended to [log], or discarded), poll
    every [poll_interval] seconds, and SIGKILL it past [deadline].  The
    kill needs no grace period: workers flush a valid record prefix at
    every chunk barrier, so a kill costs at most the in-flight chunk and
    the retry resumes from the shard record.

    Deadlines are measured on the monotonic clock, so wall-clock steps
    (NTP) can neither spare a stalled worker nor kill a healthy one.
    [now] substitutes the clock (seconds; test hook for simulating
    steps). *)

val pp_failure : Format.formatter -> worker_failure -> unit
val pp_shard_report : Format.formatter -> shard_report -> unit
val pp_report : Format.formatter -> report -> unit
