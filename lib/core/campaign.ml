type input = {
  runs : int;
  measure_det : int -> float;
  measure_rand : int -> float;
  options : Protocol.options;
  engineering_factor : float;
}

let default_input ~measure_det ~measure_rand =
  {
    runs = 3000;
    measure_det;
    measure_rand;
    options = Protocol.default_options;
    engineering_factor = 1.5;
  }

type resilient_input = {
  base : input;
  policy : Resilience.policy;
  measure_det_outcome : run_index:int -> attempt:int -> Resilience.outcome;
  measure_rand_outcome : run_index:int -> attempt:int -> Resilience.outcome;
}

let resilient_input ?(policy = Resilience.default_policy) ~base ~measure_det_outcome
    ~measure_rand_outcome () =
  { base; policy; measure_det_outcome; measure_rand_outcome }

type t = {
  det_sample : float array;
  rand_sample : float array;
  analysis : (Protocol.analysis, Protocol.failure) Stdlib.result;
  comparison : comparison option;
  det_resilience : Resilience.report option;
  rand_resilience : Resilience.report option;
}

and comparison = Report.comparison

(* Phase names of the trace schema; the digest groups events by these. *)
let phase_collect_det = "collect_det"
let phase_collect_rand = "collect_rand"
let phase_analyze = "analyze"

let in_phase trace name f =
  match trace with
  | None -> f ()
  | Some t ->
      Trace.phase_start t name;
      let v = f () in
      Trace.phase_end t name;
      v

let trace_campaign_end trace result =
  match trace with
  | None -> ()
  | Some t ->
      let ok, failure =
        match result with
        | Ok _ -> (true, None)
        | Error f -> (false, Some (Format.asprintf "%a" Protocol.pp_failure f))
      in
      Trace.emit t (Trace.Campaign_end { ok; failure })

let finish ?jobs ?trace ~options ~engineering_factor ~det_sample ~rand_sample
    ~det_resilience ~rand_resilience () =
  let analysis =
    in_phase trace phase_analyze (fun () ->
        Profile.time Profile.Analysis (fun () ->
            Protocol.analyze ~options ?jobs ?trace rand_sample))
  in
  let comparison =
    match analysis with
    | Ok a -> Some (Report.compare ~engineering_factor ~analysis:a ~det_sample ())
    | Error _ -> None
  in
  { det_sample; rand_sample; analysis; comparison; det_resilience; rand_resilience }

let run ?jobs ?trace ?dispatch ?store input =
  (match trace with
  | Some t -> Trace.emit t (Trace.Campaign_start { runs = input.runs; resilient = false })
  | None -> ());
  let result =
    if input.runs < 1 then Error (Protocol.Not_enough_runs { have = input.runs; need = 1 })
    else begin
      (* Runs are independent by construction (per-run seed derivation), so
         both platforms' samples fan out over the domain pool; [jobs] only
         changes wall-clock time, never a bit of the result.  With a store
         session attached, each phase checkpoints per chunk and replays
         cached chunks instead of measuring. *)
      let collect phase measure =
        in_phase trace phase (fun () ->
            let sample =
              match store with
              | None -> Parallel.init ?trace ?jobs input.runs measure
              | Some session ->
                  Store.collect ?trace ?jobs ?dispatch session ~phase input.runs
                    measure
            in
            (match trace with
            | Some t -> Trace.emit_sample t ~phase sample
            | None -> ());
            sample)
      in
      let det_sample = collect phase_collect_det input.measure_det in
      let rand_sample = collect phase_collect_rand input.measure_rand in
      Ok
        (finish ?jobs ?trace ~options:input.options
           ~engineering_factor:input.engineering_factor ~det_sample ~rand_sample
           ~det_resilience:None ~rand_resilience:None ())
    end
  in
  trace_campaign_end trace result;
  result

(* Shard-worker mode: run only the measurement phases of the campaign,
   restricted to the store session's shard span, and skip analysis — the
   coordinator merges the shard records and runs the full campaign (with
   accounting and analysis) over the merged record.  Because chunk layout
   and per-run values are pure functions of the run index, the chunks a
   shard collects are byte-identical to the single-process record's. *)
let collect_shard ?jobs ?trace ?dispatch ~store input =
  if input.runs < 1 then
    Error (Protocol.Not_enough_runs { have = input.runs; need = 1 })
  else begin
    let collect phase measure =
      in_phase trace phase (fun () ->
          ignore
            (Store.collect ?trace ?jobs ?dispatch store ~phase input.runs measure))
    in
    collect phase_collect_det input.measure_det;
    collect phase_collect_rand input.measure_rand;
    Ok ()
  end

let collect_shard_resilient ?jobs ?trace ?dispatch ~store input =
  let { base; policy; measure_det_outcome; measure_rand_outcome } = input in
  if base.runs < 1 then Error (Protocol.Not_enough_runs { have = base.runs; need = 1 })
  else begin
    let collect phase measure =
      in_phase trace phase (fun () ->
          ignore
            (Store.collect_trails ?trace ?jobs ?dispatch store ~phase base.runs
               (Resilience.trail ~policy ~measure)))
    in
    collect phase_collect_det measure_det_outcome;
    collect phase_collect_rand measure_rand_outcome;
    Ok ()
  end

let failure_of_resilience_error : Resilience.error -> Protocol.failure = function
  | Resilience.Too_few_survivors { survivors; required; total } ->
      Protocol.Faulted_runs { survivors; required; total }
  | Resilience.Retry_budget_exhausted { spent; limit; runs_completed } ->
      Protocol.Budget_exhausted { spent; limit; runs_completed }
  | Resilience.Invalid_policy reason ->
      Protocol.Invalid_sample { index = -1; value = Float.nan; reason }

let run_resilient ?jobs ?trace ?dispatch ?store input =
  let { base; policy; measure_det_outcome; measure_rand_outcome } = input in
  (match trace with
  | Some t -> Trace.emit t (Trace.Campaign_start { runs = base.runs; resilient = true })
  | None -> ());
  let supervise phase measure =
    in_phase trace phase (fun () ->
        let store = Option.map (fun s -> (s, phase)) store in
        Resilience.supervise ?jobs ?trace ?dispatch ?store ~policy ~runs:base.runs
          ~measure ()
        |> Result.map_error failure_of_resilience_error)
  in
  let result =
    match supervise phase_collect_det measure_det_outcome with
    | Error _ as e -> e
    | Ok det_report -> (
        match supervise phase_collect_rand measure_rand_outcome with
        | Error _ as e -> e
        | Ok rand_report ->
            Ok
              (finish ?jobs ?trace ~options:base.options
                 ~engineering_factor:base.engineering_factor
                 ~det_sample:det_report.Resilience.sample
                 ~rand_sample:rand_report.Resilience.sample
                 ~det_resilience:(Some det_report) ~rand_resilience:(Some rand_report) ()))
  in
  trace_campaign_end trace result;
  result

let render t =
  match (t.analysis, t.comparison) with
  | Ok analysis, Some comparison ->
      Report.render ~analysis ~comparison ?det_resilience:t.det_resilience
        ?rand_resilience:t.rand_resilience ()
  | Ok analysis, None -> Format.asprintf "%a" Protocol.pp_analysis analysis
  | Error f, _ -> Format.asprintf "campaign failed: %a" Protocol.pp_failure f
