(** Cooperative graceful shutdown (checkpoint-on-signal).

    An operator's Ctrl-C (SIGINT) or a supervisor's SIGTERM must not lose
    the in-flight chunk of a checkpointed campaign, and must never leave a
    torn tail for the resume path to repair.  The handlers installed here
    therefore only set an atomic flag; {!Store.open_session} sessions poll
    it — through {!check} — at each chunk barrier, {e after} the chunk was
    flushed.  An interrupted record is thus always a clean prefix of the
    cold record, and rerunning with [--resume] reproduces the cold result
    bit-identically (pinned in [test_store.ml]).

    The flag is process-global, so the daemon shares it with the campaign
    runner: a SIGTERM to [mbpta serve] interrupts the in-flight campaign
    at its next barrier and drains the request queue. *)

(** Raised by {!check} once shutdown was requested.  The payload is the
    reason ("SIGINT", "SIGTERM", or a caller-supplied label). *)
exception Interrupted of string

(** Install SIGINT/SIGTERM handlers that set the shutdown flag.
    Idempotent; only the first call replaces the process's handlers. *)
val install : unit -> unit

(** Request shutdown programmatically (daemon drain, tests).  The first
    reason recorded wins. *)
val request : ?reason:string -> unit -> unit

val requested : unit -> bool

(** The recorded reason, if shutdown was requested. *)
val reason : unit -> string option

(** Clear the flag — after a handled interruption (tests, daemon restart
    logic).  Does not uninstall the handlers. *)
val reset : unit -> unit

(** Raise {!Interrupted} iff shutdown was requested; called by the store
    at chunk barriers. *)
val check : unit -> unit

(** Conventional exit code for an {!Interrupted} exception: 130 for
    SIGINT (and programmatic requests), 143 for SIGTERM. *)
val exit_code : exn -> int
