module Stats = Repro_stats
module Evt = Repro_evt

let exceedance_plot ?(width = 72) ?(decades = 15) curve =
  if width < 20 then invalid_arg "Ascii_plot.exceedance_plot: width must be >= 20";
  if decades < 2 then invalid_arg "Ascii_plot.exceedance_plot: decades must be >= 2";
  let ecdf = Evt.Pwcet.sample_ecdf curve in
  let observed = Stats.Ecdf.ccdf_points ecdf in
  let x_min = Stats.Ecdf.order_statistic ecdf 0 in
  let x_max =
    Float.max
      (Evt.Pwcet.estimate curve ~cutoff_probability:(10. ** float_of_int (-decades)))
      (Stats.Ecdf.order_statistic ecdf (Stats.Ecdf.size ecdf - 1))
    *. 1.02
  in
  let col_of x =
    let c = int_of_float (float_of_int (width - 1) *. (x -. x_min) /. (x_max -. x_min)) in
    Stdlib.max 0 (Stdlib.min (width - 1) c)
  in
  (* grid.(row) is the decade row: row d covers p in (10^-(d+1), 10^-d]. *)
  let grid = Array.init decades (fun _ -> Bytes.make width ' ') in
  let row_of p =
    if p >= 1. then 0
    else begin
      let d = int_of_float (Float.floor (-.Float.log10 p)) in
      Stdlib.min (decades - 1) d
    end
  in
  List.iter
    (fun (x, p) ->
      let r = row_of p in
      Bytes.set grid.(r) (col_of x) 'o')
    observed;
  (* Model curve: sample densely along probability. *)
  let steps = decades * 8 in
  for i = 0 to steps - 1 do
    let exponent = float_of_int i /. 8. in
    let p = 10. ** -.exponent in
    if p < 1. then begin
      let v = Evt.Pwcet.estimate curve ~cutoff_probability:p in
      let r = row_of p in
      let c = col_of v in
      if Bytes.get grid.(r) c = ' ' then Bytes.set grid.(r) c '*'
    end
  done;
  let buffer = Buffer.create ((decades + 4) * (width + 12)) in
  Buffer.add_string buffer
    "P(exceedance)  ('o' observed ECDF tail, '*' pWCET projection)\n";
  Array.iteri
    (fun d row ->
      Buffer.add_string buffer (Printf.sprintf "1e-%02d |%s|\n" d (Bytes.to_string row)))
    grid;
  Buffer.add_string buffer
    (Printf.sprintf "      %s\n" (String.make (width + 2) '-'));
  Buffer.add_string buffer
    (Printf.sprintf "      %-12.0f%*s\n" x_min (width - 10) (Printf.sprintf "%.0f" x_max));
  Buffer.add_string buffer "      execution time (cycles)\n";
  Buffer.contents buffer

let qq_plot ?(width = 64) ?(height = 20) ~data ~quantile () =
  let n = Array.length data in
  if n < 2 then
    invalid_arg (Printf.sprintf "Ascii_plot.qq_plot: %d points, need at least 2" n);
  if width < 10 then invalid_arg "Ascii_plot.qq_plot: width must be >= 10";
  if height < 5 then invalid_arg "Ascii_plot.qq_plot: height must be >= 5";
  let sorted = Array.copy data in
  Array.sort Float.compare sorted;
  let nf = float_of_int n in
  (* model quantiles at the (i+0.5)/n plotting positions *)
  let model = Array.init n (fun i -> quantile ((float_of_int i +. 0.5) /. nf)) in
  let lo = Float.min sorted.(0) model.(0) in
  let hi = Float.max sorted.(n - 1) model.(n - 1) in
  let span = if hi > lo then hi -. lo else 1. in
  let col x = Stdlib.max 0 (Stdlib.min (width - 1)
                              (int_of_float (float_of_int (width - 1) *. (x -. lo) /. span))) in
  let row y = (height - 1) - Stdlib.max 0 (Stdlib.min (height - 1)
                                             (int_of_float (float_of_int (height - 1) *. (y -. lo) /. span))) in
  let grid = Array.init height (fun _ -> Bytes.make width ' ') in
  (* identity diagonal *)
  for c = 0 to width - 1 do
    let x = lo +. (span *. float_of_int c /. float_of_int (width - 1)) in
    Bytes.set grid.(row x) c '.'
  done;
  for i = 0 to n - 1 do
    Bytes.set grid.(row sorted.(i)) (col model.(i)) '+'
  done;
  let buffer = Buffer.create ((height + 3) * (width + 4)) in
  Buffer.add_string buffer "empirical quantiles (Y) vs model quantiles (X); '.' = perfect fit\n";
  Array.iter
    (fun r -> Buffer.add_string buffer (Printf.sprintf "|%s|\n" (Bytes.to_string r)))
    grid;
  Buffer.add_string buffer (Printf.sprintf "%-12.0f%*s\n" lo (width - 10) (Printf.sprintf "%.0f" hi));
  Buffer.contents buffer

let convergence_plot ?(width = 50) history =
  match history with
  | [] -> "(empty history)\n"
  | points ->
      let estimates = List.map (fun p -> p.Evt.Convergence.estimate) points in
      let lo = List.fold_left Float.min (List.hd estimates) estimates in
      let hi = List.fold_left Float.max (List.hd estimates) estimates in
      let span = if hi > lo then hi -. lo else 1. in
      let buffer = Buffer.create 1024 in
      List.iter
        (fun p ->
          let bar =
            int_of_float
              (float_of_int (width - 1) *. (p.Evt.Convergence.estimate -. lo) /. span)
          in
          Buffer.add_string buffer
            (Printf.sprintf "%6d runs %12.0f |%s*\n" p.Evt.Convergence.runs
               p.Evt.Convergence.estimate (String.make bar ' ')))
        points;
      Buffer.contents buffer
