(** Structured observability for measurement campaigns.

    The evidential chain of the paper — 3,000-run campaign, i.i.d. checks,
    EVT pWCET fit — runs end-to-end; this module makes it inspectable
    without changing a bit of it.  A trace is an append-only JSONL file of
    typed events (campaign lifecycle, per-run samples, retry/fault
    activity, domain-pool chunk scheduling, i.i.d. verdicts, EVT fit
    diagnostics) plus a registry of monotonic counters rolled up across
    runs (cache/TLB/bus/DRAM activity from {!Repro_platform.Metrics},
    aggregated by the harness).

    {b Determinism contract.}  Tracing is observational only: with a trace
    attached, campaign results are bit-identical to an untraced campaign,
    and — at the default {!Runs} level — the trace {e file} itself is
    bit-identical at every [--jobs] count.  That holds because every event
    is emitted from the coordinating domain {e after} the parallel phase
    completed, in canonical (run-index) order over PR 2's deterministic
    static sharding; the buffered events are additionally sorted on flush
    as a safety net.  The {!Debug} level adds events that legitimately
    depend on the execution configuration (chunk scheduling, elapsed
    phase durations) and therefore varies across job counts — by design.

    When no trace is attached ([?trace] left out), every hook is a single
    [match] on [None]: zero allocation, zero I/O, bit-identical results. *)

(** Verbosity levels, ordered.  {!Summary}: campaign/phase lifecycle,
    i.i.d. and fit diagnostics, counters.  {!Runs} (default): adds one
    event per run plus retry/fault events.  {!Debug}: adds domain-pool
    chunk scheduling and monotonic phase durations — the only events
    whose content is {e not} invariant across [--jobs]. *)
type level = Summary | Runs | Debug

val level_of_string : string -> (level, string) result
val level_to_string : level -> string

(** Minimal JSON used by the trace schema and the measurement store
    ({!Store}): exactly the value subset the writers emit.  Floats are
    printed with [%.17g] (plus a forced decimal point), so a written float
    parses back to the same bits — the property the store's bit-identical
    resume contract rests on. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  (** Parse one JSON document; [Error] carries the offset of the defect. *)
  val of_string : string -> (t, string) result

  val member : string -> t -> t option
  val to_int : t -> int option
  val to_float : t -> float option
  val to_str : t -> string option
  val to_bool : t -> bool option
end

(** Trace event schema, version [trace/v1] (see DESIGN.md section 9).
    Every event serializes to one JSON object per line; [of_line] inverts
    [to_line] (numeric fields round-trip exactly). *)
type event =
  | Meta of { schema : string; level : string }
      (** first line of every trace file *)
  | Config of (string * string) list
      (** harness-provided key/value context: seed, tail model, ... *)
  | Campaign_start of { runs : int; resilient : bool }
  | Campaign_end of { ok : bool; failure : string option }
  | Phase_start of { phase : string }
  | Phase_end of { phase : string; wall_ns : int option }
      (** elapsed monotonic ns, never negative; only at {!Debug}
          (elapsed time is not deterministic) *)
  | Run of {
      phase : string;
      run_index : int;
      attempts : int;  (** 1 on the fault-free path *)
      outcome : string;  (** final outcome: completed/timeout/crashed/corrupted *)
      latency : float option;  (** measured cycles; [None] when quarantined *)
    }
  | Fault of { phase : string; run_index : int; attempt : int; kind : string; detail : string }
      (** one per non-completed attempt (SEU-induced timeout/crash/corruption) *)
  | Chunk of { phase : string; chunk_index : int; lo : int; len : int }
      (** static sharding decision of the domain pool ({!Debug} only) *)
  | Iid_result of {
      lb_stat : float;
      lb_p : float;
      ks_stat : float;
      ks_p : float;
      accepted : bool;
    }
  | Convergence of { converged : bool; runs_used : int }
  | Evt_fit of {
      tail : string;
      block_size : int;
      params : (string * float) list;
      gof_ks_p : float;
      gof_ad_stat : float;
    }
  | Cache_hit of { phase : string; key : string; runs : int }
      (** a phase's whole sample was served from the measurement store *)
  | Cache_miss of { phase : string; key : string }
      (** no cached chunks for this phase; a full measurement pass runs *)
  | Resume of { phase : string; key : string; cached_runs : int; total_runs : int }
      (** an interrupted campaign continues from its last complete chunk *)
  | Counter of { name : string; value : int }
      (** rolled-up counter totals, one per registered name, appended on
          flush in name order *)
  | Note of string

(** Aggregated counters registry: named monotonic totals, safe to bump
    from any domain (additions commute, so totals are deterministic at any
    job count). *)
module Counters : sig
  type t

  (** [create ?parent ()] — a fresh registry.  With [?parent], every
      addition also propagates up the (acyclic, fixed-at-creation) parent
      chain: a long-lived process scopes one registry per request for
      isolated totals while the parent keeps the process-total view. *)
  val create : ?parent:t -> unit -> t

  val add : t -> string -> int -> unit
  val incr : t -> string -> unit

  (** Totals sorted by name. *)
  val snapshot : t -> (string * int) list
end

type t

(** [ensure_dir dir] — create [dir] and any missing parents ([mkdir -p]).
    Raises [Sys_error] naming the component that could not be created. *)
val ensure_dir : string -> unit

(** [create ?level ~path ()] opens a trace that will be written to [path]
    (appending if the file exists) on {!close}/{!flush}.  [level] defaults
    to {!Runs}.  The parent directory is created if missing and the file is
    touched immediately, so an unwritable destination fails fast (with
    [Sys_error]) instead of after the campaign ran. *)
val create : ?level:level -> path:string -> unit -> t

(** [create_mem ?level ?counters ?on_event ()] opens an in-memory trace:
    no file is touched, {!flush}/{!close} are no-ops, and the buffered
    events are retrieved with {!drain}.  [level] defaults to {!Summary}.
    [counters] substitutes an external registry (typically one created
    with [Counters.create ~parent] to roll per-request totals into a
    process-wide view); [on_event] is invoked synchronously for every
    admitted event — the daemon uses it to stream phase events to
    subscribed clients while the campaign runs.  [clock] substitutes the
    monotonic nanosecond source used for phase durations (test hook for
    simulating clock steps; defaults to the process monotonic clock). *)
val create_mem :
  ?level:level ->
  ?counters:Counters.t ->
  ?on_event:(event -> unit) ->
  ?clock:(unit -> int64) ->
  unit ->
  t

val level : t -> level
val counters : t -> Counters.t

(** [enabled t lvl] — would an event of level [lvl] be recorded? *)
val enabled : t -> level -> bool

(** [emit t event] buffers [event] if the trace level admits it.  Callers
    on the coordinating domain only; worker domains communicate through
    {!Counters}. *)
val emit : t -> event -> unit

(** [phase_start t name] / [phase_end t name] bracket a pipeline phase;
    [phase_end] stamps the elapsed monotonic duration at {!Debug} level
    (immune to NTP steps; clamped to be non-negative). *)
val phase_start : t -> string -> unit

val phase_end : t -> string -> unit

(** Phase recorded by the innermost open {!phase_start} (["" ] outside any
    phase) — used by layers that emit events without knowing which phase
    the campaign put them in ({!Parallel}, {!Resilience}). *)
val current_phase : t -> string

(** [emit_sample t ~phase xs] — one {!Run} event per observation of a
    fault-free collected sample, in run order. *)
val emit_sample : t -> phase:string -> float array -> unit

(** Build an {!Iid_result} event from an i.i.d. battery verdict. *)
val iid_event : Iid.result -> event

(** [flush t] sorts the buffered events canonically (emission sequence —
    already canonical, see the determinism contract above), appends one
    {!Counter} event per registered counter, and writes everything to the
    file.  [close] is [flush]; traces hold no file descriptor between
    flushes. *)
val flush : t -> unit

val close : t -> unit

(** [drain t] — take the buffered events (canonically sorted) out of an
    in-memory trace, leaving the buffer empty.  Works on file-backed
    traces too, in which case the drained events will not be flushed. *)
val drain : t -> event list

(** {2 Serialization} *)

(** [to_line e] — the JSONL line for [e] (no trailing newline). *)
val to_line : event -> string

(** The JSON value behind {!to_line} — for embedding events inside a
    larger document (the serve protocol nests them in response lines). *)
val json_of_event : event -> Json.t

val event_of_json : Json.t -> (event, string) result

(** [of_line s] parses one JSONL line back into an event. *)
val of_line : string -> (event, string) result

(** [read_file path] parses a whole trace file, failing on the first
    malformed line. *)
val read_file : string -> (event list, string) result

(** {2 Digest}

    [summarize events] renders the human-readable digest behind
    [mbpta_cli trace summary]: per-phase run counts, simulated-cycle
    totals and wall time (when traced at {!Debug}), fault/retry
    histograms, i.i.d. and fit verdicts, counter totals. *)
val summarize : event list -> string
