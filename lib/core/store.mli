(** Persistent, content-addressed measurement store with campaign
    checkpoint/resume, per-line integrity checksums, shard sessions and an
    integrity-verified merge.

    The paper's protocol needs 3,000+ end-to-end simulator runs per
    configuration; at production scale campaigns must survive interruption
    and a re-analysis must not re-simulate measurements that already exist
    — the same reason fault-tolerant satellite software checkpoints to
    bound re-execution cost.  This module is that checkpoint layer, and —
    since PR 6 — the merge substrate for distributed campaigns: shard
    workers write chunk-aligned spans of the run space into their own
    stores, and {!merge} recombines them into the byte-identical
    single-process record.

    {b Content addressing.}  A campaign record is addressed by {!key}: a
    stable digest of the full measurement configuration (platform config,
    scenario, seeds, run count, SEU/fault settings) plus {!schema_version}
    and the checkpoint chunk size.  Anything that could change a stored
    byte changes the key, so records never need invalidation — a stale
    configuration simply hashes somewhere else.  Analysis-only options
    (tail model, gates, engineering factor) are deliberately {e not} part
    of the key: re-analysing the same measurements is a pure cache hit.

    {b Record format.}  One JSONL file per key, [<key>.jsonl] under the
    store root:

    - line 1 — [meta]: schema, key, runs, resilient flag, chunk size,
      optional shard span, and the full config for human inspection
      ([cache ls]);
    - then [chunk] (fault-free: measured cycles as little-endian IEEE-754
      bit patterns, base64-framed — bit-exact by construction, including
      [-0.], subnormals, infinities and NaN payloads) or [rchunk]
      (resilient: per-run attempt trails as {!Trace.Json} text) lines,
      appended at every checkpoint barrier in deterministic ascending
      order per phase.

    Every sealed line ([store/v3] and [store/v2]) ends with an integrity
    trailer [,"sum":"<md5-hex>"] — the digest of the line with the trailer
    removed.  Verification is byte-exact string surgery (no JSON
    round-trip), so a flipped bit, a mid-record truncation or a
    hand-edited value is caught and classified as {e tampering}, distinct
    from a {e torn tail} (a kill mid-write tears at most the last line;
    the valid prefix stays trustworthy and resumable).  Tampered records
    are refused by resume, reported [Corrupt] by [cache verify], and
    quarantined — renamed to [<file>.quarantined] — by {!merge}, never
    merged.  Legacy [store/v2] (text float payloads) and [store/v1] (no
    checksums) records remain readable by [ls]/[verify]/[export] but hash
    to different keys and are skipped by {!merge}.

    Each phase's chunks must form a contiguous prefix of the fixed chunk
    layout (starting at the record's shard lower bound); the first
    malformed or out-of-place line invalidates that line and everything
    after it, never the valid prefix before it.

    {b Streaming reads.}  No whole-record read exists anywhere in this
    module: records are scanned line by line, sessions keep a byte-range
    index instead of decoded payloads and re-read chunks on demand, and
    {!merge}/{!export} copy chunk byte ranges through a bounded buffer —
    so open, warm query, verify, merge and export all run in O(chunk)
    memory however large the campaign.  A per-record sidecar
    ([<key>.jsonl.idx]) caches the byte layout for header-only listings
    and warm opens; it is a derived cache, honored only when it stamps the
    record's exact byte size, mtime and meta digest, and rebuilt from the
    record otherwise.  The trust model is git's index: the sidecar is only
    ever written over chunks whose seals were verified (by the writer at
    append time, or by the full scan that rebuilt it), so a session
    adopting a stamped sidecar decodes chunks without re-hashing each line
    — structural checks still catch a record swapped behind the session,
    and [cache verify] remains the offline deep check.

    {b Determinism contract.}  Chunk layout is a pure function of the run
    count (never of [--jobs], the shard count, or dispatch batching), each
    run's value is a pure function of its index (the seed-derivation
    contract), and floats round-trip bit-exact.  Hence a campaign resumed
    from any valid prefix — served entirely from cache, or merged together
    from shard records — returns samples bit-identical to a cold
    sequential run at any job count. *)

val schema_version : string
(** ["store/v3"] — bumped on any record-format change, which (being part
    of the digest) retires every old record automatically. *)

val default_chunk_size : int
(** Runs per checkpoint chunk (256): small enough that an interrupted
    3,000-run campaign loses little work, large enough that the per-chunk
    fsync/append cost disappears next to simulation time.  Shard spans are
    aligned on these boundaries. *)

exception Injected_crash of { appended_chunks : int }
(** Raised by the crash-injection test hook: when a session's fail-after
    budget (the [MBPTA_STORE_FAIL_AFTER_CHUNKS] environment variable, or
    {!set_fail_after}) is exhausted, the next checkpoint append raises
    instead of writing — a deterministic mid-campaign kill for the resume
    tests, bench, and CI smoke.  {!merge} takes the same budget as an
    explicit argument to simulate a coordinator killed mid-merge. *)

(** {1 Store root} *)

type t
(** A store root directory. *)

val open_root : dir:string -> t
(** Create [dir] (and parents) if missing.  Raises [Sys_error]. *)

val dir : t -> string

val key : ?chunk_size:int -> (string * string) list -> string
(** Stable content address of a campaign configuration: a hex digest of
    {!schema_version}, the chunk size, and the config pairs in canonical
    (name-sorted) order — so the digest does not depend on the order the
    harness assembled the list in. *)

val key_v2 : ?chunk_size:int -> (string * string) list -> string
(** The address the same configuration had under the [store/v2] schema —
    exposed so tests and tooling can locate (read-only) v2 records. *)

val key_v1 : ?chunk_size:int -> (string * string) list -> string
(** The address the same configuration had under the [store/v1] schema —
    exposed so tests and tooling can locate (read-only) v1 records. *)

(** {1 Format internals — exposed for tests and tooling} *)

val seal : string -> string
(** Append the integrity trailer to a JSON object line: [{...}] becomes
    [{...,"sum":"<md5-hex>"}] where the digest covers the line with the
    trailer removed.  This is the exact sealing sessions apply to every
    line they write; exposed so tests can fabricate legacy-schema records
    without exporting the writer. *)

(** Little-endian IEEE-754 binary float payloads — the [store/v3] chunk
    encoding.  [encode] maps each float to its 8-byte bit pattern
    ([Int64.bits_of_float], little-endian) and base64-frames the result;
    [decode] inverts it exactly, so every value — [-0.], subnormals,
    infinities, NaN payloads — round-trips bit-for-bit by construction. *)
module F64 : sig
  val encode : float array -> string
  val decode : string -> n:int -> (float array, string) result
end

(** {1 Sessions} *)

(** One measurement attempt as persisted — mirrors
    {!Resilience.outcome} without depending on it (the supervisor converts
    at its boundary). *)
type outcome =
  | Completed of float
  | Timeout of string
  | Crashed of string
  | Corrupted of string

type trail = outcome list
(** One run's attempt trail, attempt 0 first. *)

type session
(** An open campaign record.  The session holds a byte-range index of the
    record's valid chunks — never the decoded payloads — and re-reads
    chunks on demand, so session memory is O(chunk) regardless of
    campaign size; appends go to the record file (flushed at every
    checkpoint barrier).  {!close} refreshes the [.idx] sidecar. *)

val open_session :
  ?chunk_size:int ->
  ?resume:bool ->
  ?sync:bool ->
  ?shard:int * int ->
  t ->
  key:string ->
  config:(string * string) list ->
  runs:int ->
  resilient:bool ->
  (session, string) result
(** Open (or create) the record for [key].

    - no record on disk — fresh session, meta line written immediately
      (an unwritable store fails fast);
    - complete record — every chunk served from cache, regardless of
      [resume]; with a sidecar stamping the record's exact size, mtime
      and meta digest, the open adopts the cached byte layout without
      scanning the record at all — O(index), not O(record);
    - partial or tail-torn record — with [resume = true] (default
      [false]) the valid prefix is kept (the file is rewritten to exactly
      that prefix) and the campaign continues from the first missing
      chunk; with [resume = false] the record is discarded and the
      campaign starts cold;
    - tampered record (checksum failure) — [Error] under [resume] (the
      prefix is hostile input; quarantine or [cache gc] it), discarded and
      restarted cold otherwise;
    - meta mismatch (foreign schema, key/config/runs/resilient/chunk-size/
      shard disagreement) — [Error]: the record is not touched; inspect it
      with [cache verify] / reclaim it with [cache gc].

    [sync] (default [false]) extends every checkpoint barrier with an
    [fsync], so an acknowledged chunk survives power loss, not just a
    process kill; off by default because the store's durability unit is the
    chunk and campaigns tolerate losing the tail chunk.

    [shard] restricts the session to the span [lo, hi) of the run space: a
    shard worker's record holds exactly the chunks of that span (the meta
    line carries the span; chunk lines are byte-identical to the
    single-process record's chunks at the same offsets).  [lo] must be
    chunk-aligned and [hi] chunk-aligned or equal to [runs]; the span
    [0, runs) is a full session (no shard fields — [--shard 1/1] writes the
    single-process record).  Raises [Invalid_argument] on a misaligned or
    out-of-range span.

    {b Writer exclusion.}  Before parsing or truncating anything, the
    session takes a non-blocking exclusive advisory lock ([fcntl], with
    [O_CLOEXEC]) on the sidecar file [<key>.jsonl.lock]; a contended key
    yields [Error] naming the holding pid — two writers appending to one
    record would interleave its chunks.  The lock is released on {!close},
    dies with the process (a killed campaign never leaves a stale lock),
    and is dropped immediately when the record turns out complete, so any
    number of warm readers share a key freely.  Sessions of one process
    exclude each other the same way.

    Raises [Sys_error] when the record file cannot be created. *)

val close : session -> unit
(** Flush and close the record file.  Idempotent. *)

val session_key : session -> string
val chunk_size : session -> int

val shard_span : session -> int * int
(** The session's span: [(0, runs)] for a full session. *)

val cached_runs : session -> phase:string -> int
(** Runs of [phase] served by the record's valid prefix (span-relative:
    a shard session counts runs of its own span). *)

val complete : session -> phase:string -> bool

val set_fail_after : session -> int -> unit
(** Crash-injection hook: allow this many more checkpoint appends, then
    raise {!Injected_crash} (see the exception above). *)

(** {1 Chunk-granular access}

    The lookup/persist pair handed to {!Parallel.init_checkpointed}.
    [lookup] only serves exact layout matches; [persist] appends at the
    record's write frontier for that phase (out-of-order appends and
    appends outside the session span are rejected with [Invalid_argument]
    — the checkpoint driver calls in ascending order by construction).

    [persist] additionally polls the {!Shutdown} flag {e after} the
    chunk's flush: a SIGINT/SIGTERM (with {!Shutdown.install}ed handlers)
    stops the campaign at the next checkpoint barrier by raising
    {!Shutdown.Interrupted}, leaving the record a clean, resumable prefix
    — never a torn tail. *)

val lookup : session -> phase:string -> lo:int -> len:int -> float array option
val persist : session -> phase:string -> lo:int -> float array -> unit
val lookup_trails : session -> phase:string -> lo:int -> len:int -> trail array option
val persist_trails : session -> phase:string -> lo:int -> trail array -> unit

(** {1 Collect drivers} *)

val collect :
  ?trace:Trace.t ->
  ?jobs:int ->
  ?dispatch:Parallel.dispatch ->
  session ->
  phase:string ->
  int ->
  (int -> float) ->
  float array
(** [collect session ~phase runs f] — the checkpointed fault-free
    measurement pass: cached chunks are served without calling [f],
    missing chunks are computed on the domain pool and appended at their
    checkpoint barrier.  A shard session walks only its span and returns
    the span's values ([hi - lo] of them; a full session returns all
    [runs]).  Emits one {!Trace.Cache_hit} / {!Trace.Resume} /
    {!Trace.Cache_miss} event and bumps the [cache.runs_cached] /
    [cache.runs_simulated] counters when a trace is attached.  [dispatch]
    sets the scheduling granularity (see {!Parallel.dispatch}; default
    [`Chunk]) — samples and record bytes are invariant under it.

    A fully-cached fault-free span skips the checkpoint walk entirely:
    every chunk decodes independently from its indexed byte range, fanned
    out over the domain pool into one preallocated sample array (the
    result is the same ascending concatenation the sequential walk
    produces, and [f] is never called).  Raises [Invalid_argument] if
    [runs] disagrees with the session. *)

val collect_trails :
  ?trace:Trace.t ->
  ?jobs:int ->
  ?dispatch:Parallel.dispatch ->
  session ->
  phase:string ->
  int ->
  (int -> trail) ->
  trail array
(** Resilient-campaign counterpart of {!collect}: per-run attempt trails
    instead of bare cycle counts. *)

(** {1 Inspection — the [cache] subcommand} *)

type status =
  | Complete  (** every phase chunk present and valid *)
  | Partial of string  (** valid but unfinished; the payload says how far it got *)
  | Corrupt of string  (** first defect found; the record is unusable as-is *)

type entry = {
  file : string;  (** absolute path of the record *)
  entry_key : string;  (** key from the filename *)
  runs : int;
  resilient : bool;
  config : (string * string) list;
  phases : (string * int) list;  (** phase -> runs covered by valid chunks *)
  shard : (int * int) option;  (** [Some (lo, hi)] for a shard record *)
  bytes : int;
  status : status;
}

val ls : ?deep:bool -> t -> entry list
(** List every [*.jsonl] record under the root, sorted by key, followed by
    any [*.jsonl.quarantined] files (always [Corrupt]).

    With [deep = true] (the default, what [cache verify] uses) every
    record is scanned whole: per-line checksums, payload decode, and
    re-deriving the digest from the stored config to compare with the
    filename — a bit-flipped, truncated or foreign record is [Corrupt]; a
    record torn by a kill mid-write is [Partial] (its valid prefix is
    resumable).

    With [deep = false] (what [cache ls] uses) a record with a fresh
    [.idx] sidecar is answered from its meta line and the sidecar alone —
    O(header) per record; records without a fresh sidecar fall back to a
    shallow scan (checksums verified, payloads length-checked but not
    decoded) that rebuilds the sidecar for next time.  The header-only
    path can miss a payload-level defect that postdates the sidecar;
    integrity verdicts belong to [deep]. *)

val gc : ?partial:bool -> t -> entry list * int
(** Remove corrupt records (including quarantined files) — and, with
    [partial = true], incomplete ones (which are otherwise kept: they are
    resumable).  Returns the removed entries and the bytes freed. *)

val pp_entry : Format.formatter -> entry -> unit

(** {1 Merge and export — distributed campaigns} *)

type merge_report = {
  records_merged : int;  (** destination records written or replaced *)
  chunks_merged : int;  (** chunk lines written into destination records *)
  coverage : (string * int) list;
      (** per key: contiguous runs covered from 0 (the min across phases)
          after the merge *)
  contributed : string list;
      (** record files (sources or the prior destination) whose chunks made
          it into a merged record *)
  quarantined : (string * string) list;
      (** record files renamed to [.quarantined], with the integrity
          failure that condemned them *)
  skipped : (string * string) list;  (** e.g. v1 records, left in place *)
}

val merge :
  ?trace:Trace.t ->
  ?fail_after:int ->
  ?sync:bool ->
  src:t list ->
  t ->
  (merge_report, string) result
(** [merge ~src dst] — combine every record found in the source stores
    (and any record already in [dst]) into [dst], key by key:

    - candidates failing any integrity check — line checksum, digest vs
      filename, metadata agreement across siblings, byte-identical
      duplicate chunks — are renamed to [<file>.quarantined] and excluded
      ({e never} merged);
    - surviving chunks are composed into the maximal contiguous prefix of
      the global chunk layout per phase: a gap (an unrecoverable shard)
      truncates coverage there — partial coverage, never silent wrong data;
    - each destination record is streamed chunk by chunk out of the source
      files into a temp file and renamed into place — peak memory is one
      copy buffer, constant in campaign size — so a coordinator killed
      mid-merge leaves the previous record intact and rerunning the merge
      converges (an already-merged destination is detected from chunk
      digests without re-reading any payload, and left untouched).

    The merged record is byte-identical to the record a single-process
    campaign writes (chunk lines carry no shard information and the merged
    meta line drops the span).  With [trace] attached, bumps
    [cache.records_quarantined] / [cache.records_merged] /
    [cache.chunks_merged] and emits a {!Trace.Note} per quarantined file.
    [fail_after] is the crash-injection budget in chunk lines (raises
    {!Injected_crash}); [sync] fsyncs each temp file before the rename.
    [Error] only when a store directory itself is unreadable or unwritable
    — per-record trouble is reported, not fatal. *)

val export : t -> key:string -> (string, string) result
(** The validated contents (meta line plus valid chunk prefix, verbatim) of
    the record for [key] — for shipping a shard store's record over a
    copy-only channel.  [Error] on a missing, unreadable or tampered
    record. *)

val export_to : t -> key:string -> out_channel -> (unit, string) result
(** {!export} streamed straight to a channel in bounded pieces — the
    constant-memory path for million-run records ([cache export] uses
    it).  The record is validated in full before the first byte is
    written. *)
