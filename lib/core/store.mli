(** Persistent, content-addressed measurement store with campaign
    checkpoint/resume.

    The paper's protocol needs 3,000+ end-to-end simulator runs per
    configuration; at production scale campaigns must survive interruption
    and a re-analysis must not re-simulate measurements that already exist
    — the same reason fault-tolerant satellite software checkpoints to
    bound re-execution cost.  This module is that checkpoint layer.

    {b Content addressing.}  A campaign record is addressed by {!key}: a
    stable digest of the full measurement configuration (platform config,
    scenario, seeds, run count, SEU/fault settings) plus {!schema_version}
    and the checkpoint chunk size.  Anything that could change a stored
    byte changes the key, so records never need invalidation — a stale
    configuration simply hashes somewhere else.  Analysis-only options
    (tail model, gates, engineering factor) are deliberately {e not} part
    of the key: re-analysing the same measurements is a pure cache hit.

    {b Record format.}  One JSONL file per key, [<key>.jsonl] under the
    store root, reusing {!Trace.Json} (bit-exact float round-trip):

    - line 1 — [meta]: schema, key, runs, resilient flag, chunk size, and
      the full config for human inspection ([cache ls]);
    - then [chunk] (fault-free: an array of measured cycles) or [rchunk]
      (resilient: per-run attempt trails) lines, appended at every
      checkpoint barrier in deterministic ascending order per phase.

    Each phase's chunks must form a contiguous prefix of the fixed chunk
    layout; the first malformed or out-of-place line (a campaign killed
    mid-write, a corrupted disk block) invalidates that line and everything
    after it, never the valid prefix before it.

    {b Determinism contract.}  Chunk layout is a pure function of the run
    count (never of [--jobs]), each run's value is a pure function of its
    index (the seed-derivation contract), and floats round-trip bit-exact.
    Hence a campaign resumed from any valid prefix — or served entirely
    from cache — returns samples bit-identical to a cold sequential run at
    any job count. *)

val schema_version : string
(** ["store/v1"] — bumped on any record-format change, which (being part
    of the digest) retires every old record automatically. *)

val default_chunk_size : int
(** Runs per checkpoint chunk (256): small enough that an interrupted
    3,000-run campaign loses little work, large enough that the per-chunk
    fsync/append cost disappears next to simulation time. *)

exception Injected_crash of { appended_chunks : int }
(** Raised by the crash-injection test hook: when a session's fail-after
    budget (the [MBPTA_STORE_FAIL_AFTER_CHUNKS] environment variable, or
    {!set_fail_after}) is exhausted, the next checkpoint append raises
    instead of writing — a deterministic mid-campaign kill for the resume
    tests, bench, and CI smoke. *)

(** {1 Store root} *)

type t
(** A store root directory. *)

val open_root : dir:string -> t
(** Create [dir] (and parents) if missing.  Raises [Sys_error]. *)

val dir : t -> string

val key : ?chunk_size:int -> (string * string) list -> string
(** Stable content address of a campaign configuration: a hex digest of
    {!schema_version}, the chunk size, and the config pairs in canonical
    (name-sorted) order — so the digest does not depend on the order the
    harness assembled the list in. *)

(** {1 Sessions} *)

(** One measurement attempt as persisted — mirrors
    {!Resilience.outcome} without depending on it (the supervisor converts
    at its boundary). *)
type outcome =
  | Completed of float
  | Timeout of string
  | Crashed of string
  | Corrupted of string

type trail = outcome list
(** One run's attempt trail, attempt 0 first. *)

type session
(** An open campaign record: cached chunks parsed into memory, appends go
    to the record file (flushed at every checkpoint barrier). *)

val open_session :
  ?chunk_size:int ->
  ?resume:bool ->
  t ->
  key:string ->
  config:(string * string) list ->
  runs:int ->
  resilient:bool ->
  (session, string) result
(** Open (or create) the record for [key].

    - no record on disk — fresh session, meta line written immediately
      (an unwritable store fails fast);
    - complete record — every chunk served from cache, regardless of
      [resume];
    - partial or tail-corrupt record — with [resume = true] (default
      [false]) the valid prefix is kept (the file is rewritten to exactly
      that prefix) and the campaign continues from the first missing
      chunk; with [resume = false] the record is discarded and the
      campaign starts cold;
    - meta mismatch (foreign schema, key/config/runs/resilient/chunk-size
      disagreement) — [Error]: the record is not touched; inspect it with
      [cache verify] / reclaim it with [cache gc].

    Raises [Sys_error] when the record file cannot be created. *)

val close : session -> unit
(** Flush and close the record file.  Idempotent. *)

val session_key : session -> string
val chunk_size : session -> int

val cached_runs : session -> phase:string -> int
(** Runs of [phase] served by the record's valid prefix. *)

val complete : session -> phase:string -> bool

val set_fail_after : session -> int -> unit
(** Crash-injection hook: allow this many more checkpoint appends, then
    raise {!Injected_crash} (see the exception above). *)

(** {1 Chunk-granular access}

    The lookup/persist pair handed to {!Parallel.init_checkpointed}.
    [lookup] only serves exact layout matches; [persist] appends at the
    record's write frontier for that phase (out-of-order appends are
    rejected with [Invalid_argument] — the checkpoint driver calls in
    ascending order by construction). *)

val lookup : session -> phase:string -> lo:int -> len:int -> float array option
val persist : session -> phase:string -> lo:int -> float array -> unit
val lookup_trails : session -> phase:string -> lo:int -> len:int -> trail array option
val persist_trails : session -> phase:string -> lo:int -> trail array -> unit

(** {1 Collect drivers} *)

val collect :
  ?trace:Trace.t -> ?jobs:int -> session -> phase:string -> int -> (int -> float) -> float array
(** [collect session ~phase runs f] — the checkpointed fault-free
    measurement pass: cached chunks are served without calling [f],
    missing chunks are computed on the domain pool and appended at their
    checkpoint barrier.  Emits one {!Trace.Cache_hit} / {!Trace.Resume} /
    {!Trace.Cache_miss} event and bumps the [cache.runs_cached] /
    [cache.runs_simulated] counters when a trace is attached.  Raises
    [Invalid_argument] if [runs] disagrees with the session. *)

val collect_trails :
  ?trace:Trace.t -> ?jobs:int -> session -> phase:string -> int -> (int -> trail) -> trail array
(** Resilient-campaign counterpart of {!collect}: per-run attempt trails
    instead of bare cycle counts. *)

(** {1 Inspection — the [cache] subcommand} *)

type status =
  | Complete  (** every phase chunk present and valid *)
  | Partial of string  (** valid but unfinished; the payload says how far it got *)
  | Corrupt of string  (** first defect found; the record is unusable as-is *)

type entry = {
  file : string;  (** absolute path of the record *)
  entry_key : string;  (** key from the filename *)
  runs : int;
  resilient : bool;
  config : (string * string) list;
  phases : (string * int) list;  (** phase -> runs covered by valid chunks *)
  bytes : int;
  status : status;
}

val ls : t -> entry list
(** Parse and fully validate every [*.jsonl] record under the root, sorted
    by key.  Validation includes re-deriving the digest from the stored
    config and comparing it with the filename — a record whose content no
    longer matches its address is [Corrupt]. *)

val gc : ?partial:bool -> t -> entry list * int
(** Remove corrupt records — and, with [partial = true], incomplete ones
    (which are otherwise kept: they are resumable).  Returns the removed
    entries and the bytes freed. *)

val pp_entry : Format.formatter -> entry -> unit
