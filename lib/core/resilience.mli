(** Resilient campaign supervision for fault-prone platforms.

    On a radiation-exposed target a measurement run can do worse than return
    a number: it can exceed its watchdog budget (a register upset sent it
    into a loop), trap (an upset produced a wild address), or complete with
    a corrupted result.  This supervisor makes the measurement protocol
    survive all of that: every run's outcome is {e classified}, transient
    failures are retried under a bounded deterministic reseed policy, runs
    that keep failing are quarantined, and the campaign proceeds — with an
    exact account of what was dropped and why — as long as a configurable
    fraction of runs survives.

    The module is workload-agnostic, like {!Protocol}: the harness supplies
    [measure ~run_index ~attempt], owning seeding and fault injection; the
    [attempt] number lets it derive a fresh (but deterministic) platform and
    fault seed for each retry while keeping the run's input scenario
    fixed. *)

(** Classified result of one measurement attempt. *)
type outcome =
  | Completed of float  (** execution time, cycles *)
  | Timeout of { detail : string }
      (** watchdog budget exceeded or executor runaway — the run diverged *)
  | Crashed of { detail : string }  (** the run trapped (e.g. wild access) *)
  | Corrupted of { detail : string }
      (** the run completed but its output failed validation *)

type policy = {
  max_retries : int;  (** extra attempts allowed per run after the first *)
  max_total_retries : int option;
      (** campaign-wide retry budget; [None] = unbounded.  Exhausting it
          aborts with [`Retry_budget_exhausted] — the signal that the fault
          rate is far beyond what retrying can absorb. *)
  min_survival : float;
      (** fraction of runs (in [[0, 1]]) that must yield a measurement for
          the campaign to proceed *)
}

(** [{ max_retries = 2; max_total_retries = None; min_survival = 0.9 }] *)
val default_policy : policy

type attempt = { attempt : int; outcome : outcome }

(** Per-run audit trail; only runs with at least one failed attempt are
    retained (clean runs would make the log 3,000 entries of noise). *)
type record = { run_index : int; attempts : attempt list; survived : bool }

type report = {
  sample : float array;  (** surviving measurements, in run order *)
  records : record list;  (** faulted runs, by run index *)
  total_runs : int;
  survivors : int;
  retried_runs : int;  (** runs that needed at least one retry *)
  dropped_runs : int;  (** runs quarantined after exhausting retries *)
  total_retries : int;
}

type error =
  | Too_few_survivors of { survivors : int; required : int; total : int }
  | Retry_budget_exhausted of { spent : int; limit : int; runs_completed : int }
  | Invalid_policy of string

(** [supervise ?jobs ?trace ~policy ~runs ~measure] drives the whole
    campaign.  Rejects [runs < 1], [max_retries < 0] and [min_survival]
    outside [[0, 1]] with [Invalid_policy] (a real guard, not an [assert]).

    With [trace] attached, every run is recorded as a {!Trace.Run} event
    and every failed attempt as a {!Trace.Fault} event, emitted from the
    sequential accounting phase so the trace is in canonical run order
    (and therefore bit-identical) at any job count.

    Runs execute on a chunked domain pool ({!Parallel}; [jobs] defaults to
    [Domain.recommended_domain_count ()]).  Provided [measure] obeys the
    determinism contract — its outcome is a pure function of
    [(run_index, attempt)], which {!Repro_tvca.Experiment}'s seed derivation
    guarantees — the report is {e bit-identical} for every [jobs] value;
    [jobs:1] spawns no domains and is the sequential reference.  The
    campaign-wide retry budget keeps its sequential meaning: it is replayed
    over the attempt trails in run order, so [Retry_budget_exhausted] carries
    the same fields at any job count (under [jobs > 1], runs past the point
    of exhaustion may have been measured speculatively — wasted work, never
    a different answer).

    With [store] attached — an open {!Store.session} (opened with
    [resilient:true] and the same run count) plus the phase name to file
    chunks under — whole attempt trails are checkpointed at every chunk
    barrier and previously recorded trails are replayed instead of
    re-measured.  Because the accounting phase runs over the trails either
    way, a resumed or fully cached campaign reproduces the report (sample,
    records, budget arithmetic) bit-identically.

    [dispatch] (store-backed runs only) sets the scheduling granularity of
    the checkpoint walk — see {!Parallel.dispatch}; purely operational,
    never a sample or accounting bit. *)
val supervise :
  ?jobs:int ->
  ?trace:Trace.t ->
  ?dispatch:Parallel.dispatch ->
  ?store:Store.session * string ->
  policy:policy ->
  runs:int ->
  measure:(run_index:int -> attempt:int -> outcome) ->
  unit ->
  (report, error) Stdlib.result

(** [trail ~policy ~measure run_index] — one run measured to completion or
    quarantine (local retries up to [policy.max_retries]), as the attempt
    trail the measurement store persists.  This is exactly what
    {!supervise}'s measurement phase checkpoints; shard workers use it to
    collect trails without the accounting phase, which the coordinator's
    final campaign replays over the merged record. *)
val trail :
  policy:policy ->
  measure:(run_index:int -> attempt:int -> outcome) ->
  int ->
  Store.trail

val pp_outcome : Format.formatter -> outcome -> unit
val pp_error : Format.formatter -> error -> unit

(** Fault/retry summary: headline counters plus a per-run table of every
    faulted run (attempt-by-attempt outcomes and final status). *)
val pp_report : Format.formatter -> report -> unit
