type result = {
  high_watermark : float;
  engineering_factor : float;
  bound : float;
  sample_size : int;
}

let bound ?(engineering_factor = 1.5) xs =
  if Array.length xs = 0 then invalid_arg "Mbta.bound: empty sample";
  if not (engineering_factor >= 1.) then
    invalid_arg
      (Printf.sprintf "Mbta.bound: engineering_factor must be >= 1 (got %g)"
         engineering_factor);
  let high_watermark = Array.fold_left Float.max xs.(0) xs in
  {
    high_watermark;
    engineering_factor;
    bound = high_watermark *. engineering_factor;
    sample_size = Array.length xs;
  }

let sensitivity xs ~factors =
  List.map (fun f -> (f, (bound ~engineering_factor:f xs).bound)) factors

let pp ppf r =
  Format.fprintf ppf "MBTA bound: HWM=%.0f x %.2f = %.0f (n=%d)" r.high_watermark
    r.engineering_factor r.bound r.sample_size
