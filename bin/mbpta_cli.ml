(* mbpta_cli: command-line front end to the whole reproduction.

   Subcommands:
     analyze      full campaign (DET + RAND, i.i.d., pWCET, comparison)
     iid          i.i.d. verification only
     convergence  pWCET-estimate convergence study
     paths        per-path analysis (groups runs by execution path)
     qualify      PRNG qualification battery
     plot         Figure 2 exceedance plot only

   Examples:
     dune exec bin/mbpta_cli.exe -- analyze --runs 3000
     dune exec bin/mbpta_cli.exe -- iid --runs 1000 --seed 7
     dune exec bin/mbpta_cli.exe -- qualify --algorithm lfsr64 *)

module P = Repro_platform
module T = Repro_tvca
module M = Repro_mbpta
module E = Repro_evt
module Prng = Repro_rng.Prng
module Quality = Repro_rng.Quality
open Cmdliner

(* --------------------------- common options --------------------------- *)

let runs_arg =
  let doc = "Number of measurement runs per platform configuration." in
  Arg.(value & opt int 3000 & info [ "r"; "runs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Base seed of the campaign (all randomness derives from it)." in
  Arg.(value & opt int64 2017L & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let frames_arg =
  let doc = "Frames (task activations) per measured run." in
  Arg.(value & opt int T.Mission.default_frames & info [ "frames" ] ~docv:"K" ~doc)

let tail_arg =
  let tails =
    [
      ("gumbel", M.Protocol.Gumbel);
      ("gev", M.Protocol.Gev);
      ("pot", M.Protocol.Pot);
      ("exp", M.Protocol.Exponential_pot);
    ]
  in
  let doc = "Tail model: gumbel (default), gev, pot or exp." in
  Arg.(value & opt (enum tails) M.Protocol.Gumbel & info [ "tail" ] ~docv:"MODEL" ~doc)

let no_gates_arg =
  let doc = "Report the i.i.d./convergence verdicts but do not fail on them." in
  Arg.(value & flag & info [ "no-gates" ] ~doc)

let jobs_arg =
  let doc =
    "Measurement runs execute on $(docv) domains (0 = one per core).  Per-run seed \
     derivation makes the samples and the analysis bit-identical at any job count; \
     --jobs 1 is the sequential reference."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let resolve_jobs = function
  | 0 -> M.Parallel.default_jobs ()
  | j when j >= 1 -> j
  | j ->
      Format.eprintf "mbpta_cli: --jobs must be >= 0 (got %d)@." j;
      exit 2

(* Parallel counterpart of [Experiment.collect] for the single-platform
   subcommands; sound because [Experiment.measure] is a pure function of the
   run index. *)
let collect_par ~jobs exp ~runs =
  M.Parallel.init ~jobs runs (fun i -> T.Experiment.measure exp ~run_index:i)

let experiment ~config ~seed ~frames =
  T.Experiment.create ~frames ~config ~base_seed:seed ()

let options_of ~tail ~no_gates =
  {
    M.Protocol.default_options with
    M.Protocol.tail;
    M.Protocol.gate_on_iid = not no_gates;
    M.Protocol.check_convergence = not no_gates;
  }

(* ------------------------------ analyze ------------------------------ *)

(* Map the experiment's classified fault outcomes onto the supervisor's
   outcome type (the tvca and mbpta libraries deliberately do not know
   about each other; this glue is the only place both sides meet). *)
let resilience_outcome_of = function
  | T.Experiment.Completed { metrics; _ } ->
      M.Resilience.Completed (float_of_int (P.Metrics.cycles metrics))
  | T.Experiment.Watchdog { cycles; budget; _ } ->
      M.Resilience.Timeout
        { detail = Printf.sprintf "watchdog fired at %d cycles (budget %d)" cycles budget }
  | T.Experiment.Runaway { program; _ } ->
      M.Resilience.Timeout { detail = "runaway execution of " ^ program }
  | T.Experiment.Crashed { detail; _ } -> M.Resilience.Crashed { detail }
  | T.Experiment.Corrupted { worst_error; _ } ->
      M.Resilience.Corrupted
        { detail = Printf.sprintf "worst output error %g" worst_error }

let analyze runs seed frames tail no_gates factor csv_dir seu_rate watchdog_budget
    max_retries min_survival jobs =
  let jobs = resolve_jobs jobs in
  let det = experiment ~config:P.Config.deterministic ~seed ~frames in
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let input =
    {
      M.Campaign.runs;
      measure_det = (fun i -> T.Experiment.measure det ~run_index:i);
      measure_rand = (fun i -> T.Experiment.measure rand ~run_index:i);
      options = options_of ~tail ~no_gates;
      engineering_factor = factor;
    }
  in
  if seu_rate < 0. then begin
    Format.eprintf "mbpta_cli: --seu-rate must be >= 0 (got %g)@." seu_rate;
    exit 2
  end;
  let result =
    if seu_rate > 0. || watchdog_budget <> None then begin
      let fault = T.Experiment.fault_config ~seu_rate ?watchdog_budget () in
      let measure exp ~run_index ~attempt =
        resilience_outcome_of (T.Experiment.run_faulty exp ~fault ~attempt ~run_index ())
      in
      let policy = { M.Resilience.default_policy with max_retries; min_survival } in
      M.Campaign.run_resilient ~jobs
        (M.Campaign.resilient_input ~policy ~base:input ~measure_det_outcome:(measure det)
           ~measure_rand_outcome:(measure rand) ())
    end
    else M.Campaign.run ~jobs input
  in
  match result with
  | Error f ->
      Format.eprintf "campaign failed: %a@." M.Protocol.pp_failure f;
      1
  | Ok campaign ->
      print_endline (M.Campaign.render campaign);
      (match csv_dir with
      | None -> ()
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let write name contents =
            M.Export.to_file ~path:(Filename.concat dir name) contents
          in
          write "det_samples.csv"
            (M.Export.samples_csv ~label:"DET" campaign.M.Campaign.det_sample);
          write "rand_samples.csv"
            (M.Export.samples_csv ~label:"RAND" campaign.M.Campaign.rand_sample);
          write "rand_ecdf.csv" (M.Export.ecdf_csv campaign.M.Campaign.rand_sample);
          (match campaign.M.Campaign.analysis with
          | Ok a -> write "pwcet_curve.csv" (M.Export.curve_csv a.M.Protocol.curve)
          | Error _ -> ());
          (match campaign.M.Campaign.comparison with
          | Some c -> write "comparison.csv" (M.Export.comparison_csv c)
          | None -> ());
          Format.printf "CSV data written to %s/@." dir);
      (* measurements succeeded (samples are printed/exported either way),
         but a failed analysis is still a failed campaign to the caller *)
      (match campaign.M.Campaign.analysis with Ok _ -> 0 | Error _ -> 1)

let analyze_cmd =
  let factor =
    let doc = "Engineering factor of the industrial MBTA baseline." in
    Arg.(value & opt float 1.5 & info [ "engineering-factor" ] ~docv:"F" ~doc)
  in
  let csv_dir =
    let doc = "Also write samples/ECDF/curve/comparison CSV files to $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv-dir" ] ~docv:"DIR" ~doc)
  in
  let seu_rate =
    let doc =
      "Inject single-event upsets at $(docv) expected upsets per million retired \
       instructions (0 disables injection; the pipeline is then bit-identical to the \
       fault-free one)."
    in
    Arg.(value & opt float 0. & info [ "seu-rate" ] ~docv:"RATE" ~doc)
  in
  let watchdog_budget =
    let doc = "Watchdog cycle budget per run; a run exceeding it is a timeout." in
    Arg.(value & opt (some int) None & info [ "watchdog-budget" ] ~docv:"CYCLES" ~doc)
  in
  let max_retries =
    let doc = "Retries allowed per faulted run before it is quarantined." in
    Arg.(value & opt int 2 & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let min_survival =
    let doc = "Fraction of runs that must survive for the campaign to proceed." in
    Arg.(value & opt float 0.9 & info [ "min-survival" ] ~docv:"FRAC" ~doc)
  in
  let doc = "run the full measurement campaign and print the report" in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const analyze $ runs_arg $ seed_arg $ frames_arg $ tail_arg $ no_gates_arg $ factor
      $ csv_dir $ seu_rate $ watchdog_budget $ max_retries $ min_survival $ jobs_arg)

(* -------------------------------- iid -------------------------------- *)

let iid runs seed frames jobs =
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let xs = collect_par ~jobs:(resolve_jobs jobs) rand ~runs in
  Format.printf "%a@." M.Iid.pp (M.Iid.check xs);
  0

let iid_cmd =
  let doc = "collect runs on the randomized platform and verify i.i.d." in
  Cmd.v (Cmd.info "iid" ~doc) Term.(const iid $ runs_arg $ seed_arg $ frames_arg $ jobs_arg)

(* ---------------------------- convergence ---------------------------- *)

let convergence runs seed frames probability jobs =
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let xs = collect_par ~jobs:(resolve_jobs jobs) rand ~runs in
  let c = E.Convergence.study ~probability xs in
  Format.printf "%a@.@." E.Convergence.pp_result c;
  print_string (M.Ascii_plot.convergence_plot c.E.Convergence.history);
  0

let convergence_cmd =
  let probability =
    let doc = "Reference exceedance probability of the tracked estimate." in
    Arg.(value & opt float 1e-9 & info [ "probability" ] ~docv:"P" ~doc)
  in
  let doc = "study how the pWCET estimate stabilizes as runs accumulate" in
  Cmd.v
    (Cmd.info "convergence" ~doc)
    Term.(const convergence $ runs_arg $ seed_arg $ frames_arg $ probability $ jobs_arg)

(* ------------------------------- paths -------------------------------- *)

let paths runs seed frames jobs =
  let jobs = resolve_jobs jobs in
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let measurements = collect_par ~jobs rand ~runs in
  let signatures =
    M.Parallel.init ~jobs runs (fun i -> T.Experiment.path_signature rand ~run_index:i)
  in
  let options =
    { M.Protocol.default_options with M.Protocol.check_convergence = false }
  in
  let t = M.Path_analysis.analyze ~options ~measurements ~signatures () in
  Format.printf "%a@." M.Path_analysis.pp t;
  (match M.Path_analysis.pwcet_estimate t ~cutoff_probability:1e-12 with
  | Some v -> Format.printf "max pWCET(1e-12) across analyzed paths: %.0f@." v
  | None ->
      Format.printf
        "no path had enough runs for its own analysis; with continuous inputs@.";
      Format.printf
        "every run tends to follow its own path - analyze the pooled sample@.";
      Format.printf "instead (mbpta_cli analyze), which is sound under randomization.@.");
  0

let paths_cmd =
  let doc = "group runs by execution path and analyze each path separately" in
  Cmd.v (Cmd.info "paths" ~doc)
    Term.(const paths $ runs_arg $ seed_arg $ frames_arg $ jobs_arg)

(* ------------------------------ qualify ------------------------------ *)

let qualify algorithm draws seed =
  let algorithms =
    match algorithm with
    | Some a -> [ a ]
    | None -> Prng.all_algorithms
  in
  List.iter
    (fun algorithm ->
      let prng = Prng.create ~algorithm seed in
      let verdicts = Quality.qualify ~alpha:0.001 ~draws prng in
      Format.printf "%-14s %s@." (Prng.algorithm_name algorithm)
        (if Quality.all_passed verdicts then "QUALIFIED" else "REJECTED");
      List.iter (fun (n, v) -> Format.printf "  %-24s %a@." n Quality.pp_verdict v) verdicts)
    algorithms;
  0

let qualify_cmd =
  let algorithm =
    let algs =
      [
        ("xorshift128+", Prng.Xorshift128p);
        ("pcg32", Prng.Pcg32);
        ("lfsr64", Prng.Lfsr64);
        ("mwc32", Prng.Mwc32);
      ]
    in
    let doc = "Qualify only this generator (default: all)." in
    Arg.(value & opt (some (enum algs)) None & info [ "algorithm" ] ~docv:"ALG" ~doc)
  in
  let draws =
    let doc = "Draws per statistical test." in
    Arg.(value & opt int 20_000 & info [ "draws" ] ~docv:"N" ~doc)
  in
  let doc = "run the statistical qualification battery on the PRNGs" in
  Cmd.v (Cmd.info "qualify" ~doc) Term.(const qualify $ algorithm $ draws $ seed_arg)

(* -------------------------------- plot -------------------------------- *)

let plot runs seed frames tail qq =
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let xs = T.Experiment.collect rand ~runs in
  let options = options_of ~tail ~no_gates:true in
  (match M.Protocol.analyze ~options xs with
  | Ok a ->
      print_string (M.Ascii_plot.exceedance_plot a.M.Protocol.curve);
      if qq then begin
        let curve = a.M.Protocol.curve in
        let quantile =
          match Repro_evt.Pwcet.model curve with
          | Repro_evt.Pwcet.Gumbel_tail g -> Some (Repro_stats.Distribution.Gumbel.quantile g)
          | Repro_evt.Pwcet.Gev_tail g -> Some (Repro_stats.Distribution.Gev.quantile g)
          | Repro_evt.Pwcet.Pot_tail _ -> None
        in
        match quantile with
        | Some quantile ->
            let maxima =
              Repro_evt.Block_maxima.extract
                ~block_size:(Repro_evt.Pwcet.block_size curve)
                xs
            in
            print_newline ();
            print_string (M.Ascii_plot.qq_plot ~data:maxima ~quantile ())
        | None -> Format.printf "(QQ plot only available for block-maxima tails)@."
      end
  | Error f -> Format.printf "analysis failed: %a@." M.Protocol.pp_failure f);
  0

let plot_cmd =
  let qq =
    let doc = "Also print the quantile-quantile diagnostic of the tail fit." in
    Arg.(value & flag & info [ "qq" ] ~doc)
  in
  let doc = "print the Figure 2 exceedance plot for a fresh measurement set" in
  Cmd.v (Cmd.info "plot" ~doc)
    Term.(const plot $ runs_arg $ seed_arg $ frames_arg $ tail_arg $ qq)

(* -------------------------------- main -------------------------------- *)

let () =
  let doc =
    "measurement-based probabilistic timing analysis on a time-randomized platform"
  in
  let info = Cmd.info "mbpta_cli" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ analyze_cmd; iid_cmd; convergence_cmd; paths_cmd; qualify_cmd; plot_cmd ]
  in
  exit (Cmd.eval' group)
