(* mbpta_cli: command-line front end to the whole reproduction.

   Subcommands:
     analyze      full campaign (DET + RAND, i.i.d., pWCET, comparison)
     iid          i.i.d. verification only
     convergence  pWCET-estimate convergence study
     paths        per-path analysis (groups runs by execution path)
     qualify      PRNG qualification battery
     plot         Figure 2 exceedance plot only
     trace        inspect JSONL traces written with --trace

   Examples:
     dune exec bin/mbpta_cli.exe -- analyze --runs 3000
     dune exec bin/mbpta_cli.exe -- iid --runs 1000 --seed 7
     dune exec bin/mbpta_cli.exe -- qualify --algorithm lfsr64
     dune exec bin/mbpta_cli.exe -- analyze --runs 500 --trace run.jsonl
     dune exec bin/mbpta_cli.exe -- trace summary run.jsonl *)

module P = Repro_platform
module T = Repro_tvca
module M = Repro_mbpta
module E = Repro_evt
module Prng = Repro_rng.Prng
module Quality = Repro_rng.Quality
open Cmdliner

(* --------------------------- common options --------------------------- *)

let runs_arg =
  let doc = "Number of measurement runs per platform configuration." in
  Arg.(value & opt int 3000 & info [ "r"; "runs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Base seed of the campaign (all randomness derives from it)." in
  Arg.(value & opt int64 2017L & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let frames_arg =
  let doc = "Frames (task activations) per measured run." in
  Arg.(value & opt int T.Mission.default_frames & info [ "frames" ] ~docv:"K" ~doc)

let tail_arg =
  let tails =
    [
      ("gumbel", M.Protocol.Gumbel);
      ("gev", M.Protocol.Gev);
      ("pot", M.Protocol.Pot);
      ("exp", M.Protocol.Exponential_pot);
    ]
  in
  let doc = "Tail model: gumbel (default), gev, pot or exp." in
  Arg.(value & opt (enum tails) M.Protocol.Gumbel & info [ "tail" ] ~docv:"MODEL" ~doc)

let no_gates_arg =
  let doc = "Report the i.i.d./convergence verdicts but do not fail on them." in
  Arg.(value & flag & info [ "no-gates" ] ~doc)

let jobs_arg =
  let doc =
    "Measurement runs execute on $(docv) domains (0 = one per core).  Per-run seed \
     derivation makes the samples and the analysis bit-identical at any job count; \
     --jobs 1 is the sequential reference."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let resolve_jobs = function
  | 0 -> M.Parallel.default_jobs ()
  | j when j >= 1 -> j
  | j ->
      Format.eprintf "mbpta_cli: --jobs must be >= 0 (got %d)@." j;
      exit 2

(* ------------------------------ tracing ------------------------------- *)

let trace_arg =
  let doc = "Append a JSONL event trace of this invocation to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_level_arg =
  let levels =
    [ ("summary", M.Trace.Summary); ("runs", M.Trace.Runs); ("debug", M.Trace.Debug) ]
  in
  let doc =
    "Trace verbosity: summary (lifecycle + verdicts), runs (default; adds one event \
     per measured run), debug (adds chunk scheduling and wall times — the only \
     level whose trace varies with --jobs)."
  in
  Arg.(value & opt (enum levels) M.Trace.Runs & info [ "trace-level" ] ~docv:"LEVEL" ~doc)

(* [with_trace ~path ~level ~config f] runs [f (Some t)] against an open
   trace — emitting the harness [Config] context first and flushing on the
   way out, even on exceptions.  Without [--trace] it is exactly [f None]:
   the measurement closures are the original untraced ones. *)
let with_trace ~path ~level ~config f =
  match path with
  | None -> f None
  | Some path ->
      let t = M.Trace.create ~level ~path () in
      M.Trace.emit t (M.Trace.Config config);
      Fun.protect ~finally:(fun () -> M.Trace.close t) (fun () -> f (Some t))

(* Roll one run's micro-architectural counters into the trace registry.
   Safe from any worker domain: additions commute, so the totals are
   deterministic at every job count. *)
let record_metrics counters ~prefix (m : P.Metrics.t) =
  let add name v = M.Trace.Counters.add counters (prefix ^ name) v in
  add "runs" 1;
  add "cycles" m.P.Metrics.cycles;
  add "instructions" m.P.Metrics.instructions;
  add "il1_misses" m.P.Metrics.il1_misses;
  add "dl1_misses" m.P.Metrics.dl1_misses;
  add "itlb_misses" m.P.Metrics.itlb_misses;
  add "dtlb_misses" m.P.Metrics.dtlb_misses;
  add "bus_transactions" m.P.Metrics.bus_transactions;
  add "dram_row_misses" m.P.Metrics.dram_row_misses;
  add "faults_injected" m.P.Metrics.faults_injected

(* Traced variant of the measurement closure: same cycles bit-for-bit
   ([Experiment.measure] is [cycles (run ...)]), but the full metrics are
   accumulated into the counter registry on the way. *)
let measure_with_counters trace exp ~prefix =
  match trace with
  | None -> fun i -> T.Experiment.measure exp ~run_index:i
  | Some t ->
      let counters = M.Trace.counters t in
      fun i ->
        let m = T.Experiment.run exp ~run_index:i in
        record_metrics counters ~prefix m;
        float_of_int (P.Metrics.cycles m)

(* Parallel counterpart of [Experiment.collect] for the single-platform
   subcommands; sound because [Experiment.measure] is a pure function of the
   run index. *)
let collect_par ?trace ~jobs exp ~runs =
  let phase = "collect_rand" in
  (match trace with Some t -> M.Trace.phase_start t phase | None -> ());
  let xs = M.Parallel.init ?trace ~jobs runs (measure_with_counters trace exp ~prefix:"rand.") in
  (match trace with
  | Some t ->
      M.Trace.emit_sample t ~phase xs;
      M.Trace.phase_end t phase
  | None -> ());
  xs

let experiment ~config ~seed ~frames =
  T.Experiment.create ~frames ~config ~base_seed:seed ()

let options_of ~tail ~no_gates =
  {
    M.Protocol.default_options with
    M.Protocol.tail;
    M.Protocol.gate_on_iid = not no_gates;
    M.Protocol.check_convergence = not no_gates;
  }

let tail_name = function
  | M.Protocol.Gumbel -> "gumbel"
  | M.Protocol.Gev -> "gev"
  | M.Protocol.Pot -> "pot"
  | M.Protocol.Exponential_pot -> "exp"

let base_config ~subcommand ~runs ~seed ~frames =
  [
    ("subcommand", subcommand);
    ("runs", string_of_int runs);
    ("seed", Int64.to_string seed);
    ("frames", string_of_int frames);
  ]

(* ------------------------------ analyze ------------------------------ *)

(* Map the experiment's classified fault outcomes onto the supervisor's
   outcome type (the tvca and mbpta libraries deliberately do not know
   about each other; this glue is the only place both sides meet). *)
let resilience_outcome_of = function
  | T.Experiment.Completed { metrics; _ } ->
      M.Resilience.Completed (float_of_int (P.Metrics.cycles metrics))
  | T.Experiment.Watchdog { cycles; budget; _ } ->
      M.Resilience.Timeout
        { detail = Printf.sprintf "watchdog fired at %d cycles (budget %d)" cycles budget }
  | T.Experiment.Runaway { program; _ } ->
      M.Resilience.Timeout { detail = "runaway execution of " ^ program }
  | T.Experiment.Crashed { detail; _ } -> M.Resilience.Crashed { detail }
  | T.Experiment.Corrupted { worst_error; _ } ->
      M.Resilience.Corrupted
        { detail = Printf.sprintf "worst output error %g" worst_error }

let analyze runs seed frames tail no_gates factor csv_dir seu_rate watchdog_budget
    max_retries min_survival jobs trace_path trace_level =
  let jobs = resolve_jobs jobs in
  if seu_rate < 0. then begin
    Format.eprintf "mbpta_cli: --seu-rate must be >= 0 (got %g)@." seu_rate;
    exit 2
  end;
  let config =
    base_config ~subcommand:"analyze" ~runs ~seed ~frames
    @ [ ("tail", tail_name tail); ("seu_rate", string_of_float seu_rate) ]
  in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let det = experiment ~config:P.Config.deterministic ~seed ~frames in
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let input =
    {
      M.Campaign.runs;
      measure_det = measure_with_counters trace det ~prefix:"det.";
      measure_rand = measure_with_counters trace rand ~prefix:"rand.";
      options = options_of ~tail ~no_gates;
      engineering_factor = factor;
    }
  in
  let result =
    if seu_rate > 0. || watchdog_budget <> None then begin
      let fault = T.Experiment.fault_config ~seu_rate ?watchdog_budget () in
      let measure exp prefix ~run_index ~attempt =
        let outcome = T.Experiment.run_faulty exp ~fault ~attempt ~run_index () in
        (match (trace, outcome) with
        | Some t, T.Experiment.Completed { metrics; _ } ->
            record_metrics (M.Trace.counters t) ~prefix metrics
        | _ -> ());
        resilience_outcome_of outcome
      in
      let policy = { M.Resilience.default_policy with max_retries; min_survival } in
      M.Campaign.run_resilient ~jobs ?trace
        (M.Campaign.resilient_input ~policy ~base:input
           ~measure_det_outcome:(measure det "det.")
           ~measure_rand_outcome:(measure rand "rand.") ())
    end
    else M.Campaign.run ~jobs ?trace input
  in
  match result with
  | Error f ->
      Format.eprintf "campaign failed: %a@." M.Protocol.pp_failure f;
      1
  | Ok campaign ->
      print_endline (M.Campaign.render campaign);
      (match csv_dir with
      | None -> ()
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let write name contents =
            M.Export.to_file ~path:(Filename.concat dir name) contents
          in
          write "det_samples.csv"
            (M.Export.samples_csv ~label:"DET" campaign.M.Campaign.det_sample);
          write "rand_samples.csv"
            (M.Export.samples_csv ~label:"RAND" campaign.M.Campaign.rand_sample);
          write "rand_ecdf.csv" (M.Export.ecdf_csv campaign.M.Campaign.rand_sample);
          (match campaign.M.Campaign.analysis with
          | Ok a -> write "pwcet_curve.csv" (M.Export.curve_csv a.M.Protocol.curve)
          | Error _ -> ());
          (match campaign.M.Campaign.comparison with
          | Some c -> write "comparison.csv" (M.Export.comparison_csv c)
          | None -> ());
          Format.printf "CSV data written to %s/@." dir);
      (* measurements succeeded (samples are printed/exported either way),
         but a failed analysis is still a failed campaign to the caller *)
      (match campaign.M.Campaign.analysis with Ok _ -> 0 | Error _ -> 1)

let analyze_cmd =
  let factor =
    let doc = "Engineering factor of the industrial MBTA baseline." in
    Arg.(value & opt float 1.5 & info [ "engineering-factor" ] ~docv:"F" ~doc)
  in
  let csv_dir =
    let doc = "Also write samples/ECDF/curve/comparison CSV files to $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv-dir" ] ~docv:"DIR" ~doc)
  in
  let seu_rate =
    let doc =
      "Inject single-event upsets at $(docv) expected upsets per million retired \
       instructions (0 disables injection; the pipeline is then bit-identical to the \
       fault-free one)."
    in
    Arg.(value & opt float 0. & info [ "seu-rate" ] ~docv:"RATE" ~doc)
  in
  let watchdog_budget =
    let doc = "Watchdog cycle budget per run; a run exceeding it is a timeout." in
    Arg.(value & opt (some int) None & info [ "watchdog-budget" ] ~docv:"CYCLES" ~doc)
  in
  let max_retries =
    let doc = "Retries allowed per faulted run before it is quarantined." in
    Arg.(value & opt int 2 & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let min_survival =
    let doc = "Fraction of runs that must survive for the campaign to proceed." in
    Arg.(value & opt float 0.9 & info [ "min-survival" ] ~docv:"FRAC" ~doc)
  in
  let doc = "run the full measurement campaign and print the report" in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const analyze $ runs_arg $ seed_arg $ frames_arg $ tail_arg $ no_gates_arg $ factor
      $ csv_dir $ seu_rate $ watchdog_budget $ max_retries $ min_survival $ jobs_arg
      $ trace_arg $ trace_level_arg)

(* -------------------------------- iid -------------------------------- *)

let iid runs seed frames jobs trace_path trace_level =
  let config = base_config ~subcommand:"iid" ~runs ~seed ~frames in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let xs = collect_par ?trace ~jobs:(resolve_jobs jobs) rand ~runs in
  let verdict = M.Iid.check xs in
  (match trace with Some t -> M.Trace.emit t (M.Trace.iid_event verdict) | None -> ());
  Format.printf "%a@." M.Iid.pp verdict;
  0

let iid_cmd =
  let doc = "collect runs on the randomized platform and verify i.i.d." in
  Cmd.v (Cmd.info "iid" ~doc)
    Term.(
      const iid $ runs_arg $ seed_arg $ frames_arg $ jobs_arg $ trace_arg
      $ trace_level_arg)

(* ---------------------------- convergence ---------------------------- *)

let convergence runs seed frames probability jobs trace_path trace_level =
  let config =
    base_config ~subcommand:"convergence" ~runs ~seed ~frames
    @ [ ("probability", string_of_float probability) ]
  in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let xs = collect_par ?trace ~jobs:(resolve_jobs jobs) rand ~runs in
  let c = E.Convergence.study ~probability xs in
  (match trace with
  | Some t ->
      M.Trace.emit t
        (M.Trace.Convergence
           { converged = c.E.Convergence.converged; runs_used = c.E.Convergence.runs_used })
  | None -> ());
  Format.printf "%a@.@." E.Convergence.pp_result c;
  print_string (M.Ascii_plot.convergence_plot c.E.Convergence.history);
  0

let convergence_cmd =
  let probability =
    let doc = "Reference exceedance probability of the tracked estimate." in
    Arg.(value & opt float 1e-9 & info [ "probability" ] ~docv:"P" ~doc)
  in
  let doc = "study how the pWCET estimate stabilizes as runs accumulate" in
  Cmd.v
    (Cmd.info "convergence" ~doc)
    Term.(
      const convergence $ runs_arg $ seed_arg $ frames_arg $ probability $ jobs_arg
      $ trace_arg $ trace_level_arg)

(* ------------------------------- paths -------------------------------- *)

let paths runs seed frames jobs trace_path trace_level =
  let jobs = resolve_jobs jobs in
  let config = base_config ~subcommand:"paths" ~runs ~seed ~frames in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let measurements = collect_par ?trace ~jobs rand ~runs in
  let signatures =
    M.Parallel.init ~jobs runs (fun i -> T.Experiment.path_signature rand ~run_index:i)
  in
  let options =
    { M.Protocol.default_options with M.Protocol.check_convergence = false }
  in
  let t = M.Path_analysis.analyze ~options ~measurements ~signatures () in
  Format.printf "%a@." M.Path_analysis.pp t;
  (match M.Path_analysis.pwcet_estimate t ~cutoff_probability:1e-12 with
  | Some v -> Format.printf "max pWCET(1e-12) across analyzed paths: %.0f@." v
  | None ->
      Format.printf
        "no path had enough runs for its own analysis; with continuous inputs@.";
      Format.printf
        "every run tends to follow its own path - analyze the pooled sample@.";
      Format.printf "instead (mbpta_cli analyze), which is sound under randomization.@.");
  0

let paths_cmd =
  let doc = "group runs by execution path and analyze each path separately" in
  Cmd.v (Cmd.info "paths" ~doc)
    Term.(
      const paths $ runs_arg $ seed_arg $ frames_arg $ jobs_arg $ trace_arg
      $ trace_level_arg)

(* ------------------------------ qualify ------------------------------ *)

let qualify algorithm draws seed trace_path trace_level =
  let config =
    [
      ("subcommand", "qualify");
      ("seed", Int64.to_string seed);
      ("draws", string_of_int draws);
    ]
  in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let algorithms =
    match algorithm with
    | Some a -> [ a ]
    | None -> Prng.all_algorithms
  in
  List.iter
    (fun algorithm ->
      let prng = Prng.create ~algorithm seed in
      let verdicts = Quality.qualify ~alpha:0.001 ~draws prng in
      let passed = Quality.all_passed verdicts in
      (match trace with
      | Some t ->
          M.Trace.emit t
            (M.Trace.Note
               (Printf.sprintf "qualify %s: %s" (Prng.algorithm_name algorithm)
                  (if passed then "QUALIFIED" else "REJECTED")))
      | None -> ());
      Format.printf "%-14s %s@." (Prng.algorithm_name algorithm)
        (if passed then "QUALIFIED" else "REJECTED");
      List.iter (fun (n, v) -> Format.printf "  %-24s %a@." n Quality.pp_verdict v) verdicts)
    algorithms;
  0

let qualify_cmd =
  let algorithm =
    let algs =
      [
        ("xorshift128+", Prng.Xorshift128p);
        ("pcg32", Prng.Pcg32);
        ("lfsr64", Prng.Lfsr64);
        ("mwc32", Prng.Mwc32);
      ]
    in
    let doc = "Qualify only this generator (default: all)." in
    Arg.(value & opt (some (enum algs)) None & info [ "algorithm" ] ~docv:"ALG" ~doc)
  in
  let draws =
    let doc = "Draws per statistical test." in
    Arg.(value & opt int 20_000 & info [ "draws" ] ~docv:"N" ~doc)
  in
  let doc = "run the statistical qualification battery on the PRNGs" in
  Cmd.v (Cmd.info "qualify" ~doc)
    Term.(const qualify $ algorithm $ draws $ seed_arg $ trace_arg $ trace_level_arg)

(* -------------------------------- plot -------------------------------- *)

let plot runs seed frames tail qq trace_path trace_level =
  let config =
    base_config ~subcommand:"plot" ~runs ~seed ~frames @ [ ("tail", tail_name tail) ]
  in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let xs = collect_par ?trace ~jobs:1 rand ~runs in
  let options = options_of ~tail ~no_gates:true in
  (match M.Protocol.analyze ~options ?trace xs with
  | Ok a ->
      print_string (M.Ascii_plot.exceedance_plot a.M.Protocol.curve);
      if qq then begin
        let curve = a.M.Protocol.curve in
        let quantile =
          match Repro_evt.Pwcet.model curve with
          | Repro_evt.Pwcet.Gumbel_tail g -> Some (Repro_stats.Distribution.Gumbel.quantile g)
          | Repro_evt.Pwcet.Gev_tail g -> Some (Repro_stats.Distribution.Gev.quantile g)
          | Repro_evt.Pwcet.Pot_tail _ -> None
        in
        match quantile with
        | Some quantile ->
            let maxima =
              Repro_evt.Block_maxima.extract
                ~block_size:(Repro_evt.Pwcet.block_size curve)
                xs
            in
            print_newline ();
            print_string (M.Ascii_plot.qq_plot ~data:maxima ~quantile ())
        | None -> Format.printf "(QQ plot only available for block-maxima tails)@."
      end
  | Error f -> Format.printf "analysis failed: %a@." M.Protocol.pp_failure f);
  0

let plot_cmd =
  let qq =
    let doc = "Also print the quantile-quantile diagnostic of the tail fit." in
    Arg.(value & flag & info [ "qq" ] ~doc)
  in
  let doc = "print the Figure 2 exceedance plot for a fresh measurement set" in
  Cmd.v (Cmd.info "plot" ~doc)
    Term.(
      const plot $ runs_arg $ seed_arg $ frames_arg $ tail_arg $ qq $ trace_arg
      $ trace_level_arg)

(* -------------------------------- trace -------------------------------- *)

let trace_summary file =
  match M.Trace.read_file file with
  | Error e ->
      Format.eprintf "mbpta_cli: %s@." e;
      1
  | Ok events ->
      print_string (M.Trace.summarize events);
      0

let trace_cmd =
  let file_pos =
    let doc = "JSONL trace file produced with --trace." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let summary_cmd =
    let doc = "digest a trace: per-phase runs and timing, faults, verdicts, counters" in
    Cmd.v (Cmd.info "summary" ~doc) Term.(const trace_summary $ file_pos)
  in
  let doc = "inspect JSONL campaign traces" in
  Cmd.group (Cmd.info "trace" ~doc) [ summary_cmd ]

(* -------------------------------- main -------------------------------- *)

let () =
  let doc =
    "measurement-based probabilistic timing analysis on a time-randomized platform"
  in
  let info = Cmd.info "mbpta_cli" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ analyze_cmd; iid_cmd; convergence_cmd; paths_cmd; qualify_cmd; plot_cmd; trace_cmd ]
  in
  exit (Cmd.eval' group)
