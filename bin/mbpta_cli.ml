(* mbpta_cli: command-line front end to the whole reproduction.

   Subcommands:
     analyze      full campaign (DET + RAND, i.i.d., pWCET, comparison)
     iid          i.i.d. verification only
     convergence  pWCET-estimate convergence study
     paths        per-path analysis (groups runs by execution path)
     qualify      PRNG qualification battery
     plot         Figure 2 exceedance plot only
     shuffle      schedule-randomization campaigns (pWCET impact + entropy)
     leak         two-campaign timing-leak test (Welch's t + Cohen's d)
     trace        inspect JSONL traces written with --trace
     cache        inspect/maintain the measurement store (--cache-dir)
     serve        long-running campaign daemon on a Unix socket
     client       send one request to a running daemon

   Examples:
     dune exec bin/mbpta_cli.exe -- analyze --runs 3000
     dune exec bin/mbpta_cli.exe -- iid --runs 1000 --seed 7
     dune exec bin/mbpta_cli.exe -- qualify --algorithm lfsr64
     dune exec bin/mbpta_cli.exe -- analyze --runs 500 --trace run.jsonl
     dune exec bin/mbpta_cli.exe -- trace summary run.jsonl
     dune exec bin/mbpta_cli.exe -- analyze --runs 3000 --cache-dir .mbpta-cache
     dune exec bin/mbpta_cli.exe -- analyze --runs 3000 --cache-dir .mbpta-cache --resume
     dune exec bin/mbpta_cli.exe -- cache ls .mbpta-cache *)

module P = Repro_platform
module T = Repro_tvca
module M = Repro_mbpta
module E = Repro_evt
module Prng = Repro_rng.Prng
module Quality = Repro_rng.Quality
open Cmdliner

(* --------------------------- common options --------------------------- *)

let runs_arg =
  let doc = "Number of measurement runs per platform configuration." in
  Arg.(value & opt int 3000 & info [ "r"; "runs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Base seed of the campaign (all randomness derives from it)." in
  Arg.(value & opt int64 2017L & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let frames_arg =
  let doc = "Frames (task activations) per measured run." in
  Arg.(value & opt int T.Mission.default_frames & info [ "frames" ] ~docv:"K" ~doc)

let tail_arg =
  let tails =
    [
      ("gumbel", M.Protocol.Gumbel);
      ("gev", M.Protocol.Gev);
      ("pot", M.Protocol.Pot);
      ("exp", M.Protocol.Exponential_pot);
    ]
  in
  let doc = "Tail model: gumbel (default), gev, pot or exp." in
  Arg.(value & opt (enum tails) M.Protocol.Gumbel & info [ "tail" ] ~docv:"MODEL" ~doc)

let no_gates_arg =
  let doc = "Report the i.i.d./convergence verdicts but do not fail on them." in
  Arg.(value & flag & info [ "no-gates" ] ~doc)

let bootstrap_arg =
  let doc =
    "Bootstrap replicates for a sampling-uncertainty interval on the pWCET estimate \
     (0 disables, minimum 20).  Replicates fan out over --jobs with bit-identical \
     intervals at any job count."
  in
  Arg.(value & opt int 0 & info [ "bootstrap" ] ~docv:"REPLICATES" ~doc)

let jobs_arg =
  let doc =
    "Measurement runs execute on $(docv) domains (0 = one per core).  Per-run seed \
     derivation makes the samples and the analysis bit-identical at any job count; \
     --jobs 1 is the sequential reference."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let resolve_jobs = function
  | 0 -> M.Parallel.default_jobs ()
  | j when j >= 1 -> j
  | j ->
      Format.eprintf "mbpta_cli: --jobs must be >= 0 (got %d)@." j;
      exit 2

let dispatch_arg =
  let doc =
    "Scheduling granularity of the store checkpoint walk: $(b,chunk) (one store \
     chunk per domain-pool fan-out; the reference schedule), $(b,auto) \
     (calibrate the per-chunk cost on the first uncached chunk and batch \
     fan-outs to roughly 50ms of work), or an integer batch size.  Purely \
     operational: samples and record bytes are identical under every choice."
  in
  Arg.(value & opt string "chunk" & info [ "dispatch" ] ~docv:"MODE" ~doc)

let resolve_dispatch s : M.Parallel.dispatch =
  match s with
  | "chunk" -> `Chunk
  | "auto" -> `Auto
  | s -> (
      match int_of_string_opt s with
      | Some b when b >= 1 -> `Batch b
      | _ ->
          Format.eprintf
            "mbpta_cli: --dispatch must be chunk, auto, or a batch size >= 1 (got %s)@." s;
          exit 2)

(* Usage errors share one shape: message on stderr, exit 2 (the cmdliner
   convention resolve_jobs established). *)
let usage_error fmt =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "mbpta_cli: %s@." msg;
      exit 2)
    fmt

let validate_runs runs = if runs < 1 then usage_error "--runs must be >= 1 (got %d)" runs

let validate_frames frames =
  if frames < 1 then usage_error "--frames must be >= 1 (got %d)" frames

let validate_min_survival v =
  if not (v >= 0. && v <= 1.) then
    usage_error "--min-survival must lie in [0, 1] (got %g)" v

let validate_probability p =
  if not (p > 0. && p < 1.) then usage_error "--probability must lie in (0, 1) (got %g)" p

let validate_engineering_factor f =
  if not (f >= 1.) then usage_error "--engineering-factor must be >= 1 (got %g)" f

let profile_arg =
  let doc =
    "Enable the stage-resolved micro-profiler: campaign wall time is attributed to \
     pipeline stages (codegen, decode, execute, flush, seed derivation, trace, store, \
     analysis) and the table is printed after the report.  With --trace the totals are \
     also recorded as profile.* counters, rendered by `trace summary` as the \
     stage-profile section."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

(* ------------------------------ tracing ------------------------------- *)

let trace_arg =
  let doc = "Append a JSONL event trace of this invocation to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_level_arg =
  let levels =
    [ ("summary", M.Trace.Summary); ("runs", M.Trace.Runs); ("debug", M.Trace.Debug) ]
  in
  let doc =
    "Trace verbosity: summary (lifecycle + verdicts), runs (default; adds one event \
     per measured run), debug (adds chunk scheduling and wall times — the only \
     level whose trace varies with --jobs)."
  in
  Arg.(value & opt (enum levels) M.Trace.Runs & info [ "trace-level" ] ~docv:"LEVEL" ~doc)

(* [with_trace ~path ~level ~config f] runs [f (Some t)] against an open
   trace — emitting the harness [Config] context first and flushing on the
   way out, even on exceptions.  Without [--trace] it is exactly [f None]:
   the measurement closures are the original untraced ones. *)
let with_trace ~path ~level ~config f =
  match path with
  | None -> f None
  | Some path ->
      let t =
        (* [Trace.create] touches the file eagerly, so a bad destination is
           a usage error here — not a lost trace after the campaign ran. *)
        try M.Trace.create ~level ~path ()
        with Sys_error e -> usage_error "%s" e
      in
      M.Trace.emit t (M.Trace.Config config);
      Fun.protect ~finally:(fun () -> M.Trace.close t) (fun () -> f (Some t))

(* --------------------------- measurement store ------------------------ *)

let cache_dir_arg =
  let doc =
    "Persist measurements to a content-addressed store under $(docv) and replay any \
     already recorded there.  The record key digests everything that determines a \
     measured value (platform configs, seed, frames, runs, fault settings) — \
     analysis-only flags (--tail, --no-gates, --engineering-factor, --jobs) reuse \
     the same record."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "Continue an interrupted campaign from its last complete checkpoint chunk in the \
     store (requires --cache-dir).  Without this flag a partial record is discarded \
     and the campaign starts cold; a complete record is always reused."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let no_cache_arg =
  let doc = "Ignore --cache-dir for this invocation (measure everything afresh)." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_sync_arg =
  let doc =
    "fsync the store record at every checkpoint barrier, so an acknowledged chunk \
     survives power loss as well as a process kill.  Off by default: the durability \
     unit is the chunk, and campaigns tolerate losing the tail chunk."
  in
  Arg.(value & flag & info [ "cache-sync" ] ~doc)

(* [with_store ... f] runs [f (Some session)] against an open store session
   (closed on the way out, even on exceptions) — or [f None] when no cache
   directory was given.  A record whose metadata disagrees with this
   campaign is a usage error, pointing at `cache ls`/`cache gc`. *)
let with_store ~cache_dir ~resume ~no_cache ~sync ~config ~runs ~resilient f =
  match cache_dir with
  | None -> f None
  | Some _ when no_cache -> f None
  | Some dir -> (
      let store = try M.Store.open_root ~dir with Sys_error e -> usage_error "%s" e in
      let key = M.Store.key config in
      match M.Store.open_session ~resume ~sync store ~key ~config ~runs ~resilient with
      | Error e -> usage_error "%s" e
      | Ok session ->
          Fun.protect
            ~finally:(fun () -> M.Store.close session)
            (fun () -> f (Some session)))

(* With a store session attached, SIGINT/SIGTERM must checkpoint — not
   kill mid-write: install the cooperative handlers ({!M.Shutdown}) and
   translate the resulting [Interrupted] into the conventional exit code
   (130/143) plus a hint that the record resumes.  Without a store the
   default signal disposition is kept (nothing to checkpoint). *)
let with_graceful_shutdown ~enabled f =
  if not enabled then f ()
  else begin
    M.Shutdown.install ();
    match f () with
    | code -> code
    | exception (M.Shutdown.Interrupted reason as e) ->
        Format.eprintf
          "mbpta_cli: interrupted by %s; the campaign checkpointed at its last chunk \
           barrier — rerun with --resume to continue where it stopped@."
          reason;
        M.Shutdown.exit_code e
  end

(* ------------------------ distributed campaigns ------------------------ *)

let shard_arg =
  let doc =
    "Worker mode: compute only shard $(docv) (written k/N, 1-based) of the campaign's \
     checkpoint-chunk span into the store and exit without running analysis.  \
     Requires --cache-dir; shard records recombine with `cache merge` (or are spawned \
     and merged automatically by --workers)."
  in
  Arg.(value & opt (some string) None & info [ "shard" ] ~docv:"K/N" ~doc)

let workers_arg =
  let doc =
    "Coordinator mode: spawn $(docv) worker processes (one per shard, re-invoking this \
     executable with --shard k/N into per-shard store directories), supervise them \
     with retry/timeout/backoff, merge the shard stores into --cache-dir, and run the \
     analysis over the merged record — byte-identical to a single-process run.  \
     Requires --cache-dir; values below 2 disable coordination."
  in
  Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)

let worker_deadline_arg =
  let doc =
    "Kill a worker that has not finished after $(docv) seconds (counts as a failed \
     attempt; the retry resumes from the shard record's last checkpoint)."
  in
  Arg.(value & opt (some float) None & info [ "worker-deadline" ] ~docv:"SECONDS" ~doc)

let worker_retries_arg =
  let doc =
    "Extra attempts per shard after the first; a shard that exhausts them is reported \
     as unrecoverable and its uncovered span is computed in-process after the merge."
  in
  Arg.(value & opt int 2 & info [ "worker-retries" ] ~docv:"N" ~doc)

let worker_backoff_arg =
  let doc =
    "Base backoff before retry k is $(docv)*2^k seconds (capped at 8s) — deterministic \
     by construction, so supervision transcripts are reproducible."
  in
  Arg.(value & opt float 0.5 & info [ "worker-backoff" ] ~docv:"SECONDS" ~doc)

let parse_shard s =
  match String.split_on_char '/' s with
  | [ k; n ] -> (
      match (int_of_string_opt k, int_of_string_opt n) with
      | Some k, Some n when n >= 1 && k >= 1 && k <= n -> (k, n)
      | _ -> usage_error "--shard expects k/N with 1 <= k <= N (got %s)" s)
  | _ -> usage_error "--shard expects k/N (got %s)" s

(* Roll one run's micro-architectural counters into the trace registry.
   Safe from any worker domain: additions commute, so the totals are
   deterministic at every job count. *)
let record_metrics counters ~prefix (m : P.Metrics.t) =
  let add name v = M.Trace.Counters.add counters (prefix ^ name) v in
  add "runs" 1;
  add "cycles" m.P.Metrics.cycles;
  add "instructions" m.P.Metrics.instructions;
  add "il1_misses" m.P.Metrics.il1_misses;
  add "dl1_misses" m.P.Metrics.dl1_misses;
  add "itlb_misses" m.P.Metrics.itlb_misses;
  add "dtlb_misses" m.P.Metrics.dtlb_misses;
  add "bus_transactions" m.P.Metrics.bus_transactions;
  add "dram_row_misses" m.P.Metrics.dram_row_misses;
  add "faults_injected" m.P.Metrics.faults_injected

(* Traced variant of the measurement closure: same cycles bit-for-bit
   ([Experiment.measure] is [cycles (run ...)]), but the full metrics are
   accumulated into the counter registry on the way. *)
let measure_with_counters trace exp ~prefix =
  match trace with
  | None -> fun i -> T.Experiment.measure exp ~run_index:i
  | Some t ->
      let counters = M.Trace.counters t in
      fun i ->
        let m = T.Experiment.run exp ~run_index:i in
        record_metrics counters ~prefix m;
        float_of_int (P.Metrics.cycles m)

(* Parallel counterpart of [Experiment.collect] for the single-platform
   subcommands; sound because [Experiment.measure] is a pure function of the
   run index. *)
let collect_par ?trace ?store ~jobs exp ~runs =
  let phase = "collect_rand" in
  (match trace with Some t -> M.Trace.phase_start t phase | None -> ());
  let measure = measure_with_counters trace exp ~prefix:"rand." in
  let xs =
    match store with
    | None -> M.Parallel.init ?trace ~jobs runs measure
    | Some session -> M.Store.collect ?trace ~jobs session ~phase runs measure
  in
  (match trace with
  | Some t ->
      M.Trace.emit_sample t ~phase xs;
      M.Trace.phase_end t phase
  | None -> ());
  xs

let experiment ~config ~seed ~frames =
  T.Experiment.create ~frames ~config ~base_seed:seed ()

let options_of ?(bootstrap = 0) ?(seed = 2017L) ~tail ~no_gates () =
  let bootstrap =
    if bootstrap = 0 then None
    else
      Some
        {
          M.Protocol.default_bootstrap_options with
          M.Protocol.replicates = bootstrap;
          M.Protocol.bootstrap_seed = seed;
        }
  in
  {
    M.Protocol.default_options with
    M.Protocol.tail;
    M.Protocol.gate_on_iid = not no_gates;
    M.Protocol.check_convergence = not no_gates;
    M.Protocol.bootstrap = bootstrap;
  }

(* Analysis-phase bracketing for subcommands that call the estimators
   directly (iid, convergence) rather than through [Campaign.run]; gives
   the trace digest the same per-phase wall-clock it gets for campaigns. *)
let in_analysis_phase trace f =
  let f () = M.Profile.time M.Profile.Analysis f in
  match trace with
  | None -> f ()
  | Some t ->
      M.Trace.phase_start t "analyze";
      let v = f () in
      M.Trace.phase_end t "analyze";
      v

let tail_name = function
  | M.Protocol.Gumbel -> "gumbel"
  | M.Protocol.Gev -> "gev"
  | M.Protocol.Pot -> "pot"
  | M.Protocol.Exponential_pot -> "exp"

let base_config ~subcommand ~runs ~seed ~frames =
  [
    ("subcommand", subcommand);
    ("runs", string_of_int runs);
    ("seed", Int64.to_string seed);
    ("frames", string_of_int frames);
  ]

(* ------------------------------ analyze ------------------------------ *)

(* Map the experiment's classified fault outcomes onto the supervisor's
   outcome type (the tvca and mbpta libraries deliberately do not know
   about each other; this glue is the only place both sides meet). *)
let resilience_outcome_of = function
  | T.Experiment.Completed { metrics; _ } ->
      M.Resilience.Completed (float_of_int (P.Metrics.cycles metrics))
  | T.Experiment.Watchdog { cycles; budget; _ } ->
      M.Resilience.Timeout
        { detail = Printf.sprintf "watchdog fired at %d cycles (budget %d)" cycles budget }
  | T.Experiment.Runaway { program; _ } ->
      M.Resilience.Timeout { detail = "runaway execution of " ^ program }
  | T.Experiment.Crashed { detail; _ } -> M.Resilience.Crashed { detail }
  | T.Experiment.Corrupted { worst_error; _ } ->
      M.Resilience.Corrupted
        { detail = Printf.sprintf "worst output error %g" worst_error }

let analyze runs seed frames tail no_gates bootstrap factor csv_dir seu_rate
    watchdog_budget max_retries min_survival jobs dispatch profile trace_path
    trace_level cache_dir resume no_cache cache_sync shard workers worker_deadline
    worker_retries worker_backoff =
  let jobs = resolve_jobs jobs in
  let dispatch_s = dispatch in
  let dispatch = resolve_dispatch dispatch in
  if profile then M.Profile.set_enabled true;
  validate_runs runs;
  validate_frames frames;
  validate_engineering_factor factor;
  validate_min_survival min_survival;
  if seu_rate < 0. then usage_error "--seu-rate must be >= 0 (got %g)" seu_rate;
  if bootstrap <> 0 && bootstrap < 20 then
    usage_error "--bootstrap must be 0 (off) or >= 20 replicates (got %d)" bootstrap;
  let shard = Option.map parse_shard shard in
  if workers < 1 then usage_error "--workers must be >= 1 (got %d)" workers;
  if shard <> None && workers > 1 then
    usage_error "--shard and --workers are mutually exclusive";
  if (shard <> None || workers > 1) && cache_dir = None then
    usage_error "%s requires --cache-dir (shard records live in the store)"
      (if shard <> None then "--shard" else "--workers");
  if (shard <> None || workers > 1) && no_cache then
    usage_error "distributed campaigns need the store; drop --no-cache";
  if worker_retries < 0 then
    usage_error "--worker-retries must be >= 0 (got %d)" worker_retries;
  if not (worker_backoff >= 0.) then
    usage_error "--worker-backoff must be >= 0 (got %g)" worker_backoff;
  (match worker_deadline with
  | Some d when not (d > 0.) ->
      usage_error "--worker-deadline must be > 0 (got %g)" d
  | _ -> ());
  let resilient = seu_rate > 0. || watchdog_budget <> None in
  let config =
    base_config ~subcommand:"analyze" ~runs ~seed ~frames
    @ [ ("tail", tail_name tail); ("seu_rate", string_of_float seu_rate) ]
  in
  (* The store key digests only what determines a measured value; the
     analysis-side knobs (tail, gates, engineering factor, min_survival —
     pure accounting) deliberately stay out so re-analysis is a cache
     hit. *)
  let store_config =
    [
      ("campaign", "analyze");
      ("det_config", "deterministic");
      ("rand_config", "mbpta_compliant");
      ("seed", Int64.to_string seed);
      ("frames", string_of_int frames);
      ("runs", string_of_int runs);
      ("resilient", string_of_bool resilient);
    ]
    @
    if resilient then
      [
        ("seu_rate", string_of_float seu_rate);
        ( "watchdog_budget",
          match watchdog_budget with None -> "none" | Some b -> string_of_int b );
        ("max_retries", string_of_int max_retries);
      ]
    else []
  in
  with_graceful_shutdown ~enabled:(cache_dir <> None && not no_cache) @@ fun () ->
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let det = experiment ~config:P.Config.deterministic ~seed ~frames in
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let input =
    {
      M.Campaign.runs;
      measure_det = measure_with_counters trace det ~prefix:"det.";
      measure_rand = measure_with_counters trace rand ~prefix:"rand.";
      options = options_of ~bootstrap ~seed ~tail ~no_gates ();
      engineering_factor = factor;
    }
  in
  let resilient_input () =
    let fault = T.Experiment.fault_config ~seu_rate ?watchdog_budget () in
    let measure exp prefix ~run_index ~attempt =
      let outcome = T.Experiment.run_faulty exp ~fault ~attempt ~run_index () in
      (match (trace, outcome) with
      | Some t, T.Experiment.Completed { metrics; _ } ->
          record_metrics (M.Trace.counters t) ~prefix metrics
      | _ -> ());
      resilience_outcome_of outcome
    in
    let policy = { M.Resilience.default_policy with max_retries; min_survival } in
    M.Campaign.resilient_input ~policy ~base:input
      ~measure_det_outcome:(measure det "det.")
      ~measure_rand_outcome:(measure rand "rand.") ()
  in
  (* Coordinator mode: spawn one worker process per shard (this executable,
     re-invoked with --shard k/N into a per-shard store directory),
     supervise them with retry/timeout/backoff, then merge the shard stores
     into [dir].  The caller falls through to the normal campaign with
     resume on, so any span an unrecoverable or quarantined shard left
     uncovered is recomputed in-process — degraded wall-clock and an
     explicit coverage report, never a silently wrong answer. *)
  let coordinate dir =
    let chunk_size = M.Store.default_chunk_size in
    let spans = M.Coordinator.shard_spans ~shards:workers ~chunk_size ~runs in
    let nspans = List.length spans in
    if nspans < workers then
      Format.eprintf
        "mbpta_cli: %d runs hold only %d checkpoint chunk%s; spawning %d worker%s@." runs
        nspans
        (if nspans = 1 then "" else "s")
        nspans
        (if nspans = 1 then "" else "s");
    (* Workers recompute the same layout from k/N, so N stays the requested
       worker count even when trailing shards are empty. *)
    let shard_dir k = Filename.concat dir (Printf.sprintf "shard-%d-of-%d" k workers) in
    let worker_argv k =
      Array.of_list
        ([
           Sys.executable_name;
           "analyze";
           "--runs";
           string_of_int runs;
           "--seed";
           Int64.to_string seed;
           "--frames";
           string_of_int frames;
           "--jobs";
           string_of_int jobs;
           "--dispatch";
           dispatch_s;
           "--shard";
           Printf.sprintf "%d/%d" k workers;
           "--cache-dir";
           shard_dir k;
         ]
        @ (if cache_sync then [ "--cache-sync" ] else [])
        @
        if resilient then
          [
            (* %h round-trips the float exactly, so workers measure with
               bit-identical fault parameters *)
            "--seu-rate";
            Printf.sprintf "%h" seu_rate;
            "--max-retries";
            string_of_int max_retries;
          ]
          @
          match watchdog_budget with
          | None -> []
          | Some b -> [ "--watchdog-budget"; string_of_int b ]
        else [])
    in
    List.iteri (fun i _ -> M.Trace.ensure_dir (shard_dir (i + 1))) spans;
    let policy =
      {
        (M.Coordinator.default_policy ~shards:workers) with
        M.Coordinator.deadline = worker_deadline;
        max_retries = worker_retries;
        backoff = worker_backoff;
      }
    in
    let run_shard ~shard ~span:_ ~attempt:_ =
      M.Coordinator.run_worker
        ~log:(Filename.concat (shard_dir shard) "worker.log")
        ~deadline:worker_deadline ~poll_interval:policy.M.Coordinator.poll_interval
        ~argv:(worker_argv shard) ()
    in
    let report = M.Coordinator.supervise ?trace ~policy ~chunk_size ~runs ~run_shard () in
    Format.eprintf "%a@." M.Coordinator.pp_report report;
    let src = List.mapi (fun i _ -> M.Store.open_root ~dir:(shard_dir (i + 1))) spans in
    let dst = try M.Store.open_root ~dir with Sys_error e -> usage_error "%s" e in
    match M.Store.merge ?trace ~sync:cache_sync ~src dst with
    | Error e -> usage_error "%s" e
    | Ok m ->
        List.iter
          (fun (file, reason) ->
            Format.eprintf "mbpta_cli: quarantined %s: %s@." file reason)
          m.M.Store.quarantined;
        let shards_merged =
          List.mapi (fun i _ -> shard_dir (i + 1)) spans
          |> List.filter (fun d ->
                 List.exists (fun f -> Filename.dirname f = d) m.M.Store.contributed)
          |> List.length
        in
        (match trace with
        | Some t ->
            M.Trace.Counters.add (M.Trace.counters t) "campaign.shards_merged"
              shards_merged
        | None -> ());
        let covered =
          match List.assoc_opt (M.Store.key store_config) m.M.Store.coverage with
          | Some c -> c
          | None -> 0
        in
        if covered < runs then
          Format.eprintf
            "mbpta_cli: partial coverage after merging %d shard store%s: %d/%d runs; \
             the remainder is computed in-process@."
            shards_merged
            (if shards_merged = 1 then "" else "s")
            covered runs
        else
          Format.eprintf "mbpta_cli: merged %d shard store%s; all %d runs covered@."
            shards_merged
            (if shards_merged = 1 then "" else "s")
            runs
  in
  let exit_code =
    match shard with
  | Some (k, n) ->
      (* Worker mode: compute just this shard's span into the store record
         and exit — no analysis, no report.  Always resumes (a retried
         worker continues from its last checkpoint chunk); a record it
         cannot resume is quarantined and the span recomputed, so retries
         converge instead of wedging. *)
      let dir = Option.get cache_dir in
      let spans =
        M.Coordinator.shard_spans ~shards:n ~chunk_size:M.Store.default_chunk_size ~runs
      in
      if k > List.length spans then begin
        Format.printf "shard %d/%d: empty span (campaign has %d checkpoint chunk%s)@." k
          n (List.length spans)
          (if List.length spans = 1 then "" else "s");
        0
      end
      else begin
        let ((lo, hi) as span) = List.nth spans (k - 1) in
        let store = try M.Store.open_root ~dir with Sys_error e -> usage_error "%s" e in
        let key = M.Store.key store_config in
        let open_session () =
          M.Store.open_session ~resume:true ~sync:cache_sync ~shard:span store ~key
            ~config:store_config ~runs ~resilient
        in
        let session =
          match open_session () with
          | Ok s -> s
          | Error e -> (
              Format.eprintf "mbpta_cli: %s; quarantining it and recomputing the shard@."
                e;
              let file = Filename.concat dir (key ^ ".jsonl") in
              (try Sys.rename file (file ^ ".quarantined") with Sys_error _ -> ());
              match open_session () with Ok s -> s | Error e -> usage_error "%s" e)
        in
        Fun.protect ~finally:(fun () -> M.Store.close session) @@ fun () ->
        let result =
          if resilient then
            M.Campaign.collect_shard_resilient ~jobs ?trace ~dispatch ~store:session
              (resilient_input ())
          else M.Campaign.collect_shard ~jobs ?trace ~dispatch ~store:session input
        in
        match result with
        | Error f ->
            Format.eprintf "shard %d/%d failed: %a@." k n M.Protocol.pp_failure f;
            1
        | Ok () ->
            Format.printf "shard %d/%d: runs [%d, %d) of %d recorded in %s@." k n lo hi
              runs dir;
            0
      end
  | None -> (
      let resume =
        if workers > 1 then begin
          coordinate (Option.get cache_dir);
          true
        end
        else resume
      in
      with_store ~cache_dir ~resume ~no_cache ~sync:cache_sync ~config:store_config
        ~runs ~resilient
      @@ fun store ->
      let result =
        if resilient then
          M.Campaign.run_resilient ~jobs ?trace ~dispatch ?store (resilient_input ())
        else M.Campaign.run ~jobs ?trace ~dispatch ?store input
      in
      match result with
  | Error f ->
      Format.eprintf "campaign failed: %a@." M.Protocol.pp_failure f;
      1
  | Ok campaign -> (
      print_endline (M.Campaign.render campaign);
      match
        match csv_dir with
        | None -> ()
        | Some dir ->
            let write name contents =
              M.Export.to_file ~path:(Filename.concat dir name) contents
            in
            write "det_samples.csv"
              (M.Export.samples_csv ~label:"DET" campaign.M.Campaign.det_sample);
            write "rand_samples.csv"
              (M.Export.samples_csv ~label:"RAND" campaign.M.Campaign.rand_sample);
            write "rand_ecdf.csv" (M.Export.ecdf_csv campaign.M.Campaign.rand_sample);
            (match campaign.M.Campaign.analysis with
            | Ok a -> write "pwcet_curve.csv" (M.Export.curve_csv a.M.Protocol.curve)
            | Error _ -> ());
            (match campaign.M.Campaign.comparison with
            | Some c -> write "comparison.csv" (M.Export.comparison_csv c)
            | None -> ());
            Format.printf "CSV data written to %s/@." dir
      with
      | exception Sys_error e ->
          Format.eprintf "mbpta_cli: cannot write CSV: %s@." e;
          1
      | () ->
          (* measurements succeeded (samples are printed/exported either
             way), but a failed analysis is still a failed campaign to the
             caller *)
          (match campaign.M.Campaign.analysis with Ok _ -> 0 | Error _ -> 1)))
  in
  (* Fold the profile into the trace (while it is still open) and print
     the table — worker shards included, so a distributed campaign's
     per-process profiles land in the per-shard logs. *)
  (match trace with
  | Some t when profile -> M.Profile.record_counters (M.Trace.counters t)
  | _ -> ());
  if profile then begin
    match M.Profile.report () with
    | "" -> print_endline "stage profile: (profiler enabled, nothing recorded)"
    | table ->
        print_newline ();
        print_endline "stage profile:";
        print_string table
  end;
  exit_code

let analyze_cmd =
  let factor =
    let doc = "Engineering factor of the industrial MBTA baseline." in
    Arg.(value & opt float 1.5 & info [ "engineering-factor" ] ~docv:"F" ~doc)
  in
  let csv_dir =
    let doc = "Also write samples/ECDF/curve/comparison CSV files to $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv-dir" ] ~docv:"DIR" ~doc)
  in
  let seu_rate =
    let doc =
      "Inject single-event upsets at $(docv) expected upsets per million retired \
       instructions (0 disables injection; the pipeline is then bit-identical to the \
       fault-free one)."
    in
    Arg.(value & opt float 0. & info [ "seu-rate" ] ~docv:"RATE" ~doc)
  in
  let watchdog_budget =
    let doc = "Watchdog cycle budget per run; a run exceeding it is a timeout." in
    Arg.(value & opt (some int) None & info [ "watchdog-budget" ] ~docv:"CYCLES" ~doc)
  in
  let max_retries =
    let doc = "Retries allowed per faulted run before it is quarantined." in
    Arg.(value & opt int 2 & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let min_survival =
    let doc = "Fraction of runs that must survive for the campaign to proceed." in
    Arg.(value & opt float 0.9 & info [ "min-survival" ] ~docv:"FRAC" ~doc)
  in
  let doc = "run the full measurement campaign and print the report" in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const analyze $ runs_arg $ seed_arg $ frames_arg $ tail_arg $ no_gates_arg
      $ bootstrap_arg $ factor $ csv_dir $ seu_rate $ watchdog_budget $ max_retries
      $ min_survival $ jobs_arg $ dispatch_arg $ profile_arg
      $ trace_arg $ trace_level_arg $ cache_dir_arg $ resume_arg $ no_cache_arg
      $ cache_sync_arg $ shard_arg $ workers_arg $ worker_deadline_arg
      $ worker_retries_arg $ worker_backoff_arg)

(* -------------------------------- iid -------------------------------- *)

(* iid and convergence measure the same thing — runs on the randomized
   platform — so they share one store key: a sample recorded by either is
   a warm hit for the other. *)
let rand_collect_store_config ~runs ~seed ~frames =
  [
    ("campaign", "collect_rand");
    ("rand_config", "mbpta_compliant");
    ("seed", Int64.to_string seed);
    ("frames", string_of_int frames);
    ("runs", string_of_int runs);
    ("resilient", "false");
  ]

let iid runs seed frames jobs trace_path trace_level cache_dir resume no_cache cache_sync
    =
  validate_runs runs;
  validate_frames frames;
  let config = base_config ~subcommand:"iid" ~runs ~seed ~frames in
  with_graceful_shutdown ~enabled:(cache_dir <> None && not no_cache) @@ fun () ->
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  with_store ~cache_dir ~resume ~no_cache ~sync:cache_sync
    ~config:(rand_collect_store_config ~runs ~seed ~frames)
    ~runs ~resilient:false
  @@ fun store ->
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let xs = collect_par ?trace ?store ~jobs:(resolve_jobs jobs) rand ~runs in
  let verdict = in_analysis_phase trace (fun () -> M.Iid.check xs) in
  (match trace with Some t -> M.Trace.emit t (M.Trace.iid_event verdict) | None -> ());
  Format.printf "%a@." M.Iid.pp verdict;
  0

let iid_cmd =
  let doc = "collect runs on the randomized platform and verify i.i.d." in
  Cmd.v (Cmd.info "iid" ~doc)
    Term.(
      const iid $ runs_arg $ seed_arg $ frames_arg $ jobs_arg $ trace_arg
      $ trace_level_arg $ cache_dir_arg $ resume_arg $ no_cache_arg $ cache_sync_arg)

(* ---------------------------- convergence ---------------------------- *)

let convergence runs seed frames probability jobs trace_path trace_level cache_dir resume
    no_cache cache_sync =
  validate_runs runs;
  validate_frames frames;
  validate_probability probability;
  let config =
    base_config ~subcommand:"convergence" ~runs ~seed ~frames
    @ [ ("probability", string_of_float probability) ]
  in
  with_graceful_shutdown ~enabled:(cache_dir <> None && not no_cache) @@ fun () ->
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  (* probability is an analysis knob — the measurement key is the shared
     randomized-platform one, so iid/convergence reuse each other's runs *)
  with_store ~cache_dir ~resume ~no_cache ~sync:cache_sync
    ~config:(rand_collect_store_config ~runs ~seed ~frames)
    ~runs ~resilient:false
  @@ fun store ->
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let xs = collect_par ?trace ?store ~jobs:(resolve_jobs jobs) rand ~runs in
  let c = in_analysis_phase trace (fun () -> E.Convergence.study ~probability xs) in
  (match trace with
  | Some t ->
      M.Trace.Counters.add (M.Trace.counters t) "analysis.convergence_steps"
        (List.length c.E.Convergence.history);
      M.Trace.emit t
        (M.Trace.Convergence
           { converged = c.E.Convergence.converged; runs_used = c.E.Convergence.runs_used })
  | None -> ());
  Format.printf "%a@.@." E.Convergence.pp_result c;
  print_string (M.Ascii_plot.convergence_plot c.E.Convergence.history);
  0

let convergence_cmd =
  let probability =
    let doc = "Reference exceedance probability of the tracked estimate." in
    Arg.(value & opt float 1e-9 & info [ "probability" ] ~docv:"P" ~doc)
  in
  let doc = "study how the pWCET estimate stabilizes as runs accumulate" in
  Cmd.v
    (Cmd.info "convergence" ~doc)
    Term.(
      const convergence $ runs_arg $ seed_arg $ frames_arg $ probability $ jobs_arg
      $ trace_arg $ trace_level_arg $ cache_dir_arg $ resume_arg $ no_cache_arg
      $ cache_sync_arg)

(* ------------------------------- paths -------------------------------- *)

let paths runs seed frames jobs trace_path trace_level =
  let jobs = resolve_jobs jobs in
  let config = base_config ~subcommand:"paths" ~runs ~seed ~frames in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let measurements = collect_par ?trace ~jobs rand ~runs in
  let signatures =
    M.Parallel.init ~jobs runs (fun i -> T.Experiment.path_signature rand ~run_index:i)
  in
  let options =
    { M.Protocol.default_options with M.Protocol.check_convergence = false }
  in
  let t = M.Path_analysis.analyze ~options ~measurements ~signatures () in
  Format.printf "%a@." M.Path_analysis.pp t;
  (match M.Path_analysis.pwcet_estimate t ~cutoff_probability:1e-12 with
  | Some v -> Format.printf "max pWCET(1e-12) across analyzed paths: %.0f@." v
  | None ->
      Format.printf
        "no path had enough runs for its own analysis; with continuous inputs@.";
      Format.printf
        "every run tends to follow its own path - analyze the pooled sample@.";
      Format.printf "instead (mbpta_cli analyze), which is sound under randomization.@.");
  0

let paths_cmd =
  let doc = "group runs by execution path and analyze each path separately" in
  Cmd.v (Cmd.info "paths" ~doc)
    Term.(
      const paths $ runs_arg $ seed_arg $ frames_arg $ jobs_arg $ trace_arg
      $ trace_level_arg)

(* ------------------------------ qualify ------------------------------ *)

let qualify algorithm draws seed trace_path trace_level =
  let config =
    [
      ("subcommand", "qualify");
      ("seed", Int64.to_string seed);
      ("draws", string_of_int draws);
    ]
  in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let algorithms =
    match algorithm with
    | Some a -> [ a ]
    | None -> Prng.all_algorithms
  in
  List.iter
    (fun algorithm ->
      let prng = Prng.create ~algorithm seed in
      let verdicts = Quality.qualify ~alpha:0.001 ~draws prng in
      let passed = Quality.all_passed verdicts in
      (match trace with
      | Some t ->
          M.Trace.emit t
            (M.Trace.Note
               (Printf.sprintf "qualify %s: %s" (Prng.algorithm_name algorithm)
                  (if passed then "QUALIFIED" else "REJECTED")))
      | None -> ());
      Format.printf "%-14s %s@." (Prng.algorithm_name algorithm)
        (if passed then "QUALIFIED" else "REJECTED");
      List.iter (fun (n, v) -> Format.printf "  %-24s %a@." n Quality.pp_verdict v) verdicts)
    algorithms;
  0

let qualify_cmd =
  let algorithm =
    let algs =
      [
        ("xorshift128+", Prng.Xorshift128p);
        ("pcg32", Prng.Pcg32);
        ("lfsr64", Prng.Lfsr64);
        ("mwc32", Prng.Mwc32);
      ]
    in
    let doc = "Qualify only this generator (default: all)." in
    Arg.(value & opt (some (enum algs)) None & info [ "algorithm" ] ~docv:"ALG" ~doc)
  in
  let draws =
    let doc = "Draws per statistical test." in
    Arg.(value & opt int 20_000 & info [ "draws" ] ~docv:"N" ~doc)
  in
  let doc = "run the statistical qualification battery on the PRNGs" in
  Cmd.v (Cmd.info "qualify" ~doc)
    Term.(const qualify $ algorithm $ draws $ seed_arg $ trace_arg $ trace_level_arg)

(* -------------------------------- plot -------------------------------- *)

let plot runs seed frames tail qq trace_path trace_level =
  let config =
    base_config ~subcommand:"plot" ~runs ~seed ~frames @ [ ("tail", tail_name tail) ]
  in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let rand = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let xs = collect_par ?trace ~jobs:1 rand ~runs in
  let options = options_of ~tail ~no_gates:true () in
  (match M.Protocol.analyze ~options ?trace xs with
  | Ok a ->
      print_string (M.Ascii_plot.exceedance_plot a.M.Protocol.curve);
      if qq then begin
        let curve = a.M.Protocol.curve in
        let quantile =
          match Repro_evt.Pwcet.model curve with
          | Repro_evt.Pwcet.Gumbel_tail g -> Some (Repro_stats.Distribution.Gumbel.quantile g)
          | Repro_evt.Pwcet.Gev_tail g -> Some (Repro_stats.Distribution.Gev.quantile g)
          | Repro_evt.Pwcet.Pot_tail _ -> None
        in
        match quantile with
        | Some quantile ->
            let maxima =
              Repro_evt.Block_maxima.extract
                ~block_size:(Repro_evt.Pwcet.block_size curve)
                xs
            in
            print_newline ();
            print_string (M.Ascii_plot.qq_plot ~data:maxima ~quantile ())
        | None -> Format.printf "(QQ plot only available for block-maxima tails)@."
      end
  | Error f -> Format.printf "analysis failed: %a@." M.Protocol.pp_failure f);
  0

let plot_cmd =
  let qq =
    let doc = "Also print the quantile-quantile diagnostic of the tail fit." in
    Arg.(value & flag & info [ "qq" ] ~doc)
  in
  let doc = "print the Figure 2 exceedance plot for a fresh measurement set" in
  Cmd.v (Cmd.info "plot" ~doc)
    Term.(
      const plot $ runs_arg $ seed_arg $ frames_arg $ tail_arg $ qq $ trace_arg
      $ trace_level_arg)

(* -------------------------------- trace -------------------------------- *)

let trace_summary file =
  match M.Trace.read_file file with
  | Error e ->
      Format.eprintf "mbpta_cli: %s@." e;
      1
  | Ok events ->
      print_string (M.Trace.summarize events);
      0

let trace_cmd =
  let file_pos =
    let doc = "JSONL trace file produced with --trace." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let summary_cmd =
    let doc = "digest a trace: per-phase runs and timing, faults, verdicts, counters" in
    Cmd.v (Cmd.info "summary" ~doc) Term.(const trace_summary $ file_pos)
  in
  let doc = "inspect JSONL campaign traces" in
  Cmd.group (Cmd.info "trace" ~doc) [ summary_cmd ]

(* -------------------------------- cache -------------------------------- *)

(* Every cache subcommand shares one error contract: a nonexistent,
   unreadable or non-directory store path is a usage error (stderr + exit
   2), while an existing-but-empty directory is a valid empty store.  The
   wrapper also catches [Sys_error] raised while the body scans the
   directory, so a permission change between open and read degrades to the
   same shape instead of an uncaught exception. *)
let with_cache_root dir f =
  if not (Sys.file_exists dir) then usage_error "cache directory %s does not exist" dir;
  if not (Sys.is_directory dir) then usage_error "cache path %s is not a directory" dir;
  let root = try M.Store.open_root ~dir with Sys_error e -> usage_error "%s" e in
  try f root with Sys_error e -> usage_error "%s" e

let cache_ls dir =
  with_cache_root dir @@ fun root ->
  (* header-only listing: index sidecars stand in for the payload scan, so
     ls on a million-run store reads a few lines per record, not gigabytes;
     `cache verify` remains the full-validation pass *)
  let entries = M.Store.ls ~deep:false root in
  if entries = [] then print_endline "cache is empty"
  else
    List.iter (fun e -> Format.printf "%a@." M.Store.pp_entry e) entries;
  0

let cache_verify dir =
  with_cache_root dir @@ fun root ->
  let entries = M.Store.ls root in
  let bad =
    List.filter (fun e -> match e.M.Store.status with M.Store.Corrupt _ -> true | _ -> false) entries
  in
  List.iter (fun e -> Format.printf "%a@." M.Store.pp_entry e) entries;
  Format.printf "%d record%s, %d corrupt@." (List.length entries)
    (if List.length entries = 1 then "" else "s")
    (List.length bad);
  if bad = [] then 0 else 1

let cache_gc partial dir =
  with_cache_root dir @@ fun root ->
  let removed, freed = M.Store.gc ~partial root in
  List.iter (fun e -> Format.printf "removed %a@." M.Store.pp_entry e) removed;
  Format.printf "%d record%s removed, %d bytes freed@." (List.length removed)
    (if List.length removed = 1 then "" else "s")
    freed;
  0

let cache_merge trace_path trace_level sync dirs =
  match List.rev dirs with
  | [] | [ _ ] -> usage_error "cache merge expects SRC... DST (at least two directories)"
  | dst_dir :: rev_src_dirs ->
      let src_dirs = List.rev rev_src_dirs in
      (* sources must exist; the destination is created like --cache-dir *)
      List.iter
        (fun d ->
          if not (Sys.file_exists d) then
            usage_error "cache directory %s does not exist" d;
          if not (Sys.is_directory d) then usage_error "cache path %s is not a directory" d)
        src_dirs;
      let config =
        [ ("subcommand", "cache merge"); ("dst", dst_dir) ]
        @ List.mapi (fun i d -> (Printf.sprintf "src%d" i, d)) src_dirs
      in
      with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
      let open_root d = try M.Store.open_root ~dir:d with Sys_error e -> usage_error "%s" e in
      let src = List.map open_root src_dirs in
      let dst = open_root dst_dir in
      (match M.Store.merge ?trace ~sync ~src dst with
      | Error e -> usage_error "%s" e
      | Ok m ->
          Format.printf "merged %d record%s (%d chunk%s) into %s@." m.M.Store.records_merged
            (if m.M.Store.records_merged = 1 then "" else "s")
            m.M.Store.chunks_merged
            (if m.M.Store.chunks_merged = 1 then "" else "s")
            dst_dir;
          List.iter
            (fun (key, covered) ->
              Format.printf "  %s  contiguous coverage: %d run%s@." key covered
                (if covered = 1 then "" else "s"))
            m.M.Store.coverage;
          List.iter
            (fun (file, reason) -> Format.printf "  quarantined %s: %s@." file reason)
            m.M.Store.quarantined;
          List.iter
            (fun (file, reason) -> Format.printf "  skipped %s: %s@." file reason)
            m.M.Store.skipped;
          (* quarantining is graceful degradation, not failure: the merged
             record stays valid and `cache verify` reports the quarantine *)
          0)

let cache_export out dir skey =
  with_cache_root dir @@ fun root ->
  (* stream the record to the sink in bounded memory — export never holds
     more than one copy buffer of a million-run record at once *)
  let to_channel oc = M.Store.export_to root ~key:skey oc in
  match out with
  | None -> (
      match to_channel stdout with
      | Error e -> usage_error "%s" e
      | Ok () ->
          flush stdout;
          0)
  | Some path -> (
      let oc = try open_out_bin path with Sys_error e -> usage_error "%s" e in
      let r = to_channel oc in
      close_out oc;
      match r with
      | Error e ->
          (try Sys.remove path with Sys_error _ -> ());
          usage_error "%s" e
      | Ok () ->
          Format.printf "exported %s to %s@." skey path;
          0)

let cache_cmd =
  let dir_pos =
    let doc = "Store directory (the one passed to --cache-dir)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let ls_cmd =
    let doc = "list every record: key, run count, coverage, size, status" in
    Cmd.v (Cmd.info "ls" ~doc) Term.(const cache_ls $ dir_pos)
  in
  let verify_cmd =
    let doc =
      "fully validate every record (per-record checksums, chunk layout, content digest \
       vs filename); exit 1 if any record is corrupt"
    in
    Cmd.v (Cmd.info "verify" ~doc) Term.(const cache_verify $ dir_pos)
  in
  let gc_cmd =
    let partial =
      let doc =
        "Also remove partial (interrupted but resumable) records, not just corrupt \
         ones."
      in
      Arg.(value & flag & info [ "partial" ] ~doc)
    in
    let doc = "remove corrupt records (and, with --partial, interrupted ones)" in
    Cmd.v (Cmd.info "gc" ~doc) Term.(const cache_gc $ partial $ dir_pos)
  in
  let merge_cmd =
    let dirs_pos =
      let doc =
        "Source store directories followed by the destination (the last argument)."
      in
      Arg.(non_empty & pos_all string [] & info [] ~docv:"DIR" ~doc)
    in
    let doc =
      "merge shard stores: for every key, verify each candidate record's integrity \
       (quarantining any that fail — bit flips, truncation, foreign records), union \
       their chunks, and write the maximal contiguous record into DST atomically \
       (tmp+rename); byte-identical to a single-process record and idempotent"
    in
    Cmd.v (Cmd.info "merge" ~doc)
      Term.(const cache_merge $ trace_arg $ trace_level_arg $ cache_sync_arg $ dirs_pos)
  in
  let export_cmd =
    let key_pos =
      let doc = "Record key (the filename stem shown by `cache ls`)." in
      Arg.(required & pos 1 (some string) None & info [] ~docv:"KEY" ~doc)
    in
    let out =
      let doc = "Write to $(docv) instead of stdout." in
      Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
    in
    let doc =
      "print a record's verified content (meta line plus valid chunk lines, verbatim) \
       — the transport format for moving records between stores by hand"
    in
    Cmd.v (Cmd.info "export" ~doc) Term.(const cache_export $ out $ dir_pos $ key_pos)
  in
  let doc = "inspect and maintain the content-addressed measurement store" in
  Cmd.group (Cmd.info "cache" ~doc)
    [ ls_cmd; verify_cmd; gc_cmd; merge_cmd; export_cmd ]

(* ------------------------------- serve -------------------------------- *)

module Srv = Repro_serve

let socket_arg =
  let doc = "Unix-domain socket path the daemon listens on (client: connects to)." in
  Arg.(
    required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve socket cache_dir jobs max_queue max_clients trace_path trace_level =
  let jobs = resolve_jobs jobs in
  if max_queue < 0 then usage_error "--max-queue must be >= 0 (got %d)" max_queue;
  if max_clients < 1 then usage_error "--max-clients must be >= 1 (got %d)" max_clients;
  let config =
    [ ("subcommand", "serve"); ("socket", socket); ("cache_dir", cache_dir) ]
  in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  M.Shutdown.install ();
  let cfg =
    {
      Srv.Server.socket_path = socket;
      store_dir = cache_dir;
      jobs;
      max_queue;
      max_clients;
      trace;
    }
  in
  match Srv.Server.start cfg with
  | Error e -> usage_error "%s" e
  | Ok server ->
      Format.eprintf
        "mbpta serve: listening on %s (store %s, %d jobs, queue %d, %d clients)@." socket
        cache_dir jobs max_queue max_clients;
      Srv.Server.wait server;
      Format.eprintf "mbpta serve: drained (%s)@."
        (match M.Shutdown.reason () with Some r -> r | None -> "stopped");
      0

let serve_cmd =
  let cache_dir =
    let doc = "Store root the daemon records to and serves warm answers from." in
    Arg.(required & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let max_queue =
    let doc =
      "Cold campaigns allowed to wait behind the one in flight; further campaign \
       requests are rejected immediately with a typed overload response."
    in
    Arg.(value & opt int 8 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let max_clients =
    let doc = "Concurrent client connections; the rest are rejected, never queued." in
    Arg.(value & opt int 32 & info [ "max-clients" ] ~docv:"N" ~doc)
  in
  let doc = "run the campaign daemon (deduplicating, store-backed, drains on SIGTERM)" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket_arg $ cache_dir $ jobs_arg $ max_queue $ max_clients
      $ trace_arg $ trace_level_arg)

(* ------------------------------- client ------------------------------- *)

(* Report text goes to stdout (so CI can diff it against `analyze` byte
   for byte); serving metadata — how it was served, the per-request
   counters — goes to stderr where the smoke test greps it. *)
let client_render_counters counters =
  List.iter (fun (k, v) -> Format.eprintf "mbpta client: counter %s = %d@." k v) counters

let client socket action runs seed frames tail no_gates bootstrap factor seu_rate
    watchdog_budget max_retries min_survival probability events =
  validate_runs runs;
  validate_frames frames;
  validate_engineering_factor factor;
  validate_min_survival min_survival;
  if seu_rate < 0. then usage_error "--seu-rate must be >= 0 (got %g)" seu_rate;
  if bootstrap <> 0 && bootstrap < 20 then
    usage_error "--bootstrap must be 0 (off) or >= 20 replicates (got %d)" bootstrap;
  let spec =
    {
      Srv.Serve_protocol.runs;
      seed;
      frames;
      tail;
      no_gates;
      bootstrap;
      engineering_factor = factor;
      seu_rate;
      watchdog_budget;
      max_retries;
      min_survival;
    }
  in
  let req =
    match action with
    | "campaign" -> Srv.Serve_protocol.Campaign { spec; events }
    | "pwcet" ->
        validate_probability probability;
        Srv.Serve_protocol.Query { spec; query = Srv.Serve_protocol.Pwcet probability }
    | "iid" -> Srv.Serve_protocol.Query { spec; query = Srv.Serve_protocol.Iid_verdict }
    | "status" -> Srv.Serve_protocol.Status
    | "shutdown" -> Srv.Serve_protocol.Shutdown
    | a -> usage_error "unknown action %s (expected campaign|pwcet|iid|status|shutdown)" a
  in
  let on_event e =
    Format.eprintf "mbpta client: event %s@."
      (M.Trace.Json.to_string (M.Trace.json_of_event e))
  in
  match Srv.Client.request ~on_event ~socket_path:socket req with
  | Error e ->
      Format.eprintf "mbpta client: %s@." e;
      1
  | Ok (Srv.Serve_protocol.Report { key; served; report; counters }) ->
      Format.eprintf "mbpta client: served %s (key %s)@."
        (Srv.Serve_protocol.served_name served)
        key;
      client_render_counters counters;
      print_string report;
      print_newline ();
      0
  | Ok (Srv.Serve_protocol.Answer { key; query; value; counters }) ->
      Format.eprintf "mbpta client: answered warm (key %s)@." key;
      client_render_counters counters;
      (match (query, value) with
      | Srv.Serve_protocol.Pwcet p, M.Trace.Json.Float v ->
          Format.printf "pWCET(%.3g) = %.17g cycles@." p v
      | _, v -> Format.printf "%s@." (M.Trace.Json.to_string v));
      0
  | Ok (Srv.Serve_protocol.Miss { key; reason }) ->
      Format.eprintf "mbpta client: miss for key %s: %s@." key reason;
      3
  | Ok (Srv.Serve_protocol.Rejected { reason; detail }) ->
      Format.eprintf "mbpta client: rejected (%s): %s@." reason detail;
      3
  | Ok
      (Srv.Serve_protocol.Status_report
        { queue_depth; in_flight; clients; max_queue; max_clients; counters }) ->
      Format.printf "queue %d/%d, in flight %d, clients %d/%d@." queue_depth max_queue
        in_flight clients max_clients;
      client_render_counters counters;
      0
  | Ok Srv.Serve_protocol.Shutdown_ack ->
      Format.printf "shutdown requested; the daemon drains and exits@.";
      0
  | Ok (Srv.Serve_protocol.Failed msg) ->
      Format.eprintf "mbpta client: request failed: %s@." msg;
      1
  | Ok (Srv.Serve_protocol.Event _) ->
      (* the client library consumes events; a trailing one is a protocol bug *)
      Format.eprintf "mbpta client: protocol error: dangling event line@.";
      1

let client_cmd =
  let action =
    let doc =
      "What to ask the daemon: campaign (full report, computed or warm), pwcet \
       (warm-only estimate at --probability), iid (warm-only i.i.d. verdict), status, \
       or shutdown."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ACTION" ~doc)
  in
  let probability =
    let doc = "Cutoff probability of the pwcet query." in
    Arg.(value & opt float 1e-9 & info [ "probability" ] ~docv:"P" ~doc)
  in
  let events =
    let doc = "Stream the campaign's trace events to stderr while it computes." in
    Arg.(value & flag & info [ "events" ] ~doc)
  in
  let factor =
    let doc = "Engineering factor of the industrial MBTA baseline." in
    Arg.(value & opt float 1.5 & info [ "engineering-factor" ] ~docv:"F" ~doc)
  in
  let seu_rate =
    let doc = "Expected upsets per million retired instructions (0 disables)." in
    Arg.(value & opt float 0. & info [ "seu-rate" ] ~docv:"RATE" ~doc)
  in
  let watchdog_budget =
    let doc = "Watchdog cycle budget per run; a run exceeding it is a timeout." in
    Arg.(value & opt (some int) None & info [ "watchdog-budget" ] ~docv:"CYCLES" ~doc)
  in
  let max_retries =
    let doc = "Retries allowed per faulted run before it is quarantined." in
    Arg.(value & opt int 2 & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let min_survival =
    let doc = "Fraction of runs that must survive for the campaign to proceed." in
    Arg.(value & opt float 0.9 & info [ "min-survival" ] ~docv:"FRAC" ~doc)
  in
  let doc = "send one request to a running [mbpta serve] daemon" in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const client $ socket_arg $ action $ runs_arg $ seed_arg $ frames_arg $ tail_arg
      $ no_gates_arg $ bootstrap_arg $ factor $ seu_rate $ watchdog_budget $ max_retries
      $ min_survival $ probability $ events)

(* ------------------------------- shuffle ------------------------------- *)

(* One campaign per schedule-randomization policy: measure worst-case task
   response times under the randomized schedule, analyze them like any
   other MBPTA sample, and report schedule-diversity metrics next to the
   pWCET impact.  Every schedule derives from [Experiment.schedule_seed],
   a pure function of [(base_seed, run_index)], so the whole subcommand is
   bit-identical at any --jobs. *)
let shuffle runs seed frames tail no_gates jobs period max_jitter horizon context_switch
    policies trace_path trace_level =
  let jobs = resolve_jobs jobs in
  validate_runs runs;
  validate_frames frames;
  if period < 1 then usage_error "--period must be >= 1 (got %d)" period;
  if max_jitter < 0 then usage_error "--max-jitter must be >= 0 (got %d)" max_jitter;
  if horizon < period then
    usage_error "--horizon must cover at least one period (got %d < %d)" horizon period;
  if context_switch < 0 then
    usage_error "--context-switch must be >= 0 (got %d)" context_switch;
  let policies = match policies with [] -> T.Rtos.all_policies | ps -> ps in
  let config =
    base_config ~subcommand:"shuffle" ~runs ~seed ~frames
    @ [
        ("tail", tail_name tail);
        ("period", string_of_int period);
        ("max_jitter", string_of_int max_jitter);
        ("horizon", string_of_int horizon);
        ("policies", String.concat "," (List.map T.Rtos.policy_name policies));
      ]
  in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let exp = experiment ~config:P.Config.mbpta_compliant ~seed ~frames in
  let options = options_of ~seed ~tail ~no_gates () in
  let campaign policy =
    let name = T.Rtos.policy_name policy in
    let phase = "shuffle_" ^ name in
    (match trace with Some t -> M.Trace.phase_start t phase | None -> ());
    let results =
      M.Parallel.init ?trace ~jobs runs (fun i ->
          T.Experiment.run_schedule exp ~context_switch ~policy ~period ~max_jitter
            ~horizon ~run_index:i ())
    in
    let sample = Array.map (fun r -> r.T.Experiment.worst_response) results in
    let rnd =
      T.Rtos.randomization_of_signatures
        (Array.to_list (Array.map (fun r -> r.T.Experiment.signature) results))
    in
    (match trace with
    | Some t ->
        M.Trace.emit_sample t ~phase sample;
        let c = M.Trace.counters t in
        let add k v = M.Trace.Counters.add c (Printf.sprintf "shuffle.%s.%s" name k) v in
        add "runs" rnd.T.Rtos.schedules;
        add "distinct_schedules" rnd.T.Rtos.distinct;
        add "entropy_millibits"
          (int_of_float (Float.round (rnd.T.Rtos.entropy_bits *. 1000.)));
        add "vulnerability_ppm"
          (int_of_float (Float.round (rnd.T.Rtos.vulnerability *. 1e6)));
        Array.iter
          (fun r ->
            add "preemptions" r.T.Experiment.preemptions;
            add "skipped_releases" r.T.Experiment.skipped_releases)
          results;
        M.Trace.phase_end t phase
    | None -> ());
    let analysis =
      in_analysis_phase trace (fun () -> M.Protocol.analyze ~options ~jobs ?trace sample)
    in
    let pwcet_at_1e6, analysis_note =
      match analysis with
      | Ok a ->
          (Some (E.Pwcet.estimate a.M.Protocol.curve ~cutoff_probability:1e-6), None)
      | Error f -> (None, Some (Format.asprintf "%a" M.Protocol.pp_failure f))
    in
    ( analysis,
      {
        M.Report.policy = name;
        summary = Repro_stats.Descriptive.summarize sample;
        pwcet_at_1e6;
        analysis_note;
        schedules = rnd.T.Rtos.schedules;
        distinct_schedules = rnd.T.Rtos.distinct;
        entropy_bits = rnd.T.Rtos.entropy_bits;
        vulnerability = rnd.T.Rtos.vulnerability;
      } )
  in
  let outcomes = List.map campaign policies in
  print_endline (M.Report.render_shuffle (List.map snd outcomes));
  if List.for_all (fun (a, _) -> Result.is_ok a) outcomes then 0 else 1

let shuffle_cmd =
  let period =
    let doc = "Release period of the three TVCA tasks, cycles." in
    Arg.(value & opt int 60_000 & info [ "period" ] ~docv:"CYCLES" ~doc)
  in
  let max_jitter =
    let doc = "Upper bound of the per-task release delay drawn by the jitter policy." in
    Arg.(value & opt int 2_000 & info [ "max-jitter" ] ~docv:"CYCLES" ~doc)
  in
  let horizon =
    let doc = "Cycles simulated per run (jobs in flight at the horizon are abandoned)." in
    Arg.(value & opt int 240_000 & info [ "horizon" ] ~docv:"CYCLES" ~doc)
  in
  let context_switch =
    let doc = "Cycles charged whenever the running job changes." in
    Arg.(value & opt int 40 & info [ "context-switch" ] ~docv:"CYCLES" ~doc)
  in
  let policies =
    let policy =
      Arg.conv
        ( (fun s -> Result.map_error (fun e -> `Msg e) (T.Rtos.policy_of_string s)),
          fun ppf p -> Format.pp_print_string ppf (T.Rtos.policy_name p) )
    in
    let doc =
      "Run only this schedule-randomization policy (repeatable): fixed, shuffle or \
       jitter.  Default: all three."
    in
    Arg.(value & opt_all policy [] & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let doc =
    "campaign per schedule-randomization policy: pWCET impact + schedule entropy"
  in
  Cmd.v (Cmd.info "shuffle" ~doc)
    Term.(
      const shuffle $ runs_arg $ seed_arg $ frames_arg $ tail_arg $ no_gates_arg
      $ jobs_arg $ period $ max_jitter $ horizon $ context_switch $ policies $ trace_arg
      $ trace_level_arg)

(* -------------------------------- leak --------------------------------- *)

(* Two-sample timing-leak comparator (dudect-style): collect two campaigns
   — each either varying its input scenario per run ("random class") or
   pinning it to one scenario index (a "fixed class", the secret-dependent
   variant) on a DET or RAND platform — and test whether their
   execution-time means are distinguishable (Welch's t) and by how much
   (Cohen's d).  The canonical protocols: two fixed classes with different
   indices on DET expose the input through timing; the same pair on RAND
   shows the randomized platform masking it. *)
let leak runs seed seed_b frames alpha platform_a platform_b fixed_a fixed_b jobs
    trace_path trace_level =
  let jobs = resolve_jobs jobs in
  validate_runs runs;
  validate_frames frames;
  if runs < 2 then usage_error "--runs must be >= 2 for a two-sample test (got %d)" runs;
  if not (alpha > 0. && alpha < 1.) then
    usage_error "--alpha must lie in (0, 1) (got %g)" alpha;
  (match (fixed_a, fixed_b) with
  | Some i, _ when i < 0 -> usage_error "--fixed-input-a must be >= 0 (got %d)" i
  | _, Some i when i < 0 -> usage_error "--fixed-input-b must be >= 0 (got %d)" i
  | _ -> ());
  let seed_b = match seed_b with Some s -> s | None -> seed in
  let platform_config = function
    | "det" -> P.Config.deterministic
    | "rand" -> P.Config.mbpta_compliant
    | p -> usage_error "unknown platform %s (expected det|rand)" p
  in
  let label platform fixed s =
    Printf.sprintf "%s/%s/seed=%Ld" platform
      (match fixed with
      | Some i -> Printf.sprintf "input-%d" i
      | None -> "varying-input")
      s
  in
  let config =
    base_config ~subcommand:"leak" ~runs ~seed ~frames
    @ [
        ("alpha", string_of_float alpha);
        ("a", label platform_a fixed_a seed);
        ("b", label platform_b fixed_b seed_b);
      ]
  in
  with_trace ~path:trace_path ~level:trace_level ~config @@ fun trace ->
  let collect which ~platform ~fixed ~seed =
    let exp = experiment ~config:(platform_config platform) ~seed ~frames in
    let phase = "leak_" ^ which in
    (match trace with Some t -> M.Trace.phase_start t phase | None -> ());
    let measure =
      match fixed with
      | Some scenario_index ->
          fun i -> T.Experiment.measure_fixed_scenario exp ~scenario_index ~run_index:i
      | None -> measure_with_counters trace exp ~prefix:(which ^ ".")
    in
    let xs = M.Parallel.init ?trace ~jobs runs measure in
    (match trace with
    | Some t ->
        M.Trace.emit_sample t ~phase xs;
        M.Trace.phase_end t phase
    | None -> ());
    xs
  in
  let xs = collect "a" ~platform:platform_a ~fixed:fixed_a ~seed in
  let ys = collect "b" ~platform:platform_b ~fixed:fixed_b ~seed:seed_b in
  let verdict =
    in_analysis_phase trace (fun () ->
        M.Report.leak_verdict ~alpha ~label_a:(label platform_a fixed_a seed)
          ~label_b:(label platform_b fixed_b seed_b)
          xs ys)
  in
  (match trace with
  | Some t ->
      let c = M.Trace.counters t in
      M.Trace.Counters.add c "leak.detected" (if verdict.M.Report.leak then 1 else 0);
      M.Trace.Counters.add c "leak.p_ppm"
        (int_of_float
           (Float.round (verdict.M.Report.welch.Repro_stats.Welch.p_value *. 1e6)))
  | None -> ());
  print_endline (M.Report.render_leak verdict);
  0

let leak_cmd =
  let seed_b =
    let doc =
      "Base seed of campaign B (default: the same --seed; give a different one to \
       compare two independent samplings of the same configuration)."
    in
    Arg.(value & opt (some int64) None & info [ "seed-b" ] ~docv:"SEED" ~doc)
  in
  let alpha =
    let doc = "Significance level of the Welch test (reject equal means below it)." in
    Arg.(value & opt float 0.05 & info [ "alpha" ] ~docv:"ALPHA" ~doc)
  in
  let platform = Arg.enum [ ("det", "det"); ("rand", "rand") ] in
  let platform_a =
    let doc = "Platform of campaign A: det or rand." in
    Arg.(value & opt platform "rand" & info [ "platform-a" ] ~docv:"PLATFORM" ~doc)
  in
  let platform_b =
    let doc = "Platform of campaign B: det or rand." in
    Arg.(value & opt platform "rand" & info [ "platform-b" ] ~docv:"PLATFORM" ~doc)
  in
  let fixed_a =
    let doc =
      "Pin campaign A's input scenario to index $(docv) (a secret-dependent class); \
       platform randomization still varies per run.  Default: a fresh scenario per \
       run (the random class)."
    in
    Arg.(value & opt (some int) None & info [ "fixed-input-a" ] ~docv:"INDEX" ~doc)
  in
  let fixed_b =
    let doc = "Pin campaign B's input scenario to index $(docv)." in
    Arg.(value & opt (some int) None & info [ "fixed-input-b" ] ~docv:"INDEX" ~doc)
  in
  let doc = "two-campaign timing-leak test (Welch's t + Cohen's d, typed verdict)" in
  Cmd.v (Cmd.info "leak" ~doc)
    Term.(
      const leak $ runs_arg $ seed_arg $ seed_b $ frames_arg $ alpha $ platform_a
      $ platform_b $ fixed_a $ fixed_b $ jobs_arg $ trace_arg $ trace_level_arg)

(* -------------------------------- main -------------------------------- *)

let () =
  let doc =
    "measurement-based probabilistic timing analysis on a time-randomized platform"
  in
  let info = Cmd.info "mbpta_cli" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        analyze_cmd;
        iid_cmd;
        convergence_cmd;
        paths_cmd;
        qualify_cmd;
        plot_cmd;
        shuffle_cmd;
        leak_cmd;
        trace_cmd;
        cache_cmd;
        serve_cmd;
        client_cmd;
      ]
  in
  exit (Cmd.eval' group)
