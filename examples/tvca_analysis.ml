(* The paper's Space case study, end to end: the Thrust Vector Control
   Application measured on the deterministic (DET) and time-randomized
   MBPTA-compliant (RAND) LEON3-class platforms, analyzed with the full
   MBPTA protocol and compared against the industrial MBTA bound.

   This reproduces (at reduced run count by default) the evaluation of
   Section III: i.i.d. verification, the Figure 2 pWCET plot, the Figure 3
   comparison and the average-performance check.

   Run with:  dune exec examples/tvca_analysis.exe -- [runs]   (default 1000) *)

module P = Repro_platform
module T = Repro_tvca
module M = Repro_mbpta

let () =
  let runs =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1000
  in
  Format.printf "TVCA on the reference 4-core LEON3-class platform, %d runs per config@."
    runs;
  let det = T.Experiment.create ~config:P.Config.deterministic ~base_seed:2017L () in
  let rand = T.Experiment.create ~config:P.Config.mbpta_compliant ~base_seed:2017L () in
  (* Sanity: the generated flight code computes exactly what the control
     model specifies, on either platform. *)
  let worst_diff = T.Experiment.check_functional rand ~run_index:0 in
  Format.printf "generated code vs golden model, worst command difference: %g@." worst_diff;
  assert (worst_diff = 0.);
  let input =
    {
      (M.Campaign.default_input
         ~measure_det:(fun i -> T.Experiment.measure det ~run_index:i)
         ~measure_rand:(fun i -> T.Experiment.measure rand ~run_index:i))
      with
      M.Campaign.runs;
    }
  in
  match M.Campaign.run input with
  | Ok campaign -> print_endline (M.Campaign.render campaign)
  | Error f -> Format.printf "campaign failed: %a@." M.Protocol.pp_failure f
