(* A measurement campaign under radiation: single-event upsets (SEUs) are
   injected into cache tags, TLB entries and executor registers while the
   TVCA runs, and the resilient campaign runner classifies, retries and
   quarantines the affected runs instead of dying on the first divergence.

   Demonstrates:
     1. fault-free and faulted pipelines agree exactly at --seu-rate 0;
     2. injected faults are detected, retried and reported per run;
     3. the whole fault schedule is reproducible from the base seed.

   Run with:  dune exec examples/fault_campaign.exe -- [runs] [seu_rate]
              (defaults: 400 runs, 40 upsets per million instructions) *)

module P = Repro_platform
module T = Repro_tvca
module M = Repro_mbpta

let outcome_of = function
  | T.Experiment.Completed { metrics; _ } ->
      M.Resilience.Completed (float_of_int (P.Metrics.cycles metrics))
  | T.Experiment.Watchdog { cycles; budget; _ } ->
      M.Resilience.Timeout
        { detail = Printf.sprintf "watchdog at %d cycles (budget %d)" cycles budget }
  | T.Experiment.Runaway { program; _ } ->
      M.Resilience.Timeout { detail = "runaway execution of " ^ program }
  | T.Experiment.Crashed { detail; _ } -> M.Resilience.Crashed { detail }
  | T.Experiment.Corrupted { worst_error; _ } ->
      M.Resilience.Corrupted { detail = Printf.sprintf "worst output error %g" worst_error }

let () =
  let runs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 400 in
  let seu_rate = if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 40. in
  let base_seed = 2017L in
  let det = T.Experiment.create ~config:P.Config.deterministic ~base_seed () in
  let rand = T.Experiment.create ~config:P.Config.mbpta_compliant ~base_seed () in

  (* 1. rate 0 is bit-identical to the fault-free pipeline *)
  let fault0 = T.Experiment.fault_config () in
  (match T.Experiment.run_faulty rand ~fault:fault0 ~run_index:0 () with
  | T.Experiment.Completed { metrics; _ } ->
      let plain = T.Experiment.measure rand ~run_index:0 in
      Format.printf "SEU rate 0: faulted pipeline %d cycles, plain pipeline %.0f  (%s)@."
        (P.Metrics.cycles metrics) plain
        (if float_of_int (P.Metrics.cycles metrics) = plain then "identical" else "MISMATCH!")
  | o -> Format.printf "unexpected outcome at rate 0: %a@." T.Experiment.pp_fault_outcome o);

  (* 2. the resilient campaign under radiation *)
  let fault = T.Experiment.fault_config ~seu_rate ~watchdog_budget:2_000_000 () in
  let measure exp ~run_index ~attempt =
    outcome_of (T.Experiment.run_faulty exp ~fault ~attempt ~run_index ())
  in
  let base =
    {
      (M.Campaign.default_input
         ~measure_det:(fun i -> T.Experiment.measure det ~run_index:i)
         ~measure_rand:(fun i -> T.Experiment.measure rand ~run_index:i))
      with
      M.Campaign.runs;
      M.Campaign.options =
        {
          M.Protocol.default_options with
          M.Protocol.check_convergence = false;
          M.Protocol.gate_on_iid = false;
        };
    }
  in
  let policy = { M.Resilience.default_policy with M.Resilience.max_retries = 3 } in
  Format.printf "@.%d runs per platform at %.0f SEUs / M instructions:@.@." runs seu_rate;
  (match
     M.Campaign.run_resilient
       (M.Campaign.resilient_input ~policy ~base ~measure_det_outcome:(measure det)
          ~measure_rand_outcome:(measure rand) ())
   with
  | Error f -> Format.printf "campaign failed: %a@." M.Protocol.pp_failure f
  | Ok campaign -> print_endline (M.Campaign.render campaign));

  (* 3. determinism: replay one faulted run, compare the fault log *)
  let show run_index =
    let o = T.Experiment.run_faulty rand ~fault ~run_index () in
    Format.asprintf "%a / %a" T.Experiment.pp_fault_outcome o
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         P.Fault.pp_record)
      (T.Experiment.fault_records o)
  in
  let first = show 1 and replay = show 1 in
  Format.printf "@.replay of run 1: %s@."
    (if first = replay then "bit-identical fault schedule and outcome" else "DIVERGED!");
  Format.printf "  %s@." first
