(* Tests for repro_isa: program validation, layout placement, memory,
   builder loops, executor semantics (arithmetic, control flow, calls,
   loads/stores, work records), path signatures and runaway protection. *)

module I = Repro_isa.Instr
module Program = Repro_isa.Program
module Layout = Repro_isa.Layout
module Memory = Repro_isa.Memory
module Builder = Repro_isa.Builder
module Executor = Repro_isa.Executor

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-12)
let qtest = QCheck_alcotest.to_alcotest

let run_quiet ?max_instructions program memory =
  let layout = Layout.sequential program in
  Executor.run ?max_instructions ~program ~layout ~memory ~on_retire:(fun _ -> ()) ()

(* ------------------------------------------------------------------ *)
(* Program validation *)

let simple_program code =
  Program.create ~name:"t" ~code:(Array.of_list code) ~labels:[ ("main", 0) ]
    ~data:[ { Program.symbol = "d"; elements = 8 } ]
    ~entry:"main"

let test_program_valid () =
  let p = simple_program [ I.Li (0, 1); I.Halt ] in
  checki "length" 2 (Program.length p);
  checki "label" 0 (Program.label_index p "main")

let test_program_rejects_bad_label () =
  checkb "undefined branch target" true
    (try
       ignore (simple_program [ I.Jmp "nowhere"; I.Halt ]);
       false
     with Invalid_argument _ -> true)

let test_program_rejects_bad_register () =
  checkb "register out of range" true
    (try
       ignore (simple_program [ I.Li (16, 1); I.Halt ]);
       false
     with Invalid_argument _ -> true)

let test_program_rejects_bad_symbol () =
  checkb "undefined data symbol" true
    (try
       ignore (simple_program [ I.Fld (0, { I.base = "nope"; index_reg = None; offset = 0 }) ]);
       false
     with Invalid_argument _ -> true)

let test_program_rejects_duplicate_label () =
  checkb "duplicate label" true
    (try
       ignore
         (Program.create ~name:"t" ~code:[| I.Halt |] ~labels:[ ("a", 0); ("a", 0) ]
            ~data:[] ~entry:"a");
       false
     with Invalid_argument _ -> true)

let test_program_rejects_unknown_entry () =
  checkb "unknown entry" true
    (try
       ignore (Program.create ~name:"t" ~code:[| I.Halt |] ~labels:[] ~data:[] ~entry:"main");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Layout *)

let layout_program =
  Program.create ~name:"lay" ~code:[| I.Halt |] ~labels:[ ("main", 0) ]
    ~data:
      [
        { Program.symbol = "a"; elements = 4 };
        { Program.symbol = "b"; elements = 2 };
      ]
    ~entry:"main"

let test_layout_sequential () =
  let l = Layout.sequential ~code_base:0x1000 ~data_base:0x2000 layout_program in
  checki "code addr" 0x1000 (Layout.code_address l 0);
  checki "code addr 3" (0x1000 + 12) (Layout.code_address l 3);
  checki "a[0]" 0x2000 (Layout.data_address l ~symbol:"a" ~element:0);
  checki "a[3]" (0x2000 + 24) (Layout.data_address l ~symbol:"a" ~element:3);
  checki "b follows a" (0x2000 + 32) (Layout.data_address l ~symbol:"b" ~element:0)

let test_layout_bounds () =
  let l = Layout.sequential layout_program in
  checkb "oob" true
    (try
       ignore (Layout.data_address l ~symbol:"a" ~element:4);
       false
     with Invalid_argument _ -> true);
  checkb "unknown symbol" true
    (try
       ignore (Layout.data_address l ~symbol:"zz" ~element:0);
       false
     with Not_found -> true)

let test_layout_shifted () =
  let base = Layout.sequential layout_program in
  let moved = Layout.shifted ~offset:64 layout_program in
  checki "shift applied" 64
    (Layout.data_address moved ~symbol:"a" ~element:0
    - Layout.data_address base ~symbol:"a" ~element:0)

let test_layout_scrambled_deterministic () =
  let l1 = Layout.scrambled ~seed:5L layout_program in
  let l2 = Layout.scrambled ~seed:5L layout_program in
  let l3 = Layout.scrambled ~seed:6L layout_program in
  checki "same seed same layout"
    (Layout.data_address l1 ~symbol:"a" ~element:0)
    (Layout.data_address l2 ~symbol:"a" ~element:0);
  checkb "different seed may differ" true
    (Layout.data_address l1 ~symbol:"a" ~element:0
     <> Layout.data_address l3 ~symbol:"a" ~element:0
    || Layout.code_address l1 0 <> Layout.code_address l3 0)

let test_layout_scrambled_no_overlap =
  qtest
    (QCheck.Test.make ~name:"scrambled symbols never overlap" ~count:100 QCheck.int64
       (fun seed ->
         let l = Layout.scrambled ~seed layout_program in
         let range sym n =
           let lo = Layout.data_address l ~symbol:sym ~element:0 in
           (lo, lo + (n * Layout.element_bytes))
         in
         let a_lo, a_hi = range "a" 4 and b_lo, b_hi = range "b" 2 in
         a_hi <= b_lo || b_hi <= a_lo))

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_memory_basics () =
  let m = Memory.create layout_program in
  checkf "zero init" 0. (Memory.get m "a" 0);
  Memory.set m "a" 2 3.5;
  checkf "set/get" 3.5 (Memory.get m "a" 2);
  Memory.load_array m "b" [| 1.; 2. |];
  checkf "load_array" 2. (Memory.get m "b" 1);
  let snapshot = Memory.read_array m "a" in
  snapshot.(0) <- 99.;
  checkf "read_array copies" 0. (Memory.get m "a" 0);
  let live = Memory.raw m "a" in
  live.(0) <- 7.;
  checkf "raw shares" 7. (Memory.get m "a" 0)

let test_memory_unknown_symbol () =
  let m = Memory.create layout_program in
  checkb "unknown" true
    (try
       ignore (Memory.get m "zzz" 0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Builder *)

let test_builder_counted_loop () =
  (* sum 0..9 into data cell d[0] via f0 *)
  let b = Builder.create ~name:"loop" in
  Builder.declare_data b ~symbol:"d" ~elements:1;
  Builder.label b "main";
  Builder.emit b (I.Fli (0, 0.));
  Builder.counted_loop b ~counter:4 ~from_:0 ~below:10 (fun () ->
      Builder.emit b (I.Icvt (1, 4));
      Builder.emit b (I.Fadd (0, 0, 1)));
  Builder.emit b (I.Fst (0, Builder.at "d"));
  Builder.emit b I.Halt;
  let p = Builder.build b ~entry:"main" in
  let m = Memory.create p in
  let stats = run_quiet p m in
  checkf "sum 0..9" 45. (Memory.get m "d" 0);
  checkb "ran a plausible count" true (stats.Executor.retired > 30)

let test_builder_fresh_labels_unique () =
  let b = Builder.create ~name:"fresh" in
  let l1 = Builder.fresh_label b "x" in
  let l2 = Builder.fresh_label b "x" in
  checkb "unique" true (l1 <> l2)

let test_builder_duplicate_label () =
  let b = Builder.create ~name:"dup" in
  Builder.label b "a";
  checkb "duplicate rejected" true
    (try
       Builder.label b "a";
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Executor semantics *)

let build_and_run ?(data = [ ("d", 16) ]) emit =
  let b = Builder.create ~name:"prog" in
  List.iter (fun (symbol, elements) -> Builder.declare_data b ~symbol ~elements) data;
  Builder.label b "main";
  emit b;
  Builder.emit b I.Halt;
  let p = Builder.build b ~entry:"main" in
  let m = Memory.create p in
  let stats = run_quiet p m in
  (p, m, stats)

let test_integer_arithmetic () =
  let _, m, _ =
    build_and_run (fun b ->
        Builder.emit b (I.Li (1, 7));
        Builder.emit b (I.Li (2, 5));
        Builder.emit b (I.Add (3, 1, 2));
        Builder.emit b (I.Sub (4, 1, 2));
        Builder.emit b (I.Mul (5, 1, 2));
        Builder.emit b (I.Addi (6, 1, -3));
        Builder.emit b (I.Icvt (0, 3));
        Builder.emit b (I.Fst (0, Builder.at ~offset:0 "d"));
        Builder.emit b (I.Icvt (0, 4));
        Builder.emit b (I.Fst (0, Builder.at ~offset:1 "d"));
        Builder.emit b (I.Icvt (0, 5));
        Builder.emit b (I.Fst (0, Builder.at ~offset:2 "d"));
        Builder.emit b (I.Icvt (0, 6));
        Builder.emit b (I.Fst (0, Builder.at ~offset:3 "d")))
  in
  checkf "add" 12. (Memory.get m "d" 0);
  checkf "sub" 2. (Memory.get m "d" 1);
  checkf "mul" 35. (Memory.get m "d" 2);
  checkf "addi" 4. (Memory.get m "d" 3)

let test_float_arithmetic () =
  let _, m, _ =
    build_and_run (fun b ->
        Builder.emit b (I.Fli (1, 9.));
        Builder.emit b (I.Fli (2, 4.));
        Builder.emit b (I.Fadd (3, 1, 2));
        Builder.emit b (I.Fst (3, Builder.at ~offset:0 "d"));
        Builder.emit b (I.Fsub (3, 1, 2));
        Builder.emit b (I.Fst (3, Builder.at ~offset:1 "d"));
        Builder.emit b (I.Fmul (3, 1, 2));
        Builder.emit b (I.Fst (3, Builder.at ~offset:2 "d"));
        Builder.emit b (I.Fdiv (3, 1, 2));
        Builder.emit b (I.Fst (3, Builder.at ~offset:3 "d"));
        Builder.emit b (I.Fsqrt (3, 1));
        Builder.emit b (I.Fst (3, Builder.at ~offset:4 "d"));
        Builder.emit b (I.Fli (4, -2.5));
        Builder.emit b (I.Fabs (3, 4));
        Builder.emit b (I.Fst (3, Builder.at ~offset:5 "d"));
        Builder.emit b (I.Fmov (3, 4));
        Builder.emit b (I.Fst (3, Builder.at ~offset:6 "d")))
  in
  checkf "fadd" 13. (Memory.get m "d" 0);
  checkf "fsub" 5. (Memory.get m "d" 1);
  checkf "fmul" 36. (Memory.get m "d" 2);
  checkf "fdiv" 2.25 (Memory.get m "d" 3);
  checkf "fsqrt" 3. (Memory.get m "d" 4);
  checkf "fabs" 2.5 (Memory.get m "d" 5);
  checkf "fmov" (-2.5) (Memory.get m "d" 6)

let test_conversions () =
  let _, m, _ =
    build_and_run (fun b ->
        Builder.emit b (I.Fli (0, 3.9));
        Builder.emit b (I.Fcvt (1, 0));
        (* truncation: 3 *)
        Builder.emit b (I.Icvt (2, 1));
        Builder.emit b (I.Fst (2, Builder.at "d")))
  in
  checkf "fcvt truncates" 3. (Memory.get m "d" 0)

let test_branches () =
  let _, m, _ =
    build_and_run (fun b ->
        (* d[0] = (3 < 5) ? 1 : 2 via blt *)
        Builder.emit b (I.Li (1, 3));
        Builder.emit b (I.Li (2, 5));
        Builder.emit b (I.Blt (1, 2, "taken"));
        Builder.emit b (I.Fli (0, 2.));
        Builder.emit b (I.Jmp "store");
        Builder.label b "taken";
        Builder.emit b (I.Fli (0, 1.));
        Builder.label b "store";
        Builder.emit b (I.Fst (0, Builder.at "d")))
  in
  checkf "blt taken" 1. (Memory.get m "d" 0)

let test_float_branches () =
  let _, m, _ =
    build_and_run (fun b ->
        Builder.emit b (I.Fli (1, 2.));
        Builder.emit b (I.Fli (2, 2.));
        (* fbge on equality must be taken *)
        Builder.emit b (I.Fbge (1, 2, "ge"));
        Builder.emit b (I.Fli (0, 0.));
        Builder.emit b (I.Jmp "store");
        Builder.label b "ge";
        Builder.emit b (I.Fli (0, 1.));
        Builder.label b "store";
        Builder.emit b (I.Fst (0, Builder.at "d")))
  in
  checkf "fbge equality" 1. (Memory.get m "d" 0)

let test_call_ret () =
  let _, m, _ =
    build_and_run (fun b ->
        Builder.emit b (I.Call "sub1");
        Builder.emit b (I.Call "sub1");
        Builder.emit b (I.Fst (0, Builder.at "d"));
        Builder.emit b (I.Jmp "end");
        Builder.label b "sub1";
        Builder.emit b (I.Fli (1, 1.));
        Builder.emit b (I.Fadd (0, 0, 1));
        Builder.emit b I.Ret;
        Builder.label b "end")
  in
  checkf "two calls" 2. (Memory.get m "d" 0)

let test_indexed_addressing () =
  let _, m, _ =
    build_and_run (fun b ->
        (* d[i] = i for i in 0..7 *)
        Builder.counted_loop b ~counter:4 ~from_:0 ~below:8 (fun () ->
            Builder.emit b (I.Icvt (0, 4));
            Builder.emit b (I.Fst (0, Builder.at ~index_reg:4 "d"))))
  in
  for i = 0 to 7 do
    checkf (Printf.sprintf "d[%d]" i) (float_of_int i) (Memory.get m "d" i)
  done

let test_out_of_bounds_access () =
  checkb "oob raises" true
    (try
       ignore
         (build_and_run (fun b ->
              Builder.emit b (I.Li (4, 100));
              Builder.emit b (I.Fld (0, Builder.at ~index_reg:4 "d"))));
       false
     with Invalid_argument _ -> true)

let test_runaway_guard () =
  checkb "infinite loop stopped" true
    (try
       let b = Builder.create ~name:"spin" in
       Builder.label b "main";
       Builder.emit b (I.Jmp "main");
       let p = Builder.build b ~entry:"main" in
       ignore (run_quiet ~max_instructions:1000 p (Memory.create p));
       false
     with Executor.Runaway _ -> true)

let test_stack_overflow_guard () =
  checkb "unbounded recursion stopped" true
    (try
       let b = Builder.create ~name:"rec" in
       Builder.label b "main";
       Builder.emit b (I.Call "main");
       let p = Builder.build b ~entry:"main" in
       ignore (run_quiet p (Memory.create p));
       false
     with Executor.Stack_overflow_ _ -> true)

let test_ret_at_top_level_halts () =
  let b = Builder.create ~name:"ret" in
  Builder.label b "main";
  Builder.emit b (I.Li (0, 1));
  Builder.emit b I.Ret;
  let p = Builder.build b ~entry:"main" in
  let stats = run_quiet p (Memory.create p) in
  checki "two instructions" 2 stats.Executor.retired

let test_stats_counters () =
  let _, _, stats =
    build_and_run (fun b ->
        Builder.emit b (I.Fld (0, Builder.at "d"));
        Builder.emit b (I.Fst (0, Builder.at ~offset:1 "d"));
        Builder.emit b (I.Fli (1, 2.));
        Builder.emit b (I.Fdiv (0, 0, 1));
        Builder.emit b (I.Fsqrt (0, 1));
        Builder.emit b (I.Li (2, 0));
        Builder.emit b (I.Li (3, 1));
        Builder.emit b (I.Blt (2, 3, "t"));
        Builder.label b "t")
  in
  checki "loads" 1 stats.Executor.loads;
  checki "stores" 1 stats.Executor.stores;
  checki "fp long" 2 stats.Executor.fp_long_ops;
  checkb "branches counted" true (stats.Executor.branches >= 1);
  checkb "taken counted" true (stats.Executor.taken_branches >= 1)

let test_retire_stream_matches () =
  (* the retire stream reports the right work kinds in order *)
  let b = Builder.create ~name:"stream" in
  Builder.declare_data b ~symbol:"d" ~elements:2;
  Builder.label b "main";
  Builder.emit b (I.Li (0, 1));
  Builder.emit b (I.Fld (1, Builder.at "d"));
  Builder.emit b (I.Fst (1, Builder.at ~offset:1 "d"));
  Builder.emit b I.Halt;
  let p = Builder.build b ~entry:"main" in
  let layout = Layout.sequential p in
  let kinds = ref [] in
  let on_retire (r : I.retired) = kinds := r.I.work :: !kinds in
  ignore (Executor.run ~program:p ~layout ~memory:(Memory.create p) ~on_retire ());
  match List.rev !kinds with
  | [ I.Int_alu; I.Mem_read a; I.Mem_write b'; I.No_op ] ->
      checki "read addr"
        (Layout.data_address layout ~symbol:"d" ~element:0)
        a;
      checki "write addr" (Layout.data_address layout ~symbol:"d" ~element:1) b'
  | _ -> Alcotest.fail "unexpected retire stream"

let test_layout_independence_of_semantics =
  (* results do not depend on the layout, only timing would *)
  qtest
    (QCheck.Test.make ~name:"semantics layout-independent" ~count:50 QCheck.int64
       (fun seed ->
         let b = Builder.create ~name:"sem" in
         Builder.declare_data b ~symbol:"d" ~elements:4;
         Builder.label b "main";
         Builder.emit b (I.Fli (0, 2.));
         Builder.emit b (I.Fli (1, 3.));
         Builder.emit b (I.Fmul (2, 0, 1));
         Builder.emit b (I.Fst (2, Builder.at "d"));
         Builder.emit b I.Halt;
         let p = Builder.build b ~entry:"main" in
         let run layout =
           let m = Memory.create p in
           ignore (Executor.run ~program:p ~layout ~memory:m ~on_retire:(fun _ -> ()) ());
           Memory.get m "d" 0
         in
         run (Layout.sequential p) = run (Layout.scrambled ~seed p)))

let test_path_signature_distinguishes () =
  let program_with_branch () =
    let b = Builder.create ~name:"sig" in
    Builder.declare_data b ~symbol:"d" ~elements:1;
    Builder.label b "main";
    Builder.emit b (I.Fld (0, Builder.at "d"));
    Builder.emit b (I.Fli (1, 0.5));
    Builder.emit b (I.Fblt (0, 1, "low"));
    Builder.emit b (I.Fli (2, 2.));
    Builder.emit b (I.Jmp "end");
    Builder.label b "low";
    Builder.emit b (I.Fli (2, 1.));
    Builder.label b "end";
    Builder.emit b I.Halt;
    Builder.build b ~entry:"main"
  in
  let p = program_with_branch () in
  let layout = Layout.sequential p in
  let signature v =
    let m = Memory.create p in
    Memory.set m "d" 0 v;
    Executor.path_signature ~program:p ~layout ~memory:m ()
  in
  checkb "different inputs different paths" true (signature 0.1 <> signature 0.9);
  checki "same input same path" (signature 0.1) (signature 0.1)

(* ------------------------------------------------------------------ *)
(* Differential testing: random straight-line programs are executed both
   by the Executor and by an independent reference evaluator written
   directly over the instruction list; results must agree bitwise. *)

type ref_state = {
  r : int array;
  f : float array;
  mem : (string, float array) Hashtbl.t;
}

let reference_eval program memory =
  let st =
    {
      r = Array.make I.register_count 0;
      f = Array.make I.register_count 0.;
      mem = Hashtbl.create 4;
    }
  in
  List.iter
    (fun d ->
      Hashtbl.replace st.mem d.Program.symbol
        (Memory.read_array memory d.Program.symbol))
    (Program.data program);
  let addr_index (a : I.addressing) =
    (match a.I.index_reg with Some reg -> st.r.(reg) | None -> 0) + a.I.offset
  in
  Array.iter
    (fun instr ->
      match instr with
      | I.Li (rd, v) -> st.r.(rd) <- v
      | I.Add (rd, a, b) -> st.r.(rd) <- st.r.(a) + st.r.(b)
      | I.Addi (rd, a, v) -> st.r.(rd) <- st.r.(a) + v
      | I.Sub (rd, a, b) -> st.r.(rd) <- st.r.(a) - st.r.(b)
      | I.Mul (rd, a, b) -> st.r.(rd) <- st.r.(a) * st.r.(b)
      | I.Fli (fd, v) -> st.f.(fd) <- v
      | I.Fld (fd, a) -> st.f.(fd) <- (Hashtbl.find st.mem a.I.base).(addr_index a)
      | I.Fst (fs, a) -> (Hashtbl.find st.mem a.I.base).(addr_index a) <- st.f.(fs)
      | I.Fadd (fd, a, b) -> st.f.(fd) <- st.f.(a) +. st.f.(b)
      | I.Fsub (fd, a, b) -> st.f.(fd) <- st.f.(a) -. st.f.(b)
      | I.Fmul (fd, a, b) -> st.f.(fd) <- st.f.(a) *. st.f.(b)
      | I.Fdiv (fd, a, b) -> st.f.(fd) <- st.f.(a) /. st.f.(b)
      | I.Fsqrt (fd, a) -> st.f.(fd) <- sqrt st.f.(a)
      | I.Fabs (fd, a) -> st.f.(fd) <- Float.abs st.f.(a)
      | I.Fmov (fd, a) -> st.f.(fd) <- st.f.(a)
      | I.Fcvt (rd, a) -> st.r.(rd) <- int_of_float st.f.(a)
      | I.Icvt (fd, a) -> st.f.(fd) <- float_of_int st.r.(a)
      | I.Blt _ | I.Bge _ | I.Beq _ | I.Bne _ | I.Fblt _ | I.Fbge _ | I.Jmp _
      | I.Call _ | I.Ret | I.Nop | I.Halt ->
          ())
    (Program.code program);
  st.mem

(* QCheck generator of straight-line instructions over 4 registers and one
   8-element data symbol. *)
let arbitrary_instruction =
  let open QCheck.Gen in
  let reg = int_range 0 3 in
  let idx = int_range 0 7 in
  let fval = map (fun i -> float_of_int i /. 4.) (int_range (-40) 40) in
  frequency
    [
      (2, map2 (fun r v -> I.Li (r, v)) reg (int_range (-100) 100));
      (2, map3 (fun a b c -> I.Add (a, b, c)) reg reg reg);
      (1, map3 (fun a b c -> I.Sub (a, b, c)) reg reg reg);
      (1, map3 (fun a b c -> I.Mul (a, b, c)) reg reg reg);
      (2, map2 (fun r v -> I.Fli (r, v)) reg fval);
      (2, map2 (fun r i -> I.Fld (r, { I.base = "data"; index_reg = None; offset = i })) reg idx);
      (2, map2 (fun r i -> I.Fst (r, { I.base = "data"; index_reg = None; offset = i })) reg idx);
      (2, map3 (fun a b c -> I.Fadd (a, b, c)) reg reg reg);
      (1, map3 (fun a b c -> I.Fsub (a, b, c)) reg reg reg);
      (1, map3 (fun a b c -> I.Fmul (a, b, c)) reg reg reg);
      (1, map2 (fun a b -> I.Fabs (a, b)) reg reg);
      (1, map2 (fun a b -> I.Fmov (a, b)) reg reg);
      (1, map2 (fun a b -> I.Icvt (a, b)) reg reg);
    ]

let test_differential_straight_line =
  qtest
    (QCheck.Test.make ~name:"executor agrees with reference evaluator" ~count:300
       QCheck.(
         make
           Gen.(list_size (int_range 1 60) arbitrary_instruction))
       (fun instructions ->
         let code = Array.of_list (instructions @ [ I.Halt ]) in
         let program =
           Program.create ~name:"diff" ~code ~labels:[ ("main", 0) ]
             ~data:[ { Program.symbol = "data"; elements = 8 } ]
             ~entry:"main"
         in
         let memory = Memory.create program in
         (* nonzero initial data so loads matter *)
         Memory.load_array memory "data" [| 1.; -2.; 3.5; 0.25; -7.; 8.; 0.; 42. |];
         let expected = reference_eval program memory in
         ignore
           (Executor.run ~program
              ~layout:(Layout.sequential program)
              ~memory
              ~on_retire:(fun _ -> ())
              ());
         let got = Memory.read_array memory "data" in
         let want = Hashtbl.find expected "data" in
         (* bitwise comparison (covers NaN) *)
         Array.for_all2
           (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
           got want))

let () =
  Alcotest.run "repro_isa"
    [
      ( "program",
        [
          Alcotest.test_case "valid" `Quick test_program_valid;
          Alcotest.test_case "rejects bad label" `Quick test_program_rejects_bad_label;
          Alcotest.test_case "rejects bad register" `Quick test_program_rejects_bad_register;
          Alcotest.test_case "rejects bad symbol" `Quick test_program_rejects_bad_symbol;
          Alcotest.test_case "rejects duplicate label" `Quick
            test_program_rejects_duplicate_label;
          Alcotest.test_case "rejects unknown entry" `Quick test_program_rejects_unknown_entry;
        ] );
      ( "layout",
        [
          Alcotest.test_case "sequential" `Quick test_layout_sequential;
          Alcotest.test_case "bounds" `Quick test_layout_bounds;
          Alcotest.test_case "shifted" `Quick test_layout_shifted;
          Alcotest.test_case "scrambled deterministic" `Quick
            test_layout_scrambled_deterministic;
          test_layout_scrambled_no_overlap;
        ] );
      ( "memory",
        [
          Alcotest.test_case "basics" `Quick test_memory_basics;
          Alcotest.test_case "unknown symbol" `Quick test_memory_unknown_symbol;
        ] );
      ( "builder",
        [
          Alcotest.test_case "counted loop" `Quick test_builder_counted_loop;
          Alcotest.test_case "fresh labels" `Quick test_builder_fresh_labels_unique;
          Alcotest.test_case "duplicate label" `Quick test_builder_duplicate_label;
        ] );
      ( "executor",
        [
          Alcotest.test_case "integer arithmetic" `Quick test_integer_arithmetic;
          Alcotest.test_case "float arithmetic" `Quick test_float_arithmetic;
          Alcotest.test_case "conversions" `Quick test_conversions;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "float branches" `Quick test_float_branches;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
          Alcotest.test_case "indexed addressing" `Quick test_indexed_addressing;
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds_access;
          Alcotest.test_case "runaway guard" `Quick test_runaway_guard;
          Alcotest.test_case "stack overflow guard" `Quick test_stack_overflow_guard;
          Alcotest.test_case "ret at top level" `Quick test_ret_at_top_level_halts;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
          Alcotest.test_case "retire stream" `Quick test_retire_stream_matches;
          test_layout_independence_of_semantics;
          Alcotest.test_case "path signature" `Quick test_path_signature_distinguishes;
          test_differential_straight_line;
        ] );
    ]
