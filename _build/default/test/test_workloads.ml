(* Tests for repro_workloads: every kernel's generated code must compute
   exactly what its golden reference computes, on any input; path-dependent
   kernels must actually vary their paths; and each kernel must be
   measurable and analyzable on the randomized platform. *)

module Prng = Repro_rng.Prng
module Isa = Repro_isa
module P = Repro_platform
module K = Repro_workloads.Kernels
module M = Repro_mbpta

let checkb = Alcotest.check Alcotest.bool
let qtest = QCheck_alcotest.to_alcotest

let execute kernel seed =
  let memory = Isa.Memory.create kernel.K.program in
  kernel.K.load_input memory (Prng.create seed);
  let layout = Isa.Layout.sequential kernel.K.program in
  let (_ : Isa.Executor.stats) =
    Isa.Executor.run ~program:kernel.K.program ~layout ~memory
      ~on_retire:(fun _ -> ())
      ()
  in
  (kernel, memory)

let test_functional_equivalence =
  (* every kernel, many random inputs: generated code == golden, bitwise *)
  qtest
    (QCheck.Test.make ~name:"kernels match golden references" ~count:60
       QCheck.(pair (int_range 0 5) int64)
       (fun (which, seed) ->
         let kernel = List.nth (K.all ()) which in
         let kernel, memory = execute kernel seed in
         match kernel.K.check memory with
         | Ok () -> true
         | Error what -> QCheck.Test.fail_report what))

let test_each_kernel_once () =
  List.iter
    (fun kernel ->
      let kernel, memory = execute kernel 424242L in
      match kernel.K.check memory with
      | Ok () -> ()
      | Error what -> Alcotest.failf "%s: %s" kernel.K.name what)
    (K.all ())

let measure_early kernel ~run_index =
  let memory = Isa.Memory.create kernel.K.program in
  kernel.K.load_input memory (Prng.create (Int64.of_int (9100 + run_index)));
  let core =
    P.Core_sim.create ~config:P.Config.deterministic ~seed:(Int64.of_int (5100 + run_index)) ()
  in
  let metrics =
    P.Core_sim.run_program core ~program:kernel.K.program
      ~layout:(Isa.Layout.sequential kernel.K.program)
      ~memory
  in
  float_of_int (P.Metrics.cycles metrics)

let path_signature kernel seed =
  let memory = Isa.Memory.create kernel.K.program in
  kernel.K.load_input memory (Prng.create seed);
  Isa.Executor.path_signature ~program:kernel.K.program
    ~layout:(Isa.Layout.sequential kernel.K.program)
    ~memory ()

let test_data_dependent_paths () =
  (* sorting/searching follow input-dependent paths *)
  List.iter
    (fun kernel ->
      let sigs = List.init 8 (fun i -> path_signature kernel (Int64.of_int (100 + i))) in
      checkb (kernel.K.name ^ " paths vary") true
        (List.length (List.sort_uniq compare sigs) > 1))
    [ K.bubble_sort (); K.binary_search () ]

let test_regular_kernels_single_path () =
  (* matmul/fir/newton have input-independent control flow; histogram's
     data-dependence lives in its store addresses, not its branches (the
     clamp never fires for in-range samples), so it is single-path too *)
  List.iter
    (fun kernel ->
      let sigs = List.init 6 (fun i -> path_signature kernel (Int64.of_int (200 + i))) in
      checkb (kernel.K.name ^ " single path") true
        (List.length (List.sort_uniq compare sigs) = 1))
    [ K.matrix_multiply (); K.fir_filter (); K.newton_roots (); K.histogram () ]

let test_histogram_addresses_vary () =
  (* ...but its DL1 access pattern does depend on the data: on the DET
     platform (fixed layout, no randomization) timing still varies across
     inputs through the bin addresses *)
  let kernel = K.histogram () in
  let xs =
    Array.init 10 (fun i -> measure_early kernel ~run_index:i)
  in
  checkb "DET timing varies through addresses" true
    (Array.exists (fun x -> x <> xs.(0)) xs)

let measure kernel ~config ~run_index =
  let memory = Isa.Memory.create kernel.K.program in
  kernel.K.load_input memory (Prng.create (Int64.of_int (9000 + run_index)));
  let core = P.Core_sim.create ~config ~seed:(Int64.of_int (5000 + run_index)) () in
  let metrics =
    P.Core_sim.run_program core ~program:kernel.K.program
      ~layout:(Isa.Layout.sequential kernel.K.program)
      ~memory
  in
  float_of_int (P.Metrics.cycles metrics)

let test_kernels_analyzable_on_rand () =
  (* a small MBPTA pass on one data-dependent and one regular kernel *)
  List.iter
    (fun kernel ->
      let xs =
        Array.init 150 (fun i -> measure kernel ~config:P.Config.mbpta_compliant ~run_index:i)
      in
      let options =
        {
          M.Protocol.default_options with
          M.Protocol.check_convergence = false;
          M.Protocol.gate_on_iid = false;
        }
      in
      match M.Protocol.analyze ~options xs with
      | Ok a ->
          let v = Repro_evt.Pwcet.estimate a.M.Protocol.curve ~cutoff_probability:1e-9 in
          let top = Array.fold_left Float.max xs.(0) xs in
          checkb (kernel.K.name ^ " pWCET above observations") true (v >= top *. 0.995)
      | Error f ->
          Alcotest.failf "%s analysis failed: %a" kernel.K.name M.Protocol.pp_failure f)
    [ K.bubble_sort (); K.matrix_multiply () ]

let test_newton_exercises_fpu_jitter () =
  (* value-dependent FDIV latency: DET cycles must vary across inputs even
     though the path is fixed *)
  let kernel = K.newton_roots () in
  let xs =
    Array.init 12 (fun i -> measure kernel ~config:P.Config.deterministic ~run_index:i)
  in
  checkb "DET timing varies with operand values" true
    (Array.exists (fun x -> x <> xs.(0)) xs)

let () =
  Alcotest.run "repro_workloads"
    [
      ( "functional",
        [
          test_functional_equivalence;
          Alcotest.test_case "each kernel once" `Quick test_each_kernel_once;
        ] );
      ( "paths",
        [
          Alcotest.test_case "data-dependent paths" `Quick test_data_dependent_paths;
          Alcotest.test_case "regular kernels single path" `Quick
            test_regular_kernels_single_path;
          Alcotest.test_case "histogram address-dependence" `Quick
            test_histogram_addresses_vary;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "analyzable on RAND" `Slow test_kernels_analyzable_on_rand;
          Alcotest.test_case "newton FPU jitter" `Quick test_newton_exercises_fpu_jitter;
        ] );
    ]
