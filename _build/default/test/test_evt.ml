(* Tests for repro_evt: block maxima, Gumbel/GEV/GPD parameter recovery on
   synthetic data, pWCET curve semantics (block-size conversion, deep-tail
   accuracy, monotonicity, upper-bounding), the convergence criterion and
   the tail diagnostics. *)

module Prng = Repro_rng.Prng
module S = Repro_stats
module E = Repro_evt

let checkb = Alcotest.check Alcotest.bool

let close ?(tol = 1e-9) what expected got =
  if Float.abs (expected -. got) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected got

let relclose what ~tol expected got =
  if Float.abs ((got /. expected) -. 1.) > tol then
    Alcotest.failf "%s: expected ~%.6g, got %.6g" what expected got

let qtest = QCheck_alcotest.to_alcotest
let prng () = Prng.create 20250704L

(* ------------------------------------------------------------------ *)
(* Block maxima *)

let test_block_maxima_basic () =
  let xs = [| 1.; 5.; 2.; 8.; 3.; 4.; 9.; 0. |] in
  Alcotest.(check (array (float 0.)))
    "pairs" [| 5.; 8.; 4.; 9. |]
    (E.Block_maxima.extract ~block_size:2 xs);
  Alcotest.(check (array (float 0.)))
    "quads" [| 8.; 9. |]
    (E.Block_maxima.extract ~block_size:4 xs)

let test_block_maxima_drops_partial () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (array (float 0.)))
    "partial dropped" [| 2.; 4. |]
    (E.Block_maxima.extract ~block_size:2 xs)

let test_block_maxima_invalid () =
  Alcotest.check_raises "too few" (Invalid_argument
    "Block_maxima.extract: sample smaller than one block") (fun () ->
      ignore (E.Block_maxima.extract ~block_size:10 [| 1.; 2. |]))

let test_block_maxima_dominates =
  qtest
    (QCheck.Test.make ~name:"block max >= members" ~count:200
       QCheck.(pair (int_range 1 8) (list_of_size (Gen.int_range 8 64) (float_range 0. 100.)))
       (fun (b, xs) ->
         let a = Array.of_list xs in
         let maxima = E.Block_maxima.extract ~block_size:b a in
         Array.for_all
           (fun m -> Array.exists (fun x -> x = m) a)
           maxima))

let test_suggest_block_size () =
  Alcotest.(check int) "small sample" 1 (E.Block_maxima.suggest_block_size 50);
  Alcotest.(check int) "3000 runs" 64 (E.Block_maxima.suggest_block_size 3000);
  Alcotest.(check int) "120 runs" 4 (E.Block_maxima.suggest_block_size 120);
  checkb "at least 30 maxima" true (3000 / E.Block_maxima.suggest_block_size 3000 >= 30)

(* ------------------------------------------------------------------ *)
(* Gumbel fitting: parameter recovery on synthetic Gumbel data *)

let gumbel_sample g ~mu ~beta n =
  let d = S.Distribution.Gumbel.create ~mu ~beta in
  Array.init n (fun _ -> S.Distribution.Gumbel.sample d g)

let test_gumbel_fit_recovery () =
  let g = prng () in
  let xs = gumbel_sample g ~mu:100. ~beta:7. 8000 in
  List.iter
    (fun (name, method_) ->
      let fit = E.Gumbel_fit.fit ~method_ xs in
      relclose (name ^ " mu") ~tol:0.01 100. fit.S.Distribution.Gumbel.mu;
      relclose (name ^ " beta") ~tol:0.05 7. fit.S.Distribution.Gumbel.beta)
    [ ("moments", E.Gumbel_fit.Moments); ("pwm", E.Gumbel_fit.Pwm); ("mle", E.Gumbel_fit.Mle) ]

let test_gumbel_fit_goodness () =
  let g = prng () in
  let xs = gumbel_sample g ~mu:50. ~beta:3. 3000 in
  let fit = E.Gumbel_fit.fit xs in
  let gof = E.Gumbel_fit.goodness_of_fit fit xs in
  checkb "good fit accepted" true gof.S.Ks.same_distribution

let test_gumbel_fit_rejects_uniform () =
  (* A Gumbel fitted on uniform data should fail goodness of fit. *)
  let g = prng () in
  let xs = Array.init 3000 (fun _ -> Prng.float g) in
  let fit = E.Gumbel_fit.fit xs in
  let gof = E.Gumbel_fit.goodness_of_fit fit xs in
  checkb "bad model rejected" false gof.S.Ks.same_distribution

let test_gumbel_mle_likelihood_at_least_pwm () =
  let g = prng () in
  let xs = gumbel_sample g ~mu:10. ~beta:2. 500 in
  let pwm = E.Gumbel_fit.fit ~method_:E.Gumbel_fit.Pwm xs in
  let mle = E.Gumbel_fit.fit ~method_:E.Gumbel_fit.Mle xs in
  let ll_pwm = S.Distribution.Gumbel.log_likelihood pwm xs in
  let ll_mle = S.Distribution.Gumbel.log_likelihood mle xs in
  checkb "MLE maximizes likelihood" true (ll_mle >= ll_pwm -. 1e-6)

(* ------------------------------------------------------------------ *)
(* GEV fitting *)

let gev_sample g ~mu ~sigma ~xi n =
  let d = S.Distribution.Gev.create ~mu ~sigma ~xi in
  Array.init n (fun _ -> S.Distribution.Gev.sample d g)

let test_gev_fit_recovery_positive_shape () =
  let g = prng () in
  let xs = gev_sample g ~mu:0. ~sigma:1. ~xi:0.25 20_000 in
  let fit = E.Gev_fit.fit ~method_:E.Gev_fit.Pwm xs in
  checkb "xi recovered" true (Float.abs (fit.S.Distribution.Gev.xi -. 0.25) < 0.05);
  checkb "sigma recovered" true (Float.abs (fit.S.Distribution.Gev.sigma -. 1.) < 0.05)

let test_gev_fit_recovery_negative_shape () =
  let g = prng () in
  let xs = gev_sample g ~mu:10. ~sigma:2. ~xi:(-0.2) 20_000 in
  let fit = E.Gev_fit.fit ~method_:E.Gev_fit.Mle xs in
  checkb "xi recovered" true (Float.abs (fit.S.Distribution.Gev.xi +. 0.2) < 0.05);
  checkb "mu recovered" true (Float.abs (fit.S.Distribution.Gev.mu -. 10.) < 0.1)

let test_gev_fit_gumbel_data_small_shape () =
  let g = prng () in
  let xs = gumbel_sample g ~mu:5. ~beta:1. 20_000 in
  let fit = E.Gev_fit.fit xs in
  checkb "xi near 0 for Gumbel data" true (Float.abs fit.S.Distribution.Gev.xi < 0.05)

let test_gumbel_lr_test () =
  let g = prng () in
  (* Under H0 (true Gumbel), the LR test should usually not reject. *)
  let xs = gumbel_sample g ~mu:0. ~beta:1. 2000 in
  let _, p_h0 = E.Gev_fit.gumbel_lr_test xs in
  checkb "H0 p-value not tiny" true (p_h0 > 0.001);
  (* Under a strongly bounded GEV, it should reject. *)
  let ys = gev_sample g ~mu:0. ~sigma:1. ~xi:(-0.4) 2000 in
  let _, p_h1 = E.Gev_fit.gumbel_lr_test ys in
  checkb "H1 rejected" true (p_h1 < 0.01)

(* ------------------------------------------------------------------ *)
(* GPD / POT *)

let test_gpd_fit_recovery () =
  let g = prng () in
  let d = S.Distribution.Gpd.create ~u:0. ~sigma:2. ~xi:0.15 in
  let excesses = Array.init 20_000 (fun _ -> S.Distribution.Gpd.sample d g) in
  List.iter
    (fun (name, method_) ->
      let fit = E.Gpd_fit.fit ~method_ ~threshold:0. excesses in
      relclose (name ^ " sigma") ~tol:0.08 2. fit.S.Distribution.Gpd.sigma;
      checkb (name ^ " xi") true (Float.abs (fit.S.Distribution.Gpd.xi -. 0.15) < 0.05))
    [ ("pwm", E.Gpd_fit.Pwm); ("mle", E.Gpd_fit.Mle) ]

let test_pot_analyze () =
  let g = prng () in
  let xs = Array.init 10_000 (fun _ -> Prng.exponential g) in
  let pot = E.Gpd_fit.Pot.analyze ~quantile:0.9 xs in
  close ~tol:0.02 "exceedance rate ~ 0.1" 0.1 pot.E.Gpd_fit.Pot.exceedance_rate;
  (* Exponential excesses: xi ~ 0 *)
  checkb "xi near 0" true (Float.abs pot.E.Gpd_fit.Pot.model.S.Distribution.Gpd.xi < 0.06)

let test_pot_quantile_inverts_survival () =
  let g = prng () in
  let xs = Array.init 10_000 (fun _ -> Prng.exponential g) in
  let pot = E.Gpd_fit.Pot.analyze xs in
  List.iter
    (fun p ->
      let v = E.Gpd_fit.Pot.quantile_of_exceedance pot p in
      relclose "pot roundtrip" ~tol:1e-6 p (E.Gpd_fit.Pot.survival pot v))
    [ 0.05; 0.01; 1e-4; 1e-9 ]

let test_pot_too_few_exceedances () =
  Alcotest.check_raises "needs exceedances"
    (Invalid_argument "Pot.analyze: fewer than 4 exceedances; lower the quantile")
    (fun () -> ignore (E.Gpd_fit.Pot.analyze ~quantile:0.9 [| 1.; 2.; 3. |]))

let test_gpd_exponential_method () =
  let g = prng () in
  let excesses = Array.init 5000 (fun _ -> 2.5 *. Prng.exponential g) in
  let fit = E.Gpd_fit.fit ~method_:E.Gpd_fit.Exponential ~threshold:10. excesses in
  close ~tol:1e-12 "xi forced to 0" 0. fit.S.Distribution.Gpd.xi;
  relclose "sigma = mean of excesses" ~tol:0.05 2.5 fit.S.Distribution.Gpd.sigma;
  close ~tol:1e-12 "threshold kept" 10. fit.S.Distribution.Gpd.u

let test_pot_exponential_conservative_vs_bounded () =
  (* On light- (sub-exponential) tailed data the exponential tail model
     must give estimates at least as large as the fitted-GPD one. *)
  let g = prng () in
  let xs = Array.init 8000 (fun _ -> Prng.float g) in
  let exp_pot = E.Gpd_fit.Pot.analyze ~method_:E.Gpd_fit.Exponential xs in
  let gpd_pot = E.Gpd_fit.Pot.analyze ~method_:E.Gpd_fit.Pwm xs in
  List.iter
    (fun p ->
      checkb "exponential tail conservative" true
        (E.Gpd_fit.Pot.quantile_of_exceedance exp_pot p
        >= E.Gpd_fit.Pot.quantile_of_exceedance gpd_pot p))
    [ 1e-4; 1e-6; 1e-9 ]

(* ------------------------------------------------------------------ *)
(* Bootstrap *)

let test_bootstrap_contains_point () =
  let g = prng () in
  let sample = gumbel_sample g ~mu:1000. ~beta:30. 2000 in
  let ci =
    E.Bootstrap.pwcet_interval ~replicates:60 ~prng:(Prng.create 5L) ~sample
      ~cutoff_probability:1e-9 ()
  in
  checkb "ordered" true (ci.E.Bootstrap.lower <= ci.E.Bootstrap.upper);
  checkb "point inside" true
    (ci.E.Bootstrap.point >= ci.E.Bootstrap.lower -. 1.
    && ci.E.Bootstrap.point <= ci.E.Bootstrap.upper +. 1.);
  checkb "interval nontrivial" true (ci.E.Bootstrap.upper > ci.E.Bootstrap.lower)

let test_bootstrap_narrows_with_n () =
  let g = prng () in
  let small = gumbel_sample g ~mu:1000. ~beta:30. 500 in
  let large = gumbel_sample g ~mu:1000. ~beta:30. 8000 in
  let width sample =
    let ci =
      E.Bootstrap.pwcet_interval ~replicates:60 ~prng:(Prng.create 6L) ~sample
        ~cutoff_probability:1e-9 ()
    in
    ci.E.Bootstrap.upper -. ci.E.Bootstrap.lower
  in
  checkb "more data, tighter interval" true (width large < width small)

let test_bootstrap_confidence_widens () =
  let g = prng () in
  let sample = gumbel_sample g ~mu:1000. ~beta:30. 2000 in
  let width confidence =
    let ci =
      E.Bootstrap.pwcet_interval ~replicates:100 ~confidence ~prng:(Prng.create 7L)
        ~sample ~cutoff_probability:1e-9 ()
    in
    ci.E.Bootstrap.upper -. ci.E.Bootstrap.lower
  in
  checkb "99% wider than 80%" true (width 0.99 > width 0.8)

(* ------------------------------------------------------------------ *)
(* pWCET curves *)

let synthetic_curve ?(block_size = 32) ?(n = 3200) () =
  let g = prng () in
  let sample = Array.init n (fun _ -> 1000. +. (10. *. Prng.gaussian g)) in
  let maxima = E.Block_maxima.extract ~block_size sample in
  let model = E.Gumbel_fit.fit maxima in
  E.Pwcet.create ~model:(E.Pwcet.Gumbel_tail model) ~block_size ~sample

let test_pwcet_estimate_monotone () =
  let curve = synthetic_curve () in
  let prev = ref neg_infinity in
  List.iter
    (fun p ->
      let v = E.Pwcet.estimate curve ~cutoff_probability:p in
      checkb "monotone in cutoff" true (v >= !prev);
      prev := v)
    [ 1e-3; 1e-6; 1e-9; 1e-12; 1e-15 ]

let test_pwcet_estimate_inverts_exceedance () =
  let curve = synthetic_curve () in
  List.iter
    (fun p ->
      let v = E.Pwcet.estimate curve ~cutoff_probability:p in
      relclose "exceedance roundtrip" ~tol:1e-3 p (E.Pwcet.exceedance_probability curve v))
    [ 1e-3; 1e-6; 1e-9; 1e-12 ]

let test_pwcet_block_size_consistency () =
  (* The same Gumbel tail declared with block size 1 vs 32 must give
     different per-run estimates, converging as p shrinks relative to b. *)
  let g = prng () in
  let sample = Array.init 3200 (fun _ -> 1000. +. (10. *. Prng.gaussian g)) in
  let maxima = E.Block_maxima.extract ~block_size:32 sample in
  let model = E.Gumbel_fit.fit maxima in
  let curve_b32 = E.Pwcet.create ~model:(E.Pwcet.Gumbel_tail model) ~block_size:32 ~sample in
  let curve_b1 = E.Pwcet.create ~model:(E.Pwcet.Gumbel_tail model) ~block_size:1 ~sample in
  let v32 = E.Pwcet.estimate curve_b32 ~cutoff_probability:1e-9 in
  let v1 = E.Pwcet.estimate curve_b1 ~cutoff_probability:1e-9 in
  (* The model describes maxima of 32 runs; misreading it as per-run
     (block_size 1) overstates the per-run tail, so the correctly converted
     estimate must be lower. *)
  checkb "block conversion tightens" true (v32 < v1)

let test_pwcet_upper_bounds_observations () =
  let curve = synthetic_curve () in
  checkb "curve upper-bounds tail" true (E.Pwcet.upper_bounds_observations curve)

let test_pwcet_margin () =
  let curve = synthetic_curve () in
  let m = E.Pwcet.margin_over_observed curve ~cutoff_probability:1e-9 in
  checkb "margin above 1" true (m > 1.);
  checkb "margin sane" true (m < 2.)

let test_pwcet_pot_rejects_blocks () =
  let g = prng () in
  let sample = Array.init 1000 (fun _ -> Prng.exponential g) in
  let pot = E.Gpd_fit.Pot.analyze sample in
  Alcotest.check_raises "POT wants block 1"
    (Invalid_argument "Pwcet.create: POT models describe per-run values (block_size 1)")
    (fun () ->
      ignore (E.Pwcet.create ~model:(E.Pwcet.Pot_tail pot) ~block_size:4 ~sample))

let test_pwcet_ccdf_series () =
  let curve = synthetic_curve () in
  let series = E.Pwcet.ccdf_series curve ~decades_below:15 in
  checkb "series non-empty" true (List.length series >= 28);
  List.iter (fun (_, p) -> checkb "probability in (0,1)" true (p > 0. && p < 1.)) series;
  (* values increase as probability decreases *)
  let rec monotone = function
    | (v1, p1) :: ((v2, p2) :: _ as rest) ->
        checkb "p decreasing" true (p2 < p1);
        checkb "v increasing" true (v2 >= v1);
        monotone rest
    | [ _ ] | [] -> ()
  in
  monotone series

let test_pwcet_gev_tail_curve () =
  let g = prng () in
  let d = S.Distribution.Gev.create ~mu:500. ~sigma:20. ~xi:0.1 in
  let sample = Array.init 2000 (fun _ -> S.Distribution.Gev.sample d g) in
  let model = E.Gev_fit.fit sample in
  let curve = E.Pwcet.create ~model:(E.Pwcet.Gev_tail model) ~block_size:1 ~sample in
  List.iter
    (fun p ->
      let v = E.Pwcet.estimate curve ~cutoff_probability:p in
      relclose "gev roundtrip" ~tol:1e-3 p (E.Pwcet.exceedance_probability curve v))
    [ 1e-3; 1e-6; 1e-12 ]

(* ------------------------------------------------------------------ *)
(* Convergence *)

let test_convergence_stable_sample () =
  let g = prng () in
  let xs = Array.init 3000 (fun _ -> 1000. +. (10. *. Prng.gaussian g)) in
  let r = E.Convergence.study xs in
  checkb "converges" true r.E.Convergence.converged;
  checkb "uses fewer than all runs" true (r.E.Convergence.runs_used <= 3000);
  checkb "history recorded" true (List.length r.E.Convergence.history >= 2)

let test_convergence_trending_sample () =
  (* A sample whose scale keeps growing must not converge early. *)
  let g = prng () in
  let xs = Array.init 2000 (fun i ->
      let scale = 1. +. (float_of_int i /. 200.) in
      1000. +. (scale *. 50. *. Float.abs (Prng.gaussian g)))
  in
  let r = E.Convergence.study ~tolerance:0.001 ~stable_steps:5 xs in
  checkb "late or no convergence" true
    ((not r.E.Convergence.converged) || r.E.Convergence.runs_used > 500)

let test_convergence_history_monotone_runs () =
  let g = prng () in
  let xs = Array.init 1000 (fun _ -> Prng.gaussian g) in
  let r = E.Convergence.study ~step:100 xs in
  let runs = List.map (fun p -> p.E.Convergence.runs) r.E.Convergence.history in
  checkb "runs increase" true (List.sort compare runs = runs)

(* ------------------------------------------------------------------ *)
(* Tail diagnostics *)

let test_exponentiality_accepts_exponential () =
  let g = prng () in
  let xs = Array.init 5000 (fun _ -> Prng.exponential g) in
  let v = E.Tail_test.exponentiality ~alpha:0.01 xs in
  checkb "exponential accepted" true v.E.Tail_test.exponential

let test_exponentiality_rejects_bounded () =
  let g = prng () in
  (* Uniform tails are much lighter than exponential: CV of excesses < 1. *)
  let xs = Array.init 5000 (fun _ -> Prng.float g) in
  let v = E.Tail_test.exponentiality ~alpha:0.05 xs in
  checkb "uniform tail rejected" false v.E.Tail_test.exponential

let test_qq_correlation_high_for_exponential () =
  let g = prng () in
  let xs = Array.init 5000 (fun _ -> Prng.exponential g) in
  checkb "qq correlation near 1" true (E.Tail_test.qq_correlation xs > 0.98)

let () =
  Alcotest.run "repro_evt"
    [
      ( "block-maxima",
        [
          Alcotest.test_case "basic" `Quick test_block_maxima_basic;
          Alcotest.test_case "drops partial" `Quick test_block_maxima_drops_partial;
          Alcotest.test_case "invalid input" `Quick test_block_maxima_invalid;
          test_block_maxima_dominates;
          Alcotest.test_case "suggest block size" `Quick test_suggest_block_size;
        ] );
      ( "gumbel-fit",
        [
          Alcotest.test_case "parameter recovery" `Slow test_gumbel_fit_recovery;
          Alcotest.test_case "goodness of fit" `Quick test_gumbel_fit_goodness;
          Alcotest.test_case "rejects uniform" `Quick test_gumbel_fit_rejects_uniform;
          Alcotest.test_case "MLE beats PWM likelihood" `Quick
            test_gumbel_mle_likelihood_at_least_pwm;
        ] );
      ( "gev-fit",
        [
          Alcotest.test_case "recovery xi>0" `Slow test_gev_fit_recovery_positive_shape;
          Alcotest.test_case "recovery xi<0" `Slow test_gev_fit_recovery_negative_shape;
          Alcotest.test_case "gumbel data" `Slow test_gev_fit_gumbel_data_small_shape;
          Alcotest.test_case "LR test" `Slow test_gumbel_lr_test;
        ] );
      ( "gpd-pot",
        [
          Alcotest.test_case "gpd recovery" `Slow test_gpd_fit_recovery;
          Alcotest.test_case "pot analyze" `Quick test_pot_analyze;
          Alcotest.test_case "pot roundtrip" `Quick test_pot_quantile_inverts_survival;
          Alcotest.test_case "pot too few" `Quick test_pot_too_few_exceedances;
          Alcotest.test_case "exponential method" `Quick test_gpd_exponential_method;
          Alcotest.test_case "exponential conservative" `Quick
            test_pot_exponential_conservative_vs_bounded;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "contains point" `Quick test_bootstrap_contains_point;
          Alcotest.test_case "narrows with n" `Quick test_bootstrap_narrows_with_n;
          Alcotest.test_case "confidence widens" `Quick test_bootstrap_confidence_widens;
        ] );
      ( "pwcet",
        [
          Alcotest.test_case "monotone" `Quick test_pwcet_estimate_monotone;
          Alcotest.test_case "inverts exceedance" `Quick test_pwcet_estimate_inverts_exceedance;
          Alcotest.test_case "block-size conversion" `Quick test_pwcet_block_size_consistency;
          Alcotest.test_case "upper bounds observations" `Quick
            test_pwcet_upper_bounds_observations;
          Alcotest.test_case "margin" `Quick test_pwcet_margin;
          Alcotest.test_case "POT rejects blocks" `Quick test_pwcet_pot_rejects_blocks;
          Alcotest.test_case "ccdf series" `Quick test_pwcet_ccdf_series;
          Alcotest.test_case "gev tail curve" `Quick test_pwcet_gev_tail_curve;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "stable sample" `Quick test_convergence_stable_sample;
          Alcotest.test_case "trending sample" `Quick test_convergence_trending_sample;
          Alcotest.test_case "history runs monotone" `Quick
            test_convergence_history_monotone_runs;
        ] );
      ( "tail",
        [
          Alcotest.test_case "accepts exponential" `Quick
            test_exponentiality_accepts_exponential;
          Alcotest.test_case "rejects bounded" `Quick test_exponentiality_rejects_bounded;
          Alcotest.test_case "qq correlation" `Quick test_qq_correlation_high_for_exponential;
        ] );
    ]
