(* Tests for repro_rng: determinism, ranges, distribution quality,
   stream independence, and the qualification battery itself. *)

module Prng = Repro_rng.Prng
module Quality = Repro_rng.Quality
module Splitmix = Repro_rng.Splitmix

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Splitmix *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 7L and b = Splitmix.create 7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_splitmix_distinct_seeds () =
  let a = Splitmix.create 7L and b = Splitmix.create 8L in
  let distinct = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Splitmix.next a) (Splitmix.next b)) then distinct := true
  done;
  checkb "streams differ" true !distinct

let test_splitmix_nonzero () =
  let a = Splitmix.create 0L in
  for _ = 1 to 1000 do
    checkb "nonzero" true (not (Int64.equal (Splitmix.next_nonzero a) 0L))
  done

(* ------------------------------------------------------------------ *)
(* Per-algorithm basics *)

let algorithms = Prng.all_algorithms

let test_determinism () =
  List.iter
    (fun algorithm ->
      let a = Prng.create ~algorithm 123L and b = Prng.create ~algorithm 123L in
      for _ = 1 to 200 do
        check Alcotest.int (Prng.algorithm_name algorithm) (Prng.bits32 a) (Prng.bits32 b)
      done)
    algorithms

let test_bits32_range () =
  List.iter
    (fun algorithm ->
      let g = Prng.create ~algorithm 99L in
      for _ = 1 to 2000 do
        let v = Prng.bits32 g in
        checkb "in [0, 2^32)" true (v >= 0 && v < 0x100000000)
      done)
    algorithms

let test_copy_replays () =
  List.iter
    (fun algorithm ->
      let g = Prng.create ~algorithm 5L in
      (* advance a bit, then snapshot *)
      for _ = 1 to 17 do
        ignore (Prng.bits32 g)
      done;
      let snapshot = Prng.copy g in
      let original = Array.init 50 (fun _ -> Prng.bits32 g) in
      let replayed = Array.init 50 (fun _ -> Prng.bits32 snapshot) in
      check (Alcotest.array Alcotest.int) (Prng.algorithm_name algorithm) original replayed)
    algorithms

let test_split_independent () =
  let g = Prng.create 5L in
  let child = Prng.split g in
  (* The child must not replay the parent's upcoming stream. *)
  let parent_next = Array.init 20 (fun _ -> Prng.bits32 g) in
  let child_next = Array.init 20 (fun _ -> Prng.bits32 child) in
  checkb "different streams" true (parent_next <> child_next)

let test_algorithm_accessor () =
  List.iter
    (fun algorithm ->
      match Prng.algorithm (Prng.create ~algorithm 1L) with
      | Some a -> checkb "algorithm recorded" true (a = algorithm)
      | None -> Alcotest.fail "missing algorithm")
    algorithms

(* ------------------------------------------------------------------ *)
(* Derived draws *)

let test_float_range =
  qtest
    (QCheck.Test.make ~name:"float in [0,1)" ~count:200
       QCheck.(pair int64 small_nat)
       (fun (seed, n) ->
         let g = Prng.create seed in
         let ok = ref true in
         for _ = 0 to n do
           let u = Prng.float g in
           if not (u >= 0. && u < 1.) then ok := false
         done;
         !ok))

let test_int_below_range =
  qtest
    (QCheck.Test.make ~name:"int_below in range" ~count:500
       QCheck.(pair int64 (int_range 1 1000))
       (fun (seed, n) ->
         let g = Prng.create seed in
         let v = Prng.int_below g n in
         v >= 0 && v < n))

let test_int_in_range =
  qtest
    (QCheck.Test.make ~name:"int_in_range inclusive" ~count:500
       QCheck.(triple int64 (int_range (-50) 50) (int_range 0 100))
       (fun (seed, lo, span) ->
         let g = Prng.create seed in
         let hi = lo + span in
         let v = Prng.int_in_range g ~lo ~hi in
         v >= lo && v <= hi))

let test_int_below_unbiased () =
  (* n = 3 exercises the rejection path; frequencies within 2% of 1/3. *)
  let g = Prng.create 1234L in
  let counts = Array.make 3 0 in
  let draws = 90_000 in
  for _ = 1 to draws do
    let v = Prng.int_below g 3 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. float_of_int draws in
      checkb "near 1/3" true (Float.abs (f -. (1. /. 3.)) < 0.02))
    counts

let test_gaussian_moments () =
  let g = Prng.create 77L in
  let n = 50_000 in
  let sum = ref 0. and sum2 = ref 0. in
  for _ = 1 to n do
    let x = Prng.gaussian g in
    sum := !sum +. x;
    sum2 := !sum2 +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  checkb "mean near 0" true (Float.abs mean < 0.02);
  checkb "variance near 1" true (Float.abs (var -. 1.) < 0.05)

let test_exponential_mean () =
  let g = Prng.create 78L in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential g
  done;
  checkb "mean near 1" true (Float.abs ((!sum /. float_of_int n) -. 1.) < 0.03)

let test_shuffle_permutation =
  qtest
    (QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
       QCheck.(pair int64 (list int))
       (fun (seed, xs) ->
         let g = Prng.create seed in
         let a = Array.of_list xs in
         Prng.shuffle_in_place g a;
         List.sort compare (Array.to_list a) = List.sort compare xs))

(* ------------------------------------------------------------------ *)
(* Qualification battery *)

let test_all_algorithms_qualify () =
  List.iter
    (fun algorithm ->
      let g = Prng.create ~algorithm 2024L in
      let verdicts = Quality.qualify ~alpha:0.001 ~draws:20_000 g in
      List.iter
        (fun (name, v) ->
          checkb
            (Printf.sprintf "%s/%s" (Prng.algorithm_name algorithm) name)
            true v.Quality.passed)
        verdicts)
    algorithms

let test_battery_rejects_constant () =
  (* A degenerate generator must fail uniformity. *)
  let module Broken = struct
    type state = unit

    let name = "broken-constant"
    let create _ = ()
    let next32 () = 12345
    let copy () = ()
  end in
  let g = Prng.of_module (module Broken) 0L in
  let v = Quality.chi_square_uniformity ~alpha:0.01 g ~draws:5000 in
  checkb "constant generator fails" false v.Quality.passed

let test_battery_rejects_alternating () =
  (* A strictly alternating generator must fail the runs test. *)
  let module Alternating = struct
    type state = int ref

    let name = "broken-alternating"
    let create _ = ref 0
    let next32 s =
      incr s;
      if !s land 1 = 0 then 0x10000000 else 0xF0000000

    let copy s = ref !s
  end in
  let g = Prng.of_module (module Alternating) 0L in
  let v = Quality.runs ~alpha:0.01 g ~draws:2000 in
  checkb "alternating generator fails runs" false v.Quality.passed

let test_block_frequency_rejects_drift () =
  (* a generator whose bit density drifts over time must fail *)
  let module Drifting = struct
    type state = int ref

    let name = "broken-drift"
    let create _ = ref 0
    let next32 s =
      incr s;
      (* starts all-zeros, ends all-ones *)
      if !s < 5000 then 0 else 0xFFFFFFFF

    let copy s = ref !s
  end in
  let g = Prng.of_module (module Drifting) 0L in
  let v = Quality.block_frequency ~alpha:0.01 g ~draws:10_000 in
  checkb "drift fails block frequency" false v.Quality.passed

let test_gap_rejects_periodic () =
  (* strictly alternating values give only gaps of length 1 *)
  let module Alternating = struct
    type state = int ref

    let name = "broken-period2"
    let create _ = ref 0
    let next32 s =
      incr s;
      if !s land 1 = 0 then 0x20000000 (* < 0.5 *) else 0xC0000000 (* >= 0.5 *)

    let copy s = ref !s
  end in
  let g = Prng.of_module (module Alternating) 0L in
  let v = Quality.gap ~alpha:0.01 g ~draws:4000 in
  checkb "periodic fails gap test" false v.Quality.passed

let test_all_passed_helper () =
  let good = [ ("a", { Quality.statistic = 0.; p_value = 0.5; passed = true }) ] in
  let bad = ("b", { Quality.statistic = 9.; p_value = 0.0001; passed = false }) :: good in
  checkb "all passed" true (Quality.all_passed good);
  checkb "not all passed" false (Quality.all_passed bad)

let () =
  Alcotest.run "repro_rng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "distinct seeds" `Quick test_splitmix_distinct_seeds;
          Alcotest.test_case "next_nonzero" `Quick test_splitmix_nonzero;
        ] );
      ( "generators",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "bits32 range" `Quick test_bits32_range;
          Alcotest.test_case "copy replays" `Quick test_copy_replays;
          Alcotest.test_case "split independent" `Quick test_split_independent;
          Alcotest.test_case "algorithm accessor" `Quick test_algorithm_accessor;
        ] );
      ( "draws",
        [
          test_float_range;
          test_int_below_range;
          test_int_in_range;
          Alcotest.test_case "int_below unbiased" `Quick test_int_below_unbiased;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          test_shuffle_permutation;
        ] );
      ( "quality",
        [
          Alcotest.test_case "all algorithms qualify" `Slow test_all_algorithms_qualify;
          Alcotest.test_case "rejects constant" `Quick test_battery_rejects_constant;
          Alcotest.test_case "rejects alternating" `Quick test_battery_rejects_alternating;
          Alcotest.test_case "block frequency rejects drift" `Quick
            test_block_frequency_rejects_drift;
          Alcotest.test_case "gap rejects periodic" `Quick test_gap_rejects_periodic;
          Alcotest.test_case "all_passed helper" `Quick test_all_passed_helper;
        ] );
    ]
