(* The WCET benchmark-kernel suite under MBPTA.

   Beyond the TVCA case study, a timing-analysis tool is exercised on
   standard kernels (in the tradition of the Malardalen / TACLe WCET
   suites).  For each kernel this example verifies the generated code
   against its golden reference, measures it on the deterministic and the
   time-randomized platforms, and prints the pWCET estimate at 1e-9 —
   showing how the analysis applies to arbitrary programs, not just the
   flight application.

   Run with:  dune exec examples/kernel_suite.exe -- [runs]  (default 300) *)

module Prng = Repro_rng.Prng
module Isa = Repro_isa
module P = Repro_platform
module K = Repro_workloads.Kernels
module M = Repro_mbpta
module E = Repro_evt
module D = Repro_stats.Descriptive

let measure kernel ~config ~run_index =
  let memory = Isa.Memory.create kernel.K.program in
  kernel.K.load_input memory (Prng.create (Int64.of_int (70_000 + run_index)));
  let core = P.Core_sim.create ~config ~seed:(Int64.of_int (90_000 + run_index)) () in
  let metrics =
    P.Core_sim.run_program core ~program:kernel.K.program
      ~layout:(Isa.Layout.sequential kernel.K.program)
      ~memory
  in
  float_of_int (P.Metrics.cycles metrics)

let () =
  let runs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 300 in
  Format.printf "%-16s %9s %11s %11s %11s %12s@." "kernel" "golden" "DET mean" "RAND mean"
    "RAND max" "pWCET(1e-9)";
  List.iter
    (fun kernel ->
      (* functional verification first *)
      let memory = Isa.Memory.create kernel.K.program in
      kernel.K.load_input memory (Prng.create 1L);
      let (_ : Isa.Executor.stats) =
        Isa.Executor.run ~program:kernel.K.program
          ~layout:(Isa.Layout.sequential kernel.K.program)
          ~memory
          ~on_retire:(fun _ -> ())
          ()
      in
      let golden =
        match kernel.K.check memory with Ok () -> "exact" | Error _ -> "MISMATCH"
      in
      let det =
        Array.init runs (fun i -> measure kernel ~config:P.Config.deterministic ~run_index:i)
      in
      let rand =
        Array.init runs (fun i ->
            measure kernel ~config:P.Config.mbpta_compliant ~run_index:i)
      in
      let options =
        {
          M.Protocol.default_options with
          M.Protocol.check_convergence = false;
          M.Protocol.gate_on_iid = false;
        }
      in
      let pwcet =
        match M.Protocol.analyze ~options rand with
        | Ok a ->
            Printf.sprintf "%.0f"
              (E.Pwcet.estimate a.M.Protocol.curve ~cutoff_probability:1e-9)
        | Error _ -> "n/a"
      in
      Format.printf "%-16s %9s %11.0f %11.0f %11.0f %12s@." kernel.K.name golden
        (D.mean det) (D.mean rand) (D.max rand) pwcet)
    (K.all ())
