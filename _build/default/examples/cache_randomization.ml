(* Why random placement matters: the memory-layout sensitivity experiment.

   The paper's argument for random placement (Section II) is that the
   memory layout of code/data decides which cache sets they occupy, with a
   large impact on execution time — an impact the user of a deterministic
   platform must somehow enumerate, and which random placement turns into a
   per-run random variable that plain measurements cover.

   This example re-links the same TVCA binary at 12 different layouts and
   measures each on:
   - the DET platform (modulo placement + LRU): timing shifts with layout;
   - the RAND platform (random modulo + random replacement): the layout
     effect disappears into the per-run randomization.

   Run with:  dune exec examples/cache_randomization.exe *)

module P = Repro_platform
module T = Repro_tvca
module Isa = Repro_isa
module D = Repro_stats.Descriptive

let layouts = 12
let runs_per_layout = 120

(* Between-layout spread of the per-layout mean, against the sampling noise
   of that mean (within-layout std / sqrt n).  A spread well above the noise
   means the platform timing genuinely depends on the link layout. *)
let spread name config =
  let e = T.Experiment.create ~config ~base_seed:7L () in
  let program = T.Experiment.program e in
  let means = Array.make layouts 0. in
  let noise = Array.make layouts 0. in
  for l = 0 to layouts - 1 do
    let layout = Isa.Layout.scrambled ~seed:(Int64.of_int (1000 + l)) program in
    let e' = T.Experiment.with_layout e layout in
    let xs = Array.init runs_per_layout (fun i -> T.Experiment.measure e' ~run_index:i) in
    means.(l) <- D.mean xs;
    noise.(l) <- D.sample_std xs /. sqrt (float_of_int runs_per_layout)
  done;
  let lo = D.min means and hi = D.max means in
  let spread = hi -. lo in
  let typical_noise = D.mean noise in
  Format.printf
    "%-14s layout means %10.0f..%10.0f  spread %8.0f cycles (%4.1fx the sampling noise)@."
    name lo hi spread
    (spread /. typical_noise);
  spread /. typical_noise

let () =
  Format.printf
    "re-linking the same TVCA binary at %d layouts, %d runs each@.@." layouts
    runs_per_layout;
  let det = spread "DET" P.Config.deterministic in
  let rand = spread "RAND" P.Config.mbpta_compliant in
  Format.printf
    "@.randomizing the caches cuts the layout effect by %.0fx (%.0fx -> %.0fx above@."
    (det /. rand) det rand;
  Format.printf
    "noise).  The residual is the DRAM row-buffer and TLB page-spread component,@.";
  Format.printf
    "which the paper's platform leaves unrandomized too: random placement removes@.";
  Format.printf "the dominant, cache-conflict part of the layout dependence.@.";
  (* Placement-policy ablation: how much does each policy expose layout? *)
  Format.printf "@.placement-policy ablation (LRU replacement, same protocol):@.";
  List.iter
    (fun placement ->
      let config = P.Config.with_placement P.Config.deterministic placement in
      ignore (spread (P.Config.placement_name placement) config))
    [ P.Config.Modulo; P.Config.Random_modulo; P.Config.Hash_random ]
