(* Multicore contention on the shared bus (ablation A4).

   The reference platform is a 4-core LEON3 with one bus to the memory
   controller; the paper's evaluation runs TVCA alone.  Here we turn the
   co-runner cores into memory hogs of increasing bus pressure and watch
   the pWCET estimate absorb the interference: under round-robin
   arbitration the per-transaction delay stays bounded, and with the
   randomized platform the contended measurements remain analyzable.

   Run with:  dune exec examples/multicore_contention.exe -- [runs]  (default 400) *)

module P = Repro_platform
module T = Repro_tvca
module M = Repro_mbpta
module E = Repro_evt
module D = Repro_stats.Descriptive

let () =
  let runs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 400 in
  Format.printf "TVCA on core 0 with 3 memory-hog co-runners, %d runs per point@.@." runs;
  Format.printf "%-10s %12s %12s %12s %14s@." "pressure" "mean" "max" "pWCET(1e-9)" "vs alone";
  let baseline = ref 0. in
  List.iter
    (fun pressure ->
      let contenders = [ pressure; pressure; pressure ] in
      let e =
        T.Experiment.create ~contenders ~config:P.Config.mbpta_compliant ~base_seed:99L ()
      in
      let xs = T.Experiment.collect e ~runs in
      let options =
        { M.Protocol.default_options with M.Protocol.check_convergence = false }
      in
      match M.Protocol.analyze ~options xs with
      | Ok a ->
          let pwcet = E.Pwcet.estimate a.M.Protocol.curve ~cutoff_probability:1e-9 in
          if pressure = 0. then baseline := pwcet;
          Format.printf "%-10.2f %12.0f %12.0f %12.0f %13.2fx@." pressure (D.mean xs)
            (D.max xs) pwcet
            (pwcet /. !baseline)
      | Error f -> Format.printf "%-10.2f analysis failed: %a@." pressure M.Protocol.pp_failure f)
    [ 0.; 0.25; 0.5; 0.75; 1. ];
  Format.printf
    "@.round-robin arbitration bounds the slowdown: even at full pressure every@.";
  Format.printf
    "transaction waits at most one slot per contender, and MBPTA still applies.@."
