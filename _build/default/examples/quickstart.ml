(* Quickstart: the MBPTA pipeline on a synthetic measurement source.

   This is the smallest end-to-end use of the library: measurements come
   from a Gumbel "platform" stand-in, the protocol checks i.i.d. and
   convergence, fits the tail and prints the pWCET ladder.  Swap the
   [measure] function for your own target's measurement hook.

   Run with:  dune exec examples/quickstart.exe *)

module Prng = Repro_rng.Prng
module Distribution = Repro_stats.Distribution
module Protocol = Repro_mbpta.Protocol
module Pwcet = Repro_evt.Pwcet

let () =
  (* A stand-in "platform": execution times Gumbel(10ms, 150us) in cycles. *)
  let prng = Prng.create 42L in
  let platform = Distribution.Gumbel.create ~mu:1_000_000. ~beta:15_000. in
  let measure _run_index = Distribution.Gumbel.sample platform prng in

  print_endline "collecting 3000 runs...";
  match Protocol.collect_and_analyze ~runs:3000 ~measure () with
  | Error failure -> Format.printf "analysis failed: %a@." Protocol.pp_failure failure
  | Ok analysis ->
      Format.printf "%a@." Protocol.pp_analysis analysis;
      let wcet_budget = Pwcet.estimate analysis.Protocol.curve ~cutoff_probability:1e-12 in
      Format.printf
        "@.a task budgeted at %.0f cycles overruns at most once per 10^12 activations@."
        wcet_budget
