(* Qualifying the hardware randomization source.

   The time-randomized platform's guarantees rest on its pseudo-random
   number generator being statistically sound (the paper builds on an
   IEC-61508 SIL3-qualified PRNG).  This example runs the qualification
   battery over every generator in the library and prints the verdicts.

   Run with:  dune exec examples/prng_qualification.exe *)

module Prng = Repro_rng.Prng
module Quality = Repro_rng.Quality

let () =
  (* Screening batteries run at a strict level (0.001): with 4 tests per
     generator and 4 generators, a 1% level would false-alarm on a healthy
     generator every few invocations. *)
  Format.printf "qualification battery: 20000 draws per test, alpha = 0.001@.@.";
  List.iter
    (fun algorithm ->
      let prng = Prng.create ~algorithm 20170327L in
      let verdicts = Quality.qualify ~alpha:0.001 prng in
      Format.printf "%-14s %s@." (Prng.algorithm_name algorithm)
        (if Quality.all_passed verdicts then "QUALIFIED" else "REJECTED");
      List.iter
        (fun (name, v) ->
          Format.printf "  %-24s %a@." name Quality.pp_verdict v)
        verdicts;
      Format.printf "@.")
    Prng.all_algorithms
