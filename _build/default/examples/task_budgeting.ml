(* From pWCET curves to certified task budgets (the paper's closing remark).

   "The particular cutoff probability is to be chosen based on the
   applicable domain standard, the task criticality level and the task
   frequency of execution."  This example performs that engineering step
   for the three TVCA tasks:

   1. measure each task in isolation on the randomized platform and fit
      its own pWCET curve;
   2. derive the cutoff probability each task needs so the overall
      budget-overrun rate stays below a 1e-9/hour target (a typical
      highest-criticality failure-rate allocation);
   3. read the budgets off the curves and run fixed-priority response-time
      analysis to show the task set schedulable within its frames.

   Run with:  dune exec examples/task_budgeting.exe -- [runs]  (default 600) *)

module P = Repro_platform
module T = Repro_tvca
module M = Repro_mbpta
module E = Repro_evt

let clock_hz = 50e6 (* a typical LEON3 FPGA clock *)
let frame_period_cycles = 500_000. (* 10 ms frame at 50 MHz *)
let target_failures_per_hour = 1e-9

let activations_per_hour = 3600. *. clock_hz /. frame_period_cycles

(* Per-activation budgets must cover the worst activation of a run (cold
   caches, worst covariance phase), not the per-frame average.  So each
   run: fresh platform + scenario, the task alone under the scheduler, and
   the run contributes the MAXIMUM of its activations' execution times —
   a block maximum over frames, fitted as such. *)
let run_max ~entry ~run_index =
  let frames = T.Mission.default_frames in
  let program = T.Codegen.program ~frames () in
  let layout = Repro_isa.Layout.sequential program in
  let memory = Repro_isa.Memory.create program in
  let sc = T.Mission.generate ~frames ~seed:(Int64.of_int (31_000 + run_index)) () in
  T.Mission.load_memory sc memory;
  let core =
    Repro_platform.Core_sim.create ~config:P.Config.mbpta_compliant
      ~seed:(Int64.of_int (63_000 + run_index)) ()
  in
  Repro_platform.Core_sim.reset_run core;
  let period = int_of_float frame_period_cycles in
  let tasks = [ { T.Rtos.name = "t"; entry; priority = 0; period; offset = 0 } ] in
  let sim =
    T.Rtos.run ~core ~program ~layout ~memory ~tasks ~horizon:(frames * period) ()
  in
  match sim.T.Rtos.per_task with
  | [ r ] when r.T.Rtos.activations > 0 ->
      Array.fold_left Float.max r.T.Rtos.response_times.(0) r.T.Rtos.response_times
  | _ -> failwith "single-task simulation produced no activations"

let curve_of_task ~runs entry =
  let maxima = Array.init runs (fun i -> run_max ~entry ~run_index:i) in
  (* Each observation is already the max over [frames] activations. *)
  let model = Repro_evt.Gumbel_fit.fit maxima in
  Repro_evt.Pwcet.create
    ~model:(Repro_evt.Pwcet.Gumbel_tail model)
    ~block_size:T.Mission.default_frames ~sample:maxima

let () =
  let runs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 600 in
  (* the failure-rate target is shared by the three tasks (union bound) *)
  let task_count = 3. in
  let cutoff =
    M.Schedulability.required_cutoff ~activations_per_hour
      ~target_failures_per_hour:(target_failures_per_hour /. task_count)
  in
  Format.printf
    "target %.0e failures/hour over %d tasks at %.0f activations/hour each@."
    target_failures_per_hour (int_of_float task_count) activations_per_hour;
  Format.printf "-> cutoff %.1e per activation@.@." cutoff;
  let budget name entry =
    let curve = curve_of_task ~runs entry in
    let b = M.Schedulability.budget_of_curve curve ~cutoff_probability:cutoff in
    Format.printf "%-22s pWCET(%.1e) = %10.0f cycles per activation@." name cutoff b;
    b
  in
  let sensor_budget = budget "sensor acquisition" "task_sensor" in
  let ctl_x_budget = budget "actuator control X" "task_control_x" in
  let ctl_y_budget = budget "actuator control Y" "task_control_y" in
  (* The paper's task set: three periodic tasks under fixed priorities,
     sensor acquisition highest. *)
  let task name budget =
    {
      M.Schedulability.name;
      period = frame_period_cycles;
      deadline = frame_period_cycles;
      budget;
    }
  in
  let tasks =
    [
      task "sensor" sensor_budget; task "control_x" ctl_x_budget;
      task "control_y" ctl_y_budget;
    ]
  in
  Format.printf "@.fixed-priority response-time analysis (priority = list order):@.";
  List.iter
    (fun r -> Format.printf "  %a@." M.Schedulability.pp_response r)
    (M.Schedulability.response_times tasks);
  Format.printf "utilization: %.1f%%@."
    (100. *. M.Schedulability.utilization tasks);
  Format.printf "schedulable: %b@." (M.Schedulability.schedulable tasks);
  Format.printf "system overrun-rate bound: %.2e / hour (target %.0e)@."
    (M.Schedulability.overrun_rate_bound tasks ~cutoff ~activations_per_hour:(fun _ ->
         activations_per_hour))
    target_failures_per_hour;
  (* Cross-check: simulate the preemptive fixed-priority schedule at
     instruction granularity and compare measured response times against
     the analytical bounds. *)
  Format.printf "@.preemptive-schedule simulation (20 hyperperiods):@.";
  let program = T.Codegen.program ~frames:T.Mission.default_frames () in
  let layout = Repro_isa.Layout.sequential program in
  let memory = Repro_isa.Memory.create program in
  let sc = T.Mission.generate ~seed:77L () in
  T.Mission.load_memory sc memory;
  let core =
    Repro_platform.Core_sim.create ~config:P.Config.mbpta_compliant ~seed:77L ()
  in
  Repro_platform.Core_sim.reset_run core;
  let period = int_of_float frame_period_cycles in
  let sim =
    T.Rtos.run ~core ~program ~layout ~memory
      ~tasks:(T.Rtos.tvca_tasks ~period ~release_jitter:1000 ())
      ~horizon:(20 * period) ()
  in
  Format.printf "%a@." T.Rtos.pp sim;
  let analytical = M.Schedulability.response_times tasks in
  List.iter
    (fun r ->
      let name = r.T.Rtos.spec.T.Rtos.name in
      match
        List.find_opt
          (fun a -> a.M.Schedulability.task.M.Schedulability.name = name)
          analytical
      with
      | Some a when r.T.Rtos.activations > 0 ->
          let worst =
            Array.fold_left Float.max r.T.Rtos.response_times.(0) r.T.Rtos.response_times
          in
          Format.printf "  %-12s measured worst response %8.0f vs analytical bound %8.0f %s@."
            name worst a.M.Schedulability.response_time
            (if worst <= a.M.Schedulability.response_time *. 1.05 +. 500. then "(consistent)"
             else "(EXCEEDS - investigate)")
      | Some _ | None -> ())
    sim.T.Rtos.per_task
