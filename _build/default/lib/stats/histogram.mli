(** Fixed-width histograms, used by the reports and the average-performance
    comparison. *)

type t

(** [create ~bins xs] bins [xs] into [bins] equal-width cells spanning
    [[min xs, max xs]]. *)
val create : bins:int -> float array -> t

val bins : t -> int
val total : t -> int

(** [count t i] observations in cell [i]. *)
val count : t -> int -> int

(** [bounds t i] = (inclusive lower, exclusive upper — except the last cell,
    which is inclusive). *)
val bounds : t -> int -> float * float

(** Render as a unicode-free ASCII bar chart, [width] columns for the largest
    bar. *)
val pp : ?width:int -> Format.formatter -> t -> unit
