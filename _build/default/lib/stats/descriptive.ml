let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let centered_moment xs k =
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** float_of_int k)) 0. xs
  /. float_of_int (Array.length xs)

let variance xs = centered_moment xs 2

let sample_variance xs =
  let n = Array.length xs in
  assert (n >= 2);
  variance xs *. float_of_int n /. float_of_int (n - 1)

let std xs = sqrt (variance xs)
let sample_std xs = sqrt (sample_variance xs)

let min xs =
  assert (Array.length xs > 0);
  Array.fold_left Float.min xs.(0) xs

let max xs =
  assert (Array.length xs > 0);
  Array.fold_left Float.max xs.(0) xs

let coefficient_of_variation xs = sample_std xs /. mean xs

let skewness xs =
  let m2 = centered_moment xs 2 and m3 = centered_moment xs 3 in
  m3 /. (m2 ** 1.5)

let kurtosis_excess xs =
  let m2 = centered_moment xs 2 and m4 = centered_moment xs 4 in
  (m4 /. (m2 *. m2)) -. 3.

let quantile xs p =
  assert (Array.length xs > 0 && p >= 0. && p <= 1.);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = quantile xs 0.5

type summary = {
  n : int;
  mean : float;
  std : float;
  minimum : float;
  maximum : float;
  median : float;
  q1 : float;
  q3 : float;
  cv : float;
}

let summarize xs =
  let n = Array.length xs in
  assert (n > 0);
  {
    n;
    mean = mean xs;
    std = (if n >= 2 then sample_std xs else 0.);
    minimum = min xs;
    maximum = max xs;
    median = median xs;
    q1 = quantile xs 0.25;
    q3 = quantile xs 0.75;
    cv = (if n >= 2 && mean xs <> 0. then coefficient_of_variation xs else 0.);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f std=%.2f min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f cv=%.4f" s.n s.mean
    s.std s.minimum s.q1 s.median s.q3 s.maximum s.cv
