type result = { statistic : float; lags : int; p_value : float; independent : bool }

let test ?(alpha = 0.05) ?lags xs =
  let n = Array.length xs in
  assert (n >= 10);
  let lags =
    match lags with
    | Some h ->
        assert (h >= 1 && h < n);
        h
    | None -> Stdlib.min 20 (Stdlib.max 1 (n / 5))
  in
  let nf = float_of_int n in
  let q = ref 0. in
  for k = 1 to lags do
    let r = Autocorrelation.acf xs ~lag:k in
    q := !q +. (r *. r /. (nf -. float_of_int k))
  done;
  let statistic = nf *. (nf +. 2.) *. !q in
  let p_value = Special.chi_square_survival ~df:lags statistic in
  { statistic; lags; p_value; independent = p_value >= alpha }

let pp_result ppf r =
  Format.fprintf ppf "Q=%.3f (h=%d) p=%.4f -> %s" r.statistic r.lags r.p_value
    (if r.independent then "independence not rejected" else "independence REJECTED")
