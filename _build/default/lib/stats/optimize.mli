(** Small numerical-optimization toolkit used by the maximum-likelihood
    fitters in [repro_evt]: 1-D golden-section search and an n-dimensional
    Nelder-Mead simplex.  Both are derivative-free, which keeps the EVT
    likelihoods (which have hard support boundaries) easy to handle — the
    objective may return [infinity] outside the feasible region. *)

(** [golden_section ~f ~lo ~hi ?tol ()] minimizes a unimodal [f] on
    [[lo, hi]]; returns the minimizer. *)
val golden_section : f:(float -> float) -> lo:float -> hi:float -> ?tol:float -> unit -> float

(** [nelder_mead ~f ~start ?step ?tol ?max_iter ()] minimizes [f] from the
    initial point [start]; [step] scales the initial simplex (default: 10% of
    each coordinate, or 0.1 if zero).  Returns [(argmin, min)]. *)
val nelder_mead :
  f:(float array -> float) ->
  start:float array ->
  ?step:float ->
  ?tol:float ->
  ?max_iter:int ->
  unit ->
  float array * float

(** [linear_fit xs ys] ordinary least squares [y = a + b x]; returns
    [(intercept, slope, r2)]. *)
val linear_fit : float array -> float array -> float * float * float
