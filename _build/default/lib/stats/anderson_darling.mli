(** Anderson-Darling goodness-of-fit test against a fully specified
    continuous distribution (case 0).

    AD weights the tails far more than Kolmogorov-Smirnov, which makes it
    the better diagnostic for EVT models whose whole purpose is tail
    extrapolation.  The statistic is

      A^2 = -n - (1/n) sum_i (2i-1) [ln F(x_(i)) + ln(1 - F(x_(n+1-i)))].

    Acceptance uses the asymptotic case-0 critical values (Stephens 1974):
    1.933 / 2.492 / 3.070 / 3.857 at the 10% / 5% / 2.5% / 1% levels; the
    reported [p_value] is a log-linear interpolation of that table, exact
    enough for gating (it is clamped to [[0.001, 0.5]] outside the table's
    range and should be read as an order of magnitude, not a precise
    probability). *)

type result = {
  statistic : float;  (** A^2 *)
  p_value : float;  (** interpolated; see above *)
  accepted : bool;  (** statistic below the critical value for [alpha] *)
}

(** [test ?alpha xs ~cdf] — [alpha] must be one of 0.10, 0.05, 0.025, 0.01
    (default 0.05); [cdf] the fully specified model CDF. *)
val test : ?alpha:float -> float array -> cdf:(float -> float) -> result

val pp_result : Format.formatter -> result -> unit
