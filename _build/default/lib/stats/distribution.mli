(** Parametric distributions used by the analysis: uniform and normal for
    testing, exponential / Gumbel / GEV / GPD / Weibull as the extreme-value
    family behind pWCET estimation, chi-square for test p-values.

    Every distribution exposes [pdf], [cdf], [quantile] (inverse CDF) and
    [sample] (inverse-transform from a {!Repro_rng.Prng.t}). *)

module Uniform : sig
  type t = { lo : float; hi : float }

  val create : lo:float -> hi:float -> t
  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val quantile : t -> float -> float
  val sample : t -> Repro_rng.Prng.t -> float
end

module Normal : sig
  type t = { mu : float; sigma : float }

  val create : mu:float -> sigma:float -> t
  val standard : t
  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val quantile : t -> float -> float
  val sample : t -> Repro_rng.Prng.t -> float
end

module Exponential : sig
  type t = { rate : float }

  val create : rate:float -> t
  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val quantile : t -> float -> float
  val sample : t -> Repro_rng.Prng.t -> float
  val mean : t -> float
end

module Chi_square : sig
  type t = { df : int }

  val create : df:int -> t
  val cdf : t -> float -> float
  val survival : t -> float -> float
end

module Gumbel : sig
  (** Gumbel (type-I extreme value) with location [mu] and scale [beta]:
      the limiting distribution of block maxima of light-tailed samples, and
      the distribution MBPTA fits in the common case (GEV shape xi = 0). *)
  type t = { mu : float; beta : float }

  val create : mu:float -> beta:float -> t
  val pdf : t -> float -> float
  val cdf : t -> float -> float

  (** Survival (exceedance) function 1 - cdf, computed with [expm1] so it
      stays accurate down to the 1e-15 probabilities of interest. *)
  val survival : t -> float -> float

  val quantile : t -> float -> float

  (** [quantile_of_exceedance t p] returns the value exceeded with
      probability [p]; accurate for tiny [p]. *)
  val quantile_of_exceedance : t -> float -> float

  val sample : t -> Repro_rng.Prng.t -> float
  val mean : t -> float
  val std : t -> float
  val log_likelihood : t -> float array -> float
end

module Gev : sig
  (** Generalized extreme value with location [mu], scale [sigma] and shape
      [xi].  [xi = 0.] is treated as the Gumbel limit. *)
  type t = { mu : float; sigma : float; xi : float }

  val create : mu:float -> sigma:float -> xi:float -> t
  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val survival : t -> float -> float
  val quantile : t -> float -> float
  val quantile_of_exceedance : t -> float -> float
  val sample : t -> Repro_rng.Prng.t -> float
  val log_likelihood : t -> float array -> float

  (** Upper end of the support: finite iff [xi < 0]. *)
  val upper_bound : t -> float option
end

module Gpd : sig
  (** Generalized Pareto for peaks-over-threshold, with threshold [u],
      scale [sigma] and shape [xi]. *)
  type t = { u : float; sigma : float; xi : float }

  val create : u:float -> sigma:float -> xi:float -> t
  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val survival : t -> float -> float
  val quantile : t -> float -> float
  val sample : t -> Repro_rng.Prng.t -> float
  val log_likelihood : t -> float array -> float
end

module Weibull : sig
  type t = { scale : float; shape : float }

  val create : scale:float -> shape:float -> t
  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val quantile : t -> float -> float
  val sample : t -> Repro_rng.Prng.t -> float
end
