lib/stats/distribution.mli: Repro_rng
