lib/stats/anderson_darling.mli: Format
