lib/stats/runs_test.mli: Format
