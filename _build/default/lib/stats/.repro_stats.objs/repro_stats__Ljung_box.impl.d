lib/stats/ljung_box.ml: Array Autocorrelation Format Special Stdlib
