lib/stats/ecdf.ml: Array Float List Stdlib
