lib/stats/ecdf.mli:
