lib/stats/autocorrelation.mli:
