lib/stats/anderson_darling.ml: Array Float Format List
