lib/stats/ks.mli: Format
