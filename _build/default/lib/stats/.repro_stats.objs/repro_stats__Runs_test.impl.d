lib/stats/runs_test.ml: Array Descriptive Float Format List Special Stdlib
