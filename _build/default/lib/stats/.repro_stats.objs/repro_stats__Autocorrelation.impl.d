lib/stats/autocorrelation.ml: Array Descriptive
