lib/stats/histogram.ml: Array Descriptive Format Stdlib String
