lib/stats/optimize.ml: Array Float Fun
