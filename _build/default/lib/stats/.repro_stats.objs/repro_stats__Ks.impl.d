lib/stats/ks.ml: Array Float Format Special
