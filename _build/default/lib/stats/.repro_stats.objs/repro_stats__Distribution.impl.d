lib/stats/distribution.ml: Array Float Repro_rng Special
