lib/stats/special.mli:
