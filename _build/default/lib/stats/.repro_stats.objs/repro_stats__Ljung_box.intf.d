lib/stats/ljung_box.mli: Format
