lib/stats/optimize.mli:
