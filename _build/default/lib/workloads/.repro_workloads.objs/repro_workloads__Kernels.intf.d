lib/workloads/kernels.mli: Repro_isa Repro_rng Stdlib
