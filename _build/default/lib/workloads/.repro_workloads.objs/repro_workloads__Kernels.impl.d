lib/workloads/kernels.ml: Array Float Int64 List Printf Repro_isa Repro_rng Stdlib
