(** Classic WCET benchmark kernels (in the tradition of the Malardalen /
    TACLe suites) for exercising the platform and the analysis beyond the
    TVCA case study.

    Each kernel provides the generated program, a randomized input loader,
    and a golden OCaml reference so functional equivalence is testable —
    the same discipline as the TVCA code generator.  The kernels span the
    jitter sources the paper cares about:

    - [bubble_sort]: data-dependent branches (one per comparison), the
      canonical path-explosion workload;
    - [binary_search]: short data-dependent paths over a large array;
    - [matrix_multiply]: regular loop nest, cache-capacity pressure;
    - [fir_filter]: streaming access, almost jitterless on any platform;
    - [newton_roots]: FDIV/FSQRT-heavy iteration with value-dependent
      latency (the FPU jitter source);
    - [histogram]: data-dependent store addresses over a table larger than
      the data cache (single-path, yet timing depends on the values). *)

type t = {
  name : string;
  program : Repro_isa.Program.t;
  (** [load_input memory prng] fills the input symbols for one run. *)
  load_input : Repro_isa.Memory.t -> Repro_rng.Prng.t -> unit;
  (** [check memory] — after execution: [Ok ()] when outputs match the
      golden reference for the inputs currently in memory, [Error what]
      otherwise.  Must be called before the next [load_input]. *)
  check : Repro_isa.Memory.t -> (unit, string) Stdlib.result;
}

val bubble_sort : ?n:int -> unit -> t
val binary_search : ?n:int -> ?lookups:int -> unit -> t
val matrix_multiply : ?n:int -> unit -> t
val fir_filter : ?taps:int -> ?n:int -> unit -> t
val newton_roots : ?n:int -> ?iterations:int -> unit -> t
val histogram : ?bins:int -> ?n:int -> unit -> t

(** The whole suite at default sizes. *)
val all : unit -> t list
