(** A full measurement campaign: the four experiments of the paper's
    evaluation (E1 i.i.d., E2 pWCET curve, E3 MBPTA-vs-DET comparison, E4
    average performance) driven end-to-end from two measurement functions.

    Workload-agnostic: the harness supplies [measure_det] and [measure_rand]
    (run index to cycles; the harness owns reseeding/flushing), keeping this
    library independent of any particular platform or application — like a
    timing-analysis tool attached to a target. *)

type input = {
  runs : int;  (** the paper uses 3,000 *)
  measure_det : int -> float;
  measure_rand : int -> float;
  options : Protocol.options;
  engineering_factor : float;  (** MBTA margin, 1.5 in the paper *)
}

val default_input : measure_det:(int -> float) -> measure_rand:(int -> float) -> input

type t = {
  det_sample : float array;
  rand_sample : float array;
  analysis : (Protocol.analysis, Protocol.failure) Stdlib.result;
  comparison : comparison option;
}

and comparison = Report.comparison

val run : input -> t

(** Render the whole campaign as a text report (all four experiments). *)
val render : t -> string
