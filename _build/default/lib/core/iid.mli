(** The i.i.d. verification step of the MBPTA protocol.

    MBPTA requires execution times to be independent and identically
    distributed before EVT may be applied.  Exactly as in the paper
    (Section III): independence is tested with Ljung-Box and identical
    distribution with the two-sample Kolmogorov-Smirnov test on the two
    halves of the series, both at a 5% significance level; i.i.d. is
    rejected only if either p-value falls below the level.  A
    Wald-Wolfowitz runs test is run as a complementary (non-gating)
    diagnostic. *)

type result = {
  ljung_box : Repro_stats.Ljung_box.result;
  kolmogorov_smirnov : Repro_stats.Ks.result;
  runs_diagnostic : Repro_stats.Runs_test.result;
  alpha : float;
  accepted : bool;  (** both gating tests passed *)
}

(** [check ?alpha xs] — [alpha] defaults to 0.05. *)
val check : ?alpha:float -> float array -> result

val pp : Format.formatter -> result -> unit
