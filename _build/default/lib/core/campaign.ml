type input = {
  runs : int;
  measure_det : int -> float;
  measure_rand : int -> float;
  options : Protocol.options;
  engineering_factor : float;
}

let default_input ~measure_det ~measure_rand =
  {
    runs = 3000;
    measure_det;
    measure_rand;
    options = Protocol.default_options;
    engineering_factor = 1.5;
  }

type t = {
  det_sample : float array;
  rand_sample : float array;
  analysis : (Protocol.analysis, Protocol.failure) Stdlib.result;
  comparison : comparison option;
}

and comparison = Report.comparison

let run input =
  assert (input.runs >= 1);
  let det_sample = Array.init input.runs input.measure_det in
  let rand_sample = Array.init input.runs input.measure_rand in
  let analysis = Protocol.analyze ~options:input.options rand_sample in
  let comparison =
    match analysis with
    | Ok a ->
        Some
          (Report.compare ~engineering_factor:input.engineering_factor ~analysis:a
             ~det_sample ())
    | Error _ -> None
  in
  { det_sample; rand_sample; analysis; comparison }

let render t =
  match (t.analysis, t.comparison) with
  | Ok analysis, Some comparison -> Report.render ~analysis ~comparison
  | Ok analysis, None -> Format.asprintf "%a" Protocol.pp_analysis analysis
  | Error f, _ -> Format.asprintf "campaign failed: %a" Protocol.pp_failure f
