(** From pWCET curves to task budgets and schedulability.

    The paper closes with: "The particular cutoff probability is to be
    chosen based on the applicable domain standard, the task criticality
    level and the task frequency of execution."  This module performs that
    engineering step:

    - {!required_cutoff} derives the per-activation exceedance probability
      a task needs so that, at its activation rate, the budget-overrun rate
      stays below the failure-rate target of the applicable standard level
      (e.g. 1e-9/h for the highest criticality classes);
    - {!budget_of_curve} reads the corresponding execution-time budget off
      a fitted {!Repro_evt.Pwcet} curve;
    - {!response_times} runs classic fixed-priority response-time analysis
      with those budgets, so the 3-task TVCA set can be shown schedulable;
    - {!overrun_rate_bound} gives the union-bound system-level overrun rate
      actually achieved. *)

type task = {
  name : string;
  period : float;  (** activation period, cycles *)
  deadline : float;  (** relative deadline, cycles; typically = period *)
  budget : float;  (** execution-time budget, cycles (e.g. a pWCET quantile) *)
}

(** [required_cutoff ~activations_per_hour ~target_failures_per_hour] — the
    largest per-activation exceedance probability compatible with the
    target (union bound: rate <= activations/h x p). *)
val required_cutoff :
  activations_per_hour:float -> target_failures_per_hour:float -> float

(** [budget_of_curve curve ~cutoff_probability] — convenience alias of
    {!Repro_evt.Pwcet.estimate}. *)
val budget_of_curve : Repro_evt.Pwcet.t -> cutoff_probability:float -> float

(** [overrun_rate_bound tasks ~cutoff ~activations_per_hour] — union bound
    over all tasks of the per-hour probability that some activation
    overruns its budget, when every budget was set at [cutoff].
    [activations_per_hour task] gives each task's rate. *)
val overrun_rate_bound :
  task list -> cutoff:float -> activations_per_hour:(task -> float) -> float

type response = {
  task : task;
  response_time : float;  (** worst-case response time, cycles *)
  meets_deadline : bool;
}

(** [response_times tasks] — exact fixed-priority response-time analysis
    (Joseph & Pandya): tasks in decreasing priority order (head =
    highest); each response is the least fixed point of
    R = C_i + sum_{j higher} ceil(R / T_j) C_j.
    Returns [None] for a task whose iteration exceeds its deadline by more
    than 1000x (unschedulable divergence guard) — its [meets_deadline] is
    false and [response_time] is the last iterate. *)
val response_times : task list -> response list

(** [schedulable tasks] — all deadlines met. *)
val schedulable : task list -> bool

(** Total utilization sum(C/T). *)
val utilization : task list -> float

val pp_response : Format.formatter -> response -> unit
