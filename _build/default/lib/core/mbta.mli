(** The industrial MBTA baseline the paper compares against: take the
    highest execution time observed on the deterministic platform (the
    "high watermark") and inflate it by an engineering margin (20%-50%;
    the paper quotes 50%).

    The approach is cheap but its confidence rests on having exercised the
    worst-case conditions (e.g. the worst cache placement of objects) —
    the uncertainty MBPTA replaces with probabilistic guarantees. *)

type result = {
  high_watermark : float;
  engineering_factor : float;  (** e.g. 1.5 for +50% *)
  bound : float;
  sample_size : int;
}

(** [bound ?engineering_factor xs] — factor defaults to 1.5. *)
val bound : ?engineering_factor:float -> float array -> result

(** [sensitivity xs ~factors] — the bound for each candidate factor; used
    to reproduce the margin sweep of the comparison figure. *)
val sensitivity : float array -> factors:float list -> (float * float) list

val pp : Format.formatter -> result -> unit
