(** Per-path MBPTA (the paper performs "per-path analysis taking the maximum
    across paths").

    Runs are grouped by an execution-path signature supplied by the harness
    (e.g. {!Repro_isa.Executor.path_signature}).  Each path population with
    enough runs is analyzed independently with the {!Protocol}; the reported
    pWCET at any cutoff is the maximum across analyzed paths.  Paths too
    rare to analyze are reported as residual coverage: their occurrence
    probability is bounded by the observed frequency, which the caller must
    argue about separately (standard MBPTA practice for multi-path
    programs). *)

type path_report = {
  signature : int;
  occurrences : int;
  analysis : (Protocol.analysis, Protocol.failure) Stdlib.result;
}

type t = {
  paths : path_report list;  (** most frequent first *)
  analyzed_fraction : float;  (** fraction of runs covered by analyzed paths *)
}

(** [analyze ?options ?min_runs_per_path ~measurements ~signatures ()] —
    [measurements] and [signatures] are parallel arrays (one per run);
    [min_runs_per_path] defaults to {!Protocol}'s minimum (100). *)
val analyze :
  ?options:Protocol.options ->
  ?min_runs_per_path:int ->
  measurements:float array ->
  signatures:int array ->
  unit ->
  t

(** [pwcet_estimate t ~cutoff_probability] — maximum across analyzed paths;
    [None] when no path could be analyzed. *)
val pwcet_estimate : t -> cutoff_probability:float -> float option

val pp : Format.formatter -> t -> unit
