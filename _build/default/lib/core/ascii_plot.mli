(** Text rendering of the paper's Figure 2: execution time on the X axis,
    exceedance probability in log scale on the Y axis (one row per decade
    down to 1e-15), with the observed empirical tail ('o') overlaid by the
    EVT pWCET curve ('*'). *)

(** [exceedance_plot ?width ?decades curve] — [width] columns for the plot
    area (default 72), [decades] rows (default 15). *)
val exceedance_plot : ?width:int -> ?decades:int -> Repro_evt.Pwcet.t -> string

(** [convergence_plot history] — pWCET-estimate trajectory against run
    count (the A3 ablation), rendered as rows of [runs estimate bar]. *)
val convergence_plot : ?width:int -> Repro_evt.Convergence.point list -> string

(** [qq_plot ~data ~quantile] — quantile-quantile diagnostic of a fitted
    model: empirical quantiles of [data] (Y) against the model [quantile]
    function evaluated at the plotting positions (X), with the identity
    diagonal ('.') a good fit hugs.  '+' marks the data. *)
val qq_plot : ?width:int -> ?height:int -> data:float array -> quantile:(float -> float) -> unit -> string
