module Stats = Repro_stats

type result = {
  ljung_box : Stats.Ljung_box.result;
  kolmogorov_smirnov : Stats.Ks.result;
  runs_diagnostic : Stats.Runs_test.result;
  alpha : float;
  accepted : bool;
}

let check ?(alpha = 0.05) xs =
  let ljung_box = Stats.Ljung_box.test ~alpha xs in
  let first, second = Stats.Ks.split_halves xs in
  let kolmogorov_smirnov = Stats.Ks.two_sample ~alpha first second in
  let runs_diagnostic = Stats.Runs_test.test ~alpha xs in
  {
    ljung_box;
    kolmogorov_smirnov;
    runs_diagnostic;
    alpha;
    accepted =
      ljung_box.Stats.Ljung_box.independent
      && kolmogorov_smirnov.Stats.Ks.same_distribution;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>i.i.d. check (alpha=%.2f):@,\
    \  independence (Ljung-Box):     %a@,\
    \  identical distribution (KS):  %a@,\
    \  runs diagnostic:              %a@,\
    \  verdict: %s@]"
    r.alpha Stats.Ljung_box.pp_result r.ljung_box Stats.Ks.pp_result r.kolmogorov_smirnov
    Stats.Runs_test.pp_result r.runs_diagnostic
    (if r.accepted then "i.i.d. ACCEPTED - MBPTA enabled" else "i.i.d. REJECTED")
