lib/core/schedulability.mli: Format Repro_evt
