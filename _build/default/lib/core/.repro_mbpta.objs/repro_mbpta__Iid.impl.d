lib/core/iid.ml: Format Repro_stats
