lib/core/campaign.mli: Protocol Report Stdlib
