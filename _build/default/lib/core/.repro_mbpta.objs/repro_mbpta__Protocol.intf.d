lib/core/protocol.mli: Format Iid Repro_evt Repro_stats Stdlib
