lib/core/mbta.ml: Array Float Format List
