lib/core/path_analysis.ml: Array Float Format Hashtbl List Option Protocol Repro_evt Stdlib
