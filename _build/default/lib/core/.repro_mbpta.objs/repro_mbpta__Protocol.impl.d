lib/core/protocol.ml: Array Format Iid List Repro_evt Repro_stats
