lib/core/report.mli: Format Mbta Protocol Repro_stats
