lib/core/mbta.mli: Format
