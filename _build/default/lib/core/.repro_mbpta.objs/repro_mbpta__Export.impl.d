lib/core/export.ml: Array Buffer List Mbta Printf Report Repro_evt Repro_stats
