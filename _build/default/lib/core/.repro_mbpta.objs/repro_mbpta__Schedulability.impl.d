lib/core/schedulability.ml: Float Format List Repro_evt
