lib/core/iid.mli: Format Repro_stats
