lib/core/export.mli: Report Repro_evt
