lib/core/ascii_plot.ml: Array Buffer Bytes Float List Printf Repro_evt Repro_stats Stdlib String
