lib/core/report.ml: Ascii_plot Format List Mbta Protocol Repro_evt Repro_stats
