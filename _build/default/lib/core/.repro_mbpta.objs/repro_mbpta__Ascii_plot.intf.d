lib/core/ascii_plot.mli: Repro_evt
