lib/core/campaign.ml: Array Format Protocol Report Stdlib
