lib/core/path_analysis.mli: Format Protocol Stdlib
