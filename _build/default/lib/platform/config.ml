type placement = Modulo | Random_modulo | Hash_random
type replacement = Lru | Random_replacement | Round_robin
type fpu_mode = Value_dependent | Worst_case_fixed
type dram_mode = Open_page | Fixed_worst

type cache_geometry = { size_bytes : int; line_bytes : int; ways : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let sets g =
  let lines = g.size_bytes / g.line_bytes in
  let sets = lines / g.ways in
  if
    (not (is_power_of_two g.size_bytes))
    || (not (is_power_of_two g.line_bytes))
    || sets * g.ways * g.line_bytes <> g.size_bytes
    || not (is_power_of_two sets)
  then invalid_arg "Config.sets: geometry must be power-of-two and consistent";
  sets

type cache_config = {
  geometry : cache_geometry;
  placement : placement;
  replacement : replacement;
}

type latencies = {
  l1_hit : int;
  bus_transfer : int;
  dram_row_hit : int;
  dram_row_miss : int;
  dram_fixed : int;
  tlb_miss_walk : int;
  store_buffer : int;
  branch_taken : int;
  int_mul : int;
  fp_short : int;
}

type t = {
  name : string;
  il1 : cache_config;
  dl1 : cache_config;
  itlb_entries : int;
  dtlb_entries : int;
  tlb_replacement : replacement;
  page_bytes : int;
  fpu : fpu_mode;
  dram : dram_mode;
  dram_banks : int;
  dram_row_bytes : int;
  latencies : latencies;
}

let leon3_geometry = { size_bytes = 16 * 1024; line_bytes = 32; ways = 4 }

let default_latencies =
  {
    l1_hit = 0;
    bus_transfer = 8;
    dram_row_hit = 30;
    dram_row_miss = 70;
    dram_fixed = 70;
    tlb_miss_walk = 60;
    store_buffer = 2;
    branch_taken = 2;
    int_mul = 2;
    fp_short = 3;
  }

let deterministic =
  {
    name = "DET";
    il1 = { geometry = leon3_geometry; placement = Modulo; replacement = Lru };
    dl1 = { geometry = leon3_geometry; placement = Modulo; replacement = Lru };
    itlb_entries = 64;
    dtlb_entries = 64;
    tlb_replacement = Lru;
    page_bytes = 4096;
    fpu = Value_dependent;
    dram = Open_page;
    dram_banks = 4;
    dram_row_bytes = 2048;
    latencies = default_latencies;
  }

let mbpta_compliant =
  {
    deterministic with
    name = "RAND";
    il1 =
      { geometry = leon3_geometry; placement = Random_modulo; replacement = Random_replacement };
    dl1 =
      { geometry = leon3_geometry; placement = Random_modulo; replacement = Random_replacement };
    tlb_replacement = Random_replacement;
    fpu = Worst_case_fixed;
    (* The paper modifies caches, TLBs and FPU only; the DRAM controller is
       untouched, and its jitter is covered by the randomized miss stream. *)
    dram = Open_page;
  }

let with_placement t p =
  { t with il1 = { t.il1 with placement = p }; dl1 = { t.dl1 with placement = p } }

let with_replacement t r =
  { t with il1 = { t.il1 with replacement = r }; dl1 = { t.dl1 with replacement = r } }

let with_fpu t fpu = { t with fpu }

let placement_name = function
  | Modulo -> "modulo"
  | Random_modulo -> "random-modulo"
  | Hash_random -> "hash-random"

let replacement_name = function
  | Lru -> "lru"
  | Random_replacement -> "random"
  | Round_robin -> "round-robin"
