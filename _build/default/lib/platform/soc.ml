type co_runner = Idle | Memory_hog of float

let core_count = 4

type t = { core0 : Core_sim.t }

let create ~config ~seed ~co_runners =
  if List.length co_runners > core_count - 1 then
    invalid_arg "Soc.create: at most 3 co-runners";
  let contenders =
    List.filter_map
      (fun c ->
        match c with
        | Idle -> None
        | Memory_hog p ->
            if p < 0. || p > 1. then invalid_arg "Soc.create: pressure out of [0,1]";
            Some p)
      co_runners
  in
  { core0 = Core_sim.create ~contenders ~config ~seed () }

let analyzed_core t = t.core0

let run_program t ~program ~layout ~memory =
  Core_sim.run_program t.core0 ~program ~layout ~memory
