(** The 4-core SoC of the reference architecture: the analyzed application
    runs on core 0 while co-runner cores generate bus pressure (the paper's
    platform is a 4-core LEON3 with a shared bus to the DRAM controller;
    its evaluation runs TVCA alone, and the multicore ablation A4 turns the
    co-runners on).

    Co-runners are modelled by their bus pressure — the probability that a
    co-runner occupies a bus slot when core 0 requests it — rather than by
    cycle-accurate co-simulation; round-robin arbitration then bounds the
    per-transaction interference, which is the property MBPTA needs. *)

type t

type co_runner = Idle | Memory_hog of float  (** bus pressure in [0, 1] *)

val core_count : int

(** [create ~config ~seed ~co_runners] — [co_runners] configures cores 1-3
    (shorter lists leave the rest [Idle]). *)
val create : config:Config.t -> seed:int64 -> co_runners:co_runner list -> t

(** The analyzed core (core 0). *)
val analyzed_core : t -> Core_sim.t

val run_program :
  t ->
  program:Repro_isa.Program.t ->
  layout:Repro_isa.Layout.t ->
  memory:Repro_isa.Memory.t ->
  Metrics.t
