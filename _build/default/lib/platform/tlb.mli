(** Fully associative translation lookaside buffer (64 entries in the
    reference platform), with LRU or random replacement.  The paper
    randomizes ITLB and DTLB replacement on the MBPTA-compliant platform. *)

type t

type outcome = Hit | Miss

val create :
  entries:int ->
  page_bytes:int ->
  replacement:Config.replacement ->
  prng:Repro_rng.Prng.t ->
  t

(** [access t ~addr] translates the page containing [addr], allocating on
    miss. *)
val access : t -> addr:int -> outcome

val flush : t -> unit

type stats = { hits : int; misses : int }

val stats : t -> stats
val reset_stats : t -> unit
