(** Platform configuration: the reference LEON3-class architecture of the
    paper (Figure 1) in both its flavours.

    - {!deterministic} (DET): the baseline — modulo placement, LRU
      replacement, value-dependent FPU latency, open-page DRAM.  Execution
      time depends on the memory layout and operand values; that dependence
      is exactly what industrial MBTA must enumerate.
    - {!mbpta_compliant} (RAND): the modified platform — random-modulo
      placement and random replacement in IL1/DL1, random replacement in the
      TLBs, worst-case-fixed FDIV/FSQRT latency and closed-page (fixed
      worst) DRAM, per the two MBPTA compliance techniques (randomize, or
      force the worst case). *)

type placement = Modulo | Random_modulo | Hash_random
type replacement = Lru | Random_replacement | Round_robin
type fpu_mode = Value_dependent | Worst_case_fixed
type dram_mode = Open_page | Fixed_worst

type cache_geometry = { size_bytes : int; line_bytes : int; ways : int }

(** [sets g] — number of cache sets; fails on non-power-of-two geometry. *)
val sets : cache_geometry -> int

type cache_config = {
  geometry : cache_geometry;
  placement : placement;
  replacement : replacement;
}

type latencies = {
  l1_hit : int;  (** extra cycles on an L1 hit beyond the pipelined base *)
  bus_transfer : int;  (** bus occupancy per transaction *)
  dram_row_hit : int;
  dram_row_miss : int;
  dram_fixed : int;  (** closed-page latency used in [Fixed_worst] mode *)
  tlb_miss_walk : int;  (** page-table walk penalty *)
  store_buffer : int;  (** write-through store cost as seen by the pipeline *)
  branch_taken : int;  (** flush penalty of a taken branch *)
  int_mul : int;
  fp_short : int;  (** FADD/FMUL latency *)
}

type t = {
  name : string;
  il1 : cache_config;
  dl1 : cache_config;
  itlb_entries : int;
  dtlb_entries : int;
  tlb_replacement : replacement;
  page_bytes : int;
  fpu : fpu_mode;
  dram : dram_mode;
  dram_banks : int;
  dram_row_bytes : int;
  latencies : latencies;
}

(** 16KB 4-way IL1/DL1 with 32-byte lines, as in the paper. *)
val leon3_geometry : cache_geometry

val default_latencies : latencies

val deterministic : t
val mbpta_compliant : t

(** [with_placement t p] / [with_replacement t r] — both L1 caches changed;
    used by the placement/replacement ablations. *)
val with_placement : t -> placement -> t

val with_replacement : t -> replacement -> t

(** [with_fpu t mode] — FPU latency mode changed (A2 ablation). *)
val with_fpu : t -> fpu_mode -> t

val placement_name : placement -> string
val replacement_name : replacement -> string
