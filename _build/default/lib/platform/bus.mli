(** Shared bus between the cores' L1 caches and the memory controller.

    Round-robin arbitration: a requester waits for the bus transfer slots of
    the other cores that are contending.  For a single active core the bus
    adds a fixed transfer cost per transaction; with co-runners the expected
    interference per transaction grows with the number of contenders and
    their bus pressure — the multicore experiment (A4) drives this. *)

type t

(** [create ~latencies ~contenders] — [contenders] is the list of co-runner
    bus pressures in [[0, 1]] (fraction of bus slots each co-runner
    occupies); empty for single-core runs. *)
val create : latencies:Config.latencies -> contenders:float list -> t

(** [transaction t ~prng] — cycles this bus transaction takes including
    arbitration delay.  Interference is sampled per transaction: each
    contender occupies the slot ahead of us with its pressure
    probability. *)
val transaction : t -> prng:Repro_rng.Prng.t -> int

(** Transactions seen so far. *)
val count : t -> int

val reset : t -> unit
