(** FPU latency model.

    FADD/FMUL-class operations have a fixed pipeline latency (jitterless).
    FDIV and FSQRT are iterative (SRT-style) and their latency depends on
    the operand values — the jitter source the paper removes at analysis
    time by forcing both operations to their worst-case fixed latency
    ([Worst_case_fixed] mode).

    In [Value_dependent] mode the latency is a deterministic function of the
    operand bit patterns: a base cost plus an early-termination credit
    derived from the dividend/divisor mantissas (zero low-order mantissa
    bits let an SRT divider finish early), plus fast paths for special
    values (division by powers of two, sqrt of 0/1). *)

type t

val create : mode:Config.fpu_mode -> latencies:Config.latencies -> t

(** Latency in cycles of one operation; [x, y] are the operand values
    ([y] ignored for FSQRT). *)
val latency : t -> Repro_isa.Instr.fpu_op -> x:float -> y:float -> int

(** The fixed analysis-time latencies. *)
val worst_case_fdiv : int

val worst_case_fsqrt : int
